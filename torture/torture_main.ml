(* Crash-recovery torture entry point.

     torture_main --seed 42 --count 20 [--ms-count 20] [--crash-every 1]
                  [--max-shrink 200] [--break-commit-filter]

   Each iteration derives an independent RNG from (seed + i), generates a
   schema + data + multi-transaction DML workload, and tortures it
   (Fuzz_torture.torture): one counting pass enumerates every failpoint hit,
   then the workload is re-run once per enumerated crash point with that
   point armed; every surviving WAL image is recovered into a fresh database
   and compared against the committed-prefix oracle.

   The second sweep (--ms-count iterations) generates *multi-session*
   interleaved histories (Fuzz_torture.gen_ms_workload) and tortures them
   under group commit: several sessions of one engine commit into shared
   flush windows, crashes are armed at wal.group_flush (among every other
   site), the surviving batch is torn at every byte offset, and each image is
   additionally checked against the per-acknowledged-commit oracle — every
   commit whose group flush returned before the crash must survive recovery.

   On the first divergence the workload is shrunk and printed as a
   paste-ready script and the process exits 1.

   With --break-commit-filter, recovery's committed-transactions filter is
   disabled (Rss.Recovery.set_commit_filter false) — a deliberately broken
   recovery that redoes uncommitted work. The run then *fails* with exit 3
   if no divergence is found: the harness would be blind to exactly the
   corruption it exists to catch. *)

let () =
  let seed = ref 42 in
  let count = ref 20 in
  let ms_count = ref (-1) in
  let crash_every = ref 1 in
  let max_shrink = ref 200 in
  let break_commit_filter = ref false in
  let specs =
    [ ("--seed", Arg.Set_int seed, "RNG seed (default 42)");
      ("--count", Arg.Set_int count, "single-session workloads (default 20)");
      ("--ms-count", Arg.Set_int ms_count,
       "multi-session group-commit workloads (default: same as --count)");
      ("--crash-every", Arg.Set_int crash_every,
       "crash at every Nth hit of each site (default 1: every hit)");
      ("--max-shrink", Arg.Set_int max_shrink,
       "max shrink candidate evaluations (default 200)");
      ("--break-commit-filter", Arg.Set break_commit_filter,
       "disable recovery's committed-txn filter (must produce a divergence)") ]
  in
  Arg.parse specs
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "torture_main [--seed N] [--count N] [--ms-count N] [--crash-every N] \
     [--max-shrink N] [--break-commit-filter]";
  if !crash_every < 1 then begin
    prerr_endline "--crash-every must be >= 1";
    exit 2
  end;
  if !ms_count < 0 then ms_count := !count;
  let broken = !break_commit_filter in
  if broken then Rss.Recovery.set_commit_filter false;
  Fun.protect
    ~finally:(fun () -> Rss.Recovery.set_commit_filter true)
    (fun () ->
      let workloads = ref 0 in
      let total_points = ref 0 in
      let flush_points = ref 0 in
      let found = ref None in
      (* single-session sweep *)
      (try
         for i = 0 to !count - 1 do
           let rng = Workload.rand_init (!seed + i) in
           let w = Fuzz_torture.gen_workload rng in
           incr workloads;
           let points, div = Fuzz_torture.torture ~crash_every:!crash_every w in
           total_points := !total_points + points;
           match div with
           | None -> ()
           | Some d ->
             found := Some (i, `Single w, d);
             raise Exit
         done;
         (* multi-session group-commit sweep *)
         for i = 0 to !ms_count - 1 do
           let rng = Workload.rand_init (!seed + 100_000 + i) in
           let w = Fuzz_torture.gen_ms_workload rng in
           incr workloads;
           let points, fpoints, div =
             Fuzz_torture.torture_ms ~crash_every:!crash_every w
           in
           total_points := !total_points + points;
           flush_points := !flush_points + fpoints;
           match div with
           | None -> ()
           | Some d ->
             found := Some (i, `Multi w, d);
             raise Exit
         done
       with Exit -> ());
      Printf.printf
        "workloads=%d crash-points=%d group-flush-images=%d crash-every=%d\n"
        !workloads !total_points !flush_points !crash_every;
      match (broken, !found) with
      | true, Some (_, _, d) ->
        (* the fault was planted on purpose; detecting it is the pass *)
        Printf.printf "injected recovery fault detected, as expected:\n%s\n"
          (Format.asprintf "%a" Fuzz_torture.pp_divergence d)
      | true, None ->
        Printf.eprintf
          "--break-commit-filter produced no divergence: harness is blind to \
           uncommitted-redo corruption\n";
        exit 3
      | false, Some (i, w, d) ->
        Printf.printf "iteration %d: DIVERGENCE\n%s\n" i
          (Format.asprintf "%a" Fuzz_torture.pp_divergence d);
        (match w with
         | `Single w ->
           let w', steps =
             Fuzz_torture.shrink ~crash_every:!crash_every
               ~max_steps:!max_shrink w
           in
           Printf.printf "shrunk in %d steps to:\n\n%s\n" steps
             (Fuzz_torture.reproducer w');
           (match snd (Fuzz_torture.torture ~crash_every:!crash_every w') with
            | Some d' ->
              Printf.printf "%s\n"
                (Format.asprintf "%a" Fuzz_torture.pp_divergence d')
            | None -> ())
         | `Multi w ->
           let w', steps =
             Fuzz_torture.shrink_ms ~crash_every:!crash_every
               ~max_steps:!max_shrink w
           in
           Printf.printf "shrunk in %d steps to:\n\n%s\n" steps
             (Fuzz_torture.ms_reproducer w');
           (match
              Fuzz_torture.torture_ms ~crash_every:!crash_every w'
            with
            | _, _, Some d' ->
              Printf.printf "%s\n"
                (Format.asprintf "%a" Fuzz_torture.pp_divergence d')
            | _ -> ()));
        exit 1
      | false, None -> Printf.printf "no divergences\n")
