(* Executor hot path: per-tuple AST interpretation vs compiled closures.

   The paper's cost model charges W * RSI_CALLS precisely because per-tuple
   CPU work dominates once pages are buffered; System R compiled query blocks
   into access modules rather than re-interpreting them per row. This bench
   measures what that compile-then-execute split buys our executor: the same
   plans run with ~compiled:false (walk the Semant AST, resolve columns
   through the layout per access) and with ~compiled:true (predicates,
   projections and comparators closed into position-resolved closures at
   plan-open time — zero AST traversal on the per-tuple path).

   Four workloads, all sized so the data stays buffered (CPU-bound):
     scan_filter    seg scan + non-sargable arithmetic residuals
     nl3            forced 3-way nested-loop join, join preds as residuals
     join_residual  forced merge join with arithmetic residual preds
     group_agg      grouped aggregation with expression-valued aggregates

   Emits BENCH_exec_hotpath.json. BENCH_SMOKE=1 shrinks inputs for CI. *)

module V = Rel.Value
module T = Rel.Tuple

let smoke = Bench_util.smoke
let repeat = if smoke then 1 else 5

let schema cols =
  Rel.Schema.make (List.map (fun n -> { Rel.Schema.name = n; ty = V.Tint }) cols)

(* S/T/U drive the scan, NL-join and aggregation workloads; M1/M2 the merge
   join (low-cardinality key K: every key matches a whole group, so the
   residual runs over many surfaced pairs). No indexes — every access is a
   segment scan and all filtering happens in the executor. *)
let setup () =
  let db = Database.create ~buffer_pages:256 () in
  let cat = Database.catalog db in
  let fill name cols n row =
    let rel = Catalog.create_relation cat ~name ~schema:(schema cols) in
    for i = 0 to n - 1 do
      ignore (Catalog.insert_tuple cat rel (T.make (row i)))
    done
  in
  let n_s = if smoke then 120 else 1000 in
  let n_t = if smoke then 40 else 300 in
  let n_u = if smoke then 30 else 200 in
  let n_m = if smoke then 100 else 2000 in
  fill "S" [ "A"; "B"; "C" ] n_s (fun i ->
      [ V.Int (i mod 50);
        (if i mod 13 = 0 then V.Null else V.Int (i mod 20));
        V.Int (i mod 10) ]);
  fill "T" [ "K"; "X" ] n_t (fun i -> [ V.Int (i mod 50); V.Int (i mod 30) ]);
  fill "U" [ "C2"; "Y" ] n_u (fun i -> [ V.Int (i mod 10); V.Int (i mod 40) ]);
  fill "M1" [ "K"; "X" ] n_m (fun i -> [ V.Int (i mod 10); V.Int (i mod 100) ]);
  fill "M2" [ "K"; "Y" ] n_m (fun i -> [ V.Int (i * 7 mod 10); V.Int (i * 3 mod 100) ]);
  Catalog.update_statistics cat;
  db

(* --- forced plans ------------------------------------------------------- *)

let seg_scan ~tab ~residual =
  { Plan.node = Plan.Scan { tab; access = Plan.Seg_scan; sargs = []; residual };
    tables = [ tab ];
    order = [];
    cost = Cost_model.zero;
    out_card = 1. }

let factors_by db sql =
  let block = Database.resolve db sql in
  (block, Normalize.factors_of_block block)

(* 3-way nested loops over S, T, U with every join predicate left as a scan
   residual — the executor, not the RSS, evaluates each candidate pair. *)
let nl3_plan db =
  let block, factors =
    factors_by db
      "SELECT S.A FROM S, T, U WHERE S.A = T.K AND S.C = U.C2 AND S.B + T.X > U.Y"
  in
  let preds_on tabs =
    List.filter_map
      (fun (f : Normalize.factor) -> if f.tables = tabs then Some f.pred else None)
      factors
  in
  let j1 =
    { Plan.node =
        Plan.Nl_join
          { outer = seg_scan ~tab:0 ~residual:[];
            inner = seg_scan ~tab:1 ~residual:(preds_on [ 0; 1 ]) };
      tables = [ 0; 1 ];
      order = [];
      cost = Cost_model.zero;
      out_card = 1. }
  in
  let j2 =
    { Plan.node =
        Plan.Nl_join
          { outer = j1;
            inner =
              seg_scan ~tab:2
                ~residual:(preds_on [ 0; 2 ] @ preds_on [ 0; 1; 2 ]) };
      tables = [ 0; 1; 2 ];
      order = [];
      cost = Cost_model.zero;
      out_card = 1. }
  in
  (block, j2)

(* Merge join of M1 and M2 on K with the remaining predicates as join
   residuals, evaluated once per surfaced pair. *)
let merge_plan db =
  (* Residuals ordered so the selective conjunct comes last: every surfaced
     pair pays the full evaluation chain, which is exactly the per-tuple CPU
     term (W * RSI_CALLS) this bench isolates. *)
  let block, factors =
    factors_by db
      "SELECT M1.X, M2.Y FROM M1, M2 WHERE M1.K = M2.K \
       AND M1.X * 2 + M2.Y * 3 + M1.K >= M2.K - 1 \
       AND M1.X + M2.Y BETWEEN 0 AND 300 \
       AND NOT (M1.X = M2.Y) \
       AND M1.X + M2.Y > 150"
  in
  let merge_f =
    List.find (fun (f : Normalize.factor) -> f.equi_join <> None) factors
  in
  let oc, ic =
    match merge_f.equi_join with
    | Some (a, b) -> if a.Semant.tab = 0 then (a, b) else (b, a)
    | None -> assert false
  in
  let residual =
    List.filter_map
      (fun (f : Normalize.factor) ->
        if f == merge_f then None else Some f.pred)
      factors
  in
  let sort_of tab key =
    let input = seg_scan ~tab ~residual:[] in
    { Plan.node = Plan.Sort { input; key };
      tables = [ tab ];
      order = key;
      cost = Cost_model.zero;
      out_card = 1. }
  in
  let plan =
    { Plan.node =
        Plan.Merge_join
          { outer = sort_of 0 [ (oc, Ast.Asc) ];
            inner = sort_of 1 [ (ic, Ast.Asc) ];
            outer_col = oc;
            inner_col = ic;
            residual };
      tables = [ 0; 1 ];
      order = [ (oc, Ast.Asc) ];
      cost = Cost_model.zero;
      out_card = 1. }
  in
  (block, plan)

(* --- measurement -------------------------------------------------------- *)

let run_forced db (block, plan) ~compiled () =
  let cat = Database.catalog db in
  let cur =
    Cursor.open_plan cat block Bench_util.dummy_env ~compiled ~join:None plan
  in
  List.length (Cursor.drain cur)

let run_query db r ~compiled () =
  List.length (Executor.run ~compiled (Database.catalog db) r).Executor.rows

let measure name (run : compiled:bool -> unit -> int) =
  let n_interp = run ~compiled:false () in
  let n_comp = run ~compiled:true () in
  assert (n_interp = n_comp);
  (* warm runs above also leave the buffer pool hot: timings are CPU-bound *)
  let t_interp = Bench_util.median_time ~repeat (fun () -> run ~compiled:false ()) in
  let t_comp = Bench_util.median_time ~repeat (fun () -> run ~compiled:true ()) in
  (name, n_comp, t_interp, t_comp)

let run () =
  Bench_util.section
    "exec hot path: interpreted AST evaluation vs compiled closures";
  let db = setup () in
  let scan_filter =
    Database.optimize db
      "SELECT A FROM S WHERE A * 2 + B > C AND NOT (B = 3 OR C < 1)"
  in
  let group_agg =
    Database.optimize db
      "SELECT A, COUNT(*), SUM(B * 2 + C), AVG(C), MAX(B) FROM S GROUP BY A"
  in
  let nl3 = nl3_plan db in
  let merge = merge_plan db in
  let results =
    [ measure "scan_filter" (fun ~compiled -> run_query db scan_filter ~compiled);
      measure "nl3" (fun ~compiled -> run_forced db nl3 ~compiled);
      measure "join_residual" (fun ~compiled -> run_forced db merge ~compiled);
      measure "group_agg" (fun ~compiled -> run_query db group_agg ~compiled) ]
  in
  Bench_util.print_table
    ~header:[ "workload"; "rows"; "interpreted (ms)"; "compiled (ms)"; "speedup" ]
    (List.map
       (fun (name, rows, ti, tc) ->
         [ name;
           string_of_int rows;
           Bench_util.f2 (ti *. 1000.);
           Bench_util.f2 (tc *. 1000.);
           Bench_util.f2 (ti /. tc) ^ "x" ])
       results);
  Printf.printf
    "\n(Same plans, same rows; compiled closes predicates/projections/\n\
     comparators over the layout at plan-open time.)\n";
  Bench_util.write_json ~file:"BENCH_exec_hotpath.json"
    (Bench_util.J_obj
       [ ("bench", Bench_util.J_str "exec_hotpath");
         ("smoke", Bench_util.J_bool smoke);
         ("repeat", Bench_util.J_int repeat);
         ( "workloads",
           Bench_util.J_list
             (List.map
                (fun (name, rows, ti, tc) ->
                  Bench_util.J_obj
                    [ ("name", Bench_util.J_str name);
                      ("rows", Bench_util.J_int rows);
                      ("interpreted_s", Bench_util.J_float ti);
                      ("compiled_s", Bench_util.J_float tc);
                      ("speedup", Bench_util.J_float (ti /. tc)) ])
                results) ) ])
