(* Executor hot path: per-tuple AST interpretation vs compiled closures, and
   materializing vs streaming execution.

   The paper's cost model charges W * RSI_CALLS precisely because per-tuple
   CPU work dominates once pages are buffered; System R compiled query blocks
   into access modules rather than re-interpreting them per row. This bench
   measures what that compile-then-execute split buys our executor: the same
   plans run with ~compiled:false (walk the Semant AST, resolve columns
   through the layout per access) and with ~compiled:true (predicates,
   projections and comparators closed into position-resolved closures at
   plan-open time — zero AST traversal on the per-tuple path).

   Four workloads, all sized so the data stays buffered (CPU-bound):
     scan_filter    seg scan + non-sargable arithmetic residuals
     nl3            forced 3-way nested-loop join, join preds as residuals
     join_residual  forced merge join with arithmetic residual preds
     group_agg      grouped aggregation with expression-valued aggregates

   A second set of workloads measures what the streaming executor buys over
   the materializing one it replaced (both in compiled mode): array-backed
   runs + tournament k-way merge vs list-formed runs + closure-per-element
   Seq merge trees ([Rss.Sort.sort_baseline]), and single-pass O(1)-state
   aggregation vs drain-then-group-into-lists ([Exec_agg.group_aggregate]).
   Spill behaviour (runs written, merge levels) is reported from the
   counters next to the timings:
     sort_spill     large external sort forced into many runs
     group_large    wide grouped aggregation over an ordered index scan
     merge_spill    join-shaped pipeline: two spilling sorts + merge of the
                    sorted temp lists

   Emits BENCH_exec_hotpath.json. BENCH_SMOKE=1 shrinks inputs for CI. *)

module V = Rel.Value
module T = Rel.Tuple

let smoke = Bench_util.smoke
let repeat = if smoke then 1 else 5

let schema cols =
  Rel.Schema.make (List.map (fun n -> { Rel.Schema.name = n; ty = V.Tint }) cols)

(* S/T/U drive the scan, NL-join and aggregation workloads; M1/M2 the merge
   join (low-cardinality key K: every key matches a whole group, so the
   residual runs over many surfaced pairs). No indexes — every access is a
   segment scan and all filtering happens in the executor. *)
let setup () =
  let db = Database.create ~buffer_pages:256 () in
  let cat = Database.catalog db in
  let fill name cols n row =
    let rel = Catalog.create_relation cat ~name ~schema:(schema cols) in
    for i = 0 to n - 1 do
      ignore (Catalog.insert_tuple cat rel (T.make (row i)))
    done
  in
  let n_s = if smoke then 120 else 1000 in
  let n_t = if smoke then 40 else 300 in
  let n_u = if smoke then 30 else 200 in
  let n_m = if smoke then 100 else 2000 in
  fill "S" [ "A"; "B"; "C" ] n_s (fun i ->
      [ V.Int (i mod 50);
        (if i mod 13 = 0 then V.Null else V.Int (i mod 20));
        V.Int (i mod 10) ]);
  fill "T" [ "K"; "X" ] n_t (fun i -> [ V.Int (i mod 50); V.Int (i mod 30) ]);
  fill "U" [ "C2"; "Y" ] n_u (fun i -> [ V.Int (i mod 10); V.Int (i mod 40) ]);
  fill "M1" [ "K"; "X" ] n_m (fun i -> [ V.Int (i mod 10); V.Int (i mod 100) ]);
  fill "M2" [ "K"; "Y" ] n_m (fun i -> [ V.Int (i * 7 mod 10); V.Int (i * 3 mod 100) ]);
  Catalog.update_statistics cat;
  db

(* --- forced plans ------------------------------------------------------- *)

let seg_scan ~tab ~residual =
  { Plan.node = Plan.Scan { tab; access = Plan.Seg_scan; sargs = []; residual };
    tables = [ tab ];
    order = [];
    cost = Cost_model.zero;
    out_card = 1. }

let factors_by db sql =
  let block = Database.resolve db sql in
  (block, Normalize.factors_of_block block)

(* 3-way nested loops over S, T, U with every join predicate left as a scan
   residual — the executor, not the RSS, evaluates each candidate pair. *)
let nl3_plan db =
  let block, factors =
    factors_by db
      "SELECT S.A FROM S, T, U WHERE S.A = T.K AND S.C = U.C2 AND S.B + T.X > U.Y"
  in
  let preds_on tabs =
    List.filter_map
      (fun (f : Normalize.factor) -> if f.tables = tabs then Some f.pred else None)
      factors
  in
  let j1 =
    { Plan.node =
        Plan.Nl_join
          { outer = seg_scan ~tab:0 ~residual:[];
            inner = seg_scan ~tab:1 ~residual:(preds_on [ 0; 1 ]) };
      tables = [ 0; 1 ];
      order = [];
      cost = Cost_model.zero;
      out_card = 1. }
  in
  let j2 =
    { Plan.node =
        Plan.Nl_join
          { outer = j1;
            inner =
              seg_scan ~tab:2
                ~residual:(preds_on [ 0; 2 ] @ preds_on [ 0; 1; 2 ]) };
      tables = [ 0; 1; 2 ];
      order = [];
      cost = Cost_model.zero;
      out_card = 1. }
  in
  (block, j2)

(* Merge join of M1 and M2 on K with the remaining predicates as join
   residuals, evaluated once per surfaced pair. *)
let merge_plan db =
  (* Residuals ordered so the selective conjunct comes last: every surfaced
     pair pays the full evaluation chain, which is exactly the per-tuple CPU
     term (W * RSI_CALLS) this bench isolates. *)
  let block, factors =
    factors_by db
      "SELECT M1.X, M2.Y FROM M1, M2 WHERE M1.K = M2.K \
       AND M1.X * 2 + M2.Y * 3 + M1.K >= M2.K - 1 \
       AND M1.X + M2.Y BETWEEN 0 AND 300 \
       AND NOT (M1.X = M2.Y) \
       AND M1.X + M2.Y > 150"
  in
  let merge_f =
    List.find (fun (f : Normalize.factor) -> f.equi_join <> None) factors
  in
  let oc, ic =
    match merge_f.equi_join with
    | Some (a, b) -> if a.Semant.tab = 0 then (a, b) else (b, a)
    | None -> assert false
  in
  let residual =
    List.filter_map
      (fun (f : Normalize.factor) ->
        if f == merge_f then None else Some f.pred)
      factors
  in
  let sort_of tab key =
    let input = seg_scan ~tab ~residual:[] in
    { Plan.node = Plan.Sort { input; key };
      tables = [ tab ];
      order = key;
      cost = Cost_model.zero;
      out_card = 1. }
  in
  let plan =
    { Plan.node =
        Plan.Merge_join
          { outer = sort_of 0 [ (oc, Ast.Asc) ];
            inner = sort_of 1 [ (ic, Ast.Asc) ];
            outer_col = oc;
            inner_col = ic;
            residual };
      tables = [ 0; 1 ];
      order = [ (oc, Ast.Asc) ];
      cost = Cost_model.zero;
      out_card = 1. }
  in
  (block, plan)

(* --- measurement -------------------------------------------------------- *)

let run_forced db (block, plan) ~compiled () =
  let cat = Database.catalog db in
  let cur =
    Cursor.open_plan cat block Bench_util.dummy_env ~compiled ~join:None plan
  in
  List.length (Cursor.drain cur)

let run_query db r ~compiled () =
  List.length (Executor.run ~compiled (Database.catalog db) r).Executor.rows

let measure name (run : compiled:bool -> unit -> int) =
  let n_interp = run ~compiled:false () in
  let n_comp = run ~compiled:true () in
  assert (n_interp = n_comp);
  (* warm runs above also leave the buffer pool hot: timings are CPU-bound *)
  let t_interp = Bench_util.median_time ~repeat (fun () -> run ~compiled:false ()) in
  let t_comp = Bench_util.median_time ~repeat (fun () -> run ~compiled:true ()) in
  (name, n_comp, t_interp, t_comp)

(* --- streaming vs materializing ------------------------------------------ *)

type stream_case = {
  s_name : string;
  s_rows : int;
  s_before : float;
  s_after : float;
  s_runs : int;    (* initial sorted runs written by the streaming path *)
  s_merges : int;  (* merge levels over those runs *)
}

(* The streaming cases are allocation-rate comparisons, so the two sides are
   timed interleaved from a compacted heap and the per-side minimum is kept:
   alternating rounds cancel machine-load drift (which otherwise swamps the
   delta), the compaction stops either side from inheriting the other's
   major-heap fragmentation, and the minimum discards GC/scheduler spikes. *)
(* Interleaved min-of-N with a compaction before every timed run: each
   measurement starts from the same clean heap, so neither side pays for the
   other's garbage and the min converges instead of drifting with heap
   layout. *)
let timed_pair before after =
  let rounds = if smoke then 1 else 9 in
  let tb = ref infinity and ta = ref infinity in
  for _ = 1 to rounds do
    Gc.compact ();
    let _, d = Bench_util.time_once before in
    tb := Float.min !tb d;
    Gc.compact ();
    let _, d = Bench_util.time_once after in
    ta := Float.min !ta d
  done;
  (!tb, !ta)

let array_dispenser arr =
  let i = ref 0 in
  fun () ->
    if !i >= Array.length arr then None
    else begin
      let t = arr.(!i) in
      incr i;
      Some t
    end

(* Large ORDER BY: the same tuple stream through the legacy Seq sort and the
   array/tournament sort, with a small buffer so both spill into many runs. *)
let sort_spill_case () =
  let n = if smoke then 2_000 else 300_000 in
  let data =
    Array.init n (fun i ->
        T.make [ V.Int (i * 7919 mod 5000); V.Int i; V.Int (i mod 97) ])
  in
  let key = [ (0, Rss.Sort.Asc) ] in
  let cmp = Eval.compile_cmp_pos [ (0, Ast.Asc) ] in
  (* Each side is the full executor pipeline it shipped with: the legacy one
     wrapped the plan cursor in [Seq.of_dispenser], sorted through list runs
     and Seq merges, and unwrapped a [Temp_list.read] Seq per output row; the
     streaming one feeds the dispenser straight into run formation and the
     final merge streams to the consumer without rematerializing. *)
  let before () =
    let pager = Rss.Pager.create ~buffer_pages:8 () in
    let sorted =
      Rss.Sort.sort_baseline ~run_pages:1 ~cmp pager ~key
        (Seq.of_dispenser (array_dispenser data))
    in
    let out = ref (Rss.Temp_list.read sorted) in
    let cur () =
      match !out () with
      | Seq.Nil -> None
      | Seq.Cons (t, rest) ->
        out := rest;
        Some t
    in
    let rec count k = match cur () with None -> k | Some _ -> count (k + 1) in
    count 0
  in
  let after () =
    let pager = Rss.Pager.create ~buffer_pages:8 () in
    let next =
      Rss.Sort.sort_stream ~run_pages:1 ~cmp pager ~key (array_dispenser data)
    in
    let rec count k = match next () with None -> k | Some _ -> count (k + 1) in
    count 0
  in
  assert (before () = n);
  assert (after () = n);
  let spill_pager = Rss.Pager.create ~buffer_pages:8 () in
  let drain next = let rec go () = match next () with None -> () | Some _ -> go () in go () in
  drain
    (Rss.Sort.sort_stream ~run_pages:1 ~cmp spill_pager ~key (array_dispenser data));
  let c = Rss.Pager.counters spill_pager in
  let bt = timed_pair (fun () -> ignore (before ())) (fun () -> ignore (after ())) in
  { s_name = "sort_spill";
    s_rows = n;
    s_before = fst bt;
    s_after = snd bt;
    s_runs = c.Rss.Counters.sort_runs;
    s_merges = c.Rss.Counters.merge_passes }

(* Wide grouped aggregation over an ordered (clustered-index) scan: the
   "before" drains the identical plan cursor and groups into per-group tuple
   lists and per-aggregate value lists; the "after" folds each tuple into
   O(1) accumulator state as it streams by. Both compiled. *)
let group_large_case () =
  let n = if smoke then 4_000 else 300_000 in
  let db = Database.create ~buffer_pages:256 () in
  let cat = Database.catalog db in
  let ga = Catalog.create_relation cat ~name:"GA" ~schema:(schema [ "G"; "A"; "B"; "C" ]) in
  for i = 0 to n - 1 do
    ignore
      (Catalog.insert_tuple cat ga
         (T.make
            [ V.Int (i * 200 / n);
              V.Int (i mod 50);
              (if i mod 13 = 0 then V.Null else V.Int (i mod 20));
              V.Int (i mod 7) ]))
  done;
  ignore (Catalog.create_index cat ~name:"GA_G" ~rel:ga ~columns:[ "G" ] ~clustered:true);
  Catalog.update_statistics cat;
  let r =
    Database.optimize db
      "SELECT G, COUNT(*), COUNT(B), SUM(A * 2 + C), SUM(B), AVG(A), AVG(C), MIN(B), MIN(A), MAX(C), MAX(B) FROM GA GROUP BY G"
  in
  let block = r.Optimizer.block in
  let env = Bench_util.dummy_env in
  let open_cur () =
    Cursor.open_plan cat block env ~compiled:true ~join:None r.Optimizer.plan
  in
  let layout = Cursor.layout_of block r.Optimizer.plan in
  let before () =
    List.length
      (Exec_agg.group_aggregate ~compiled:true env layout block
         (Cursor.drain (open_cur ())))
  in
  let after () =
    List.length (Exec_agg.group_stream ~compiled:true env layout block (open_cur ()))
  in
  assert (before () = after ());
  let bt = timed_pair (fun () -> ignore (before ())) (fun () -> ignore (after ())) in
  { s_name = "group_large";
    s_rows = after ();
    s_before = fst bt;
    s_after = snd bt;
    s_runs = 0;
    s_merges = 0 }

(* Join-shaped pipeline with spilling sorts: both inputs are externally
   sorted (many runs, several merge levels), then the sorted streams merge
   on unique keys. "Before" is the legacy Seq sort read back through Seq
   cells; "after" the tournament sort with its final merge streamed. *)
let merge_spill_case () =
  let n = if smoke then 1_500 else 80_000 in
  (* both key columns are permutations of 0..n-1 (multipliers coprime with
     n), so every outer key matches exactly one inner key *)
  let outer = Array.init n (fun i -> T.make [ V.Int (i * 7919 mod n); V.Int (i mod 100) ]) in
  let inner = Array.init n (fun i -> T.make [ V.Int (i * 104729 mod n); V.Int (i mod 91) ]) in
  let key = [ (0, Rss.Sort.Asc) ] in
  let cmp = Eval.compile_cmp_pos [ (0, Ast.Asc) ] in
  let merge_cursors next_o next_i =
    let rec go count o i =
      match o, i with
      | None, _ | _, None -> count
      | Some to_, Some ti ->
        let d = V.compare (T.get to_ 0) (T.get ti 0) in
        if d = 0 then go (count + 1) (next_o ()) (next_i ())
        else if d < 0 then go count (next_o ()) i
        else go count o (next_i ())
    in
    go 0 (next_o ()) (next_i ())
  in
  let merge_seqs so si =
    let rec go count o i =
      match o (), i () with
      | Seq.Nil, _ | _, Seq.Nil -> count
      | Seq.Cons (to_, o'), (Seq.Cons (ti, i') as ri) ->
        let d = V.compare (T.get to_ 0) (T.get ti 0) in
        if d = 0 then go (count + 1) o' i'
        else if d < 0 then go count o' (fun () -> ri)
        else go count (fun () -> Seq.Cons (to_, o')) i'
    in
    go 0 so si
  in
  let before () =
    let pager = Rss.Pager.create ~buffer_pages:4 () in
    let tl_o =
      Rss.Sort.sort_baseline ~run_pages:1 ~cmp pager ~key
        (Seq.of_dispenser (array_dispenser outer))
    in
    let tl_i =
      Rss.Sort.sort_baseline ~run_pages:1 ~cmp pager ~key
        (Seq.of_dispenser (array_dispenser inner))
    in
    merge_seqs (Rss.Temp_list.read tl_o) (Rss.Temp_list.read tl_i)
  in
  let after () =
    let pager = Rss.Pager.create ~buffer_pages:4 () in
    let cur_o = Rss.Sort.sort_stream ~run_pages:1 ~cmp pager ~key (array_dispenser outer) in
    let cur_i = Rss.Sort.sort_stream ~run_pages:1 ~cmp pager ~key (array_dispenser inner) in
    merge_cursors cur_o cur_i
  in
  assert (before () = n);
  assert (after () = n);
  let spill_pager = Rss.Pager.create ~buffer_pages:4 () in
  let drain next = let rec go () = match next () with None -> () | Some _ -> go () in go () in
  drain (Rss.Sort.sort_stream ~run_pages:1 ~cmp spill_pager ~key (array_dispenser outer));
  drain (Rss.Sort.sort_stream ~run_pages:1 ~cmp spill_pager ~key (array_dispenser inner));
  let c = Rss.Pager.counters spill_pager in
  let bt = timed_pair (fun () -> ignore (before ())) (fun () -> ignore (after ())) in
  { s_name = "merge_spill";
    s_rows = n;
    s_before = fst bt;
    s_after = snd bt;
    s_runs = c.Rss.Counters.sort_runs;
    s_merges = c.Rss.Counters.merge_passes }

let run () =
  Bench_util.section
    "exec hot path: interpreted AST evaluation vs compiled closures";
  let db = setup () in
  let scan_filter =
    Database.optimize db
      "SELECT A FROM S WHERE A * 2 + B > C AND NOT (B = 3 OR C < 1)"
  in
  let group_agg =
    Database.optimize db
      "SELECT A, COUNT(*), SUM(B * 2 + C), AVG(C), MAX(B) FROM S GROUP BY A"
  in
  let nl3 = nl3_plan db in
  let merge = merge_plan db in
  let results =
    [ measure "scan_filter" (fun ~compiled -> run_query db scan_filter ~compiled);
      measure "nl3" (fun ~compiled -> run_forced db nl3 ~compiled);
      measure "join_residual" (fun ~compiled -> run_forced db merge ~compiled);
      measure "group_agg" (fun ~compiled -> run_query db group_agg ~compiled) ]
  in
  Bench_util.print_table
    ~header:[ "workload"; "rows"; "interpreted (ms)"; "compiled (ms)"; "speedup" ]
    (List.map
       (fun (name, rows, ti, tc) ->
         [ name;
           string_of_int rows;
           Bench_util.f2 (ti *. 1000.);
           Bench_util.f2 (tc *. 1000.);
           Bench_util.f2 (ti /. tc) ^ "x" ])
       results);
  Printf.printf
    "\n(Same plans, same rows; compiled closes predicates/projections/\n\
     comparators over the layout at plan-open time.)\n";
  Bench_util.section "streaming executor vs materializing baseline";
  let streaming = [ sort_spill_case (); group_large_case (); merge_spill_case () ] in
  Bench_util.print_table
    ~header:
      [ "workload"; "rows"; "materializing (ms)"; "streaming (ms)"; "speedup";
        "runs"; "merge passes" ]
    (List.map
       (fun s ->
         [ s.s_name;
           string_of_int s.s_rows;
           Bench_util.f2 (s.s_before *. 1000.);
           Bench_util.f2 (s.s_after *. 1000.);
           Bench_util.f2 (s.s_before /. s.s_after) ^ "x";
           string_of_int s.s_runs;
           string_of_int s.s_merges ])
       streaming);
  Printf.printf
    "\n(Materializing = list-formed runs merged through Seq cells and\n\
     drain-then-group aggregation; streaming = array runs + tournament merge and\n\
     single-pass accumulators. runs/merge passes are the spill counters the\n\
     streaming sort reports — observed passes = 1 + merge passes, next to\n\
     the cost model's N-page prediction.)\n";
  Bench_util.write_json ~file:"BENCH_exec_hotpath.json"
    (Bench_util.J_obj
       [ ("bench", Bench_util.J_str "exec_hotpath");
         ("smoke", Bench_util.J_bool smoke);
         ("repeat", Bench_util.J_int repeat);
         ( "workloads",
           Bench_util.J_list
             (List.map
                (fun (name, rows, ti, tc) ->
                  Bench_util.J_obj
                    [ ("name", Bench_util.J_str name);
                      ("rows", Bench_util.J_int rows);
                      ("interpreted_s", Bench_util.J_float ti);
                      ("compiled_s", Bench_util.J_float tc);
                      ("speedup", Bench_util.J_float (ti /. tc)) ])
                results) );
         ( "streaming",
           Bench_util.J_list
             (List.map
                (fun s ->
                  Bench_util.J_obj
                    [ ("name", Bench_util.J_str s.s_name);
                      ("rows", Bench_util.J_int s.s_rows);
                      ("before_s", Bench_util.J_float s.s_before);
                      ("after_s", Bench_util.J_float s.s_after);
                      ("speedup", Bench_util.J_float (s.s_before /. s.s_after));
                      ("sort_runs", Bench_util.J_int s.s_runs);
                      ("merge_passes", Bench_util.J_int s.s_merges) ])
                streaming) ) ])
