(* E11 — MVCC read scaling: point-SELECT QPS under a live writer.

   One in-process server over one engine. A background writer connection
   loops forever: BEGIN, churn a hot key (DELETE + re-INSERT), *sleep with
   the transaction open*, COMMIT — so at any instant the hot keys likely
   carry an uncommitted delete-mark and an uncommitted insert. Every few
   cycles it runs VACUUM, pruning the version chains it grows. Reader
   connections (1, 2, 4) run closed-loop synchronous point SELECTs on
   exactly those hot keys, with a small client think time between requests
   — simple (text per call) and prepared (Parse once, Execute per call).

   Under the pre-MVCC locking protocol every one of those reads would queue
   behind the writer's tuple locks for the full open-transaction hold
   (including its sleep), collapsing aggregate QPS to the writer's cycle
   rate regardless of connection count. With snapshot reads the container's
   single core stays mostly idle during think time, so aggregate QPS grows
   near-linearly in connections: the scaling ratio measures freedom from
   blocking, not CPU parallelism.

   Writes BENCH_mvcc.json. With BENCH_ENFORCE_MVCC=1 the bench exits
   nonzero unless prepared 4-connection QPS >= 2x 1-connection QPS. *)

let enforce = Sys.getenv_opt "BENCH_ENFORCE_MVCC" <> None

let kv_rows = if Bench_util.smoke then 200 else 1000
let hot_keys = 16
let iters = if Bench_util.smoke then 120 else 500
let think = 0.0005 (* s of client think time per request *)
let writer_hold = 0.001 (* s the writer sleeps with its txn open *)
let vacuum_every = 8 (* writer cycles between VACUUMs *)
let levels = [ 1; 2; 4 ]

let seed_sql () =
  let b = Buffer.create (kv_rows * 24) in
  Buffer.add_string b "CREATE TABLE KV (K INT, V STRING);\n";
  Buffer.add_string b "CREATE CLUSTERED INDEX KV_K ON KV (K);\n";
  let rec chunk lo =
    if lo < kv_rows then begin
      let hi = min (lo + 100) kv_rows in
      Buffer.add_string b "INSERT INTO KV VALUES ";
      for i = lo to hi - 1 do
        if i > lo then Buffer.add_string b ", ";
        Buffer.add_string b (Printf.sprintf "(%d, 'v%d')" i (i mod 97))
      done;
      Buffer.add_string b ";\n";
      chunk hi
    end
  in
  chunk 0;
  Buffer.add_string b "UPDATE STATISTICS;\n";
  Buffer.contents b

(* --- the background writer ------------------------------------------------ *)

(* Churn one hot key per cycle inside an explicit transaction that stays
   open across a sleep: the adversarial schedule for any reader that takes
   locks. Stops at the next cycle boundary after [stop] is set. *)
let writer_loop addr stop started =
  let c = Client.connect addr in
  let cycle = ref 0 in
  while not (Atomic.get stop) do
    if !cycle = 1 then Bench_util.arrive started;
    let k = !cycle mod hot_keys in
    ignore (Client.ok (Client.simple c "BEGIN"));
    ignore
      (Client.ok (Client.simple c (Printf.sprintf "DELETE FROM KV WHERE K = %d" k)));
    ignore
      (Client.ok
         (Client.simple c (Printf.sprintf "INSERT INTO KV VALUES (%d, 'w%d')" k !cycle)));
    Unix.sleepf writer_hold;
    ignore (Client.ok (Client.simple c "COMMIT"));
    if !cycle mod vacuum_every = vacuum_every - 1 then
      ignore (Client.ok (Client.simple c "VACUUM"));
    incr cycle
  done;
  Client.close c;
  !cycle

(* --- reader cells --------------------------------------------------------- *)

(* One closed-loop reader: a synchronous request, a reply, a think pause.
   Every key is hot, so every read lands on a tuple the writer is likely
   holding an uncommitted version of right now. *)
let run_cell_once addr mode conns =
  let ready = Bench_util.latch conns in
  let go = Bench_util.latch 1 in
  let worker conn_id () =
    match
      let c = Client.connect addr in
      (match mode with
       | `Prepared -> ignore (Client.ok (Client.parse c ~name:"pt" "SELECT V FROM KV WHERE K = ?"))
       | `Simple -> ());
      let read i =
        let k = (conn_id * 5 + i) mod hot_keys in
        match mode with
        | `Simple ->
          Client.ok (Client.simple c (Printf.sprintf "SELECT V FROM KV WHERE K = %d" k))
        | `Prepared -> Client.ok (Client.execute c ~params:[ Rel.Value.Int k ] "pt")
      in
      for i = 1 to 8 do ignore (read i) done;
      (c, read)
    with
    | exception e ->
      Bench_util.arrive ready;
      raise e
    | c, read ->
      Bench_util.arrive ready;
      Bench_util.await go;
      let t0 = Unix.gettimeofday () in
      for i = 1 to iters do
        ignore (read i);
        Unix.sleepf think
      done;
      let dt = Unix.gettimeofday () -. t0 in
      Client.close c;
      (iters, dt)
  in
  let doms = List.init conns (fun id -> Domain.spawn (worker id)) in
  Bench_util.await ready;
  Bench_util.arrive go;
  let cells = List.map Domain.join doms in
  let total_ops = List.fold_left (fun a (o, _) -> a + o) 0 cells in
  let slowest = List.fold_left (fun a (_, dt) -> max a dt) 0. cells in
  float_of_int total_ops /. slowest

let reps = 3

let run_cell addr mode conns =
  let best = ref 0. in
  for _ = 1 to reps do
    Gc.full_major ();
    let q = run_cell_once addr mode conns in
    best := Float.max !best q
  done;
  !best

let run () =
  Bench_util.section "E11: MVCC — point-SELECT QPS scaling under a live writer";
  let db = Database.create ~buffer_pages:256 () in
  ignore (Database.exec_script db (seed_sql ()));
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "systemr_mvcc_%d.sock" (Unix.getpid ()))
  in
  let srv =
    Server.start ~workers:6 ~engine:(Database.engine db) (Server.Unix_sock sock)
  in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let addr = Server.addr srv in
  let stop = Atomic.make false in
  let started = Bench_util.latch 1 in
  let writer =
    Domain.spawn (fun () ->
        try writer_loop addr stop started
        with e ->
          Bench_util.arrive started;
          raise e)
  in
  (* measure only once the writer is actually churning (one full cycle) *)
  Bench_util.await started;
  let results =
    Fun.protect
      ~finally:(fun () -> Atomic.set stop true)
      (fun () ->
        List.map
          (fun conns ->
            let simple = run_cell addr `Simple conns in
            let prepared = run_cell addr `Prepared conns in
            (conns, simple, prepared))
          levels)
  in
  let writer_cycles = Domain.join writer in
  let qps_of mode conns =
    List.find_map
      (fun (c, s, p) ->
        if c = conns then Some (match mode with `Simple -> s | `Prepared -> p)
        else None)
      results
    |> Option.get
  in
  let scaling mode = qps_of mode 4 /. qps_of mode 1 in
  Bench_util.print_table
    ~header:[ "conns"; "simple QPS"; "prepared QPS" ]
    (List.map
       (fun (conns, s, p) ->
         [ string_of_int conns; Printf.sprintf "%.0f" s; Printf.sprintf "%.0f" p ])
       results);
  Printf.printf
    "\nscaling 4-conn/1-conn: simple %.2fx, prepared %.2fx (writer cycles: %d)\n\
     (closed-loop readers with %.1fms think time on writer-hot keys: the\n\
    \ ratio measures snapshot reads never queuing behind the writer's open\n\
    \ transaction, not CPU parallelism)\n"
    (scaling `Simple) (scaling `Prepared) writer_cycles (think *. 1000.);
  let j =
    Bench_util.(
      J_obj
        [ ("bench", J_str "mvcc");
          ("smoke", J_bool smoke);
          ("kv_rows", J_int kv_rows);
          ("hot_keys", J_int hot_keys);
          ("iters_per_conn", J_int iters);
          ("think_s", J_float think);
          ("writer_hold_s", J_float writer_hold);
          ("writer_cycles", J_int writer_cycles);
          ("scaling_simple", J_float (scaling `Simple));
          ("scaling_prepared", J_float (scaling `Prepared));
          ( "levels",
            J_list
              (List.map
                 (fun (conns, s, p) ->
                   J_obj
                     [ ("connections", J_int conns);
                       ("simple_qps", J_float s);
                       ("prepared_qps", J_float p) ])
                 results) ) ])
  in
  Bench_util.write_json ~file:"BENCH_mvcc.json" j;
  if enforce then begin
    let r = scaling `Prepared in
    if r >= 2.0 then
      Printf.printf "ENFORCE: prepared 4-conn/1-conn = %.2fx >= 2x — ok\n" r
    else begin
      Printf.printf "ENFORCE FAILED: prepared 4-conn/1-conn = %.2fx < 2x\n" r;
      exit 1
    end
  end
