(* QERR — estimate quality: cardinality q-error, TABLE 1 constants vs
   histograms.

   Two workloads run over the same analyzed catalogs:

     - a randomized sweep of fuzz scenarios and queries (the same generator
       the differential harness uses), and
     - a fixed battery of point/range/IN predicates over a large Zipf-skewed
       relation, where the paper's uniformity assumption is most wrong.

   For every query the block's estimated QCARD is computed twice — once with
   SET HISTOGRAMS OFF (the paper's TABLE 1 constants) and once with
   histograms on — and compared against the true output cardinality from the
   reference oracle (no executor, so no feedback contamination). Quantiles
   of q_error = max((est+1)/(act+1), (act+1)/(est+1)) for both modes go to
   stdout and BENCH_qerror.json.

   With BENCH_ENFORCE_QERROR=1 the bench exits nonzero unless the histogram
   p95 q-error is strictly below the constants baseline. *)

let enforce = Sys.getenv_opt "BENCH_ENFORCE_QERROR" <> None

(* Estimate the same block under both modes. Toggling on the db (rather than
   building a Ctx by hand) exercises exactly the SET HISTOGRAMS switch users
   see; feedback is disabled so only static estimation is measured. *)
let estimate_both db block =
  Database.set_histograms db false;
  let est_const = Selectivity.block_qcard (Database.ctx db) block in
  Database.set_histograms db true;
  let est_hist = Selectivity.block_qcard (Database.ctx db) block in
  (est_const, est_hist)

let actual db block =
  float_of_int (List.length (Fuzz_oracle.query (Database.catalog db) block))

type acc = {
  mutable const_errs : float list;
  mutable hist_errs : float list;
  mutable n : int;
  mutable skipped : int;
}

let record acc db block =
  let act = actual db block in
  let est_const, est_hist = estimate_both db block in
  acc.const_errs <- Fuzz_harness.q_error ~est:est_const ~act :: acc.const_errs;
  acc.hist_errs <- Fuzz_harness.q_error ~est:est_hist ~act :: acc.hist_errs;
  acc.n <- acc.n + 1

(* --- workload 1: the fuzz generator ------------------------------------ *)

(* Aggregated blocks collapse the interesting cardinality (scalar agg is
   always 1 row; GROUP BY output is bounded by group count): restricting to
   plain select blocks keeps the comparison about selectivity estimation. *)
let fuzz_sweep acc ~scenarios ~queries_per =
  for seed = 1 to scenarios do
    let rng = Workload.rand_init (1000 + seed) in
    let scenario = Fuzz_gen.gen_scenario rng in
    let db = Fuzz_harness.build ~indexes:true scenario in
    Database.set_feedback db false;
    Database.update_statistics db;
    for _ = 1 to queries_per do
      let q = Fuzz_gen.gen_query rng scenario in
      let block = Database.resolve db (Fuzz_sql.query_to_string q) in
      if block.Semant.scalar_agg || block.Semant.group_by <> [] then
        acc.skipped <- acc.skipped + 1
      else record acc db block
    done
  done

(* --- workload 2: skewed point/range battery ---------------------------- *)

let zipf_battery acc ~rows =
  let db = Database.create () in
  Database.set_feedback db false;
  (* U: heavy skew, indexed (constants use 1/ICARD); V: moderate skew, not
     indexed (constants fall back to 1/10, 1/3, 1/4); W: mild skew, wide. *)
  Workload.load_zipf db ~name:"Z" ~rows
    ~cols:[ ("U", 40, 1.3); ("V", 200, 0.9); ("W", 1000, 0.5) ]
    ~indexes:[ ("Z_U", [ "U" ], true) ]
    ~seed:42 ();
  let ks = [ 0; 1; 2; 3; 5; 8; 13; 21; 34 ] in
  let sqls =
    List.concat_map
      (fun k ->
        [ Printf.sprintf "SELECT U FROM Z WHERE U = %d" k;
          Printf.sprintf "SELECT U FROM Z WHERE V = %d" (k * 5);
          Printf.sprintf "SELECT U FROM Z WHERE U > %d" k;
          Printf.sprintf "SELECT U FROM Z WHERE V <= %d" (k * 4);
          Printf.sprintf "SELECT U FROM Z WHERE W BETWEEN %d AND %d" (k * 10)
            ((k * 10) + 60);
          Printf.sprintf "SELECT U FROM Z WHERE U IN (%d, %d, %d)" k (k + 1)
            (k + 7);
          Printf.sprintf "SELECT U FROM Z WHERE NOT V = %d" k;
          Printf.sprintf "SELECT U FROM Z WHERE U = %d OR V = %d" k (k * 3) ])
      ks
  in
  List.iter (fun sql -> record acc db (Database.resolve db sql)) sqls

(* --- reporting ---------------------------------------------------------- *)

let summary errs =
  let a = Array.of_list errs in
  Array.sort compare a;
  let q p = Fuzz_harness.quantile a p in
  (q 0.5, q 0.9, q 0.95, if Array.length a = 0 then nan else a.(Array.length a - 1))

let json_of (p50, p90, p95, mx) =
  Bench_util.(
    J_obj
      [ ("p50", J_float p50); ("p90", J_float p90); ("p95", J_float p95);
        ("max", J_float mx) ])

let run () =
  Bench_util.section
    "QERR: cardinality q-error — TABLE 1 constants vs histograms";
  let acc = { const_errs = []; hist_errs = []; n = 0; skipped = 0 } in
  let scenarios, queries_per, rows =
    if Bench_util.smoke then (6, 8, 1200) else (40, 12, 6000)
  in
  fuzz_sweep acc ~scenarios ~queries_per;
  zipf_battery acc ~rows;
  let ((_, _, cp95, _) as cs) = summary acc.const_errs in
  let ((_, _, hp95, _) as hs) = summary acc.hist_errs in
  let line label (p50, p90, p95, mx) =
    Printf.printf "  %-22s p50=%6.2f  p90=%6.2f  p95=%6.2f  max=%8.2f\n" label
      p50 p90 p95 mx
  in
  Printf.printf "%d queries (%d aggregated blocks skipped)\n" acc.n acc.skipped;
  line "TABLE 1 constants:" cs;
  line "histograms:" hs;
  Bench_util.write_json ~file:"BENCH_qerror.json"
    Bench_util.(
      J_obj
        [ ("queries", J_int acc.n);
          ("constants", json_of cs);
          ("histograms", json_of hs) ]);
  if enforce then
    if hp95 < cp95 then
      Printf.printf "ENFORCE: ok (histogram p95 %.2f < constants p95 %.2f)\n"
        hp95 cp95
    else begin
      Printf.printf
        "ENFORCE: FAIL (histogram p95 %.2f >= constants p95 %.2f)\n" hp95 cp95;
      exit 1
    end
