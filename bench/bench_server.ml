(* E10 — server throughput: sustained QPS over the wire protocol.

   One in-process server over one engine; K client connections (1, 2, 4),
   each on its own domain, each pipelining batches of requests. Three
   workloads — point select on an indexed key, a small indexed join, and a
   write mix (INSERT / UPDATE / SELECT / DELETE on a private key range) —
   each driven two ways:

     simple    one Simple frame per statement, distinct literals per call,
               so every request pays lex + parse + fingerprint before the
               compiled-plan cache can help;
     prepared  Parse once per connection, then Bind + Execute per call —
               the PR-3 cache's steady state with zero parse/fingerprint/
               optimize work per request.

   Writes BENCH_server.json. With BENCH_ENFORCE_SERVER=1 the bench exits
   nonzero unless prepared beats simple by >= 3x QPS on point selects. *)

let enforce = Sys.getenv_opt "BENCH_ENFORCE_SERVER" <> None

let kv_rows = if Bench_util.smoke then 400 else 2000
let iters = if Bench_util.smoke then 192 else 1440
let batch = 32 (* pipelined requests in flight per connection *)
let levels = [ 1; 2; 4 ]

let seed_sql () =
  let b = Buffer.create (kv_rows * 24) in
  Buffer.add_string b "CREATE TABLE KV (K INT, V STRING);\n";
  Buffer.add_string b "CREATE CLUSTERED INDEX KV_K ON KV (K);\n";
  Buffer.add_string b "CREATE TABLE DIM (DK INT, DNAME STRING);\n";
  Buffer.add_string b "CREATE INDEX DIM_DK ON DIM (DK);\n";
  let rec chunk lo =
    if lo < kv_rows then begin
      let hi = min (lo + 100) kv_rows in
      Buffer.add_string b "INSERT INTO KV VALUES ";
      for i = lo to hi - 1 do
        if i > lo then Buffer.add_string b ", ";
        Buffer.add_string b (Printf.sprintf "(%d, 'v%d')" i (i mod 97))
      done;
      Buffer.add_string b ";\n";
      chunk hi
    end
  in
  chunk 0;
  Buffer.add_string b "INSERT INTO DIM VALUES ";
  for d = 0 to 49 do
    if d > 0 then Buffer.add_string b ", ";
    Buffer.add_string b (Printf.sprintf "(%d, 'dept%d')" d d)
  done;
  Buffer.add_string b ";\nUPDATE STATISTICS;\n";
  Buffer.contents b

(* --- pipelined driving ---------------------------------------------------- *)

(* Pipeline in batches: write [batch] requests with one flush, then read
   the [batch] replies — one write(2) and a handful of read(2)s per batch
   on each side, so the per-op cost is the protocol work, not syscalls.
   Raise on any error so a broken workload can't report a fantasy QPS. *)
let rec drive c msgs =
  match msgs with
  | [] -> ()
  | _ ->
    let rec split n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | m :: rest -> split (n - 1) (m :: acc) rest
    in
    let chunk, rest = split batch [] msgs in
    List.iter (Client.send c) chunk;
    Client.flush c;
    List.iter (fun _ -> ignore (Client.ok (Client.read_reply c))) chunk;
    drive c rest

(* The per-call request list for [conn_id], one of the workload/mode cells.
   Returns (messages, ops) — ops is what QPS counts. *)
let requests workload mode conn_id =
  let key i = (conn_id * 7919 + i * 13) mod kv_rows in
  let dkey i = (conn_id * 31 + i * 7) mod 50 in
  (* each writer owns a disjoint key range far above the seeded keys, and
     every iteration deletes what it inserted: steady-state table size *)
  let wkey i = 1_000_000 + (conn_id * 100_000) + i in
  match workload, mode with
  | `Point, `Simple ->
    ( List.init iters (fun i ->
          Protocol.Simple (Printf.sprintf "SELECT V FROM KV WHERE K = %d" (key i))),
      iters )
  | `Point, `Prepared ->
    ( List.init iters (fun i ->
          Protocol.Execute
            { name = "pt"; params = Some [ Rel.Value.Int (key i) ]; fetch = 0 }),
      iters )
  | `Join, `Simple ->
    ( List.init iters (fun i ->
          Protocol.Simple
            (Printf.sprintf
               "SELECT V, DNAME FROM KV, DIM WHERE K = DK AND DK = %d" (dkey i))),
      iters )
  | `Join, `Prepared ->
    ( List.init iters (fun i ->
          Protocol.Execute
            { name = "jn"; params = Some [ Rel.Value.Int (dkey i) ]; fetch = 0 }),
      iters )
  | `Write, `Simple ->
    ( List.concat
        (List.init (iters / 4) (fun i ->
             let k = wkey i in
             [ Protocol.Simple (Printf.sprintf "INSERT INTO KV VALUES (%d, 'w')" k);
               Protocol.Simple
                 (Printf.sprintf "UPDATE KV SET V = 'u' WHERE K = %d" k);
               Protocol.Simple (Printf.sprintf "SELECT V FROM KV WHERE K = %d" k);
               Protocol.Simple (Printf.sprintf "DELETE FROM KV WHERE K = %d" k) ])),
      4 * (iters / 4) )
  | `Write, `Prepared ->
    (* prepared statements are SELECT-only (System R cursors); the DML
       stays textual, so only the read leg of the mix rides the cache *)
    ( List.concat
        (List.init (iters / 4) (fun i ->
             let k = wkey i in
             [ Protocol.Simple (Printf.sprintf "INSERT INTO KV VALUES (%d, 'w')" k);
               Protocol.Simple
                 (Printf.sprintf "UPDATE KV SET V = 'u' WHERE K = %d" k);
               Protocol.Execute
                 { name = "pt"; params = Some [ Rel.Value.Int k ]; fetch = 0 };
               Protocol.Simple (Printf.sprintf "DELETE FROM KV WHERE K = %d" k) ])),
      4 * (iters / 4) )

let prepare_all c =
  List.iter
    (fun (name, sql) -> ignore (Client.ok (Client.parse c ~name sql)))
    [ ("pt", "SELECT V FROM KV WHERE K = ?");
      ("jn", "SELECT V, DNAME FROM KV, DIM WHERE K = DK AND DK = ?") ]

(* Run one cell: [conns] connections, all driving [workload]/[mode]
   concurrently, started on a shared barrier. QPS = total ops / slowest
   connection's wall time. *)
let run_cell_once addr workload mode conns =
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let worker conn_id () =
    (* client domains get the same large nursery as the server's pool
       workers: a minor collection in any domain stops them all, so a
       256k-word client nursery would re-impose the rendezvous cost the
       pool sizing removed (Gc.set is domain-local — set it here, not in
       run()) *)
    Gc.set { (Gc.get ()) with Gc.minor_heap_size = 2_097_152 };
    (* any setup failure must still release the barrier, or the main domain
       spins forever; Domain.join re-raises the failure afterwards *)
    match
      let c = Client.connect addr in
      (match mode with `Prepared -> prepare_all c | `Simple -> ());
      let msgs, ops = requests workload mode conn_id in
      (* warm up: plan cache, buffer pool, allocator *)
      let warm, _ = requests workload mode (conn_id + 100) in
      drive c (List.filteri (fun i _ -> i < 8) warm);
      (c, msgs, ops)
    with
    | exception e ->
      Atomic.incr ready;
      raise e
    | c, msgs, ops ->
      Atomic.incr ready;
      while not (Atomic.get go) do Domain.cpu_relax () done;
      let t0 = Unix.gettimeofday () in
      drive c msgs;
      let dt = Unix.gettimeofday () -. t0 in
      Client.close c;
      (ops, dt)
  in
  let doms = List.init conns (fun id -> Domain.spawn (worker id)) in
  while Atomic.get ready < conns do Domain.cpu_relax () done;
  Atomic.set go true;
  let cells = List.map Domain.join doms in
  let total_ops = List.fold_left (fun a (o, _) -> a + o) 0 cells in
  let slowest = List.fold_left (fun a (_, dt) -> max a dt) 0. cells in
  float_of_int total_ops /. slowest

(* Best of [reps]: the measurement windows are tens of milliseconds, so a
   single descheduling or GC pause swings a run by 2-3x; the max is the
   stable estimate of what the path costs. A full major collection between
   reps keeps one cell's garbage from billing the next. Smoke keeps the
   reps — its windows are shorter and noisier, and the whole bench still
   finishes in seconds. *)
let reps = 3

let run_cell addr workload mode conns =
  let best = ref 0. in
  for _ = 1 to reps do
    Gc.full_major ();
    let q = run_cell_once addr workload mode conns in
    best := Float.max !best q
  done;
  !best

let workload_name = function
  | `Point -> "point_select"
  | `Join -> "small_join"
  | `Write -> "write_mix"

let run () =
  Bench_util.section "E10: server throughput — simple vs prepared QPS";
  let db = Database.create ~buffer_pages:256 () in
  ignore (Database.exec_script db (seed_sql ()));
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "systemr_bench_%d.sock" (Unix.getpid ()))
  in
  let srv =
    Server.start ~workers:8 ~engine:(Database.engine db) (Server.Unix_sock sock)
  in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let addr = Server.addr srv in
  let results =
    List.map
      (fun conns ->
        let per_workload =
          List.map
            (fun w ->
              let simple = run_cell addr w `Simple conns in
              let prepared = run_cell addr w `Prepared conns in
              (workload_name w, simple, prepared))
            [ `Point; `Join; `Write ]
        in
        (conns, per_workload))
      levels
  in
  Bench_util.print_table
    ~header:[ "workload"; "conns"; "simple QPS"; "prepared QPS"; "speedup" ]
    (List.concat_map
       (fun (conns, per_workload) ->
         List.map
           (fun (name, s, p) ->
             [ name; string_of_int conns;
               Printf.sprintf "%.0f" s; Printf.sprintf "%.0f" p;
               Printf.sprintf "%.2fx" (p /. s) ])
           per_workload)
       results);
  Printf.printf
    "\n(single-core container: QPS measures protocol + session overhead\n\
    \ under concurrency, not parallel scan scaling; see the MVCC bench for\n\
    \ read concurrency under writers)\n";
  let point_ratios =
    List.filter_map
      (fun (_, pw) ->
        List.find_map
          (fun (n, s, p) -> if n = "point_select" then Some (p /. s) else None)
          pw)
      results
  in
  let best_ratio = List.fold_left max 0. point_ratios in
  let j =
    Bench_util.(
      J_obj
        [ ("bench", J_str "server");
          ("smoke", J_bool smoke);
          ("kv_rows", J_int kv_rows);
          ("iters_per_conn", J_int iters);
          ("pipeline_batch", J_int batch);
          ("best_point_select_speedup", J_float best_ratio);
          ( "levels",
            J_list
              (List.map
                 (fun (conns, pw) ->
                   J_obj
                     [ ("connections", J_int conns);
                       ( "workloads",
                         J_list
                           (List.map
                              (fun (name, s, p) ->
                                J_obj
                                  [ ("name", J_str name);
                                    ("simple_qps", J_float s);
                                    ("prepared_qps", J_float p);
                                    ("speedup", J_float (p /. s)) ])
                              pw) ) ])
                 results) ) ])
  in
  Bench_util.write_json ~file:"BENCH_server.json" j;
  if enforce then
    if best_ratio >= 3.0 then
      Printf.printf "ENFORCE: prepared/simple on point selects = %.2fx >= 3x — ok\n"
        best_ratio
    else begin
      Printf.printf
        "ENFORCE FAILED: prepared/simple on point selects = %.2fx < 3x\n"
        best_ratio;
      exit 1
    end
