(* Parallel scaling: the same three CPU-bound workloads executed serially and
   through the exchange at DOP 2, 4 and 8.

     sort_spill   large ORDER BY — parallel run formation feeding the
                  loser-tree merge
     nl3          forced 3-way nested-loop join (the optimizer would pick a
                  merge join here, which the exchange correctly refuses to
                  partition) — the outer scan is sliced, workers re-open the
                  inner scans per outer tuple
     group_scan   wide grouped aggregation — per-domain partial accumulators
                  merged at close

   Every DOP must return the identical result (asserted here per run, rows
   and order); the interesting outputs are the wall-clock speedups and the
   counter deltas. Speedups are only meaningful on a multicore host: the
   JSON records [cores] (the runtime's recommended domain count) so a ~1.0x
   curve on a single-core machine reads as the scheduling fact it is rather
   than an executor defect. See EXPERIMENTS.md, E8.

   Emits BENCH_parallel.json. BENCH_SMOKE=1 shrinks inputs for CI. *)

module V = Rel.Value
module T = Rel.Tuple

let smoke = Bench_util.smoke
let repeat = if smoke then 1 else 5
let dops = [ 1; 2; 4; 8 ]

let schema cols =
  Rel.Schema.make (List.map (fun n -> { Rel.Schema.name = n; ty = V.Tint }) cols)

(* No indexes anywhere: every leftmost access is a segment scan, the shape
   the exchange partitions. The modest buffer forces the big sort to spill. *)
let setup () =
  let db = Database.create ~buffer_pages:64 () in
  let cat = Database.catalog db in
  let fill name cols n row =
    let rel = Catalog.create_relation cat ~name ~schema:(schema cols) in
    for i = 0 to n - 1 do
      ignore (Catalog.insert_tuple cat rel (T.make (row i)))
    done
  in
  let n_big = if smoke then 1500 else 30_000 in
  let n_s = if smoke then 120 else 800 in
  let n_t = if smoke then 40 else 250 in
  let n_u = if smoke then 30 else 150 in
  fill "PBIG" [ "A"; "B"; "C" ] n_big (fun i ->
      [ V.Int (i mod 64);
        V.Int ((i * 7919) mod n_big);
        (if i mod 11 = 0 then V.Null else V.Int (i mod 97)) ]);
  fill "PS" [ "A"; "B"; "C" ] n_s (fun i ->
      [ V.Int (i mod 50); V.Int (i mod 20); V.Int (i mod 10) ]);
  fill "PT" [ "K"; "X" ] n_t (fun i -> [ V.Int (i mod 50); V.Int (i mod 30) ]);
  fill "PU" [ "C2"; "Y" ] n_u (fun i -> [ V.Int (i mod 10); V.Int (i mod 40) ]);
  Catalog.update_statistics cat;
  Database.set_plan_cache db false;
  db

let render (out : Executor.output) = List.map T.to_string out.Executor.rows

(* workloads 1 and 3: through the optimizer with the forced-parallel switch *)
let via_optimizer db sql dop =
  Database.set_parallelism db dop;
  Database.set_force_parallel db (dop > 1);
  let rows = render (Database.query db sql) in
  Database.set_force_parallel db false;
  Database.set_parallelism db 1;
  rows

(* workload 2: hand-forced left-deep NL plan (no costs — never optimized),
   wrapped in an exchange at the requested DOP *)
let seg_scan ~tab ~residual =
  { Plan.node = Plan.Scan { tab; access = Plan.Seg_scan; sargs = []; residual };
    tables = [ tab ];
    order = [];
    cost = Cost_model.zero;
    out_card = 1. }

let nl3_plan db =
  let block =
    Database.resolve db
      "SELECT PS.A FROM PS, PT, PU \
       WHERE PS.A = PT.K AND PS.C = PU.C2 AND PS.B + PT.X > PU.Y"
  in
  let factors = Normalize.factors_of_block block in
  let preds_on tabs =
    List.filter_map
      (fun (f : Normalize.factor) -> if f.tables = tabs then Some f.pred else None)
      factors
  in
  let j1 =
    { Plan.node =
        Plan.Nl_join
          { outer = seg_scan ~tab:0 ~residual:[];
            inner = seg_scan ~tab:1 ~residual:(preds_on [ 0; 1 ]) };
      tables = [ 0; 1 ];
      order = [];
      cost = Cost_model.zero;
      out_card = 1. }
  in
  let j2 =
    { Plan.node =
        Plan.Nl_join
          { outer = j1;
            inner =
              seg_scan ~tab:2
                ~residual:(preds_on [ 0; 2 ] @ preds_on [ 0; 1; 2 ]) };
      tables = [ 0; 1; 2 ];
      order = [];
      cost = Cost_model.zero;
      out_card = 1. }
  in
  (block, j2)

let run_nl3 db (block, plan) dop =
  let plan =
    if dop <= 1 then plan
    else
      { Plan.node = Plan.Exchange { input = plan; dop };
        tables = plan.Plan.tables;
        order = plan.Plan.order;
        cost = Cost_model.zero;
        out_card = plan.Plan.out_card }
  in
  let cur =
    Cursor.open_plan (Database.catalog db) block Bench_util.dummy_env
      ~compiled:true ~join:None plan
  in
  List.map T.to_string (Cursor.drain cur)

let run () =
  Bench_util.section "parallel scaling: exchange/sort/group-by over domains";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "host cores (recommended domain count): %d\n" cores;
  let db = setup () in
  let nl3 = nl3_plan db in
  let workloads =
    [ ("sort_spill",
       fun dop -> via_optimizer db "SELECT A, B FROM PBIG ORDER BY B" dop);
      ("nl3", fun dop -> run_nl3 db nl3 dop);
      ("group_scan",
       fun dop ->
         via_optimizer db
           "SELECT A, SUM(B), COUNT(C), MIN(B), AVG(B) FROM PBIG GROUP BY A"
           dop) ]
  in
  let results =
    List.map
      (fun (name, run_at) ->
        Bench_util.subsection name;
        let reference = run_at 1 in
        let baseline = ref nan in
        let rows =
          List.map
            (fun dop ->
              let c = Rss.Pager.counters (Database.pager db) in
              Rss.Counters.reset c;
              let out = ref [] in
              let dt = Bench_util.median_time ~repeat (fun () -> out := run_at dop) in
              if !out <> reference then
                failwith (Printf.sprintf "%s: DOP=%d diverged from serial" name dop);
              if dop = 1 then baseline := dt;
              let speedup = !baseline /. dt in
              Printf.printf
                "  dop=%d  %8.2f ms  speedup %.2fx  (fetches=%d rsi=%d runs=%d)\n%!"
                dop (dt *. 1000.) speedup c.Rss.Counters.page_fetches
                c.Rss.Counters.rsi_calls c.Rss.Counters.sort_runs;
              (dop, dt, speedup))
            dops
        in
        (name, rows))
      workloads
  in
  let open Bench_util in
  write_json ~file:"BENCH_parallel.json"
    (J_obj
       [ ("bench", J_str "parallel_scaling");
         ("smoke", J_bool smoke);
         ("cores", J_int cores);
         ("dops", J_list (List.map (fun d -> J_int d) dops));
         ( "workloads",
           J_list
             (List.map
                (fun (name, rows) ->
                  J_obj
                    [ ("name", J_str name);
                      ( "runs",
                        J_list
                          (List.map
                             (fun (dop, dt, speedup) ->
                               J_obj
                                 [ ("dop", J_int dop);
                                   ("seconds", J_float dt);
                                   ("speedup", J_float speedup) ])
                             rows) ) ])
                results) ) ])
