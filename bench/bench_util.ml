(* Shared machinery for the reproduction benches: cold-cache measurement of
   plans through the pager counters, table rendering, and rank statistics. *)

let w = Ctx.default_w

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title =
  Printf.printf "\n-- %s --\n" title

(* Render a table with left-aligned first column and right-aligned rest. *)
let print_table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let render row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let pad = List.nth widths c - String.length cell in
           if c = 0 then cell ^ String.make pad ' ' else String.make pad ' ' ^ cell)
         row)
  in
  Printf.printf "%s\n" (render header);
  Printf.printf "%s\n" (String.make (String.length (render header)) '-');
  List.iter (fun row -> Printf.printf "%s\n" (render row)) rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f4 x = Printf.sprintf "%.4f" x

(* Minimal JSON writer for machine-readable BENCH_*.json artifacts — enough
   for flat result records, no external dependency. *)
type json =
  | J_int of int
  | J_float of float
  | J_str of string
  | J_bool of bool
  | J_list of json list
  | J_obj of (string * json) list

let rec render_json b = function
  | J_int i -> Buffer.add_string b (string_of_int i)
  | J_float f ->
    (* JSON has no NaN/Infinity literals *)
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
    else Buffer.add_string b "null"
  | J_str s -> Buffer.add_string b (Printf.sprintf "%S" s)
  | J_bool v -> Buffer.add_string b (if v then "true" else "false")
  | J_list xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ", ";
        render_json b x)
      xs;
    Buffer.add_char b ']'
  | J_obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b (Printf.sprintf "%S: " k);
        render_json b v)
      kvs;
    Buffer.add_char b '}'

let write_json ~file j =
  let b = Buffer.create 1024 in
  render_json b j;
  Buffer.add_char b '\n';
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "wrote %s\n" file

(* Tiny-input mode for CI smoke runs (make bench-smoke / @bench-smoke):
   benches with sizeable workloads shrink them so the whole suite stays
   fast while every code path still executes. *)
let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None

(* Counting latch for cross-domain start-line handshakes: each worker
   [arrive]s, the coordinator [await]s all arrivals — condition-variable
   sleeps instead of atomic spin loops, so a stalled worker parks the waiter
   rather than burning the core it is waiting for. *)
type latch = { l_m : Mutex.t; l_c : Condition.t; mutable l_n : int }

let latch n = { l_m = Mutex.create (); l_c = Condition.create (); l_n = n }

let arrive l =
  Mutex.lock l.l_m;
  l.l_n <- l.l_n - 1;
  if l.l_n <= 0 then Condition.broadcast l.l_c;
  Mutex.unlock l.l_m

let await l =
  Mutex.lock l.l_m;
  while l.l_n > 0 do Condition.wait l.l_c l.l_m done;
  Mutex.unlock l.l_m

let dummy_env =
  { Eval.blocks = [];
    params = [||];
    subquery = (fun _ _ -> invalid_arg "bench: unexpected subquery") }

(* Execute a plan cold (buffer pool emptied first) and return the measured
   counters plus row count. *)
let measure_plan db block (plan : Plan.t) =
  let cat = Database.catalog db in
  let pager = Catalog.pager cat in
  Rss.Pager.evict_all pager;
  let counters = Rss.Pager.counters pager in
  let before = Rss.Counters.snapshot counters in
  let cur = Cursor.open_plan cat block dummy_env ~join:None plan in
  let n = List.length (Cursor.drain cur) in
  let d = Rss.Counters.diff ~after:(Rss.Counters.snapshot counters) ~before in
  (d, n)

let measured_cost d = Rss.Counters.cost ~w d

(* Execute a full optimized query (subqueries included) cold. *)
let measure_query db (r : Optimizer.result) =
  let cat = Database.catalog db in
  Rss.Pager.evict_all (Catalog.pager cat);
  let out, d = Executor.run_measured cat r in
  (d, List.length out.Executor.rows)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let median_time ?(repeat = 5) f =
  let times =
    List.init repeat (fun _ ->
        let _, dt = time_once f in
        dt)
  in
  List.nth (List.sort compare times) (repeat / 2)

(* Spearman rank correlation between two float series. *)
let spearman xs ys =
  let rank vs =
    let indexed = List.mapi (fun i v -> (v, i)) vs in
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) indexed in
    let ranks = Array.make (List.length vs) 0. in
    List.iteri (fun rank (_, i) -> ranks.(i) <- float_of_int rank) sorted;
    ranks
  in
  let rx = rank xs and ry = rank ys in
  let n = Array.length rx in
  if n < 2 then 1.0
  else begin
    let d2 =
      Array.to_list (Array.init n (fun i -> (rx.(i) -. ry.(i)) ** 2.))
      |> List.fold_left ( +. ) 0.
    in
    1. -. (6. *. d2 /. float_of_int (n * (n * n - 1)))
  end

(* Pairwise ordering agreement between estimates and measurements. *)
let ordering_agreement pairs =
  let rec all_pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ all_pairs rest
  in
  let agree, total =
    List.fold_left
      (fun (agree, total) ((e1, m1), (e2, m2)) ->
        if abs_float (e1 -. e2) < 1e-9 || abs_float (m1 -. m2) < 1e-9 then
          (agree, total)
        else ((if (e1 < e2) = (m1 < m2) then agree + 1 else agree), total + 1))
      (0, 0) (all_pairs pairs)
  in
  (agree, total)
