(* S5b — "Joins of 8 tables have been optimized in a few seconds" (on 1979
   hardware) and "a few thousand bytes of storage and a few tenths of a
   second of CPU time" for typical cases.

   Wall-clock optimization time (parse + resolve + optimize) for chain joins
   of n = 2..10 relations, via Bechamel's monotonic-clock measurement. *)

module V = Rel.Value

let schema cols =
  Rel.Schema.make (List.map (fun n -> { Rel.Schema.name = n; ty = V.Tint }) cols)

let build db n =
  let cat = Database.catalog db in
  for i = 0 to n - 1 do
    let r =
      Catalog.create_relation cat
        ~name:(Printf.sprintf "C%d" i)
        ~schema:(schema [ "A"; "B" ])
    in
    for k = 0 to 199 do
      ignore
        (Catalog.insert_tuple cat r (Rel.Tuple.make [ V.Int k; V.Int (k mod 10) ]))
    done;
    ignore
      (Catalog.create_index cat
         ~name:(Printf.sprintf "C%d_A" i)
         ~rel:r ~columns:[ "A" ] ~clustered:false)
  done;
  Catalog.update_statistics cat

let sql n =
  let froms = String.concat ", " (List.init n (Printf.sprintf "C%d")) in
  let joins =
    String.concat " AND "
      (List.init (n - 1) (fun i -> Printf.sprintf "C%d.A = C%d.A" i (i + 1)))
  in
  Printf.sprintf "SELECT C0.B FROM %s WHERE %s" froms joins

(* Bechamel measurement of one function: median monotonic-clock run time. *)
let bechamel_ns name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances test in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) (Toolkit.Instance.monotonic_clock) raw
  in
  match Hashtbl.fold (fun _ v acc -> v :: acc) results [] with
  | [ ols ] ->
    (match Analyze.OLS.estimates ols with
     | Some [ ns ] -> ns
     | _ -> nan)
  | _ -> nan

(* Median per-call time of a fast function: loop [inner] calls per sample so
   each sample is well above clock resolution. *)
let median_call_s ?(samples = 7) ?(inner = 200) f =
  let sample () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to inner do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int inner
  in
  let times = List.init samples (fun _ -> sample ()) in
  List.nth (List.sort compare times) (samples / 2)

(* Selective restriction on the chain head: gives branch-and-bound a cheap
   complete plan to bound with, so expensive candidates actually die (an
   unrestricted uniform chain leaves nothing above the bound). *)
let selective_sql n = sql n ^ " AND C0.A < 5"

let bnb_counts db q ~bnb =
  let ctx = Ctx.create ~use_bnb:bnb (Database.catalog db) in
  let r = Database.optimize ~ctx db q in
  ( r.Optimizer.search.Join_enum.plans_considered,
    r.Optimizer.search.Join_enum.subsets_examined )

let run () =
  Bench_util.section "S5b: optimization time vs number of joined relations";
  let max_n = if Bench_util.smoke then 6 else 10 in
  let rows = ref [] in
  for n = 2 to max_n do
    let db = Database.create () in
    build db n;
    let q = sql n in
    let block = Database.resolve db q in
    let ctx = Database.ctx db in
    let ns = bechamel_ns (Printf.sprintf "optimize-%d" n) (fun () ->
        ignore (Optimizer.optimize ctx block))
    in
    let stats = (Optimizer.optimize ctx block).Optimizer.search in
    rows :=
      [ string_of_int n;
        Printf.sprintf "%.3f" (ns /. 1e6);
        string_of_int stats.Join_enum.plans_considered;
        string_of_int stats.Join_enum.solutions_stored ]
      :: !rows
  done;
  Bench_util.print_table
    ~header:[ "relations"; "optimize (ms)"; "plans considered"; "solutions stored" ]
    (List.rev !rows);
  Printf.printf
    "\n(The paper reports 'a few seconds' for 8-table joins on a System/370;\n\
     the shape to check is the growth rate, dominated by 2^n subsets.)\n";

  Bench_util.subsection "branch-and-bound pruning (selective chain, heuristic on)";
  let bnb_max = if Bench_util.smoke then 6 else 8 in
  let bnb_rows = ref [] in
  for n = 3 to bnb_max do
    let db = Database.create () in
    build db n;
    let q = selective_sql n in
    let on_c, on_s = bnb_counts db q ~bnb:true in
    let off_c, off_s = bnb_counts db q ~bnb:false in
    bnb_rows :=
      (n, on_c, on_s, off_c, off_s) :: !bnb_rows
  done;
  let bnb_rows = List.rev !bnb_rows in
  Bench_util.print_table
    ~header:
      [ "relations"; "considered (B&B)"; "considered (off)"; "subsets (B&B)";
        "subsets (off)" ]
    (List.map
       (fun (n, on_c, on_s, off_c, off_s) ->
         [ string_of_int n; string_of_int on_c; string_of_int off_c;
           string_of_int on_s; string_of_int off_s ])
       bnb_rows);

  Bench_util.subsection "plan cache: cold optimize vs cached probe";
  let db = Database.create ~buffer_pages:64 () in
  Workload.load_emp_dept_job db;
  let chain_db = Database.create () in
  build chain_db 8;
  let statements =
    [ ("fig1", db, Workload.fig1_query);
      ("chain8", chain_db, selective_sql 8) ]
  in
  let cache_results =
    List.map
      (fun (name, db, q) ->
        (* cold: the full front-end path a miss pays (parse, resolve,
           optimize); cached: the path a hit pays (parse, fingerprint,
           validate deps, fetch) *)
        let cold_s = median_call_s ~inner:20 (fun () -> Database.optimize db q) in
        ignore (Database.query db q);
        let cached_s = median_call_s (fun () -> Database.cached_plan db q) in
        (match Database.cached_plan db q with
         | Some _ -> ()
         | None -> failwith ("bench: " ^ name ^ " unexpectedly uncached"));
        (name, cold_s, cached_s))
      statements
  in
  Bench_util.print_table
    ~header:[ "statement"; "cold optimize (ms)"; "cached probe (ms)"; "speedup" ]
    (List.map
       (fun (name, cold, cached) ->
         [ name;
           Printf.sprintf "%.4f" (cold *. 1000.);
           Printf.sprintf "%.4f" (cached *. 1000.);
           Bench_util.f1 (cold /. cached) ^ "x" ])
       cache_results);
  Printf.printf
    "\n(A cache hit replaces the whole optimize phase with a fingerprint and a\n\
     stats_version check; the paper's closing argument — optimize once, run\n\
     many times — applied to ad-hoc statements that repeat.)\n";

  Bench_util.write_json ~file:"BENCH_opt_time.json"
    (Bench_util.J_obj
       [ ("bench", Bench_util.J_str "opt_time");
         ("smoke", Bench_util.J_bool Bench_util.smoke);
         ( "bnb",
           Bench_util.J_list
             (List.map
                (fun (n, on_c, on_s, off_c, off_s) ->
                  Bench_util.J_obj
                    [ ("relations", Bench_util.J_int n);
                      ("plans_considered_bnb", Bench_util.J_int on_c);
                      ("plans_considered_off", Bench_util.J_int off_c);
                      ("subsets_examined_bnb", Bench_util.J_int on_s);
                      ("subsets_examined_off", Bench_util.J_int off_s) ])
                bnb_rows) );
         ( "plan_cache",
           Bench_util.J_list
             (List.map
                (fun (name, cold, cached) ->
                  Bench_util.J_obj
                    [ ("statement", Bench_util.J_str name);
                      ("cold_optimize_s", Bench_util.J_float cold);
                      ("cached_probe_s", Bench_util.J_float cached);
                      ("speedup", Bench_util.J_float (cold /. cached)) ])
                cache_results) ) ]);

  (* CI gate: with BENCH_ENFORCE_CACHE_SPEEDUP set, a cached probe that is
     not at least 10x faster than a cold optimize fails the run *)
  if Sys.getenv_opt "BENCH_ENFORCE_CACHE_SPEEDUP" <> None then
    List.iter
      (fun (name, cold, cached) ->
        let speedup = cold /. cached in
        if speedup < 10. then begin
          Printf.eprintf
            "FAIL: cached plan lookup for %s only %.1fx faster than cold optimize\n"
            name speedup;
          exit 1
        end)
      cache_results
