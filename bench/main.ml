(* Reproduction harness: one bench per table, figure and quantitative claim
   of the paper (see DESIGN.md's experiment index).

   Run all:        dune exec bench/main.exe
   Run a subset:   dune exec bench/main.exe -- t1 fig s7b *)

let benches =
  [ ("t1", "TABLE 1: selectivity factors", Bench_table1.run);
    ("t2", "TABLE 2: cost formulas", Bench_table2.run);
    ("fig", "Figures 1-6: the EMP/DEPT/JOB example", Bench_fig1_6.run);
    ("s5a", "search-space size vs 2^n", Bench_search_space.run);
    ("s5b", "optimization time (Bechamel)", Bench_opt_time.run);
    ("s7a", "optimization cost in retrievals", Bench_opt_vs_exec.run);
    ("s7b", "plan quality: chosen vs measured-best", Bench_plan_quality.run);
    ("s7c", "nested loops vs merging scans crossover", Bench_join_methods.run);
    ("abl", "ablations A1-A3", Bench_ablation.run);
    ("n1", "nested queries: correlated caching", Bench_nested.run);
    ("e2", "extension: selectivity under skew", Bench_skew.run);
    ("qerr", "cardinality q-error: TABLE 1 constants vs histograms", Bench_qerror.run);
    ("hot", "exec hot path: interpreted vs compiled evaluation", Bench_exec_hotpath.run);
    ("par", "parallel scaling: exchange/sort/group-by over domains", Bench_parallel.run);
    ("srv", "server throughput: simple vs prepared QPS over the wire", Bench_server.run);
    ("mvcc", "MVCC: point-SELECT QPS scaling under a live writer", Bench_mvcc.run);
    ("commit", "group commit: commit QPS vs per-commit flushes", Bench_commit.run) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map (fun (n, _, _) -> n) benches
  in
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> n = name) benches with
      | Some (_, _, run) -> run ()
      | None ->
        Printf.eprintf "unknown bench %S; available: %s\n" name
          (String.concat ", " (List.map (fun (n, _, _) -> n) benches));
        exit 1)
    requested;
  print_newline ()
