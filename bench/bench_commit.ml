(* E12 — group commit: commit QPS under concurrent writers.

   One in-process server over one engine, with a [Wal.set_flush_hook] that
   sleeps ~200us per flush to stand in for the device fsync this in-memory
   WAL doesn't pay. N writer connections (1, 2, 4, 8) run closed-loop
   auto-commit single-row INSERTs — every statement is a commit, so the
   flush policy is the whole game:

   - per-commit (SET GROUP_COMMIT OFF): each commit appends and flushes
     privately under the engine latch. The fsync serializes everyone;
     aggregate QPS is pinned near 1/fsync regardless of connection count.
   - group (SET GROUP_COMMIT ON, SET COMMIT_DELAY 200): committers enqueue
     and park; the first becomes leader, sleeps out the 200us window with
     the latch free, appends every queued commit record in enqueue order and
     pays ONE flush for the batch. Aggregate QPS grows with connections
     because the fsync cost is amortized across the window's commits.

   Writes BENCH_commit.json. With BENCH_ENFORCE_COMMIT=1 the bench exits
   nonzero unless 8-connection group-commit QPS >= 2x 8-connection
   per-commit QPS. *)

let enforce = Sys.getenv_opt "BENCH_ENFORCE_COMMIT" <> None

let flush_latency = 200e-6 (* simulated fsync, s *)
let commit_delay_us = 200 (* leader batching window, us *)
let iters = if Bench_util.smoke then 60 else 400 (* commits per connection *)
let levels = [ 1; 2; 4; 8 ]
let reps = 2

let seed_sql =
  "CREATE TABLE KV (K INT, V STRING);\n\
   CREATE CLUSTERED INDEX KV_K ON KV (K);\n\
   INSERT INTO KV VALUES (0, 'seed');\n\
   UPDATE STATISTICS;\n"

(* One closed-loop writer cell: every connection commits [iters] times;
   aggregate QPS = total commits / slowest connection. *)
let run_cell_once addr conns =
  let ready = Bench_util.latch conns in
  let go = Bench_util.latch 1 in
  let worker conn_id () =
    match
      let c = Client.connect addr in
      ignore
        (Client.ok
           (Client.simple c
              (Printf.sprintf "INSERT INTO KV VALUES (%d, 'warm')"
                 (1000 + conn_id))));
      c
    with
    | exception e ->
      Bench_util.arrive ready;
      raise e
    | c ->
      Bench_util.arrive ready;
      Bench_util.await go;
      let t0 = Unix.gettimeofday () in
      for i = 1 to iters do
        ignore
          (Client.ok
             (Client.simple c
                (Printf.sprintf "INSERT INTO KV VALUES (%d, 'b')"
                   ((conn_id * 1_000_000) + i))))
      done;
      let dt = Unix.gettimeofday () -. t0 in
      Client.close c;
      (iters, dt)
  in
  let doms = List.init conns (fun id -> Domain.spawn (worker id)) in
  Bench_util.await ready;
  Bench_util.arrive go;
  let cells = List.map Domain.join doms in
  let total_ops = List.fold_left (fun a (o, _) -> a + o) 0 cells in
  let slowest = List.fold_left (fun a (_, dt) -> max a dt) 0. cells in
  float_of_int total_ops /. slowest

let run_cell addr conns =
  let best = ref 0. in
  for _ = 1 to reps do
    Gc.full_major ();
    best := Float.max !best (run_cell_once addr conns)
  done;
  !best

let run () =
  Bench_util.section "E12: group commit — commit QPS vs per-commit flushes";
  let db = Database.create ~buffer_pages:256 () in
  ignore (Database.exec_script db seed_sql);
  let eng = Database.engine db in
  Rss.Wal.set_flush_hook (Database.wal db)
    (Some (fun () -> Unix.sleepf flush_latency));
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "systemr_commit_%d.sock" (Unix.getpid ()))
  in
  let srv = Server.start ~workers:10 ~engine:eng (Server.Unix_sock sock) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Rss.Wal.set_flush_hook (Database.wal db) None)
  @@ fun () ->
  let addr = Server.addr srv in
  let set sql =
    let c = Client.connect addr in
    ignore (Client.ok (Client.simple c sql));
    Client.close c
  in
  (* per-commit baseline first: one private flush per commit *)
  set "SET GROUP_COMMIT OFF";
  let percommit = List.map (fun conns -> (conns, run_cell addr conns)) levels in
  (* group commit: shared flush windows *)
  set "SET GROUP_COMMIT ON";
  set (Printf.sprintf "SET COMMIT_DELAY %d" commit_delay_us);
  let s0 = Engine.group_commit_stats eng in
  let grouped = List.map (fun conns -> (conns, run_cell addr conns)) levels in
  let s1 = Engine.group_commit_stats eng in
  let flushes = s1.Engine.flushes - s0.Engine.flushes in
  let commits = s1.Engine.grouped_commits - s0.Engine.grouped_commits in
  let commits_per_flush =
    if flushes = 0 then 0. else float_of_int commits /. float_of_int flushes
  in
  let qps l conns = List.assoc conns l in
  Bench_util.print_table
    ~header:[ "conns"; "per-commit QPS"; "group QPS"; "speedup" ]
    (List.map
       (fun conns ->
         let p = qps percommit conns and g = qps grouped conns in
         [ string_of_int conns;
           Printf.sprintf "%.0f" p;
           Printf.sprintf "%.0f" g;
           Printf.sprintf "%.2fx" (g /. p) ])
       levels);
  Printf.printf
    "\n%.0f commits/flush over the grouped cells (max batch %d); fsync \
     stand-in %.0fus,\ncommit delay %dus. Group commit trades single-writer \
     latency (the leader sleeps\nout its window) for aggregate throughput: \
     the per-commit fsync bill is split\nacross every commit in the \
     window.\n"
    commits_per_flush s1.Engine.max_batch (flush_latency *. 1e6)
    commit_delay_us;
  let j =
    Bench_util.(
      J_obj
        [ ("bench", J_str "commit");
          ("smoke", J_bool smoke);
          ("iters_per_conn", J_int iters);
          ("flush_latency_us", J_float (flush_latency *. 1e6));
          ("commit_delay_us", J_int commit_delay_us);
          ("grouped_flushes", J_int flushes);
          ("grouped_commits", J_int commits);
          ("commits_per_flush", J_float commits_per_flush);
          ("max_batch", J_int s1.Engine.max_batch);
          ( "levels",
            J_list
              (List.map
                 (fun conns ->
                   J_obj
                     [ ("connections", J_int conns);
                       ("per_commit_qps", J_float (qps percommit conns));
                       ("group_qps", J_float (qps grouped conns)) ])
                 levels) ) ])
  in
  Bench_util.write_json ~file:"BENCH_commit.json" j;
  if enforce then begin
    let r = qps grouped 8 /. qps percommit 8 in
    if r >= 2.0 then
      Printf.printf "ENFORCE: 8-conn group/per-commit = %.2fx >= 2x — ok\n" r
    else begin
      Printf.printf "ENFORCE FAILED: 8-conn group/per-commit = %.2fx < 2x\n" r;
      exit 1
    end
  end
