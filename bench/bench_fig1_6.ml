(* F1–F6 — the worked example of Figures 1 through 6.

   The exact query of Figure 1 is optimized over the EMP/DEPT/JOB database,
   and the search tree is dumped exactly as the figures walk it: access paths
   for single relations with local predicates only (Fig. 2–3), solutions for
   pairs of relations by nested loops (Fig. 4) and merging scans (Fig. 5),
   and the full three-relation solutions (Fig. 6), ending with the chosen
   plan. *)

let run () =
  Bench_util.section "F1-F6: the Figure 1 join example (EMP, DEPT, JOB)";
  let db = Database.create ~buffer_pages:24 () in
  (* the figures assume the paper's TABLE 1 estimates: pin them *)
  Database.set_histograms db false;
  Workload.load_emp_dept_job db;
  Printf.printf "query (Figure 1):\n  %s\n" Workload.fig1_query;
  let r = Database.optimize db Workload.fig1_query in
  Printf.printf "\nsearch tree (Figures 2-6):\n%s"
    (Explain.search_tree r.Optimizer.block r.Optimizer.search);
  Printf.printf "\nchosen plan:\n%s" (Explain.plan r);
  let d, n = Bench_util.measure_query db r in
  Printf.printf
    "\nexecuted: %d result tuples; measured %d page fetches, %d RSI calls \
     (COST = %.1f at W = %.2f)\n"
    n d.Rss.Counters.page_fetches d.Rss.Counters.rsi_calls
    (Bench_util.measured_cost d) Bench_util.w;
  Printf.printf
    "predicted: cost {pages=%.1f; rsi=%.1f}, %.1f tuples\n"
    r.Optimizer.plan.Plan.cost.Cost_model.pages
    r.Optimizer.plan.Plan.cost.Cost_model.rsi r.Optimizer.plan.Plan.out_card
