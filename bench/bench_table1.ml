(* T1 — TABLE 1: selectivity factors.

   For each predicate class of TABLE 1, print the paper's formula, the F the
   optimizer computes on a seeded catalog, and the fraction of tuples that
   actually satisfy the predicate, so estimate-vs-reality can be read off
   per rule. *)

let setup () =
  let db = Database.create () in
  (* this bench reads off the paper's TABLE 1 rules: pin them *)
  Database.set_histograms db false;
  Workload.load_uniform db ~name:"R" ~rows:2000
    ~cols:
      [ { Workload.col = "A"; distinct = 50 };   (* indexed *)
        { Workload.col = "B"; distinct = 100 };  (* not indexed *)
        { Workload.col = "S"; distinct = 1000 } ]
    ~indexes:[ ("R_A", [ "A" ], true) ]
    ~seed:11 ();
  Workload.load_uniform db ~name:"U" ~rows:400
    ~cols:
      [ { Workload.col = "A"; distinct = 25 };
        { Workload.col = "D"; distinct = 8 } ]
    ~indexes:[ ("U_A", [ "A" ], false) ]
    ~seed:12 ();
  db

let estimate db sql =
  let block = Database.resolve db sql in
  match block.Semant.where with
  | Some wp -> Selectivity.factor (Database.ctx db) block wp
  | None -> 1.

(* measured fraction of the cross product satisfying the WHERE, via the
   (oracle-tested) executor *)
let measured db sql =
  let block = Database.resolve db sql in
  let out = Database.query db sql in
  let denom =
    List.fold_left
      (fun acc (tr : Semant.table_ref) ->
        acc
        * Rss.Segment.tuple_count tr.Semant.rel.Catalog.segment
            ~rel_id:tr.Semant.rel.Catalog.rel_id)
      1 block.Semant.tables
  in
  float_of_int (List.length out.Executor.rows) /. float_of_int denom

let run () =
  Bench_util.section "T1: TABLE 1 — selectivity factors (estimated F vs measured fraction)";
  let db = setup () in
  let cases =
    [ ("column = value (index)", "SELECT A FROM R WHERE A = 7", "1/ICARD(index)");
      ("column = value (no index)", "SELECT A FROM R WHERE B = 7", "1/10");
      ( "col1 = col2 (both indexed)",
        "SELECT R.A FROM R, U WHERE R.A = U.A",
        "1/max(ICARD1,ICARD2)" );
      ( "col1 = col2 (one indexed)",
        "SELECT R.B FROM R, U WHERE R.B = U.A",
        "1/ICARD(i)" );
      ( "col1 = col2 (no index)",
        "SELECT R.B FROM R, U WHERE R.B = U.D",
        "1/10" );
      ( "column > value (arith, index)",
        "SELECT A FROM R WHERE A > 35",
        "(high-value)/(high-low)" );
      ("column > value (no index)", "SELECT A FROM R WHERE B > 66", "1/3");
      ( "BETWEEN (arith, index)",
        "SELECT A FROM R WHERE A BETWEEN 10 AND 19",
        "(v2-v1)/(high-low)" );
      ("BETWEEN (no index)", "SELECT A FROM R WHERE B BETWEEN 10 AND 19", "1/4");
      ( "column IN (list)",
        "SELECT A FROM R WHERE A IN (3, 17, 42)",
        "n * F(col = value)" );
      ( "columnA IN subquery",
        "SELECT A FROM R WHERE A IN (SELECT A FROM U WHERE D = 3)",
        "card(sub)/prod(card)" );
      ( "pred1 OR pred2",
        "SELECT A FROM R WHERE A = 3 OR B = 9",
        "F1 + F2 - F1*F2" );
      ( "pred1 AND pred2 (one factor)",
        "SELECT A FROM R WHERE (A = 3 AND B = 9) OR (A = 3 AND B = 9)",
        "F1 * F2 (independence)" );
      ("NOT pred", "SELECT A FROM R WHERE NOT A = 3", "1 - F") ]
  in
  let rows =
    List.map
      (fun (label, sql, formula) ->
        (* BETWEEN splits into two boolean factors; multiply them *)
        let block = Database.resolve db sql in
        let est =
          match Normalize.factors_of_block block with
          | [] -> 1.
          | fs ->
            List.fold_left
              (fun acc (f : Normalize.factor) ->
                acc *. Selectivity.factor (Database.ctx db) block f.Normalize.pred)
              1. fs
        in
        ignore (estimate db sql);
        [ label; formula; Bench_util.f4 est; Bench_util.f4 (measured db sql) ])
      cases
  in
  Bench_util.print_table
    ~header:[ "predicate class"; "TABLE 1 formula"; "estimated F"; "measured" ]
    rows
