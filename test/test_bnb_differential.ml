(* Branch-and-bound differential: the bound-pruned bitset DP must choose a
   byte-identical plan to the unpruned enumeration on every query shape —
   pruning only discards plans strictly above the bound the chosen plan
   never exceeds — while considering no more (and on larger joins strictly
   fewer) candidate plans. *)

module V = Rel.Value

let schema cols =
  Rel.Schema.make (List.map (fun n -> { Rel.Schema.name = n; ty = V.Tint }) cols)

(* the chain schema of test_join_enum: T1(A,X) -- T2(A,B,Y) -- T3(B,Z) *)
let chain_db ?(rows = 200) () =
  let db = Database.create ~buffer_pages:16 () in
  let cat = Database.catalog db in
  let t1 = Catalog.create_relation cat ~name:"T1" ~schema:(schema [ "A"; "X" ]) in
  let t2 = Catalog.create_relation cat ~name:"T2" ~schema:(schema [ "A"; "B"; "Y" ]) in
  let t3 = Catalog.create_relation cat ~name:"T3" ~schema:(schema [ "B"; "Z" ]) in
  for i = 0 to rows - 1 do
    ignore
      (Catalog.insert_tuple cat t1 (Rel.Tuple.make [ V.Int (i mod 20); V.Int i ]));
    ignore
      (Catalog.insert_tuple cat t2
         (Rel.Tuple.make [ V.Int (i mod 20); V.Int (i mod 10); V.Int i ]));
    ignore
      (Catalog.insert_tuple cat t3 (Rel.Tuple.make [ V.Int (i mod 10); V.Int i ]))
  done;
  ignore (Catalog.create_index cat ~name:"T1_A" ~rel:t1 ~columns:[ "A" ] ~clustered:false);
  ignore (Catalog.create_index cat ~name:"T1_X" ~rel:t1 ~columns:[ "X" ] ~clustered:false);
  ignore (Catalog.create_index cat ~name:"T2_A" ~rel:t2 ~columns:[ "A" ] ~clustered:false);
  ignore (Catalog.create_index cat ~name:"T3_B" ~rel:t3 ~columns:[ "B" ] ~clustered:false);
  Catalog.update_statistics cat;
  db

let corpus =
  [ "SELECT X FROM T1 WHERE A = 3";
    "SELECT X FROM T1 WHERE A = 3 AND X > 10";
    "SELECT X FROM T1 WHERE A = 1 OR X = 2";
    "SELECT X FROM T1, T2 WHERE T1.A = T2.A";
    "SELECT X FROM T1, T2 WHERE T1.A = T2.A AND T2.B = 3 AND T1.X < 100";
    "SELECT X FROM T1, T2, T3 WHERE T1.A = T2.A AND T2.B = T3.B";
    "SELECT X FROM T1, T2, T3 WHERE T1.A = T2.A AND T2.B = T3.B AND T3.Z > 5 \
     AND T1.X BETWEEN 2 AND 90";
    "SELECT Y FROM T2, T3 WHERE T2.Y = T3.Z";
    "SELECT X FROM T1, T2 WHERE T1.A = T2.A ORDER BY T1.A";
    "SELECT X FROM T1, T2, T3 WHERE T1.A = T2.A AND T2.B = T3.B ORDER BY T3.B";
    "SELECT X FROM T1, T3 WHERE X = 1 AND Z = 2";
    "SELECT X FROM T1 WHERE A IN (SELECT B FROM T2 WHERE Y = 3)";
    "SELECT X FROM T1 WHERE A = 2 AND X > (SELECT MIN(Y) FROM T2)";
    "SELECT A, COUNT(*) FROM T1 GROUP BY A" ]

let compare_on db ~heuristic sql =
  let cat = Database.catalog db in
  let on = Ctx.create ~use_heuristic:heuristic ~use_bnb:true cat in
  let off = Ctx.create ~use_heuristic:heuristic ~use_bnb:false cat in
  let r_on = Database.optimize ~ctx:on db sql in
  let r_off = Database.optimize ~ctx:off db sql in
  Alcotest.(check string)
    (Printf.sprintf "identical plan (heuristic=%b): %s" heuristic sql)
    (Plan.describe r_off.Optimizer.plan)
    (Plan.describe r_on.Optimizer.plan);
  let w = Ctx.default_w in
  Alcotest.(check (float 1e-9))
    ("identical cost: " ^ sql)
    (Cost_model.total ~w r_off.Optimizer.plan.Plan.cost)
    (Cost_model.total ~w r_on.Optimizer.plan.Plan.cost);
  ( r_on.Optimizer.search.Join_enum.plans_considered,
    r_off.Optimizer.search.Join_enum.plans_considered )

let test_chain_corpus () =
  let db = chain_db ~rows:500 () in
  (* per query the greedy seed's own probes are counted too, so on tiny
     searches B&B can cost a handful more; over the corpus the pruning must
     pay for the seeds *)
  List.iter
    (fun heuristic ->
      let on_total, off_total =
        List.fold_left
          (fun (a, b) sql ->
            let on, off = compare_on db ~heuristic sql in
            (a + on, b + off))
          (0, 0) corpus
      in
      Alcotest.(check bool)
        (Printf.sprintf "corpus total prunes (heuristic=%b): %d vs %d" heuristic
           on_total off_total)
        true (on_total <= off_total))
    [ true; false ]

(* Indexed chain with a selective restriction on R0: the greedy bound is the
   cheap index-NL pipeline, so expensive merge/sort candidates die early.
   (An unindexed uniform chain gives B&B nothing to prune — every candidate
   costs less than any complete plan.) *)
let eight_chain_db () =
  let db = Database.create ~buffer_pages:16 () in
  let cat = Database.catalog db in
  for i = 0 to 7 do
    let r =
      Catalog.create_relation cat
        ~name:(Printf.sprintf "R%d" i)
        ~schema:(schema [ "A"; "B" ])
    in
    for k = 0 to 199 do
      ignore (Catalog.insert_tuple cat r (Rel.Tuple.make [ V.Int k; V.Int (k mod 5) ]))
    done;
    ignore
      (Catalog.create_index cat ~name:(Printf.sprintf "R%d_A" i) ~rel:r
         ~columns:[ "A" ] ~clustered:false)
  done;
  Catalog.update_statistics cat;
  let joins =
    String.concat " AND "
      (List.init 7 (fun i -> Printf.sprintf "R%d.A = R%d.A" i (i + 1)))
  in
  let froms = String.concat ", " (List.init 8 (fun i -> Printf.sprintf "R%d" i)) in
  (db, Printf.sprintf "SELECT R0.B FROM %s WHERE %s AND R0.A < 5" froms joins)

let test_eight_chain_prunes () =
  let db, sql = eight_chain_db () in
  let on, off = compare_on db ~heuristic:true sql in
  Alcotest.(check bool)
    (Printf.sprintf "strictly fewer plans on 8-chain (%d vs %d)" on off)
    true (on < off)

let test_emp_workload () =
  let db = Database.create ~buffer_pages:64 () in
  Workload.load_emp_dept_job db;
  List.iter
    (fun sql -> ignore (compare_on db ~heuristic:true sql))
    [ Workload.fig1_query;
      "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND SAL > 25000";
      "SELECT NAME, DNAME, TITLE FROM EMP, DEPT, JOB \
       WHERE EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB AND LOC = 'DENVER' \
       ORDER BY NAME" ]

let () =
  Alcotest.run "bnb_differential"
    [ ( "differential",
        [ Alcotest.test_case "chain corpus, both heuristics" `Quick test_chain_corpus;
          Alcotest.test_case "emp workload" `Quick test_emp_workload;
          Alcotest.test_case "8-chain strictly prunes" `Quick test_eight_chain_prunes ] ) ]
