(* TABLE 1 selectivity factors, asserted case by case on a catalog with known
   statistics:
     R(A, B, S):  1000 rows; index R_A on A with ICARD = 50, keys 0..999
                  (via values A = (i*20) mod 1000 ... we load A in [0,1000)
                  with exactly 50 distinct values); S has no index.
     U(A, D):     200 rows; index U_A on A with ICARD = 20.

   This file is the pinned SET HISTOGRAMS OFF contract: with histograms
   disabled, every estimate must reproduce the paper's TABLE 1 constants
   exactly, even though UPDATE STATISTICS has collected histograms. *)

module V = Rel.Value

let feq = Alcotest.(check (float 1e-6))

let setup () =
  let db = Database.create () in
  Database.set_histograms db false;
  Workload.load_uniform db ~name:"R" ~rows:1000
    ~cols:
      [ { Workload.col = "A"; distinct = 50 };
        { Workload.col = "B"; distinct = 100 };
        { Workload.col = "S"; distinct = 400 } ]
    ~indexes:[ ("R_A", [ "A" ], true) ]
    ~seed:1 ();
  Workload.load_uniform db ~name:"U" ~rows:200
    ~cols:[ { Workload.col = "A"; distinct = 20 }; { Workload.col = "D"; distinct = 5 } ]
    ~indexes:[ ("U_A", [ "A" ], false) ]
    ~seed:2 ();
  db

let ctx_block db sql =
  let block = Database.resolve db sql in
  (Database.ctx db, block)

let sel db sql =
  let ctx, block = ctx_block db sql in
  match block.Semant.where with
  | Some w -> Selectivity.factor ctx block w
  | None -> Alcotest.fail "no where"

(* exact ICARD values depend on the random draw: read them from the catalog *)
let icard db idx_name =
  let idx = Option.get (Catalog.find_index (Database.catalog db) idx_name) in
  float_of_int (Option.get idx.Catalog.istats).Stats.icard

let low_high db idx_name =
  let idx = Option.get (Catalog.find_index (Database.catalog db) idx_name) in
  let s = Option.get idx.Catalog.istats in
  match s.Stats.low_key, s.Stats.high_key with
  | Some (V.Int lo), Some (V.Int hi) -> (float_of_int lo, float_of_int hi)
  | _ -> Alcotest.fail "no key range"

let test_eq_with_index () =
  let db = setup () in
  feq "F = 1/ICARD" (1. /. icard db "R_A") (sel db "SELECT A FROM R WHERE A = 7")

let test_eq_without_index () =
  let db = setup () in
  feq "F = 1/10" 0.1 (sel db "SELECT A FROM R WHERE B = 7")

let test_col_eq_col_both_indexed () =
  let db = setup () in
  let expected = 1. /. Float.max (icard db "R_A") (icard db "U_A") in
  feq "F = 1/max(ICARDs)" expected (sel db "SELECT R.A FROM R, U WHERE R.A = U.A")

let test_col_eq_col_one_indexed () =
  let db = setup () in
  feq "F = 1/ICARD(U_A)" (1. /. icard db "U_A")
    (sel db "SELECT R.B FROM R, U WHERE R.B = U.A")

let test_col_eq_col_none_indexed () =
  let db = setup () in
  feq "F = 1/10" 0.1 (sel db "SELECT R.B FROM R, U WHERE R.B = U.D")

let test_range_interpolation () =
  let db = setup () in
  let lo, hi = low_high db "R_A" in
  let v = Float.round ((lo +. hi) /. 2.) in
  feq "col > value interpolates" ((hi -. v) /. (hi -. lo))
    (sel db (Printf.sprintf "SELECT A FROM R WHERE A > %.0f" v));
  feq "col < value interpolates" ((v -. lo) /. (hi -. lo))
    (sel db (Printf.sprintf "SELECT A FROM R WHERE A < %.0f" v));
  (* clamped at the extremes *)
  feq "beyond high" 0. (sel db (Printf.sprintf "SELECT A FROM R WHERE A > %.0f" (hi +. 5.)));
  feq "below low" 1. (sel db (Printf.sprintf "SELECT A FROM R WHERE A > %.0f" (lo -. 5.)))

let test_range_no_index () =
  let db = setup () in
  feq "F = 1/3" (1. /. 3.) (sel db "SELECT A FROM R WHERE B > 17")

let test_between_interpolation () =
  let db = setup () in
  let lo, hi = low_high db "R_A" in
  let v1 = Float.round (lo +. ((hi -. lo) /. 4.)) in
  let v2 = Float.round (lo +. ((hi -. lo) /. 2.)) in
  (* BETWEEN is one boolean factor with TABLE 1's own interpolation *)
  let expected = (v2 -. v1) /. (hi -. lo) in
  feq "between interpolation" expected
    (sel db (Printf.sprintf "SELECT A FROM R WHERE A BETWEEN %.0f AND %.0f" v1 v2))

let test_between_no_index () =
  let db = setup () in
  feq "F = 1/4" 0.25 (sel db "SELECT A FROM R WHERE B BETWEEN 3 AND 9")

let test_in_list () =
  let db = setup () in
  feq "n * F(eq)" (3. /. icard db "R_A")
    (sel db "SELECT A FROM R WHERE A IN (1, 2, 3)");
  (* capped at 1/2 *)
  let many = String.concat ", " (List.init 40 string_of_int) in
  feq "capped" 0.5 (sel db (Printf.sprintf "SELECT A FROM R WHERE B IN (%s)" many))

let test_in_subquery () =
  let db = setup () in
  (* F = qcard(sub) / product(cardinalities of sub's FROM);
     sub = SELECT A FROM U WHERE D = 0: qcard = 200 * 1/10 (D unindexed) *)
  feq "subquery ratio" (200. *. 0.1 /. 200.)
    (sel db "SELECT A FROM R WHERE A IN (SELECT A FROM U WHERE D = 0)")

let test_or_and_not () =
  let db = setup () in
  let fa = 1. /. icard db "R_A" in
  feq "OR: f1+f2-f1f2" (fa +. 0.1 -. (fa *. 0.1))
    (sel db "SELECT A FROM R WHERE A = 1 OR B = 2");
  feq "NOT" (1. -. fa) (sel db "SELECT A FROM R WHERE NOT A = 1");
  (* AND inside one boolean factor (under an OR so it is not split) *)
  let f_and = sel db "SELECT A FROM R WHERE (A = 1 AND B = 2) OR (A = 1 AND B = 2)" in
  let expected = (fa *. 0.1) +. (fa *. 0.1) -. (fa *. 0.1 *. fa *. 0.1) in
  feq "AND under OR" expected f_and

let test_scalar_subquery_defaults () =
  let db = setup () in
  feq "eq unknown value -> 1/ICARD"
    (1. /. icard db "R_A")
    (sel db "SELECT A FROM R WHERE A = (SELECT MIN(A) FROM U)");
  feq "range unknown value -> 1/3" (1. /. 3.)
    (sel db "SELECT A FROM R WHERE S > (SELECT MIN(A) FROM U)")

let test_qcard () =
  let db = setup () in
  let ctx, block = ctx_block db "SELECT R.A FROM R, U WHERE R.A = U.A AND R.B = 1" in
  let expected =
    1000. *. 200.
    *. (1. /. Float.max (icard db "R_A") (icard db "U_A"))
    *. 0.1
  in
  feq "QCARD = product(NCARD) * product(F)" expected
    (Selectivity.block_qcard ctx block);
  (* scalar aggregate block: QCARD = 1 *)
  let _, b2 = ctx_block db "SELECT AVG(A) FROM R" in
  feq "scalar agg" 1.0 (Selectivity.block_qcard ctx b2)

(* A constant-valued column has a degenerate key range (low = high): an
   in-range comparison against it is decided outright by the single key
   value, eq-like, instead of falling through to the 1/3 / 1/4 defaults. *)
let test_degenerate_range () =
  let db = Database.create () in
  Database.set_histograms db false;
  Workload.load_uniform db ~name:"K" ~rows:100
    ~cols:
      [ { Workload.col = "C"; distinct = 1 };
        { Workload.col = "D"; distinct = 10 } ]
    ~indexes:[ ("K_C", [ "C" ], false) ]
    ~seed:3 ();
  (* every C is 0, so low = high = 0 in the index statistics *)
  feq "C >= 0 satisfied, F = 1" 1.0 (sel db "SELECT C FROM K WHERE C >= 0");
  feq "C <= 0 satisfied, F = 1" 1.0 (sel db "SELECT C FROM K WHERE C <= 0");
  feq "C > 0 unsatisfiable, F = 0" 0.0 (sel db "SELECT C FROM K WHERE C > 0");
  feq "C < 0 unsatisfiable, F = 0" 0.0 (sel db "SELECT C FROM K WHERE C < 0");
  feq "flipped constant side" 1.0 (sel db "SELECT C FROM K WHERE 0 <= C");
  feq "BETWEEN containing the key" 1.0
    (sel db "SELECT C FROM K WHERE C BETWEEN 0 AND 2");
  feq "BETWEEN missing the key" 0.0
    (sel db "SELECT C FROM K WHERE C BETWEEN 1 AND 2")

let test_default_stats_when_missing () =
  let db = Database.create () in
  ignore
    (Catalog.create_relation (Database.catalog db) ~name:"FRESH"
       ~schema:(Rel.Schema.make [ { Rel.Schema.name = "X"; ty = V.Tint } ]));
  (* never loaded, never analyzed: "assume the relation is small" *)
  feq "eq default" 0.1 (sel db "SELECT X FROM FRESH WHERE X = 1");
  feq "range default" (1. /. 3.) (sel db "SELECT X FROM FRESH WHERE X > 1")

let () =
  Alcotest.run "selectivity"
    [ ( "table1",
        [ Alcotest.test_case "col = value, index" `Quick test_eq_with_index;
          Alcotest.test_case "col = value, no index" `Quick test_eq_without_index;
          Alcotest.test_case "col = col, both indexed" `Quick test_col_eq_col_both_indexed;
          Alcotest.test_case "col = col, one indexed" `Quick test_col_eq_col_one_indexed;
          Alcotest.test_case "col = col, none indexed" `Quick test_col_eq_col_none_indexed;
          Alcotest.test_case "range interpolation" `Quick test_range_interpolation;
          Alcotest.test_case "range default" `Quick test_range_no_index;
          Alcotest.test_case "between interpolation" `Quick test_between_interpolation;
          Alcotest.test_case "between default" `Quick test_between_no_index;
          Alcotest.test_case "degenerate range (constant column)" `Quick
            test_degenerate_range;
          Alcotest.test_case "IN list" `Quick test_in_list;
          Alcotest.test_case "IN subquery" `Quick test_in_subquery;
          Alcotest.test_case "OR/AND/NOT" `Quick test_or_and_not;
          Alcotest.test_case "scalar subquery defaults" `Quick test_scalar_subquery_defaults ] );
      ( "qcard",
        [ Alcotest.test_case "query cardinality" `Quick test_qcard;
          Alcotest.test_case "missing statistics defaults" `Quick
            test_default_stats_when_missing ] ) ]
