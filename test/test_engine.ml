(* Engine facade: SQL DDL/DML end to end, the Figure 1 database, EXPLAIN
   output, error paths, and the WAL/recovery integration. *)

module V = Rel.Value
module T = Rel.Tuple

let rows out = out.Executor.rows

let test_ddl_dml_roundtrip () =
  let db = Database.create () in
  let results =
    Database.exec_script db
      "CREATE TABLE T (A INT, B STRING);\n\
       CREATE INDEX T_A ON T (A);\n\
       INSERT INTO T VALUES (1, 'one'), (2, 'two'), (3, 'three');\n\
       UPDATE STATISTICS;"
  in
  Alcotest.(check int) "four statements" 4 (List.length results);
  let out = Database.query db "SELECT B FROM T WHERE A = 2" in
  (match rows out with
   | [ [| V.Str "two" |] ] -> ()
   | _ -> Alcotest.fail "wrong result");
  (match Database.exec db "DELETE FROM T WHERE A > 1" with
   | Database.Done msg -> Alcotest.(check string) "count" "2 rows deleted" msg
   | _ -> Alcotest.fail "delete result");
  let out2 = Database.query db "SELECT COUNT(*) FROM T" in
  (match rows out2 with
   | [ [| V.Int 1 |] ] -> ()
   | _ -> Alcotest.fail "count after delete");
  (* the index no longer returns deleted tuples *)
  let out3 = Database.query db "SELECT B FROM T WHERE A = 3" in
  Alcotest.(check int) "deleted not indexed" 0 (List.length (rows out3))

let test_error_paths () =
  let db = Database.create () in
  let expect_err sql =
    match Database.exec db sql with
    | _ -> Alcotest.fail ("accepted: " ^ sql)
    | exception Database.Error _ -> ()
  in
  expect_err "SELECT * FROM NOWHERE";
  expect_err "SELECT * FROM";
  expect_err "INSERT INTO NOWHERE VALUES (1)";
  expect_err "CREATE TABLE T (A INT, A INT)";
  ignore (Database.exec db "CREATE TABLE T (A INT)");
  expect_err "CREATE TABLE T (A INT)";
  expect_err "INSERT INTO T VALUES ('wrong type')";
  (* query on a non-SELECT *)
  (match Database.query db "UPDATE STATISTICS" with
   | _ -> Alcotest.fail "query accepted DDL"
   | exception Database.Error _ -> ())

let test_fig1_database () =
  let db = Database.create () in
  Workload.load_emp_dept_job db;
  let out = Database.query db Workload.fig1_query in
  Alcotest.(check (list string)) "columns" [ "NAME"; "TITLE"; "SAL"; "DNAME" ]
    out.Executor.columns;
  (* every returned row is a Denver clerk *)
  List.iter
    (fun row ->
      match row with
      | [| V.Str _; V.Str title; V.Int _; V.Str _ |] ->
        Alcotest.(check string) "clerk" "CLERK" title
      | _ -> Alcotest.fail "row shape")
    (rows out);
  (* cross-check the count against a manual predicate evaluation *)
  let block = Database.resolve db Workload.fig1_query in
  let expected = Naive_eval.query (Database.catalog db) block in
  Alcotest.(check int) "count matches naive" (List.length expected)
    (List.length (rows out));
  Alcotest.(check bool) "non-empty" true (rows out <> [])

let test_explain_output () =
  let db = Database.create () in
  Workload.load_emp_dept_job db;
  let text = Database.explain db Workload.fig1_query in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains text needle))
    [ "JOIN"; "SCAN"; "cost" ]

let test_exec_script_mixed () =
  let db = Database.create () in
  let results =
    Database.exec_script db
      "CREATE TABLE S (X INT);\n\
       INSERT INTO S VALUES (5), (6);\n\
       SELECT X FROM S WHERE X = 5;\n\
       EXPLAIN SELECT X FROM S"
  in
  (match results with
   | [ Database.Done _; Database.Done _; Database.Rows out; Database.Text _ ] ->
     Alcotest.(check int) "select row" 1 (List.length (rows out))
   | _ -> Alcotest.fail "result shapes")

let test_w_affects_plans () =
  let db = Database.create ~buffer_pages:8 () in
  Workload.load_emp_dept_job db
    ~config:{ Workload.default_emp_config with n_emp = 3000 };
  (* identical query, same answer regardless of W *)
  let sql = "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND SAL > 29000" in
  Database.set_w db 0.0;
  let a = List.length (rows (Database.query db sql)) in
  Database.set_w db 10.0;
  let b = List.length (rows (Database.query db sql)) in
  Alcotest.(check int) "same rows" a b

(* --- WAL / recovery integration ----------------------------------------- *)

let test_logged_workload_recovers () =
  (* mirror a catalog-loading workload into a WAL, "crash", replay, rebuild
     an index, and run the same query on the recovered store *)
  let wal = Rss.Wal.create () in
  let db = Database.create () in
  let cat = Database.catalog db in
  let schema =
    Rel.Schema.make
      [ { Rel.Schema.name = "K"; ty = V.Tint };
        { Rel.Schema.name = "VAL"; ty = V.Tint } ]
  in
  let r = Catalog.create_relation cat ~name:"R" ~schema in
  Rss.Wal.append wal (Rss.Wal.Begin 1);
  for k = 0 to 199 do
    let t = T.make [ V.Int k; V.Int (k * k mod 97) ] in
    let tid = Catalog.insert_tuple cat r t in
    Rss.Wal.append wal (Rss.Wal.Insert { txn = 1; rel_id = r.Catalog.rel_id; tid; tuple = t })
  done;
  Rss.Wal.append wal (Rss.Wal.Commit 1);
  (* a transaction in flight at the crash *)
  Rss.Wal.append wal (Rss.Wal.Begin 2);
  Rss.Wal.append wal
    (Rss.Wal.Insert
       { txn = 2; rel_id = r.Catalog.rel_id;
         tid = { Rss.Tid.page = 0; slot = 0 };
         tuple = T.make [ V.Int 999; V.Int 999 ] });
  (* crash: recover from the serialized log into a fresh database *)
  Rss.Wal.flush wal;
  let log_bytes = Rss.Wal.to_bytes wal in
  let db2 = Database.create () in
  let cat2 = Database.catalog db2 in
  let result = Rss.Recovery.replay (Catalog.pager cat2) (Rss.Wal.of_bytes log_bytes) in
  Alcotest.(check int) "restored" 200 result.Rss.Recovery.tuples_restored;
  (* register the recovered segment as a relation and index it *)
  let r2 =
    Catalog.create_relation ~segment:result.Rss.Recovery.segment cat2 ~name:"R"
      ~schema
  in
  Alcotest.(check int) "rel id preserved by replay order" r.Catalog.rel_id
    r2.Catalog.rel_id;
  ignore (Catalog.create_index cat2 ~name:"R_K" ~rel:r2 ~columns:[ "K" ] ~clustered:true);
  Catalog.update_statistics cat2;
  let out = Database.query db2 "SELECT VAL FROM R WHERE K = 144" in
  (match rows out with
   | [ [| V.Int v |] ] -> Alcotest.(check int) "value" (144 * 144 mod 97) v
   | _ -> Alcotest.fail "recovered query");
  (* the uncommitted tuple is gone *)
  let out2 = Database.query db2 "SELECT VAL FROM R WHERE K = 999" in
  Alcotest.(check int) "uncommitted discarded" 0 (List.length (rows out2))

(* --- integrity & engine-level recovery -------------------------------- *)

let test_check_integrity_after_dml () =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE T (K INT, V STRING);\n\
        CREATE INDEX T_K ON T (K);\n\
        INSERT INTO T VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd');\n\
        DELETE FROM T WHERE K = 2;\n\
        UPDATE T SET V = 'z' WHERE K = 3;");
  (match Database.check_integrity db with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "integrity after DML: %s" msg);
  (* the checker actually detects corruption: remove a tuple behind the
     index's back and expect an Error *)
  let rel =
    match Catalog.find_relation (Database.catalog db) "T" with
    | Some r -> r
    | None -> Alcotest.fail "T missing"
  in
  let tid, _ =
    List.hd
      (Rss.Scan.to_list
         (Rss.Scan.open_segment_scan rel.Catalog.segment
            ~rel_id:rel.Catalog.rel_id ()))
  in
  ignore (Rss.Segment.delete rel.Catalog.segment tid);
  (match Database.check_integrity db with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "checker missed a heap/index mismatch")

(* Post-recovery index rebuild: recovered tuples get new TIDs, so the index
   must be rebuilt over them — a stale index (old TIDs) must be unobservable
   through index scans. *)
let test_recovery_rebuilds_index () =
  let ddl =
    "CREATE TABLE R (K INT, VAL INT);\nCREATE INDEX R_K ON R (K);"
  in
  let db = Database.create () in
  ignore (Database.exec_script db ddl);
  for k = 0 to 49 do
    ignore
      (Database.exec db
         (Printf.sprintf "INSERT INTO R VALUES (%d, %d)" k (k * 7 mod 31)))
  done;
  ignore (Database.exec db "DELETE FROM R WHERE K < 25");
  let entry_tids db =
    match Catalog.find_index (Database.catalog db) "R_K" with
    | Some idx ->
      List.of_seq (Rss.Btree.range_scan_unaccounted idx.Catalog.btree)
      |> List.map snd
      |> List.sort Rss.Tid.compare
    | None -> Alcotest.fail "R_K missing"
  in
  let old_tids = entry_tids db in
  let bytes = Rss.Wal.to_bytes (Database.wal db) in
  let db2 = Database.create () in
  ignore (Database.exec_script db2 ddl);
  let restored = Database.recover db2 bytes in
  Alcotest.(check int) "committed survivors" 25 restored;
  (match Database.check_integrity db2 with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "integrity after recovery: %s" msg);
  (* the rebuilt index carries the NEW heap TIDs, not the logged ones *)
  let new_tids = entry_tids db2 in
  Alcotest.(check int) "entry count" 25 (List.length new_tids);
  Alcotest.(check bool) "TIDs moved across recovery" true
    (new_tids <> old_tids);
  (* index scans over the rebuilt index see exactly the committed rows *)
  for k = 25 to 49 do
    match rows (Database.query db2 (Printf.sprintf "SELECT VAL FROM R WHERE K = %d" k)) with
    | [ [| V.Int v |] ] ->
      Alcotest.(check int) (Printf.sprintf "K=%d" k) (k * 7 mod 31) v
    | _ -> Alcotest.failf "K=%d: expected one row" k
  done;
  Alcotest.(check int) "deleted rows stay deleted" 0
    (List.length (rows (Database.query db2 "SELECT VAL FROM R WHERE K = 3")))

(* Shrunk reproducer from the crash-torture harness: INSERT then DELETE of
   the same row inside one rolled-back transaction. The undo ran newest-first
   — re-inserting the deleted row at a fresh TID, then failing to remove it
   when undoing the insert (the original TID was already dead) — leaving a
   phantom row. Fixed by restoring deleted tuples at their exact TID
   (Catalog.insert_tuple_at). *)
let test_rollback_insert_delete_same_row () =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE P (A INT, B STRING);\nCREATE INDEX P_A ON P (A);");
  ignore
    (Database.exec_script db
       "BEGIN;\n\
        INSERT INTO P VALUES (1, 'phantom');\n\
        DELETE FROM P WHERE A = 1;\n\
        ROLLBACK;");
  Alcotest.(check int) "no phantom after rollback" 0
    (List.length (rows (Database.query db "SELECT A FROM P")));
  (match Database.check_integrity db with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "integrity: %s" msg);
  (* the mirror image: DELETE an existing row then re-INSERT it, rolled
     back — the original row must survive, the new one must not *)
  ignore (Database.exec db "INSERT INTO P VALUES (7, 'keep')");
  ignore
    (Database.exec_script db
       "BEGIN;\n\
        DELETE FROM P WHERE A = 7;\n\
        INSERT INTO P VALUES (8, 'drop');\n\
        ROLLBACK;");
  (match rows (Database.query db "SELECT A, B FROM P") with
   | [ [| V.Int 7; V.Str "keep" |] ] -> ()
   | l -> Alcotest.failf "expected only (7, keep), got %d rows" (List.length l));
  match Database.check_integrity db with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "integrity after mirror rollback: %s" msg

(* --- UPDATE ---------------------------------------------------------- *)

let test_update_statement () =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE T (A INT, B INT, NAME STRING);\n\
        CREATE INDEX T_B ON T (B);\n\
        INSERT INTO T VALUES (1, 10, 'one'), (2, 20, 'two'), (3, 30, 'three');\n\
        UPDATE STATISTICS;");
  (match Database.exec db "UPDATE T SET B = B + 100, NAME = 'bumped' WHERE A > 1" with
   | Database.Done msg -> Alcotest.(check string) "count" "2 rows updated" msg
   | _ -> Alcotest.fail "update result");
  let out = Database.query db "SELECT B, NAME FROM T WHERE A = 3" in
  (match rows out with
   | [ [| V.Int 130; V.Str "bumped" |] ] -> ()
   | _ -> Alcotest.fail "updated values");
  (* indexes follow the update *)
  let via_index = Database.query db "SELECT A FROM T WHERE B = 120" in
  Alcotest.(check int) "index sees new value" 1 (List.length (rows via_index));
  let stale = Database.query db "SELECT A FROM T WHERE B = 20" in
  Alcotest.(check int) "old value gone" 0 (List.length (rows stale));
  (* self-referential update has no Halloween problem *)
  ignore (Database.exec db "UPDATE T SET A = A + 1");
  let total = Database.query db "SELECT COUNT(*) FROM T" in
  (match rows total with
   | [ [| V.Int 3 |] ] -> ()
   | _ -> Alcotest.fail "row count preserved");
  (* errors *)
  (match Database.exec db "UPDATE T SET NOPE = 1" with
   | _ -> Alcotest.fail "unknown column accepted"
   | exception Database.Error _ -> ());
  (match Database.exec db "UPDATE T SET A = 'str'" with
   | _ -> Alcotest.fail "type mismatch accepted"
   | exception Database.Error _ -> ())

(* --- prepared statements ------------------------------------------------ *)

let test_prepared_statements () =
  let db = Database.create () in
  Workload.load_emp_dept_job db;
  let p = Database.prepare db "SELECT NAME, SAL FROM EMP WHERE DNO = ?" in
  Alcotest.(check int) "one param" 1 (Database.prepared_param_count p);
  (* the placeholder predicate matches the DNO index with a dynamic bound *)
  let rec idx_bound (pl : Plan.t) =
    match pl.Plan.node with
    | Plan.Scan { access = Plan.Idx_scan { lo = Some lo; _ }; _ } ->
      List.exists (function Plan.Bv_param 0 -> true | _ -> false) lo.Plan.values
    | Plan.Scan _ -> false
    | Plan.Nl_join { outer; inner } | Plan.Merge_join { outer; inner; _ } ->
      idx_bound outer || idx_bound inner
    | Plan.Sort { input; _ } | Plan.Filter { input; _ }
    | Plan.Exchange { input; _ } ->
      idx_bound input
  in
  Alcotest.(check bool) "param used as index bound" true
    (idx_bound (Database.prepared_plan p).Optimizer.plan);
  (* executing with different bindings matches the literal queries *)
  List.iter
    (fun dno ->
      let got = Database.execute_prepared db p [ V.Int dno ] in
      let expect =
        Database.query db (Printf.sprintf "SELECT NAME, SAL FROM EMP WHERE DNO = %d" dno)
      in
      Alcotest.(check int)
        (Printf.sprintf "rows for DNO=%d" dno)
        (List.length (rows expect))
        (List.length (rows got)))
    [ 1; 7; 23; 50 ];
  (* range params *)
  let p2 = Database.prepare db "SELECT COUNT(*) FROM EMP WHERE SAL > ? AND DNO BETWEEN ? AND ?" in
  Alcotest.(check int) "three params" 3 (Database.prepared_param_count p2);
  let got = Database.execute_prepared db p2 [ V.Int 20000; V.Int 5; V.Int 10 ] in
  let expect =
    Database.query db
      "SELECT COUNT(*) FROM EMP WHERE SAL > 20000 AND DNO BETWEEN 5 AND 10"
  in
  Alcotest.(check bool) "counts equal" true
    (rows got = rows expect);
  (* wrong arity *)
  (match Database.execute_prepared db p [] with
   | _ -> Alcotest.fail "missing binding accepted"
   | exception Database.Error _ -> ());
  (* join with a param on each side *)
  let p3 =
    Database.prepare db
      "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND LOC = ? AND SAL > ?"
  in
  let got = Database.execute_prepared db p3 [ V.Str "DENVER"; V.Int 15000 ] in
  let expect =
    Database.query db
      "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND LOC = 'DENVER' \
       AND SAL > 15000"
  in
  Alcotest.(check int) "join rows" (List.length (rows expect)) (List.length (rows got))

(* --- transactions ------------------------------------------------------ *)

let count db sql =
  match rows (Database.query db sql) with
  | [ [| V.Int n |] ] -> n
  | _ -> Alcotest.fail "count query"

let test_transaction_commit_rollback () =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE T (A INT);\nINSERT INTO T VALUES (1), (2), (3);");
  (* rollback undoes inserts, deletes and updates *)
  ignore (Database.exec db "BEGIN");
  Alcotest.(check bool) "active" true (Database.in_transaction db);
  ignore (Database.exec db "INSERT INTO T VALUES (4)");
  ignore (Database.exec db "DELETE FROM T WHERE A = 1");
  ignore (Database.exec db "UPDATE T SET A = 20 WHERE A = 2");
  Alcotest.(check int) "mid-txn visible" 1 (count db "SELECT COUNT(*) FROM T WHERE A = 20");
  ignore (Database.exec db "ROLLBACK");
  Alcotest.(check bool) "inactive" false (Database.in_transaction db);
  Alcotest.(check int) "all restored" 3 (count db "SELECT COUNT(*) FROM T");
  Alcotest.(check int) "1 back" 1 (count db "SELECT COUNT(*) FROM T WHERE A = 1");
  Alcotest.(check int) "2 back" 1 (count db "SELECT COUNT(*) FROM T WHERE A = 2");
  Alcotest.(check int) "4 gone" 0 (count db "SELECT COUNT(*) FROM T WHERE A = 4");
  (* commit keeps *)
  ignore (Database.exec db "BEGIN");
  ignore (Database.exec db "INSERT INTO T VALUES (9)");
  ignore (Database.exec db "COMMIT");
  Alcotest.(check int) "committed" 1 (count db "SELECT COUNT(*) FROM T WHERE A = 9");
  (* protocol errors *)
  (match Database.exec db "COMMIT" with
   | _ -> Alcotest.fail "commit without begin"
   | exception Database.Error _ -> ());
  ignore (Database.exec db "BEGIN");
  (match Database.exec db "BEGIN" with
   | _ -> Alcotest.fail "nested begin"
   | exception Database.Error _ -> ());
  ignore (Database.exec db "ROLLBACK")

let test_wal_records_dml () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE T (A INT)");
  ignore (Database.exec db "INSERT INTO T VALUES (1), (2)");
  ignore (Database.exec db "DELETE FROM T WHERE A = 1");
  let recs = Rss.Wal.records (Database.wal db) in
  let count p = List.length (List.filter p recs) in
  Alcotest.(check int) "begins" 2 (count (function Rss.Wal.Begin _ -> true | _ -> false));
  Alcotest.(check int) "commits" 2 (count (function Rss.Wal.Commit _ -> true | _ -> false));
  Alcotest.(check int) "inserts" 2 (count (function Rss.Wal.Insert _ -> true | _ -> false));
  Alcotest.(check int) "deletes" 1 (count (function Rss.Wal.Delete _ -> true | _ -> false));
  (* replaying the engine's own log restores exactly the committed state *)
  let pager = Rss.Pager.create () in
  let result = Rss.Recovery.replay pager (Rss.Wal.of_bytes (Rss.Wal.to_bytes (Database.wal db))) in
  Alcotest.(check int) "replay survivors" 1 result.Rss.Recovery.tuples_restored

let test_wal_discards_rolled_back () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE T (A INT)");
  ignore (Database.exec db "BEGIN");
  ignore (Database.exec db "INSERT INTO T VALUES (7)");
  ignore (Database.exec db "ROLLBACK");
  ignore (Database.exec db "INSERT INTO T VALUES (8)");
  let pager = Rss.Pager.create () in
  let result = Rss.Recovery.replay pager (Database.wal db) in
  Alcotest.(check int) "only committed row" 1 result.Rss.Recovery.tuples_restored;
  Alcotest.(check int) "one aborted txn discarded" 1
    (List.length result.Rss.Recovery.discarded)

let test_drop_statements () =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE T (A INT);\nCREATE INDEX T_A ON T (A);\n\
        INSERT INTO T VALUES (1), (2), (3);");
  (match Database.exec db "DROP INDEX T_A" with
   | Database.Done _ -> ()
   | _ -> Alcotest.fail "drop index");
  Alcotest.(check bool) "index gone" true
    (Catalog.find_index (Database.catalog db) "T_A" = None);
  (match Database.exec db "DROP TABLE T" with
   | Database.Done _ -> ()
   | _ -> Alcotest.fail "drop table");
  (match Database.query db "SELECT A FROM T" with
   | _ -> Alcotest.fail "dropped table queryable"
   | exception Database.Error _ -> ());
  (* re-creating with the same name works and starts empty *)
  ignore (Database.exec db "CREATE TABLE T (A INT)");
  (match rows (Database.query db "SELECT COUNT(*) FROM T") with
   | [ [| V.Int 0 |] ] -> ()
   | _ -> Alcotest.fail "recreated table not empty");
  (match Database.exec db "DROP TABLE NOPE" with
   | _ -> Alcotest.fail "unknown drop accepted"
   | exception Database.Error _ -> ())

(* --- snapshots ----------------------------------------------------------- *)

let test_snapshot_roundtrip () =
  let db = Database.create () in
  Workload.load_emp_dept_job db
    ~config:{ Workload.default_emp_config with n_emp = 500 };
  ignore (Database.exec db "DELETE FROM EMP WHERE SAL > 29000");
  let before = rows (Database.query db Workload.fig1_query) in
  let bytes = Snapshot.save db in
  let db2 = Snapshot.load bytes in
  (* identical schemas, contents and index behaviour after reload *)
  let after = rows (Database.query db2 Workload.fig1_query) in
  Alcotest.(check int) "same query result" (List.length before) (List.length after);
  let c1 = rows (Database.query db "SELECT COUNT(*) FROM EMP") in
  let c2 = rows (Database.query db2 "SELECT COUNT(*) FROM EMP") in
  Alcotest.(check bool) "same cardinality" true (c1 = c2);
  (* indexes were rebuilt: an indexed plan exists and works *)
  let r = Database.optimize db2 "SELECT NAME FROM EMP WHERE DNO = 5" in
  (match r.Optimizer.plan.Plan.node with
   | Plan.Scan { access = Plan.Idx_scan _; _ } -> ()
   | _ -> Alcotest.fail "index not rebuilt");
  (* statistics were recollected *)
  let emp = Option.get (Catalog.find_relation (Database.catalog db2) "EMP") in
  Alcotest.(check bool) "stats present" true (emp.Catalog.rstats <> None);
  (* corrupt input rejected *)
  (match Snapshot.load "garbage" with
   | _ -> Alcotest.fail "garbage accepted"
   | exception Invalid_argument _ -> ());
  (match Snapshot.load (bytes ^ "x") with
   | _ -> Alcotest.fail "trailing bytes accepted"
   | exception Invalid_argument _ -> ());
  (* file roundtrip *)
  let path = Filename.temp_file "systemr" ".snap" in
  Snapshot.save_to_file db path;
  let db3 = Snapshot.load_from_file path in
  Sys.remove path;
  let c3 = rows (Database.query db3 "SELECT COUNT(*) FROM EMP") in
  Alcotest.(check bool) "file roundtrip" true (c1 = c3)

let test_zipf_workload () =
  (* the sampler is properly skewed and the loader produces usable stats *)
  let rng = Workload.rand_init 9 in
  let sample = Workload.zipf_sampler rng ~n:20 ~s:1.5 in
  let counts = Array.make 20 0 in
  for _ = 1 to 5000 do
    let k = sample () in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 20);
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "head heavier than tail" true (counts.(0) > 5 * counts.(10));
  Alcotest.(check bool) "monotone-ish" true (counts.(0) > counts.(3));
  (* s = 0 is uniform *)
  let u = Workload.zipf_sampler rng ~n:10 ~s:0. in
  let uc = Array.make 10 0 in
  for _ = 1 to 10000 do
    let k = u () in
    uc.(k) <- uc.(k) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 700 && c < 1300))
    uc;
  let db = Database.create () in
  Workload.load_zipf db ~name:"Z" ~rows:500
    ~cols:[ ("K", 10, 1.0); ("V", 100, 0.) ]
    ~indexes:[ ("Z_K", [ "K" ], false) ]
    ~seed:3 ();
  let out = Database.query db "SELECT COUNT(*) FROM Z" in
  (match out.Executor.rows with
   | [ [| V.Int 500 |] ] -> ()
   | _ -> Alcotest.fail "row count")

(* --- model-based DML stress --------------------------------------------- *)

(* Random INSERT / DELETE / UPDATE / transaction sequences are applied both
   to the engine and to a trivial in-memory multiset model; after every
   statement the full table contents must agree, and at the end the indexed
   lookups must agree with the model too. *)
let test_random_dml_against_model () =
  let rng = Random.State.make [| 424242 |] in
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE M (K INT, V INT)");
  ignore (Database.exec db "CREATE INDEX M_K ON M (K)");
  let model : (int * int) list ref = ref [] in
  let saved = ref [] in
  let in_txn = ref false in
  let apply_stmt () =
    match Random.State.int rng 10 with
    | 0 | 1 | 2 | 3 ->
      let k = Random.State.int rng 10 and v = Random.State.int rng 100 in
      ignore (Database.exec db (Printf.sprintf "INSERT INTO M VALUES (%d, %d)" k v));
      model := (k, v) :: !model
    | 4 | 5 ->
      let k = Random.State.int rng 10 in
      ignore (Database.exec db (Printf.sprintf "DELETE FROM M WHERE K = %d" k));
      model := List.filter (fun (k', _) -> k' <> k) !model
    | 6 | 7 ->
      let k = Random.State.int rng 10 and dv = Random.State.int rng 5 in
      ignore
        (Database.exec db
           (Printf.sprintf "UPDATE M SET V = V + %d WHERE K = %d" dv k));
      model := List.map (fun (k', v) -> if k' = k then (k', v + dv) else (k', v)) !model
    | 8 when not !in_txn ->
      ignore (Database.exec db "BEGIN");
      in_txn := true;
      saved := !model
    | 8 | 9 when !in_txn ->
      if Random.State.bool rng then begin
        ignore (Database.exec db "COMMIT");
        in_txn := false
      end
      else begin
        ignore (Database.exec db "ROLLBACK");
        in_txn := false;
        model := !saved
      end
    | _ -> ()
  in
  let agree what =
    let got =
      List.map
        (fun row ->
          match row with
          | [| V.Int k; V.Int v |] -> (k, v)
          | _ -> Alcotest.fail "row shape")
        (rows (Database.query db "SELECT K, V FROM M"))
      |> List.sort compare
    in
    let expect = List.sort compare !model in
    if got <> expect then
      Alcotest.fail
        (Printf.sprintf "%s: engine has %d rows, model %d" what (List.length got)
           (List.length expect))
  in
  for step = 1 to 300 do
    apply_stmt ();
    if step mod 25 = 0 then agree (Printf.sprintf "step %d" step)
  done;
  if !in_txn then ignore (Database.exec db "COMMIT");
  agree "final";
  (* indexed point lookups agree with the model *)
  for k = 0 to 9 do
    let got = List.length (rows (Database.query db (Printf.sprintf "SELECT V FROM M WHERE K = %d" k))) in
    let expect = List.length (List.filter (fun (k', _) -> k' = k) !model) in
    Alcotest.(check int) (Printf.sprintf "lookup K=%d" k) expect got
  done

let () =
  Alcotest.run "engine"
    [ ( "sql",
        [ Alcotest.test_case "DDL/DML roundtrip" `Quick test_ddl_dml_roundtrip;
          Alcotest.test_case "error paths" `Quick test_error_paths;
          Alcotest.test_case "Figure 1 database" `Quick test_fig1_database;
          Alcotest.test_case "EXPLAIN output" `Quick test_explain_output;
          Alcotest.test_case "script execution" `Quick test_exec_script_mixed;
          Alcotest.test_case "W invariance" `Quick test_w_affects_plans ] );
      ( "dml",
        [ Alcotest.test_case "UPDATE statement" `Quick test_update_statement;
          Alcotest.test_case "DROP statements" `Quick test_drop_statements ] );
      ( "prepared",
        [ Alcotest.test_case "prepared statements" `Quick test_prepared_statements ] );
      ( "transactions",
        [ Alcotest.test_case "commit/rollback" `Quick test_transaction_commit_rollback;
          Alcotest.test_case "WAL records DML" `Quick test_wal_records_dml;
          Alcotest.test_case "WAL discards rolled back" `Quick
            test_wal_discards_rolled_back;
          Alcotest.test_case "rollback of insert+delete of one row" `Quick
            test_rollback_insert_delete_same_row ] );
      ( "recovery",
        [ Alcotest.test_case "logged workload recovers" `Quick
            test_logged_workload_recovers;
          Alcotest.test_case "integrity checker" `Quick
            test_check_integrity_after_dml;
          Alcotest.test_case "recovery rebuilds indexes over new TIDs" `Quick
            test_recovery_rebuilds_index ] );
      ( "workload",
        [ Alcotest.test_case "zipf generator" `Quick test_zipf_workload ] );
      ( "snapshot",
        [ Alcotest.test_case "save/load roundtrip" `Quick test_snapshot_roundtrip ] );
      ( "model",
        [ Alcotest.test_case "random DML vs model" `Slow
            test_random_dml_against_model ] ) ]
