(* Differential test for the compiled evaluation layer: every query runs
   twice through the full pipeline — once with position-resolved compiled
   closures (the default) and once with the per-tuple AST interpreter
   (~compiled:false) — and the two results must be byte-identical, row order
   included. Non-parameterized queries are additionally checked against the
   Naive_eval oracle, so a bug common to both executor modes cannot hide. *)

module V = Rel.Value
module T = Rel.Tuple

let schema cols =
  Rel.Schema.make (List.map (fun n -> { Rel.Schema.name = n; ty = V.Tint }) cols)

(* Same shape as the executor test fixture: P(A,B,C) with NULLs in B and
   indexes on A (clustered) and B; Q(A,D) indexed on A; R3(C,E) unindexed. *)
let setup () =
  let db = Database.create ~buffer_pages:16 () in
  let cat = Database.catalog db in
  let p = Catalog.create_relation cat ~name:"P" ~schema:(schema [ "A"; "B"; "C" ]) in
  for i = 0 to 199 do
    let b = if i mod 17 = 0 then V.Null else V.Int (i mod 12) in
    ignore
      (Catalog.insert_tuple cat p (T.make [ V.Int (i mod 10); b; V.Int (i mod 5) ]))
  done;
  ignore (Catalog.create_index cat ~name:"P_A" ~rel:p ~columns:[ "A" ] ~clustered:true);
  ignore (Catalog.create_index cat ~name:"P_B" ~rel:p ~columns:[ "B" ] ~clustered:false);
  let q = Catalog.create_relation cat ~name:"Q" ~schema:(schema [ "A"; "D" ]) in
  for i = 0 to 59 do
    ignore (Catalog.insert_tuple cat q (T.make [ V.Int (i mod 15); V.Int i ]))
  done;
  ignore (Catalog.create_index cat ~name:"Q_A" ~rel:q ~columns:[ "A" ] ~clustered:false);
  let r3 = Catalog.create_relation cat ~name:"R3" ~schema:(schema [ "C"; "E" ]) in
  for i = 0 to 39 do
    ignore (Catalog.insert_tuple cat r3 (T.make [ V.Int (i mod 5); V.Int (100 + i) ]))
  done;
  Catalog.update_statistics cat;
  db

let row_bytes row =
  let b = Buffer.create 64 in
  T.write b row;
  Buffer.contents b

let rows_bytes rows = String.concat "|" (List.map row_bytes rows)

(* Compiled and interpreted runs of the same plan must agree byte for byte,
   including row order. *)
let check_differential ?(params = [||]) db sql =
  let r = Database.optimize db sql in
  let cat = Database.catalog db in
  let compiled = (Executor.run ~compiled:true ~params cat r).Executor.rows in
  let interpreted = (Executor.run ~compiled:false ~params cat r).Executor.rows in
  if rows_bytes compiled <> rows_bytes interpreted then
    Alcotest.fail
      (Printf.sprintf "%s\n  plan: %s\n  compiled    %d: %s\n  interpreted %d: %s"
         sql
         (Plan.describe r.Optimizer.plan)
         (List.length compiled)
         (String.concat "; " (List.map T.to_string compiled))
         (List.length interpreted)
         (String.concat "; " (List.map T.to_string interpreted)))

(* ... and, without parameters, both must match the naive oracle. *)
let check_oracle db sql =
  let block = Database.resolve db sql in
  let r = Database.optimize db sql in
  let cat = Database.catalog db in
  let canon rows =
    List.sort
      (fun a b ->
        let n = min (T.arity a) (T.arity b) in
        T.compare_on (List.init n Fun.id) a b)
      rows
  in
  let expected = canon (Naive_eval.query cat block) in
  List.iter
    (fun compiled ->
      let got = canon (Executor.run ~compiled cat r).Executor.rows in
      if rows_bytes got <> rows_bytes expected then
        Alcotest.fail
          (Printf.sprintf "%s (compiled=%b) disagrees with oracle" sql compiled))
    [ true; false ]

let corpus_single =
  [ "SELECT A, B, C FROM P";
    "SELECT A FROM P WHERE A = 3";
    "SELECT A, B FROM P WHERE A = 3 AND B = 7";
    "SELECT A FROM P WHERE B = 5";
    "SELECT A FROM P WHERE A > 7";
    "SELECT A FROM P WHERE A >= 7 AND A < 9";
    "SELECT A FROM P WHERE A BETWEEN 2 AND 4";
    "SELECT A FROM P WHERE A IN (1, 5, 9)";
    "SELECT A FROM P WHERE A = 1 OR B = 2";
    "SELECT A FROM P WHERE NOT (A = 1 OR A = 2)";
    "SELECT A FROM P WHERE A + 1 = 5";
    "SELECT A FROM P WHERE B <> 3";
    "SELECT A FROM P WHERE A = B";
    "SELECT A * 2 + C FROM P WHERE C = 4";
    "SELECT A FROM P WHERE 2 < A";
    "SELECT A FROM P WHERE A = 99";
    "SELECT A, B, C FROM P ORDER BY A DESC";
    "SELECT A FROM P WHERE A BETWEEN 3 AND 6 ORDER BY A DESC";
    "SELECT A, B, C FROM P WHERE C = 2 ORDER BY A DESC, B" ]

(* Three-valued logic edge cases: B carries NULLs, so every row below forces
   Unknown through NOT / OR / AND / IN / BETWEEN exactly where the
   interpreter's and3/or3/not3 do. *)
let corpus_null =
  [ "SELECT A FROM P WHERE NOT (B = 3)";
    "SELECT A FROM P WHERE NOT (B <> 3)";
    "SELECT A FROM P WHERE B = 2 OR A < 0";
    "SELECT A FROM P WHERE B = 2 OR B = 7";
    "SELECT A FROM P WHERE B > 5 AND A > 5";
    "SELECT A FROM P WHERE NOT (B > 5 AND A > 5)";
    "SELECT A FROM P WHERE B IN (1, 2, 3)";
    "SELECT A FROM P WHERE B IN (1, 2, NULL)";
    "SELECT A FROM P WHERE B BETWEEN 2 AND 8";
    "SELECT A FROM P WHERE NOT (B BETWEEN 2 AND 8)";
    "SELECT A, B FROM P WHERE B IN (SELECT A FROM Q WHERE D > 40)";
    "SELECT A, B FROM P WHERE B NOT IN (SELECT A FROM Q WHERE D > 55)" ]

let corpus_join =
  [ "SELECT P.A, D FROM P, Q WHERE P.A = Q.A";
    "SELECT P.A, D FROM P, Q WHERE P.A = Q.A AND D < 10";
    "SELECT P.A, D FROM P, Q WHERE P.A = Q.A AND P.C = 2 AND Q.D > 30";
    "SELECT B, E FROM P, R3 WHERE P.C = R3.C";
    "SELECT B, E FROM P, R3 WHERE P.C = R3.C AND P.B + 1 > R3.C";
    "SELECT P.A, E FROM P, Q, R3 WHERE P.A = Q.A AND P.C = R3.C AND D = 7";
    "SELECT P.A, Q.D FROM P, Q WHERE P.A = 3 AND Q.D = 3";
    "SELECT P.A FROM P, Q WHERE P.A < Q.A AND Q.D = 1";
    "SELECT X.A, Y.A FROM P X, P Y WHERE X.A = Y.B AND Y.C = 1" ]

let corpus_agg =
  [ "SELECT AVG(C), COUNT(*), MIN(B), MAX(B), SUM(A) FROM P";
    "SELECT COUNT(*) FROM P WHERE A = 42";
    "SELECT A, COUNT(*) FROM P GROUP BY A";
    "SELECT A, AVG(C), COUNT(*) FROM P WHERE A > 2 GROUP BY A";
    "SELECT C, A, MAX(B) FROM P GROUP BY C, A";
    "SELECT A, COUNT(*) FROM P GROUP BY A ORDER BY A DESC";
    "SELECT COUNT(B) FROM P" ]

(* Correlated subqueries: outer references resolve against the enclosing
   block's current tuple — in compiled mode they are bound per subquery-plan
   opening, which this corpus exercises against the interpreter. *)
let corpus_nested =
  [ "SELECT A FROM P WHERE A IN (SELECT A FROM Q WHERE D < 30)";
    "SELECT A FROM P WHERE C > (SELECT AVG(D) FROM Q WHERE Q.A = P.A)";
    "SELECT A, C FROM P WHERE A IN (SELECT A FROM Q WHERE D < P.C * 10)";
    "SELECT A FROM P WHERE B IN (SELECT A FROM Q WHERE Q.D = P.A)" ]

let test_corpus corpus () =
  let db = setup () in
  List.iter
    (fun sql ->
      check_differential db sql;
      check_oracle db sql)
    corpus

(* Parameterized queries: E_param compiles to a captured value; the naive
   oracle doesn't support params, so these check compiled vs interpreted. *)
let test_params () =
  let db = setup () in
  List.iter
    (fun (sql, params) -> check_differential ~params db sql)
    [ ("SELECT A FROM P WHERE A = ?", [| V.Int 3 |]);
      ("SELECT A, B FROM P WHERE A = ? AND B > ?", [| V.Int 3; V.Int 5 |]);
      ("SELECT A FROM P WHERE B BETWEEN ? AND ?", [| V.Int 2; V.Int 8 |]);
      ("SELECT A FROM P WHERE A = ? OR B = ?", [| V.Int 1; V.Int 2 |]);
      ("SELECT P.A, D FROM P, Q WHERE P.A = Q.A AND Q.D < ?", [| V.Int 10 |]);
      ("SELECT A FROM P WHERE B = ?", [| V.Null |]) ]

(* Subquery caching must not change results in either mode. *)
let test_no_subquery_cache () =
  let db = setup () in
  let sql = "SELECT A FROM P WHERE C > (SELECT AVG(D) FROM Q WHERE Q.A = P.A)" in
  let r = Database.optimize db sql in
  let cat = Database.catalog db in
  let variants =
    List.map
      (fun (compiled, cache) ->
        rows_bytes
          (Executor.run ~compiled ~use_subquery_cache:cache cat r).Executor.rows)
      [ (true, true); (true, false); (false, true); (false, false) ]
  in
  match variants with
  | v :: rest ->
    List.iter (fun v' -> Alcotest.(check bool) "same rows" true (v = v')) rest
  | [] -> assert false

let () =
  Alcotest.run "compiled_eval"
    [ ( "differential",
        [ Alcotest.test_case "single-table corpus" `Quick (test_corpus corpus_single);
          Alcotest.test_case "NULL / three-valued corpus" `Quick
            (test_corpus corpus_null);
          Alcotest.test_case "join corpus" `Quick (test_corpus corpus_join);
          Alcotest.test_case "aggregate corpus" `Quick (test_corpus corpus_agg);
          Alcotest.test_case "nested / correlated corpus" `Quick
            (test_corpus corpus_nested);
          Alcotest.test_case "parameters" `Quick test_params;
          Alcotest.test_case "subquery cache invariance" `Quick
            test_no_subquery_cache ] ) ]
