(* Checked-in crash-torture corpus: fixed workloads pinning the harness's
   deep scenarios so `dune runtest` exercises them deterministically, without
   the full randomized sweep of torture_main:

   - a crash at every wal.append point (an unflushed suffix dies whole:
     appends only buffer, so nothing tears);
   - a torn-tail sweep over every byte offset of a multi-commit group-flush
     batch, with the per-acknowledged-commit oracle;
   - a crash during buffer-pool eviction (2-page pool);
   - a transaction aborted before the crash (its undo must stay invisible
     to recovery);
   - a >=3-transaction deadlock cycle across mixed lock granularities;
   - the injected recovery fault (commit filter disabled) that the harness
     must detect. *)

module V = Rel.Value
module F = Rss.Failpoint
module W = Rss.Wal
module FG = Fuzz_gen
module FT = Fuzz_torture

let col name ty =
  { FG.cname = name; cty = ty; distinct = 4; null_pct = 0; skew = 0. }

let table name cols rows indexes = { FG.tname = name; cols; rows; indexes }

let scenario =
  { FG.tables =
      [ table "t0"
          [ col "c0" V.Tint; col "c1" V.Tstr ]
          [ [ V.Int 1; V.Str "a" ];
            [ V.Int 2; V.Str "b" ];
            [ V.Int 3; V.Str "c" ] ]
          [ ("i_t0_0", [ "c0" ], false) ];
        table "t1"
          [ col "c0" V.Tint; col "c1" V.Tint ]
          (List.init 8 (fun i -> [ V.Int i; V.Int (i * i) ]))
          [ ("i_t1_0", [ "c0"; "c1" ], true) ] ] }

let check_none what = function
  | None -> ()
  | Some d -> Alcotest.failf "%s: %s" what (Format.asprintf "%a" FT.pp_divergence d)

(* Count the workload's hits at one site (build excluded, like the
   harness's counting pass). *)
let count_hits w site =
  let db = FT.build_db ~data:true w.FT.scenario in
  F.count_only ();
  FT.run_workload db w;
  F.disarm ();
  let n = F.hits site in
  F.reset ();
  n

(* --- torn-tail WAL ------------------------------------------------------- *)

let w_torn =
  { FT.scenario;
    groups =
      [ FT.Auto (FT.Ins ("t0", [ [ V.Int 5; V.Str "d" ] ]));
        FT.Txn
          ( [ FT.Ins ("t1", [ [ V.Int 9; V.Int 81 ]; [ V.Int 10; V.Int 100 ] ]);
              FT.Del ("t0", Some ("c0", V.Int 2)) ],
            `Commit ) ] }

let test_append_crash_loses_unflushed_suffix () =
  let total = count_hits w_torn "wal.append" in
  Alcotest.(check bool) "workload reaches wal.append" true (total > 0);
  for k = 1 to total do
    let fired, bytes, torn = FT.crash_run w_torn ~site:"wal.append" ~at:k in
    Alcotest.(check bool) "crash fired" true fired;
    Alcotest.(check int) "appends only buffer: nothing tears" 0 torn;
    check_none
      (Printf.sprintf "append crash, hit %d" k)
      (FT.check_recovery w_torn.FT.scenario bytes ~site:"wal.append" ~hit:k
         ~torn:0)
  done

(* --- torn group-flush batch ---------------------------------------------- *)

(* Two sessions, disjoint tables, both commits closed by one explicit flush:
   the batch holds both transactions' records, and the crash-at-flush sweep
   tears it at every byte offset. The acked oracle must hold on every image:
   a commit acknowledged before the crash survives recovery; a torn batch
   loses only unacknowledged suffix commits. *)
let w_batch =
  { FT.ms_scenario = scenario;
    nsessions = 2;
    items =
      [ FT.S_begin 0;
        FT.S_begin 1;
        FT.S_dml (0, FT.Ins ("t0", [ [ V.Int 5; V.Str "d" ] ]));
        FT.S_dml (1, FT.Ins ("t1", [ [ V.Int 9; V.Int 81 ]; [ V.Int 10; V.Int 100 ] ]));
        FT.S_commit 0;
        FT.S_commit 1;
        FT.S_flush ] }

let test_group_batch_torn_every_offset () =
  (* counting pass: one window closes over both commits *)
  let db = FT.build_db ~data:true w_batch.FT.ms_scenario in
  F.count_only ();
  let acked = ref [] in
  FT.run_ms db w_batch ~acked;
  F.disarm ();
  let total = F.hits "wal.group_flush" in
  F.reset ();
  Alcotest.(check int) "both commits share one flush" 1 total;
  Alcotest.(check int) "that flush acknowledged both" 2 (List.length !acked);
  let images = ref 0 in
  for k = 1 to total do
    let fired, bytes, torn, acked =
      FT.crash_run_ms w_batch ~site:"wal.group_flush" ~at:k
    in
    Alcotest.(check bool) "crash fired" true fired;
    Alcotest.(check bool)
      "batch spans more than one commit record" true
      (torn > String.length (W.encode (W.Commit 1)));
    for j = 0 to torn do
      incr images;
      let surviving = String.sub bytes 0 (String.length bytes - j) in
      check_none
        (Printf.sprintf "acked oracle, hit %d, torn %d" k j)
        (FT.check_acked surviving acked ~site:"wal.group_flush" ~hit:k ~torn:j);
      check_none
        (Printf.sprintf "recovery, hit %d, torn %d" k j)
        (FT.check_recovery w_batch.FT.ms_scenario surviving
           ~site:"wal.group_flush" ~hit:k ~torn:j)
    done
  done;
  Alcotest.(check bool) "swept many torn images" true (!images > 40)

(* Full multi-session torture (counting, clean, every crash site, acked
   oracle) over a small random-but-fixed interleaving. *)
let test_ms_torture_fixed_seed () =
  let rng = Random.State.make [| 0xb42c |] in
  let w = FT.gen_ms_workload rng in
  let points, flush_points, div = FT.torture_ms ~crash_every:3 w in
  check_none "multi-session torture" div;
  Alcotest.(check bool) "covered crash points" true (points > 50);
  Alcotest.(check bool) "covered group-flush tears" true (flush_points > 0)

(* --- crash during buffer-pool eviction ----------------------------------- *)

let w_evict =
  { FT.scenario;
    groups =
      [ FT.Auto
          (FT.Ins ("t1", List.init 6 (fun i -> [ V.Int (20 + i); V.Int i ])));
        FT.Auto (FT.Del ("t0", None));
        FT.Auto (FT.Ins ("t0", [ [ V.Int 4; V.Str "e" ] ]));
        FT.Auto (FT.Del ("t1", Some ("c0", V.Int 2))) ] }

let test_crash_during_eviction () =
  let total = count_hits w_evict "buffer_pool.evict" in
  Alcotest.(check bool) "2-page pool evicts under this workload" true (total > 0);
  for k = 1 to total do
    let fired, bytes, _ = FT.crash_run w_evict ~site:"buffer_pool.evict" ~at:k in
    Alcotest.(check bool) "crash fired" true fired;
    check_none
      (Printf.sprintf "eviction crash, hit %d" k)
      (FT.check_recovery w_evict.FT.scenario bytes ~site:"buffer_pool.evict"
         ~hit:k ~torn:0)
  done

(* --- abort, then crash --------------------------------------------------- *)

let w_abort =
  { FT.scenario;
    groups =
      [ FT.Txn
          ( [ FT.Ins ("t0", [ [ V.Int 7; V.Str "x" ] ]);
              FT.Del ("t1", Some ("c0", V.Int 3)) ],
            `Rollback );
        FT.Auto (FT.Ins ("t1", [ [ V.Int 11; V.Int 121 ] ])) ] }

(* Full torture over the fixed workload: crashes before, inside and after
   the rolled-back transaction; its undo must never surface in a recovered
   image. *)
let test_abort_then_crash () =
  let points, div = FT.torture ~crash_every:1 w_abort in
  check_none "abort-then-crash" div;
  Alcotest.(check bool) "covered many crash points" true (points > 100)

(* --- deadlock: 4 transactions over mixed granularities ------------------- *)

let test_deadlock_cycle_of_four () =
  let module L = Rss.Lock_table in
  let lt = L.create () in
  let res =
    [| L.Relation 0;
       L.Tuple_of (0, { Rss.Tid.page = 1; slot = 2 });
       L.Relation 1;
       L.Tuple_of (1, { Rss.Tid.page = 4; slot = 0 }) |]
  in
  Array.iteri (fun i r -> ignore (L.acquire lt (i + 1) r L.Exclusive)) res;
  (* t1 -> t2 -> t3 -> t4 each waiting on the next one's resource *)
  for i = 1 to 3 do
    match L.acquire lt i res.(i) L.Exclusive with
    | L.Blocked [ b ] -> Alcotest.(check int) "blocked by successor" (i + 1) b
    | _ -> Alcotest.failf "t%d should block on t%d" i (i + 1)
  done;
  match L.acquire lt 4 res.(0) L.Shared with
  | L.Deadlock cycle ->
    List.iter
      (fun tx ->
        Alcotest.(check bool)
          (Printf.sprintf "cycle mentions t%d" tx)
          true (List.mem tx cycle))
      [ 1; 2; 3; 4 ]
  | _ -> Alcotest.fail "closing the loop must report a deadlock"

(* --- injected fault: recovery without the commit filter ------------------ *)

let test_injected_commit_filter_fault_is_caught () =
  Rss.Recovery.set_commit_filter false;
  Fun.protect
    ~finally:(fun () ->
      Rss.Recovery.set_commit_filter true;
      F.reset ())
    (fun () ->
      match FT.torture ~crash_every:1 w_abort with
      | _, Some _ -> () (* the planted corruption was detected: pass *)
      | _, None ->
        Alcotest.fail
          "commit filter disabled yet no divergence: harness is blind to \
           uncommitted-redo corruption")

let () =
  Alcotest.run "torture_corpus"
    [ ( "corpus",
        [ Alcotest.test_case "append crash loses unflushed suffix" `Quick
            test_append_crash_loses_unflushed_suffix;
          Alcotest.test_case "group batch torn at every offset" `Quick
            test_group_batch_torn_every_offset;
          Alcotest.test_case "multi-session torture, fixed seed" `Quick
            test_ms_torture_fixed_seed;
          Alcotest.test_case "crash during eviction" `Quick
            test_crash_during_eviction;
          Alcotest.test_case "abort then crash" `Quick test_abort_then_crash;
          Alcotest.test_case "4-txn deadlock cycle" `Quick
            test_deadlock_cycle_of_four;
          Alcotest.test_case "injected commit-filter fault caught" `Quick
            test_injected_commit_filter_fault_is_caught ] ) ]
