(* Parallel execution: gather-order determinism (DOP > 1 byte-identical to
   serial), early close without leaks or deadlock, parallel run generation
   against the serial external sort on NULL-heavy multi-column keys, exact
   counter folding, B-tree range splitting, the DOP-aware cost decision
   surfaced through EXPLAIN, and the SET PARALLELISM statement. *)

module V = Rel.Value
module T = Rel.Tuple

let render (out : Executor.output) = List.map T.to_string out.Executor.rows

(* --- fixture: a table wide enough to span many pages --------------------- *)

let big_db () =
  let db = Database.create ~buffer_pages:256 () in
  Workload.load_uniform db ~name:"BIG" ~rows:5000
    ~cols:[ { Workload.col = "A"; distinct = 10 };
            { Workload.col = "B"; distinct = 5000 };
            { Workload.col = "C"; distinct = 25 } ]
    ~indexes:[ ("BIG_B", [ "B" ], true); ("BIG_C", [ "C" ], false) ]
    ~seed:7 ();
  db

let queries =
  [ "SELECT A, B FROM BIG WHERE A < 7 ORDER BY B";
    "SELECT B FROM BIG WHERE B >= 100";
    "SELECT A, SUM(B), COUNT(B), MIN(C), MAX(C), AVG(B) FROM BIG GROUP BY A";
    "SELECT SUM(B), COUNT(A) FROM BIG WHERE C = 3";
    "SELECT C, COUNT(C) FROM BIG WHERE A >= 2 GROUP BY C ORDER BY C DESC" ]

(* --- determinism: any DOP produces the serial row sequence --------------- *)

let test_gather_determinism () =
  let db = big_db () in
  let serial = List.map (fun sql -> render (Database.query db sql)) queries in
  Database.set_force_parallel db true;
  List.iter
    (fun dop ->
      Database.set_parallelism db dop;
      List.iteri
        (fun i sql ->
          let got = render (Database.query db sql) in
          if got <> List.nth serial i then
            Alcotest.failf "DOP=%d differs from serial on %s" dop sql)
        queries)
    [ 1; 2; 3; 4; 8 ];
  (* repeated runs at the same DOP are stable against scheduling *)
  Database.set_parallelism db 4;
  let once = render (Database.query db (List.hd queries)) in
  for _ = 1 to 5 do
    let again = render (Database.query db (List.hd queries)) in
    if again <> once then Alcotest.fail "same-DOP rerun differs"
  done

(* --- early close: cancelling producers must not leak or deadlock --------- *)

let test_gather_early_close () =
  let pager = Rss.Pager.create () in
  let mk_partition k = Parallel.Pages [ k ] in
  let open_partition quota part =
    match part with
    | Parallel.Pages [ k ] ->
      let i = ref 0 in
      fun () ->
        if !i >= quota then None
        else begin
          incr i;
          Some (T.make [ V.Int k; V.Int !i ])
        end
    | _ -> assert false
  in
  (* producers push far more than the queue bound; consume a prefix, close,
     and the join inside [close] must return (no deadlock, producers
     cancelled) *)
  let g =
    Parallel.gather pager
      ~partitions:(List.map mk_partition [ 0; 1; 2; 3 ])
      ~open_partition:(open_partition 50_000)
  in
  for _ = 1 to 5 do
    match g.Parallel.next () with
    | Some _ -> ()
    | None -> Alcotest.fail "stream ended early"
  done;
  g.Parallel.close ();
  g.Parallel.close ();  (* idempotent *)
  Alcotest.(check bool) "next after close" true (g.Parallel.next () = None);
  (* the pool is still serviceable afterwards: a full drain works and
     preserves partition order *)
  let g2 =
    Parallel.gather pager
      ~partitions:(List.map mk_partition [ 0; 1; 2 ])
      ~open_partition:(open_partition 100)
  in
  let rec drain acc =
    match g2.Parallel.next () with
    | Some t -> drain (t :: acc)
    | None -> List.rev acc
  in
  let all = drain [] in
  Alcotest.(check int) "full drain" 300 (List.length all);
  let expected =
    List.concat_map
      (fun k -> List.init 100 (fun i -> T.make [ V.Int k; V.Int (i + 1) ]))
      [ 0; 1; 2 ]
  in
  Alcotest.(check bool) "partition order" true
    (List.for_all2 T.equal all expected)

(* a producer exception must re-raise from [next] after cleanup *)
let test_gather_producer_exception () =
  let pager = Rss.Pager.create () in
  let open_partition part =
    match part with
    | Parallel.Pages [ 1 ] -> fun () -> failwith "producer boom"
    | _ ->
      let i = ref 0 in
      fun () -> if !i >= 10 then None else (incr i; Some (T.make [ V.Int !i ]))
  in
  let g =
    Parallel.gather pager
      ~partitions:[ Parallel.Pages [ 0 ]; Parallel.Pages [ 1 ] ]
      ~open_partition
  in
  let rec drain () =
    match g.Parallel.next () with Some _ -> drain () | None -> ()
  in
  (match drain () with
   | () -> Alcotest.fail "producer exception swallowed"
   | exception Failure msg -> Alcotest.(check string) "message" "producer boom" msg);
  Alcotest.(check bool) "next after failure" true (g.Parallel.next () = None)

(* --- parallel run generation vs the serial external sort ----------------- *)

let null_heavy_tuples n =
  let rng = Workload.rand_init 31 in
  List.init n (fun i ->
      let v () =
        match Random.State.int rng 4 with
        | 0 -> V.Null
        | 1 -> V.Int (Random.State.int rng 5)
        | 2 -> V.Str (Printf.sprintf "s%d" (Random.State.int rng 4))
        | _ -> V.Float (float_of_int (Random.State.int rng 3))
      in
      T.make [ v (); v (); V.Int i ])

let dispense l =
  let rest = ref l in
  fun () ->
    match !rest with
    | [] -> None
    | t :: tl -> rest := tl; Some t

let test_parallel_sort_agrees () =
  let key = [ (0, Rss.Sort.Asc); (1, Rss.Sort.Desc) ] in
  let input = null_heavy_tuples 3000 in
  let serial_pager = Rss.Pager.create ~buffer_pages:8 () in
  let serial =
    let d = Rss.Sort.sort_stream serial_pager ~key (dispense input) in
    let rec go acc = match d () with Some t -> go (t :: acc) | None -> List.rev acc in
    go []
  in
  (* split the input into contiguous chunks, form runs per chunk, merge the
     concatenated run lists: must reproduce the serial order exactly, ties
     (equal keys, NULLs) included — the [V.Int i] column witnesses it *)
  List.iter
    (fun parts ->
      let pager = Rss.Pager.create ~buffer_pages:8 () in
      let n = List.length input in
      let chunk j =
        List.filteri (fun i _ -> i * parts / n = j) input
      in
      let runs =
        List.concat_map
          (fun j -> Rss.Sort.runs_of_dispenser pager ~key (dispense (chunk j)))
          (List.init parts (fun j -> j))
      in
      let d = Rss.Sort.merge_stream pager ~key runs in
      let rec go acc = match d () with Some t -> go (t :: acc) | None -> List.rev acc in
      let merged = go [] in
      Alcotest.(check int)
        (Printf.sprintf "parts=%d length" parts) n (List.length merged);
      if not (List.for_all2 T.equal merged serial) then
        Alcotest.failf "parts=%d merge differs from serial sort" parts)
    [ 2; 3; 5 ]

(* --- counters: folded per-domain counts sum exactly to serial ------------ *)

let test_counter_fold_exact () =
  let db = big_db () in
  let c = Rss.Pager.counters (Database.pager db) in
  let measure sql =
    Rss.Counters.reset c;
    Rss.Pager.evict_all (Database.pager db);
    ignore (Database.query db sql);
    (c.Rss.Counters.page_fetches, c.Rss.Counters.rsi_calls)
  in
  Database.set_plan_cache db false;
  (* pure scan: the exchange runs the identical access path split in slices,
     so the folded worker counters must match serial to the unit *)
  let scan_sql = "SELECT B FROM BIG WHERE B >= 100" in
  let serial_fetches, serial_rsi = measure scan_sql in
  Database.set_force_parallel db true;
  Database.set_parallelism db 4;
  let par_fetches, par_rsi = measure scan_sql in
  Alcotest.(check int) "scan page fetches" serial_fetches par_fetches;
  Alcotest.(check int) "scan rsi calls" serial_rsi par_rsi;
  Alcotest.(check bool) "did fetch" true (serial_fetches > 0);
  (* grouped: parallel partial aggregation skips the serial sort's spill, so
     page I/O legitimately shrinks — but every input tuple is still fetched
     through the RSI exactly once, so rsi_calls stays exact *)
  let agg_sql = "SELECT A, SUM(B) FROM BIG WHERE A < 9 GROUP BY A" in
  Database.set_force_parallel db false;
  Database.set_parallelism db 1;
  let _, serial_agg_rsi = measure agg_sql in
  Database.set_force_parallel db true;
  Database.set_parallelism db 4;
  let _, par_agg_rsi = measure agg_sql in
  Alcotest.(check int) "grouped rsi calls" serial_agg_rsi par_agg_rsi

(* --- B-tree range splitting ---------------------------------------------- *)

let test_split_range () =
  let pager = Rss.Pager.create () in
  let bt = Rss.Btree.create ~order:8 pager in
  (* duplicate-heavy: every key appears 3x, so separator duplicates must land
     on exactly one side *)
  for i = 0 to 899 do
    Rss.Btree.insert bt [| V.Int (i mod 300) |]
      { Rss.Tid.page = i; slot = 0 }
  done;
  let whole = List.of_seq (Rss.Btree.range_scan_unaccounted bt) in
  List.iter
    (fun parts ->
      let ranges = Rss.Btree.split_range bt ~parts in
      Alcotest.(check bool)
        (Printf.sprintf "parts=%d count" parts)
        true
        (List.length ranges >= 1 && List.length ranges <= parts);
      let pieces =
        List.concat_map
          (fun (lo, hi) ->
            List.of_seq (Rss.Btree.range_scan_unaccounted ?lo ?hi bt))
          ranges
      in
      if pieces <> whole then
        Alcotest.failf "parts=%d concatenation differs from full scan" parts)
    [ 1; 2; 4; 8; 64 ];
  (* splitting a bounded range stays inside the bounds *)
  let lo = ([| V.Int 50 |], `Inclusive) and hi = ([| V.Int 250 |], `Exclusive) in
  let bounded = List.of_seq (Rss.Btree.range_scan_unaccounted ~lo ~hi bt) in
  let ranges = Rss.Btree.split_range ~lo ~hi bt ~parts:4 in
  let pieces =
    List.concat_map
      (fun (lo, hi) -> List.of_seq (Rss.Btree.range_scan_unaccounted ?lo ?hi bt))
      ranges
  in
  Alcotest.(check bool) "bounded concatenation" true (pieces = bounded)

(* --- cost model and EXPLAIN ---------------------------------------------- *)

let explain db sql =
  match Database.exec db ("EXPLAIN " ^ sql) with
  | Database.Text s -> s
  | _ -> Alcotest.fail "EXPLAIN did not return text"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_explain_dop () =
  let db = big_db () in
  ignore (Database.exec db "SET PARALLELISM 4");
  Alcotest.(check int) "cap set" 4 (Database.parallelism db);
  (* a 5000-row scan is CPU-heavy enough for the DOP term to win *)
  let s = explain db "SELECT B FROM BIG WHERE B >= 100" in
  Alcotest.(check bool) "exchange surfaced" true (contains s "EXCHANGE dop=");
  Alcotest.(check bool) "cap surfaced" true (contains s "parallelism: max_dop=4");
  (* serial chosen for small inputs: 500-startup-per-worker dwarfs the scan *)
  Workload.load_emp_dept_job db;
  let s = explain db "SELECT NAME FROM EMP WHERE DNO = 17" in
  Alcotest.(check bool) "small input stays serial" false (contains s "EXCHANGE");
  (* W = 0: parallelism cannot reduce pure I/O cost *)
  Database.set_w db 0.;
  let s = explain db "SELECT B FROM BIG WHERE B >= 100" in
  Alcotest.(check bool) "W=0 stays serial" false (contains s "EXCHANGE");
  Database.set_w db Ctx.default_w;
  (* DOP 1 disables the post-pass entirely *)
  ignore (Database.exec db "SET PARALLELISM 1");
  let s = explain db "SELECT B FROM BIG WHERE B >= 100" in
  Alcotest.(check bool) "max_dop=1 serial" false (contains s "EXCHANGE")

let test_choose_dop () =
  let w = 0.5 in
  (* big CPU component: parallel must win and pick a dop in range *)
  (match Cost_model.choose_dop ~w ~max_dop:4 { Cost_model.pages = 10.; rsi = 100_000. } with
   | Some (dop, pc) ->
     Alcotest.(check bool) "dop in range" true (dop >= 2 && dop <= 4);
     Alcotest.(check bool) "strictly cheaper" true
       (Cost_model.total ~w pc
        < Cost_model.total ~w { Cost_model.pages = 10.; rsi = 100_000. });
     Alcotest.(check (float 1e-9)) "pages undivided" 10. pc.Cost_model.pages
   | None -> Alcotest.fail "large scan should parallelize");
  (* small input: startup dominates *)
  Alcotest.(check bool) "small stays serial" true
    (Cost_model.choose_dop ~w ~max_dop:4 { Cost_model.pages = 3.; rsi = 30. } = None);
  (* W = 0 never parallelizes (total ignores rsi) *)
  Alcotest.(check bool) "w=0 stays serial" true
    (Cost_model.choose_dop ~w:0. ~max_dop:8 { Cost_model.pages = 5.; rsi = 1e9 } = None);
  (* max_dop 1 is a no-op *)
  Alcotest.(check bool) "max_dop=1" true
    (Cost_model.choose_dop ~w ~max_dop:1 { Cost_model.pages = 5.; rsi = 1e9 } = None)

let test_set_parallelism_stmt () =
  let db = Database.create () in
  (match Database.exec db "SET PARALLELISM 3" with
   | Database.Done msg -> Alcotest.(check string) "ack" "parallelism set to 3" msg
   | _ -> Alcotest.fail "expected Done");
  Alcotest.(check int) "applied" 3 (Database.parallelism db);
  (match Database.exec db "SET PARALLELISM 0" with
   | exception Database.Error msg ->
     Alcotest.(check bool) "zero rejected" true
       (contains msg "expected positive degree of parallelism")
   | _ -> Alcotest.fail "SET PARALLELISM 0 accepted")

(* --- failpoints: armed registry forces serial execution ------------------ *)

let test_failpoints_degrade_to_serial () =
  let db = big_db () in
  Database.set_force_parallel db true;
  Database.set_parallelism db 4;
  let sql = "SELECT B FROM BIG WHERE B >= 100" in
  let want = render (Database.query db sql) in
  (* a count-only probe arms the registry; execution must fall back to the
     serial path (same rows) rather than ship failpoints across domains *)
  Rss.Failpoint.count_only ();
  let got = render (Database.query db sql) in
  Rss.Failpoint.reset ();
  Alcotest.(check bool) "rows unchanged under failpoints" true (got = want)

let () =
  Alcotest.run "parallel"
    [ ( "gather",
        [ Alcotest.test_case "determinism across DOPs" `Quick test_gather_determinism;
          Alcotest.test_case "early close" `Quick test_gather_early_close;
          Alcotest.test_case "producer exception" `Quick test_gather_producer_exception
        ] );
      ( "sort",
        [ Alcotest.test_case "partitioned runs vs serial" `Quick
            test_parallel_sort_agrees ] );
      ( "counters",
        [ Alcotest.test_case "fold exactness" `Quick test_counter_fold_exact ] );
      ( "btree",
        [ Alcotest.test_case "split_range" `Quick test_split_range ] );
      ( "cost",
        [ Alcotest.test_case "EXPLAIN DOP" `Quick test_explain_dop;
          Alcotest.test_case "choose_dop" `Quick test_choose_dop;
          Alcotest.test_case "SET PARALLELISM" `Quick test_set_parallelism_stmt ] );
      ( "failpoints",
        [ Alcotest.test_case "degrade to serial" `Quick
            test_failpoints_degrade_to_serial ] ) ]
