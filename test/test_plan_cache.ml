(* Compiled-plan cache semantics: fingerprint sharing and collision safety,
   literal rebinding, hit/miss/invalidation accounting, precise
   stats_version invalidation (UPDATE STATISTICS, index DDL, DROP/CREATE),
   and cache-off vs cache-on result equality over the full workload. *)

module V = Rel.Value

let parse sql = Parser.parse_query sql

let counters db = Rss.Pager.counters (Database.pager db)

let rows_of (out : Executor.output) = List.map Rel.Tuple.to_string out.Executor.rows

(* result comparison tolerant of row order: SELECTs without ORDER BY may
   legally reorder under a different plan *)
let canon_rows out = List.sort compare (rows_of out)

(* --- fingerprints ------------------------------------------------------- *)

let test_fingerprint_shapes () =
  let fp sql =
    match Normalize.fingerprint (parse sql) with
    | Some (key, _, values) -> (key, values)
    | None -> Alcotest.fail ("unexpectedly uncacheable: " ^ sql)
  in
  (* same shape, different literals: one key, different bindings *)
  let k1, v1 = fp "SELECT NAME FROM EMP WHERE DNO = 17 AND SAL > 1000" in
  let k2, v2 = fp "SELECT NAME FROM EMP WHERE DNO = 3 AND SAL > 29000" in
  Alcotest.(check string) "same key" k1 k2;
  Alcotest.(check bool) "bindings differ" true (v1 <> v2);
  Alcotest.(check int) "two literals extracted" 2 (List.length v1);
  (* literal type is part of the key: int vs string must not collide *)
  let k3, _ = fp "SELECT NAME FROM EMP WHERE DNO = 17 AND SAL > 'x'" in
  Alcotest.(check bool) "type-tagged keys differ" true (k1 <> k3);
  (* a different shape never collides *)
  let k4, _ = fp "SELECT NAME FROM EMP WHERE DNO = 17 AND SAL >= 1000" in
  Alcotest.(check bool) "comparison op in key" true (k1 <> k4);
  (* user parameters are the prepared-statement path's business *)
  Alcotest.(check bool) "? statements uncacheable" true
    (Normalize.fingerprint (parse "SELECT NAME FROM EMP WHERE DNO = ?") = None);
  (* canonicalization only touches WHERE: literals elsewhere stay in the key *)
  let k5, v5 = fp "SELECT SAL + 100 FROM EMP WHERE DNO = 1" in
  let k6, _ = fp "SELECT SAL + 200 FROM EMP WHERE DNO = 1" in
  Alcotest.(check bool) "select-list literal differentiates" true (k5 <> k6);
  Alcotest.(check int) "only the WHERE literal extracted" 1 (List.length v5)

let test_canonicalize_subqueries () =
  let q = parse "SELECT X FROM T1 WHERE A IN (SELECT B FROM T2 WHERE Y = 3) AND X > 7" in
  let _, values = Normalize.canonicalize q in
  (* both the outer literal and the subquery's literal are parameterized *)
  Alcotest.(check int) "nested literals extracted" 2 (List.length values)

(* --- hit/miss accounting and rebinding ---------------------------------- *)

let emp_db () =
  let db = Database.create ~buffer_pages:32 () in
  Workload.load_emp_dept_job db;
  db

let test_hit_miss_and_rebinding () =
  let db = emp_db () in
  let c = counters db in
  let q1 = "SELECT NAME FROM EMP WHERE DNO = 17" in
  let q2 = "SELECT NAME FROM EMP WHERE DNO = 3" in
  let base_m = c.Rss.Counters.plan_cache_misses in
  let base_h = c.Rss.Counters.plan_cache_hits in
  let out1 = Database.query db q1 in
  Alcotest.(check int) "first execution misses" (base_m + 1)
    c.Rss.Counters.plan_cache_misses;
  let out1' = Database.query db q1 in
  Alcotest.(check int) "repeat hits" (base_h + 1) c.Rss.Counters.plan_cache_hits;
  Alcotest.(check int) "one entry" 1 (Database.plan_cache_size db);
  Alcotest.(check (list string)) "hit returns same rows" (canon_rows out1)
    (canon_rows out1');
  (* different literal, same shape: shares the plan, rebinding changes rows *)
  let out2 = Database.query db q2 in
  Alcotest.(check int) "shared-shape statement hits" (base_h + 2)
    c.Rss.Counters.plan_cache_hits;
  Alcotest.(check int) "still one entry" 1 (Database.plan_cache_size db);
  Database.set_plan_cache db false;
  let out2_off = Database.query db q2 in
  Database.set_plan_cache db true;
  Alcotest.(check (list string)) "rebound literal gives uncached answer"
    (canon_rows out2_off) (canon_rows out2);
  Alcotest.(check bool) "different literals, different rows" true
    (canon_rows out1 <> canon_rows out2)

let test_type_error_still_raises () =
  let db = emp_db () in
  (* cache the string-literal shape first *)
  ignore (Database.query db "SELECT NAME FROM EMP WHERE NAME = 'adams'");
  (* the int-literal twin types differently: it must fail exactly as it does
     uncached, never silently reuse a plan through a parameter slot *)
  let raises sql =
    match Database.exec db sql with
    | exception Database.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "type mismatch raises through cache path" true
    (raises "SELECT NAME FROM EMP WHERE NAME = 5");
  Alcotest.(check bool) "raises again (never cached)" true
    (raises "SELECT NAME FROM EMP WHERE NAME = 5")

(* --- invalidation ------------------------------------------------------- *)

let test_update_statistics_invalidates () =
  let db = emp_db () in
  let c = counters db in
  let q = "SELECT NAME FROM EMP WHERE DNO = 17" in
  ignore (Database.query db q);
  ignore (Database.query db q);
  let base_i = c.Rss.Counters.plan_cache_invalidations in
  ignore (Database.exec db "UPDATE STATISTICS");
  ignore (Database.query db q);
  Alcotest.(check int) "stats bump invalidates" (base_i + 1)
    c.Rss.Counters.plan_cache_invalidations;
  (* re-cached against the new versions: steady again *)
  ignore (Database.query db q);
  Alcotest.(check int) "re-cached" (base_i + 1)
    c.Rss.Counters.plan_cache_invalidations

let test_invalidation_is_precise () =
  let db = emp_db () in
  Workload.load_sales db;
  let c = counters db in
  let emp_q = "SELECT NAME FROM EMP WHERE DNO = 17" in
  let sales_q = "SELECT REGION FROM CUSTOMER WHERE CUSTKEY = 5" in
  ignore (Database.query db emp_q);
  ignore (Database.query db sales_q);
  let base_h = c.Rss.Counters.plan_cache_hits in
  let base_i = c.Rss.Counters.plan_cache_invalidations in
  (* DDL on CUSTOMER must not disturb the EMP plan *)
  ignore (Database.exec db "CREATE INDEX CUST_REGION ON CUSTOMER (REGION)");
  ignore (Database.query db emp_q);
  Alcotest.(check int) "unrelated plan still hits" (base_h + 1)
    c.Rss.Counters.plan_cache_hits;
  ignore (Database.query db sales_q);
  Alcotest.(check int) "dependent plan invalidated" (base_i + 1)
    c.Rss.Counters.plan_cache_invalidations

let test_drop_create_table_never_stale () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE S (X INT)");
  ignore (Database.exec db "INSERT INTO S VALUES (1), (2), (3)");
  let q = "SELECT X FROM S WHERE X > 0" in
  Alcotest.(check int) "three rows" 3
    (List.length (Database.query db q).Executor.rows);
  ignore (Database.exec db "DROP TABLE S");
  ignore (Database.exec db "CREATE TABLE S (X INT)");
  ignore (Database.exec db "INSERT INTO S VALUES (9)");
  (* same fingerprint, but the old plan holds the dropped relation: the
     rel_id check must force a re-optimize against the new table *)
  Alcotest.(check int) "fresh table, fresh plan" 1
    (List.length (Database.query db q).Executor.rows)

let test_set_w_flushes () =
  let db = emp_db () in
  ignore (Database.query db "SELECT NAME FROM EMP WHERE DNO = 17");
  Alcotest.(check bool) "cached" true (Database.plan_cache_size db > 0);
  Database.set_w db 2.0;
  Alcotest.(check int) "W change flushes" 0 (Database.plan_cache_size db)

(* --- stats shift: unclustered index becomes effectively clustered ------- *)

let test_stats_shift_changes_cached_plan () =
  let db = Database.create ~buffer_pages:16 () in
  let cat = Database.catalog db in
  (* wide tuples: the heap spans far more pages than the index leaves, so
     clusteredness decides whether a range scan beats reading the segment *)
  let schema =
    Rel.Schema.make
      (List.map
         (fun n -> { Rel.Schema.name = n; ty = V.Tint })
         [ "K"; "P"; "C1"; "C2"; "C3"; "C4"; "C5"; "C6" ])
  in
  let r = Catalog.create_relation cat ~name:"R" ~schema in
  let row k =
    Rel.Tuple.make (V.Int k :: V.Int (k mod 7) :: List.init 6 (fun c -> V.Int (k + c)))
  in
  (* load in shuffled key order: consecutive K values land on scattered
     pages, so the measured cluster ratio is low *)
  let n = 2000 in
  let perm = Array.init n (fun i -> i * 997 mod n) in
  Array.iter (fun k -> ignore (Catalog.insert_tuple cat r (row k))) perm;
  ignore (Catalog.create_index cat ~name:"R_K" ~rel:r ~columns:[ "K" ] ~clustered:false);
  Catalog.update_statistics cat;
  let q = "SELECT P FROM R WHERE K BETWEEN 100 AND 700" in
  ignore (Database.query db q);
  let p1 =
    match Database.cached_plan db q with
    | Some res -> Plan.describe res.Optimizer.plan
    | None -> Alcotest.fail "plan not cached"
  in
  (* a wide range over an unclustered index costs a page per tuple: the
     optimizer reads the whole segment instead *)
  Alcotest.(check bool) "scattered rows scan the segment" true
    (String.length p1 >= 3 && String.sub p1 0 3 = "Seg");
  (* physically reorganize: reload in key order, then re-measure. DML alone
     must not invalidate (System R semantics: indexes are maintained, plans
     stay valid) — only the UPDATE STATISTICS afterwards moves the version. *)
  ignore (Catalog.delete_tuples cat r (fun _ -> true));
  for k = 0 to n - 1 do
    ignore (Catalog.insert_tuple cat r (row k))
  done;
  (match Database.cached_plan db q with
   | Some _ -> ()
   | None -> Alcotest.fail "DML alone must not invalidate");
  let c = counters db in
  let base_i = c.Rss.Counters.plan_cache_invalidations in
  ignore (Database.exec db "UPDATE STATISTICS");
  ignore (Database.query db q);
  Alcotest.(check int) "stats shift invalidates" (base_i + 1)
    c.Rss.Counters.plan_cache_invalidations;
  let p2 =
    match Database.cached_plan db q with
    | Some res -> Plan.describe res.Optimizer.plan
    | None -> Alcotest.fail "plan not re-cached"
  in
  (* the measured cluster ratio is ~1 now: the re-optimized plan uses the
     index as a clustered matching scan *)
  Alcotest.(check bool) ("plan changed: " ^ p1 ^ " -> " ^ p2) true (p1 <> p2);
  Alcotest.(check bool) "new plan uses the R_K index" true
    (String.length p2 >= 3 && String.sub p2 0 3 = "Idx");
  (* and the rebound execution still returns the right rows *)
  Alcotest.(check int) "row count" 601
    (List.length (Database.query db q).Executor.rows)

(* --- cache-off vs cache-on over the full workload ----------------------- *)

let workload_corpus =
  [ Workload.fig1_query;
    "SELECT NAME FROM EMP WHERE DNO = 17";
    "SELECT NAME FROM EMP WHERE SAL > 29000";
    "SELECT NAME FROM EMP WHERE DNO BETWEEN 10 AND 12 AND JOB = 5";
    "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND SAL > 25000";
    "SELECT TITLE, COUNT(*) FROM EMP, JOB WHERE EMP.JOB = JOB.JOB GROUP BY TITLE";
    "SELECT NAME FROM EMP WHERE JOB IN (5, 9) ORDER BY NAME";
    "SELECT NAME FROM EMP WHERE SAL > (SELECT AVG(SAL) FROM EMP)";
    "SELECT NAME FROM EMP WHERE DNO IN (SELECT DNO FROM DEPT WHERE LOC = 'DENVER')";
    "SELECT REGION, COUNT(*) FROM CUSTOMER GROUP BY REGION";
    "SELECT ODATE FROM ORDERS, CUSTOMER WHERE ORDERS.CUSTKEY = CUSTOMER.CUSTKEY \
     AND REGION = 'EAST'";
    "SELECT AMOUNT FROM LINEITEM, ORDERS WHERE LINEITEM.ORDKEY = ORDERS.ORDKEY \
     AND ODATE > 900";
    "SELECT CATEGORY, COUNT(*) FROM LINEITEM, PRODUCT \
     WHERE LINEITEM.PRODKEY = PRODUCT.PRODKEY GROUP BY CATEGORY" ]

let test_cache_off_vs_on_workload () =
  let db = Database.create ~buffer_pages:64 () in
  Workload.load_emp_dept_job db;
  Workload.load_sales db;
  let run () = List.map (fun sql -> canon_rows (Database.query db sql)) workload_corpus in
  Database.set_plan_cache db false;
  let off = run () in
  Database.set_plan_cache db true;
  let cold = run () in
  let warm = run () in
  List.iteri
    (fun i sql ->
      Alcotest.(check (list string)) ("cold = off: " ^ sql) (List.nth off i)
        (List.nth cold i);
      Alcotest.(check (list string)) ("warm = off: " ^ sql) (List.nth off i)
        (List.nth warm i))
    workload_corpus;
  (* every statement was executed twice with the cache on: one entry each *)
  Alcotest.(check int) "entries populated" (List.length workload_corpus)
    (Database.plan_cache_size db)

(* Assertions folded in from the former review_probe/ scratch executable:
   const-const predicate shapes share a cached plan but rebind correctly,
   DML through the SELECT-only [query] entry point errors, and string vs
   int literals of the same shape never collide. *)
let test_probe_assertions () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (a INT, b STRING)");
  for i = 1 to 10 do
    ignore (Database.exec db (Printf.sprintf "INSERT INTO t VALUES (%d, 'x%d')" i i))
  done;
  let n sql = List.length (Database.query db sql).Executor.rows in
  (* const-const predicates share a shape; rebinding must not leak the
     always-false plan into the always-true probe *)
  Alcotest.(check int) "WHERE 1=2" 0 (n "SELECT * FROM t WHERE 1 = 2");
  Alcotest.(check int) "WHERE 3=3" 10 (n "SELECT * FROM t WHERE 3 = 3");
  (* same shape, different literals: rebinding through the cache *)
  Alcotest.(check int) "a<3" 2 (n "SELECT * FROM t WHERE a < 3");
  Alcotest.(check int) "a<9" 8 (n "SELECT * FROM t WHERE a < 9");
  (* exact text repeat takes the memo fast path, same answer *)
  let hits0 = (counters db).Rss.Counters.plan_cache_hits in
  Alcotest.(check int) "repeat a<3" 2 (n "SELECT * FROM t WHERE a < 3");
  Alcotest.(check bool) "text repeat hits" true
    ((counters db).Rss.Counters.plan_cache_hits > hits0);
  (* string vs int literal with the same shape must not collide *)
  Alcotest.(check int) "b='x3'" 1 (n "SELECT * FROM t WHERE b = 'x3'");
  Alcotest.(check int) "a<3 after string probe" 2 (n "SELECT * FROM t WHERE a < 3");
  (* DML through the SELECT-only entry point errors *)
  (match Database.query db "INSERT INTO t VALUES (99, 'z')" with
   | _ -> Alcotest.fail "INSERT accepted by query"
   | exception Database.Error _ -> ());
  Alcotest.(check bool) "entries cached" true (Database.plan_cache_size db > 0)

(* The fuzz harness's fault-injection hook: with dependency validation off,
   DROP/CREATE TABLE leaves a stale plan in the cache and the engine serves
   wrong rows — with it on (the default), never. *)
let test_validation_hook () =
  let run validate =
    let db = Database.create () in
    Database.set_plan_cache_validation db validate;
    ignore (Database.exec db "CREATE TABLE t (a INT)");
    ignore (Database.exec db "INSERT INTO t VALUES (1), (2), (3)");
    ignore (Database.query db "SELECT a FROM t WHERE a >= 0");  (* warm *)
    ignore (Database.exec db "DROP TABLE t");
    ignore (Database.exec db "CREATE TABLE t (a INT)");
    ignore (Database.exec db "INSERT INTO t VALUES (7)");
    List.length (Database.query db "SELECT a FROM t WHERE a >= 0").Executor.rows
  in
  Alcotest.(check int) "validation on: fresh plan, fresh rows" 1 (run true);
  Alcotest.(check bool) "validation off: stale plan serves old data" true
    (run false <> 1)

(* --- LRU cap ------------------------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_lru_cap_and_evictions () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (a INT, b INT)");
  ignore (Database.exec db "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  let c = counters db in
  let q1 = "SELECT a FROM t WHERE a = 1" in
  let q2 = "SELECT b FROM t WHERE b = 10" in
  let q3 = "SELECT a, b FROM t WHERE a >= 0" in
  let q4 = "SELECT b, a FROM t WHERE b >= 0" in
  ignore (Database.query db q1);
  ignore (Database.query db q2);
  ignore (Database.query db q3);
  Alcotest.(check int) "three shapes cached" 3 (Database.plan_cache_size db);
  Alcotest.(check int) "no evictions under the default cap" 0
    c.Rss.Counters.plan_cache_evictions;
  (match Database.exec db "SET PLAN_CACHE_SIZE 2" with
   | Database.Done msg ->
     Alcotest.(check string) "tag" "plan cache size set to 2" msg
   | _ -> Alcotest.fail "SET PLAN_CACHE_SIZE: expected Done");
  (* the cap applies immediately: LRU entry (q1) evicted, eviction counted *)
  Alcotest.(check int) "shrunk to cap" 2 (Database.plan_cache_size db);
  Alcotest.(check bool) "evictions counted" true
    (c.Rss.Counters.plan_cache_evictions >= 1);
  (* recency order is per-use, not per-insert: touch q2, then insert q4 —
     q3 (now least recent) goes, q2 stays hot *)
  let h0 = c.Rss.Counters.plan_cache_hits in
  ignore (Database.query db q2);
  Alcotest.(check int) "q2 still resident" (h0 + 1) c.Rss.Counters.plan_cache_hits;
  ignore (Database.query db q4);
  Alcotest.(check int) "insert past cap keeps size" 2 (Database.plan_cache_size db);
  ignore (Database.query db q2);
  Alcotest.(check int) "hot entry survives" (h0 + 2) c.Rss.Counters.plan_cache_hits;
  let m0 = c.Rss.Counters.plan_cache_misses in
  ignore (Database.query db q3);
  Alcotest.(check int) "cold entry was evicted" (m0 + 1)
    c.Rss.Counters.plan_cache_misses;
  (* the statement-text memo obeys the same cap *)
  Alcotest.(check bool) "text memo capped" true
    (Plan_cache.text_size (Engine.plan_cache (Database.engine db)) <= 2);
  (* EXPLAIN surfaces evictions and the cap *)
  (match Database.exec db ("EXPLAIN " ^ q2) with
   | Database.Text s ->
     Alcotest.(check bool) "explain shows evictions" true (contains s "evictions=");
     Alcotest.(check bool) "explain shows cap" true (contains s "cap=2")
   | _ -> Alcotest.fail "EXPLAIN: expected Text")

let () =
  Alcotest.run "plan_cache"
    [ ( "fingerprint",
        [ Alcotest.test_case "shapes and collisions" `Quick test_fingerprint_shapes;
          Alcotest.test_case "subquery literals" `Quick test_canonicalize_subqueries ] );
      ( "semantics",
        [ Alcotest.test_case "hit/miss and rebinding" `Quick
            test_hit_miss_and_rebinding;
          Alcotest.test_case "type errors surface" `Quick test_type_error_still_raises;
          Alcotest.test_case "off vs on workload equality" `Quick
            test_cache_off_vs_on_workload;
          Alcotest.test_case "probe assertions (const-const, DML, collisions)"
            `Quick test_probe_assertions ] );
      ( "invalidation",
        [ Alcotest.test_case "UPDATE STATISTICS" `Quick
            test_update_statistics_invalidates;
          Alcotest.test_case "per-relation precision" `Quick
            test_invalidation_is_precise;
          Alcotest.test_case "drop/create table" `Quick
            test_drop_create_table_never_stale;
          Alcotest.test_case "W change flushes" `Quick test_set_w_flushes;
          Alcotest.test_case "unclustered->clustered stats shift" `Quick
            test_stats_shift_changes_cached_plan;
          Alcotest.test_case "validation debug hook" `Quick
            test_validation_hook ] );
      ( "lru",
        [ Alcotest.test_case "cap, evictions, recency" `Quick
            test_lru_cap_and_evictions ] ) ]
