module L = Rss.Lock_table
module W = Rss.Wal
module V = Rel.Value
module T = Rel.Tuple

let rel r = L.Relation r

(* --- lock table ---------------------------------------------------------- *)

let test_shared_compatible () =
  let lt = L.create () in
  Alcotest.(check bool) "t1 S" true (L.acquire lt 1 (rel 0) L.Shared = L.Granted);
  Alcotest.(check bool) "t2 S" true (L.acquire lt 2 (rel 0) L.Shared = L.Granted);
  Alcotest.(check int) "two holders" 2 (List.length (L.holders lt (rel 0)))

let test_exclusive_conflicts () =
  let lt = L.create () in
  ignore (L.acquire lt 1 (rel 0) L.Exclusive);
  (match L.acquire lt 2 (rel 0) L.Shared with
   | L.Blocked [ 1 ] -> ()
   | _ -> Alcotest.fail "expected Blocked by t1");
  (match L.acquire lt 3 (rel 0) L.Exclusive with
   | L.Blocked _ -> ()
   | _ -> Alcotest.fail "expected Blocked");
  Alcotest.(check int) "queue" 2 (List.length (L.waiting lt (rel 0)))

let test_reacquire_and_upgrade () =
  let lt = L.create () in
  ignore (L.acquire lt 1 (rel 0) L.Shared);
  Alcotest.(check bool) "re-S" true (L.acquire lt 1 (rel 0) L.Shared = L.Granted);
  Alcotest.(check bool) "upgrade alone" true
    (L.acquire lt 1 (rel 0) L.Exclusive = L.Granted);
  Alcotest.(check bool) "holds X" true (L.holds lt 1 (rel 0) L.Exclusive);
  Alcotest.(check bool) "X covers S" true (L.holds lt 1 (rel 0) L.Shared);
  (* upgrade with another holder blocks *)
  let lt2 = L.create () in
  ignore (L.acquire lt2 1 (rel 0) L.Shared);
  ignore (L.acquire lt2 2 (rel 0) L.Shared);
  (match L.acquire lt2 1 (rel 0) L.Exclusive with
   | L.Blocked [ 2 ] -> ()
   | _ -> Alcotest.fail "upgrade should block on t2")

let test_release_grants_queue () =
  let lt = L.create () in
  ignore (L.acquire lt 1 (rel 0) L.Exclusive);
  ignore (L.acquire lt 2 (rel 0) L.Shared);
  ignore (L.acquire lt 3 (rel 0) L.Shared);
  L.release_all lt 1;
  Alcotest.(check bool) "t2 granted" true (L.holds lt 2 (rel 0) L.Shared);
  Alcotest.(check bool) "t3 granted" true (L.holds lt 3 (rel 0) L.Shared);
  Alcotest.(check int) "granted events" 2 (List.length (L.granted_since lt 1));
  Alcotest.(check int) "queue empty" 0 (List.length (L.waiting lt (rel 0)))

let test_fair_queue_no_jumping () =
  let lt = L.create () in
  ignore (L.acquire lt 1 (rel 0) L.Shared);
  ignore (L.acquire lt 2 (rel 0) L.Exclusive);  (* queued behind t1 *)
  (* t3's S would be compatible with t1's S but must not jump over t2 *)
  (match L.acquire lt 3 (rel 0) L.Shared with
   | L.Blocked _ -> ()
   | _ -> Alcotest.fail "t3 must queue behind t2");
  L.release_all lt 1;
  Alcotest.(check bool) "t2 got X" true (L.holds lt 2 (rel 0) L.Exclusive);
  Alcotest.(check bool) "t3 still waits" false (L.holds lt 3 (rel 0) L.Shared)

let test_deadlock_detection () =
  let lt = L.create () in
  ignore (L.acquire lt 1 (rel 0) L.Exclusive);
  ignore (L.acquire lt 2 (rel 1) L.Exclusive);
  (match L.acquire lt 1 (rel 1) L.Exclusive with
   | L.Blocked [ 2 ] -> ()
   | _ -> Alcotest.fail "t1 should block on t2");
  (match L.acquire lt 2 (rel 0) L.Exclusive with
   | L.Deadlock cycle ->
     Alcotest.(check bool) "cycle mentions both" true
       (List.mem 1 cycle || List.mem 2 cycle)
   | _ -> Alcotest.fail "expected Deadlock")

let test_tuple_granularity () =
  let lt = L.create () in
  let r1 = L.Tuple_of (0, { Rss.Tid.page = 1; slot = 0 }) in
  let r2 = L.Tuple_of (0, { Rss.Tid.page = 1; slot = 1 }) in
  ignore (L.acquire lt 1 r1 L.Exclusive);
  Alcotest.(check bool) "different tuples independent" true
    (L.acquire lt 2 r2 L.Exclusive = L.Granted)

(* A sole holder's Shared→Exclusive upgrade with waiters already queued is a
   deadlock, not a queue-jump: t1 cannot get X until t2's queued X drains,
   and t2 cannot be granted while t1 holds S. The old fast path granted the
   upgrade past the queue, starving t2 behind an arbitrarily long string of
   upgraders; now the upgrader is told Deadlock immediately so it can abort
   and retry, and the queue proceeds in arrival order. *)
let test_upgrade_with_queued_waiters () =
  let lt = L.create () in
  Alcotest.(check bool) "t1 S" true (L.acquire lt 1 (rel 0) L.Shared = L.Granted);
  (match L.acquire lt 2 (rel 0) L.Exclusive with
   | L.Blocked [ 1 ] -> ()
   | _ -> Alcotest.fail "t2 X should block on t1");
  (match L.acquire lt 3 (rel 0) L.Shared with
   | L.Blocked _ -> ()
   | _ -> Alcotest.fail "t3 S must queue behind t2");
  (match L.acquire lt 1 (rel 0) L.Exclusive with
   | L.Deadlock cycle ->
     Alcotest.(check bool) "cycle names the upgrader or its blocker" true
       (List.mem 1 cycle || List.mem 2 cycle)
   | L.Granted -> Alcotest.fail "upgrade must not jump the queue"
   | L.Blocked _ ->
     Alcotest.fail "queued-behind-own-block is an undetected deadlock");
  (* the upgrader aborts; everyone queued proceeds in arrival order *)
  L.release_all lt 1;
  Alcotest.(check bool) "t2 first in line gets X" true
    (L.holds lt 2 (rel 0) L.Exclusive);
  Alcotest.(check bool) "t3 still waits behind t2's X" false
    (L.holds lt 3 (rel 0) L.Shared);
  L.release_all lt 2;
  Alcotest.(check bool) "t3 granted after t2" true
    (L.holds lt 3 (rel 0) L.Shared)

(* Two S holders racing to upgrade: each needs the other to release first.
   The second upgrade request must come back Deadlock (the classic
   lost-update trap), never leave both Blocked forever. *)
let test_two_upgraders_deadlock () =
  let lt = L.create () in
  ignore (L.acquire lt 1 (rel 0) L.Shared);
  ignore (L.acquire lt 2 (rel 0) L.Shared);
  (match L.acquire lt 1 (rel 0) L.Exclusive with
   | L.Blocked [ 2 ] -> ()
   | _ -> Alcotest.fail "t1's upgrade should block on t2's S");
  (match L.acquire lt 2 (rel 0) L.Exclusive with
   | L.Deadlock cycle ->
     Alcotest.(check bool) "cycle mentions both upgraders" true
       (List.mem 1 cycle || List.mem 2 cycle)
   | _ -> Alcotest.fail "second upgrader must be refused as Deadlock");
  (* t2 aborts; t1's pending upgrade is promoted *)
  L.release_all lt 2;
  Alcotest.(check bool) "t1 upgraded after t2 aborts" true
    (L.holds lt 1 (rel 0) L.Exclusive)

let test_release_grant_arrival_order () =
  let lt = L.create () in
  ignore (L.acquire lt 1 (rel 0) L.Exclusive);
  ignore (L.acquire lt 2 (rel 0) L.Shared);
  ignore (L.acquire lt 3 (rel 0) L.Shared);
  ignore (L.acquire lt 4 (rel 0) L.Exclusive);
  L.release_all lt 1;
  Alcotest.(check bool) "t2 granted" true (L.holds lt 2 (rel 0) L.Shared);
  Alcotest.(check bool) "t3 granted" true (L.holds lt 3 (rel 0) L.Shared);
  Alcotest.(check bool) "t4's X incompatible, still queued" false
    (L.holds lt 4 (rel 0) L.Exclusive);
  (* grants happened in arrival order: t2 before t3 *)
  (match List.rev (L.granted_since lt 1) with
   | [ (2, _, L.Shared); (3, _, L.Shared) ] -> ()
   | l ->
     Alcotest.failf "expected grants [t2 S; t3 S] in arrival order, got %d"
       (List.length l));
  L.release_all lt 2;
  L.release_all lt 3;
  Alcotest.(check bool) "t4 granted after both readers leave" true
    (L.holds lt 4 (rel 0) L.Exclusive)

(* A three-transaction cycle across mixed granularities: t1 waits on t2's
   tuple lock, t2 waits on t3's relation lock, and t3 closing the loop on
   t1's relation is refused as a deadlock naming all three. *)
let test_deadlock_three_txns_mixed_resources () =
  let lt = L.create () in
  let ra = rel 0 in
  let rb = L.Tuple_of (1, { Rss.Tid.page = 3; slot = 1 }) in
  let rc = rel 2 in
  ignore (L.acquire lt 1 ra L.Exclusive);
  ignore (L.acquire lt 2 rb L.Exclusive);
  ignore (L.acquire lt 3 rc L.Exclusive);
  (match L.acquire lt 1 rb L.Shared with
   | L.Blocked [ 2 ] -> ()
   | _ -> Alcotest.fail "t1 should block on t2's tuple lock");
  (match L.acquire lt 2 rc L.Exclusive with
   | L.Blocked [ 3 ] -> ()
   | _ -> Alcotest.fail "t2 should block on t3");
  (match L.acquire lt 3 ra L.Shared with
   | L.Deadlock cycle ->
     List.iter
       (fun tx ->
         Alcotest.(check bool)
           (Printf.sprintf "cycle mentions t%d" tx)
           true (List.mem tx cycle))
       [ 1; 2; 3 ]
   | _ -> Alcotest.fail "expected a three-transaction deadlock")

(* --- WAL ------------------------------------------------------------------ *)

let tid p s = { Rss.Tid.page = p; slot = s }

let sample_records =
  [ W.Begin 1;
    W.Insert { txn = 1; rel_id = 4; tid = tid 2 0; tuple = T.make [ V.Int 7; V.Str "x" ] };
    W.Delete { txn = 1; rel_id = 4; tid = tid 2 0; tuple = T.make [ V.Int 7; V.Str "x" ] };
    W.Commit 1;
    W.Begin 2;
    W.Abort 2 ]

let test_wal_roundtrip () =
  let wal = W.create () in
  List.iter (W.append wal) sample_records;
  W.flush wal;
  let bytes = W.to_bytes wal in
  Alcotest.(check int) "byte size" (String.length bytes) (W.byte_size wal);
  let wal2 = W.of_bytes bytes in
  let r1 = W.records wal and r2 = W.records wal2 in
  Alcotest.(check int) "count" (List.length r1) (List.length r2);
  List.iter2
    (fun a b -> Alcotest.(check bool) "record equal" true (W.equal_record a b))
    r1 r2

let test_wal_torn_tail_ignored () =
  let wal = W.create () in
  List.iter (W.append wal) sample_records;
  W.flush wal;
  let bytes = W.to_bytes wal in
  (* cut the last record in half *)
  let torn = String.sub bytes 0 (String.length bytes - 4) in
  let wal2 = W.of_bytes torn in
  Alcotest.(check int) "one record dropped"
    (List.length sample_records - 1)
    (List.length (W.records wal2))

let value_gen =
  QCheck.Gen.(
    oneof
      [ map (fun i -> V.Int i) int;
        map (fun f -> V.Float f) (float_bound_inclusive 1e6);
        map (fun s -> V.Str s) (string_size (int_bound 30));
        return V.Null ])

let record_gen =
  QCheck.Gen.(
    let tuple = map Array.of_list (list_size (int_range 1 5) value_gen) in
    oneof
      [ map (fun t -> W.Begin t) (int_bound 100);
        map (fun t -> W.Commit t) (int_bound 100);
        map (fun t -> W.Abort t) (int_bound 100);
        map2
          (fun (t, r) (p, (s, tu)) ->
            W.Insert { txn = t; rel_id = r; tid = tid p s; tuple = tu })
          (pair (int_bound 50) (int_bound 10))
          (pair (int_bound 500) (pair (int_bound 50) tuple));
        map2
          (fun (t, r) (p, (s, tu)) ->
            W.Delete { txn = t; rel_id = r; tid = tid p s; tuple = tu })
          (pair (int_bound 50) (int_bound 10))
          (pair (int_bound 500) (pair (int_bound 50) tuple)) ])

let prop_record_roundtrip =
  QCheck.Test.make ~name:"record codec roundtrip" ~count:300
    (QCheck.make ~print:(Format.asprintf "%a" W.pp_record) record_gen)
    (fun r ->
      let s = W.encode r in
      let r', off = W.decode s 0 in
      off = String.length s && W.equal_record r r')

(* The same round-trip, pinned per constructor — the mixed generator above
   exercises each variant only probabilistically. *)
let tuple_gen =
  QCheck.Gen.(map Array.of_list (list_size (int_range 1 5) value_gen))

let dml_gen make =
  QCheck.Gen.(
    map2
      (fun (t, r) (p, (s, tu)) -> make t r (tid p s) tu)
      (pair (int_bound 50) (int_bound 10))
      (pair (int_bound 500) (pair (int_bound 50) tuple_gen)))

let per_constructor_gens =
  [ ("Begin", QCheck.Gen.map (fun t -> W.Begin t) (QCheck.Gen.int_bound 1000));
    ("Commit", QCheck.Gen.map (fun t -> W.Commit t) (QCheck.Gen.int_bound 1000));
    ("Abort", QCheck.Gen.map (fun t -> W.Abort t) (QCheck.Gen.int_bound 1000));
    ( "Insert",
      dml_gen (fun txn rel_id tid tuple -> W.Insert { txn; rel_id; tid; tuple }) );
    ( "Delete",
      dml_gen (fun txn rel_id tid tuple -> W.Delete { txn; rel_id; tid; tuple }) ) ]

let props_constructor_roundtrip =
  List.map
    (fun (name, gen) ->
      QCheck.Test.make ~name:("roundtrip " ^ name) ~count:100
        (QCheck.make ~print:(Format.asprintf "%a" W.pp_record) gen)
        (fun r ->
          let s = W.encode r in
          let r', off = W.decode s 0 in
          off = String.length s && W.equal_record r r'))
    per_constructor_gens

(* Torn-write tolerance as a property: for a multi-record log truncated at
   EVERY byte offset, [of_bytes] must decode exactly the records whose
   encodings fit entirely within the prefix — a record is atomic; a partial
   tail is never half-applied and never breaks the decode of what precedes
   it. *)
let prop_truncation_every_offset =
  QCheck.Test.make ~name:"of_bytes at every truncation offset" ~count:60
    (QCheck.make
       ~print:(fun rs ->
         String.concat "; " (List.map (Format.asprintf "%a" W.pp_record) rs))
       (QCheck.Gen.list_size (QCheck.Gen.int_range 1 8) record_gen))
    (fun recs ->
      let wal = W.create () in
      List.iter (W.append wal) recs;
      W.flush wal;
      let bytes = W.to_bytes wal in
      let sizes = List.map (fun r -> String.length (W.encode r)) recs in
      let ok = ref true in
      for n = 0 to String.length bytes do
        let decoded = W.records (W.of_bytes (String.sub bytes 0 n)) in
        let rec fits k acc = function
          | s :: rest when acc + s <= n -> fits (k + 1) (acc + s) rest
          | _ -> k
        in
        let expect_n = fits 0 0 sizes in
        let expected = List.filteri (fun i _ -> i < expect_n) recs in
        ok :=
          !ok
          && List.length decoded = expect_n
          && List.for_all2 W.equal_record expected decoded
      done;
      !ok)

(* --- group-commit batching ------------------------------------------------ *)

(* A batched flush preserves global append order — and therefore every
   session's enqueue order, of which the global order is a superset. The
   generated value is the interleaving itself: a list of session picks, each
   committing that session's next transaction. *)
let prop_batch_preserves_enqueue_order =
  QCheck.Test.make ~name:"group batch preserves per-session enqueue order"
    ~count:200
    (QCheck.make
       ~print:(fun picks -> String.concat "" (List.map string_of_int picks))
       QCheck.Gen.(list_size (int_range 1 30) (int_bound 2)))
    (fun picks ->
      let next = Array.make 3 0 in
      let order =
        List.map
          (fun s ->
            let txn = (s * 1000) + next.(s) in
            next.(s) <- next.(s) + 1;
            (s, txn))
          picks
      in
      let wal = W.create () in
      List.iter (fun (_, txn) -> W.append wal (W.Commit txn)) order;
      W.flush wal;
      let decoded =
        List.filter_map
          (function W.Commit t -> Some t | _ -> None)
          (W.records (W.of_bytes (W.to_bytes wal)))
      in
      decoded = List.map snd order
      && List.for_all
           (fun s ->
             let mine = List.filter (fun t -> t / 1000 = s) decoded in
             mine = List.sort compare mine)
           [ 0; 1; 2 ])

(* One batched flush produces byte-for-byte the image N per-record flushes
   produce: batching changes durability timing, never log content. *)
let prop_batch_equals_serial_flushes =
  QCheck.Test.make ~name:"one batched flush = N serial flushes" ~count:100
    (QCheck.make
       ~print:(fun rs ->
         String.concat "; " (List.map (Format.asprintf "%a" W.pp_record) rs))
       (QCheck.Gen.list_size (QCheck.Gen.int_range 1 10) record_gen))
    (fun recs ->
      let a = W.create () and b = W.create () in
      List.iter (W.append a) recs;
      W.flush a;
      List.iter
        (fun r ->
          W.append b r;
          W.flush b)
        recs;
      W.to_bytes a = W.to_bytes b
      && List.length (W.records (W.of_bytes (W.to_bytes a)))
         = List.length recs)

(* A leader that dies before its flush loses the whole window; one that
   reaches the flush loses nothing. *)
let test_unflushed_window_lost () =
  let wal = W.create () in
  W.append wal (W.Commit 1);
  W.flush wal;
  let durable = W.to_bytes wal in
  List.iter (W.append wal) [ W.Begin 2; W.Commit 2; W.Commit 3 ];
  Alcotest.(check int) "window buffered" 3 (W.unflushed wal);
  Alcotest.(check string) "no flush: whole window lost" durable (W.to_bytes wal);
  W.flush wal;
  Alcotest.(check int) "drained" 0 (W.unflushed wal);
  Alcotest.(check int) "flush loses nothing" 4
    (List.length (W.records (W.of_bytes (W.to_bytes wal))))

(* The wal.group_flush failpoint fires *after* the batch reaches the durable
   image ("killed while writing the batch"): the image holds the whole batch,
   the torn sweep may take any suffix of it back, and the halted log rejects
   everything after the crash. *)
let test_crash_at_group_flush_boundary () =
  let module F = Rss.Failpoint in
  Fun.protect ~finally:F.reset (fun () ->
      let wal = W.create () in
      List.iter (W.append wal) [ W.Begin 1; W.Commit 1; W.Commit 2 ];
      F.arm ~site:"wal.group_flush" ~at:1;
      (match W.flush wal with
       | () -> Alcotest.fail "armed flush must crash"
       | exception F.Crash _ -> ());
      Alcotest.(check int) "batch durable before the crash point" 3
        (List.length (W.records (W.of_bytes (W.to_bytes wal))));
      Alcotest.(check int) "torn-sweep span covers the whole batch"
        (String.length (W.to_bytes wal))
        (W.last_flush_size wal);
      let image = W.to_bytes wal in
      W.append wal (W.Commit 9);
      W.flush wal;
      Alcotest.(check string) "halted log rejects writes" image
        (W.to_bytes wal))

(* --- recovery -------------------------------------------------------------- *)

let test_recovery_redo_committed_only () =
  let wal = W.create () in
  let t1 = T.make [ V.Int 1; V.Str "keep" ] in
  let t2 = T.make [ V.Int 2; V.Str "discard" ] in
  let t3 = T.make [ V.Int 3; V.Str "deleted" ] in
  List.iter (W.append wal)
    [ W.Begin 1;
      W.Insert { txn = 1; rel_id = 0; tid = tid 0 0; tuple = t1 };
      W.Insert { txn = 1; rel_id = 0; tid = tid 0 1; tuple = t3 };
      W.Delete { txn = 1; rel_id = 0; tid = tid 0 1; tuple = t3 };
      W.Commit 1;
      W.Begin 2;
      W.Insert { txn = 2; rel_id = 0; tid = tid 1 0; tuple = t2 } ];
  (* txn 2 never committed: crash *)
  let pager = Rss.Pager.create () in
  let result = Rss.Recovery.replay pager wal in
  Alcotest.(check (list int)) "committed" [ 1 ] result.Rss.Recovery.committed;
  Alcotest.(check (list int)) "discarded" [ 2 ] result.Rss.Recovery.discarded;
  Alcotest.(check int) "one survivor" 1 result.Rss.Recovery.tuples_restored;
  let rows =
    Rss.Scan.to_list
      (Rss.Scan.open_segment_scan result.Rss.Recovery.segment ~rel_id:0 ())
  in
  (match rows with
   | [ (_, t) ] -> Alcotest.(check bool) "kept tuple" true (T.equal t t1)
   | _ -> Alcotest.fail "expected exactly the committed insert")

let test_recovery_empty_log () =
  let pager = Rss.Pager.create () in
  let result = Rss.Recovery.replay pager (W.create ()) in
  Alcotest.(check int) "nothing" 0 result.Rss.Recovery.tuples_restored

let () =
  Alcotest.run "lock_wal"
    [ ( "lock",
        [ Alcotest.test_case "shared compatible" `Quick test_shared_compatible;
          Alcotest.test_case "exclusive conflicts" `Quick test_exclusive_conflicts;
          Alcotest.test_case "reacquire/upgrade" `Quick test_reacquire_and_upgrade;
          Alcotest.test_case "release grants queue" `Quick test_release_grants_queue;
          Alcotest.test_case "fair queue" `Quick test_fair_queue_no_jumping;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "tuple granularity" `Quick test_tuple_granularity;
          Alcotest.test_case "upgrade with queued waiters" `Quick
            test_upgrade_with_queued_waiters;
          Alcotest.test_case "two upgraders deadlock" `Quick
            test_two_upgraders_deadlock;
          Alcotest.test_case "release grants in arrival order" `Quick
            test_release_grant_arrival_order;
          Alcotest.test_case "3-txn deadlock, mixed granularity" `Quick
            test_deadlock_three_txns_mixed_resources ] );
      ( "wal",
        [ Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_wal_torn_tail_ignored;
          Alcotest.test_case "unflushed window lost whole" `Quick
            test_unflushed_window_lost;
          Alcotest.test_case "crash at group-flush boundary" `Quick
            test_crash_at_group_flush_boundary ] );
      ( "recovery",
        [ Alcotest.test_case "redo committed only" `Quick
            test_recovery_redo_committed_only;
          Alcotest.test_case "empty log" `Quick test_recovery_empty_log ] );
      ( "props",
        QCheck_alcotest.to_alcotest prop_record_roundtrip
        :: QCheck_alcotest.to_alcotest prop_truncation_every_offset
        :: QCheck_alcotest.to_alcotest prop_batch_preserves_enqueue_order
        :: QCheck_alcotest.to_alcotest prop_batch_equals_serial_flushes
        :: List.map QCheck_alcotest.to_alcotest props_constructor_roundtrip ) ]
