(* Equi-depth histograms and the cardinality-feedback loop.

   Construction invariants on skewed / NULL-heavy / constant columns, the
   monotonicity and mutual consistency of the derived estimators, histogram
   estimates against the executor's true counts on Zipf data (where TABLE 1's
   uniformity constants are badly wrong), and the feedback loop end to end:
   gross misestimate -> recorded correction -> plan-cache retirement ->
   re-optimized plan carrying the corrected cardinality. *)

module V = Rel.Value

let feq = Alcotest.(check (float 1e-9))

(* ---- construction ----------------------------------------------------- *)

let check_invariants h =
  let open Histogram in
  let nonnull = h.rows - h.nulls in
  let sum = Array.fold_left (fun a b -> a + b.b_rows) 0 h.buckets in
  Alcotest.(check int) "bucket rows sum to non-NULL rows" nonnull sum;
  let dsum = Array.fold_left (fun a b -> a + b.b_distinct) 0 h.buckets in
  Alcotest.(check int) "bucket distincts sum to distinct" h.distinct dsum;
  Array.iter
    (fun b ->
      Alcotest.(check bool) "bucket bounds ordered" true
        (V.compare b.b_lo b.b_hi <= 0))
    h.buckets;
  (* a value's run is never split: consecutive buckets have disjoint ranges *)
  for i = 0 to Array.length h.buckets - 2 do
    Alcotest.(check bool) "buckets strictly increasing" true
      (V.compare h.buckets.(i).b_hi h.buckets.(i + 1).b_lo < 0)
  done

let test_build_skewed () =
  (* one value holds half the mass *)
  let values =
    List.init 500 (fun _ -> V.Int 7)
    @ List.init 500 (fun i -> V.Int (100 + i))
  in
  let h = Histogram.build values in
  check_invariants h;
  Alcotest.(check int) "rows" 1000 (Histogram.rows h);
  Alcotest.(check int) "distinct" 501 (Histogram.distinct h);
  feq "null fraction" 0. (Histogram.null_fraction h);
  (* the heavy value's run fills whole buckets, so its estimate is exact *)
  feq "heavy value exact" 0.5 (Histogram.selectivity_eq h (V.Int 7));
  (* a light value estimates at its bucket's per-value depth: tiny *)
  Alcotest.(check bool) "light value small" true
    (Histogram.selectivity_eq h (V.Int 150) < 0.05);
  Alcotest.(check bool) "absent value below light depth" true
    (Histogram.selectivity_eq h (V.Int 5000) <= 1e-9
     || Histogram.selectivity_eq h (V.Int 5000) < 0.05)

let test_build_null_heavy () =
  let values =
    List.init 300 (fun _ -> V.Null) @ List.init 100 (fun i -> V.Int i)
  in
  let h = Histogram.build values in
  check_invariants h;
  Alcotest.(check int) "rows include NULLs" 400 (Histogram.rows h);
  feq "null fraction" 0.75 (Histogram.null_fraction h);
  (* fractions are of ALL rows, so the NULL discount is built in *)
  feq "eq discounted by NULLs" (1. /. 400.)
    (Histogram.selectivity_eq h (V.Int 42));
  feq "full range discounted by NULLs" 0.25
    (Histogram.selectivity_cmp h `Ge (V.Int 0));
  feq "NULL probe qualifies nothing" 0. (Histogram.selectivity_eq h V.Null)

let test_build_constant () =
  let h = Histogram.build (List.init 50 (fun _ -> V.Int 9)) in
  check_invariants h;
  Alcotest.(check int) "one bucket" 1 (Array.length h.Histogram.buckets);
  Alcotest.(check int) "distinct 1" 1 (Histogram.distinct h);
  feq "eq exact" 1.0 (Histogram.selectivity_eq h (V.Int 9));
  feq "lt of the value" 0. (Histogram.selectivity_cmp h `Lt (V.Int 9));
  feq "le of the value" 1.0 (Histogram.selectivity_cmp h `Le (V.Int 9));
  feq "gt of the value" 0. (Histogram.selectivity_cmp h `Gt (V.Int 9))

let test_build_empty_and_all_null () =
  let h = Histogram.build [] in
  Alcotest.(check int) "empty rows" 0 (Histogram.rows h);
  feq "empty eq" 0. (Histogram.selectivity_eq h (V.Int 1));
  let h = Histogram.build [ V.Null; V.Null ] in
  Alcotest.(check int) "all-NULL distinct" 0 (Histogram.distinct h);
  feq "all-NULL fraction" 1.0 (Histogram.null_fraction h);
  feq "all-NULL cmp" 0. (Histogram.selectivity_cmp h `Le (V.Int 5))

(* ---- estimator monotonicity & consistency ----------------------------- *)

let test_monotonic () =
  let st = Workload.rand_init 77 in
  let values =
    List.init 2000 (fun _ -> V.Int (Random.State.int st 500 * Random.State.int st 3))
  in
  let h = Histogram.build values in
  check_invariants h;
  let prev_le = ref (-1.) and prev_gt = ref 2. in
  for v = -10 to 1510 do
    let le = Histogram.selectivity_cmp h `Le (V.Int v) in
    let gt = Histogram.selectivity_cmp h `Gt (V.Int v) in
    let lt = Histogram.selectivity_cmp h `Lt (V.Int v) in
    let eq = Histogram.selectivity_eq h (V.Int v) in
    Alcotest.(check bool) "LE monotone non-decreasing" true (le >= !prev_le -. 1e-9);
    Alcotest.(check bool) "GT monotone non-increasing" true (gt <= !prev_gt +. 1e-9);
    (* all estimators derive from one cumulative pair: lt + eq = le, and
       le + gt covers exactly the non-NULL mass *)
    Alcotest.(check (float 1e-9)) "lt + eq = le" le (lt +. eq);
    Alcotest.(check (float 1e-9)) "le + gt = non-NULL" (1. -. Histogram.null_fraction h)
      (le +. gt);
    prev_le := le;
    prev_gt := gt
  done

(* ---- estimate vs oracle on Zipf data ---------------------------------- *)

let q_error est act =
  Float.max ((est +. 1.) /. (act +. 1.)) ((act +. 1.) /. (est +. 1.))

let quantile q xs =
  let a = Array.of_list (List.sort compare xs) in
  let n = Array.length a in
  a.(min (n - 1) (int_of_float (q *. float_of_int n)))

let test_zipf_vs_oracle () =
  let db = Database.create () in
  Workload.load_zipf db ~name:"Z" ~rows:3000
    ~cols:[ ("U", 40, 1.3); ("W", 200, 0.9) ]
    ~seed:5 ();
  (* no indexes at all: TABLE 1 has only its 1/10 and 1/3 defaults here,
     while histograms know the measured distribution *)
  let queries =
    List.concat_map
      (fun k ->
        [ Printf.sprintf "SELECT U FROM Z WHERE U = %d" k;
          Printf.sprintf "SELECT U FROM Z WHERE W < %d" (k * 17);
          Printf.sprintf "SELECT U FROM Z WHERE W BETWEEN %d AND %d" k (k * 11) ])
      [ 0; 1; 2; 3; 5; 8; 13; 21; 34 ]
  in
  let cat = Database.catalog db in
  let const_ctx = Ctx.create ~use_histograms:false ~use_feedback:false cat in
  let hist_ctx = Ctx.create ~use_histograms:true ~use_feedback:false cat in
  let errs ctx =
    List.map
      (fun sql ->
        let block = Database.resolve db sql in
        let est = Selectivity.block_qcard ctx block in
        let act = List.length (Database.query db sql).Executor.rows in
        q_error est (float_of_int act))
      queries
  in
  Database.set_feedback db false;
  let ce = errs const_ctx and he = errs hist_ctx in
  let cp = quantile 0.95 ce and hp = quantile 0.95 he in
  Alcotest.(check bool)
    (Printf.sprintf "histogram p95 q-error (%.2f) < constants p95 (%.2f)" hp cp)
    true (hp < cp);
  (* histograms should be close to truth almost everywhere on this data *)
  Alcotest.(check bool)
    (Printf.sprintf "histogram p95 q-error small (%.2f)" hp)
    true (hp < 2.0)

(* ---- satellite regressions -------------------------------------------- *)

let test_in_list_dedup () =
  let db = Database.create () in
  Database.set_histograms db false;
  Workload.load_uniform db ~name:"R" ~rows:1000
    ~cols:[ { Workload.col = "A"; distinct = 50 } ]
    ~indexes:[ ("R_A", [ "A" ], false) ]
    ~seed:3 ();
  let sel sql =
    let block = Database.resolve db sql in
    match block.Semant.where with
    | Some w -> Selectivity.factor (Database.ctx db) block w
    | None -> Alcotest.fail "no where"
  in
  (* IN (1,1,1) selects the same tuples as IN (1) and must estimate so *)
  feq "duplicates collapse"
    (sel "SELECT A FROM R WHERE A IN (1)")
    (sel "SELECT A FROM R WHERE A IN (1, 1, 1)")

let test_unindexed_eq_uses_distinct () =
  let db = Database.create () in
  Workload.load_uniform db ~name:"R" ~rows:1000
    ~cols:
      [ { Workload.col = "A"; distinct = 50 };
        { Workload.col = "B"; distinct = 100 } ]
    ~seed:4 ();
  (* B has no index; the old estimator was stuck at 1/10. The histogram
     knows its measured distinct count. *)
  let block = Database.resolve db "SELECT A FROM R WHERE B = 7" in
  let w = Option.get block.Semant.where in
  let est = Selectivity.factor (Database.ctx db) block w in
  Alcotest.(check bool)
    (Printf.sprintf "unindexed eq near 1/distinct (got %.4f)" est)
    true
    (est < 0.05);
  Database.set_histograms db false;
  feq "constants still say 1/10" 0.1
    (Selectivity.factor (Database.ctx db) block w)

(* ---- the feedback loop ------------------------------------------------ *)

let counters db = Rss.Pager.counters (Database.pager db)

(* Two perfectly correlated columns: the independence assumption multiplies
   their selectivities, underestimating by the distinct count. *)
let correlated_db () =
  let db = Database.create () in
  let cat = Database.catalog db in
  let schema =
    Rel.Schema.make
      [ { Rel.Schema.name = "A"; ty = V.Tint };
        { Rel.Schema.name = "B"; ty = V.Tint } ]
  in
  let rel = Catalog.create_relation cat ~name:"C" ~schema in
  for i = 0 to 999 do
    ignore (Catalog.insert_tuple cat rel (Rel.Tuple.make [ V.Int (i mod 10); V.Int (i mod 10) ]))
  done;
  ignore (Catalog.create_index cat ~name:"C_A" ~rel ~columns:[ "A" ] ~clustered:false);
  Database.update_statistics db;
  db

let test_feedback_records_and_retires () =
  let db = correlated_db () in
  let sql = "SELECT A FROM C WHERE A = 3 AND B = 3" in
  (* first run: optimized under independence (est 10 of 1000), actual 100 *)
  let out = Database.query db sql in
  Alcotest.(check int) "actual rows" 100 (List.length out.Executor.rows);
  let est0, act0, qerr0, retired0 = Option.get (Database.last_feedback db) in
  feq "estimate under independence" 10. est0;
  Alcotest.(check int) "observed actual" 100 act0;
  Alcotest.(check bool) "gross misestimate" true (qerr0 > 4.);
  Alcotest.(check bool) "correction recorded" true retired0;
  Alcotest.(check int) "misestimate counted" 1
    (counters db).Rss.Counters.feedback_misestimates;
  Alcotest.(check int) "retirement counted" 1
    (counters db).Rss.Counters.feedback_retirements;
  (* second run: the cached plan was retired (its feedback dep moved), the
     statement re-optimizes, and the corrected estimate matches reality *)
  let inval_before = (counters db).Rss.Counters.plan_cache_invalidations in
  ignore (Database.query db sql);
  Alcotest.(check int) "stale plan retired" (inval_before + 1)
    (counters db).Rss.Counters.plan_cache_invalidations;
  let est1, act1, _, retired1 = Option.get (Database.last_feedback db) in
  feq "corrected estimate" 100. est1;
  Alcotest.(check int) "still actual" 100 act1;
  Alcotest.(check bool) "no further retirement: the loop settles" false retired1;
  (* third run: plain cache hit, nothing moves *)
  let retire_before = (counters db).Rss.Counters.feedback_retirements in
  ignore (Database.query db sql);
  Alcotest.(check int) "settled" retire_before
    (counters db).Rss.Counters.feedback_retirements

let test_feedback_changes_plan () =
  let db = correlated_db () in
  (* D: small relation joined against the correlated restriction of C *)
  let cat = Database.catalog db in
  let schema =
    Rel.Schema.make
      [ { Rel.Schema.name = "X"; ty = V.Tint };
        { Rel.Schema.name = "Y"; ty = V.Tint } ]
  in
  let rel = Catalog.create_relation cat ~name:"D" ~schema in
  for i = 0 to 39 do
    ignore (Catalog.insert_tuple cat rel (Rel.Tuple.make [ V.Int (i mod 10); V.Int i ]))
  done;
  ignore (Catalog.create_index cat ~name:"D_X" ~rel ~columns:[ "X" ] ~clustered:true);
  Database.update_statistics db;
  let join = "SELECT Y FROM C, D WHERE C.A = 3 AND C.B = 3 AND C.A = D.X" in
  let before = Plan.describe (Database.optimize db join).Optimizer.plan in
  (* drive the feedback loop on the single-table restriction *)
  ignore (Database.query db "SELECT A FROM C WHERE A = 3 AND B = 3");
  Alcotest.(check bool) "correction recorded" true
    ((counters db).Rss.Counters.feedback_retirements >= 1);
  let after_r = Database.optimize db join in
  let after = Plan.describe after_r.Optimizer.plan in
  (* the corrected restriction cardinality flows into the join estimate *)
  Alcotest.(check bool)
    (Printf.sprintf "join re-costed under corrected cardinality\nbefore: %s\nafter: %s"
       before after)
    true
    (after_r.Optimizer.plan.Plan.out_card > 300.);
  (* and UPDATE STATISTICS clears the corrections: fresh histograms win *)
  Database.update_statistics db;
  let reset = Plan.describe (Database.optimize db join).Optimizer.plan in
  Alcotest.(check string) "UPDATE STATISTICS clears feedback" before reset

let test_histograms_off_disables_feedback () =
  let db = correlated_db () in
  Database.set_histograms db false;
  ignore (Database.query db "SELECT A FROM C WHERE A = 3 AND B = 3");
  Alcotest.(check int) "no observation under HISTOGRAMS OFF" 0
    (counters db).Rss.Counters.feedback_misestimates;
  Alcotest.(check bool) "no last_feedback" true
    (Database.last_feedback db = None)

let () =
  Alcotest.run "histogram"
    [ ( "build",
        [ Alcotest.test_case "skewed column" `Quick test_build_skewed;
          Alcotest.test_case "NULL-heavy column" `Quick test_build_null_heavy;
          Alcotest.test_case "constant column" `Quick test_build_constant;
          Alcotest.test_case "empty / all-NULL" `Quick test_build_empty_and_all_null ] );
      ( "estimators",
        [ Alcotest.test_case "monotone and consistent" `Quick test_monotonic;
          Alcotest.test_case "zipf estimate vs oracle" `Quick test_zipf_vs_oracle ] );
      ( "satellites",
        [ Alcotest.test_case "IN-list duplicates" `Quick test_in_list_dedup;
          Alcotest.test_case "unindexed equality" `Quick test_unindexed_eq_uses_distinct ] );
      ( "feedback",
        [ Alcotest.test_case "record, retire, settle" `Quick
            test_feedback_records_and_retires;
          Alcotest.test_case "corrected plan" `Quick test_feedback_changes_plan;
          Alcotest.test_case "HISTOGRAMS OFF suspends" `Quick
            test_histograms_off_disables_feedback ] ) ]
