module V = Rel.Value
module T = Rel.Tuple

let tup i j = T.make [ V.Int i; V.Int j; V.Str (Printf.sprintf "pad-%06d" (i * 1000 + j)) ]

(* --- temp lists --------------------------------------------------------- *)

let test_temp_roundtrip () =
  let pager = Rss.Pager.create () in
  let tl = Rss.Temp_list.create pager in
  for i = 0 to 499 do
    Rss.Temp_list.append tl (tup i 0)
  done;
  Rss.Temp_list.freeze tl;
  Alcotest.(check int) "length" 500 (Rss.Temp_list.length tl);
  Alcotest.(check bool) "TEMPPAGES > 1" true (Rss.Temp_list.page_count tl > 1);
  let back = List.of_seq (Rss.Temp_list.read_unaccounted tl) in
  Alcotest.(check int) "all back" 500 (List.length back);
  List.iteri
    (fun i t -> if not (T.equal t (tup i 0)) then Alcotest.fail "order broken")
    back

let test_temp_append_after_freeze () =
  let pager = Rss.Pager.create () in
  let tl = Rss.Temp_list.create pager in
  Rss.Temp_list.append tl (tup 0 0);
  Rss.Temp_list.freeze tl;
  Alcotest.check_raises "frozen" (Invalid_argument "Temp_list.append: list is frozen")
    (fun () -> Rss.Temp_list.append tl (tup 1 0))

let test_temp_accounting () =
  let pager = Rss.Pager.create ~buffer_pages:200 () in
  let c = Rss.Pager.counters pager in
  let tl = Rss.Temp_list.of_seq pager (Seq.init 500 (fun i -> tup i 0)) in
  let written = c.Rss.Counters.pages_written in
  Alcotest.(check int) "writes = TEMPPAGES" (Rss.Temp_list.page_count tl) written;
  Rss.Counters.reset c;
  Rss.Pager.evict_all pager;
  ignore (List.of_seq (Rss.Temp_list.read tl));
  Alcotest.(check int) "reads = TEMPPAGES" (Rss.Temp_list.page_count tl)
    c.Rss.Counters.page_fetches

let test_temp_empty () =
  let pager = Rss.Pager.create () in
  let tl = Rss.Temp_list.of_seq pager Seq.empty in
  Alcotest.(check int) "empty length" 0 (Rss.Temp_list.length tl);
  Alcotest.(check int) "no pages" 0 (Rss.Temp_list.page_count tl);
  Alcotest.(check bool) "empty read" true (List.of_seq (Rss.Temp_list.read tl) = [])

(* of_array must slice pages exactly as append does, and the index cursor
   must agree with the Seq reader, accounting included. *)
let test_temp_of_array_cursor () =
  let pager = Rss.Pager.create ~buffer_pages:200 () in
  let tuples = Array.init 500 (fun i -> tup i 1) in
  let via_append = Rss.Temp_list.of_seq pager (Array.to_seq tuples) in
  let via_array = Rss.Temp_list.of_array pager tuples in
  Alcotest.(check int) "same length" (Rss.Temp_list.length via_append)
    (Rss.Temp_list.length via_array);
  Alcotest.(check int) "same TEMPPAGES" (Rss.Temp_list.page_count via_append)
    (Rss.Temp_list.page_count via_array);
  let drain_cursor next =
    let rec go acc = match next () with None -> List.rev acc | Some t -> go (t :: acc) in
    go []
  in
  let by_cursor = drain_cursor (Rss.Temp_list.cursor via_array) in
  let by_seq = List.of_seq (Rss.Temp_list.read_unaccounted via_array) in
  Alcotest.(check bool) "cursor = seq read" true
    (List.for_all2 T.equal by_cursor by_seq);
  let c = Rss.Pager.counters pager in
  Rss.Counters.reset c;
  Rss.Pager.evict_all pager;
  ignore (drain_cursor (Rss.Temp_list.cursor via_array));
  Alcotest.(check int) "cursor accounting = TEMPPAGES"
    (Rss.Temp_list.page_count via_array)
    c.Rss.Counters.page_fetches;
  let empty = Rss.Temp_list.of_array pager [||] in
  Alcotest.(check int) "empty of_array" 0 (Rss.Temp_list.length empty);
  Alcotest.(check bool) "empty cursor" true (Rss.Temp_list.cursor empty () = None)

(* --- sort ---------------------------------------------------------------- *)

let ints_of tl =
  Rss.Temp_list.read_unaccounted tl
  |> Seq.map (fun t -> match T.get t 0 with V.Int i -> i | _ -> -1)
  |> List.of_seq

let test_sort_basic () =
  let pager = Rss.Pager.create ~buffer_pages:4 () in
  let input = [ 5; 3; 9; 1; 4; 1; 8; 0; 7 ] in
  let tl =
    Rss.Sort.sort pager ~key:[ (0, Rss.Sort.Asc) ]
      (List.to_seq (List.map (fun i -> tup i 0) input))
  in
  Alcotest.(check (list int)) "sorted" (List.sort compare input) (ints_of tl)

let test_sort_desc_and_multikey () =
  let pager = Rss.Pager.create () in
  let input = [ (1, 2); (0, 9); (1, 1); (0, 3); (2, 0) ] in
  let tl =
    Rss.Sort.sort pager
      ~key:[ (0, Rss.Sort.Asc); (1, Rss.Sort.Desc) ]
      (List.to_seq (List.map (fun (i, j) -> tup i j) input))
  in
  let got =
    Rss.Temp_list.read_unaccounted tl
    |> Seq.map (fun t ->
           match T.get t 0, T.get t 1 with
           | V.Int a, V.Int b -> (a, b)
           | _ -> (-1, -1))
    |> List.of_seq
  in
  Alcotest.(check (list (pair int int))) "multi-key"
    [ (0, 9); (0, 3); (1, 2); (1, 1); (2, 0) ]
    got

let test_sort_stability () =
  let pager = Rss.Pager.create ~buffer_pages:2 () in
  (* many equal keys; payload column records input order *)
  let n = 1000 in
  let tl =
    Rss.Sort.sort pager ~key:[ (0, Rss.Sort.Asc) ]
      (Seq.init n (fun i -> tup (i mod 3) i))
  in
  let got =
    Rss.Temp_list.read_unaccounted tl
    |> Seq.map (fun t ->
           match T.get t 0, T.get t 1 with
           | V.Int a, V.Int b -> (a, b)
           | _ -> (-1, -1))
    |> List.of_seq
  in
  (* within each key the payload must be increasing *)
  let rec check prev = function
    | [] -> true
    | (k, p) :: rest ->
      (match List.assoc_opt k prev with
       | Some last when last > p -> false
       | _ -> check ((k, p) :: List.remove_assoc k prev) rest)
  in
  Alcotest.(check bool) "stable" true (check [] got);
  Alcotest.(check int) "all present" n (List.length got)

let test_sort_external_multipass () =
  (* tiny buffer forces runs + merge passes *)
  let pager = Rss.Pager.create ~buffer_pages:2 () in
  let n = 3000 in
  let rng = Random.State.make [| 7 |] in
  let data = Array.init n (fun _ -> Random.State.int rng 10000) in
  let tl =
    Rss.Sort.sort ~run_pages:1 ~fan_in:2 pager ~key:[ (0, Rss.Sort.Asc) ]
      (Seq.init n (fun i -> tup data.(i) i))
  in
  let got = ints_of tl in
  Alcotest.(check int) "count" n (List.length got);
  Alcotest.(check (list int)) "sorted" (List.sort compare (Array.to_list data)) got

let test_sort_empty_and_single () =
  let pager = Rss.Pager.create () in
  let e = Rss.Sort.sort pager ~key:[ (0, Rss.Sort.Asc) ] Seq.empty in
  Alcotest.(check int) "empty" 0 (Rss.Temp_list.length e);
  let s = Rss.Sort.sort pager ~key:[ (0, Rss.Sort.Asc) ] (Seq.return (tup 1 1)) in
  Alcotest.(check (list int)) "single" [ 1 ] (ints_of s)

let test_passes_estimate () =
  Alcotest.(check int) "zero tuples" 0
    (Rss.Sort.passes ~buffer_pages:10 ~tuples:0 ~tuples_per_page:50. ());
  Alcotest.(check int) "fits one run" 1
    (Rss.Sort.passes ~buffer_pages:10 ~tuples:400 ~tuples_per_page:50. ());
  let p = Rss.Sort.passes ~run_pages:1 ~fan_in:2 ~buffer_pages:2 ~tuples:400 ~tuples_per_page:50. () in
  Alcotest.(check bool) "multi pass" true (p >= 3)

(* Spill observability: a sort forced into many runs reports its run count
   and merge levels through the counters, consistent with the [passes]
   predictor's shape (observed passes = run formation + merge levels). *)
let test_spill_counters () =
  let pager = Rss.Pager.create ~buffer_pages:2 () in
  let c = Rss.Pager.counters pager in
  Rss.Counters.reset c;
  let n = 3000 in
  let tl =
    Rss.Sort.sort ~run_pages:1 ~fan_in:2 pager ~key:[ (0, Rss.Sort.Asc) ]
      (Seq.init n (fun i -> tup (n - i) i))
  in
  Alcotest.(check int) "all tuples" n (Rss.Temp_list.length tl);
  Alcotest.(check bool) "several runs" true (c.Rss.Counters.sort_runs > 1);
  Alcotest.(check bool) "merge levels" true (c.Rss.Counters.merge_passes >= 1);
  (* each merge level at fan_in=2 at least halves the runs *)
  let bound =
    int_of_float (ceil (log (float_of_int c.Rss.Counters.sort_runs) /. log 2.))
  in
  Alcotest.(check bool) "levels <= ceil(log2 runs)" true
    (c.Rss.Counters.merge_passes <= bound);
  (* an in-memory sort spills nothing to merge *)
  Rss.Counters.reset c;
  let small =
    Rss.Sort.sort pager ~key:[ (0, Rss.Sort.Asc) ] (Seq.init 10 (fun i -> tup i 0))
  in
  Alcotest.(check int) "one run" 1 c.Rss.Counters.sort_runs;
  Alcotest.(check int) "no merges" 0 c.Rss.Counters.merge_passes;
  Alcotest.(check int) "sorted anyway" 10 (Rss.Temp_list.length small)

let prop_sort_matches_list_sort =
  QCheck.Test.make ~name:"external sort = List.sort" ~count:100
    QCheck.(list (int_bound 1000))
    (fun xs ->
      let pager = Rss.Pager.create ~buffer_pages:2 () in
      let tl =
        Rss.Sort.sort ~run_pages:1 pager ~key:[ (0, Rss.Sort.Asc) ]
          (List.to_seq (List.map (fun i -> tup i 0) xs))
      in
      ints_of tl = List.sort compare xs)

(* Heap k-way merge vs the List.stable_sort oracle on duplicate-heavy keys:
   run_pages=1 forces many runs, small fan_in forces several heap-merge
   levels, and keys drawn from a tiny domain make almost every comparison a
   tie — the payload column (input position) must come back in input order
   within each key, which is exactly stability. Checked as exact (key,
   payload) list equality, so ordering and stability fail loudly. *)
let prop_heap_merge_stable =
  QCheck.Test.make ~name:"heap merge: ordering + stability vs stable_sort oracle"
    ~count:60
    QCheck.(pair (int_range 2 4) (list_of_size Gen.(int_range 0 400) (int_bound 4)))
    (fun (fan_in, keys) ->
      let pager = Rss.Pager.create ~buffer_pages:2 () in
      let input = List.mapi (fun i k -> (k, i)) keys in
      let tl =
        Rss.Sort.sort ~run_pages:1 ~fan_in pager ~key:[ (0, Rss.Sort.Asc) ]
          (List.to_seq (List.map (fun (k, i) -> tup k i) input))
      in
      let got =
        Rss.Temp_list.read_unaccounted tl
        |> Seq.map (fun t ->
               match T.get t 0, T.get t 1 with
               | V.Int a, V.Int b -> (a, b)
               | _ -> (-1, -1))
        |> List.of_seq
      in
      let oracle =
        List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) input
      in
      got = oracle)

(* The legacy Seq-based baseline and the heap sort must agree exactly —
   they are timed against each other in bench `hot`. *)
let prop_baseline_agrees =
  QCheck.Test.make ~name:"sort_baseline = sort" ~count:50
    QCheck.(list (int_bound 20))
    (fun xs ->
      let pager = Rss.Pager.create ~buffer_pages:2 () in
      let tuples = List.mapi (fun i k -> tup k i) xs in
      let a =
        Rss.Sort.sort ~run_pages:1 ~fan_in:2 pager ~key:[ (0, Rss.Sort.Asc) ]
          (List.to_seq tuples)
      in
      let b =
        Rss.Sort.sort_baseline ~run_pages:1 ~fan_in:2 pager
          ~key:[ (0, Rss.Sort.Asc) ] (List.to_seq tuples)
      in
      List.for_all2 T.equal
        (List.of_seq (Rss.Temp_list.read_unaccounted a))
        (List.of_seq (Rss.Temp_list.read_unaccounted b)))

(* The executor consumes sorts through [sort_stream] (final merge on the
   fly); it must dispense exactly what [sort] materializes. Exercised over
   the three merge regimes: all-Int first columns (runs carry the
   normalized-key cache), string keys (cache disabled, full-comparator
   path), and a multi-column key whose first-column ties fall through to the
   comparator. *)
let prop_stream_agrees =
  QCheck.Test.make ~name:"sort_stream = sort" ~count:60
    QCheck.(pair (int_range 2 4) (list (int_bound 5)))
    (fun (fan_in, ks) ->
      let drain next =
        let rec go acc =
          match next () with None -> List.rev acc | Some t -> go (t :: acc)
        in
        go []
      in
      let agree ~key tuples =
        let p1 = Rss.Pager.create ~buffer_pages:2 () in
        let tl = Rss.Sort.sort ~run_pages:1 ~fan_in p1 ~key (List.to_seq tuples) in
        let p2 = Rss.Pager.create ~buffer_pages:2 () in
        let streamed =
          drain
            (Rss.Sort.sort_stream ~run_pages:1 ~fan_in p2 ~key
               (Seq.to_dispenser (List.to_seq tuples)))
        in
        let materialized = List.of_seq (Rss.Temp_list.read_unaccounted tl) in
        List.length materialized = List.length streamed
        && List.for_all2 T.equal materialized streamed
      in
      let ints = List.mapi (fun i k -> tup k i) ks in
      let strs =
        List.mapi
          (fun i k -> T.make [ V.Str (Printf.sprintf "s%02d" k); V.Int i ])
          ks
      in
      agree ~key:[ (0, Rss.Sort.Asc) ] ints
      && agree ~key:[ (0, Rss.Sort.Asc); (1, Rss.Sort.Desc) ] ints
      && agree ~key:[ (0, Rss.Sort.Asc) ] strs)

let () =
  Alcotest.run "sort_temp"
    [ ( "temp_list",
        [ Alcotest.test_case "roundtrip" `Quick test_temp_roundtrip;
          Alcotest.test_case "append after freeze" `Quick test_temp_append_after_freeze;
          Alcotest.test_case "accounting" `Quick test_temp_accounting;
          Alcotest.test_case "empty" `Quick test_temp_empty;
          Alcotest.test_case "of_array + cursor" `Quick test_temp_of_array_cursor ] );
      ( "sort",
        [ Alcotest.test_case "basic" `Quick test_sort_basic;
          Alcotest.test_case "desc + multikey" `Quick test_sort_desc_and_multikey;
          Alcotest.test_case "stability" `Quick test_sort_stability;
          Alcotest.test_case "external multipass" `Quick test_sort_external_multipass;
          Alcotest.test_case "empty/single" `Quick test_sort_empty_and_single;
          Alcotest.test_case "passes estimate" `Quick test_passes_estimate;
          Alcotest.test_case "spill counters" `Quick test_spill_counters ] );
      ( "props",
        [ QCheck_alcotest.to_alcotest prop_sort_matches_list_sort;
          QCheck_alcotest.to_alcotest prop_heap_merge_stable;
          QCheck_alcotest.to_alcotest prop_baseline_agrees;
          QCheck_alcotest.to_alcotest prop_stream_agrees ] ) ]
