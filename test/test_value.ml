module V = Rel.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- unit ------------------------------------------------------------- *)

let test_compare_within_types () =
  check "int lt" true (V.compare (V.Int 1) (V.Int 2) < 0);
  check "int eq" true (V.compare (V.Int 5) (V.Int 5) = 0);
  check "float" true (V.compare (V.Float 1.5) (V.Float 2.5) < 0);
  check "str" true (V.compare (V.Str "ABC") (V.Str "ABD") < 0);
  check "null eq" true (V.compare V.Null V.Null = 0)

let test_compare_numeric_promotion () =
  check "int vs float" true (V.compare (V.Int 2) (V.Float 2.0) = 0);
  check "int lt float" true (V.compare (V.Int 2) (V.Float 2.5) < 0);
  check "float gt int" true (V.compare (V.Float 3.1) (V.Int 3) > 0)

let test_null_sorts_lowest () =
  List.iter
    (fun v -> check "null lowest" true (V.compare V.Null v < 0))
    [ V.Int min_int; V.Float neg_infinity; V.Str "" ]

let test_arith () =
  check "add" true (V.equal (V.add (V.Int 2) (V.Int 3)) (V.Int 5));
  check "mixed add" true (V.equal (V.add (V.Int 2) (V.Float 0.5)) (V.Float 2.5));
  check "sub" true (V.equal (V.sub (V.Int 2) (V.Int 3)) (V.Int (-1)));
  check "mul" true (V.equal (V.mul (V.Float 2.0) (V.Int 3)) (V.Float 6.0));
  check "div int" true (V.equal (V.div (V.Int 7) (V.Int 2)) (V.Int 3));
  check "div by zero is null" true (V.is_null (V.div (V.Int 7) (V.Int 0)));
  check "null propagates" true (V.is_null (V.add V.Null (V.Int 1)))

(* SQL semantics: dividing by zero yields NULL (never an OCaml
   Division_by_zero), for every numeric combination. The naive oracle and
   both executor evaluation modes share V.div, so this single function pins
   the behaviour engine-wide (asserted end-to-end in fuzz_corpus's
   "division by zero" case). *)
let test_div_by_zero_null () =
  check "int / int 0" true (V.is_null (V.div (V.Int 7) (V.Int 0)));
  check "int / float 0" true (V.is_null (V.div (V.Int 7) (V.Float 0.)));
  check "float / int 0" true (V.is_null (V.div (V.Float 7.) (V.Int 0)));
  check "float / float 0" true (V.is_null (V.div (V.Float 7.) (V.Float 0.)));
  check "0 / 0" true (V.is_null (V.div (V.Int 0) (V.Int 0)));
  check "null / 0" true (V.is_null (V.div V.Null (V.Int 0)));
  check "0 / null" true (V.is_null (V.div (V.Int 0) V.Null))

let test_arith_string_rejected () =
  Alcotest.check_raises "string add" (Invalid_argument "Value.add: string operand")
    (fun () -> ignore (V.add (V.Str "a") (V.Int 1)))

let test_to_float () =
  Alcotest.(check (option (float 1e-9))) "int" (Some 3.) (V.to_float (V.Int 3));
  Alcotest.(check (option (float 1e-9))) "str" None (V.to_float (V.Str "x"));
  Alcotest.(check (option (float 1e-9))) "null" None (V.to_float V.Null)

let roundtrip v =
  let buf = Buffer.create 16 in
  V.write buf v;
  let s = Buffer.to_bytes buf in
  check_int "size" (Buffer.length buf) (V.serialized_size v);
  let v', off = V.read s 0 in
  check "roundtrip" true (V.equal v v' || (V.is_null v && V.is_null v'));
  check_int "offset" (Bytes.length s) off

let test_serialization () =
  List.iter roundtrip
    [ V.Int 0; V.Int max_int; V.Int min_int; V.Float 3.14; V.Float (-0.0);
      V.Str ""; V.Str "hello world"; V.Null; V.Str (String.make 1000 'x') ]

let test_type_of () =
  Alcotest.(check bool) "int" true (V.type_of (V.Int 1) = Some V.Tint);
  Alcotest.(check bool) "null" true (V.type_of V.Null = None)

(* --- properties ------------------------------------------------------- *)

let value_gen =
  QCheck.Gen.(
    oneof
      [ map (fun i -> V.Int i) int;
        map (fun f -> V.Float f) (float_bound_inclusive 1e9);
        map (fun s -> V.Str s) (string_size (int_bound 40));
        return V.Null ])

let arb_value = QCheck.make ~print:V.to_string value_gen

let prop_roundtrip =
  QCheck.Test.make ~name:"serialize roundtrip" ~count:500 arb_value (fun v ->
      let buf = Buffer.create 16 in
      V.write buf v;
      let v', _ = V.read (Buffer.to_bytes buf) 0 in
      V.compare v v' = 0)

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:500
    (QCheck.pair arb_value arb_value) (fun (a, b) ->
      let c1 = compare (V.compare a b) 0 and c2 = compare (V.compare b a) 0 in
      c1 = -c2)

let prop_compare_trans =
  QCheck.Test.make ~name:"compare transitive" ~count:500
    (QCheck.triple arb_value arb_value arb_value) (fun (a, b, c) ->
      let sorted = List.sort V.compare [ a; b; c ] in
      match sorted with
      | [ x; y; z ] -> V.compare x y <= 0 && V.compare y z <= 0 && V.compare x z <= 0
      | _ -> false)

let () =
  Alcotest.run "value"
    [ ( "unit",
        [ Alcotest.test_case "compare within types" `Quick test_compare_within_types;
          Alcotest.test_case "numeric promotion" `Quick test_compare_numeric_promotion;
          Alcotest.test_case "null sorts lowest" `Quick test_null_sorts_lowest;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "division by zero is NULL" `Quick
            test_div_by_zero_null;
          Alcotest.test_case "string arithmetic rejected" `Quick test_arith_string_rejected;
          Alcotest.test_case "to_float" `Quick test_to_float;
          Alcotest.test_case "serialization" `Quick test_serialization;
          Alcotest.test_case "type_of" `Quick test_type_of ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_compare_antisym; prop_compare_trans ] ) ]
