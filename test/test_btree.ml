module V = Rel.Value
module B = Rss.Btree

let key i : B.key = [| V.Int i |]
let tid i = { Rss.Tid.page = i; slot = i mod 7 }

let fresh ?order () =
  let pager = Rss.Pager.create () in
  (B.create ?order pager, pager)

let ok = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariant violated: " ^ msg)

let test_insert_lookup () =
  let t, _ = fresh ~order:4 () in
  for i = 0 to 199 do
    B.insert t (key i) (tid i)
  done;
  ok (B.check_invariants t);
  for i = 0 to 199 do
    match B.lookup t (key i) with
    | [ x ] -> if not (Rss.Tid.equal x (tid i)) then Alcotest.fail "wrong tid"
    | l -> Alcotest.fail (Printf.sprintf "key %d: %d tids" i (List.length l))
  done;
  Alcotest.(check (list Alcotest.reject)) "missing key" []
    (List.map (fun _ -> ()) (B.lookup t (key 999)));
  Alcotest.(check int) "entries" 200 (B.entry_count t);
  Alcotest.(check int) "distinct" 200 (B.distinct_keys t);
  Alcotest.(check bool) "height grew" true (B.height t > 1)

let test_duplicates () =
  let t, _ = fresh ~order:4 () in
  for i = 0 to 9 do
    for j = 0 to 4 do
      B.insert t (key i) (tid (100 * i + j))
    done
  done;
  ok (B.check_invariants t);
  Alcotest.(check int) "entries" 50 (B.entry_count t);
  Alcotest.(check int) "distinct" 10 (B.distinct_keys t);
  Alcotest.(check int) "dup tids" 5 (List.length (B.lookup t (key 3)))

let test_range_scan () =
  let t, _ = fresh ~order:6 () in
  List.iter (fun i -> B.insert t (key i) (tid i)) [ 5; 1; 9; 3; 7; 2; 8; 4; 6; 0 ];
  let got lo hi =
    B.range_scan_unaccounted
      ?lo:(Option.map (fun (v, k) -> ([| V.Int v |], k)) lo)
      ?hi:(Option.map (fun (v, k) -> ([| V.Int v |], k)) hi)
      t
    |> Seq.map (fun (k, _) -> match k.(0) with V.Int i -> i | _ -> -1)
    |> List.of_seq
  in
  Alcotest.(check (list int)) "full" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (got None None);
  Alcotest.(check (list int)) "closed" [ 3; 4; 5; 6 ]
    (got (Some (3, `Inclusive)) (Some (6, `Inclusive)));
  Alcotest.(check (list int)) "open lo" [ 4; 5; 6 ]
    (got (Some (3, `Exclusive)) (Some (6, `Inclusive)));
  Alcotest.(check (list int)) "open hi" [ 3; 4; 5 ]
    (got (Some (3, `Inclusive)) (Some (6, `Exclusive)));
  Alcotest.(check (list int)) "empty range" []
    (got (Some (7, `Exclusive)) (Some (7, `Exclusive)))

let test_composite_prefix_bounds () =
  let t, _ = fresh ~order:4 () in
  (* key = (NAME, LOCATION) *)
  List.iter
    (fun (a, b) -> B.insert t [| V.Str a; V.Str b |] (tid (Hashtbl.hash (a, b))))
    [ ("SMITH", "SAN JOSE"); ("SMITH", "DENVER"); ("JONES", "DENVER");
      ("ADAMS", "BOSTON"); ("SMITH", "AUSTIN"); ("YOUNG", "DENVER") ];
  let smiths =
    B.range_scan_unaccounted
      ~lo:([| V.Str "SMITH" |], `Inclusive)
      ~hi:([| V.Str "SMITH" |], `Inclusive)
      t
    |> List.of_seq
  in
  Alcotest.(check int) "prefix matches all SMITH" 3 (List.length smiths);
  (* full-key bound *)
  let exact =
    B.range_scan_unaccounted
      ~lo:([| V.Str "SMITH"; V.Str "DENVER" |], `Inclusive)
      ~hi:([| V.Str "SMITH"; V.Str "DENVER" |], `Inclusive)
      t
    |> List.of_seq
  in
  Alcotest.(check int) "exact composite" 1 (List.length exact)

let test_delete () =
  let t, _ = fresh ~order:4 () in
  for i = 0 to 99 do
    B.insert t (key i) (tid i)
  done;
  for i = 0 to 99 do
    if i mod 2 = 0 then
      Alcotest.(check bool) "delete ok" true (B.delete t (key i) (tid i))
  done;
  Alcotest.(check bool) "absent delete" false (B.delete t (key 0) (tid 0));
  ok (B.check_invariants t);
  Alcotest.(check int) "entries" 50 (B.entry_count t);
  for i = 0 to 99 do
    let expect = if i mod 2 = 0 then 0 else 1 in
    Alcotest.(check int)
      (Printf.sprintf "lookup %d" i)
      expect
      (List.length (B.lookup t (key i)))
  done

let test_min_max () =
  let t, _ = fresh () in
  Alcotest.(check bool) "empty min" true (B.min_key t = None);
  List.iter (fun i -> B.insert t (key i) (tid i)) [ 42; 7; 99; 13 ];
  Alcotest.(check bool) "min" true (B.min_key t = Some [| V.Int 7 |]);
  Alcotest.(check bool) "max" true (B.max_key t = Some [| V.Int 99 |])

let test_leaf_pages_grow () =
  let t, _ = fresh ~order:4 () in
  Alcotest.(check int) "one leaf initially" 1 (B.leaf_pages t);
  for i = 0 to 99 do
    B.insert t (key i) (tid i)
  done;
  Alcotest.(check bool) "many leaves" true (B.leaf_pages t > 10)

let test_scan_accounting () =
  let pager = Rss.Pager.create ~buffer_pages:4 () in
  let t = B.create ~order:4 pager in
  for i = 0 to 199 do
    B.insert t (key i) (tid i)
  done;
  let c = Rss.Pager.counters pager in
  Rss.Counters.reset c;
  Rss.Pager.evict_all pager;
  let n = Seq.length (B.range_scan t) in
  Alcotest.(check int) "all entries" 200 n;
  (* a full scan touches the descent path once plus every leaf page *)
  let leaves = B.leaf_pages t in
  Alcotest.(check bool) "fetches cover leaves" true
    (c.Rss.Counters.page_fetches >= leaves);
  Alcotest.(check bool) "fetches bounded" true
    (c.Rss.Counters.page_fetches <= leaves + B.height t);
  Rss.Counters.reset c;
  let m = Seq.length (B.range_scan_unaccounted t) in
  Alcotest.(check int) "unaccounted same entries" 200 m;
  Alcotest.(check int) "unaccounted free" 0 c.Rss.Counters.page_fetches

let test_desc_scan () =
  let t, _ = fresh ~order:4 () in
  List.iter (fun i -> B.insert t (key i) (tid i)) [ 5; 1; 9; 3; 7; 2; 8; 4; 6; 0 ];
  let got lo hi =
    B.range_scan_desc_unaccounted
      ?lo:(Option.map (fun (v, k) -> ([| V.Int v |], k)) lo)
      ?hi:(Option.map (fun (v, k) -> ([| V.Int v |], k)) hi)
      t
    |> Seq.map (fun (k, _) -> match k.(0) with V.Int i -> i | _ -> -1)
    |> List.of_seq
  in
  Alcotest.(check (list int)) "full desc" [ 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 ]
    (got None None);
  Alcotest.(check (list int)) "bounded desc" [ 6; 5; 4; 3 ]
    (got (Some (3, `Inclusive)) (Some (6, `Inclusive)));
  Alcotest.(check (list int)) "exclusive hi" [ 5; 4 ]
    (got (Some (4, `Inclusive)) (Some (6, `Exclusive)));
  Alcotest.(check (list int)) "empty" [] (got (Some (11, `Inclusive)) None)

let prop_desc_is_reverse_of_asc =
  QCheck.Test.make ~name:"desc scan reverses asc scan" ~count:150
    QCheck.(pair (list (int_bound 60)) (pair (int_bound 60) (int_bound 60)))
    (fun (keys, (a, b)) ->
      let t, _ = fresh ~order:4 () in
      List.iteri (fun i k -> B.insert t (key k) (tid i)) keys;
      let lo = ([| V.Int (min a b) |], `Inclusive) in
      let hi = ([| V.Int (max a b) |], `Inclusive) in
      let asc = List.of_seq (B.range_scan_unaccounted ~lo ~hi t) in
      let desc = List.of_seq (B.range_scan_desc_unaccounted ~lo ~hi t) in
      (* same multiset; desc keys non-increasing (TID order within a key
         group may differ between directions) *)
      let ks =
        List.map (fun (k, _) -> match k.(0) with V.Int i -> i | _ -> -1) desc
      in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | [ _ ] | [] -> true
      in
      List.length asc = List.length desc
      && List.sort compare asc = List.sort compare desc
      && non_increasing ks)

let test_bad_order () =
  let pager = Rss.Pager.create () in
  Alcotest.check_raises "order" (Invalid_argument "Btree.create: order < 4")
    (fun () -> ignore (B.create ~order:2 pager))

(* --- model-based property --------------------------------------------- *)

type op =
  | Ins of int * int
  | Del of int * int

let op_gen =
  QCheck.Gen.(
    oneof
      [ map2 (fun k t -> Ins (k, t)) (int_bound 50) (int_bound 20);
        map2 (fun k t -> Del (k, t)) (int_bound 50) (int_bound 20) ])

let show_op = function
  | Ins (k, t) -> Printf.sprintf "Ins(%d,%d)" k t
  | Del (k, t) -> Printf.sprintf "Del(%d,%d)" k t

let prop_model =
  QCheck.Test.make ~name:"btree matches sorted-list model" ~count:200
    (QCheck.make
       ~print:(fun ops -> String.concat ";" (List.map show_op ops))
       QCheck.Gen.(list_size (int_range 0 120) op_gen))
    (fun ops ->
      let t, _ = fresh ~order:4 () in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | Ins (k, x) ->
            B.insert t (key k) (tid x);
            model := (k, x) :: !model
          | Del (k, x) ->
            let present = List.mem (k, x) !model in
            let deleted = B.delete t (key k) (tid x) in
            if deleted <> present then failwith "delete mismatch";
            if present then begin
              let removed = ref false in
              model :=
                List.filter
                  (fun e ->
                    if e = (k, x) && not !removed then begin
                      removed := true;
                      false
                    end
                    else true)
                  !model
            end)
        ops;
      (match B.check_invariants t with
       | Ok () -> ()
       | Error m -> failwith m);
      let expected =
        List.sort compare (List.map (fun (k, x) -> (k, (tid x).Rss.Tid.page, (tid x).Rss.Tid.slot)) !model)
      in
      let actual =
        B.range_scan_unaccounted t
        |> Seq.map (fun (k, t) ->
               ( (match k.(0) with V.Int i -> i | _ -> -1),
                 t.Rss.Tid.page, t.Rss.Tid.slot ))
        |> List.of_seq |> List.sort compare
      in
      expected = actual)

(* Engine integration: with the debug order override forcing order-4 trees
   (as the crash-torture harness does), a modest engine-level DML workload
   drives real leaf and internal splits; the B-tree invariants and the
   engine's heap/index integrity check must hold after inserts and
   deletes. *)
let test_engine_integration_small_order () =
  B.set_order_override (Some 4);
  Fun.protect
    ~finally:(fun () -> B.set_order_override None)
    (fun () ->
      let db = Database.create () in
      ignore
        (Database.exec_script db
           "CREATE TABLE S (K INT, V INT);\nCREATE INDEX S_K ON S (K);");
      for k = 0 to 60 do
        ignore
          (Database.exec db
             (Printf.sprintf "INSERT INTO S VALUES (%d, %d)" (k * 13 mod 61) k))
      done;
      ignore (Database.exec db "DELETE FROM S WHERE K < 20");
      (match Catalog.find_index (Database.catalog db) "S_K" with
       | Some idx ->
         (match B.check_invariants idx.Catalog.btree with
          | Ok () -> ()
          | Error m -> Alcotest.fail m);
         Alcotest.(check bool) "order-4 tree actually split" true
           (B.leaf_pages idx.Catalog.btree > 1)
       | None -> Alcotest.fail "S_K missing");
      match Database.check_integrity db with
      | Ok () -> ()
      | Error m -> Alcotest.failf "integrity: %s" m)

let () =
  Alcotest.run "btree"
    [ ( "unit",
        [ Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "duplicates" `Quick test_duplicates;
          Alcotest.test_case "range scan" `Quick test_range_scan;
          Alcotest.test_case "composite prefix bounds" `Quick test_composite_prefix_bounds;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "leaf pages grow" `Quick test_leaf_pages_grow;
          Alcotest.test_case "scan accounting" `Quick test_scan_accounting;
          Alcotest.test_case "descending scan" `Quick test_desc_scan;
          Alcotest.test_case "bad order" `Quick test_bad_order;
          Alcotest.test_case "engine DML at order 4" `Quick
            test_engine_integration_small_order ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_model; prop_desc_is_reverse_of_asc ] ) ]
