module V = Rel.Value
module P = Plan

let schema cols =
  Rel.Schema.make (List.map (fun n -> { Rel.Schema.name = n; ty = V.Tint }) cols)

(* Chain schema: T1(A,X) -- T2(A,B,Y) -- T3(B,Z); join predicates only along
   the chain (T1.A = T2.A, T2.B = T3.B). *)
let chain_db ?(rows = 200) () =
  let db = Database.create ~buffer_pages:16 () in
  let cat = Database.catalog db in
  let t1 = Catalog.create_relation cat ~name:"T1" ~schema:(schema [ "A"; "X" ]) in
  let t2 = Catalog.create_relation cat ~name:"T2" ~schema:(schema [ "A"; "B"; "Y" ]) in
  let t3 = Catalog.create_relation cat ~name:"T3" ~schema:(schema [ "B"; "Z" ]) in
  for i = 0 to rows - 1 do
    ignore
      (Catalog.insert_tuple cat t1 (Rel.Tuple.make [ V.Int (i mod 20); V.Int i ]));
    ignore
      (Catalog.insert_tuple cat t2
         (Rel.Tuple.make [ V.Int (i mod 20); V.Int (i mod 10); V.Int i ]));
    ignore
      (Catalog.insert_tuple cat t3 (Rel.Tuple.make [ V.Int (i mod 10); V.Int i ]))
  done;
  ignore (Catalog.create_index cat ~name:"T1_A" ~rel:t1 ~columns:[ "A" ] ~clustered:false);
  ignore (Catalog.create_index cat ~name:"T1_X" ~rel:t1 ~columns:[ "X" ] ~clustered:false);
  ignore (Catalog.create_index cat ~name:"T2_A" ~rel:t2 ~columns:[ "A" ] ~clustered:false);
  ignore (Catalog.create_index cat ~name:"T3_B" ~rel:t3 ~columns:[ "B" ] ~clustered:false);
  Catalog.update_statistics cat;
  db

let plan_of ?ctx db sql =
  let r = Database.optimize ?ctx db sql in
  (r.Optimizer.plan, r.Optimizer.search)

let chain_sql = "SELECT X FROM T1, T2, T3 WHERE T1.A = T2.A AND T2.B = T3.B"

let test_complete_plan_produced () =
  let db = chain_db () in
  let plan, stats = plan_of db chain_sql in
  Alcotest.(check int) "all three joined" 3 (List.length plan.P.tables);
  Alcotest.(check int) "two joins" 2 (List.length (P.join_methods_used plan));
  Alcotest.(check bool) "considered plans" true (stats.Join_enum.plans_considered > 10)

let has_subset stats tabs =
  List.exists (fun (ts, _) -> ts = tabs) stats.Join_enum.dp_table

let test_heuristic_defers_cartesian () =
  let db = chain_db () in
  let _, stats = plan_of db chain_sql in
  (* T1 and T3 are not connected: the pair {T1,T3} must not be explored *)
  Alcotest.(check bool) "no {T1,T3} subset" false (has_subset stats [ 0; 2 ]);
  Alcotest.(check bool) "{T1,T2} explored" true (has_subset stats [ 0; 1 ]);
  Alcotest.(check bool) "{T2,T3} explored" true (has_subset stats [ 1; 2 ]);
  (* without the heuristic, the Cartesian pair is explored too *)
  let ctx =
    Ctx.create ~use_heuristic:false (Database.catalog db)
  in
  let _, stats2 = plan_of ~ctx db chain_sql in
  Alcotest.(check bool) "{T1,T3} explored without heuristic" true
    (has_subset stats2 [ 0; 2 ]);
  Alcotest.(check bool) "heuristic stores fewer solutions" true
    (stats.Join_enum.solutions_stored <= stats2.Join_enum.solutions_stored)

let test_cartesian_when_forced () =
  let db = chain_db () in
  (* no join predicate at all: a Cartesian product is the only option *)
  let plan, _ = plan_of db "SELECT X FROM T1, T3 WHERE T1.A = 1 AND T3.B = 2" in
  Alcotest.(check int) "both joined" 2 (List.length plan.P.tables);
  Alcotest.(check (list string)) "nested loop product" [ "NL" ]
    (P.join_methods_used plan)

let test_solutions_bound () =
  let db = chain_db () in
  let _, stats = plan_of db chain_sql in
  (* "at most 2^n (subsets) times the number of interesting result orders":
     n = 3, order classes here: unordered + class(A) + class(B) *)
  Alcotest.(check bool) "solutions bounded" true
    (stats.Join_enum.solutions_stored <= 8 * 3);
  Alcotest.(check bool) "subsets bounded" true (stats.Join_enum.subsets_examined <= 7)

let test_join_methods_can_mix () =
  (* large tables with no useful indexes on one side force a sort+merge while
     a selective indexed side prefers nested loops; at minimum both methods
     must appear across the two scenarios *)
  let db = chain_db ~rows:2000 () in
  let merge_plan, _ =
    plan_of db "SELECT Y FROM T2, T3 WHERE T2.Y = T3.Z"
  in
  (* Y/Z are unindexed join columns on equal-size relations: merging scans
     with sorted inputs should beat N full inner rescans *)
  Alcotest.(check (list string)) "merge chosen" [ "MERGE" ]
    (P.join_methods_used merge_plan);
  (* a single-tuple outer (unique indexed X) with an index on the inner join
     column: nested loops probes a handful of inner tuples *)
  let nl_plan, _ =
    plan_of db "SELECT Y FROM T1, T2 WHERE T1.A = T2.A AND T1.X = 17"
  in
  Alcotest.(check (list string)) "NL chosen" [ "NL" ] (P.join_methods_used nl_plan)

let test_merge_join_has_sorts_when_needed () =
  let db = chain_db ~rows:2000 () in
  let plan, _ = plan_of db "SELECT Y FROM T2, T3 WHERE T2.Y = T3.Z" in
  let rec count_sorts (p : P.t) =
    match p.P.node with
    | P.Sort { input; _ } -> 1 + count_sorts input
    | P.Scan _ -> 0
    | P.Nl_join { outer; inner } -> count_sorts outer + count_sorts inner
    | P.Merge_join { outer; inner; _ } -> count_sorts outer + count_sorts inner
    | P.Filter { input; _ } | P.Exchange { input; _ } -> count_sorts input
  in
  Alcotest.(check bool) "unindexed merge needs sorts" true (count_sorts plan >= 1)

let test_order_by_uses_index_order () =
  let db = Database.create ~buffer_pages:16 () in
  let cat = Database.catalog db in
  let r = Catalog.create_relation cat ~name:"R" ~schema:(schema [ "K"; "A" ]) in
  for k = 0 to 999 do
    ignore (Catalog.insert_tuple cat r (Rel.Tuple.make [ V.Int k; V.Int (k mod 7) ]))
  done;
  ignore (Catalog.create_index cat ~name:"R_K" ~rel:r ~columns:[ "K" ] ~clustered:true);
  Catalog.update_statistics cat;
  let rec has_sort (p : P.t) =
    match p.P.node with
    | P.Sort _ -> true
    | P.Scan _ -> false
    | P.Nl_join { outer; inner } | P.Merge_join { outer; inner; _ } ->
      has_sort outer || has_sort inner
    | P.Filter { input; _ } | P.Exchange { input; _ } -> has_sort input
  in
  (* a selective range on the ordering column: the matching clustered index
     delivers both the restriction and the order, far cheaper than scanning
     and sorting *)
  let indexed, _ = plan_of db "SELECT K FROM R WHERE K > 900 ORDER BY K" in
  Alcotest.(check bool) "index provides order" false (has_sort indexed);
  (* descending order comes from a backward leaf-chain scan, no sort *)
  let desc, _ = plan_of db "SELECT K FROM R WHERE K > 900 ORDER BY K DESC" in
  Alcotest.(check bool) "backward scan provides DESC" false (has_sort desc);
  let out = Database.query db "SELECT K FROM R WHERE K > 995 ORDER BY K DESC" in
  (match out.Executor.rows with
   | [| Rel.Value.Int a |] :: [| Rel.Value.Int b |] :: _ ->
     Alcotest.(check bool) "descending rows" true (a > b)
   | _ -> Alcotest.fail "desc rows");
  let unindexed, _ = plan_of db "SELECT K FROM R ORDER BY A" in
  Alcotest.(check bool) "unindexed order sorts" true (has_sort unindexed)

let test_interesting_orders_ablation () =
  let db = chain_db ~rows:1000 () in
  let sql = "SELECT X FROM T1, T2 WHERE T1.A = T2.A ORDER BY T1.A" in
  let with_orders = Database.optimize db sql in
  let ctx = Ctx.create ~use_interesting_orders:false (Database.catalog db) in
  let without = Database.optimize ~ctx db sql in
  let w = Ctx.default_w in
  (* keeping per-order solutions can only help *)
  Alcotest.(check bool) "orders never hurt" true
    (Cost_model.total ~w with_orders.Optimizer.plan.P.cost
     <= Cost_model.total ~w without.Optimizer.plan.P.cost +. 1e-9)

let test_order_equivalence_class_transfers () =
  (* E.DNO = D.DNO: scanning E on its DNO index yields D.DNO order too, so an
     ORDER BY D.DNO needs no sort after the merge *)
  let db = Database.create ~buffer_pages:16 () in
  let cat = Database.catalog db in
  let e = Catalog.create_relation cat ~name:"E" ~schema:(schema [ "DNO"; "X" ]) in
  let d = Catalog.create_relation cat ~name:"D" ~schema:(schema [ "DNO"; "Z" ]) in
  for i = 0 to 999 do
    ignore (Catalog.insert_tuple cat e (Rel.Tuple.make [ V.Int (i / 20); V.Int i ]))
  done;
  for i = 0 to 49 do
    ignore (Catalog.insert_tuple cat d (Rel.Tuple.make [ V.Int i; V.Int i ]))
  done;
  ignore (Catalog.create_index cat ~name:"E_DNO" ~rel:e ~columns:[ "DNO" ] ~clustered:true);
  ignore (Catalog.create_index cat ~name:"D_DNO" ~rel:d ~columns:[ "DNO" ] ~clustered:true);
  Catalog.update_statistics cat;
  let r =
    Database.optimize db
      "SELECT X FROM E, D WHERE E.DNO = D.DNO ORDER BY D.DNO"
  in
  (* the join's own order (via the equivalence class E.DNO ~ D.DNO) serves
     the ORDER BY: no sort sits above the join *)
  (match r.Optimizer.plan.P.node with
   | P.Sort _ -> Alcotest.fail "final sort should be unnecessary"
   | P.Nl_join _ | P.Merge_join _ | P.Scan _ | P.Filter _ | P.Exchange _ -> ());
  Alcotest.(check bool) "plan order satisfies ORDER BY" true
    (r.Optimizer.plan.P.order <> [])

let test_single_relation_block () =
  let db = chain_db () in
  let plan, stats = plan_of db "SELECT X FROM T1 WHERE A = 5" in
  Alcotest.(check int) "single table" 1 (List.length plan.P.tables);
  Alcotest.(check int) "one subset" 1 stats.Join_enum.subsets_examined

let test_eight_table_join_terminates () =
  let db = Database.create ~buffer_pages:16 () in
  let cat = Database.catalog db in
  for i = 0 to 7 do
    let r =
      Catalog.create_relation cat
        ~name:(Printf.sprintf "R%d" i)
        ~schema:(schema [ "A"; "B" ])
    in
    for k = 0 to 49 do
      ignore (Catalog.insert_tuple cat r (Rel.Tuple.make [ V.Int k; V.Int (k mod 5) ]))
    done
  done;
  Catalog.update_statistics cat;
  let joins =
    String.concat " AND "
      (List.init 7 (fun i -> Printf.sprintf "R%d.A = R%d.A" i (i + 1)))
  in
  let froms = String.concat ", " (List.init 8 (fun i -> Printf.sprintf "R%d" i)) in
  let started = Unix.gettimeofday () in
  let plan, _ = plan_of db (Printf.sprintf "SELECT R0.B FROM %s WHERE %s" froms joins) in
  let elapsed = Unix.gettimeofday () -. started in
  Alcotest.(check int) "eight tables" 8 (List.length plan.P.tables);
  (* "joins of 8 tables have been optimized in a few seconds" (1979); we
     allow the same budget on modern hardware *)
  Alcotest.(check bool) "a few seconds" true (elapsed < 5.0)

let test_grouping_accepts_permuted_order () =
  (* GROUP BY A, B is served by an index on (B, A): any permutation of the
     grouping columns makes equal keys adjacent *)
  let db = Database.create ~buffer_pages:16 () in
  let cat = Database.catalog db in
  let r = Catalog.create_relation cat ~name:"G" ~schema:(schema [ "A"; "B"; "V" ]) in
  let rows =
    List.init 2000 (fun i -> ((i * 13 mod 4, i * 7 mod 5), i))
  in
  (* loaded in (B, A) order: the (B, A) index is clustered *)
  List.iter
    (fun ((b, a), v) ->
      ignore (Catalog.insert_tuple cat r (Rel.Tuple.make [ V.Int a; V.Int b; V.Int v ])))
    (List.sort compare rows);
  ignore (Catalog.create_index cat ~name:"G_BA" ~rel:r ~columns:[ "B"; "A" ] ~clustered:true);
  Catalog.update_statistics cat;
  let res = Database.optimize db "SELECT A, B, COUNT(*) FROM G GROUP BY A, B" in
  let rec has_sort (p : P.t) =
    match p.P.node with
    | P.Sort _ -> true
    | P.Scan _ -> false
    | P.Nl_join { outer; inner } | P.Merge_join { outer; inner; _ } ->
      has_sort outer || has_sort inner
    | P.Filter { input; _ } | P.Exchange { input; _ } -> has_sort input
  in
  (* the (B,A) index order groups (A,B) without sorting — it must at least be
     an admissible ordered solution; with a segment scan + sort as the rival,
     the index order wins when the sort is not free *)
  Alcotest.(check bool) "no sort above the (B,A) index" false
    (has_sort res.Optimizer.plan);
  (* correctness: counts match the naive evaluator *)
  let out = Executor.run cat res in
  let expected = Naive_eval.query cat res.Optimizer.block in
  Alcotest.(check int) "group count" (List.length expected)
    (List.length out.Executor.rows)

(* --- factor coverage invariant ------------------------------------------ *)

(* Every boolean factor of the block must be applied exactly once in the
   chosen plan: as a SARG, a scan residual, a join residual, a filter
   predicate, or as the equi-join predicate a merge join consumes. Applying
   a factor twice skews cardinality estimates; dropping one corrupts
   results. *)
let check_factor_coverage (r : Optimizer.result) =
  let applied = ref [] in
  let merges = ref [] in
  let rec walk (p : P.t) =
    match p.P.node with
    | P.Scan { sargs; residual; _ } -> applied := sargs @ residual @ !applied
    | P.Nl_join { outer; inner } ->
      walk outer;
      walk inner
    | P.Merge_join { outer; inner; outer_col; inner_col; residual } ->
      merges := (outer_col, inner_col) :: !merges;
      applied := residual @ !applied;
      walk outer;
      walk inner
    | P.Sort { input; _ } -> walk input
    | P.Filter { input; preds } ->
      applied := preds @ !applied;
      walk input
    | P.Exchange { input; _ } -> walk input
  in
  walk r.Optimizer.plan;
  (* CNF rebuilds nodes, so compare by rendered form (multiset) rather than
     physical identity *)
  let render p = Format.asprintf "%a" Semant.pp_spred p in
  let applied = ref (List.map render !applied) in
  let remove_one key =
    let found = ref false in
    applied :=
      List.filter
        (fun k ->
          if (not !found) && k = key then begin
            found := true;
            false
          end
          else true)
        !applied;
    !found
  in
  let factors = Normalize.factors_of_block r.Optimizer.block in
  List.iter
    (fun (f : Normalize.factor) ->
      let key = render f.Normalize.pred in
      if not (remove_one key) then
        match f.Normalize.equi_join with
        | Some (a, b) ->
          (* must be consumed by exactly one merge join on those columns *)
          let consumed, rest =
            List.partition
              (fun (oc, ic) -> (oc = a && ic = b) || (oc = b && ic = a))
              !merges
          in
          (match consumed with
           | _ :: others ->
             merges := others @ rest
           | [] -> Alcotest.fail (Printf.sprintf "factor %s never applied" key))
        | None -> Alcotest.fail (Printf.sprintf "factor %s never applied" key))
    factors;
  if !applied <> [] then
    Alcotest.fail
      (Printf.sprintf "predicates applied but not boolean factors: %s"
         (String.concat "; " !applied))

let coverage_corpus =
  [ "SELECT X FROM T1 WHERE A = 3";
    "SELECT X FROM T1 WHERE A = 3 AND X > 10";
    "SELECT X FROM T1 WHERE A = 1 OR X = 2";
    "SELECT X FROM T1, T2 WHERE T1.A = T2.A";
    "SELECT X FROM T1, T2 WHERE T1.A = T2.A AND T2.B = 3 AND T1.X < 100";
    "SELECT X FROM T1, T2, T3 WHERE T1.A = T2.A AND T2.B = T3.B";
    "SELECT X FROM T1, T2, T3 WHERE T1.A = T2.A AND T2.B = T3.B AND T3.Z > 5 \
     AND T1.X BETWEEN 2 AND 90";
    "SELECT Y FROM T2, T3 WHERE T2.Y = T3.Z";  (* forces merge with sorts *)
    "SELECT X FROM T1, T2 WHERE T1.A = T2.A ORDER BY T1.A";
    "SELECT X FROM T1, T3 WHERE X = 1 AND Z = 2";  (* Cartesian *)
    "SELECT X FROM T1 WHERE A IN (SELECT B FROM T2 WHERE Y = 3)";
    "SELECT X FROM T1 WHERE A = 2 AND X > (SELECT MIN(Y) FROM T2)" ]

let test_factor_coverage () =
  let db = chain_db ~rows:500 () in
  List.iter
    (fun sql -> check_factor_coverage (Database.optimize db sql))
    coverage_corpus;
  (* also without the heuristic and without interesting orders *)
  let ctx = Ctx.create ~use_heuristic:false ~use_interesting_orders:false (Database.catalog db) in
  List.iter
    (fun sql -> check_factor_coverage (Database.optimize ~ctx db sql))
    coverage_corpus

let () =
  Alcotest.run "join_enum"
    [ ( "search",
        [ Alcotest.test_case "complete plan" `Quick test_complete_plan_produced;
          Alcotest.test_case "heuristic defers Cartesian" `Quick
            test_heuristic_defers_cartesian;
          Alcotest.test_case "Cartesian when forced" `Quick test_cartesian_when_forced;
          Alcotest.test_case "solution count bound" `Quick test_solutions_bound;
          Alcotest.test_case "single relation" `Quick test_single_relation_block;
          Alcotest.test_case "8-table join" `Slow test_eight_table_join_terminates ] );
      ( "methods_orders",
        [ Alcotest.test_case "NL vs merge choice" `Quick test_join_methods_can_mix;
          Alcotest.test_case "merge sorts when unindexed" `Quick
            test_merge_join_has_sorts_when_needed;
          Alcotest.test_case "ORDER BY via index" `Quick test_order_by_uses_index_order;
          Alcotest.test_case "interesting orders ablation" `Quick
            test_interesting_orders_ablation;
          Alcotest.test_case "order equivalence classes" `Quick
            test_order_equivalence_class_transfers ] );
      ( "invariants",
        [ Alcotest.test_case "factor coverage" `Quick test_factor_coverage;
          Alcotest.test_case "grouping permutation order" `Quick
            test_grouping_accepts_permuted_order ] ) ]
