(* Checked-in regression corpus for the differential fuzz harness: every
   case replays a (schema, data, query) triple through the full
   configuration lattice of Fuzz_harness.check, so shrunk reproducers from
   fuzz runs can be pasted here as plain SQL. Also hosts a seeded fuzz smoke
   run and the shrinker's self-test against a deliberately broken plan
   cache (dependency validation disabled). *)

module FG = Fuzz_gen
module V = Rel.Value

let col ?(distinct = 4) ?(null_pct = 0) ?(skew = 0.) cname cty =
  { FG.cname; cty; distinct; null_pct; skew }

let table ?(indexes = []) tname cols rows = { FG.tname; cols; rows; indexes }

let ints l = List.map (fun i -> V.Int i) l

let check_case name scenario sql () =
  let q = Parser.parse_query sql in
  match Fuzz_harness.check scenario q with
  | Fuzz_harness.Agree -> ()
  | Fuzz_harness.Diverged d ->
    Alcotest.failf "%s diverged at %s (%s)\nexpected [%s]\nactual   [%s]" name
      d.Fuzz_harness.d_config d.Fuzz_harness.d_detail
      (String.concat "; " d.Fuzz_harness.d_expected)
      (String.concat "; " d.Fuzz_harness.d_actual)
  | Fuzz_harness.Unsupported msg -> Alcotest.failf "%s unsupported: %s" name msg

(* --- scenarios ---------------------------------------------------------- *)

(* NULL-heavy grouping table: c0 is mostly NULL, c1 mixes NULLs in the
   aggregated column, c2 is a string key. *)
let null_heavy =
  { FG.tables =
      [ table "t0"
          [ col "c0" V.Tint; col "c1" V.Tint; col "c2" V.Tstr ]
          [ [ V.Null; V.Int 1; V.Str "v0" ];
            [ V.Null; V.Null; V.Str "v1" ];
            [ V.Int 0; V.Int 3; V.Str "v0" ];
            [ V.Int 0; V.Null; V.Null ];
            [ V.Int 1; V.Int 2; V.Str "v1" ];
            [ V.Null; V.Int 5; V.Null ];
            [ V.Int 1; V.Int 0; V.Str "v0" ] ]
          ~indexes:[ ("i_t0_0", [ "c0" ], false) ] ]
  }

let two_tables =
  { FG.tables =
      [ table "t0"
          [ col "c0" V.Tint ~distinct:3; col "c1" V.Tstr ]
          [ [ V.Int 0; V.Str "v0" ];
            [ V.Int 1; V.Str "v1" ];
            [ V.Int 2; V.Str "v2" ];
            [ V.Int 1; V.Null ] ]
          ~indexes:[ ("i_t0_0", [ "c0" ], true) ];
        table "t1"
          [ col "c0" V.Tint ~distinct:3; col "c1" V.Tint ]
          [ ints [ 0; 4 ]; ints [ 1; 2 ]; ints [ 2; 0 ]; ints [ 1; 1 ] ] ]
  }

let empty_join =
  { FG.tables =
      [ table "t0" [ col "c0" V.Tint ] [];
        table "t1" [ col "c0" V.Tint ] [ ints [ 0 ]; ints [ 1 ] ] ]
  }

(* --- corpus cases ------------------------------------------------------- *)

let corpus =
  [ ( "null-heavy GROUP BY with ORDER BY",
      null_heavy,
      "SELECT Q0.c0, COUNT(Q0.c1), SUM(Q0.c1), MIN(Q0.c2) FROM t0 Q0 \
       GROUP BY Q0.c0 ORDER BY Q0.c0" );
    ( "grouping on a string key with NULLs",
      null_heavy,
      "SELECT Q0.c2, COUNT(*), AVG(Q0.c1) FROM t0 Q0 GROUP BY Q0.c2 \
       ORDER BY Q0.c2 DESC" );
    ( "const-const predicates",
      two_tables,
      "SELECT Q0.c0 FROM t0 Q0 WHERE 1 = 2 OR 3 = 3" );
    ( "division by zero in projection and predicate",
      two_tables,
      "SELECT Q0.c0 / 0, Q1.c1 FROM t0 Q0, t1 Q1 WHERE Q1.c1 / 0 = 1 OR Q0.c0 <= 2" );
    ( "NOT IN with a NULL in the list",
      two_tables,
      "SELECT Q0.c0 FROM t0 Q0 WHERE NOT Q0.c0 IN (1, NULL)" );
    ( "IN subquery with NULLs in the inner column",
      null_heavy,
      "SELECT Q0.c1 FROM t0 Q0 WHERE Q0.c1 IN (SELECT S0.c0 FROM t0 S0)" );
    ( "NOT IN subquery",
      two_tables,
      "SELECT Q1.c0, Q1.c1 FROM t1 Q1 WHERE Q1.c0 NOT IN (SELECT S0.c0 FROM t0 S0 WHERE S0.c0 <= 1)" );
    ( "correlated scalar subquery",
      two_tables,
      "SELECT Q0.c0 FROM t0 Q0 WHERE Q0.c0 >= (SELECT MIN(S0.c1) FROM t1 S0 WHERE S0.c0 = Q0.c0)" );
    ( "scalar aggregate over a join",
      two_tables,
      "SELECT COUNT(*), SUM(Q1.c1), MAX(Q0.c1) FROM t0 Q0, t1 Q1 WHERE Q0.c0 = Q1.c0" );
    ( "empty table in a join",
      empty_join,
      "SELECT Q0.c0, Q1.c0 FROM t0 Q0, t1 Q1 WHERE Q0.c0 = Q1.c0" );
    ( "scalar aggregate over an empty input",
      empty_join,
      "SELECT COUNT(*), SUM(Q0.c0), MIN(Q0.c0) FROM t0 Q0" );
    ( "ORDER BY DESC with duplicates and NULLs",
      null_heavy,
      "SELECT Q0.c0, Q0.c1 FROM t0 Q0 ORDER BY Q0.c0 DESC, Q0.c1" );
    ( "BETWEEN with an empty range",
      two_tables,
      "SELECT Q1.c1 FROM t1 Q1 WHERE Q1.c1 BETWEEN 3 AND 1" );
    ( "degenerate-range predicate on a constant column",
      { FG.tables =
          [ table "t0"
              [ col "c0" V.Tint ~distinct:1; col "c1" V.Tint ]
              [ ints [ 0; 1 ]; ints [ 0; 2 ]; ints [ 0; 3 ] ]
              ~indexes:[ ("i_t0_0", [ "c0" ], false) ] ]
      },
      "SELECT Q0.c1 FROM t0 Q0 WHERE Q0.c0 >= 0 AND Q0.c0 BETWEEN 0 AND 2" ) ]

let corpus_tests =
  List.map
    (fun (name, scenario, sql) ->
      Alcotest.test_case name `Quick (check_case name scenario sql))
    corpus

(* --- cached-plan rebinding across literals, one case per operator -------- *)

let rebind_table_sql =
  "CREATE TABLE t (a INT, b STRING);\n\
   INSERT INTO t VALUES (1, 'x1'), (2, 'x2'), (3, 'x3'), (4, 'x4'), \
   (5, 'x5'), (6, 'x6'), (7, 'x7'), (8, 'x8'), (2, 'x2'), (5, 'x9');\n\
   CREATE INDEX ia ON t (a);\n\
   UPDATE STATISTICS;"

let oracle_rows db sql =
  let block = Database.resolve db sql in
  Fuzz_harness.multiset (Fuzz_oracle.query (Database.catalog db) block)

let engine_rows db sql =
  Fuzz_harness.multiset (Database.query db sql).Executor.rows

let rebind_case (opname, q1, q2) () =
  let db = Database.create () in
  ignore (Database.exec_script db rebind_table_sql);
  Database.set_plan_cache db true;
  (* run shape with literal A (cold), literal B (rebinding hit), A again *)
  List.iter
    (fun sql ->
      Alcotest.(check (list string))
        (opname ^ ": " ^ sql) (oracle_rows db sql) (engine_rows db sql))
    [ q1; q2; q1 ];
  Alcotest.(check bool) (opname ^ " cached") true (Database.plan_cache_size db > 0)

let rebind_tests =
  List.map
    (fun ((opname, _, _) as c) ->
      Alcotest.test_case ("rebind " ^ opname) `Quick (rebind_case c))
    [ ("=", "SELECT * FROM t WHERE a = 2", "SELECT * FROM t WHERE a = 5");
      ("<>", "SELECT * FROM t WHERE a <> 2", "SELECT * FROM t WHERE a <> 7");
      ("<", "SELECT * FROM t WHERE a < 3", "SELECT * FROM t WHERE a < 8");
      ("<=", "SELECT * FROM t WHERE a <= 1", "SELECT * FROM t WHERE a <= 6");
      (">", "SELECT * FROM t WHERE a > 6", "SELECT * FROM t WHERE a > 1");
      (">=", "SELECT * FROM t WHERE a >= 7", "SELECT * FROM t WHERE a >= 3");
      ( "BETWEEN",
        "SELECT * FROM t WHERE a BETWEEN 2 AND 4",
        "SELECT * FROM t WHERE a BETWEEN 5 AND 9" );
      ( "IN",
        "SELECT * FROM t WHERE a IN (1, 4)",
        "SELECT * FROM t WHERE a IN (2, 8)" );
      ( "string =",
        "SELECT * FROM t WHERE b = 'x3'",
        "SELECT * FROM t WHERE b = 'x9'" ) ]

(* --- seeded fuzz smoke -------------------------------------------------- *)

let fuzz_smoke () =
  let stats = Fuzz_harness.stats_create () in
  for i = 0 to 39 do
    let rng = Workload.rand_init (4200 + i) in
    let scenario = FG.gen_scenario rng in
    let q = FG.gen_query rng scenario in
    match Fuzz_harness.check ~stats scenario q with
    | Fuzz_harness.Agree -> ()
    | Fuzz_harness.Diverged d ->
      Alcotest.failf "seed %d diverged at %s:\n%s" (4200 + i)
        d.Fuzz_harness.d_config
        (Fuzz_harness.reproducer scenario q)
    | Fuzz_harness.Unsupported msg ->
      Alcotest.failf "seed %d unsupported: %s\n%s" (4200 + i) msg
        (Fuzz_sql.query_to_string q)
  done;
  Alcotest.(check bool) "ran queries" true (stats.Fuzz_harness.queries = 40)

(* Parallel-focused seeded smoke: a distinct seed range whose scenarios flow
   through the same lattice, which since the parallel-execution work includes
   forced-exchange runs at DOP 2 and 4. Generated tables are small (usually a
   single page, where the exchange correctly degrades to serial), so a
   hand-built multi-page scenario rides along; afterwards the worker pool
   must have actually spawned — proof the corpus did not silently degrade
   every query to the serial path. *)
let parallel_fuzz_smoke () =
  for i = 0 to 11 do
    let rng = Workload.rand_init (7700 + i) in
    let scenario = FG.gen_scenario rng in
    let q = FG.gen_query rng scenario in
    match Fuzz_harness.check scenario q with
    | Fuzz_harness.Agree -> ()
    | Fuzz_harness.Diverged d ->
      Alcotest.failf "seed %d diverged at %s:\n%s" (7700 + i)
        d.Fuzz_harness.d_config
        (Fuzz_harness.reproducer scenario q)
    | Fuzz_harness.Unsupported msg ->
      Alcotest.failf "seed %d unsupported: %s\n%s" (7700 + i) msg
        (Fuzz_sql.query_to_string q)
  done;
  (* multi-page table: ~700 rows span several 4K pages, so the forced
     exchange really partitions and fans out to worker domains *)
  let big =
    { FG.tables =
        [ table "big"
            [ col "c0" V.Tint ~distinct:7; col "c1" V.Tint ~distinct:700 ]
            (List.init 700 (fun i -> ints [ i mod 7; i ]))
            ~indexes:[ ("i_big_c1", [ "c1" ], false) ] ]
    }
  in
  List.iter
    (fun sql ->
      check_case "parallel big" big sql ())
    [ "SELECT c0, c1 FROM big WHERE c1 >= 10 ORDER BY c1";
      "SELECT c0, SUM(c1) FROM big GROUP BY c0";
      "SELECT SUM(c1) FROM big WHERE c0 = 3" ];
  Alcotest.(check bool) "worker domains spawned" true (Rss.Domain_pool.size () > 0)

(* --- shrinker self-test against broken cache invalidation ---------------- *)

let shrinker_self_test () =
  let scenario =
    { FG.tables =
        [ table "t0"
            [ col "c0" V.Tint ~distinct:4; col "c1" V.Tint ~distinct:4 ]
            [ ints [ 0; 1 ]; ints [ 1; 2 ]; ints [ 2; 3 ]; ints [ 3; 0 ];
              ints [ 1; 1 ]; ints [ 2; 2 ] ]
            ~indexes:[ ("i_t0_0", [ "c0" ], false) ];
          table "t1"
            [ col "c0" V.Tint ~distinct:3 ]
            [ ints [ 0 ]; ints [ 1 ]; ints [ 2 ] ] ]
    }
  in
  let q =
    Parser.parse_query
      "SELECT Q0.c0, Q0.c1 FROM t0 Q0, t1 Q1 \
       WHERE Q0.c0 >= 0 AND Q1.c0 >= 0 AND Q0.c1 <= 5"
  in
  (* the planted fault must surface as a divergence... *)
  (match Fuzz_harness.check ~break_invalidation:true scenario q with
   | Fuzz_harness.Diverged _ -> ()
   | Fuzz_harness.Agree ->
     Alcotest.fail "broken invalidation not detected"
   | Fuzz_harness.Unsupported msg -> Alcotest.failf "unsupported: %s" msg);
  (* ...and with validation intact the same pair must agree *)
  (match Fuzz_harness.check scenario q with
   | Fuzz_harness.Agree -> ()
   | Fuzz_harness.Diverged d ->
     Alcotest.failf "healthy cache diverged at %s" d.Fuzz_harness.d_config
   | Fuzz_harness.Unsupported msg -> Alcotest.failf "unsupported: %s" msg);
  (* the shrinker must cut the reproducer to <= 2 tables, <= 2 factors *)
  let check s q = Fuzz_harness.check ~break_invalidation:true s q in
  let (s', q'), steps = Fuzz_shrink.shrink ~check ~max_steps:300 (scenario, q) in
  Alcotest.(check bool) "some shrinking happened" true (steps > 0);
  Alcotest.(check bool)
    (Printf.sprintf "tables <= 2 (got %d)" (List.length s'.FG.tables))
    true
    (List.length s'.FG.tables <= 2);
  Alcotest.(check bool)
    (Printf.sprintf "factors <= 2 (got %d)" (Fuzz_shrink.factor_count q'))
    true
    (Fuzz_shrink.factor_count q' <= 2);
  (* the shrunk pair still reproduces under the fault *)
  match check s' q' with
  | Fuzz_harness.Diverged _ -> ()
  | _ -> Alcotest.fail "shrunk reproducer no longer diverges"

let () =
  Alcotest.run "fuzz_corpus"
    [ ("corpus", corpus_tests);
      ("rebind", rebind_tests);
      ( "fuzz",
        [ Alcotest.test_case "seeded smoke (40 queries)" `Quick fuzz_smoke;
          Alcotest.test_case "parallel seeded smoke (12 queries)" `Quick
            parallel_fuzz_smoke;
          Alcotest.test_case "shrinker vs broken invalidation" `Quick
            shrinker_self_test ] ) ]
