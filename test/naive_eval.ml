(* The reference evaluator moved into the fuzz library (lib/fuzz/
   fuzz_oracle.ml) so the differential fuzz harness and the executor tests
   share one oracle. This alias keeps the historical [Naive_eval] name the
   test suite uses. *)

include Fuzz_oracle
