(* Server, sessions & wire protocol.

   - protocol encode/decode roundtrips and malformed-stream rejection
   - simple-query and Parse/Bind/Execute/Fetch conversations over a real
     Unix-domain socket
   - per-session isolation: SET overrides, transactions, counters folding
     into the engine-global record at session close
   - write-write 2PL across sessions: same-tuple delete conflicts block,
     deadlock victims error, mid-transaction disconnect releases locks (the
     crashed-client case) — while MVCC readers never block on writers
   - prepared-statement revalidation after UPDATE STATISTICS from another
     session
   - the multi-session differential: N concurrent connections replay a fuzz
     workload and per-connection DML streams; every result must be
     multiset-equal to a serial embedded run of the same statements. *)

module V = Rel.Value
module P = Protocol

let msv = Alcotest.(list string)

let multiset rows = Fuzz_harness.multiset rows

let rows_ms (r : Client.reply) = multiset r.Client.rows

(* --- infrastructure ------------------------------------------------------ *)

let sock_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "systemr_test_%d_%d.sock" (Unix.getpid ()) !n)

let with_server ?(seed = "") f =
  let db = Database.create () in
  if seed <> "" then ignore (Database.exec_script db seed);
  let srv =
    Server.start ~engine:(Database.engine db) (Server.Unix_sock (sock_path ()))
  in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f db srv)

let connect srv = Client.connect (Server.addr srv)

(* Deterministic cross-session sequencing, without polling: capture the
   engine's blocked-transaction epoch, pipeline the statement that must
   queue behind a lock, then sleep on the engine's condition variable until
   the epoch advances — the executing session bumps it right before parking
   on the lock, so the wakeup *is* the event being waited for. *)
let send_blocking db c sql =
  let eng = Database.engine db in
  let epoch = Engine.block_epoch eng in
  Client.send c (P.Simple sql);
  Client.flush c;
  Engine.await_block_epoch eng epoch

(* --- protocol unit tests -------------------------------------------------- *)

let client_roundtrip msg =
  let typ, payload = P.encode_client msg in
  P.decode_client typ payload

let server_roundtrip msg =
  let typ, payload = P.encode_server msg in
  P.decode_server typ payload

let test_protocol_roundtrip () =
  let cmsgs =
    [ P.Startup P.version;
      P.Simple "SELECT 1 FROM t";
      P.Parse { name = "q0"; sql = "SELECT a FROM t WHERE a = ?" };
      P.Bind { name = "q0"; params = [ V.Int 42; V.Null; V.Str "x"; V.Float 1.5 ] };
      P.Execute { name = "q0"; params = None; fetch = 7 };
      P.Execute { name = "q0"; params = Some [ V.Int 3; V.Str "y" ]; fetch = 0 };
      P.Execute { name = "q0"; params = Some []; fetch = 0 };
      P.Fetch 12;
      P.Close_stmt "q0";
      P.Terminate ]
  in
  List.iter
    (fun m -> Alcotest.(check bool) "client msg" true (client_roundtrip m = m))
    cmsgs;
  let smsgs =
    [ P.Ready;
      P.Parse_ok 3;
      P.Bind_ok;
      P.Row_desc [ "a"; "b" ];
      P.Row_batch [ [| V.Int 1; V.Str "x" |]; [| V.Null; V.Float 2. |] ];
      P.Complete "SELECT 2";
      P.Suspended;
      P.Err "boom" ]
  in
  List.iter
    (fun m -> Alcotest.(check bool) "server msg" true (server_roundtrip m = m))
    smsgs;
  (* corrupt payloads must raise Malformed, not crash or misparse *)
  let malformed f = match f () with
    | exception P.Malformed _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "truncated string" true
    (malformed (fun () -> P.decode_client 'Q' "\x00\x00\x00\x10abc"));
  Alcotest.(check bool) "unknown type" true
    (malformed (fun () -> P.decode_client '?' ""));
  Alcotest.(check bool) "trailing bytes" true
    (malformed (fun () -> P.decode_client 'X' "junk"));
  Alcotest.(check bool) "bad value tag" true
    (malformed (fun () ->
         P.decode_server 'W' "\x00\x01\x00\x01\x09"));
  Alcotest.(check bool) "bad startup magic" true
    (malformed (fun () -> P.decode_client 'S' "XXXX\x00\x01"))

(* --- simple queries over the wire ----------------------------------------- *)

let test_simple_query () =
  with_server (fun _db srv ->
      let c = connect srv in
      let r = Client.ok (Client.simple c "CREATE TABLE t (a INT, b STRING)") in
      Alcotest.(check string) "ddl tag" "table t created" r.Client.tag;
      ignore (Client.ok (Client.simple c "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, NULL)"));
      let r = Client.ok (Client.simple c "SELECT a, b FROM t WHERE a >= 2") in
      Alcotest.(check (list string)) "columns" [ "a"; "b" ] r.Client.columns;
      Alcotest.(check string) "tag" "SELECT 2" r.Client.tag;
      Alcotest.check msv "rows" (multiset [ [| V.Int 2; V.Str "y" |]; [| V.Int 3; V.Null |] ])
        (rows_ms r);
      (* a statement error leaves the connection usable *)
      let r = Client.simple c "SELECT nope FROM t" in
      Alcotest.(check bool) "error surfaced" true (r.Client.error <> None);
      let r = Client.ok (Client.simple c "SELECT a FROM t WHERE a = 1") in
      Alcotest.(check string) "still alive" "SELECT 1" r.Client.tag;
      (* EXPLAIN rides the Complete tag *)
      let r = Client.ok (Client.simple c "EXPLAIN SELECT a FROM t WHERE a = 1") in
      Alcotest.(check bool) "explain text" true
        (String.length r.Client.tag > 0
         && String.sub r.Client.tag 0 4 <> "SELE");
      Client.close c)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_per_session_settings () =
  with_server ~seed:"CREATE TABLE t (a INT); INSERT INTO t VALUES (1);"
    (fun _db srv ->
      let a = connect srv and b = connect srv in
      ignore (Client.ok (Client.simple a "SET HISTOGRAMS OFF"));
      let ea = (Client.ok (Client.simple a "EXPLAIN SELECT a FROM t")).Client.tag in
      let eb = (Client.ok (Client.simple b "EXPLAIN SELECT a FROM t")).Client.tag in
      Alcotest.(check bool) "a sees its override" true (contains ea "histograms: off");
      Alcotest.(check bool) "b unaffected" true (contains eb "histograms: on");
      Client.close a;
      Client.close b)

(* --- prepared statements over the wire ------------------------------------ *)

let test_prepared_path () =
  with_server
    ~seed:"CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2), (3), (4), (5);"
    (fun _db srv ->
      let c = connect srv in
      let r = Client.ok (Client.parse c ~name:"q" "SELECT a FROM t WHERE a >= ?") in
      Alcotest.(check (option int)) "param count" (Some 1) r.Client.param_count;
      ignore (Client.ok (Client.bind c ~name:"q" [ V.Int 4 ]));
      let r = Client.ok (Client.execute c "q") in
      Alcotest.check msv "bound execute"
        (multiset [ [| V.Int 4 |]; [| V.Int 5 |] ]) (rows_ms r);
      (* rebind without re-parsing *)
      ignore (Client.ok (Client.bind c ~name:"q" [ V.Int 2 ]));
      let r = Client.ok (Client.execute c "q") in
      Alcotest.(check string) "rebound tag" "SELECT 4" r.Client.tag;
      (* binding count mismatch is a statement error, connection survives *)
      ignore (Client.ok (Client.bind c ~name:"q" []));
      let r = Client.execute c "q" in
      Alcotest.(check bool) "arity error" true (r.Client.error <> None);
      (* unknown statement *)
      let r = Client.execute c "nope" in
      Alcotest.(check bool) "unknown statement" true (r.Client.error <> None);
      (* close, then execute must fail *)
      ignore (Client.ok (Client.close_stmt c "q"));
      let r = Client.execute c "q" in
      Alcotest.(check bool) "closed statement gone" true (r.Client.error <> None);
      Client.close c)

let test_portals () =
  with_server ~seed:"CREATE TABLE t (a INT);" (fun _db srv ->
      let c = connect srv in
      for i = 1 to 10 do
        ignore (Client.ok (Client.simple c (Printf.sprintf "INSERT INTO t VALUES (%d)" i)))
      done;
      ignore (Client.ok (Client.parse c ~name:"q" "SELECT a FROM t"));
      let r = Client.ok (Client.execute c ~fetch:4 "q") in
      Alcotest.(check bool) "suspended" true r.Client.suspended;
      Alcotest.(check int) "first page" 4 (List.length r.Client.rows);
      let r2 = Client.ok (Client.fetch c 4) in
      Alcotest.(check bool) "still suspended" true r2.Client.suspended;
      Alcotest.(check int) "second page" 4 (List.length r2.Client.rows);
      let r3 = Client.ok (Client.fetch c 4) in
      Alcotest.(check bool) "exhausted" false r3.Client.suspended;
      Alcotest.(check int) "last page" 2 (List.length r3.Client.rows);
      Alcotest.(check string) "fetch tag" "FETCH 2" r3.Client.tag;
      let r4 = Client.fetch c 4 in
      Alcotest.(check bool) "no open portal" true (r4.Client.error <> None);
      (* all pages together are the full table *)
      let all = r.Client.rows @ r2.Client.rows @ r3.Client.rows in
      Alcotest.check msv "pages cover the table"
        (multiset (List.init 10 (fun i -> [| V.Int (i + 1) |])))
        (multiset all);
      Client.close c)

(* --- malformed and truncated frames --------------------------------------- *)

let test_malformed_frames () =
  with_server ~seed:"CREATE TABLE t (a INT);" (fun _db srv ->
      (* unknown frame type: Err then disconnect *)
      let c = connect srv in
      P.send_raw (Client.io c) "\x00\x00\x00\x02\xffx";
      P.flush (Client.io c);
      Alcotest.(check bool) "unknown type drops connection" true
        (match Client.read_reply c with
         | exception Client.Disconnected -> true
         | r -> r.Client.error <> None && (match Client.read_reply c with
             | exception Client.Disconnected -> true
             | _ -> false));
      Client.abandon c;
      (* insane frame length: dropped before any allocation *)
      let c = connect srv in
      P.send_raw (Client.io c) "\xff\xff\xff\xffQ";
      P.flush (Client.io c);
      Alcotest.(check bool) "oversized length drops connection" true
        (match Client.read_reply c with
         | exception Client.Disconnected -> true
         | r -> r.Client.error <> None);
      Client.abandon c;
      (* truncated frame then EOF: server treats it as a disconnect *)
      let c = connect srv in
      P.send_raw (Client.io c) "\x00\x00\x00\x40Qonly-part-of-the-payload";
      P.flush (Client.io c);
      Client.abandon c;
      (* ... and keeps serving new connections *)
      let c = connect srv in
      let r = Client.ok (Client.simple c "SELECT a FROM t") in
      Alcotest.(check string) "server still serving" "SELECT 0" r.Client.tag;
      Client.close c)

(* --- write-write 2PL and MVCC reads across sessions ------------------------ *)

(* Inserts of different transactions are compatible (an uncommitted version
   is invisible to everyone else — there is nothing to conflict with);
   write-write blocking happens at tuple granularity, on the victim of a
   DELETE. First committer wins: the blocked deleter finds the tuple's xmax
   stamped after its lock is finally granted and fails with a serialization
   error instead of double-deleting. *)
let test_writer_blocks_writer () =
  with_server ~seed:"CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2);"
    (fun db srv ->
      let a = connect srv and b = connect srv in
      ignore (Client.ok (Client.simple a "BEGIN"));
      ignore (Client.ok (Client.simple a "DELETE FROM t WHERE a = 1"));
      (* concurrent inserts do NOT block: no tuple conflict exists *)
      let r = Client.ok (Client.simple b "INSERT INTO t VALUES (3)") in
      Alcotest.(check string) "concurrent insert unblocked" "1 row inserted"
        r.Client.tag;
      (* b's delete of the same tuple queues behind a's tuple X lock *)
      send_blocking db b "DELETE FROM t WHERE a = 1";
      ignore (Client.ok (Client.simple a "COMMIT"));
      (* first committer (a) wins; b's delete fails rather than re-deleting *)
      let r = Client.read_reply b in
      (match r.Client.error with
       | Some e ->
         Alcotest.(check bool) "serialization error reported" true
           (contains e "serialize")
       | None -> Alcotest.fail "expected a serialization error");
      let r = Client.ok (Client.simple b "SELECT a FROM t") in
      Alcotest.check msv "a's delete and b's insert both visible"
        (multiset [ [| V.Int 2 |]; [| V.Int 3 |] ])
        (rows_ms r);
      Client.close a;
      Client.close b)

(* The tentpole acceptance pin: a point SELECT against a row an uncommitted
   transaction has written must complete immediately from its snapshot —
   never queue behind the writer's locks. *)
let test_reader_never_blocks_on_writer () =
  with_server ~seed:"CREATE TABLE t (a INT, b INT); INSERT INTO t VALUES (1, 10);"
    (fun _db srv ->
      let w = connect srv and r = connect srv in
      ignore (Client.ok (Client.simple w "BEGIN"));
      ignore (Client.ok (Client.simple w "DELETE FROM t WHERE a = 1"));
      ignore (Client.ok (Client.simple w "INSERT INTO t VALUES (1, 11)"));
      (* the reader completes while w's transaction is still open, and sees
         the pre-transaction image *)
      let reply = Client.ok (Client.simple r "SELECT b FROM t WHERE a = 1") in
      Alcotest.check msv "snapshot read under uncommitted writer"
        (multiset [ [| V.Int 10 |] ])
        (rows_ms reply);
      ignore (Client.ok (Client.simple w "COMMIT"));
      let reply = Client.ok (Client.simple r "SELECT b FROM t WHERE a = 1") in
      Alcotest.check msv "post-commit read sees the new version"
        (multiset [ [| V.Int 11 |] ])
        (rows_ms reply);
      Client.close w;
      Client.close r)

let test_midtxn_disconnect_releases_locks () =
  with_server ~seed:"CREATE TABLE t (a INT); INSERT INTO t VALUES (1);"
    (fun db srv ->
      let a = connect srv and b = connect srv in
      ignore (Client.ok (Client.simple a "BEGIN"));
      ignore (Client.ok (Client.simple a "DELETE FROM t WHERE a = 1"));
      send_blocking db b "DELETE FROM t WHERE a = 1";
      (* the client vanishes mid-transaction: no Terminate, no COMMIT *)
      Client.abandon a;
      (* a's rollback releases the tuple lock and un-marks the victim, so
         b's queued delete is granted and succeeds *)
      let r = Client.ok (Client.read_reply b) in
      Alcotest.(check string) "b unblocked by disconnect" "1 row deleted"
        r.Client.tag;
      let r = Client.ok (Client.simple b "SELECT a FROM t") in
      Alcotest.check msv "a's transaction rolled back, b's delete applied"
        (multiset []) (rows_ms r);
      Client.close b)

(* A client that vanishes while the server still owes it bytes: the flush
   hits EPIPE/ECONNRESET instead of the read side seeing EOF. That must be
   the same clean disconnect — session closed, transaction aborted, tuple
   locks released — not a crashed handler or a stranded lock. The pipelined
   result set is sized well past the socket buffer so the server is
   guaranteed to still be writing when the peer closes. *)
let test_epipe_disconnect_releases_locks () =
  let seed =
    let b = Buffer.create (1 lsl 16) in
    Buffer.add_string b "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); ";
    Buffer.add_string b "CREATE TABLE big (id INT, pad STRING); ";
    Buffer.add_string b "INSERT INTO big VALUES ";
    let pad = String.make 80 'x' in
    for i = 0 to 2999 do
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "(%d, '%s')" i pad)
    done;
    Buffer.add_string b ";";
    Buffer.contents b
  in
  with_server ~seed (fun _db srv ->
      let a = connect srv and b = connect srv in
      ignore (Client.ok (Client.simple a "BEGIN"));
      ignore (Client.ok (Client.simple a "DELETE FROM t WHERE a = 1"));
      (* pipeline ~2 MB of replies, read only the first, then drop the
         socket: the server's write(2) of the remainder fails *)
      for _ = 1 to 8 do
        Client.send a (P.Simple "SELECT pad FROM big")
      done;
      Client.flush a;
      ignore (Client.read_reply a);
      Client.abandon a;
      (* a's abort must release the tuple lock and restore the row, so b's
         conflicting delete (queued or fresh) succeeds *)
      let r = Client.ok (Client.simple b "DELETE FROM t WHERE a = 1") in
      Alcotest.(check string) "b deletes after EPIPE disconnect"
        "1 row deleted" r.Client.tag;
      Client.close b)

(* Snapshot.save on a shared engine: latched against concurrent statements,
   refused outright while any session's transaction is open (uncommitted
   versions must never be serialized), accepted again once it commits. *)
let test_snapshot_save_on_shared_engine () =
  with_server ~seed:"CREATE TABLE t (a INT); INSERT INTO t VALUES (1);"
    (fun db srv ->
      let a = connect srv in
      ignore (Client.ok (Client.simple a "BEGIN"));
      ignore (Client.ok (Client.simple a "INSERT INTO t VALUES (2)"));
      (match Snapshot.save db with
       | exception Invalid_argument _ -> ()
       | _ -> Alcotest.fail "save must refuse while a transaction is open");
      ignore (Client.ok (Client.simple a "COMMIT"));
      let bytes = Snapshot.save db in
      Client.close a;
      let db' = Snapshot.load bytes in
      let out = Database.query db' "SELECT a FROM t" in
      Alcotest.check msv "snapshot captured committed state"
        (multiset [ [| V.Int 1 |]; [| V.Int 2 |] ])
        (multiset out.Executor.rows))

let test_deadlock_victim () =
  with_server
    ~seed:
      "CREATE TABLE t1 (a INT); CREATE TABLE t2 (a INT); INSERT INTO t1 \
       VALUES (1); INSERT INTO t2 VALUES (1);"
    (fun db srv ->
      let a = connect srv and b = connect srv in
      ignore (Client.ok (Client.simple a "BEGIN"));
      ignore (Client.ok (Client.simple a "DELETE FROM t1 WHERE a = 1"));
      ignore (Client.ok (Client.simple b "BEGIN"));
      ignore (Client.ok (Client.simple b "DELETE FROM t2 WHERE a = 1"));
      (* a waits for t2's tuple ... *)
      send_blocking db a "DELETE FROM t2 WHERE a = 1";
      (* ... so b's request for t1's tuple closes the cycle: b is the victim *)
      let r = Client.simple b "DELETE FROM t1 WHERE a = 1" in
      (match r.Client.error with
       | Some e -> Alcotest.(check bool) "deadlock reported" true (contains e "deadlock")
       | None -> Alcotest.fail "expected a deadlock error");
      (* the victim's transaction survives (statement-level abort); its
         ROLLBACK undoes b's t2 delete-mark and releases the tuple lock, so
         a's queued delete is granted, rechecks a live unmarked tuple, and
         succeeds *)
      ignore (Client.ok (Client.simple b "ROLLBACK"));
      let r = Client.ok (Client.read_reply a) in
      Alcotest.(check string) "a proceeds" "1 row deleted" r.Client.tag;
      ignore (Client.ok (Client.simple a "COMMIT"));
      let r = Client.ok (Client.simple a "SELECT a FROM t2") in
      Alcotest.check msv "a's t2 delete committed" (multiset []) (rows_ms r);
      Client.close a;
      Client.close b)

(* --- group commit ---------------------------------------------------------- *)

(* The failpoint registry is single-domain-only, so server-side durability is
   gated through [Wal.set_flush_hook] instead: the hook runs inside the
   leader's flush, just before the batch becomes durable — a controllable
   stand-in for the device sync. *)

(* A two-phase gate: the main test waits for a leader to *enter* the fsync
   window, holds it there, and later releases it (it stays open after). *)
type flush_gate = {
  g_m : Mutex.t;
  g_c : Condition.t;
  mutable g_entered : bool;
  mutable g_released : bool;
}

let flush_gate () =
  { g_m = Mutex.create (); g_c = Condition.create ();
    g_entered = false; g_released = false }

let gate_hook g () =
  Mutex.lock g.g_m;
  g.g_entered <- true;
  Condition.broadcast g.g_c;
  while not g.g_released do Condition.wait g.g_c g.g_m done;
  Mutex.unlock g.g_m

let gate_await_entered g =
  Mutex.lock g.g_m;
  while not g.g_entered do Condition.wait g.g_c g.g_m done;
  Mutex.unlock g.g_m

let gate_release g =
  Mutex.lock g.g_m;
  g.g_released <- true;
  Condition.broadcast g.g_c;
  Mutex.unlock g.g_m

(* Bounded positive wait on engine-side state that has no dedicated condition
   variable (group-commit queue depth). Latency-only: the predicate becoming
   true is guaranteed by the test's own pipelined work. *)
let wait_until what pred =
  let rec go n =
    if not (pred ()) then
      if n > 2000 then Alcotest.failf "timed out waiting for %s" what
      else begin
        Unix.sleepf 0.002;
        go (n + 1)
      end
  in
  go 0

(* COMMIT acks release only after the batch is durable: with the flush gated,
   N pipelined writers' replies must all be withheld; releasing the gate
   releases every ack, and the N commits share at most two flushes (the
   gated leader's window plus one takeover batch). *)
let test_acks_only_after_durability () =
  with_server ~seed:"CREATE TABLE t (a INT);" (fun db srv ->
      let eng = Database.engine db in
      let wal = Database.wal db in
      let s0 = Engine.group_commit_stats eng in
      let g = flush_gate () in
      Rss.Wal.set_flush_hook wal (Some (gate_hook g));
      let acked = Atomic.make 0 in
      let writers =
        List.init 3 (fun i ->
            Domain.spawn (fun () ->
                let c = connect srv in
                let r =
                  Client.simple c (Printf.sprintf "INSERT INTO t VALUES (%d)" i)
                in
                Atomic.incr acked;
                let ok = r.Client.error = None in
                Client.close c;
                ok))
      in
      gate_await_entered g;
      wait_until "all writers enqueued" (fun () ->
          (Engine.group_commit_stats eng).Engine.enqueued - s0.Engine.enqueued
          = 3);
      (* negative check (inherently needs a timeout): the leader is parked in
         the fsync window, so no COMMIT may have been acknowledged *)
      Unix.sleepf 0.05;
      Alcotest.(check int) "no acks while the flush is gated" 0
        (Atomic.get acked);
      gate_release g;
      let oks = List.map Domain.join writers in
      Alcotest.(check (list bool)) "every writer acked after durability"
        [ true; true; true ] oks;
      Rss.Wal.set_flush_hook wal None;
      let s1 = Engine.group_commit_stats eng in
      let flushes = s1.Engine.flushes - s0.Engine.flushes in
      let commits = s1.Engine.grouped_commits - s0.Engine.grouped_commits in
      Alcotest.(check int) "three commits" 3 commits;
      Alcotest.(check bool) "batched: fewer flushes than commits" true
        (flushes >= 1 && flushes <= 2))

(* A follower that disconnects while parked in the commit window: its commit
   is already enqueued (and becomes durable with the batch); the handler's
   failed reply write is an ordinary clean disconnect — session closed, locks
   released, server healthy. *)
let test_follower_disconnect_mid_window () =
  with_server ~seed:"CREATE TABLE t (a INT);" (fun db srv ->
      let eng = Database.engine db in
      let wal = Database.wal db in
      let s0 = Engine.group_commit_stats eng in
      let g = flush_gate () in
      Rss.Wal.set_flush_hook wal (Some (gate_hook g));
      let leader =
        Domain.spawn (fun () ->
            let c = connect srv in
            let r = Client.simple c "INSERT INTO t VALUES (1)" in
            Client.close c;
            r.Client.error = None)
      in
      gate_await_entered g;
      (* the follower pipelines its commit into the gated window ... *)
      let f = connect srv in
      Client.send f (P.Simple "INSERT INTO t VALUES (2)");
      Client.flush f;
      wait_until "follower enqueued" (fun () ->
          (Engine.group_commit_stats eng).Engine.enqueued - s0.Engine.enqueued
          = 2);
      (* ... and vanishes before its ack can be delivered *)
      Client.abandon f;
      gate_release g;
      Alcotest.(check bool) "leader acked" true (Domain.join leader);
      Rss.Wal.set_flush_hook wal None;
      (* the follower's enqueued commit stands; the dead socket only killed
         the reply. The server keeps serving, and no lock is stranded: a new
         session can write the same table immediately. *)
      let c = connect srv in
      let r = Client.ok (Client.simple c "SELECT a FROM t") in
      Alcotest.check msv "both commits durable and visible"
        (multiset [ [| V.Int 1 |]; [| V.Int 2 |] ])
        (rows_ms r);
      let r = Client.ok (Client.simple c "INSERT INTO t VALUES (3)") in
      Alcotest.(check string) "no stranded locks" "1 row inserted" r.Client.tag;
      wait_until "all tickets durable" (fun () ->
          let s = Engine.group_commit_stats eng in
          s.Engine.durable_ticket = s.Engine.enqueued);
      Client.close c)

(* A leader whose fsync fails must not strand its followers: the exception
   releases leadership, a parked follower takes over and retries the
   still-buffered batch. The failed leader's client gets a commit-uncertain
   error ("not durable"); the follower's commit — and, via the retried batch,
   the leader's record too — become durable. *)
let test_leader_failure_does_not_strand_followers () =
  with_server ~seed:"CREATE TABLE t (a INT);" (fun db srv ->
      let eng = Database.engine db in
      let wal = Database.wal db in
      let s0 = Engine.group_commit_stats eng in
      let g = flush_gate () in
      let failed_once = ref false in
      (* gate so both writers are in the window, then fail the first sync *)
      Rss.Wal.set_flush_hook wal
        (Some
           (fun () ->
             gate_hook g ();
             let first =
               Mutex.lock g.g_m;
               let f = not !failed_once in
               failed_once := true;
               Mutex.unlock g.g_m;
               f
             in
             if first then failwith "injected fsync failure"));
      let writers =
        Array.init 2 (fun i ->
            Domain.spawn (fun () ->
                let c = connect srv in
                let r =
                  Client.simple c (Printf.sprintf "INSERT INTO t VALUES (%d)" i)
                in
                (* the connection survives its statement's error *)
                let alive =
                  (Client.simple c "SELECT a FROM t").Client.error = None
                in
                Client.close c;
                (r.Client.error, alive)))
      in
      gate_await_entered g;
      wait_until "both writers enqueued" (fun () ->
          (Engine.group_commit_stats eng).Engine.enqueued - s0.Engine.enqueued
          = 2);
      gate_release g;
      let replies = Array.to_list (Array.map Domain.join writers) in
      Rss.Wal.set_flush_hook wal None;
      List.iter
        (fun (_, alive) ->
          Alcotest.(check bool) "connection survived" true alive)
        replies;
      (match List.filter_map fst replies with
       | [ e ] ->
         Alcotest.(check bool) "leader reports commit-uncertain" true
           (contains e "not durable")
       | errs ->
         Alcotest.failf "expected exactly one failed ack, got %d"
           (List.length errs));
      (* the takeover retried the whole batch: every ticket is durable *)
      let s1 = Engine.group_commit_stats eng in
      Alcotest.(check int) "no ticket stranded" s1.Engine.enqueued
        s1.Engine.durable_ticket;
      let c = connect srv in
      let r = Client.ok (Client.simple c "SELECT a FROM t") in
      Alcotest.check msv "both commits present after the retried batch"
        (multiset [ [| V.Int 0 |]; [| V.Int 1 |] ])
        (rows_ms r);
      Client.close c)

(* --- prepared-statement invalidation across sessions ----------------------- *)

let test_prepared_invalidation_cross_session () =
  with_server ~seed:"CREATE TABLE s (a INT); INSERT INTO s VALUES (1), (2), (3);"
    (fun _db srv ->
      let a = connect srv and b = connect srv in
      ignore (Client.ok (Client.parse a ~name:"q" "SELECT a FROM s WHERE a >= ?"));
      ignore (Client.ok (Client.bind a ~name:"q" [ V.Int 0 ]));
      let r = Client.ok (Client.execute a "q") in
      Alcotest.(check string) "initial" "SELECT 3" r.Client.tag;
      (* another session grows the table and moves its statistics *)
      ignore (Client.ok (Client.simple b "INSERT INTO s VALUES (4), (5)"));
      ignore (Client.ok (Client.simple b "UPDATE STATISTICS"));
      (* a's prepared plan revalidates and re-optimizes transparently *)
      let r = Client.ok (Client.execute a "q") in
      Alcotest.(check string) "revalidated plan sees new rows" "SELECT 5"
        r.Client.tag;
      Client.close a;
      Client.close b)

(* Embedded flavor: the revalidation is observable via prepared_generation. *)
let test_prepared_generation () =
  let eng = Engine.create () in
  let s1 = Session.create eng in
  let s2 = Session.create eng in
  ignore (Session.exec s1 "CREATE TABLE g (a INT)");
  ignore (Session.exec s1 "INSERT INTO g VALUES (1), (2)");
  let p = Session.prepare s1 "SELECT a FROM g WHERE a >= ?" in
  Alcotest.(check int) "fresh" 0 (Session.prepared_generation p);
  ignore (Session.execute_prepared s1 p [ V.Int 0 ]);
  Alcotest.(check int) "steady state: no re-optimize" 0
    (Session.prepared_generation p);
  Session.update_statistics s2;
  let out = Session.execute_prepared s1 p [ V.Int 0 ] in
  Alcotest.(check int) "stats moved: re-optimized once" 1
    (Session.prepared_generation p);
  Alcotest.(check int) "rows intact" 2 (List.length out.Executor.rows);
  ignore (Session.execute_prepared s1 p [ V.Int 0 ]);
  Alcotest.(check int) "steady again" 1 (Session.prepared_generation p);
  Session.close s2;
  Session.close s1

(* --- per-session counters -------------------------------------------------- *)

let test_session_counters_fold () =
  let eng = Engine.create () in
  let s0 = Session.create eng in
  ignore (Session.exec s0 "CREATE TABLE c (a INT)");
  ignore (Session.exec s0 "INSERT INTO c VALUES (1), (2), (3)");
  let base = Rss.Pager.base_counters (Engine.pager eng) in
  let base_rsi = base.Rss.Counters.rsi_calls in
  let priv = Rss.Counters.create () in
  let s1 = Session.create ~counters:priv eng in
  ignore (Session.query s1 "SELECT a FROM c WHERE a >= 0");
  Alcotest.(check bool) "session accounted" true (priv.Rss.Counters.rsi_calls > 0);
  Alcotest.(check int) "engine-global untouched while open" base_rsi
    base.Rss.Counters.rsi_calls;
  let s1_rsi = priv.Rss.Counters.rsi_calls in
  Session.close s1;
  Alcotest.(check int) "folded at close" (base_rsi + s1_rsi)
    base.Rss.Counters.rsi_calls;
  (* the default session writes the engine-global record directly *)
  ignore (Session.query s0 "SELECT a FROM c WHERE a >= 0");
  Alcotest.(check bool) "default session accounts globally" true
    (base.Rss.Counters.rsi_calls > base_rsi + s1_rsi);
  Session.close s0

(* --- multi-session differential ------------------------------------------- *)

(* Per-connection deterministic DML stream on a private table: only this
   session touches it, so a serial embedded replay of the same statements
   must agree exactly, even though the sessions run concurrently. *)
let private_dml_stmts id =
  let t = Printf.sprintf "priv%d" id in
  [ Printf.sprintf "CREATE TABLE %s (a INT, b INT)" t;
    Printf.sprintf "INSERT INTO %s VALUES %s" t
      (String.concat ", "
         (List.init 20 (fun i -> Printf.sprintf "(%d, %d)" i ((i * (id + 2)) mod 7))));
    "BEGIN";
    Printf.sprintf "INSERT INTO %s VALUES (100, 100)" t;
    "ROLLBACK";
    Printf.sprintf "DELETE FROM %s WHERE a < 5" t;
    Printf.sprintf "UPDATE %s SET b = b + 1 WHERE b >= 3" t;
    "BEGIN";
    Printf.sprintf "DELETE FROM %s WHERE b = 1" t;
    "COMMIT" ]

let private_dml_probe id = Printf.sprintf "SELECT a, b FROM priv%d" id

let test_multi_session_differential () =
  let rng = Random.State.make [| 0xD1FF; 8; 1979 |] in
  let scenario = Fuzz_gen.gen_scenario rng in
  let ddl = Fuzz_harness.ddl_script scenario in
  let nconns = 3 in
  let nqueries = 36 in
  let queries =
    List.init nqueries (fun _ ->
        Fuzz_sql.query_to_string (Fuzz_gen.gen_query rng scenario))
  in
  (* serial embedded oracle over the same schema/workload *)
  let oracle = Database.create () in
  ignore (Database.exec_script oracle ddl);
  let expect sql =
    match Database.query oracle sql with
    | out -> Ok (multiset out.Executor.rows)
    | exception Database.Error _ -> Error ()
  in
  let expected_queries = List.map (fun sql -> (sql, expect sql)) queries in
  let expected_dml =
    List.init nconns (fun id ->
        let edb = Database.create () in
        List.iter (fun s -> ignore (Database.exec edb s)) (private_dml_stmts id);
        multiset (Database.query edb (private_dml_probe id)).Executor.rows)
  in
  (* round-robin partition of the read-only workload *)
  let parts = Array.make nconns [] in
  List.iteri
    (fun i qe -> parts.(i mod nconns) <- qe :: parts.(i mod nconns))
    expected_queries;
  with_server ~seed:ddl (fun _db srv ->
      let addr = Server.addr srv in
      let run_client id =
        let c = Client.connect addr in
        let mismatches = ref [] in
        (* interleave: private DML first, then the shared read-only share,
           then the private probe — all while the other sessions run *)
        List.iter
          (fun s ->
            match (Client.simple c s).Client.error with
            | None -> ()
            | Some e -> mismatches := Printf.sprintf "dml %s: %s" s e :: !mismatches)
          (private_dml_stmts id);
        List.iter
          (fun (sql, exp) ->
            let r = Client.simple c sql in
            let got =
              match r.Client.error with
              | Some _ -> Error ()
              | None -> Ok (rows_ms r)
            in
            if got <> exp then mismatches := sql :: !mismatches)
          parts.(id);
        let probe = Client.simple c (private_dml_probe id) in
        (match probe.Client.error with
         | Some e -> mismatches := ("probe error: " ^ e) :: !mismatches
         | None ->
           if rows_ms probe <> List.nth expected_dml id then
             mismatches := Printf.sprintf "private table of session %d" id :: !mismatches);
        Client.close c;
        !mismatches
      in
      let doms = List.init nconns (fun id -> Domain.spawn (fun () -> run_client id)) in
      let bad = List.concat_map Domain.join doms in
      Alcotest.(check (list string)) "concurrent replay = serial embedded" [] bad)

let () =
  Alcotest.run "server"
    [ ( "protocol",
        [ Alcotest.test_case "encode/decode roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "malformed and truncated frames" `Quick
            test_malformed_frames ] );
      ( "simple query",
        [ Alcotest.test_case "DDL/DML/SELECT/EXPLAIN, errors" `Quick test_simple_query;
          Alcotest.test_case "per-session SET overrides" `Quick
            test_per_session_settings ] );
      ( "prepared",
        [ Alcotest.test_case "parse/bind/execute/close" `Quick test_prepared_path;
          Alcotest.test_case "portals and fetch" `Quick test_portals;
          Alcotest.test_case "cross-session invalidation" `Quick
            test_prepared_invalidation_cross_session;
          Alcotest.test_case "revalidation generation (embedded)" `Quick
            test_prepared_generation ] );
      ( "locking",
        [ Alcotest.test_case "same-tuple writers conflict, first committer wins"
            `Quick test_writer_blocks_writer;
          Alcotest.test_case "point SELECT never blocks on uncommitted writer"
            `Quick test_reader_never_blocks_on_writer;
          Alcotest.test_case "mid-txn disconnect releases locks" `Quick
            test_midtxn_disconnect_releases_locks;
          Alcotest.test_case "EPIPE on pending replies is a clean disconnect"
            `Quick test_epipe_disconnect_releases_locks;
          Alcotest.test_case "snapshot save latches and refuses active txns"
            `Quick test_snapshot_save_on_shared_engine;
          Alcotest.test_case "deadlock victim errors, survivor proceeds" `Quick
            test_deadlock_victim ] );
      ( "group commit",
        [ Alcotest.test_case "acks release only after durability" `Quick
            test_acks_only_after_durability;
          Alcotest.test_case "follower disconnect mid-window is clean" `Quick
            test_follower_disconnect_mid_window;
          Alcotest.test_case "leader failure does not strand followers" `Quick
            test_leader_failure_does_not_strand_followers ] );
      ( "sessions",
        [ Alcotest.test_case "counters fold at close" `Quick
            test_session_counters_fold ] );
      ( "differential",
        [ Alcotest.test_case "N concurrent sessions = serial embedded" `Quick
            test_multi_session_differential ] ) ]
