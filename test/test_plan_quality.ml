(* The paper's central empirical claim (section 7): "although the costs
   predicted by the optimizer are often not accurate in absolute value, the
   true optimal path is selected in a large majority of cases", and the
   estimated cost ordering frequently matches the measured ordering.

   Here we enumerate candidate plans, execute every one of them on the real
   storage (cold buffer pool), measure PAGE FETCHES + W * RSI CALLS from the
   counters, and compare against the optimizer's predictions and choice. *)

module V = Rel.Value

let w = Ctx.default_w

let dummy_env =
  { Eval.blocks = [];
    params = [||];
    subquery = (fun _ _ -> invalid_arg "no subqueries in this test") }

let measure db block (plan : Plan.t) =
  let cat = Database.catalog db in
  let pager = Catalog.pager cat in
  Rss.Pager.evict_all pager;
  let counters = Rss.Pager.counters pager in
  let before = Rss.Counters.snapshot counters in
  let cur = Cursor.open_plan cat block dummy_env ~join:None plan in
  let n = List.length (Cursor.drain cur) in
  let d = Rss.Counters.diff ~after:(Rss.Counters.snapshot counters) ~before in
  (Rss.Counters.cost ~w d, n)

let setup () =
  let db = Database.create ~buffer_pages:32 () in
  Workload.load_emp_dept_job db
    ~config:{ Workload.default_emp_config with n_emp = 4000; n_dept = 40 };
  db

let single_relation_queries =
  [ "SELECT NAME FROM EMP WHERE DNO = 17";          (* clustered index hit *)
    "SELECT NAME FROM EMP WHERE JOB = 5";           (* non-clustered hit *)
    "SELECT NAME FROM EMP WHERE SAL > 29000";       (* no index on SAL *)
    "SELECT NAME FROM EMP WHERE DNO = 17 AND JOB = 5";
    "SELECT NAME FROM EMP WHERE DNO BETWEEN 10 AND 12";
    "SELECT NAME FROM EMP WHERE JOB = 5 AND SAL > 15000";
    "SELECT NAME FROM EMP" ]

let candidates db sql =
  let block = Database.resolve db sql in
  let factors =
    List.filter
      (fun (f : Normalize.factor) -> not f.Normalize.has_subquery)
      (Normalize.factors_of_block block)
  in
  let paths = Access_path.paths (Database.ctx db) block ~factors ~tab:0 ~outer:[] in
  (block, paths)

let test_single_relation_choice () =
  let db = setup () in
  let optimal = ref 0 and total = ref 0 in
  List.iter
    (fun sql ->
      incr total;
      let block, paths = candidates db sql in
      let measured = List.map (fun p -> (p, fst (measure db block p))) paths in
      let best_measured =
        List.fold_left (fun acc (_, c) -> Float.min acc c) infinity measured
      in
      (* identical result from every path *)
      let counts = List.map (fun p -> snd (measure db block p)) paths in
      (match counts with
       | c :: rest -> List.iter (fun c' -> Alcotest.(check int) "same rows" c c') rest
       | [] -> Alcotest.fail "no paths");
      let chosen = Database.optimize db sql in
      let chosen_cost, _ = measure db block chosen.Optimizer.plan in
      if chosen_cost <= best_measured *. 1.05 then incr optimal;
      (* never catastrophically wrong *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: chosen %.1f vs best %.1f" sql chosen_cost best_measured)
        true
        (chosen_cost <= best_measured *. 3.0))
    single_relation_queries;
  (* "the true optimal path is selected in a large majority of cases" *)
  Alcotest.(check bool)
    (Printf.sprintf "optimal in %d/%d" !optimal !total)
    true
    (float_of_int !optimal >= 0.7 *. float_of_int !total)

let test_estimate_ordering_agreement () =
  let db = setup () in
  let agree = ref 0 and total = ref 0 in
  List.iter
    (fun sql ->
      let block, paths = candidates db sql in
      let pairs =
        List.map
          (fun (p : Plan.t) ->
            (Cost_model.total ~w p.Plan.cost, fst (measure db block p)))
          paths
      in
      let rec all_pairs = function
        | [] -> []
        | x :: rest -> List.map (fun y -> (x, y)) rest @ all_pairs rest
      in
      List.iter
        (fun ((e1, m1), (e2, m2)) ->
          if abs_float (e1 -. e2) > 1e-9 && abs_float (m1 -. m2) > 1e-9 then begin
            incr total;
            if (e1 < e2) = (m1 < m2) then incr agree
          end)
        (all_pairs pairs))
    single_relation_queries;
  Alcotest.(check bool)
    (Printf.sprintf "ordering agreement %d/%d" !agree !total)
    true
    (!total > 0 && float_of_int !agree >= 0.7 *. float_of_int !total)

let join_queries =
  [ "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND LOC = 'DENVER'";
    "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND SAL > 28000";
    "SELECT NAME FROM EMP, JOB WHERE EMP.JOB = JOB.JOB AND TITLE = 'CLERK'";
    "SELECT NAME FROM EMP, DEPT, JOB WHERE EMP.DNO = DEPT.DNO AND EMP.JOB = \
     JOB.JOB AND TITLE = 'CLERK' AND LOC = 'DENVER'" ]

let test_join_choice_near_best_retained () =
  let db = setup () in
  List.iter
    (fun sql ->
      let r = Database.optimize db sql in
      let block = r.Optimizer.block in
      let n = List.length block.Semant.tables in
      let full = List.init n Fun.id in
      let finals =
        List.concat_map
          (fun (tabs, plans) -> if List.sort compare tabs = full then plans else [])
          r.Optimizer.search.Join_enum.dp_table
      in
      Alcotest.(check bool) "several retained" true (List.length finals >= 1);
      let measured = List.map (fun p -> fst (measure db block p)) finals in
      let best = List.fold_left Float.min infinity measured in
      let chosen_cost, chosen_rows = measure db block r.Optimizer.plan in
      (* answers agree across retained plans *)
      List.iter
        (fun p ->
          Alcotest.(check int) "same answer" chosen_rows (snd (measure db block p)))
        finals;
      Alcotest.(check bool)
        (Printf.sprintf "%s: chosen %.1f vs best retained %.1f" sql chosen_cost best)
        true
        (chosen_cost <= best *. 2.0 +. 5.))
    join_queries

let test_heuristic_tradeoff () =
  (* The Cartesian-deferral heuristic cuts the search space but can miss
     plans that start with a tiny cross product — the classic star-query
     blind spot, visible on the Figure 1 query itself: JOB x DEPT is 1 x 4
     rows after the local predicates, and probing EMP's DNO index from that
     product beats every join-predicate-connected order. Both searches must
     return the same answer; the heuristic must pay for its speed only in
     plan quality, never correctness. *)
  let db = setup () in
  let sql =
    "SELECT NAME FROM EMP, DEPT, JOB WHERE EMP.DNO = DEPT.DNO AND EMP.JOB = \
     JOB.JOB AND TITLE = 'CLERK' AND LOC = 'DENVER'"
  in
  (* hold branch-and-bound fixed (off) for the search-space comparison: the
     bound an exhaustive greedy seed finds can prune harder than the
     heuristic's smaller candidate set, confounding the ablation *)
  let ctx_h = Ctx.create ~use_bnb:false (Database.catalog db) in
  let with_h = Database.optimize ~ctx:ctx_h db sql in
  let ctx = Ctx.create ~use_heuristic:false ~use_bnb:false (Database.catalog db) in
  let without_h = Database.optimize ~ctx db sql in
  Alcotest.(check bool) "heuristic searches less" true
    (with_h.Optimizer.search.Join_enum.plans_considered
     < without_h.Optimizer.search.Join_enum.plans_considered);
  (* and branch-and-bound only ever shrinks the space *)
  let with_bnb = Database.optimize db sql in
  Alcotest.(check bool) "bnb searches less" true
    (with_bnb.Optimizer.search.Join_enum.plans_considered
     < with_h.Optimizer.search.Join_enum.plans_considered);
  Alcotest.(check string) "bnb same plan"
    (Plan.describe with_h.Optimizer.plan)
    (Plan.describe with_bnb.Optimizer.plan);
  let block = with_h.Optimizer.block in
  let c1, n1 = measure db block with_h.Optimizer.plan in
  let c2, n2 = measure db block without_h.Optimizer.plan in
  Alcotest.(check int) "same answer" n1 n2;
  (* the exhaustive search never does worse than the heuristic one *)
  Alcotest.(check bool) "exhaustive at least as good" true (c2 <= c1 +. 1e-9)

let () =
  Alcotest.run "plan_quality"
    [ ( "s7",
        [ Alcotest.test_case "single-relation optimality" `Quick
            test_single_relation_choice;
          Alcotest.test_case "estimate ordering agreement" `Quick
            test_estimate_ordering_agreement;
          Alcotest.test_case "join choice near best" `Quick
            test_join_choice_near_best_retained;
          Alcotest.test_case "heuristic tradeoff" `Quick test_heuristic_tradeoff ] ) ]
