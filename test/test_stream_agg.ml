(* Differential test for streaming aggregation: random NULL-heavy tables,
   aggregate/grouped queries run through the full pipeline in both evaluation
   modes, results compared against the independent Naive_eval oracle (cross
   product + list-based grouping — nothing shared with the executor's
   single-pass accumulators). NULL density is the point: star-COUNT vs
   column-COUNT, SUM/AVG/MIN/MAX over mostly-NULL columns, and all-NULL
   groups exercise exactly the accumulator edge cases (seen = 0 => NULL,
   Count => 0). *)

module V = Rel.Value
module T = Rel.Tuple

let schema cols =
  Rel.Schema.make (List.map (fun n -> { Rel.Schema.name = n; ty = V.Tint }) cols)

(* R(G, H, X, Y): G/H tiny group domains; X ~60% NULL, Y ~30% NULL. *)
let setup ~seed ~rows =
  let rng = Random.State.make [| seed; 0xa66 |] in
  let db = Database.create ~buffer_pages:16 () in
  let cat = Database.catalog db in
  let r = Catalog.create_relation cat ~name:"R" ~schema:(schema [ "G"; "H"; "X"; "Y" ]) in
  for _ = 1 to rows do
    let maybe_null pct v = if Random.State.int rng 100 < pct then V.Null else V.Int v in
    ignore
      (Catalog.insert_tuple cat r
         (T.make
            [ V.Int (Random.State.int rng 5);
              V.Int (Random.State.int rng 3);
              maybe_null 60 (Random.State.int rng 50 - 25);
              maybe_null 30 (Random.State.int rng 100) ]))
  done;
  Catalog.update_statistics cat;
  db

let row_bytes row =
  let b = Buffer.create 64 in
  T.write b row;
  Buffer.contents b

let canon rows =
  List.sort
    (fun a b ->
      let n = min (T.arity a) (T.arity b) in
      T.compare_on (List.init n Fun.id) a b)
    rows

let rows_bytes rows = String.concat "|" (List.map row_bytes (canon rows))

let corpus =
  [ "SELECT COUNT(*), COUNT(X), SUM(X), MIN(X), MAX(X), AVG(X) FROM R";
    "SELECT SUM(Y), AVG(Y), MIN(Y), MAX(Y) FROM R WHERE X > 0";
    "SELECT COUNT(X) FROM R WHERE G = 99";
    "SELECT G, COUNT(*), COUNT(X), SUM(X), MIN(X), MAX(Y), AVG(X) FROM R GROUP BY G";
    "SELECT G, H, SUM(X + Y), COUNT(*) FROM R GROUP BY G, H";
    "SELECT H, SUM(X * 2 + Y) FROM R WHERE Y > 10 GROUP BY H";
    "SELECT G, AVG(X), MAX(X) FROM R WHERE X <> 0 GROUP BY G ORDER BY G DESC";
    "SELECT G, COUNT(Y) FROM R WHERE NOT (Y BETWEEN 10 AND 60) GROUP BY G" ]

let check db sql =
  let block = Database.resolve db sql in
  let r = Database.optimize db sql in
  let cat = Database.catalog db in
  let expected = rows_bytes (Naive_eval.query cat block) in
  List.iter
    (fun compiled ->
      let got = rows_bytes (Executor.run ~compiled cat r).Executor.rows in
      if got <> expected then
        Alcotest.fail
          (Printf.sprintf "%s (compiled=%b) disagrees with naive oracle" sql compiled))
    [ true; false ]

let test_random_corpora () =
  List.iter
    (fun seed ->
      let db = setup ~seed ~rows:(150 + (seed * 37 mod 100)) in
      List.iter (check db) corpus)
    [ 1; 2; 3; 4; 5 ]

(* A table whose aggregate column is entirely NULL: every group must report
   a positive star-count, a zero column-count and NULL for SUM/AVG/MIN/MAX. *)
let test_all_null_column () =
  let db = Database.create () in
  let cat = Database.catalog db in
  let r = Catalog.create_relation cat ~name:"R" ~schema:(schema [ "G"; "X" ]) in
  for i = 0 to 29 do
    ignore (Catalog.insert_tuple cat r (T.make [ V.Int (i mod 3); V.Null ]))
  done;
  Catalog.update_statistics cat;
  List.iter (check db)
    [ "SELECT COUNT(*), COUNT(X), SUM(X), AVG(X), MIN(X), MAX(X) FROM R";
      "SELECT G, COUNT(*), COUNT(X), SUM(X), AVG(X), MIN(X), MAX(X) FROM R GROUP BY G" ]

(* Empty input: scalar aggregates must produce their defined empty-set row. *)
let test_empty_input () =
  let db = Database.create () in
  let cat = Database.catalog db in
  let _ = Catalog.create_relation cat ~name:"R" ~schema:(schema [ "G"; "X" ]) in
  Catalog.update_statistics cat;
  List.iter (check db)
    [ "SELECT COUNT(*), SUM(X), MIN(X) FROM R";
      "SELECT G, COUNT(*) FROM R GROUP BY G" ]

let () =
  Alcotest.run "stream_agg"
    [ ( "differential",
        [ Alcotest.test_case "NULL-heavy random corpora" `Quick test_random_corpora;
          Alcotest.test_case "all-NULL aggregate column" `Quick test_all_null_column;
          Alcotest.test_case "empty input" `Quick test_empty_input ] ) ]
