module A = Ast
module V = Rel.Value

let parse = Parser.parse_query
let parse_stmt = Parser.parse_statement

let test_lexer_basics () =
  let toks = Lexer.tokenize "SELECT x, 42, 3.5, 'it''s' FROM t -- comment\n;" in
  let kinds = List.map fst toks in
  Alcotest.(check bool) "keyword" true (List.mem (Lexer.Kw "SELECT") kinds);
  Alcotest.(check bool) "ident" true (List.mem (Lexer.Ident "x") kinds);
  Alcotest.(check bool) "int" true (List.mem (Lexer.Int_lit 42) kinds);
  Alcotest.(check bool) "float" true (List.mem (Lexer.Float_lit 3.5) kinds);
  Alcotest.(check bool) "escaped quote" true (List.mem (Lexer.Str_lit "it's") kinds);
  Alcotest.(check bool) "comment skipped" true
    (not (List.exists (function Lexer.Ident "comment" -> true | _ -> false) kinds));
  Alcotest.(check bool) "eof last" true (List.rev kinds |> List.hd = Lexer.Eof)

let test_lexer_operators () =
  let ops s = List.filter_map (function Lexer.Sym x, _ -> Some x | _ -> None) (Lexer.tokenize s) in
  Alcotest.(check (list string)) "comparison ops" [ "<="; ">="; "<>"; "<>"; "<"; ">"; "=" ]
    (ops "<= >= <> != < > =")

let test_lexer_errors () =
  (match Lexer.tokenize "SELECT 'unterminated" with
   | _ -> Alcotest.fail "unterminated accepted"
   | exception Lexer.Error _ -> ());
  (match Lexer.tokenize "a @ b" with
   | _ -> Alcotest.fail "illegal char accepted"
   | exception Lexer.Error _ -> ())

let test_simple_select () =
  let q = parse "SELECT NAME, SAL FROM EMP WHERE SAL > 100" in
  Alcotest.(check int) "two items" 2 (List.length q.A.select);
  Alcotest.(check int) "one table" 1 (List.length q.A.from);
  (match q.A.where with
   | Some (A.Cmp (A.Col { column = "SAL"; _ }, A.Gt, A.Const (V.Int 100))) -> ()
   | _ -> Alcotest.fail "where shape")

let test_star_and_aliases () =
  let q = parse "SELECT * FROM EMP E, DEPT" in
  Alcotest.(check bool) "star" true (q.A.select = [ A.Star ]);
  Alcotest.(check bool) "alias" true (q.A.from = [ ("EMP", Some "E"); ("DEPT", None) ]);
  let q2 = parse "SELECT SAL + 1 AS BUMP, SAL TOTAL FROM EMP" in
  (match q2.A.select with
   | [ A.Sel_expr (_, Some "BUMP"); A.Sel_expr (_, Some "TOTAL") ] -> ()
   | _ -> Alcotest.fail "aliases")

let test_precedence_and_or_not () =
  (* NOT binds tighter than AND, AND tighter than OR *)
  let q = parse "SELECT * FROM T WHERE NOT A = 1 AND B = 2 OR C = 3" in
  (match q.A.where with
   | Some (A.Or (A.And (A.Not _, _), A.Cmp (A.Col { column = "C"; _ }, A.Eq, _))) -> ()
   | _ -> Alcotest.fail "precedence shape")

let test_arith_precedence () =
  let q = parse "SELECT A + B * C FROM T" in
  (match q.A.select with
   | [ A.Sel_expr (A.Binop (A.Add, _, A.Binop (A.Mul, _, _)), None) ] -> ()
   | _ -> Alcotest.fail "mul binds tighter");
  let q2 = parse "SELECT (A + B) * C FROM T" in
  (match q2.A.select with
   | [ A.Sel_expr (A.Binop (A.Mul, A.Binop (A.Add, _, _), _), None) ] -> ()
   | _ -> Alcotest.fail "parens")

let test_between_in () =
  let q = parse "SELECT * FROM T WHERE A BETWEEN 1 AND 10 AND B IN (1, 2, 3)" in
  (match q.A.where with
   | Some (A.And (A.Between _, A.In_list (_, [ V.Int 1; V.Int 2; V.Int 3 ]))) -> ()
   | _ -> Alcotest.fail "between/in shape")

let test_subqueries () =
  let q =
    parse
      "SELECT NAME FROM EMPLOYEE WHERE SALARY = (SELECT AVG(SALARY) FROM EMPLOYEE)"
  in
  (match q.A.where with
   | Some (A.Cmp_subquery (_, A.Eq, sub)) ->
     (match sub.A.select with
      | [ A.Sel_expr (A.Agg (A.Avg, _), None) ] -> ()
      | _ -> Alcotest.fail "subquery agg")
   | _ -> Alcotest.fail "scalar subquery");
  let q2 =
    parse
      "SELECT NAME FROM EMPLOYEE WHERE DNO IN (SELECT DNO FROM DEPT WHERE \
       LOC = 'DENVER')"
  in
  (match q2.A.where with
   | Some (A.In_subquery (_, _, false)) -> ()
   | _ -> Alcotest.fail "IN subquery");
  let q3 = parse "SELECT NAME FROM E WHERE DNO NOT IN (SELECT DNO FROM D)" in
  (match q3.A.where with
   | Some (A.In_subquery (_, _, true)) -> ()
   | _ -> Alcotest.fail "NOT IN subquery")

let test_group_order () =
  let q =
    parse "SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO ORDER BY DNO DESC, SAL"
  in
  Alcotest.(check int) "group cols" 1 (List.length q.A.group_by);
  (match q.A.order_by with
   | [ (_, A.Desc); (_, A.Asc) ] -> ()
   | _ -> Alcotest.fail "order dirs")

let test_count_star_and_negatives () =
  let q = parse "SELECT COUNT(*) FROM T WHERE A = -5 AND B > -2.5" in
  (match q.A.select with
   | [ A.Sel_expr (A.Agg (A.Count, _), None) ] -> ()
   | _ -> Alcotest.fail "count(*)");
  (match q.A.where with
   | Some (A.And (A.Cmp (_, A.Eq, A.Const (V.Int (-5))), A.Cmp (_, A.Gt, A.Const (V.Float -2.5)))) -> ()
   | _ -> Alcotest.fail "negative literals")

let test_parenthesized_predicates () =
  let q = parse "SELECT * FROM T WHERE (A = 1 OR B = 2) AND C = 3" in
  (match q.A.where with
   | Some (A.And (A.Or _, A.Cmp _)) -> ()
   | _ -> Alcotest.fail "paren pred");
  (* parenthesized expression on the left of a comparison still works *)
  let q2 = parse "SELECT * FROM T WHERE (A + B) > 3" in
  (match q2.A.where with
   | Some (A.Cmp (A.Binop (A.Add, _, _), A.Gt, _)) -> ()
   | _ -> Alcotest.fail "paren expr")

let test_statements () =
  (match parse_stmt "CREATE TABLE T (A INT, B STRING, C FLOAT)" with
   | A.Create_table { table = "T"; columns } ->
     Alcotest.(check int) "cols" 3 (List.length columns)
   | _ -> Alcotest.fail "create table");
  (match parse_stmt "CREATE CLUSTERED INDEX I ON T (A, B)" with
   | A.Create_index { clustered = true; columns = [ "A"; "B" ]; _ } -> ()
   | _ -> Alcotest.fail "create index");
  (match parse_stmt "INSERT INTO T VALUES (1, 'x'), (2, NULL)" with
   | A.Insert { values = [ [ V.Int 1; V.Str "x" ]; [ V.Int 2; V.Null ] ]; _ } -> ()
   | _ -> Alcotest.fail "insert");
  (match parse_stmt "DELETE FROM T WHERE A = 1" with
   | A.Delete { where = Some _; _ } -> ()
   | _ -> Alcotest.fail "delete");
  (match parse_stmt "UPDATE STATISTICS" with
   | A.Update_statistics -> ()
   | _ -> Alcotest.fail "update statistics");
  (match parse_stmt "UPDATE T SET A = A + 1, B = 'x' WHERE A > 3" with
   | A.Update { table = "T"; sets = [ ("A", A.Binop _); ("B", A.Const _) ];
                where = Some _ } -> ()
   | _ -> Alcotest.fail "update");
  (match parse_stmt "SET COMMIT_DELAY 200" with
   | A.Set_commit_delay 200 -> ()
   | _ -> Alcotest.fail "set commit_delay");
  (match parse_stmt "SET GROUP_COMMIT OFF" with
   | A.Set_group_commit false -> ()
   | _ -> Alcotest.fail "set group_commit");
  (match parse_stmt "BEGIN TRANSACTION" with
   | A.Begin_transaction -> ()
   | _ -> Alcotest.fail "begin");
  (match parse_stmt "COMMIT" with
   | A.Commit -> ()
   | _ -> Alcotest.fail "commit");
  (match parse_stmt "ROLLBACK" with
   | A.Rollback -> ()
   | _ -> Alcotest.fail "rollback");
  (match parse_stmt "EXPLAIN SELECT * FROM T" with
   | A.Explain _ -> ()
   | _ -> Alcotest.fail "explain")

let test_char_varchar_aliases () =
  (* CHAR(n) / VARCHAR(n) are aliases for STRING; the length is accepted and
     ignored (strings are stored variable-length) *)
  (match parse_stmt "CREATE TABLE T (A INT, B CHAR(8), C VARCHAR(32), D varchar(1), E CHAR)" with
   | A.Create_table { table = "T"; columns } ->
     Alcotest.(check (list string))
       "types"
       [ "INT"; "STRING"; "STRING"; "STRING"; "STRING" ]
       (List.map (fun (c : A.column_def) -> V.ty_to_string c.A.col_ty) columns)
   | _ -> Alcotest.fail "create table with char/varchar");
  (* a non-positive or missing length inside parentheses is rejected *)
  let bad s =
    match parse_stmt s with
    | _ -> Alcotest.fail ("accepted: " ^ s)
    | exception Parser.Error _ -> ()
  in
  bad "CREATE TABLE T (B CHAR(0))";
  bad "CREATE TABLE T (B CHAR(-3))";
  bad "CREATE TABLE T (B VARCHAR())";
  bad "CREATE TABLE T (B VARCHAR(x))"

let test_script () =
  let stmts = Parser.parse_script "CREATE TABLE T (A INT); INSERT INTO T VALUES (1);" in
  Alcotest.(check int) "two statements" 2 (List.length stmts)

let test_syntax_errors () =
  let bad s =
    match parse_stmt s with
    | _ -> Alcotest.fail ("accepted: " ^ s)
    | exception Parser.Error _ -> ()
  in
  bad "SELECT";
  bad "SELECT * FROM";
  bad "SELECT * FROM T WHERE";
  bad "SELECT * FROM T WHERE A >";
  bad "SELECT * FROM T GROUP DNO";
  bad "CREATE TABLE T ()";
  bad "INSERT INTO T VALUES (A)";
  bad "SELECT * FROM T; garbage"

(* --- pretty-print / re-parse roundtrip -------------------------------- *)

let ident_gen = QCheck.Gen.(map (fun i -> Printf.sprintf "C%d" i) (int_bound 5))

let expr_gen =
  QCheck.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n = 0 then
              oneof
                [ map (fun c -> A.Col { table = None; column = c }) ident_gen;
                  map (fun i -> A.Const (V.Int i)) (int_bound 100) ]
            else
              frequency
                [ (2, map (fun c -> A.Col { table = None; column = c }) ident_gen);
                  ( 1,
                    map3
                      (fun op a b -> A.Binop (op, a, b))
                      (oneofl [ A.Add; A.Sub; A.Mul ])
                      (self (n / 2)) (self (n / 2)) ) ])
          (min n 4)))

let pred_gen =
  QCheck.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n = 0 then
              map3
                (fun a c b -> A.Cmp (a, c, b))
                expr_gen
                (oneofl [ A.Eq; A.Ne; A.Lt; A.Le; A.Gt; A.Ge ])
                expr_gen
            else
              frequency
                [ ( 2,
                    map3
                      (fun a c b -> A.Cmp (a, c, b))
                      expr_gen
                      (oneofl [ A.Eq; A.Lt; A.Gt ])
                      expr_gen );
                  (1, map2 (fun a b -> A.And (a, b)) (self (n / 2)) (self (n / 2)));
                  (1, map2 (fun a b -> A.Or (a, b)) (self (n / 2)) (self (n / 2)));
                  (1, map (fun a -> A.Not a) (self (n / 2))) ])
          (min n 5)))

let query_of_pred p =
  { A.select = [ A.Star ];
    from = [ ("T", None) ];
    where = Some p;
    group_by = [];
    order_by = [] }

let rec expr_equal a b =
  match a, b with
  | A.Col { table = t1; column = c1 }, A.Col { table = t2; column = c2 } ->
    t1 = t2 && c1 = c2
  | A.Const x, A.Const y -> V.equal x y
  | A.Binop (o1, a1, b1), A.Binop (o2, a2, b2) ->
    o1 = o2 && expr_equal a1 a2 && expr_equal b1 b2
  | A.Agg (f1, e1), A.Agg (f2, e2) -> f1 = f2 && expr_equal e1 e2
  | A.Param i, A.Param j -> i = j
  | (A.Col _ | A.Const _ | A.Binop _ | A.Agg _ | A.Param _), _ -> false

let rec pred_equal a b =
  match a, b with
  | A.Cmp (a1, c1, b1), A.Cmp (a2, c2, b2) ->
    c1 = c2 && expr_equal a1 a2 && expr_equal b1 b2
  | A.And (a1, b1), A.And (a2, b2) | A.Or (a1, b1), A.Or (a2, b2) ->
    pred_equal a1 a2 && pred_equal b1 b2
  | A.Not a1, A.Not a2 -> pred_equal a1 a2
  | _ -> false

let prop_pp_roundtrip =
  QCheck.Test.make ~name:"pp then parse is identity" ~count:300
    (QCheck.make
       ~print:(fun p -> Format.asprintf "%a" A.pp_predicate p)
       pred_gen)
    (fun p ->
      let sql = Format.asprintf "%a" A.pp_query (query_of_pred p) in
      match (parse sql).A.where with
      | Some p' -> pred_equal p p'
      | None -> false)

let () =
  Alcotest.run "parser"
    [ ( "lexer",
        [ Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "errors" `Quick test_lexer_errors ] );
      ( "parser",
        [ Alcotest.test_case "simple select" `Quick test_simple_select;
          Alcotest.test_case "star and aliases" `Quick test_star_and_aliases;
          Alcotest.test_case "boolean precedence" `Quick test_precedence_and_or_not;
          Alcotest.test_case "arith precedence" `Quick test_arith_precedence;
          Alcotest.test_case "between/in" `Quick test_between_in;
          Alcotest.test_case "subqueries" `Quick test_subqueries;
          Alcotest.test_case "group/order" `Quick test_group_order;
          Alcotest.test_case "count(*) and negatives" `Quick test_count_star_and_negatives;
          Alcotest.test_case "parenthesized predicates" `Quick test_parenthesized_predicates;
          Alcotest.test_case "statements" `Quick test_statements;
          Alcotest.test_case "char/varchar type aliases" `Quick
            test_char_varchar_aliases;
          Alcotest.test_case "script" `Quick test_script;
          Alcotest.test_case "syntax errors" `Quick test_syntax_errors ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_pp_roundtrip ]) ]
