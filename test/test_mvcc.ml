(* MVCC snapshot isolation: pinned interleavings driven through two embedded
   Session.t values over one unlatched engine (the deterministic-scheduler
   harness — a blocked 2PL request errors immediately instead of waiting),
   plus the seeded interleaved-history differential fuzz smoke
   (Fuzz_mvcc). *)

let msv = Alcotest.(list string)
let multiset = Fuzz_harness.multiset

let setup script =
  let db = Database.create () in
  ignore (Database.exec_script db script);
  let eng = Database.engine db in
  (db, Session.create eng, Session.create eng)

let rows s sql =
  match Session.exec s sql with
  | Session.Rows out -> multiset out.Executor.rows
  | _ -> Alcotest.failf "expected rows from %s" sql

let tag s sql =
  match Session.exec s sql with
  | Session.Done t -> t
  | _ -> Alcotest.failf "expected a command tag from %s" sql

let expect_error ~containing s sql =
  match Session.exec s sql with
  | _ -> Alcotest.failf "%s should have failed" sql
  | exception Session.Error e ->
    if not (Fuzz_mvcc.contains e containing) then
      Alcotest.failf "%s failed with %S, expected it to mention %S" sql e
        containing

(* An open transaction reads its snapshot: concurrent committed inserts and
   deletes stay invisible until its own COMMIT starts a fresh view. *)
let test_reads_see_snapshot () =
  let _db, s1, s2 =
    setup "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2);"
  in
  ignore (tag s1 "BEGIN");
  Alcotest.check msv "initial view" [ "1"; "2" ] (rows s1 "SELECT a FROM t");
  ignore (tag s2 "INSERT INTO t VALUES (3)");
  ignore (tag s2 "DELETE FROM t WHERE a = 2");
  Alcotest.check msv "s2 sees its own commits" [ "1"; "3" ]
    (rows s2 "SELECT a FROM t");
  Alcotest.check msv "s1 still reads its snapshot" [ "1"; "2" ]
    (rows s1 "SELECT a FROM t");
  ignore (tag s1 "COMMIT");
  Alcotest.check msv "fresh statement snapshot after commit" [ "1"; "3" ]
    (rows s1 "SELECT a FROM t")

(* Write-write on the same tuple: with the engine unlatched the second
   writer cannot wait, so the tuple lock reports an immediate conflict. *)
let test_write_write_lock_conflict () =
  let _db, s1, s2 = setup "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);" in
  ignore (tag s1 "BEGIN");
  Alcotest.check Alcotest.string "s1 marks the tuple" "1 row deleted"
    (tag s1 "DELETE FROM t WHERE a = 1");
  expect_error ~containing:"locked" s2 "DELETE FROM t WHERE a = 1";
  ignore (tag s1 "ROLLBACK");
  Alcotest.check Alcotest.string "released after rollback" "1 row deleted"
    (tag s2 "DELETE FROM t WHERE a = 1");
  Alcotest.check msv "gone" [] (rows s1 "SELECT a FROM t")

(* First committer wins: a snapshot-visible victim deleted by an
   already-committed rival is a serialization failure, not a silent no-op. *)
let test_first_committer_wins () =
  let _db, s1, s2 = setup "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);" in
  ignore (tag s1 "BEGIN");
  ignore (tag s2 "BEGIN");
  Alcotest.check Alcotest.string "s1 deletes" "1 row deleted"
    (tag s1 "DELETE FROM t WHERE a = 1");
  ignore (tag s1 "COMMIT");
  (* s2's snapshot predates s1's commit, so the victim is still visible *)
  Alcotest.check msv "s2 still sees the row" [ "1" ] (rows s2 "SELECT a FROM t");
  expect_error ~containing:"serialize" s2 "DELETE FROM t WHERE a = 1";
  ignore (tag s2 "ROLLBACK")

(* VACUUM under a live reader: the open snapshot pins the horizon, so the
   deleted version survives (and stays visible to the reader) until the
   reader commits. *)
let test_vacuum_under_reader () =
  let db, s1, s2 = setup "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);" in
  ignore (tag s1 "BEGIN");
  Alcotest.check msv "reader sees the row" [ "1" ] (rows s1 "SELECT a FROM t");
  Alcotest.check Alcotest.string "writer deletes underneath" "1 row deleted"
    (tag s2 "DELETE FROM t WHERE a = 1");
  Alcotest.check Alcotest.string "horizon pinned: nothing reclaimable"
    "0 dead versions reclaimed" (tag s2 "VACUUM");
  Alcotest.check msv "reader still sees the row" [ "1" ]
    (rows s1 "SELECT a FROM t");
  ignore (tag s1 "COMMIT");
  Alcotest.check msv "post-commit view is current" []
    (rows s1 "SELECT a FROM t");
  Alcotest.check Alcotest.string "horizon advanced: version reclaimed"
    "1 dead version reclaimed" (tag s2 "VACUUM");
  Alcotest.check msv "still gone" [] (rows s1 "SELECT a FROM t");
  (match Database.check_integrity db with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "integrity after vacuum: %s" msg)

(* INSERT takes no tuple locks (the uncommitted version is invisible to
   everyone else), so concurrent inserters into one table never conflict. *)
let test_concurrent_inserts_no_conflict () =
  let _db, s1, s2 = setup "CREATE TABLE t (a INT);" in
  ignore (tag s1 "BEGIN");
  ignore (tag s2 "BEGIN");
  ignore (tag s1 "INSERT INTO t VALUES (1)");
  ignore (tag s2 "INSERT INTO t VALUES (2)");
  Alcotest.check msv "s1 sees only its own" [ "1" ] (rows s1 "SELECT a FROM t");
  Alcotest.check msv "s2 sees only its own" [ "2" ] (rows s2 "SELECT a FROM t");
  ignore (tag s1 "COMMIT");
  ignore (tag s2 "COMMIT");
  Alcotest.check msv "both committed" [ "1"; "2" ] (rows s1 "SELECT a FROM t")

(* --- seeded interleaved-history fuzz smoke ------------------------------- *)

let fail_divergence h (d : Fuzz_mvcc.divergence) =
  Alcotest.failf
    "MVCC history diverged at step %d (session %d)\nsql: %s\n%s\nexpected: %s\nactual:   %s\nreproducer:\n%s"
    d.Fuzz_mvcc.v_step d.Fuzz_mvcc.v_session d.Fuzz_mvcc.v_sql
    d.Fuzz_mvcc.v_detail d.Fuzz_mvcc.v_expected d.Fuzz_mvcc.v_actual
    (Fuzz_mvcc.reproducer h)

let fuzz_smoke n seed () =
  for i = 0 to n - 1 do
    let rng = Workload.rand_init (seed + i) in
    let h = Fuzz_mvcc.gen_history rng in
    match Fuzz_mvcc.run h with
    | None -> ()
    | Some _ ->
      let h', _steps = Fuzz_mvcc.shrink ~max_steps:150 h in
      (match Fuzz_mvcc.run h' with
       | Some d -> fail_divergence h' d
       | None ->
         (* shrinking is advisory; report the original if it went flaky *)
         (match Fuzz_mvcc.run h with
          | Some d -> fail_divergence h d
          | None -> ()))
  done

let () =
  Alcotest.run "mvcc"
    [ ( "snapshot-isolation",
        [ Alcotest.test_case "open txn reads its snapshot" `Quick
            test_reads_see_snapshot;
          Alcotest.test_case "write-write conflict is immediate when unlatched"
            `Quick test_write_write_lock_conflict;
          Alcotest.test_case "first committer wins" `Quick
            test_first_committer_wins;
          Alcotest.test_case "VACUUM respects the oldest snapshot" `Quick
            test_vacuum_under_reader;
          Alcotest.test_case "concurrent inserts never conflict" `Quick
            test_concurrent_inserts_no_conflict ] );
      ( "interleaved-fuzz",
        [ Alcotest.test_case "seeded histories vs model oracle" `Slow
            (fuzz_smoke 150 5200) ] ) ]
