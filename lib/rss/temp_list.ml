type chunk = {
  page_id : int;
  mutable tuples : Rel.Tuple.t list;  (* reverse order while filling *)
  mutable bytes : int;
}

type t = {
  pager : Pager.t;
  mutable chunks : chunk list;  (* reverse order while filling *)
  mutable sealed : Rel.Tuple.t array array option;  (* per page, fill order *)
  mutable len : int;
}

let create pager = { pager; chunks = []; sealed = None; len = 0 }

let new_chunk t =
  let c = { page_id = Pager.alloc_page_id t.pager; tuples = []; bytes = 16 } in
  Pager.note_page_written t.pager;
  t.chunks <- c :: t.chunks;
  c

let append t tuple =
  if t.sealed <> None then invalid_arg "Temp_list.append: list is frozen";
  let sz = Rel.Tuple.serialized_size tuple + 4 in
  let chunk =
    match t.chunks with
    | c :: _ when c.bytes + sz <= Page.size -> c
    | _ -> new_chunk t
  in
  chunk.tuples <- tuple :: chunk.tuples;
  chunk.bytes <- chunk.bytes + sz;
  t.len <- t.len + 1

let freeze t =
  match t.sealed with
  | Some _ -> ()
  | None ->
    (* chunks are kept newest-first; rev_map restores fill order *)
    let pages =
      t.chunks
      |> List.rev_map (fun c -> Array.of_list (List.rev c.tuples))
      |> Array.of_list
    in
    t.sealed <- Some pages

let of_seq pager seq =
  let t = create pager in
  Seq.iter (append t) seq;
  freeze t;
  t

(* Seal an already-complete tuple array without per-tuple list traffic: the
   array is sliced at page-size boundaries and the slices become the sealed
   pages directly (chunk tuple lists stay empty — they are never read once
   [sealed] is set). Same page-cut rule as [append]. *)
let of_array pager arr =
  let t = create pager in
  let n = Array.length arr in
  let pages = ref [] in  (* reverse fill order, matching t.chunks *)
  let start = ref 0 in
  let bytes = ref 16 in
  let cut stop =
    let c = { page_id = Pager.alloc_page_id t.pager; tuples = []; bytes = !bytes } in
    Pager.note_page_written t.pager;
    t.chunks <- c :: t.chunks;
    pages := Array.sub arr !start (stop - !start) :: !pages;
    start := stop;
    bytes := 16
  in
  for i = 0 to n - 1 do
    let sz = Rel.Tuple.serialized_size (Array.unsafe_get arr i) + 4 in
    if !bytes + sz > Page.size && i > !start then cut i;
    bytes := !bytes + sz
  done;
  if n > !start then cut n;
  t.sealed <- Some (Array.of_list (List.rev !pages));
  t.len <- n;
  t

(* Seal a tuple stream without knowing its length up front: tuples land in a
   doubling page buffer that is cut to an exact page array at each page-size
   boundary. Only page-sized arrays are ever allocated (no whole-list
   materialization), so a merge can pipe straight into the output list. *)
let of_dispenser pager next =
  let t = create pager in
  let pages = ref [] in  (* reverse fill order, matching t.chunks *)
  let buf = ref (Array.make 64 [||]) in
  let len = ref 0 in
  let bytes = ref 16 in
  let n = ref 0 in
  let seal_page () =
    if !len > 0 then begin
      let c = { page_id = Pager.alloc_page_id t.pager; tuples = []; bytes = !bytes } in
      Pager.note_page_written t.pager;
      t.chunks <- c :: t.chunks;
      pages := Array.sub !buf 0 !len :: !pages;
      len := 0;
      bytes := 16
    end
  in
  let push tup =
    if !len = Array.length !buf then begin
      let b = Array.make (2 * !len) [||] in
      Array.blit !buf 0 b 0 !len;
      buf := b
    end;
    Array.unsafe_set !buf !len tup;
    incr len
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some tup ->
      let sz = Rel.Tuple.serialized_size tup + 4 in
      if !bytes + sz > Page.size && !len > 0 then seal_page ();
      bytes := !bytes + sz;
      push tup;
      incr n;
      loop ()
  in
  loop ();
  seal_page ();
  t.sealed <- Some (Array.of_list (List.rev !pages));
  t.len <- !n;
  t

let length t = t.len
let page_count t = List.length t.chunks

let sealed_pages t =
  freeze t;
  match t.sealed with Some p -> p | None -> assert false

let page_ids_in_order t = List.rev_map (fun c -> c.page_id) t.chunks |> Array.of_list

let read_gen ~accounted t =
  let pages = sealed_pages t in
  let ids = page_ids_in_order t in
  let rec from_page pi ti () =
    if pi >= Array.length pages then Seq.Nil
    else if ti >= Array.length pages.(pi) then from_page (pi + 1) 0 ()
    else begin
      if ti = 0 && accounted then Pager.touch t.pager ids.(pi);
      Seq.Cons (pages.(pi).(ti), from_page pi (ti + 1))
    end
  in
  from_page 0 0

let read t = read_gen ~accounted:true t
let read_unaccounted t = read_gen ~accounted:false t

(* Index-walking dispenser over the sealed pages: no closure per element,
   page-access accounting on each page entry, one-shot (not restartable). *)
let cursor t =
  let pages = sealed_pages t in
  let ids = page_ids_in_order t in
  let pi = ref 0 and ti = ref 0 in
  let rec next () =
    if !pi >= Array.length pages then None
    else begin
      let page = Array.unsafe_get pages !pi in
      if !ti >= Array.length page then begin
        incr pi;
        ti := 0;
        next ()
      end
      else begin
        if !ti = 0 then Pager.touch t.pager ids.(!pi);
        let tup = Array.unsafe_get page !ti in
        incr ti;
        Some tup
      end
    end
  in
  next
