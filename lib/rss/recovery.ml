type result = {
  segment : Segment.t;
  committed : Wal.txn list;
  discarded : Wal.txn list;
  tuples_restored : int;
}

module Int_set = Set.Make (Int)

(* Debug hook for the torture harness: with the filter off, replay redoes the
   effects of every transaction in the log, committed or not — deliberately
   broken recovery the harness must be able to catch. *)
let commit_filter = ref true
let set_commit_filter on = commit_filter := on

let replay pager wal =
  let recs = Wal.records wal in
  let committed =
    List.fold_left
      (fun acc r -> match r with Wal.Commit tx -> Int_set.add tx acc | _ -> acc)
      Int_set.empty recs
  in
  let started =
    List.fold_left
      (fun acc r -> match r with Wal.Begin tx -> Int_set.add tx acc | _ -> acc)
      Int_set.empty recs
  in
  let redo tx = Int_set.mem tx committed || not !commit_filter in
  let segment = Segment.create pager in
  (* Logical REDO keyed by original TID: inserts register the tuple, deletes
     retract it; survivors are loaded into the fresh segment in log order. *)
  let live : (Tid.t * int, int * Rel.Tuple.t) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun r ->
      match r with
      | Wal.Insert { txn; rel_id; tid; tuple } when redo txn ->
        Hashtbl.replace live (tid, rel_id) (rel_id, tuple);
        order := (tid, rel_id) :: !order
      | Wal.Delete { txn; rel_id; tid; _ } when redo txn ->
        Hashtbl.remove live (tid, rel_id)
      | Wal.Insert _ | Wal.Delete _ | Wal.Begin _ | Wal.Commit _ | Wal.Abort _ -> ())
    recs;
  let restored = ref 0 in
  List.iter
    (fun key ->
      match Hashtbl.find_opt live key with
      | Some (rel_id, tuple) ->
        ignore (Segment.insert segment ~rel_id tuple);
        incr restored;
        Hashtbl.remove live key
      | None -> ())
    (List.rev !order);
  { segment;
    committed = Int_set.elements committed;
    discarded = Int_set.elements (Int_set.diff started committed);
    tuples_restored = !restored }
