type fill_policy =
  | Per_relation
  | First_fit

type t = {
  pager : Pager.t;
  policy : fill_policy;
  mutable pages : int list;    (* reverse allocation order *)
  frontier : (int, int) Hashtbl.t;  (* rel_id -> page id currently being filled *)
}

let create ?(policy = Per_relation) pager =
  { pager; policy; pages = []; frontier = Hashtbl.create 8 }

let pager t = t.pager

let alloc t =
  let p = Pager.alloc_data_page t.pager in
  t.pages <- Page.id p :: t.pages;
  p

let insert_fresh t ?xmin ~rel_id tuple =
  let p = alloc t in
  Hashtbl.replace t.frontier rel_id (Page.id p);
  match Page.insert p ?xmin ~rel_id tuple with
  | Some slot -> { Tid.page = Page.id p; slot }
  | None -> assert false (* a fresh page always fits a legal tuple *)

let insert t ?xmin ~rel_id tuple =
  Failpoint.hit "segment.insert";
  match t.policy with
  | Per_relation ->
    (match Hashtbl.find_opt t.frontier rel_id with
     | Some pid ->
       let p = Pager.data_page t.pager pid in
       (match Page.insert p ?xmin ~rel_id tuple with
        | Some slot -> { Tid.page = pid; slot }
        | None -> insert_fresh t ?xmin ~rel_id tuple)
     | None -> insert_fresh t ?xmin ~rel_id tuple)
  | First_fit ->
    let need = Page.record_bytes tuple in
    let rec find = function
      | [] -> insert_fresh t ?xmin ~rel_id tuple
      | pid :: rest ->
        let p = Pager.data_page t.pager pid in
        if Page.free_space p >= need then
          match Page.insert p ?xmin ~rel_id tuple with
          | Some slot -> { Tid.page = pid; slot }
          | None -> find rest
        else find rest
    in
    find (List.rev t.pages)

let insert_at t ?xmin ~rel_id (tid : Tid.t) tuple =
  Failpoint.hit "segment.insert";
  let p = Pager.data_page t.pager tid.page in
  Page.insert_at p ?xmin ~slot:tid.slot ~rel_id tuple

let delete t (tid : Tid.t) =
  Failpoint.hit "segment.delete";
  let p = Pager.data_page t.pager tid.page in
  Page.delete p ~slot:tid.slot

(* MVCC delete: stamp xmax, leaving the version in place for concurrent
   snapshots; [set_xmax tid 0] un-marks it (rollback undo). *)
let set_xmax t (tid : Tid.t) xid =
  Failpoint.hit "segment.delete";
  let p = Pager.data_page t.pager tid.page in
  Page.set_xmax p ~slot:tid.slot xid

let set_xmin t (tid : Tid.t) xid =
  let p = Pager.data_page t.pager tid.page in
  Page.set_xmin p ~slot:tid.slot xid

let fetch t (tid : Tid.t) =
  let p = Pager.read_data_page t.pager tid.page in
  Page.get p ~slot:tid.slot

let fetch_v t (tid : Tid.t) =
  let p = Pager.read_data_page t.pager tid.page in
  Page.get_v p ~slot:tid.slot

let fetch_unaccounted t (tid : Tid.t) =
  let p = Pager.data_page t.pager tid.page in
  Page.get p ~slot:tid.slot

let fetch_unaccounted_v t (tid : Tid.t) =
  let p = Pager.data_page t.pager tid.page in
  Page.get_v p ~slot:tid.slot

(* Repeated-fetch closure with a one-page cache: an index scan in key order
   fetches long runs of tuples from the same (clustered) page, so the
   page-table lookup behind [fetch] is redundant for all but the first of
   each run. Page accesses are still charged identically to [fetch]. *)
let fetcher t =
  let last_pid = ref (-1) in
  let last_page = ref None in
  fun (tid : Tid.t) ->
    Pager.touch t.pager tid.page;
    let p =
      if tid.page = !last_pid then
        match !last_page with Some p -> p | None -> assert false
      else begin
        let p = Pager.data_page t.pager tid.page in
        last_pid := tid.page;
        last_page := Some p;
        p
      end
    in
    Page.get p ~slot:tid.slot

let fetcher_v t =
  let last_pid = ref (-1) in
  let last_page = ref None in
  fun (tid : Tid.t) ->
    Pager.touch t.pager tid.page;
    let p =
      if tid.page = !last_pid then
        match !last_page with Some p -> p | None -> assert false
      else begin
        let p = Pager.data_page t.pager tid.page in
        last_pid := tid.page;
        last_page := Some p;
        p
      end
    in
    Page.get_v p ~slot:tid.slot

let page_ids t = List.rev t.pages

let nonempty_page_count t =
  List.fold_left
    (fun acc pid ->
      if Page.is_empty (Pager.data_page t.pager pid) then acc else acc + 1)
    0 t.pages

let pages_holding t ~rel_id =
  List.fold_left
    (fun acc pid ->
      let p = Pager.data_page t.pager pid in
      let holds =
        List.exists (fun (_, rid, _) -> rid = rel_id) (Page.live_tuples p)
      in
      if holds then acc + 1 else acc)
    0 t.pages

let tuple_count t ~rel_id =
  List.fold_left
    (fun acc pid ->
      let p = Pager.data_page t.pager pid in
      acc
      + List.length
          (List.filter (fun (_, rid, _) -> rid = rel_id) (Page.live_tuples p)))
    0 t.pages
