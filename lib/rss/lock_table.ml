type txn = int

type resource =
  | Relation of int
  | Tuple_of of int * Tid.t

type mode = Shared | Exclusive

type outcome =
  | Granted
  | Blocked of txn list
  | Deadlock of txn list

type entry = {
  mutable holders : (txn * mode) list;   (* grant order, newest first *)
  mutable queue : (txn * mode) list;     (* arrival order, oldest first *)
}

type t = {
  table : (resource, entry) Hashtbl.t;
  waits_for : (txn, txn list) Hashtbl.t;  (* waiter -> blockers *)
  mutable last_granted : (txn * resource * mode) list;
}

let create () =
  { table = Hashtbl.create 64; waits_for = Hashtbl.create 16; last_granted = [] }

let entry t r =
  match Hashtbl.find_opt t.table r with
  | Some e -> e
  | None ->
    let e = { holders = []; queue = [] } in
    Hashtbl.replace t.table r e;
    e

let compatible requested held =
  match requested, held with
  | Shared, Shared -> true
  | Shared, Exclusive | Exclusive, Shared | Exclusive, Exclusive -> false

let conflicting_holders e txn mode =
  List.filter_map
    (fun (h, hm) ->
      if h = txn then None else if compatible mode hm then None else Some h)
    e.holders

(* DFS over the wait-for graph: would making [waiter] wait on [blockers]
   close a cycle back to [waiter]? *)
let find_cycle t waiter blockers =
  let rec reachable seen goal tx =
    if tx = goal then Some (List.rev (tx :: seen))
    else if List.mem tx seen then None
    else
      let nexts = Option.value (Hashtbl.find_opt t.waits_for tx) ~default:[] in
      List.find_map (reachable (tx :: seen) goal) nexts
  in
  List.find_map (reachable [] waiter) blockers

let grant e txn mode =
  let without = List.filter (fun (h, _) -> h <> txn) e.holders in
  e.holders <- (txn, mode) :: without

let acquire t txn r mode =
  let e = entry t r in
  match List.assoc_opt txn e.holders with
  | Some held when held = mode || (held = Exclusive && mode = Shared) -> Granted
  | held ->
    let want = match held with Some Shared -> Exclusive | _ -> mode in
    let conflicts = conflicting_holders e txn want in
    let queued_ahead =
      List.filter_map (fun (w, _) -> if w = txn then None else Some w) e.queue
    in
    if conflicts = [] && queued_ahead = [] then begin
      grant e txn want;
      Granted
    end
    else begin
      (* Fair queuing: wait on conflicting holders AND everything already
         queued — an upgrade must not jump an earlier Exclusive request.
         Both edge sets feed cycle detection, so a sole Shared holder
         upgrading behind a queued X (which waits on that very Shared
         hold), or two Shared holders both upgrading, is a Deadlock
         reported immediately rather than a silent mutual wait. *)
      let blockers = conflicts @ queued_ahead in
      match find_cycle t txn blockers with
      | Some cycle -> Deadlock cycle
      | None ->
        e.queue <- e.queue @ [ (txn, want) ];
        Hashtbl.replace t.waits_for txn
          (blockers @ Option.value (Hashtbl.find_opt t.waits_for txn) ~default:[]);
        Blocked blockers
    end

let release_all t txn =
  Hashtbl.remove t.waits_for txn;
  t.last_granted <- [];
  Hashtbl.iter
    (fun r e ->
      e.holders <- List.filter (fun (h, _) -> h <> txn) e.holders;
      e.queue <- List.filter (fun (w, _) -> w <> txn) e.queue;
      (* Promote queued requests that are now compatible, preserving order. *)
      let rec promote () =
        match e.queue with
        | (w, wm) :: rest when conflicting_holders e w wm = [] ->
          e.queue <- rest;
          grant e w wm;
          Hashtbl.remove t.waits_for w;
          t.last_granted <- (w, r, wm) :: t.last_granted;
          promote ()
        | _ -> ()
      in
      promote ())
    t.table

let holds t txn r mode =
  match Hashtbl.find_opt t.table r with
  | None -> false
  | Some e ->
    (match List.assoc_opt txn e.holders with
     | Some Exclusive -> true
     | Some Shared -> mode = Shared
     | None -> false)

let holders t r =
  match Hashtbl.find_opt t.table r with None -> [] | Some e -> e.holders

let waiting t r =
  match Hashtbl.find_opt t.table r with None -> [] | Some e -> e.queue

let blocked_txns t =
  Hashtbl.fold (fun _ e acc -> List.map fst e.queue @ acc) t.table []
  |> List.sort_uniq Int.compare

let granted_since t _txn = t.last_granted
