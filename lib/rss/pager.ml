type t = {
  next_id : int Atomic.t;
  data_pages : (int, Page.t) Hashtbl.t;
  pool : Buffer_pool.t;
  counters : Counters.t;
  mutable active : Counters.t;
      (* where accounting currently lands: normally [counters] itself, but a
         server session redirects it to its own record for the duration of a
         statement (under the engine latch), so EXPLAIN under concurrent
         sessions never interleaves counts — the per-session mirror of the
         per-domain scratch fold below *)
  buffer_pages : int;
  latch : Mutex.t;
  mutable parallel_depth : int;
      (* nesting of enter/exit_parallel; pool latched while > 0 *)
}

(* Per-domain scratch counters. While a worker domain runs under
   [as_worker], its accounting lands in a domain-local Counters.t and is
   folded into [t.counters] exactly once when the worker finishes — so the
   hot counter bumps stay unsynchronized single-writer stores, and the fold
   makes parallel totals sum to the serial totals. The main domain (and all
   serial execution) keeps [None] here and writes [t.counters] directly. *)
let scratch_key : Counters.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let cnt t =
  match Domain.DLS.get scratch_key with Some c -> c | None -> t.active

let create ?(buffer_pages = 64) () =
  let counters = Counters.create () in
  { next_id = Atomic.make 0;
    data_pages = Hashtbl.create 1024;
    pool = Buffer_pool.create ~capacity:buffer_pages;
    counters;
    active = counters;
    buffer_pages;
    latch = Mutex.create ();
    parallel_depth = 0 }

let counters t = t.active
let base_counters t = t.counters

let with_counters t c f =
  let saved = t.active in
  t.active <- c;
  Fun.protect ~finally:(fun () -> t.active <- saved) f
let buffer_pages t = t.buffer_pages

let alloc_page_id t =
  Failpoint.hit "pager.alloc_page";
  Atomic.fetch_and_add t.next_id 1

let alloc_data_page t =
  let id = alloc_page_id t in
  let p = Page.create ~id in
  Hashtbl.replace t.data_pages id p;
  p

let data_page t id = Hashtbl.find t.data_pages id

let touch t id =
  let c = cnt t in
  match Buffer_pool.touch t.pool id with
  | `Hit -> c.Counters.buffer_hits <- c.Counters.buffer_hits + 1
  | `Miss -> c.Counters.page_fetches <- c.Counters.page_fetches + 1

let read_data_page t id =
  touch t id;
  data_page t id

let note_page_written t =
  Failpoint.hit "pager.page_write";
  let c = cnt t in
  c.Counters.pages_written <- c.Counters.pages_written + 1

let note_rsi_call t =
  let c = cnt t in
  c.Counters.rsi_calls <- c.Counters.rsi_calls + 1

let note_sort_run t =
  let c = cnt t in
  c.Counters.sort_runs <- c.Counters.sort_runs + 1

let note_merge_pass t =
  let c = cnt t in
  c.Counters.merge_passes <- c.Counters.merge_passes + 1

let evict_all t = Buffer_pool.evict_all t.pool

let enter_parallel t =
  if Failpoint.enabled () then
    invalid_arg
      "Pager.enter_parallel: failpoint registry armed (single-domain-only)";
  t.parallel_depth <- t.parallel_depth + 1;
  if t.parallel_depth = 1 then Buffer_pool.set_latched t.pool true

let exit_parallel t =
  t.parallel_depth <- t.parallel_depth - 1;
  if t.parallel_depth = 0 then Buffer_pool.set_latched t.pool false

let as_worker t f =
  let scratch = Counters.create () in
  Domain.DLS.set scratch_key (Some scratch);
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set scratch_key None;
      Mutex.lock t.latch;
      Counters.add scratch ~into:t.counters;
      Mutex.unlock t.latch)
    f
