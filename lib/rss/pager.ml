type t = {
  next_id : int Atomic.t;
  data_pages : (int, Page.t) Hashtbl.t;
  pool : Buffer_pool.t;
  counters : Counters.t;
  buffer_pages : int;
  latch : Mutex.t;
  mutable parallel_depth : int;
      (* nesting of enter/exit_parallel; pool latched while > 0 *)
  mutable shared : bool;
      (* engine in multi-session (server) mode: concurrent reader statements
         may touch the pool from several domains, so keep it latched even
         outside parallel query phases *)
}

(* Per-domain scratch counters. Accounting lands in the domain-local record
   when one is installed — a worker domain under [as_worker], or a server
   session's statement under [with_counters] — and in the engine-global
   [t.counters] otherwise. Domain-local redirection is what lets concurrent
   reader statements on different domains bump counters without
   synchronization: each domain has exactly one writer target. *)
let scratch_key : Counters.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let cnt t =
  match Domain.DLS.get scratch_key with Some c -> c | None -> t.counters

let create ?(buffer_pages = 64) () =
  let counters = Counters.create () in
  { next_id = Atomic.make 0;
    data_pages = Hashtbl.create 1024;
    pool = Buffer_pool.create ~capacity:buffer_pages;
    counters;
    buffer_pages;
    latch = Mutex.create ();
    parallel_depth = 0;
    shared = false }

let counters t = cnt t
let base_counters t = t.counters

let with_counters _t c f =
  let saved = Domain.DLS.get scratch_key in
  Domain.DLS.set scratch_key (Some c);
  Fun.protect ~finally:(fun () -> Domain.DLS.set scratch_key saved) f
let buffer_pages t = t.buffer_pages

let alloc_page_id t =
  Failpoint.hit "pager.alloc_page";
  Atomic.fetch_and_add t.next_id 1

let alloc_data_page t =
  let id = alloc_page_id t in
  let p = Page.create ~id in
  Hashtbl.replace t.data_pages id p;
  p

let data_page t id = Hashtbl.find t.data_pages id

let touch t id =
  let c = cnt t in
  match Buffer_pool.touch t.pool id with
  | `Hit -> c.Counters.buffer_hits <- c.Counters.buffer_hits + 1
  | `Miss -> c.Counters.page_fetches <- c.Counters.page_fetches + 1

let read_data_page t id =
  touch t id;
  data_page t id

let note_page_written t =
  Failpoint.hit "pager.page_write";
  let c = cnt t in
  c.Counters.pages_written <- c.Counters.pages_written + 1

let note_rsi_call t =
  let c = cnt t in
  c.Counters.rsi_calls <- c.Counters.rsi_calls + 1

let note_sort_run t =
  let c = cnt t in
  c.Counters.sort_runs <- c.Counters.sort_runs + 1

let note_merge_pass t =
  let c = cnt t in
  c.Counters.merge_passes <- c.Counters.merge_passes + 1

let evict_all t = Buffer_pool.evict_all t.pool

let refresh_pool_latch t =
  Buffer_pool.set_latched t.pool (t.shared || t.parallel_depth > 0)

let set_shared t on =
  t.shared <- on;
  refresh_pool_latch t

let enter_parallel t =
  if Failpoint.enabled () then
    invalid_arg
      "Pager.enter_parallel: failpoint registry armed (single-domain-only)";
  t.parallel_depth <- t.parallel_depth + 1;
  if t.parallel_depth = 1 then refresh_pool_latch t

let exit_parallel t =
  t.parallel_depth <- t.parallel_depth - 1;
  if t.parallel_depth = 0 then refresh_pool_latch t

let as_worker t f =
  let scratch = Counters.create () in
  Domain.DLS.set scratch_key (Some scratch);
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set scratch_key None;
      Mutex.lock t.latch;
      Counters.add scratch ~into:t.counters;
      Mutex.unlock t.latch)
    f
