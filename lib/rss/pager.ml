type t = {
  mutable next_id : int;
  data_pages : (int, Page.t) Hashtbl.t;
  pool : Buffer_pool.t;
  counters : Counters.t;
  buffer_pages : int;
}

let create ?(buffer_pages = 64) () =
  { next_id = 0;
    data_pages = Hashtbl.create 1024;
    pool = Buffer_pool.create ~capacity:buffer_pages;
    counters = Counters.create ();
    buffer_pages }

let counters t = t.counters
let buffer_pages t = t.buffer_pages

let alloc_page_id t =
  Failpoint.hit "pager.alloc_page";
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let alloc_data_page t =
  let id = alloc_page_id t in
  let p = Page.create ~id in
  Hashtbl.replace t.data_pages id p;
  p

let data_page t id = Hashtbl.find t.data_pages id

let touch t id =
  match Buffer_pool.touch t.pool id with
  | `Hit -> t.counters.buffer_hits <- t.counters.buffer_hits + 1
  | `Miss -> t.counters.page_fetches <- t.counters.page_fetches + 1

let read_data_page t id =
  touch t id;
  data_page t id

let note_page_written t =
  Failpoint.hit "pager.page_write";
  t.counters.pages_written <- t.counters.pages_written + 1

let note_rsi_call t = t.counters.rsi_calls <- t.counters.rsi_calls + 1

let note_sort_run t = t.counters.sort_runs <- t.counters.sort_runs + 1

let note_merge_pass t = t.counters.merge_passes <- t.counters.merge_passes + 1

let evict_all t = Buffer_pool.evict_all t.pool
