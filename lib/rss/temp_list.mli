(** Temporary lists.

    An internal tuple container that is cheaper than a relation but can only
    be accessed sequentially — the form subquery results and sort outputs
    take. Contents are materialized on temp pages; writing charges page
    writes, reading charges one buffered access per page. *)

type t

val create : Pager.t -> t

val append : t -> Rel.Tuple.t -> unit
(** @raise Invalid_argument after [freeze]. *)

val freeze : t -> unit
(** Mark the list complete; appends are rejected afterwards. Idempotent. *)

val of_seq : Pager.t -> Rel.Tuple.t Seq.t -> t
(** Materialize and freeze. *)

val of_array : Pager.t -> Rel.Tuple.t array -> t
(** Seal a complete tuple array directly: the array is sliced at page-size
    boundaries into the sealed pages with no per-tuple list traffic. Writes
    are charged per page as with [append]. The sort's run formation feeds
    its [Array.stable_sort]ed runs through this. *)

val of_dispenser : Pager.t -> (unit -> Rel.Tuple.t option) -> t
(** Seal a tuple stream of unknown length: tuples are buffered one page at a
    time and each page cut is an exact array, so nothing larger than a page
    is ever allocated. The sort's k-way merges pipe their output through
    this. Accounting as [of_array]. *)

val length : t -> int
val page_count : t -> int  (** TEMPPAGES *)

val read : t -> Rel.Tuple.t Seq.t
(** Sequential read with page-access accounting. Restartable: each
    application of the sequence re-reads (and re-charges) from the start. *)

val read_unaccounted : t -> Rel.Tuple.t Seq.t

val cursor : t -> unit -> Rel.Tuple.t option
(** Sequential dispenser over the sealed pages — index arithmetic only, no
    closure per element. Accounting as [read]; one-shot (call again for a
    fresh pass). *)
