type key = Rel.Value.t array

let compare_key (a : key) (b : key) =
  let la = Array.length a and lb = Array.length b in
  let n = min la lb in
  let rec go i =
    if i = n then Int.compare la lb
    else
      let d = Rel.Value.compare a.(i) b.(i) in
      if d <> 0 then d else go (i + 1)
  in
  go 0

(* Prefix comparison for bounds: a bound shorter than the stored key compares
   only on its own length, so an index on (NAME, LOCATION) can be scanned with
   a bound on NAME alone ("initial substring" matching from section 4). *)
let compare_prefix (bound : key) (k : key) =
  let n = min (Array.length bound) (Array.length k) in
  let rec go i =
    if i = n then 0
    else
      let d = Rel.Value.compare bound.(i) k.(i) in
      if d <> 0 then d else go (i + 1)
  in
  go 0

type entry = key * Tid.t

(* Entries are totally ordered by (key, TID); separators are full entries so
   duplicate keys route deterministically. *)
let compare_entry ((k1, t1) : entry) ((k2, t2) : entry) =
  let d = compare_key k1 k2 in
  if d <> 0 then d else Tid.compare t1 t2

type leaf = {
  lpage : int;
  mutable entries : entry array;
  mutable next : leaf option;
  mutable prev : leaf option;
}

type internal = {
  ipage : int;
  (* children.(i) covers entries e with seps.(i-1) <= e < seps.(i) *)
  mutable seps : entry array;
  mutable children : node array;
}

and node =
  | Leaf of leaf
  | Internal of internal

type t = {
  pgr : Pager.t;
  order : int;
  mutable root : node;
}


(* Debug hook for the torture harness: an override makes every new tree use
   a tiny order so that a handful of tuples already drives the split paths
   (and their failpoints). Never set in normal operation. *)
let order_override = ref None

let set_order_override o =
  Failpoint.assert_main_domain "Btree.set_order_override";
  order_override := o

let create ?(order = 128) pgr =
  let order = match !order_override with Some o -> o | None -> order in
  if order < 4 then invalid_arg "Btree.create: order < 4";
  let root =
    Leaf { lpage = Pager.alloc_page_id pgr; entries = [||]; next = None; prev = None }
  in
  { pgr; order; root }

let pager t = t.pgr

(* Child covering [e]: the number of separators <= e. *)
let child_index (n : internal) (e : entry) =
  let lo = ref 0 and hi = ref (Array.length n.seps) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_entry n.seps.(mid) e <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index in [arr] whose element is not less than the probe per [cmp]. *)
let lower_bound arr cmp =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp arr.(mid) < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let insert_at arr i x =
  let n = Array.length arr in
  let out = Array.make (n + 1) x in
  Array.blit arr 0 out 0 i;
  Array.blit arr i out (i + 1) (n - i);
  out

let remove_at arr i =
  let n = Array.length arr in
  let out = Array.make (n - 1) arr.(0) in
  Array.blit arr 0 out 0 i;
  Array.blit arr (i + 1) out i (n - 1 - i);
  out

type split = (entry * node) option

let rec insert_node t node entry : split =
  match node with
  | Leaf l ->
    let i = lower_bound l.entries (fun e -> compare_entry e entry) in
    l.entries <- insert_at l.entries i entry;
    if Array.length l.entries <= t.order then None
    else begin
      Failpoint.hit "btree.split";
      let n = Array.length l.entries in
      let mid = n / 2 in
      let right_entries = Array.sub l.entries mid (n - mid) in
      l.entries <- Array.sub l.entries 0 mid;
      let right =
        { lpage = Pager.alloc_page_id t.pgr; entries = right_entries;
          next = l.next; prev = Some l }
      in
      (match l.next with Some n -> n.prev <- Some right | None -> ());
      l.next <- Some right;
      Some (right_entries.(0), Leaf right)
    end
  | Internal n ->
    let i = child_index n entry in
    (match insert_node t n.children.(i) entry with
     | None -> None
     | Some (sep, right_child) ->
       n.seps <- insert_at n.seps i sep;
       n.children <- insert_at n.children (i + 1) right_child;
       if Array.length n.children <= t.order then None
       else begin
         Failpoint.hit "btree.split";
         let c = Array.length n.children in
         let mid = c / 2 in
         (* separator promoted to the parent, not kept in either half *)
         let up = n.seps.(mid - 1) in
         let right =
           { ipage = Pager.alloc_page_id t.pgr;
             seps = Array.sub n.seps mid (Array.length n.seps - mid);
             children = Array.sub n.children mid (c - mid) }
         in
         n.seps <- Array.sub n.seps 0 (mid - 1);
         n.children <- Array.sub n.children 0 mid;
         Some (up, Internal right)
       end)

let insert t k tid =
  match insert_node t t.root (k, tid) with
  | None -> ()
  | Some (sep, right) ->
    let root =
      Internal
        { ipage = Pager.alloc_page_id t.pgr;
          seps = [| sep |];
          children = [| t.root; right |] }
    in
    t.root <- root

let rec delete_node node entry =
  match node with
  | Leaf l ->
    let i = lower_bound l.entries (fun e -> compare_entry e entry) in
    if i < Array.length l.entries && compare_entry l.entries.(i) entry = 0 then begin
      l.entries <- remove_at l.entries i;
      true
    end
    else false
  | Internal n ->
    (* Exact-duplicate entries may straddle a separator equal to them; step
       left across equal separators until found. *)
    let rec try_from i =
      if i < 0 then false
      else if delete_node n.children.(i) entry then true
      else if i > 0 && compare_entry n.seps.(i - 1) entry = 0 then try_from (i - 1)
      else false
    in
    try_from (child_index n entry)

let delete t k tid = delete_node t.root (k, tid)

(* Leftmost leaf that may contain entries whose key is >= the bound, touching
   each node on the descent when [accounted]. [lo_cmp sep_key] compares the
   bound against a separator's key part. *)
(* First index of sorted [arr] at which the monotone predicate [ok] holds
   ([ok] is false on a prefix of the array and true on the rest);
   [Array.length arr] when it never holds. Separator and entry arrays are
   key-sorted and bound predicates are monotone over key order, so every
   position search below is logarithmic — a point probe must not pay a
   linear walk over a node. *)
let lower_bound arr ok =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if ok (Array.unsafe_get arr mid) then hi := mid else lo := mid + 1
  done;
  !lo

let rec descend t ~accounted node lo_cmp =
  (* Only leaf pages are charged: the paper's cost formulas count NINDX leaf
     pages and assume the few upper index levels stay buffer-resident
     (cf. the 1-index-page term of the unique-index formula). *)
  (match node with
   | Leaf l -> if accounted then Pager.touch t.pgr l.lpage
   | Internal _ -> ());
  match node with
  | Leaf l -> l
  | Internal n ->
    let i =
      match lo_cmp with
      | None -> 0
      | Some cmp ->
        (* Skip child i while everything under it is below the bound, i.e.
           while the bound is strictly greater than separator i's key (a
           separator sharing the bound's prefix may still have matches to
           its left). *)
        lower_bound n.seps (fun sep -> cmp (fst sep) <= 0)
    in
    descend t ~accounted n.children.(i) lo_cmp

(* Rightmost leaf that may contain entries whose key is <= the bound
   (or the rightmost leaf when unbounded). *)
let rec descend_hi t ~accounted node hi_cmp =
  (match node with
   | Leaf l -> if accounted then Pager.touch t.pgr l.lpage
   | Internal _ -> ());
  match node with
  | Leaf l -> l
  | Internal n ->
    let i =
      match hi_cmp with
      | None -> Array.length n.children - 1
      | Some cmp ->
        (* Step left from the last child while its lower separator is
           strictly above the bound. *)
        lower_bound n.seps (fun sep -> cmp (fst sep) < 0)
    in
    descend_hi t ~accounted n.children.(i) hi_cmp

let bound_cmp_lo = function
  | None -> fun _ -> true
  | Some (k, `Inclusive) -> fun key -> compare_prefix k key <= 0
  | Some (k, `Exclusive) -> fun key -> compare_prefix k key < 0

let bound_cmp_hi = function
  | None -> fun _ -> true
  | Some (k, `Inclusive) -> fun key -> compare_prefix k key >= 0
  | Some (k, `Exclusive) -> fun key -> compare_prefix k key > 0

type bound = Rel.Value.t array * [ `Inclusive | `Exclusive ]

(* Start offset within the descended leaf. Ascending: first entry at or above
   the low bound. Descending: last entry at or below the high bound (may be -1,
   which sends the traversal to the prev leaf). Only the start leaf needs a
   search — every entry of the leaves that follow is past the bound. *)
let asc_start entries lo_ok = lower_bound entries (fun (k, _) -> lo_ok k)
let desc_start entries hi_ok =
  lower_bound entries (fun (k, _) -> not (hi_ok k)) - 1

let range_scan_gen ~accounted ?lo ?hi t =
  let lo_ok = bound_cmp_lo lo and hi_ok = bound_cmp_hi hi in
  let lo_probe = Option.map (fun (k, _) -> fun sep -> compare_prefix k sep) lo in
  let start = descend t ~accounted t.root lo_probe in
  (* Stream entries leaf by leaf; each leaf page is charged when first
     entered (the start leaf was charged by the descent). *)
  let rec entries_from leaf i () =
    if i >= Array.length leaf.entries then
      match leaf.next with
      | None -> Seq.Nil
      | Some next ->
        if accounted then Pager.touch t.pgr next.lpage;
        entries_from next 0 ()
    else
      let k, tid = leaf.entries.(i) in
      if not (hi_ok k) then Seq.Nil
      else if lo_ok k then Seq.Cons ((k, tid), entries_from leaf (i + 1))
      else entries_from leaf (i + 1) ()
  in
  entries_from start (asc_start start.entries lo_ok)

let range_scan ?lo ?hi t = range_scan_gen ~accounted:true ?lo ?hi t
let range_scan_unaccounted ?lo ?hi t = range_scan_gen ~accounted:false ?lo ?hi t

(* Cursor counterpart of [range_scan]: mutable leaf/offset state instead of a
   Seq cell and continuation closure per entry. The executor's index scan
   pulls every indexed tuple through this, so the per-entry path is just an
   array load and a bound check. Accounting is identical to [range_scan]. *)
let range_cursor ?lo ?hi t =
  let lo_ok = bound_cmp_lo lo and hi_ok = bound_cmp_hi hi in
  let lo_probe = Option.map (fun (k, _) -> fun sep -> compare_prefix k sep) lo in
  let start = descend t ~accounted:true t.root lo_probe in
  let leaf = ref (Some start) in
  let i = ref (asc_start start.entries lo_ok) in
  let rec next () =
    match !leaf with
    | None -> None
    | Some l ->
      if !i >= Array.length l.entries then begin
        (match l.next with
         | None -> leaf := None
         | Some nl ->
           Pager.touch t.pgr nl.lpage;
           leaf := Some nl;
           i := 0);
        next ()
      end
      else begin
        let (k, _) as e = Array.unsafe_get l.entries !i in
        if not (hi_ok k) then begin
          leaf := None;
          None
        end
        else begin
          incr i;
          if lo_ok k then Some e else next ()
        end
      end
  in
  next

let range_cursor_desc ?lo ?hi t =
  let lo_ok = bound_cmp_lo lo and hi_ok = bound_cmp_hi hi in
  let hi_probe = Option.map (fun (k, _) -> fun sep -> compare_prefix k sep) hi in
  let start = descend_hi t ~accounted:true t.root hi_probe in
  let leaf = ref (Some start) in
  let i = ref (desc_start start.entries hi_ok) in
  let rec next () =
    match !leaf with
    | None -> None
    | Some l ->
      if !i < 0 then begin
        (match l.prev with
         | None -> leaf := None
         | Some pl ->
           Pager.touch t.pgr pl.lpage;
           leaf := Some pl;
           i := Array.length pl.entries - 1);
        next ()
      end
      else begin
        let (k, _) as e = Array.unsafe_get l.entries !i in
        if not (lo_ok k) then begin
          leaf := None;  (* descending: below the low bound *)
          None
        end
        else begin
          decr i;
          if hi_ok k then Some e else next ()
        end
      end
  in
  next

(* Descending scan: start at the rightmost candidate leaf for [hi] and walk
   the [prev] chain, yielding entries in reverse key order. *)
let range_scan_desc_gen ~accounted ?lo ?hi t =
  let lo_ok = bound_cmp_lo lo and hi_ok = bound_cmp_hi hi in
  let hi_probe = Option.map (fun (k, _) -> fun sep -> compare_prefix k sep) hi in
  let start = descend_hi t ~accounted t.root hi_probe in
  let rec entries_from leaf i () =
    if i < 0 then
      match leaf.prev with
      | None -> Seq.Nil
      | Some prev ->
        if accounted then Pager.touch t.pgr prev.lpage;
        entries_from prev (Array.length prev.entries - 1) ()
    else
      let k, tid = leaf.entries.(i) in
      if not (lo_ok k) then Seq.Nil  (* descending: below the low bound *)
      else if hi_ok k then Seq.Cons ((k, tid), entries_from leaf (i - 1))
      else entries_from leaf (i - 1) ()
  in
  entries_from start (desc_start start.entries hi_ok)

let range_scan_desc ?lo ?hi t = range_scan_desc_gen ~accounted:true ?lo ?hi t
let range_scan_desc_unaccounted ?lo ?hi t =
  range_scan_desc_gen ~accounted:false ?lo ?hi t

let lookup t k =
  range_scan ~lo:(k, `Inclusive) ~hi:(k, `Inclusive) t
  |> Seq.map snd |> List.of_seq

(* Split [lo, hi) into up to [parts] contiguous key ranges along existing
   separator keys, for parallel index scans. Splitting at a separator key [k]
   with hi-`Exclusive` / lo-`Inclusive` sends every duplicate of [k] into the
   right-hand range, so the concatenation of the ranges' scans is exactly the
   serial scan. Planning-time only: no I/O is charged. *)
let split_range ?lo ?hi t ~parts =
  if parts <= 1 then [ (lo, hi) ]
  else
    let cands =
      match t.root with
      | Leaf _ -> []
      | Internal n ->
        let top = Array.to_list n.seps |> List.map fst in
        if List.length top >= parts - 1 then top
        else
          (* Root fan-out too small; pull in the grandchildren's separators
             so a freshly split root can still feed several partitions. *)
          let deeper =
            Array.fold_left
              (fun acc c ->
                match c with
                | Leaf _ -> acc
                | Internal m ->
                  Array.fold_left (fun acc (k, _) -> k :: acc) acc m.seps)
              [] n.children
          in
          List.sort_uniq compare_key (top @ deeper)
    in
    (* Keep only split keys strictly inside (lo, hi): every resulting range
       must be able to hold at least one key. *)
    let inside k =
      (match lo with None -> true | Some (b, _) -> compare_prefix b k < 0)
      && match hi with None -> true | Some (b, _) -> compare_prefix b k > 0
    in
    let cands = List.filter inside cands |> List.sort_uniq compare_key in
    match cands with
    | [] -> [ (lo, hi) ]
    | _ ->
      let arr = Array.of_list cands in
      let n = Array.length arr in
      let want = min (parts - 1) n in
      let picks =
        List.init want (fun j -> arr.((j + 1) * n / (want + 1)))
        |> List.sort_uniq compare_key
      in
      let rec build prev = function
        | [] -> [ (prev, hi) ]
        | k :: rest ->
          (prev, Some (k, `Exclusive)) :: build (Some (k, `Inclusive)) rest
      in
      build lo picks

let rec fold_leaves f acc node =
  match node with
  | Leaf l -> f acc l
  | Internal n -> Array.fold_left (fun acc c -> fold_leaves f acc c) acc n.children

let entry_count t = fold_leaves (fun acc l -> acc + Array.length l.entries) 0 t.root

let distinct_keys t =
  let count, _ =
    fold_leaves
      (fun (count, prev) l ->
        Array.fold_left
          (fun (count, prev) (k, _) ->
            match prev with
            | Some p when compare_key p k = 0 -> count, prev
            | _ -> count + 1, Some k)
          (count, prev) l.entries)
      (0, None) t.root
  in
  count

let leaf_pages t = fold_leaves (fun acc _ -> acc + 1) 0 t.root

let rec height_node = function
  | Leaf _ -> 1
  | Internal n -> 1 + height_node n.children.(0)

let height t = height_node t.root

let min_key t =
  let l = descend t ~accounted:false t.root None in
  let rec first l =
    if Array.length l.entries > 0 then Some (fst l.entries.(0))
    else match l.next with None -> None | Some n -> first n
  in
  first l

let max_key t =
  (* Lazy deletion can leave trailing leaves empty; walk all leaves. *)
  fold_leaves
    (fun acc l ->
      if Array.length l.entries > 0 then Some (fst l.entries.(Array.length l.entries - 1))
      else acc)
    None t.root

let check_invariants t =
  let ( let* ) = Result.bind in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  (* 1. entries sorted within every leaf *)
  let* () =
    fold_leaves
      (fun acc l ->
        let* () = acc in
        let rec go i =
          if i + 1 >= Array.length l.entries then Ok ()
          else if compare_entry l.entries.(i) l.entries.(i + 1) > 0 then
            err "leaf %d not sorted at %d" l.lpage i
          else go (i + 1)
        in
        go 0)
      (Ok ()) t.root
  in
  (* 2. entries sorted across the whole leaf chain *)
  let* () =
    let all =
      fold_leaves
        (fun acc l -> Array.fold_left (fun a e -> e :: a) acc l.entries)
        [] t.root
      |> List.rev
    in
    let rec sorted = function
      | a :: (b :: _ as rest) ->
        if compare_entry a b > 0 then Error "entries not globally sorted"
        else sorted rest
      | [ _ ] | [] -> Ok ()
    in
    sorted all
  in
  (* 3. separators bound their subtrees; an entry may equal the upper
     separator only when it is an exact duplicate of it (duplicates of one
     (key, TID) pair can straddle their separator) *)
  let rec check_sep node lo hi =
    let in_range e =
      (match lo with None -> true | Some b -> compare_entry b e <= 0)
      && match hi with None -> true | Some b -> compare_entry e b <= 0
    in
    match node with
    | Leaf l ->
      if Array.for_all in_range l.entries then Ok ()
      else err "leaf %d violates separator bounds" l.lpage
    | Internal n ->
      if Array.length n.children <> Array.length n.seps + 1 then
        err "internal %d: %d children, %d seps" n.ipage
          (Array.length n.children) (Array.length n.seps)
      else
        let rec go i acc =
          if i >= Array.length n.children then acc
          else
            let lo_i = if i = 0 then lo else Some n.seps.(i - 1) in
            let hi_i = if i = Array.length n.seps then hi else Some n.seps.(i) in
            let* () = acc in
            go (i + 1) (check_sep n.children.(i) lo_i hi_i)
        in
        go 0 (Ok ())
  in
  let* () = check_sep t.root None None in
  (* 4. the leaf chain visits exactly the leaves, in order *)
  let leaves_in_tree = fold_leaves (fun acc l -> l :: acc) [] t.root |> List.rev in
  let rec chain l acc =
    match l.next with None -> List.rev (l :: acc) | Some n -> chain n (l :: acc)
  in
  let leftmost = descend t ~accounted:false t.root None in
  let chained = chain leftmost [] in
  if List.length chained <> List.length leaves_in_tree then
    err "leaf chain has %d leaves, tree has %d" (List.length chained)
      (List.length leaves_in_tree)
  else if List.exists2 (fun a b -> a.lpage <> b.lpage) chained leaves_in_tree then
    Error "leaf chain order differs from tree order"
  else begin
    (* 5. the prev chain mirrors the next chain *)
    let rec back l acc = match l.prev with None -> l :: acc | Some p -> back p (l :: acc) in
    let rightmost = List.nth chained (List.length chained - 1) in
    let backward = back rightmost [] in
    if List.length backward <> List.length chained then
      err "prev chain has %d leaves, next chain %d" (List.length backward)
        (List.length chained)
    else if List.exists2 (fun a b -> a.lpage <> b.lpage) backward chained then
      Error "prev chain order differs from next chain"
    else Ok ()
  end
