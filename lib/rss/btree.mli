(** B-tree indexes (B+-tree variant, as in Bayer-McCreight ref <3>).

    An index maps composite keys — one or more column values — to the TIDs of
    the tuples containing them. Leaf pages hold (key, TID) sets and are
    chained so a sequential scan of a key range never revisits upper levels.
    Index pages live in the same pager/buffer pool as data pages; a range
    scan charges one buffered access per node it descends plus one per leaf
    page it walks, which is what TABLE 2's NINDX terms predict.

    Deletion is lazy (entries are removed but underfull nodes are not merged),
    the strategy production B-trees such as PostgreSQL's use; NINDX can
    therefore only be reduced by rebuilding, which UPDATE STATISTICS notes. *)

type key = Rel.Value.t array

type t

val create : ?order:int -> Pager.t -> t
(** [order] is the maximum number of entries per node (default 128, a 4K
    page of ~32-byte entries). @raise Invalid_argument when [order < 4]. *)

val set_order_override : int option -> unit
(** Debug hook for the crash-torture harness: force every subsequently
    created tree to the given order, so tiny test relations exercise the
    split paths (and their ["btree.split"] failpoint). Never set in normal
    operation; reset with [None]. Single-domain-only: asserts it runs on the
    main domain ({!Failpoint.assert_main_domain}). *)

val pager : t -> Pager.t
val compare_key : key -> key -> int

val insert : t -> key -> Tid.t -> unit
val delete : t -> key -> Tid.t -> bool
(** Remove one (key, TID) entry; [false] when absent. *)

type bound = Rel.Value.t array * [ `Inclusive | `Exclusive ]

val range_scan : ?lo:bound -> ?hi:bound -> t -> (key * Tid.t) Seq.t
(** Entries with [lo <= key <= hi] in key order, charging buffered accesses
    as described above. Bounds may be prefixes of the full key. *)

val range_scan_unaccounted : ?lo:bound -> ?hi:bound -> t -> (key * Tid.t) Seq.t

val range_scan_desc : ?lo:bound -> ?hi:bound -> t -> (key * Tid.t) Seq.t
(** Entries with [lo <= key <= hi] in {e descending} key order, walking the
    leaf chain backwards (leaves are doubly linked). Same accounting as
    {!range_scan}. *)

val range_cursor : ?lo:bound -> ?hi:bound -> t -> unit -> (key * Tid.t) option
(** Dispenser counterpart of {!range_scan} — same entries, same page
    accounting, but no Seq cell or closure per entry. The executor's index
    scans use this. One-shot. *)

val range_cursor_desc : ?lo:bound -> ?hi:bound -> t -> unit -> (key * Tid.t) option
(** Dispenser counterpart of {!range_scan_desc}. *)

val range_scan_desc_unaccounted :
  ?lo:bound -> ?hi:bound -> t -> (key * Tid.t) Seq.t

val lookup : t -> key -> Tid.t list
(** All TIDs for an exact key (accounted). *)

val split_range :
  ?lo:bound -> ?hi:bound -> t -> parts:int ->
  (bound option * bound option) list
(** Split the range [lo, hi] into up to [parts] contiguous sub-ranges along
    existing separator keys, in key order, for parallel index scans. The
    concatenation of the sub-ranges' ascending scans yields exactly the
    entries of the serial scan, in the same order: splits fall on full key
    values with the left range excluding and the right range including the
    split key, so duplicates never straddle a boundary. Returns a single
    range when the tree is too small to split. Planning-time only — no page
    accesses are charged. *)

val entry_count : t -> int

val distinct_keys : t -> int
(** ICARD(I): number of distinct keys in the index. *)

val leaf_pages : t -> int
(** NINDX(I): number of (leaf) pages in the index. *)

val height : t -> int
val min_key : t -> key option
val max_key : t -> key option

val check_invariants : t -> (unit, string) result
(** Structural validation used by the property tests: sortedness within and
    across leaves, separator consistency, and leaf-chain completeness. *)
