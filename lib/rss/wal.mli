(** Write-ahead log.

    The RSS provides logging and recovery. The log is an append-only record
    stream with a byte-level codec (round-trip tested); [Recovery] replays it
    to rebuild segment contents after a crash, redoing the effects of
    committed transactions and discarding the rest.

    Durability is staged for group commit: {!append} only buffers a record;
    {!flush} moves everything buffered to the durable image in one batch —
    the single fsync-equivalent boundary a commit group shares. Only
    {!to_bytes} (the surviving byte image a recovery reads) reflects the
    durable stage; {!records} still sees every appended record, flushed or
    not, because in-process replay of a live log is not a crash. *)

type txn = int

type record =
  | Begin of txn
  | Insert of { txn : txn; rel_id : int; tid : Tid.t; tuple : Rel.Tuple.t }
  | Delete of { txn : txn; rel_id : int; tid : Tid.t; tuple : Rel.Tuple.t }
      (** the pre-image, so a REDO of the delete needs no page read *)
  | Commit of txn
  | Abort of txn

type t

val create : unit -> t

val append : t -> record -> unit
(** Buffer a record (no durability until {!flush}). Carries the
    ["wal.append"] failpoint site. While {!Failpoint.halted} the append is
    dropped: the simulated log device died with the crash. *)

val flush : t -> unit
(** Make every buffered record durable in one batch. Carries the
    ["wal.group_flush"] failpoint site, fired {e after} the batch reaches
    the durable image — a crash there is "killed while writing the batch",
    and the torture harness tears the batch at every byte offset (see
    {!last_flush_size}). If a flush hook raises, the batch stays buffered
    (not durable, not lost) and the next flush retries it. No-op while
    {!Failpoint.halted} or when nothing is buffered. At most one flush may
    run at a time (the engine's group-commit leader enforces this); appends
    from other sessions may safely overlap a flush in progress. *)

val set_flush_hook : t -> (unit -> unit) option -> unit
(** Install a hook run inside {!flush} just before the batch becomes
    durable, standing in for the device sync: server tests gate on it to
    pin ack-after-durability, benches sleep in it to model fsync latency,
    and raising from it simulates a leader failure in the fsync window. *)

val unflushed : t -> int
(** Number of buffered records not yet durable. *)

val last_flush_size : t -> int
(** Byte size of the most recently flushed batch — the maximal torn-tail
    span a crash during that flush can produce. *)

val flushes : t -> int
(** Number of completed flushes. *)

val clear : t -> unit
(** Empty the log, all stages (the engine's recovery path truncates it to a
    checkpoint after reloading the surviving state). *)

val records : t -> record list
(** In append order, including records not yet flushed. *)

val byte_size : t -> int
(** Encoded size of all records, including records not yet flushed. *)

val encode : record -> string
val decode : string -> int -> record * int
(** [decode s off] reads one record at [off]; inverse of [encode].
    @raise Invalid_argument on a corrupt record. *)

val to_bytes : t -> string
(** The durable byte image only — what survives a crash. *)

val of_bytes : string -> t
(** Decode an entire serialized log; every decoded record is durable (the
    bytes {e are} the device). Trailing garbage (a torn final write) is
    ignored, as a real recovery would. *)

val equal_record : record -> record -> bool
val pp_record : Format.formatter -> record -> unit
