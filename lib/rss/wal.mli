(** Write-ahead log.

    The RSS provides logging and recovery. The log is an append-only record
    stream with a byte-level codec (round-trip tested); [Recovery] replays it
    to rebuild segment contents after a crash, redoing the effects of
    committed transactions and discarding the rest. *)

type txn = int

type record =
  | Begin of txn
  | Insert of { txn : txn; rel_id : int; tid : Tid.t; tuple : Rel.Tuple.t }
  | Delete of { txn : txn; rel_id : int; tid : Tid.t; tuple : Rel.Tuple.t }
      (** the pre-image, so a REDO of the delete needs no page read *)
  | Commit of txn
  | Abort of txn

type t

val create : unit -> t

val append : t -> record -> unit
(** Carries the ["wal.append"] failpoint site. While {!Failpoint.halted} the
    append is dropped: the simulated log device died with the crash. *)

val clear : t -> unit
(** Empty the log (the engine's recovery path truncates it to a checkpoint
    after reloading the surviving state). *)

val records : t -> record list
(** In append order. *)

val byte_size : t -> int

val encode : record -> string
val decode : string -> int -> record * int
(** [decode s off] reads one record at [off]; inverse of [encode].
    @raise Invalid_argument on a corrupt record. *)

val to_bytes : t -> string
val of_bytes : string -> t
(** Decode an entire serialized log. Trailing garbage (a torn final write)
    is ignored, as a real recovery would. *)

val equal_record : record -> record -> bool
val pp_record : Format.formatter -> record -> unit
