(** Deterministic failpoints for crash-recovery torture testing.

    A failpoint is a named site threaded through a durability-relevant write
    path ([Wal.append], [Wal.flush] — the ["wal.group_flush"] batch
    durability boundary — pager allocation, buffer-pool eviction, segment
    insert/delete, B-tree splits). In normal operation every site is inert —
    {!hit} is a single branch on a global flag. A torture harness drives the
    registry through three phases:

    + {b count}: run the workload once with {!count_only} active; every site
      records how many times it is hit, enumerating the crash points the
      workload exposes;
    + {b crash}: re-run with {!arm} [(site, n)]; the [n]-th hit of [site]
      raises {!Crash} — the simulated kill point — and freezes the registry
      ({!halted} becomes true, so e.g. the WAL rejects the appends an
      in-process unwind handler would attempt after the "machine died");
    + {b recover}: {!reset} everything and replay the surviving log.

    {!arm_schedule} is the seeded alternative to exhaustive enumeration: a
    pseudorandom countdown over all sites picks the crash point, so a fixed
    seed yields a reproducible schedule without a prior counting pass.

    The registry is global (sites live in code that has no handle to thread a
    registry through) and is {b single-domain-only}: arming asserts it runs
    on the main domain, and parallel query execution refuses to start while
    any mode is active (exchange operators degrade to serial execution, and
    {!Pager.enter_parallel} rejects an armed registry outright). Worker
    domains therefore only ever read the inert fast-path flag. *)

exception Crash of string
(** Raised by {!hit} at the armed trigger; the payload is the site name. *)

val hit : string -> unit
(** Record a hit at a named site. Near-free when the registry is inactive or
    {!halted}; otherwise counts the hit and raises {!Crash} when the armed
    trigger fires. *)

val enabled : unit -> bool
(** Whether hits are currently being counted (any mode but off/halted). *)

val halted : unit -> bool
(** A {!Crash} has fired since the last {!reset}: the simulated machine is
    dead. Durable media (the WAL) must refuse writes while halted. *)

val reset : unit -> unit
(** Return to the inert state: mode off, halted cleared, all counters zeroed. *)

val count_only : unit -> unit
(** Zero all counters and start counting hits without ever crashing. *)

val arm : site:string -> at:int -> unit
(** Zero all counters and crash at the [at]-th hit (1-based) of [site]. *)

val arm_schedule : seed:int -> mean:int -> unit
(** Zero all counters and crash after a pseudorandom number of hits across
    all sites, drawn uniformly from [1 .. 2*mean-1] (expected value [mean])
    using a dedicated RNG seeded with [seed]. Deterministic per seed. *)

val disarm : unit -> unit
(** Stop counting and crashing but keep the counters — the counting pass
    ends with this so the harness can read its results. *)

val hits : string -> int
(** Hits recorded at the site since the last counter reset. *)

val counts : unit -> (string * int) list
(** All sites with a nonzero count, sorted by site name. *)

val assert_main_domain : string -> unit
(** Guard for single-domain-only global state ([what] names the operation in
    the error). Used here by the arming entry points and exported for the
    other debug registries ({!Btree.set_order_override}).
    @raise Invalid_argument off the main domain. *)
