(** Lock manager.

    The RSS is responsible for locking in a multi-user environment. We
    implement hierarchical S/X locking at relation and tuple granularity with
    wait-for-graph deadlock detection. The engine is single-threaded, so a
    conflicting request does not literally block: it is queued and reported,
    and queued requests are granted as releases make them compatible. *)

type txn = int

type resource =
  | Relation of int
  | Tuple_of of int * Tid.t  (** relation id, tuple id *)

type mode = Shared | Exclusive

type outcome =
  | Granted
  | Blocked of txn list  (** transactions currently holding conflicting locks *)
  | Deadlock of txn list (** the wait-for cycle that granting would create *)

type t

val create : unit -> t

val acquire : t -> txn -> resource -> mode -> outcome
(** Re-acquiring a held lock is granted; a Shared→Exclusive upgrade is
    granted only when no other holder exists {e and} the queue is empty —
    an upgrade never jumps an already-queued request. Waits-for edges
    cover conflicting holders and queued requests alike, so an upgrade
    that would mutually wait with a queued Exclusive (or with another
    upgrading Shared holder) reports [Deadlock] immediately. A [Blocked]
    request is queued. *)

val release_all : t -> txn -> unit
(** Release every lock of the transaction (two-phase commit point) and grant
    any queued requests that became compatible, in arrival order. *)

val holds : t -> txn -> resource -> mode -> bool

val blocked_txns : t -> txn list
(** Every transaction with a queued (waiting) request, on any resource —
    test harnesses poll this to sequence cross-session schedules. *)

val holders : t -> resource -> (txn * mode) list
val waiting : t -> resource -> (txn * mode) list
val granted_since : t -> txn -> (txn * resource * mode) list
(** Requests of other transactions granted by this transaction's last
    [release_all] (so a test harness can resume them). *)
