exception Crash of string

type mode =
  | Off
  | Count
  | Armed of { site : string; at : int }
  | Scheduled of { mutable countdown : int }

let mode = ref Off
let halted_flag = ref false

(* The registry is global mutable state with no synchronization: it is
   single-domain-only by contract. Arming asserts it runs on the main domain,
   and the executor refuses to enter parallel execution while any mode is
   active ([Pager.enter_parallel] checks {!enabled}), so worker domains only
   ever observe [live = false] — a benign read of an immutable-in-practice
   flag. *)
let main_domain = Domain.self ()

let assert_main_domain what =
  if Domain.self () <> main_domain then
    invalid_arg (what ^ ": single-domain-only; must run on the main domain")

(* Fast-path gate kept in sync with (mode, halted): [hit] in production code
   must cost one load and one branch. *)
let live = ref false

let table : (string, int ref) Hashtbl.t = Hashtbl.create 16

let refresh () =
  live := (match !mode with Off -> false | _ -> not !halted_flag)

let reset () =
  mode := Off;
  halted_flag := false;
  Hashtbl.reset table;
  refresh ()

let count_only () =
  assert_main_domain "Failpoint.count_only";
  Hashtbl.reset table;
  mode := Count;
  halted_flag := false;
  refresh ()

let arm ~site ~at =
  assert_main_domain "Failpoint.arm";
  if at < 1 then invalid_arg "Failpoint.arm: at < 1";
  Hashtbl.reset table;
  mode := Armed { site; at };
  halted_flag := false;
  refresh ()

let arm_schedule ~seed ~mean =
  assert_main_domain "Failpoint.arm_schedule";
  if mean < 1 then invalid_arg "Failpoint.arm_schedule: mean < 1";
  Hashtbl.reset table;
  let rng = Random.State.make [| 0x5eed; seed |] in
  let countdown = 1 + Random.State.int rng ((2 * mean) - 1) in
  mode := Scheduled { countdown };
  halted_flag := false;
  refresh ()

let disarm () =
  mode := Off;
  refresh ()

let enabled () = !live
let halted () = !halted_flag

let crash site =
  halted_flag := true;
  refresh ();
  raise (Crash site)

let counter site =
  match Hashtbl.find_opt table site with
  | Some c -> c
  | None ->
    let c = ref 0 in
    Hashtbl.replace table site c;
    c

let slow_hit site =
  let c = counter site in
  incr c;
  match !mode with
  | Off | Count -> ()
  | Armed { site = s; at } -> if String.equal s site && !c = at then crash site
  | Scheduled sch ->
    sch.countdown <- sch.countdown - 1;
    if sch.countdown <= 0 then crash site

let hit site = if !live then slow_hit site

let hits site = match Hashtbl.find_opt table site with Some c -> !c | None -> 0

let counts () =
  Hashtbl.fold (fun site c acc -> (site, !c) :: acc) table []
  |> List.filter (fun (_, n) -> n > 0)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
