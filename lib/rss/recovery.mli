(** Crash recovery by log replay.

    REDO-only recovery: the effects of committed transactions are replayed
    into a fresh segment; records of transactions with no COMMIT (aborted or
    in flight at the crash) are discarded. Original TIDs are not preserved —
    tuples are re-inserted — so indexes must be rebuilt afterwards, which the
    engine's recovery path does. *)

type result = {
  segment : Segment.t;
  committed : Wal.txn list;
  discarded : Wal.txn list;
  tuples_restored : int;
}

val replay : Pager.t -> Wal.t -> result

val set_commit_filter : bool -> unit
(** Debug hook for the crash-torture harness: with the filter off, {!replay}
    redoes the effects of {e every} transaction in the log — committed,
    aborted, or in flight — a deliberately broken recovery the torture suite
    must detect. Never disable in normal operation. *)
