(** The pager owns every page in the store — data pages (slotted tuple pages
    inside segments), index pages (B-tree nodes) and temporary-list pages —
    under one page-id namespace, and routes every access through one buffer
    pool so that page-fetch accounting covers all page kinds uniformly. *)

type t

val create : ?buffer_pages:int -> unit -> t
(** [buffer_pages] defaults to 64 ("effective buffer pool per user"). *)

val counters : t -> Counters.t
(** The counters record accounting currently lands in — the engine-global
    record, unless a {!with_counters} redirection is in effect. *)

val base_counters : t -> Counters.t
(** The engine-global record, regardless of any active redirection. Session
    records fold into this one at session close ({!Counters.add}). *)

val with_counters : t -> Counters.t -> (unit -> 'a) -> 'a
(** [with_counters t c f] runs [f] with this {e domain}'s accounting
    (including the {!counters} accessor) redirected to [c], restoring the
    previous target when [f] returns or raises. Sessions wrap each statement
    in this; because the redirection is domain-local, concurrent reader
    statements on different domains each write their own record without
    synchronization. *)

val buffer_pages : t -> int

val alloc_data_page : t -> Page.t
(** Allocate a fresh slotted data page. *)

val alloc_page_id : t -> int
(** Allocate a page id with no slotted contents (B-tree nodes and temp pages
    keep their own in-memory representation but still occupy buffer slots). *)

val data_page : t -> int -> Page.t
(** Direct access without I/O accounting (page maintenance, recovery).
    @raise Not_found when the id is not a data page. *)

val read_data_page : t -> int -> Page.t
(** Buffered access: counts a fetch on miss, a hit otherwise. *)

val touch : t -> int -> unit
(** Buffered access to a non-data page (index node, temp page). *)

val note_page_written : t -> unit
(** Record one page written to a temporary list or sort output. *)

val note_rsi_call : t -> unit

val note_sort_run : t -> unit
(** Record one initial sorted run spilled by an external sort. *)

val note_merge_pass : t -> unit
(** Record one merge level performed over a sort's runs. *)

val evict_all : t -> unit
(** Cold the cache (bench harness between runs). *)

val set_shared : t -> bool -> unit
(** Multi-session (server) mode: keep the buffer pool latched even outside
    parallel query phases, since concurrent reader statements touch it from
    several domains. Composes with {!enter_parallel} nesting. *)

val enter_parallel : t -> unit
(** Bracket a parallel query phase (matched by {!exit_parallel}; nests). On
    the outermost entry the buffer pool is latched so worker domains may
    touch it concurrently. Called from the main domain before any worker
    starts.
    @raise Invalid_argument while the failpoint registry is armed — torture
    testing is single-domain-only and the executor must have degraded to
    serial execution already. *)

val exit_parallel : t -> unit
(** Leave a parallel phase; on the outermost exit the buffer pool latch is
    released. Called from the main domain after every worker has finished. *)

val as_worker : t -> (unit -> 'a) -> 'a
(** Run [f] with this domain's I/O accounting redirected to a fresh
    domain-local scratch {!Counters.t}, folded into {!counters} under a latch
    when [f] returns (normally or not). Wrap every task submitted to
    {!Domain_pool} in this so per-domain counts sum exactly to the serial
    totals. *)
