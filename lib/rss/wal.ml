type txn = int

type record =
  | Begin of txn
  | Insert of { txn : txn; rel_id : int; tid : Tid.t; tuple : Rel.Tuple.t }
  | Delete of { txn : txn; rel_id : int; tid : Tid.t; tuple : Rel.Tuple.t }
  | Commit of txn
  | Abort of txn

(* The log is staged: [append] only buffers a record ([pending]); [flush]
   moves everything buffered to the durable image in one batch — the single
   durability boundary group commit amortizes. A batch whose flush failed
   stays in [flushing] and is retried (prepended) by the next flush, so a
   leader failure between append and durability loses nothing silently.

   The mutex exists because a group-commit leader flushes *outside* the
   engine latch (so other sessions keep executing statements — and appending
   records — while the device sync is in flight). Appends and flushes of
   distinct batches may therefore overlap; at most one flush runs at a time
   (the engine's leader flag / per-commit latch enforces that). *)
type t = {
  m : Mutex.t;
  mutable durable_recs : record list;   (* newest first, flushed *)
  mutable flushing_recs : record list;  (* newest first, batch mid-flush *)
  mutable pending_recs : record list;   (* newest first, not yet flushed *)
  durable_buf : Buffer.t;               (* serialized durable image *)
  mutable flushing_bytes : string;
  pending_buf : Buffer.t;
  mutable count : int;                  (* all records, all stages *)
  mutable bytes : int;
  mutable last_flush : int;             (* byte size of the last flushed batch *)
  mutable flushes : int;
  mutable flush_hook : (unit -> unit) option;
}

let create () =
  { m = Mutex.create ();
    durable_recs = [];
    flushing_recs = [];
    pending_recs = [];
    durable_buf = Buffer.create 256;
    flushing_bytes = "";
    pending_buf = Buffer.create 256;
    count = 0;
    bytes = 0;
    last_flush = 0;
    flushes = 0;
    flush_hook = None }

let add_int buf i = Buffer.add_int64_le buf (Int64.of_int i)

let encode r =
  let buf = Buffer.create 64 in
  (match r with
   | Begin tx ->
     Buffer.add_char buf 'B';
     add_int buf tx
   | Commit tx ->
     Buffer.add_char buf 'C';
     add_int buf tx
   | Abort tx ->
     Buffer.add_char buf 'A';
     add_int buf tx
   | Insert { txn; rel_id; tid; tuple } | Delete { txn; rel_id; tid; tuple } ->
     Buffer.add_char buf (match r with Insert _ -> 'I' | _ -> 'D');
     add_int buf txn;
     add_int buf rel_id;
     add_int buf tid.Tid.page;
     add_int buf tid.Tid.slot;
     Rel.Tuple.write buf tuple);
  Buffer.contents buf

let get_int b off = Int64.to_int (Bytes.get_int64_le b off), off + 8

let decode s off =
  let b = Bytes.unsafe_of_string s in
  if off >= String.length s then invalid_arg "Wal.decode: past end";
  let tag = Bytes.get b off in
  let off = off + 1 in
  match tag with
  | 'B' | 'C' | 'A' ->
    let tx, off = get_int b off in
    (match tag with
     | 'B' -> Begin tx, off
     | 'C' -> Commit tx, off
     | _ -> Abort tx, off)
  | 'I' | 'D' ->
    let txn, off = get_int b off in
    let rel_id, off = get_int b off in
    let page, off = get_int b off in
    let slot, off = get_int b off in
    let tuple, off = Rel.Tuple.read b off in
    let tid = { Tid.page; slot } in
    if tag = 'I' then Insert { txn; rel_id; tid; tuple }, off
    else Delete { txn; rel_id; tid; tuple }, off
  | c -> invalid_arg (Printf.sprintf "Wal.decode: bad tag %C" c)

let locked t f =
  Mutex.lock t.m;
  match f () with
  | v ->
    Mutex.unlock t.m;
    v
  | exception e ->
    Mutex.unlock t.m;
    raise e

let append t r =
  (* After a simulated crash the log device is gone: appends attempted by
     in-process unwind handlers (rollback, abort records) must not reach the
     surviving byte image a recovery will read. *)
  if not (Failpoint.halted ()) then begin
    locked t (fun () ->
        t.pending_recs <- r :: t.pending_recs;
        t.count <- t.count + 1;
        let enc = encode r in
        t.bytes <- t.bytes + String.length enc;
        Buffer.add_string t.pending_buf enc);
    (* A crash here leaves the record buffered only: nothing new reaches the
       device between flushes, so the torture harness treats wal.append
       crashes as losing every unflushed record and tearing nothing. *)
    Failpoint.hit "wal.append"
  end

let set_flush_hook t h = locked t (fun () -> t.flush_hook <- h)

let unflushed t =
  locked t (fun () -> List.length t.pending_recs + List.length t.flushing_recs)

let last_flush_size t = locked t (fun () -> t.last_flush)
let flushes t = locked t (fun () -> t.flushes)

let flush t =
  (* The device died with the crash: a flush attempted by unwind handlers
     must not retroactively make the lost batch durable. *)
  if not (Failpoint.halted ()) then begin
    let batch, hook =
      locked t (fun () ->
          (* Absorb pending into the in-flight batch. A previous failed flush
             leaves its batch in [flushing]; the retry covers it too. *)
          if Buffer.length t.pending_buf > 0 then begin
            t.flushing_recs <- t.pending_recs @ t.flushing_recs;
            t.flushing_bytes <- t.flushing_bytes ^ Buffer.contents t.pending_buf;
            t.pending_recs <- [];
            Buffer.clear t.pending_buf
          end;
          t.flushing_bytes, t.flush_hook)
    in
    if String.length batch > 0 then begin
      (* The hook stands in for the device sync (tests gate on it, benches
         sleep in it). It runs outside the mutex so concurrent appends — the
         next window's statements — proceed during the sync. If it raises,
         the batch stays in [flushing]: not durable, not lost. *)
      (match hook with Some f -> f () | None -> ());
      locked t (fun () ->
          t.durable_recs <- t.flushing_recs @ t.durable_recs;
          Buffer.add_string t.durable_buf t.flushing_bytes;
          t.last_flush <- String.length t.flushing_bytes;
          t.flushing_recs <- [];
          t.flushing_bytes <- "";
          t.flushes <- t.flushes + 1);
      (* The site fires after the batch reached the device, so a crash here
         means "killed while the batch was being written": the harness derives
         torn images by truncating this batch at every byte offset. *)
      Failpoint.hit "wal.group_flush"
    end
  end

let clear t =
  locked t (fun () ->
      t.durable_recs <- [];
      t.flushing_recs <- [];
      t.pending_recs <- [];
      Buffer.clear t.durable_buf;
      t.flushing_bytes <- "";
      Buffer.clear t.pending_buf;
      t.count <- 0;
      t.bytes <- 0;
      t.last_flush <- 0)

let records t =
  locked t (fun () ->
      List.rev (t.pending_recs @ t.flushing_recs @ t.durable_recs))

let byte_size t = locked t (fun () -> t.bytes)

let to_bytes t =
  Failpoint.hit "wal.to_bytes";
  (* Durable image only: records still buffered never reached the device. *)
  locked t (fun () -> Buffer.contents t.durable_buf)

let of_bytes s =
  let t = create () in
  let rec go off =
    if off >= String.length s then ()
    else
      match decode s off with
      | r, next ->
        (* Straight into the durable stage: these bytes *are* the device. *)
        t.durable_recs <- r :: t.durable_recs;
        t.count <- t.count + 1;
        t.bytes <- t.bytes + (next - off);
        Buffer.add_substring t.durable_buf s off (next - off);
        go next
      | exception Invalid_argument _ -> ()  (* torn tail *)
  in
  go 0;
  t

let equal_record a b =
  match a, b with
  | Begin x, Begin y | Commit x, Commit y | Abort x, Abort y -> x = y
  | Insert x, Insert y ->
    x.txn = y.txn && x.rel_id = y.rel_id && Tid.equal x.tid y.tid
    && Rel.Tuple.equal x.tuple y.tuple
  | Delete x, Delete y ->
    x.txn = y.txn && x.rel_id = y.rel_id && Tid.equal x.tid y.tid
    && Rel.Tuple.equal x.tuple y.tuple
  | (Begin _ | Commit _ | Abort _ | Insert _ | Delete _), _ -> false

let pp_record ppf = function
  | Begin tx -> Format.fprintf ppf "BEGIN %d" tx
  | Commit tx -> Format.fprintf ppf "COMMIT %d" tx
  | Abort tx -> Format.fprintf ppf "ABORT %d" tx
  | Insert { txn; rel_id; tid; tuple } ->
    Format.fprintf ppf "INSERT txn=%d rel=%d tid=%a %a" txn rel_id Tid.pp tid
      Rel.Tuple.pp tuple
  | Delete { txn; rel_id; tid; tuple } ->
    Format.fprintf ppf "DELETE txn=%d rel=%d tid=%a %a" txn rel_id Tid.pp tid
      Rel.Tuple.pp tuple
