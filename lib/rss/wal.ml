type txn = int

type record =
  | Begin of txn
  | Insert of { txn : txn; rel_id : int; tid : Tid.t; tuple : Rel.Tuple.t }
  | Delete of { txn : txn; rel_id : int; tid : Tid.t; tuple : Rel.Tuple.t }
  | Commit of txn
  | Abort of txn

type t = {
  mutable recs : record list;  (* newest first *)
  mutable count : int;
  mutable bytes : int;
}

let create () = { recs = []; count = 0; bytes = 0 }

let add_int buf i = Buffer.add_int64_le buf (Int64.of_int i)

let encode r =
  let buf = Buffer.create 64 in
  (match r with
   | Begin tx ->
     Buffer.add_char buf 'B';
     add_int buf tx
   | Commit tx ->
     Buffer.add_char buf 'C';
     add_int buf tx
   | Abort tx ->
     Buffer.add_char buf 'A';
     add_int buf tx
   | Insert { txn; rel_id; tid; tuple } | Delete { txn; rel_id; tid; tuple } ->
     Buffer.add_char buf (match r with Insert _ -> 'I' | _ -> 'D');
     add_int buf txn;
     add_int buf rel_id;
     add_int buf tid.Tid.page;
     add_int buf tid.Tid.slot;
     Rel.Tuple.write buf tuple);
  Buffer.contents buf

let get_int b off = Int64.to_int (Bytes.get_int64_le b off), off + 8

let decode s off =
  let b = Bytes.unsafe_of_string s in
  if off >= String.length s then invalid_arg "Wal.decode: past end";
  let tag = Bytes.get b off in
  let off = off + 1 in
  match tag with
  | 'B' | 'C' | 'A' ->
    let tx, off = get_int b off in
    (match tag with
     | 'B' -> Begin tx, off
     | 'C' -> Commit tx, off
     | _ -> Abort tx, off)
  | 'I' | 'D' ->
    let txn, off = get_int b off in
    let rel_id, off = get_int b off in
    let page, off = get_int b off in
    let slot, off = get_int b off in
    let tuple, off = Rel.Tuple.read b off in
    let tid = { Tid.page; slot } in
    if tag = 'I' then Insert { txn; rel_id; tid; tuple }, off
    else Delete { txn; rel_id; tid; tuple }, off
  | c -> invalid_arg (Printf.sprintf "Wal.decode: bad tag %C" c)

let append t r =
  (* After a simulated crash the log device is gone: appends attempted by
     in-process unwind handlers (rollback, abort records) must not reach the
     surviving byte image a recovery will read. *)
  if not (Failpoint.halted ()) then begin
    t.recs <- r :: t.recs;
    t.count <- t.count + 1;
    t.bytes <- t.bytes + String.length (encode r);
    (* The site fires after the record lands, so a crash here means "killed
       while writing this record": the torture harness derives the torn-tail
       images by truncating the final record at every byte offset. *)
    Failpoint.hit "wal.append"
  end

let clear t =
  t.recs <- [];
  t.count <- 0;
  t.bytes <- 0

let records t = List.rev t.recs

let byte_size t = t.bytes

let to_bytes t =
  Failpoint.hit "wal.to_bytes";
  let buf = Buffer.create (t.bytes + 16) in
  List.iter (fun r -> Buffer.add_string buf (encode r)) (records t);
  Buffer.contents buf

let of_bytes s =
  let t = create () in
  let rec go off =
    if off >= String.length s then ()
    else
      match decode s off with
      | r, next ->
        append t r;
        go next
      | exception Invalid_argument _ -> ()  (* torn tail *)
  in
  go 0;
  t

let equal_record a b =
  match a, b with
  | Begin x, Begin y | Commit x, Commit y | Abort x, Abort y -> x = y
  | Insert x, Insert y ->
    x.txn = y.txn && x.rel_id = y.rel_id && Tid.equal x.tid y.tid
    && Rel.Tuple.equal x.tuple y.tuple
  | Delete x, Delete y ->
    x.txn = y.txn && x.rel_id = y.rel_id && Tid.equal x.tid y.tid
    && Rel.Tuple.equal x.tuple y.tuple
  | (Begin _ | Commit _ | Abort _ | Insert _ | Delete _), _ -> false

let pp_record ppf = function
  | Begin tx -> Format.fprintf ppf "BEGIN %d" tx
  | Commit tx -> Format.fprintf ppf "COMMIT %d" tx
  | Abort tx -> Format.fprintf ppf "ABORT %d" tx
  | Insert { txn; rel_id; tid; tuple } ->
    Format.fprintf ppf "INSERT txn=%d rel=%d tid=%a %a" txn rel_id Tid.pp tid
      Rel.Tuple.pp tuple
  | Delete { txn; rel_id; tid; tuple } ->
    Format.fprintf ppf "DELETE txn=%d rel=%d tid=%a %a" txn rel_id Tid.pp tid
      Rel.Tuple.pp tuple
