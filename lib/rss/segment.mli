(** Segments: logical units of data pages.

    A segment may hold tuples of several relations; no relation spans a
    segment. A segment scan must touch every non-empty page of the segment
    regardless of which relation's tuples it wants — that is what makes
    TCARD/P the segment-scan cost in TABLE 2. *)

type fill_policy =
  | Per_relation
      (** Each relation fills its own current page before a new one is
          allocated, so pages stay homogeneous (P(T) close to
          TCARD(T)/segment pages only when relations share the segment). *)
  | First_fit
      (** Any page with room is used, interleaving relations on shared pages
          (drives P(T) below 1 even for a lone relation's pages). *)

type t

val create : ?policy:fill_policy -> Pager.t -> t
val pager : t -> Pager.t

val insert : t -> ?xmin:int -> rel_id:int -> Rel.Tuple.t -> Tid.t
(** Store a tuple, allocating pages as needed. No I/O is charged: loading is
    not part of any measured query. [xmin] defaults to 0 (frozen). *)

val insert_at : t -> ?xmin:int -> rel_id:int -> Tid.t -> Rel.Tuple.t -> unit
(** Restore a previously deleted tuple at its exact TID ({!Page.insert_at});
    used by transaction rollback.
    @raise Invalid_argument when the TID is live or never existed. *)

val delete : t -> Tid.t -> bool
(** Physically tombstone a TID (rollback of inserts, VACUUM reclaim). *)

val set_xmax : t -> Tid.t -> int -> unit
(** MVCC delete-mark: stamp the version's deleter (0 clears the mark). *)

val set_xmin : t -> Tid.t -> int -> unit
(** Restamp the version's creator (VACUUM freezing uses 0). *)

val fetch : t -> Tid.t -> (int * Rel.Tuple.t) option
(** Buffered tuple fetch (charges a page access): [(rel_id, tuple)]. *)

val fetch_v : t -> Tid.t -> (int * Rel.Tuple.t * int * int) option
(** Like {!fetch} with [(xmin, xmax)] version metadata. *)

val fetch_unaccounted : t -> Tid.t -> (int * Rel.Tuple.t) option
val fetch_unaccounted_v : t -> Tid.t -> (int * Rel.Tuple.t * int * int) option

val fetcher : t -> Tid.t -> (int * Rel.Tuple.t) option
(** A repeated-fetch closure that caches the last page it resolved, for
    scans fetching key-ordered runs of tuples from clustered pages.
    Accounting identical to {!fetch}. *)

val fetcher_v : t -> Tid.t -> (int * Rel.Tuple.t * int * int) option
(** {!fetcher} with version metadata. *)

val page_ids : t -> int list
(** All pages of the segment, in allocation order. *)

val nonempty_page_count : t -> int

val pages_holding : t -> rel_id:int -> int
(** TCARD(T): pages of this segment holding at least one tuple of [rel_id]. *)

val tuple_count : t -> rel_id:int -> int
(** NCARD(T) computed by walking the segment (UPDATE STATISTICS uses it). *)
