type state =
  | Open of (unit -> (Tid.t * Rel.Tuple.t) option)
  | Finished  (* drained; further NEXTs return nothing *)
  | Closed

type t = {
  mutable state : state;
}

(* A segment scan examines all pages of the segment that contain tuples, from
   any relation, returning those belonging to the given relation. Pages are
   charged once each; SARG-rejected tuples cost no RSI call.

   [snap] selects which versions qualify: with a read view, MVCC snapshot
   visibility over (xmin, xmax); without one, default visibility (not
   delete-marked), which reproduces pre-MVCC single-session behavior. *)
let open_segment_scan segment ~rel_id ?pages ?snap ?(sargs = Sarg.always_true)
    () =
  let pager = Segment.pager segment in
  let pages =
    ref (match pages with Some ps -> ps | None -> Segment.page_ids segment)
  in
  let current : (int * int * Rel.Tuple.t * int * int) list ref = ref [] in
  let current_page = ref (-1) in
  let qualifies xmin xmax =
    match snap with
    | None -> xmax = 0
    | Some v -> Mvcc.view_visible v ~xmin ~xmax
  in
  let rec pull () =
    match !current with
    | (slot, rid, tuple, xmin, xmax) :: rest ->
      current := rest;
      if rid = rel_id && qualifies xmin xmax && Sarg.matches sargs tuple then begin
        Pager.note_rsi_call pager;
        Some ({ Tid.page = !current_page; slot }, tuple)
      end
      else pull ()
    | [] ->
      (match !pages with
       | [] -> None
       | pid :: rest ->
         pages := rest;
         let page = Pager.data_page pager pid in
         if Page.is_empty page then pull ()
         else begin
           Pager.touch pager pid;
           current_page := pid;
           current := Page.versions page;
           pull ()
         end)
  in
  { state = Open pull }

let open_index_scan segment ~rel_id ~index ?lo ?hi ?(dir = `Asc) ?snap
    ?(sargs = Sarg.always_true) () =
  let pager = Segment.pager segment in
  let entries =
    match dir with
    | `Asc -> Btree.range_cursor ?lo ?hi index
    | `Desc -> Btree.range_cursor_desc ?lo ?hi index
  in
  let fetch = Segment.fetcher_v segment in
  let qualifies xmin xmax =
    match snap with
    | None -> xmax = 0
    | Some v -> Mvcc.view_visible v ~xmin ~xmax
  in
  let rec pull () =
    match entries () with
    | None -> None
    | Some (_key, tid) ->
      (match fetch tid with
       | Some (rid, tuple, xmin, xmax)
         when rid = rel_id && qualifies xmin xmax && Sarg.matches sargs tuple ->
         Pager.note_rsi_call pager;
         Some (tid, tuple)
       | Some _ | None -> pull ())
  in
  { state = Open pull }

let next t =
  match t.state with
  | Closed -> invalid_arg "Scan.next: scan is closed"
  | Finished -> None
  | Open pull ->
    (match pull () with
     | Some _ as r -> r
     | None ->
       t.state <- Finished;
       None)

let close t = t.state <- Closed

let to_list t =
  let rec go acc = match next t with None -> List.rev acc | Some x -> go (x :: acc) in
  go []
