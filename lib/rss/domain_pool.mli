(** Process-wide pool of worker domains for parallel query execution.

    The pool grows on demand up to a small cap and is never torn down; idle
    workers block on the task queue. Submitted closures run on an arbitrary
    worker; their result (or exception) is retrieved with {!join}.

    Invariant the executor maintains, on which deadlock-freedom rests:
    tasks never submit subtasks and never join other jobs — only the main
    domain consumes results. A pool smaller than the requested degree of
    parallelism is then safe: excess tasks queue until a worker frees up. *)

type 'a job

val ensure : int -> unit
(** Grow the pool to at least [min n max_workers] workers (never shrinks). *)

val size : unit -> int
(** Workers currently spawned. *)

val submit : (unit -> 'a) -> 'a job
(** Enqueue a task; spawns the first worker if the pool is empty. *)

val join : 'a job -> 'a
(** Block until the job completes; re-raises the task's exception. *)
