(** Transaction status table and snapshot visibility for tuple versioning.

    Tuples carry [(xmin, xmax)] transaction ids; commits are stamped with
    monotonic commit sequence numbers (CSNs). A snapshot captures the
    highest committed CSN plus the reader's own txn id; visibility is
    "creator committed at-or-before the snapshot (or is me), deleter did
    not". [xmin = 0] means frozen — committed before every snapshot.

    Synchronization is external: mutators run under the engine's write
    latch, readers under its shared latch. *)

type t

type snapshot = {
  csn : int;  (** versions committed at-or-before this CSN are visible *)
  txn : int;  (** reader's own txn id; 0 = plain statement snapshot *)
}

val create : unit -> t
val reset : t -> unit

val begin_txn : t -> int -> unit
(** Register a txn as Active, recording the current CSN as its snapshot
    floor for the VACUUM horizon. *)

val commit : t -> int -> int
(** Stamp the txn Committed with a fresh CSN (returned). *)

val abort : t -> int -> unit
(** Forget the txn; its undo is physical so no heap reference survives. *)

val snapshot : t -> txn:int -> snapshot
val statement_snapshot : t -> snapshot

val active_count : t -> int
(** Number of in-flight (Active) transactions engine-wide. *)

val horizon : t -> int
(** Oldest CSN any in-flight snapshot can still read: versions whose
    deleter committed at-or-before it are reclaimable. *)

val committed : t -> int -> bool
val committed_before : t -> snapshot -> int -> bool
val commit_csn : t -> int -> int option

val visible : t -> snapshot -> xmin:int -> xmax:int -> bool

val prune : t -> horizon:int -> unit
(** Drop Committed entries at-or-before [horizon] (every tuple referencing
    them has been frozen or reclaimed by VACUUM). *)

(** A read view packages the status table with a snapshot so scans carry
    one value. *)
type view

val view : t -> snapshot -> view
val view_visible : view -> xmin:int -> xmax:int -> bool
