type direction = Asc | Desc

type key = (int * direction) list

let compare_tuples key a b =
  let rec go = function
    | [] -> 0
    | (c, dir) :: rest ->
      let d = Rel.Value.compare (Rel.Tuple.get a c) (Rel.Tuple.get b c) in
      if d <> 0 then (match dir with Asc -> d | Desc -> -d) else go rest
  in
  go key

let approx_tuple_bytes = 4

(* --- run formation ------------------------------------------------------ *)

(* Pull up to [bytes_budget] of input into a fresh tuple array (doubling
   growth, no per-tuple list cells). A tuple that would overflow a non-empty
   run is carried in [pending] and opens the next run, exactly as the
   list-based formation did. *)
let next_run ~bytes_budget pending next =
  let buf = ref (Array.make 256 [||]) in
  let len = ref 0 in
  let push t =
    if !len = Array.length !buf then begin
      let b = Array.make (2 * !len) [||] in
      Array.blit !buf 0 b 0 !len;
      buf := b
    end;
    Array.unsafe_set !buf !len t;
    incr len
  in
  let used = ref 0 in
  let rec fill () =
    let item =
      match !pending with
      | Some _ as t ->
        pending := None;
        t
      | None -> next ()
    in
    match item with
    | None -> ()
    | Some t ->
      let sz = Rel.Tuple.serialized_size t + approx_tuple_bytes in
      if !used + sz > bytes_budget && !len > 0 then pending := Some t
      else begin
        used := !used + sz;
        push t;
        fill ()
      end
  in
  fill ();
  if !len = 0 then None else Some (Array.sub !buf 0 !len)

(* --- tournament k-way merge ---------------------------------------------- *)

(* A sorted run: its tuples in a temp list, plus — when every tuple's first
   key column is an [Int] — the run's keys as a flat unboxed array aligned
   with the tuple order (a normalized-key cache, as production external sorts
   embed in their run records). Merging keyed runs reads keys sequentially
   from these arrays and never dereferences tuple contents; the arrays are
   derivable from the written pages, so temp-page accounting is unchanged. *)
type run = {
  tl : Temp_list.t;
  keys : int array option;
}

type merge_entry = {
  mutable head : Rel.Tuple.t;
  mutable hok : bool;  (* head's first key column is an unboxed-cacheable Int *)
  mutable hkey : int;  (* that integer, meaningful only when [hok] *)
  mutable ki : int;  (* head's index within [keys], when the run is keyed *)
  keys : int array;  (* the run's key cache; [||] when absent *)
  has_keys : bool;
  mutable alive : bool;
  run : int;  (* position among the merge inputs; breaks ties for stability *)
  next : unit -> Rel.Tuple.t option;
}

(* Merge [runs] (in input order) into one dispenser through a tournament
   loser tree over the run cursors: after each emission only the winner's
   root-to-leaf path is replayed, which is exactly [ceil(log2 k)] comparisons
   per element (a binary heap's sift-down pays two per level) and zero
   allocation. Earlier runs win ties, and since run formation and fan-in
   batching both keep input order, the merge is stable.

   Each entry caches its head's first key column as an unboxed int. A merge
   pass visits tuples in key order — uncorrelated with allocation order — so
   the tuple-array and value-block loads behind every comparison are cache
   misses; with the cache, a comparison on a distinct first key touches only
   the (hot) entry records. Keyed runs refill the cache from their key array
   (a sequential, prefetchable read — tuple contents are never touched);
   unkeyed runs load it from the head tuple on each advance. [key] must
   describe the same order as [cmp] (the [sort_cursor] contract).

   [collect] is called with the emitted tuple's cached key, in output order —
   the caller uses it to build the merged run's key array. Only pass it when
   every input run is keyed (then every emission has a valid cache). *)
let merge_dispenser cmp ~key ?collect (runs : run list) :
    unit -> Rel.Tuple.t option =
  let first_col, first_neg =
    match key with (c, d) :: _ -> (c, d = Desc) | [] -> (-1, false)
  in
  (* with a one-column key, equal cached heads tie outright — no reason to
     re-derive that from the tuples *)
  let single = match key with [ _ ] -> true | _ -> false in
  let load e =
    if e.has_keys then begin
      e.hok <- true;
      e.hkey <- Array.unsafe_get e.keys e.ki
    end
    else if first_col >= 0 then
      match Rel.Tuple.get e.head first_col with
      | Rel.Value.Int x ->
        e.hok <- true;
        e.hkey <- x
      | _ -> e.hok <- false
    else e.hok <- false
  in
  let entries =
    Array.of_list
      (List.mapi
         (fun i r ->
           let next = Temp_list.cursor r.tl in
           let keys, has_keys =
             match r.keys with Some ks -> (ks, true) | None -> ([||], false)
           in
           match next () with
           | None ->
             { head = [||]; hok = false; hkey = 0; ki = 0; keys; has_keys;
               alive = false; run = i; next }
           | Some head ->
             let e =
               { head; hok = false; hkey = 0; ki = 0; keys; has_keys;
                 alive = true; run = i; next }
             in
             load e;
             e)
         runs)
  in
  let k = Array.length entries in
  (* leaves padded to a power of two; index -1 marks an absent competitor *)
  let k2 =
    let rec up n = if n >= k then n else up (2 * n) in
    up 2
  in
  let beats a b =
    (* does entry index [a] win against [b]? exhausted entries always lose *)
    if b < 0 then true
    else if a < 0 then false
    else
      let ea = Array.unsafe_get entries a and eb = Array.unsafe_get entries b in
      if not ea.alive then false
      else if not eb.alive then true
      else
        let c =
          if ea.hok && eb.hok then
            if ea.hkey <> eb.hkey then
              if (ea.hkey < eb.hkey) <> first_neg then -1 else 1
            else if single then 0
            else cmp ea.head eb.head
          else cmp ea.head eb.head
        in
        c < 0 || (c = 0 && ea.run < eb.run)
  in
  (* losers.(j) for internal nodes 1..k2-1; champion kept separately *)
  let losers = Array.make k2 (-1) in
  let winner = Array.make (2 * k2) (-1) in
  for i = 0 to k - 1 do
    winner.(k2 + i) <- i
  done;
  for j = k2 - 1 downto 1 do
    let a = winner.(2 * j) and b = winner.((2 * j) + 1) in
    if beats a b then begin
      winner.(j) <- a;
      losers.(j) <- b
    end
    else begin
      winner.(j) <- b;
      losers.(j) <- a
    end
  done;
  let champion = ref winner.(1) in
  let replay i =
    (* refilled leaf [i] competes back up its path; exactly log2 k2 compares *)
    let w = ref i in
    let j = ref ((k2 + i) / 2) in
    while !j >= 1 do
      let o = Array.unsafe_get losers !j in
      if beats o !w then begin
        Array.unsafe_set losers !j !w;
        w := o
      end;
      j := !j / 2
    done;
    champion := !w
  in
  let next () =
    let c = !champion in
    if c < 0 || not (Array.unsafe_get entries c).alive then None
    else begin
      let e = Array.unsafe_get entries c in
      let v = e.head in
      (match collect with Some f -> f e.hkey | None -> ());
      (match e.next () with
       | Some h ->
         e.head <- h;
         e.ki <- e.ki + 1;
         load e
       | None ->
         e.alive <- false;
         e.head <- [||]);
      replay c;
      Some v
    end
  in
  next

let merge_runs cmp ~key pager (runs : run list) : run =
  if List.for_all (fun (r : run) -> Option.is_some r.keys) runs then begin
    (* merged size is the sum of the inputs — collect output keys into an
       exactly-sized array so the merged run stays keyed *)
    let total =
      List.fold_left
        (fun a (r : run) ->
          a + match r.keys with Some k -> Array.length k | None -> 0)
        0 runs
    in
    let out = Array.make (max 1 total) 0 in
    let n = ref 0 in
    let collect x =
      Array.unsafe_set out !n x;
      incr n
    in
    let tl = Temp_list.of_dispenser pager (merge_dispenser cmp ~key ~collect runs) in
    { tl; keys = Some out }
  end
  else { tl = Temp_list.of_dispenser pager (merge_dispenser cmp ~key runs); keys = None }

(* --- driver -------------------------------------------------------------- *)

let resolve_params ?run_pages ?fan_in pager =
  let buffer = Pager.buffer_pages pager in
  ( Option.value run_pages ~default:(max 1 buffer),
    max 2 (Option.value fan_in ~default:(max 2 (buffer - 1))) )

(* Sort one run in place. When the first key column is Int throughout the
   run, sort (key, tuple) pairs so the comparator works on unboxed ints and
   only dereferences tuples to break exact key ties — the same cache argument
   as the merge entries' cached heads. [Array.stable_sort] keeps equal pairs
   in input order, so stability is preserved in both paths. Returns the
   sorted keys (the run's normalized-key cache) when the keyed path ran. *)
let sort_run cmp ~first arr =
  let keyed =
    match first with
    | None -> None
    | Some (col, _, _) ->
      let n = Array.length arr in
      let keyed = Array.make n (0, ([||] : Rel.Tuple.t)) in
      let rec fill i =
        if i >= n then Some keyed
        else
          let t = Array.unsafe_get arr i in
          (match Rel.Tuple.get t col with
           | Rel.Value.Int x ->
             Array.unsafe_set keyed i (x, t);
             fill (i + 1)
           | _ -> None)
      in
      fill 0
  in
  match keyed, first with
  | Some keyed, Some (_, neg, single) ->
    let pair_cmp (k1, t1) (k2, t2) =
      if k1 <> (k2 : int) then if (k1 < k2) <> neg then -1 else 1
      else if single then 0
      else cmp t1 t2
    in
    Array.stable_sort pair_cmp keyed;
    let n = Array.length arr in
    let ks = Array.make n 0 in
    for i = 0 to n - 1 do
      let k, t = Array.unsafe_get keyed i in
      Array.unsafe_set arr i t;
      Array.unsafe_set ks i k
    done;
    Some ks
  | _ ->
    Array.stable_sort cmp arr;
    None

(* Phase 1: array-backed sorted runs, one temp list each. *)
let form_runs cmp ~key pager ~run_pages next =
  let first =
    match key with
    | [ (c, d) ] -> Some (c, d = Desc, true)
    | (c, d) :: _ -> Some (c, d = Desc, false)
    | [] -> None
  in
  let pending = ref None in
  let rec go acc =
    match next_run ~bytes_budget:(run_pages * Page.size) pending next with
    | None -> List.rev acc
    | Some arr ->
      let keys = sort_run cmp ~first arr in
      Pager.note_sort_run pager;
      go ({ tl = Temp_list.of_array pager arr; keys } :: acc)
  in
  go []

(* One fan-in-wide merge level over the surviving runs (one observed pass);
   batches keep input order, so run indices keep breaking ties correctly at
   every level. *)
let merge_pass cmp ~key pager ~fan_in runs =
  Pager.note_merge_pass pager;
  let rec batch acc current n = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | r :: rest ->
      if n = fan_in then batch (List.rev current :: acc) [ r ] 1 rest
      else batch acc (r :: current) (n + 1) rest
  in
  List.map
    (fun group ->
      match group with [ r ] -> r | _ -> merge_runs cmp ~key pager group)
    (batch [] [] 0 runs)

let sort_cursor ?run_pages ?fan_in ?cmp pager ~key next =
  let cmp = match cmp with Some c -> c | None -> compare_tuples key in
  let run_pages, fan_in = resolve_params ?run_pages ?fan_in pager in
  let rec merge_phase = function
    | [] -> Temp_list.of_array pager [||]
    | [ r ] -> r.tl
    | runs -> merge_phase (merge_pass cmp ~key pager ~fan_in runs)
  in
  merge_phase (form_runs cmp ~key pager ~run_pages next)

let sort_stream ?run_pages ?fan_in ?cmp pager ~key next =
  let cmp = match cmp with Some c -> c | None -> compare_tuples key in
  let run_pages, fan_in = resolve_params ?run_pages ?fan_in pager in
  (* Intermediate passes materialize as usual, but the last merge — once no
     more than fan-in runs survive — feeds the consumer on the fly: the final
     sorted result is never written to temp pages at all. *)
  let rec reduce runs =
    if List.length runs <= fan_in then runs
    else reduce (merge_pass cmp ~key pager ~fan_in runs)
  in
  match reduce (form_runs cmp ~key pager ~run_pages next) with
  | [] -> fun () -> None
  | [ r ] -> Temp_list.cursor r.tl
  | runs ->
    Pager.note_merge_pass pager;
    merge_dispenser cmp ~key runs

let sort ?run_pages ?fan_in ?cmp pager ~key seq =
  sort_cursor ?run_pages ?fan_in ?cmp pager ~key (Seq.to_dispenser seq)

(* --- split run formation / merge (parallel sort) -------------------------- *)

(* [sort_stream] in two halves, so run formation can be fanned out across
   domains: each worker forms the runs for one contiguous input partition
   ([runs_of_dispenser]), and the main domain merges the concatenation of the
   per-partition run lists ([merge_stream]). Output is byte-identical to
   [sort_stream] over the concatenated input: run formation is per-partition
   deterministic, the concatenated run list preserves input order exactly as
   serial formation does (partitions are contiguous and in order), and ties
   are broken by run index at every merge level. *)

let runs_of_dispenser ?run_pages ?cmp pager ~key next =
  let cmp = match cmp with Some c -> c | None -> compare_tuples key in
  let run_pages, _ = resolve_params ?run_pages pager in
  form_runs cmp ~key pager ~run_pages next

let merge_stream ?fan_in ?cmp pager ~key runs =
  let cmp = match cmp with Some c -> c | None -> compare_tuples key in
  let _, fan_in = resolve_params ?fan_in pager in
  let rec reduce runs =
    if List.length runs <= fan_in then runs
    else reduce (merge_pass cmp ~key pager ~fan_in runs)
  in
  match reduce runs with
  | [] -> fun () -> None
  | [ r ] -> Temp_list.cursor r.tl
  | runs ->
    Pager.note_merge_pass pager;
    merge_dispenser cmp ~key runs

(* --- legacy baseline ----------------------------------------------------- *)

(* The pre-streaming implementation — list-formed runs merged through
   closure-per-element [Seq] trees — kept verbatim as the measurable "before"
   for bench `hot` (the same role ~compiled:false plays for evaluation). Not
   used by the executor. *)

let sort_run cmp tuples = List.stable_sort cmp tuples

let take_run ~bytes_budget seq =
  let rec go acc used seq =
    match seq () with
    | Seq.Nil -> List.rev acc, Seq.empty
    | Seq.Cons (t, rest) ->
      let used = used + Rel.Tuple.serialized_size t + approx_tuple_bytes in
      if used > bytes_budget && acc <> [] then List.rev acc, fun () -> Seq.Cons (t, rest)
      else go (t :: acc) used rest
  in
  go [] 0 seq

let merge_two cmp a b =
  let rec go a b () =
    match a (), b () with
    | Seq.Nil, r -> r
    | l, Seq.Nil -> l
    | Seq.Cons (x, a') as l, (Seq.Cons (y, b') as r) ->
      if cmp x y <= 0 then Seq.Cons (x, go a' (fun () -> r))
      else Seq.Cons (y, go (fun () -> l) b')
  in
  go a b

let rec merge_many cmp = function
  | [] -> Seq.empty
  | [ s ] -> s
  | ss ->
    let rec pair = function
      | a :: b :: rest -> merge_two cmp a b :: pair rest
      | rest -> rest
    in
    merge_many cmp (pair ss)

let sort_baseline ?run_pages ?fan_in ?cmp pager ~key seq =
  let cmp = match cmp with Some c -> c | None -> compare_tuples key in
  let buffer = Pager.buffer_pages pager in
  let run_pages = Option.value run_pages ~default:(max 1 buffer) in
  let fan_in = max 2 (Option.value fan_in ~default:(max 2 (buffer - 1))) in
  let rec make_runs acc seq =
    let run, rest = take_run ~bytes_budget:(run_pages * Page.size) seq in
    match run with
    | [] -> List.rev acc
    | _ ->
      let sorted = sort_run cmp run in
      let tl = Temp_list.of_seq pager (List.to_seq sorted) in
      make_runs (tl :: acc) rest
  in
  let runs = make_runs [] seq in
  let rec merge_phase = function
    | [] -> Temp_list.of_seq pager Seq.empty
    | [ tl ] -> tl
    | runs ->
      let rec batch acc current n = function
        | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
        | r :: rest ->
          if n = fan_in then batch (List.rev current :: acc) [ r ] 1 rest
          else batch acc (r :: current) (n + 1) rest
      in
      let groups = batch [] [] 0 runs in
      let merged =
        List.map
          (fun group ->
            match group with
            | [ tl ] -> tl
            | _ ->
              let inputs = List.map Temp_list.read group in
              Temp_list.of_seq pager (merge_many cmp inputs))
          groups
      in
      merge_phase merged
  in
  merge_phase runs

let passes ?run_pages ?fan_in ~buffer_pages ~tuples ~tuples_per_page () =
  let run_pages = Option.value run_pages ~default:(max 1 buffer_pages) in
  let fan_in = max 2 (Option.value fan_in ~default:(max 2 (buffer_pages - 1))) in
  if tuples = 0 then 0
  else
    let pages = ceil (float_of_int tuples /. tuples_per_page) in
    let runs = ceil (pages /. float_of_int run_pages) in
    let rec go n runs = if runs <= 1. then n else go (n + 1) (ceil (runs /. float_of_int fan_in)) in
    go 1 runs
