type direction = Asc | Desc

type key = (int * direction) list

let compare_tuples key a b =
  let rec go = function
    | [] -> 0
    | (c, dir) :: rest ->
      let d = Rel.Value.compare (Rel.Tuple.get a c) (Rel.Tuple.get b c) in
      if d <> 0 then (match dir with Asc -> d | Desc -> -d) else go rest
  in
  go key

(* Stable in-memory sort of one run. *)
let sort_run cmp tuples = List.stable_sort cmp tuples

let approx_tuple_bytes = 4

let take_run ~bytes_budget seq =
  let rec go acc used seq =
    match seq () with
    | Seq.Nil -> List.rev acc, Seq.empty
    | Seq.Cons (t, rest) ->
      let used = used + Rel.Tuple.serialized_size t + approx_tuple_bytes in
      if used > bytes_budget && acc <> [] then List.rev acc, fun () -> Seq.Cons (t, rest)
      else go (t :: acc) used rest
  in
  go [] 0 seq

let merge_two cmp a b =
  let rec go a b () =
    match a (), b () with
    | Seq.Nil, r -> r
    | l, Seq.Nil -> l
    | Seq.Cons (x, a') as l, (Seq.Cons (y, b') as r) ->
      if cmp x y <= 0 then Seq.Cons (x, go a' (fun () -> r))
      else Seq.Cons (y, go (fun () -> l) b')
  in
  go a b

(* K-way merge built as a balanced tree of 2-way merges; stability holds
   because earlier runs win ties. *)
let rec merge_many cmp = function
  | [] -> Seq.empty
  | [ s ] -> s
  | ss ->
    let rec pair = function
      | a :: b :: rest -> merge_two cmp a b :: pair rest
      | rest -> rest
    in
    merge_many cmp (pair ss)

let sort ?run_pages ?fan_in ?cmp pager ~key seq =
  let cmp = match cmp with Some c -> c | None -> compare_tuples key in
  let buffer = Pager.buffer_pages pager in
  let run_pages = Option.value run_pages ~default:(max 1 buffer) in
  let fan_in = max 2 (Option.value fan_in ~default:(max 2 (buffer - 1))) in
  (* Phase 1: sorted runs. *)
  let rec make_runs acc seq =
    let run, rest = take_run ~bytes_budget:(run_pages * Page.size) seq in
    match run with
    | [] -> List.rev acc
    | _ ->
      let sorted = sort_run cmp run in
      let tl = Temp_list.of_seq pager (List.to_seq sorted) in
      make_runs (tl :: acc) rest
  in
  let runs = make_runs [] seq in
  (* Phase 2: repeated fan-in-way merges until one run remains. *)
  let rec merge_phase = function
    | [] -> Temp_list.of_seq pager Seq.empty
    | [ tl ] -> tl
    | runs ->
      let rec batch acc current n = function
        | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
        | r :: rest ->
          if n = fan_in then batch (List.rev current :: acc) [ r ] 1 rest
          else batch acc (r :: current) (n + 1) rest
      in
      let groups = batch [] [] 0 runs in
      let merged =
        List.map
          (fun group ->
            match group with
            | [ tl ] -> tl
            | _ ->
              let inputs = List.map Temp_list.read group in
              Temp_list.of_seq pager (merge_many cmp inputs))
          groups
      in
      merge_phase merged
  in
  merge_phase runs

let passes ?run_pages ?fan_in ~buffer_pages ~tuples ~tuples_per_page () =
  let run_pages = Option.value run_pages ~default:(max 1 buffer_pages) in
  let fan_in = max 2 (Option.value fan_in ~default:(max 2 (buffer_pages - 1))) in
  if tuples = 0 then 0
  else
    let pages = ceil (float_of_int tuples /. tuples_per_page) in
    let runs = ceil (pages /. float_of_int run_pages) in
    let rec go n runs = if runs <= 1. then n else go (n + 1) (ceil (runs /. float_of_int fan_in)) in
    go 1 runs
