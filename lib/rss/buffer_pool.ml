(* Classic O(1) LRU: hash table from page id to an intrusive doubly-linked
   node; the list is kept in recency order with [head] most recent. *)

type node = {
  page_id : int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  cap : int;
  table : (int, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable mru : int;  (* id at [head], or min_int when empty *)
  m : Mutex.t;
  mutable latched : bool;
      (* serialize [touch] under the mutex; set only while a parallel query
         phase has worker domains sharing the pool *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  { cap = capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    mru = min_int;
    m = Mutex.create ();
    latched = false }

let capacity t = t.cap
let resident t = Hashtbl.length t.table
let contains t id = Hashtbl.mem t.table id

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch_raw t id =
  (* Touching the page already at the front needs no relink and cannot miss.
     Scans fetch runs of tuples from the same page, so this one-compare path
     carries nearly every RSI call. *)
  if id = t.mru then `Hit
  else begin
    t.mru <- id;
    match Hashtbl.find_opt t.table id with
    | Some n ->
      unlink t n;
      push_front t n;
      `Hit
    | None ->
      if Hashtbl.length t.table >= t.cap then begin
        (* Pages have no separate disk image here, so there is no literal
           dirty-page writeback; the eviction is the durability-relevant
           moment the failpoint models. *)
        Failpoint.hit "buffer_pool.evict";
        match t.tail with
        | Some victim ->
          unlink t victim;
          Hashtbl.remove t.table victim.page_id
        | None -> assert false
      end;
      let n = { page_id = id; prev = None; next = None } in
      Hashtbl.replace t.table id n;
      push_front t n;
      `Miss
  end

let set_latched t b = t.latched <- b

let touch t id =
  (* The unlatched path stays a direct call: serial execution — the common
     case — pays nothing for the mutex's existence. *)
  if not t.latched then touch_raw t id
  else begin
    Mutex.lock t.m;
    match touch_raw t id with
    | r ->
      Mutex.unlock t.m;
      r
    | exception e ->
      Mutex.unlock t.m;
      raise e
  end

let evict_all t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.mru <- min_int
