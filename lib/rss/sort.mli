(** External merge sort into a temporary list.

    C-sort(path) in the paper covers: retrieving the data via the chosen
    access path, sorting (possibly several passes), and writing the result
    into a temporary list. The retrieval cost is charged by whatever scan
    feeds [sort]; this module charges the run writes, the merge-pass reads
    and writes, and the final output pages, all through the pager counters.

    After a sort on the join column the output is clustered on it — one page
    access retrieves several matching tuples — which is exactly why the merge
    join's inner-scan formula (TEMPPAGES/N per opening) beats re-scanning. *)

type direction = Asc | Desc

type key = (int * direction) list
(** Column positions with per-column direction. *)

val compare_tuples : key -> Rel.Tuple.t -> Rel.Tuple.t -> int

val sort :
  ?run_pages:int ->
  ?fan_in:int ->
  ?cmp:(Rel.Tuple.t -> Rel.Tuple.t -> int) ->
  Pager.t ->
  key:key ->
  Rel.Tuple.t Seq.t ->
  Temp_list.t
(** [run_pages] is the in-memory run size in pages (default: the pager's
    buffer size); [fan_in] the merge width (default: buffer size - 1). The
    sort is stable. [cmp] overrides the comparator (default:
    [compare_tuples key]) — the executor passes a position-resolved compiled
    comparator so the per-comparison path does no key-list interpretation;
    it must order exactly as [key] or the clustering contract breaks. *)

val passes :
  ?run_pages:int ->
  ?fan_in:int ->
  buffer_pages:int ->
  tuples:int ->
  tuples_per_page:float ->
  unit ->
  int
(** Predicted number of merge passes for the cost model. *)
