(** External merge sort into a temporary list.

    C-sort(path) in the paper covers: retrieving the data via the chosen
    access path, sorting (possibly several passes), and writing the result
    into a temporary list. The retrieval cost is charged by whatever scan
    feeds [sort]; this module charges the run writes, the merge-pass reads
    and writes, and the final output pages, all through the pager counters.

    The implementation is streaming and allocation-lean: runs form in tuple
    arrays sized by the bytes budget and are [Array.stable_sort]ed in place,
    merging goes through a tournament loser tree of run cursors (log2 k
    comparisons, zero allocation per element), and spill behaviour — runs
    written, merge levels performed — is recorded in {!Counters.t} as
    [sort_runs] / [merge_passes] so observed TEMPPAGES traffic sits next to
    the cost model's {!passes} prediction.

    After a sort on the join column the output is clustered on it — one page
    access retrieves several matching tuples — which is exactly why the merge
    join's inner-scan formula (TEMPPAGES/N per opening) beats re-scanning. *)

type direction = Asc | Desc

type key = (int * direction) list
(** Column positions with per-column direction. *)

val compare_tuples : key -> Rel.Tuple.t -> Rel.Tuple.t -> int

val sort_cursor :
  ?run_pages:int ->
  ?fan_in:int ->
  ?cmp:(Rel.Tuple.t -> Rel.Tuple.t -> int) ->
  Pager.t ->
  key:key ->
  (unit -> Rel.Tuple.t option) ->
  Temp_list.t
(** Sort a tuple dispenser (the executor feeds its plan cursor directly — no
    intermediate [Seq] cell per input tuple). [run_pages] is the in-memory
    run size in pages (default: the pager's buffer size); [fan_in] the merge
    width (default: buffer size - 1). The sort is stable. [cmp] overrides
    the comparator (default: [compare_tuples key]) — the executor passes a
    position-resolved compiled comparator so the per-comparison path does no
    key-list interpretation; it must order exactly as [key] or the
    clustering contract breaks. *)

val sort_stream :
  ?run_pages:int ->
  ?fan_in:int ->
  ?cmp:(Rel.Tuple.t -> Rel.Tuple.t -> int) ->
  Pager.t ->
  key:key ->
  (unit -> Rel.Tuple.t option) ->
  unit ->
  Rel.Tuple.t option
(** As [sort_cursor], but the final merge happens on the fly: once no more
    than [fan_in] runs survive, the tournament merge feeds the returned
    dispenser directly and the sorted result is never written to temp pages.
    Intermediate passes (when runs exceed the fan-in) still materialize and
    are accounted exactly as in [sort_cursor] — the streamed final merge
    still counts one [merge_passes] level, keeping observed passes aligned
    with {!passes}. The executor's sort node uses this: ORDER BY and the
    merge join's inputs consume sorted tuples one at a time, so the final
    TEMPPAGES write of a classic external sort is pure overhead. *)

val sort :
  ?run_pages:int ->
  ?fan_in:int ->
  ?cmp:(Rel.Tuple.t -> Rel.Tuple.t -> int) ->
  Pager.t ->
  key:key ->
  Rel.Tuple.t Seq.t ->
  Temp_list.t
(** [sort_cursor] over a sequence. *)

type run
(** One sorted run spilled to temp pages (with its normalized-key cache when
    the first key column is all-Int). *)

val runs_of_dispenser :
  ?run_pages:int ->
  ?cmp:(Rel.Tuple.t -> Rel.Tuple.t -> int) ->
  Pager.t ->
  key:key ->
  (unit -> Rel.Tuple.t option) ->
  run list
(** Run-formation half of {!sort_stream}: drain the dispenser into sorted
    runs (in input order) without merging them. Parallel sorts call this on
    each worker over one contiguous input partition; concatenating the
    per-partition run lists in partition order and handing them to
    {!merge_stream} produces output byte-identical to a serial
    {!sort_stream} of the whole input — run formation is deterministic per
    partition and merge ties are broken by run index at every level, so run
    order (= input order) decides ties exactly as in the serial sort. *)

val merge_stream :
  ?fan_in:int ->
  ?cmp:(Rel.Tuple.t -> Rel.Tuple.t -> int) ->
  Pager.t ->
  key:key ->
  run list ->
  unit ->
  Rel.Tuple.t option
(** Merge half of {!sort_stream}: reduce the runs with materialized
    [fan_in]-wide passes until one streamed tournament merge can feed the
    returned dispenser. [sort_stream next = merge_stream (runs_of_dispenser
    next)] with identical accounting, provided [cmp]/[key] match. *)

val sort_baseline :
  ?run_pages:int ->
  ?fan_in:int ->
  ?cmp:(Rel.Tuple.t -> Rel.Tuple.t -> int) ->
  Pager.t ->
  key:key ->
  Rel.Tuple.t Seq.t ->
  Temp_list.t
(** The pre-streaming implementation (list-formed runs, closure-per-element
    [Seq] merge trees), kept as the measurable "before" for bench `hot` —
    the role [~compiled:false] plays for evaluation. Identical output,
    including stability; no [sort_runs]/[merge_passes] accounting. *)

val passes :
  ?run_pages:int ->
  ?fan_in:int ->
  buffer_pages:int ->
  tuples:int ->
  tuples_per_page:float ->
  unit ->
  int
(** Predicted number of merge passes for the cost model. The observed
    counterpart of a spilling sort is [1 + merge_passes] (run formation plus
    each merge level) in {!Counters.t}. *)
