(** RSS scans — the tuple-at-a-time access paths (RSI: OPEN, NEXT, CLOSE).

    Two kinds exist, matching the paper:
    - a {b segment scan} touches every non-empty page of the segment (each
      exactly once) and returns tuples of the requested relation;
    - an {b index scan} walks a B-tree key range, fetching data tuples by TID
      in key order; a data page may be re-fetched when consecutive index
      entries are not physically close (the non-clustered penalty).

    Both accept SARGs applied before a tuple is returned; every returned
    tuple counts one RSI call. *)

type t

val open_segment_scan :
  Segment.t ->
  rel_id:int ->
  ?pages:int list ->
  ?snap:Mvcc.view ->
  ?sargs:Sarg.t ->
  unit ->
  t
(** [pages] restricts the scan to the given page-id subset (in the order
    given) instead of every page of the segment — parallel scans hand each
    worker one contiguous chunk of [Segment.page_ids], whose concatenation
    is exactly the serial scan. [snap] applies MVCC snapshot visibility;
    without it, versions that are not delete-marked qualify (pre-MVCC
    default). *)

val open_index_scan :
  Segment.t ->
  rel_id:int ->
  index:Btree.t ->
  ?lo:Btree.bound ->
  ?hi:Btree.bound ->
  ?dir:[ `Asc | `Desc ] ->
  ?snap:Mvcc.view ->
  ?sargs:Sarg.t ->
  unit ->
  t
(** [dir] (default [`Asc]) selects forward or backward leaf-chain traversal:
    tuples come back in ascending or descending key order. *)

val next : t -> (Tid.t * Rel.Tuple.t) option
(** The next qualifying tuple, or [None] at end of scan.
    @raise Invalid_argument on a closed scan. *)

val close : t -> unit

val to_list : t -> (Tid.t * Rel.Tuple.t) list
(** Drain the scan and close it. *)
