type t = {
  mutable page_fetches : int;
  mutable buffer_hits : int;
  mutable rsi_calls : int;
  mutable pages_written : int;
  mutable sort_runs : int;
  mutable merge_passes : int;
  mutable plan_cache_hits : int;
  mutable plan_cache_misses : int;
  mutable plan_cache_invalidations : int;
  mutable plan_cache_evictions : int;
  mutable feedback_misestimates : int;
  mutable feedback_retirements : int;
  mutable group_commits : int;
  mutable wal_flushes : int;
}

let create () =
  { page_fetches = 0;
    buffer_hits = 0;
    rsi_calls = 0;
    pages_written = 0;
    sort_runs = 0;
    merge_passes = 0;
    plan_cache_hits = 0;
    plan_cache_misses = 0;
    plan_cache_invalidations = 0;
    plan_cache_evictions = 0;
    feedback_misestimates = 0;
    feedback_retirements = 0;
    group_commits = 0;
    wal_flushes = 0 }

let reset t =
  t.page_fetches <- 0;
  t.buffer_hits <- 0;
  t.rsi_calls <- 0;
  t.pages_written <- 0;
  t.sort_runs <- 0;
  t.merge_passes <- 0;
  t.plan_cache_hits <- 0;
  t.plan_cache_misses <- 0;
  t.plan_cache_invalidations <- 0;
  t.plan_cache_evictions <- 0;
  t.feedback_misestimates <- 0;
  t.feedback_retirements <- 0;
  t.group_commits <- 0;
  t.wal_flushes <- 0

let snapshot t =
  { page_fetches = t.page_fetches;
    buffer_hits = t.buffer_hits;
    rsi_calls = t.rsi_calls;
    pages_written = t.pages_written;
    sort_runs = t.sort_runs;
    merge_passes = t.merge_passes;
    plan_cache_hits = t.plan_cache_hits;
    plan_cache_misses = t.plan_cache_misses;
    plan_cache_invalidations = t.plan_cache_invalidations;
    plan_cache_evictions = t.plan_cache_evictions;
    feedback_misestimates = t.feedback_misestimates;
    feedback_retirements = t.feedback_retirements;
    group_commits = t.group_commits;
    wal_flushes = t.wal_flushes }

let restore t ~from =
  t.page_fetches <- from.page_fetches;
  t.buffer_hits <- from.buffer_hits;
  t.rsi_calls <- from.rsi_calls;
  t.pages_written <- from.pages_written;
  t.sort_runs <- from.sort_runs;
  t.merge_passes <- from.merge_passes;
  t.plan_cache_hits <- from.plan_cache_hits;
  t.plan_cache_misses <- from.plan_cache_misses;
  t.plan_cache_invalidations <- from.plan_cache_invalidations;
  t.plan_cache_evictions <- from.plan_cache_evictions;
  t.feedback_misestimates <- from.feedback_misestimates;
  t.feedback_retirements <- from.feedback_retirements;
  t.group_commits <- from.group_commits;
  t.wal_flushes <- from.wal_flushes

let add t ~into =
  into.page_fetches <- into.page_fetches + t.page_fetches;
  into.buffer_hits <- into.buffer_hits + t.buffer_hits;
  into.rsi_calls <- into.rsi_calls + t.rsi_calls;
  into.pages_written <- into.pages_written + t.pages_written;
  into.sort_runs <- into.sort_runs + t.sort_runs;
  into.merge_passes <- into.merge_passes + t.merge_passes;
  into.plan_cache_hits <- into.plan_cache_hits + t.plan_cache_hits;
  into.plan_cache_misses <- into.plan_cache_misses + t.plan_cache_misses;
  into.plan_cache_invalidations <-
    into.plan_cache_invalidations + t.plan_cache_invalidations;
  into.plan_cache_evictions <- into.plan_cache_evictions + t.plan_cache_evictions;
  into.feedback_misestimates <- into.feedback_misestimates + t.feedback_misestimates;
  into.feedback_retirements <- into.feedback_retirements + t.feedback_retirements;
  into.group_commits <- into.group_commits + t.group_commits;
  into.wal_flushes <- into.wal_flushes + t.wal_flushes

let diff ~after ~before =
  { page_fetches = after.page_fetches - before.page_fetches;
    buffer_hits = after.buffer_hits - before.buffer_hits;
    rsi_calls = after.rsi_calls - before.rsi_calls;
    pages_written = after.pages_written - before.pages_written;
    sort_runs = after.sort_runs - before.sort_runs;
    merge_passes = after.merge_passes - before.merge_passes;
    plan_cache_hits = after.plan_cache_hits - before.plan_cache_hits;
    plan_cache_misses = after.plan_cache_misses - before.plan_cache_misses;
    plan_cache_invalidations =
      after.plan_cache_invalidations - before.plan_cache_invalidations;
    plan_cache_evictions = after.plan_cache_evictions - before.plan_cache_evictions;
    feedback_misestimates =
      after.feedback_misestimates - before.feedback_misestimates;
    feedback_retirements = after.feedback_retirements - before.feedback_retirements;
    group_commits = after.group_commits - before.group_commits;
    wal_flushes = after.wal_flushes - before.wal_flushes }

let cost ~w t =
  float_of_int (t.page_fetches + t.pages_written) +. (w *. float_of_int t.rsi_calls)

let pp ppf t =
  Format.fprintf ppf
    "fetches=%d hits=%d rsi=%d written=%d runs=%d merges=%d plan-cache=%d/%d/%d/%d \
     feedback=%d/%d group-commit=%d/%d"
    t.page_fetches t.buffer_hits t.rsi_calls t.pages_written t.sort_runs
    t.merge_passes t.plan_cache_hits t.plan_cache_misses
    t.plan_cache_invalidations t.plan_cache_evictions t.feedback_misestimates
    t.feedback_retirements t.group_commits t.wal_flushes
