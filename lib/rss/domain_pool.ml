(* A process-wide pool of worker domains for parallel query execution.

   OCaml 5 domains are heavyweight (each carries a minor heap and
   participates in every GC), so the executor never spawns one per
   operator: it submits closures to this fixed pool, which grows on demand
   up to [max_workers] and is never torn down — idle workers block on the
   task queue's condition variable and cost nothing, and process exit
   (Stdlib.exit terminates all domains) reaps them.

   Scheduling is deliberately simple: one global FIFO, any worker takes the
   next task. Deadlock-freedom rests on an invariant the executor
   maintains: tasks never submit subtasks and never block on another job's
   completion — only the main domain joins. A pool smaller than the
   requested degree of parallelism is therefore safe; excess tasks just
   queue. *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn

type 'a job = {
  jm : Mutex.t;
  jc : Condition.t;
  mutable state : 'a state;
}

let max_workers = 8

let m = Mutex.create ()
let cv = Condition.create ()
let tasks : (unit -> unit) Queue.t = Queue.create ()
let workers = ref 0

(* Pool workers get a large nursery (words; SYSTEMR_WORKER_MINOR_HEAP
   overrides). Every minor collection is a stop-the-world rendezvous of all
   domains, and on a loaded box a runnable-but-unscheduled peer can turn each
   rendezvous into a full scheduler quantum — with the 256k-word default a
   busy worker pays that every few thousand queries. Workers are long-lived
   and few, so a multi-megabyte nursery per worker is cheap insurance.
   [Gc.set] is domain-local and spawned domains do not inherit it, hence the
   call inside the worker, not at pool setup. *)
let worker_minor_heap =
  match Sys.getenv_opt "SYSTEMR_WORKER_MINOR_HEAP" with
  | Some s -> (try max 262_144 (int_of_string s) with Failure _ -> 2_097_152)
  | None -> 2_097_152

let rec worker_loop () =
  Mutex.lock m;
  while Queue.is_empty tasks do
    Condition.wait cv m
  done;
  let task = Queue.pop tasks in
  Mutex.unlock m;
  (* the task wrapper stores its own outcome, including exceptions *)
  (try task () with _ -> ());
  worker_loop ()

let worker_main () =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = worker_minor_heap };
  worker_loop ()

let spawn_locked () =
  incr workers;
  ignore (Domain.spawn worker_main : unit Domain.t)

let ensure n =
  let n = min (max 1 n) max_workers in
  Mutex.lock m;
  while !workers < n do
    spawn_locked ()
  done;
  Mutex.unlock m

let size () =
  Mutex.lock m;
  let n = !workers in
  Mutex.unlock m;
  n

let submit f =
  let j = { jm = Mutex.create (); jc = Condition.create (); state = Pending } in
  let task () =
    let r = match f () with v -> Done v | exception e -> Failed e in
    Mutex.lock j.jm;
    j.state <- r;
    Condition.broadcast j.jc;
    Mutex.unlock j.jm
  in
  Mutex.lock m;
  if !workers = 0 then spawn_locked ();
  Queue.push task tasks;
  Condition.signal cv;
  Mutex.unlock m;
  j

let join j =
  Mutex.lock j.jm;
  let rec wait () =
    match j.state with
    | Pending ->
      Condition.wait j.jc j.jm;
      wait ()
    | Done v ->
      Mutex.unlock j.jm;
      v
    | Failed e ->
      Mutex.unlock j.jm;
      raise e
  in
  wait ()
