(* Transaction status and snapshot visibility for tuple versioning.

   Every tuple carries (xmin, xmax): the txn that created it and the txn
   that delete-marked it (0 = never deleted / frozen creator). Commits are
   stamped with a commit sequence number (CSN) drawn from a monotonic
   counter; a snapshot is just the highest CSN committed at acquisition
   time plus the reader's own txn id. A version is visible when its
   creator committed at-or-before the snapshot (or is the reader itself)
   and its deleter did not.

   Mutating entry points (begin/commit/abort/prune) are called with the
   engine write latch held, so the status table sees one writer at a
   time. Readers holding only the shared latch probe [status] while no
   writer runs, which is what makes the plain Hashtbl safe: the engine's
   reader/writer latch is the synchronization, not this module. *)

type status =
  | Active of int  (* snapshot CSN the txn started with (VACUUM horizon) *)
  | Committed of int  (* CSN *)

type t = {
  status : (int, status) Hashtbl.t;
  mutable last_csn : int;  (* highest CSN ever assigned *)
}

type snapshot = {
  csn : int;  (* versions committed at-or-before this CSN are in the past *)
  txn : int;  (* reader's own txn id; 0 = plain statement snapshot *)
}

let create () = { status = Hashtbl.create 64; last_csn = 0 }

let reset t =
  Hashtbl.reset t.status;
  t.last_csn <- 0

let begin_txn t txn =
  Hashtbl.replace t.status txn (Active t.last_csn)

let commit t txn =
  t.last_csn <- t.last_csn + 1;
  Hashtbl.replace t.status txn (Committed t.last_csn);
  t.last_csn

let abort t txn = Hashtbl.remove t.status txn
(* aborted txns leave no heap references (undo is physical), so no
   tombstone status is needed: an unknown xid reads as aborted *)

let snapshot t ~txn = { csn = t.last_csn; txn }

let statement_snapshot t = { csn = t.last_csn; txn = 0 }

let active_count t =
  Hashtbl.fold
    (fun _ s acc -> match s with Active _ -> acc + 1 | _ -> acc)
    t.status 0

(* The oldest CSN any in-flight transaction's snapshot can still read.
   Versions whose deleter committed at-or-before this horizon are invisible
   to every present and future snapshot, hence reclaimable. *)
let horizon t =
  Hashtbl.fold
    (fun _ s acc -> match s with Active c -> min c acc | _ -> acc)
    t.status t.last_csn

(* Did [xid]'s transaction commit at-or-before the snapshot? *)
let committed_before t snap xid =
  xid = 0
  ||
  match Hashtbl.find_opt t.status xid with
  | Some (Committed c) -> c <= snap.csn
  | Some (Active _) | None -> false

let committed t xid =
  xid = 0
  ||
  match Hashtbl.find_opt t.status xid with
  | Some (Committed _) -> true
  | Some (Active _) | None -> false

(* Commit CSN of [xid], if committed. *)
let commit_csn t xid =
  if xid = 0 then Some 0
  else
    match Hashtbl.find_opt t.status xid with
    | Some (Committed c) -> Some c
    | Some (Active _) | None -> None

let visible t snap ~xmin ~xmax =
  (xmin = snap.txn || committed_before t snap xmin)
  && not (xmax <> 0 && (xmax = snap.txn || committed_before t snap xmax))

(* Drop Committed entries at-or-before [horizon] once VACUUM has frozen or
   reclaimed every tuple referencing them. *)
let prune t ~horizon =
  let stale =
    Hashtbl.fold
      (fun xid s acc ->
        match s with Committed c when c <= horizon -> xid :: acc | _ -> acc)
      t.status []
  in
  List.iter (Hashtbl.remove t.status) stale

(* A read view packages the status table with a snapshot so the executor
   can carry one value through scans. *)
type view = { m : t; snap : snapshot }

let view t snap = { m = t; snap }

let view_visible v ~xmin ~xmax = visible v.m v.snap ~xmin ~xmax
