let size = 4096

(* Each record costs a 4-byte slot entry (offset + length in a real on-disk
   layout) plus a 4-byte relation tag alongside the tuple bytes. We track the
   byte budget exactly but keep decoded slots in memory for speed; the
   serialized form is what [used_bytes] accounts for. *)
let slot_overhead = 8

(* (xmin, xmax) are the creating and delete-marking transaction ids of the
   version stored in the slot; xmin = 0 means frozen (committed before every
   snapshot), xmax = 0 means not deleted. A delete under MVCC only stamps
   xmax — the slot stays physically live until VACUUM reclaims it. *)
type slot =
  | Live of {
      rel_id : int;
      bytes : int;
      tuple : Rel.Tuple.t;
      mutable xmin : int;
      mutable xmax : int;
    }
  | Dead

type t = {
  id : int;
  mutable slots : slot array;
  mutable nslots : int;
  mutable used : int;
}

let header_bytes = 16

let create ~id = { id; slots = Array.make 8 Dead; nslots = 0; used = header_bytes }

let id t = t.id

let free_space t = size - t.used - slot_overhead

let record_bytes tup = Rel.Tuple.serialized_size tup + slot_overhead

let grow t =
  if t.nslots = Array.length t.slots then begin
    let bigger = Array.make (2 * Array.length t.slots) Dead in
    Array.blit t.slots 0 bigger 0 t.nslots;
    t.slots <- bigger
  end

let insert t ?(xmin = 0) ~rel_id tuple =
  let bytes = Rel.Tuple.serialized_size tuple in
  if bytes + slot_overhead > size - header_bytes then
    invalid_arg "Page.insert: tuple larger than a page";
  if t.used + bytes + slot_overhead > size then None
  else begin
    grow t;
    let slot = t.nslots in
    t.slots.(slot) <- Live { rel_id; bytes; tuple; xmin; xmax = 0 };
    t.nslots <- slot + 1;
    t.used <- t.used + bytes + slot_overhead;
    Some slot
  end

let check_slot t slot =
  if slot < 0 || slot >= t.nslots then
    invalid_arg (Printf.sprintf "Page: slot %d out of range (page %d)" slot t.id)

let get t ~slot =
  check_slot t slot;
  match t.slots.(slot) with
  | Live { rel_id; tuple; _ } -> Some (rel_id, tuple)
  | Dead -> None

let get_v t ~slot =
  check_slot t slot;
  match t.slots.(slot) with
  | Live { rel_id; tuple; xmin; xmax; _ } -> Some (rel_id, tuple, xmin, xmax)
  | Dead -> None

let set_xmax t ~slot xid =
  check_slot t slot;
  match t.slots.(slot) with
  | Live s -> s.xmax <- xid
  | Dead ->
    invalid_arg
      (Printf.sprintf "Page.set_xmax: slot %d is dead (page %d)" slot t.id)

let set_xmin t ~slot xid =
  check_slot t slot;
  match t.slots.(slot) with
  | Live s -> s.xmin <- xid
  | Dead ->
    invalid_arg
      (Printf.sprintf "Page.set_xmin: slot %d is dead (page %d)" slot t.id)

(* Resurrect a Dead slot with its original contents. The transaction undo
   path restores a deleted tuple at its exact TID so heap TIDs stay in
   correspondence with the log across rollbacks (a fresh insert would move
   the tuple and orphan later log records that name it). *)
let insert_at t ?(xmin = 0) ~slot ~rel_id tuple =
  check_slot t slot;
  match t.slots.(slot) with
  | Live _ ->
    invalid_arg
      (Printf.sprintf "Page.insert_at: slot %d is live (page %d)" slot t.id)
  | Dead ->
    let bytes = Rel.Tuple.serialized_size tuple in
    t.slots.(slot) <- Live { rel_id; bytes; tuple; xmin; xmax = 0 };
    t.used <- t.used + bytes

let delete t ~slot =
  check_slot t slot;
  match t.slots.(slot) with
  | Live { bytes; _ } ->
    t.slots.(slot) <- Dead;
    t.used <- t.used - bytes;
    true
  | Dead -> false

let slots t = t.nslots

(* Default visibility (no snapshot): versions not delete-marked. Reproduces
   pre-MVCC behavior for statistics and single-session embedded use. *)
let live_tuples t =
  let acc = ref [] in
  for i = t.nslots - 1 downto 0 do
    match t.slots.(i) with
    | Live { rel_id; tuple; xmax = 0; _ } -> acc := (i, rel_id, tuple) :: !acc
    | Live _ | Dead -> ()
  done;
  !acc

(* Every physically live version, delete-marked or not: scans apply their
   own snapshot, VACUUM and index builds need the full chain. *)
let versions t =
  let acc = ref [] in
  for i = t.nslots - 1 downto 0 do
    match t.slots.(i) with
    | Live { rel_id; tuple; xmin; xmax; _ } ->
      acc := (i, rel_id, tuple, xmin, xmax) :: !acc
    | Dead -> ()
  done;
  !acc

let is_empty t =
  let rec go i = i >= t.nslots || (match t.slots.(i) with Dead -> go (i + 1) | Live _ -> false) in
  go 0

let used_bytes t = t.used
