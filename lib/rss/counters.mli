(** I/O and CPU accounting.

    The optimizer's cost model predicts COST = PAGE_FETCHES + W * RSI_CALLS;
    these counters measure the same two quantities during execution so
    predictions can be validated (bench T2, S7b). A page fetch is a buffer
    pool miss; a buffer hit costs nothing.

    [sort_runs] and [merge_passes] record external-sort spill behaviour —
    how many initial sorted runs were written and how many merge levels it
    took to combine them — so observed TEMPPAGES traffic can be put next to
    the cost model's C-sort prediction ({!Sort.passes}). *)

type t = {
  mutable page_fetches : int;  (** buffer pool misses *)
  mutable buffer_hits : int;
  mutable rsi_calls : int;     (** tuples returned across the RSS interface *)
  mutable pages_written : int; (** temp-list / sort output pages *)
  mutable sort_runs : int;     (** initial sorted runs spilled by external sorts *)
  mutable merge_passes : int;  (** merge levels performed over those runs *)
  mutable plan_cache_hits : int;
      (** statements served from the compiled-plan cache *)
  mutable plan_cache_misses : int;
      (** statements optimized from scratch (no usable cached plan) *)
  mutable plan_cache_invalidations : int;
      (** cached plans discarded because a dependency's stats_version moved *)
  mutable plan_cache_evictions : int;
      (** cached plans (or text-memo entries) evicted by the cache's LRU
          bound (SET PLAN_CACHE_SIZE) — long-lived sessions replace, they
          do not grow *)
  mutable feedback_misestimates : int;
      (** executions whose actual output cardinality missed the optimizer's
          estimate by more than the feedback q-error threshold *)
  mutable feedback_retirements : int;
      (** misestimates that recorded a corrected selectivity and bumped a
          relation's feedback generation, retiring the plans costed under
          the stale estimate *)
  mutable group_commits : int;
      (** commits whose durability rode a shared group-commit flush *)
  mutable wal_flushes : int;
      (** WAL flush boundaries this session paid for (as group leader, or
          per-commit when group commit is off) *)
}

val create : unit -> t
val reset : t -> unit
val snapshot : t -> t

val restore : t -> from:t -> unit
(** Copy every field of [from] into [t] — paired with {!snapshot} to exempt
    an unmeasured operation (DDL bulk-load, recovery, integrity checking)
    from I/O accounting. *)

val add : t -> into:t -> unit
(** Component-wise accumulation of [t] into [into] — how a parallel worker's
    domain-local scratch counters fold back into the pager's main counters
    when the worker finishes, so per-domain accounting sums exactly to the
    serial totals. *)

val diff : after:t -> before:t -> t
(** Component-wise difference; for measuring one operation. *)

val cost : w:float -> t -> float
(** [page_fetches + pages_written + w * rsi_calls] — the paper's cost metric
    applied to measured counts. *)

val pp : Format.formatter -> t -> unit
