(** Slotted 4K data pages.

    A page holds serialized tuples, each tagged with the identifier of the
    relation it belongs to (tuples from several relations may share a page,
    exactly as in the RSS). No tuple spans a page. Deleting a slot leaves a
    tombstone so that TIDs of surviving tuples stay stable. *)

type t

val size : int
(** Page capacity in bytes (4096). *)

(** Each slot carries [(xmin, xmax)] version metadata: the creating and
    delete-marking transaction ids ([xmin = 0] frozen, [xmax = 0] not
    deleted). MVCC deletes only stamp [xmax]; VACUUM reclaims. *)

val create : id:int -> t
val id : t -> int

val free_space : t -> int
(** Bytes still available for one more record (slot overhead included). *)

val record_bytes : Rel.Tuple.t -> int
(** Bytes the given tuple would consume on a page, overhead included. *)

val insert : t -> ?xmin:int -> rel_id:int -> Rel.Tuple.t -> int option
(** [insert p ~rel_id tup] stores the tuple, returning its slot number, or
    [None] when the page lacks space. [xmin] defaults to 0 (frozen). *)

val insert_at : t -> ?xmin:int -> slot:int -> rel_id:int -> Rel.Tuple.t -> unit
(** Resurrect a tombstoned slot with its original contents — the transaction
    undo path restores deleted tuples at their exact TID so heap TIDs stay
    in correspondence with the log across rollbacks.
    @raise Invalid_argument when the slot is live or out of range. *)

val get : t -> slot:int -> (int * Rel.Tuple.t) option
(** [get p ~slot] is [(rel_id, tuple)] for a live slot, [None] for a
    tombstone. @raise Invalid_argument on an out-of-range slot. *)

val get_v : t -> slot:int -> (int * Rel.Tuple.t * int * int) option
(** Like {!get} but also returning [(xmin, xmax)]. *)

val set_xmax : t -> slot:int -> int -> unit
(** Stamp (or, with 0, clear) the delete-marking txn of a live slot.
    @raise Invalid_argument when the slot is dead or out of range. *)

val set_xmin : t -> slot:int -> int -> unit
(** Restamp the creating txn of a live slot (VACUUM freezing uses 0). *)

val delete : t -> slot:int -> bool
(** Tombstone a slot; [false] when it was already dead. *)

val slots : t -> int
(** Number of slots ever allocated (live or dead). *)

val live_tuples : t -> (int * int * Rel.Tuple.t) list
(** [(slot, rel_id, tuple)] for every live slot that is not delete-marked
    ([xmax = 0]), in slot order — default visibility, matching pre-MVCC
    behavior for statistics and single-session use. *)

val versions : t -> (int * int * Rel.Tuple.t * int * int) list
(** [(slot, rel_id, tuple, xmin, xmax)] for every physically live slot,
    delete-marked or not — snapshot scans, VACUUM and index builds. *)

val is_empty : t -> bool
(** No live tuples on the page. *)

val used_bytes : t -> int
