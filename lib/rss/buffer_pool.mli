(** LRU buffer pool over page identifiers.

    The pool does not own page contents (pages live in the pager); it decides
    whether touching a page is a hit or a miss, which is exactly what the
    cost model's "page fetch" means. Capacity is in pages — the paper's
    "effective buffer pool per user". *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : t -> int
val resident : t -> int

val touch : t -> int -> [ `Hit | `Miss ]
(** Access a page: [`Hit] if resident, otherwise [`Miss] (the page is brought
    in, evicting the least recently used page when full). *)

val set_latched : t -> bool -> unit
(** While latched, {!touch} serializes under an internal mutex so worker
    domains may share the pool during a parallel query phase. Unlatched (the
    default), touch is the bare serial fast path. Toggled only from the main
    domain with no workers running ({!Pager.enter_parallel} /
    [exit_parallel]). *)

val contains : t -> int -> bool
val evict_all : t -> unit
(** Empty the pool (used between measured runs for cold-cache experiments). *)
