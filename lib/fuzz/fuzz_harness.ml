(* Differential check: one generated (scenario, query) pair is executed under
   every engine configuration — with and without indexes, W in {0, 1/3, 3},
   before and after UPDATE STATISTICS, plan cache off / cold / warm, B&B off
   (exhaustive DP reference), interpreted evaluation — and every result
   multiset must agree with the naive cross-product oracle. A final stage
   recreates a scanned table with mutated rows behind a warmed plan cache,
   which must never serve the stale plan (it does when the harness is run
   with [~break_invalidation:true], the intentional fault used to prove the
   harness catches stale-plan corruption).

   Results are compared as sorted multisets of rendered rows; ORDER BY is
   verified separately by checking the engine's output is sorted on the
   select-list positions of the order keys (the oracle does not order). *)

module V = Rel.Value

type divergence = {
  d_sql : string;
  d_config : string;       (* which lattice point disagreed *)
  d_detail : string;       (* "rows" or "order" *)
  d_expected : string list;  (* sorted multiset *)
  d_actual : string list;
}

type verdict =
  | Agree
  | Diverged of divergence
  | Unsupported of string
      (* the statement failed to parse/resolve/execute: a generator or
         shrinker candidate outside the supported grammar, not a divergence *)

type stats = {
  mutable queries : int;
  mutable executions : int;
  mutable plans_cached : int;
  mutable qerrors : float list;  (* estimate-vs-actual, one per query per db *)
}

let stats_create () =
  { queries = 0; executions = 0; plans_cached = 0; qerrors = [] }

let quantile sorted p =
  match Array.length sorted with
  | 0 -> nan
  | n ->
    let i = int_of_float (p *. float_of_int (n - 1) +. 0.5) in
    sorted.(min (n - 1) (max 0 i))

let stats_report st =
  let q = Array.of_list st.qerrors in
  Array.sort compare q;
  Printf.sprintf
    "queries=%d executions=%d plans_cached=%d\n\
     cardinality q-error: p50=%.2f p90=%.2f p99=%.2f max=%.2f (n=%d)"
    st.queries st.executions st.plans_cached
    (quantile q 0.5) (quantile q 0.9) (quantile q 0.99)
    (if Array.length q = 0 then nan else q.(Array.length q - 1))
    (Array.length q)

exception Found of divergence

(* --- database construction -------------------------------------------- *)

let ddl_script ?(indexes = true) (s : Fuzz_gen.scenario) =
  let b = Buffer.create 1024 in
  List.iter
    (fun (t : Fuzz_gen.table) ->
      Fuzz_sql.create_table b ~name:t.tname
        ~cols:(List.map (fun (c : Fuzz_gen.column) -> (c.cname, c.cty)) t.cols);
      Fuzz_sql.insert_rows b ~name:t.tname t.rows;
      if indexes then
        List.iter
          (fun (name, cols, clustered) ->
            Fuzz_sql.create_index b ~name ~table:t.tname ~cols ~clustered)
          t.indexes)
    s.tables;
  Buffer.contents b

let build ~indexes (s : Fuzz_gen.scenario) =
  let db = Database.create () in
  ignore (Database.exec_script db (ddl_script ~indexes s));
  db

(* --- result comparison ------------------------------------------------- *)

let row_key (row : Rel.Tuple.t) =
  String.concat "|" (List.map V.to_string (Array.to_list row))

let multiset rows = List.sort String.compare (List.map row_key rows)

(* Positions (within the output row) of the ORDER BY keys. The generator
   always projects order columns, so every key resolves to a position. *)
let order_positions (block : Semant.block) =
  List.filter_map
    (fun ((c : Semant.col_ref), dir) ->
      let rec idx i = function
        | [] -> None
        | (Semant.E_col c', _) :: _ when c' = c -> Some (i, dir)
        | _ :: rest -> idx (i + 1) rest
      in
      idx 0 block.Semant.select)
    block.Semant.order_by

let sorted_on keys rows =
  let cmp a b =
    let rec go = function
      | [] -> 0
      | (i, dir) :: rest ->
        let d = V.compare a.(i) b.(i) in
        if d <> 0 then (match dir with Ast.Asc -> d | Ast.Desc -> -d)
        else go rest
    in
    go keys
  in
  let rec ok = function
    | a :: (b :: _ as rest) -> cmp a b <= 0 && ok rest
    | _ -> true
  in
  keys = [] || ok rows

let q_error ~est ~act =
  let est = est +. 1. and act = act +. 1. in
  Float.max (est /. act) (act /. est)

(* --- the configuration lattice ----------------------------------------- *)

let w_points = [ 0.; 1. /. 3.; 3. ]

let mutate_rows (t : Fuzz_gen.table) =
  let bump = function
    | V.Int i -> V.Int (i + 1)
    | V.Str s -> V.Str (s ^ "z")
    | v -> v
  in
  match t.rows with
  | [] ->
    (* an empty table grows a row so the recreate visibly changes results *)
    [ List.map
        (fun (c : Fuzz_gen.column) ->
          match c.cty with
          | V.Tint -> V.Int 0
          | V.Tstr -> V.Str "m0"
          | V.Tfloat -> V.Null)
        t.cols ]
  | _ :: rest -> List.map (List.map bump) rest

(* Recreate the first FROM table with mutated rows behind a warmed cache;
   the rerun must match a fresh oracle (it does not when invalidation is
   broken: the stale plan scans the dropped table's old segment). *)
let stale_stage db (scenario : Fuzz_gen.scenario) (q : Ast.query) sql st =
  match q.Ast.from with
  | [] -> ()
  | (tname, _) :: _ ->
    let t = List.find (fun (t : Fuzz_gen.table) -> t.tname = tname) scenario.tables in
    Database.set_plan_cache db true;
    ignore (Database.query db sql);  (* warm the cache and the text memo *)
    ignore (Database.exec db ("DROP TABLE " ^ tname));
    let b = Buffer.create 256 in
    Fuzz_sql.create_table b ~name:tname
      ~cols:(List.map (fun (c : Fuzz_gen.column) -> (c.cname, c.cty)) t.cols);
    Fuzz_sql.insert_rows b ~name:tname (mutate_rows t);
    ignore (Database.exec_script db (Buffer.contents b));
    let block = Database.resolve db sql in
    let expected = multiset (Fuzz_oracle.query (Database.catalog db) block) in
    let out = Database.query db sql in
    (match st with Some st -> st.executions <- st.executions + 1 | None -> ());
    let actual = multiset out.Executor.rows in
    if actual <> expected then
      raise
        (Found
           { d_sql = sql;
             d_config = "stale-cache (recreate " ^ tname ^ ")";
             d_detail = "rows";
             d_expected = expected;
             d_actual = actual })

let check ?(break_invalidation = false) ?stats
    (scenario : Fuzz_gen.scenario) (q : Ast.query) : verdict =
  let st = stats in
  let sql = Fuzz_sql.query_to_string q in
  let bump_exec () =
    match st with Some s -> s.executions <- s.executions + 1 | None -> ()
  in
  try
    (match st with Some s -> s.queries <- s.queries + 1 | None -> ());
    List.iter
      (fun indexed ->
        let db = build ~indexes:indexed scenario in
        if break_invalidation then Database.set_plan_cache_validation db false;
        let block = Database.resolve db sql in
        let expected = multiset (Fuzz_oracle.query (Database.catalog db) block) in
        let keys = order_positions block in
        let compare_out config (out : Executor.output) =
          bump_exec ();
          let actual = multiset out.Executor.rows in
          if actual <> expected then
            raise
              (Found
                 { d_sql = sql; d_config = config; d_detail = "rows";
                   d_expected = expected; d_actual = actual })
          else if not (sorted_on keys out.Executor.rows) then
            raise
              (Found
                 { d_sql = sql; d_config = config; d_detail = "order";
                   d_expected = expected;
                   d_actual = List.map row_key out.Executor.rows })
        in
        (match st with
         | Some s ->
           let est = Selectivity.block_qcard (Database.ctx db) block in
           s.qerrors <-
             q_error ~est ~act:(float_of_int (List.length expected)) :: s.qerrors
         | None -> ());
        List.iter
          (fun phase ->
            if phase = `After then Database.update_statistics db;
            List.iter
              (fun w ->
                Database.set_w db w;
                let name part =
                  Printf.sprintf "%s idx=%b W=%.2f stats=%s" part indexed w
                    (match phase with `Before -> "cold" | `After -> "updated")
                in
                (* plan cache off, compiled execution *)
                Database.set_plan_cache db false;
                compare_out (name "cache-off") (Database.query db sql);
                (* branch-and-bound off: exhaustive DP reference *)
                let ctx = Ctx.create ~w ~use_bnb:false (Database.catalog db) in
                compare_out (name "bnb-off")
                  (Database.run_plan db (Database.optimize ~ctx db sql));
                (* interpreted evaluation *)
                let r = Database.optimize db sql in
                compare_out (name "interpreted")
                  (Executor.run ~compiled:false (Database.catalog db) r);
                (* plan cache cold then warm *)
                Database.set_plan_cache db true;
                compare_out (name "cache-cold") (Database.query db sql);
                compare_out (name "cache-warm") (Database.query db sql))
              w_points;
            (* forced-parallel execution: exchange plans at DOP 2 and 4 must
               produce the identical multiset (and order) even on inputs the
               cost model would run serially *)
            Database.set_w db Ctx.default_w;
            Database.set_plan_cache db false;
            Database.set_force_parallel db true;
            List.iter
              (fun dop ->
                Database.set_parallelism db dop;
                let config =
                  Printf.sprintf "parallel-%d idx=%b stats=%s" dop indexed
                    (match phase with `Before -> "cold" | `After -> "updated")
                in
                compare_out config (Database.query db sql))
              [ 2; 4 ];
            Database.set_force_parallel db false;
            Database.set_parallelism db 1)
          [ `Before; `After ];
        (match st with
         | Some s -> s.plans_cached <- s.plans_cached + Database.plan_cache_size db
         | None -> ());
        (* stale-plan stage on the indexed database only: it mutates data *)
        if indexed then stale_stage db scenario q sql st)
      [ false; true ];
    Agree
  with
  | Found d -> Diverged d
  | Database.Error msg -> Unsupported msg
  | Semant.Error msg -> Unsupported ("semantic: " ^ msg)
  | Invalid_argument msg -> Unsupported ("invalid: " ^ msg)
  | Not_found -> Unsupported "lookup failed"

(* Reproducer: DDL + data + query as a paste-ready script. *)
let reproducer (scenario : Fuzz_gen.scenario) (q : Ast.query) =
  ddl_script ~indexes:true scenario ^ Fuzz_sql.query_to_string q ^ ";\n"
