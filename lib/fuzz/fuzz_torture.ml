(* Crash-recovery torture: a generated multi-transaction workload is run
   against the engine once under Failpoint.count_only to enumerate every
   durability-relevant write it performs, then re-run once per enumerated
   crash point with that point armed. Each armed run dies mid-flight with
   Failpoint.Crash; the WAL bytes that survive the "power cut" are replayed
   into a fresh database (Database.recover) and the recovered state is
   compared against an independent oracle computed from the committed prefix
   of those same bytes. Appends only buffer; the durability boundary is
   Wal.flush (the "wal.group_flush" site, one flush per commit group), so a
   crash at wal.group_flush expands into a torn-tail sweep over the *batch*
   that was being written — truncated at every byte offset up to the batch
   size — while a crash at wal.append tears nothing (the record never left
   the buffer).

   The multi-session variant below ([gen_ms_workload]/[torture_ms]) drives
   interleaved transactions from several sessions of one engine under
   [Engine.set_group_hold], so explicit flush points form multi-commit
   batches deterministically; it additionally tracks which commits were
   *acknowledged* (their covering [Engine.flush_group] returned) and checks
   the group-commit ack rule per crash image: an acknowledged commit must
   survive every torn truncation — a crash mid-batch may lose only commits
   whose ack was never released.

   The oracle shares only the WAL codec (property-tested separately in
   test_lock_wal) with the recovery path it audits: it is a naive replay of
   Insert/Delete records of committed transactions into an association list,
   with none of Recovery's segment/page machinery.

   What a divergence means:
   - an effect of a committed transaction is missing after recovery, or
   - an effect of an uncommitted/aborted transaction survived recovery, or
   - heap and indexes disagree after the post-recovery index rebuild
     (Database.check_integrity), or
   - an armed failpoint failed to fire on the re-run (the workload is not
     deterministic — a harness bug).

   Small structural knobs make tiny workloads reach the deep code paths:
   databases are built with a 2-page buffer pool (evictions) and a B-tree
   order override of 4 (splits). *)

module V = Rel.Value
module F = Rss.Failpoint
module W = Rss.Wal

(* --- workloads ---------------------------------------------------------- *)

type dml =
  | Ins of string * V.t list list            (* table, rows *)
  | Del of string * (string * V.t) option    (* table, optional col = lit *)

type group =
  | Auto of dml                              (* auto-commit statement *)
  | Txn of dml list * [ `Commit | `Rollback ]
  | Vac                                      (* VACUUM: reclaim dead versions *)

type workload = { scenario : Fuzz_gen.scenario; groups : group list }

let gen_rows rng (t : Fuzz_gen.table) =
  let n = 1 + Random.State.int rng 3 in
  List.init n (fun _ ->
      List.map
        (fun (c : Fuzz_gen.column) ->
          Fuzz_gen.gen_value rng
            (fun () -> Random.State.int rng c.Fuzz_gen.distinct)
            c)
        t.Fuzz_gen.cols)

let gen_dml rng (t : Fuzz_gen.table) =
  if Random.State.int rng 3 = 0 then begin
    let pred =
      if Random.State.int rng 5 = 0 then None (* DELETE all *)
      else
        let c =
          List.nth t.Fuzz_gen.cols
            (Random.State.int rng (List.length t.Fuzz_gen.cols))
        in
        Some (c.Fuzz_gen.cname, Fuzz_gen.lit rng c)
    in
    Del (t.Fuzz_gen.tname, pred)
  end
  else Ins (t.Fuzz_gen.tname, gen_rows rng t)

let gen_workload rng =
  let scenario = Fuzz_gen.gen_scenario rng in
  let tables = Array.of_list scenario.Fuzz_gen.tables in
  let pick_table () = tables.(Random.State.int rng (Array.length tables)) in
  let ngroups = 3 + Random.State.int rng 5 in
  let groups =
    List.init ngroups (fun _ ->
        if Random.State.int rng 6 = 0 then Vac
        else if Random.State.int rng 3 = 0 then Auto (gen_dml rng (pick_table ()))
        else begin
          let n = 1 + Random.State.int rng 3 in
          let dmls = List.init n (fun _ -> gen_dml rng (pick_table ())) in
          let fin =
            if Random.State.int rng 4 = 0 then `Rollback else `Commit
          in
          Txn (dmls, fin)
        end)
  in
  { scenario; groups }

(* --- rendering ----------------------------------------------------------- *)

let dml_sql b = function
  | Ins (t, rows) -> Fuzz_sql.insert_rows b ~name:t rows
  | Del (t, pred) ->
    Buffer.add_string b ("DELETE FROM " ^ t);
    (match pred with
     | Some (c, v) ->
       Buffer.add_string b
         (" WHERE " ^ c ^ " = " ^ Fuzz_sql.value_to_string v)
     | None -> ());
    Buffer.add_string b ";\n"

let workload_sql (w : workload) =
  let b = Buffer.create 512 in
  List.iter
    (function
      | Auto d -> dml_sql b d
      | Vac -> Buffer.add_string b "VACUUM;\n"
      | Txn (ds, fin) ->
        Buffer.add_string b "BEGIN;\n";
        List.iter (dml_sql b) ds;
        Buffer.add_string b
          (match fin with `Commit -> "COMMIT;\n" | `Rollback -> "ROLLBACK;\n"))
    w.groups;
  Buffer.contents b

(* DDL + initial data + workload as a paste-ready script. *)
let reproducer (w : workload) =
  Fuzz_harness.ddl_script ~indexes:true w.scenario ^ workload_sql w

(* --- database construction ----------------------------------------------- *)

(* A deliberately cramped instance: 2 buffer pages force evictions and
   order-4 B-trees force splits on workloads of a dozen rows. [data] is off
   for recovery targets — their contents come from the log, not the DDL. *)
let build_db ~data (s : Fuzz_gen.scenario) =
  Rss.Btree.set_order_override (Some 4);
  Fun.protect
    ~finally:(fun () -> Rss.Btree.set_order_override None)
    (fun () ->
      let db = Database.create ~buffer_pages:2 () in
      let b = Buffer.create 1024 in
      List.iter
        (fun (t : Fuzz_gen.table) ->
          Fuzz_sql.create_table b ~name:t.Fuzz_gen.tname
            ~cols:
              (List.map
                 (fun (c : Fuzz_gen.column) -> (c.Fuzz_gen.cname, c.Fuzz_gen.cty))
                 t.Fuzz_gen.cols);
          if data then Fuzz_sql.insert_rows b ~name:t.Fuzz_gen.tname t.Fuzz_gen.rows;
          List.iter
            (fun (name, cols, clustered) ->
              Fuzz_sql.create_index b ~name ~table:t.Fuzz_gen.tname ~cols
                ~clustered)
            t.Fuzz_gen.indexes)
        s.Fuzz_gen.tables;
      ignore (Database.exec_script db (Buffer.contents b));
      db)

let run_workload db w = ignore (Database.exec_script db (workload_sql w))

(* --- the committed-prefix oracle ----------------------------------------- *)

(* rel_id -> sorted multiset of rendered rows, by naive replay of the
   surviving bytes. Relations are identified by creation order, which the
   recovery target reproduces by running the same DDL. *)
let oracle_multisets bytes =
  let recs = W.records (W.of_bytes bytes) in
  let committed =
    List.filter_map (function W.Commit tx -> Some tx | _ -> None) recs
  in
  let is_committed tx = List.mem tx committed in
  let live = ref [] in
  let rec remove_first key = function
    | [] -> []
    | (k, _) :: rest when k = key -> rest
    | b :: rest -> b :: remove_first key rest
  in
  List.iter
    (function
      | W.Insert { txn; rel_id; tid; tuple } when is_committed txn ->
        live := ((tid, rel_id), tuple) :: !live
      | W.Delete { txn; rel_id; tid; _ } when is_committed txn ->
        live := remove_first (tid, rel_id) !live
      | _ -> ())
    recs;
  let by_rel : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ((_, rel_id), tuple) ->
      let prev = Option.value (Hashtbl.find_opt by_rel rel_id) ~default:[] in
      Hashtbl.replace by_rel rel_id (Fuzz_harness.row_key tuple :: prev))
    !live;
  fun rel_id ->
    List.sort String.compare
      (Option.value (Hashtbl.find_opt by_rel rel_id) ~default:[])

let db_multiset db tname =
  match Catalog.find_relation (Database.catalog db) tname with
  | None -> []
  | Some rel ->
    let tuples =
      Rss.Scan.to_list
        (Rss.Scan.open_segment_scan rel.Catalog.segment
           ~rel_id:rel.Catalog.rel_id ())
    in
    List.sort String.compare
      (List.map (fun (_, tup) -> Fuzz_harness.row_key tup) tuples)

(* --- divergences --------------------------------------------------------- *)

type divergence = {
  t_site : string;      (* failpoint site; "clean" for the no-crash pass *)
  t_hit : int;          (* 1-based hit index the crash was armed at *)
  t_torn : int;         (* bytes torn off the final WAL record (0 = whole) *)
  t_table : string;     (* "" when not table-specific *)
  t_detail : string;
  t_expected : string list;
  t_actual : string list;
}

let pp_divergence ppf d =
  Format.fprintf ppf
    "site=%s hit=%d torn=%d%s: %s@\nexpected: [%s]@\nactual:   [%s]"
    d.t_site d.t_hit d.t_torn
    (if d.t_table = "" then "" else " table=" ^ d.t_table)
    d.t_detail
    (String.concat "; " d.t_expected)
    (String.concat "; " d.t_actual)

(* Recover a fresh database from [bytes] and compare it against the oracle:
   committed effects present, uncommitted effects absent, heap and indexes
   in agreement. *)
let check_recovery (s : Fuzz_gen.scenario) bytes ~site ~hit ~torn =
  let oracle = oracle_multisets bytes in
  let rdb = build_db ~data:false s in
  ignore (Database.recover rdb bytes);
  match Database.check_integrity rdb with
  | Error msg ->
    Some
      { t_site = site; t_hit = hit; t_torn = torn; t_table = "";
        t_detail = "integrity after recovery: " ^ msg;
        t_expected = []; t_actual = [] }
  | Ok () ->
    List.find_map
      (fun (rel_id, (t : Fuzz_gen.table)) ->
        let expected = oracle rel_id in
        let actual = db_multiset rdb t.Fuzz_gen.tname in
        if expected <> actual then
          Some
            { t_site = site; t_hit = hit; t_torn = torn;
              t_table = t.Fuzz_gen.tname;
              t_detail = "recovered state differs from committed prefix";
              t_expected = expected; t_actual = actual }
        else None)
      (List.mapi (fun i t -> (i, t)) s.Fuzz_gen.tables)

(* --- the torture loop ---------------------------------------------------- *)

(* Maximal torn span of a crash at [site]: a crash during the flush tears
   the batch that was being written (the whole batch, down to nothing); a
   crash anywhere else leaves the device exactly at the last completed
   flush, so nothing tears. *)
let torn_span ~site db bytes =
  if site = "wal.group_flush" then
    min (W.last_flush_size (Database.wal db)) (String.length bytes)
  else 0

(* One armed run: build, arm, execute until the crash, capture the frozen
   log. Returns whether the crash fired, the serialized WAL, and the torn
   sweep span. *)
let crash_run (w : workload) ~site ~at =
  let db = build_db ~data:true w.scenario in
  F.arm ~site ~at;
  let fired = (try run_workload db w; false with F.Crash _ -> true) in
  F.disarm ();
  let bytes = W.to_bytes (Database.wal db) in
  let torn = torn_span ~site db bytes in
  F.reset ();
  (fired, bytes, torn)

exception Found of divergence

(* Run the full torture over one workload: enumerate crash points with a
   counting pass, then crash at every [crash_every]-th hit of every site
   (plus the torn-tail sweep for wal.group_flush crashes) and check recovery
   of each surviving image. Returns the number of crash-point images checked
   and the first divergence, if any. *)
let torture ?(crash_every = 1) (w : workload) : int * divergence option =
  let points = ref 0 in
  let harness_bug detail =
    { t_site = "harness"; t_hit = 0; t_torn = 0; t_table = "";
      t_detail = detail; t_expected = []; t_actual = [] }
  in
  try
    (* counting pass: which sites does this workload reach, how often? *)
    let db = build_db ~data:true w.scenario in
    F.count_only ();
    run_workload db w;
    F.disarm ();
    let counts = F.counts () in
    F.reset ();
    (* clean pass: with no crash, the log must fully describe the live
       database, and recovering from it must reproduce that state *)
    let bytes = W.to_bytes (Database.wal db) in
    let oracle = oracle_multisets bytes in
    List.iteri
      (fun rel_id (t : Fuzz_gen.table) ->
        let expected = oracle rel_id in
        let actual = db_multiset db t.Fuzz_gen.tname in
        if expected <> actual then
          raise
            (Found
               { t_site = "clean"; t_hit = 0; t_torn = 0;
                 t_table = t.Fuzz_gen.tname;
                 t_detail = "live state differs from its own log";
                 t_expected = expected; t_actual = actual }))
      w.scenario.Fuzz_gen.tables;
    (match check_recovery w.scenario bytes ~site:"clean" ~hit:0 ~torn:0 with
     | Some d -> raise (Found d)
     | None -> ());
    (* crash passes *)
    List.iter
      (fun (site, total) ->
        let k = ref 1 in
        while !k <= total do
          let fired, bytes, torn_max = crash_run w ~site ~at:!k in
          if not fired then
            raise
              (Found
                 (harness_bug
                    (Printf.sprintf
                       "failpoint %s did not fire at hit %d on re-run (workload \
                        not deterministic?)"
                       site !k)));
          for j = 0 to torn_max do
            let surviving = String.sub bytes 0 (String.length bytes - j) in
            incr points;
            match check_recovery w.scenario surviving ~site ~hit:!k ~torn:j with
            | Some d -> raise (Found d)
            | None -> ()
          done;
          k := !k + crash_every
        done)
      counts;
    (!points, None)
  with Found d -> (!points, Some d)

(* --- shrinking ----------------------------------------------------------- *)

let w_size (w : workload) =
  let dml_weight = function
    | Ins (_, rows) -> 10 + List.length rows
    | Del _ -> 10
  in
  let group_weight = function
    | Auto d -> 100 + dml_weight d
    | Vac -> 100
    | Txn (ds, _) ->
      100 + List.fold_left (fun acc d -> acc + dml_weight d) 0 ds
  in
  let scenario_weight =
    List.fold_left
      (fun acc (t : Fuzz_gen.table) ->
        acc + 1000 + List.length t.Fuzz_gen.rows
        + (50 * List.length t.Fuzz_gen.indexes))
      0 w.scenario.Fuzz_gen.tables
  in
  scenario_weight + List.fold_left (fun acc g -> acc + group_weight g) 0 w.groups

let w_candidates (w : workload) : workload list =
  let cands = ref [] in
  let add c = cands := c :: !cands in
  (* drop each group *)
  List.iteri
    (fun i _ -> add { w with groups = List.filteri (fun j _ -> j <> i) w.groups })
    w.groups;
  (* within transactional groups: drop statements; unwrap singletons *)
  List.iteri
    (fun i g ->
      match g with
      | Auto _ | Vac -> ()
      | Txn (ds, fin) ->
        if List.length ds > 1 then
          List.iteri
            (fun di _ ->
              let ds' = List.filteri (fun j _ -> j <> di) ds in
              add
                { w with
                  groups =
                    List.mapi (fun j g -> if j = i then Txn (ds', fin) else g)
                      w.groups })
            ds;
        (match ds, fin with
         | [ d ], `Commit ->
           add
             { w with
               groups =
                 List.mapi (fun j g -> if j = i then Auto d else g) w.groups }
         | _ -> ()))
    w.groups;
  (* shrink inserted rows *)
  List.iteri
    (fun i g ->
      let shrink_dml d =
        match d with
        | Ins (t, (_ :: _ :: _ as rows)) ->
          [ Ins (t, [ List.hd rows ]); Ins (t, List.tl rows) ]
        | _ -> []
      in
      let replace_group g' =
        add { w with groups = List.mapi (fun j h -> if j = i then g' else h) w.groups }
      in
      match g with
      | Auto d -> List.iter (fun d' -> replace_group (Auto d')) (shrink_dml d)
      | Vac -> ()
      | Txn (ds, fin) ->
        List.iteri
          (fun di d ->
            List.iter
              (fun d' ->
                replace_group
                  (Txn (List.mapi (fun j e -> if j = di then d' else e) ds, fin)))
              (shrink_dml d))
          ds)
    w.groups;
  (* scenario: drop tables no group touches, halve initial rows, drop
     indexes *)
  let touched =
    List.concat_map
      (fun g ->
        let of_dml = function Ins (t, _) | Del (t, _) -> t in
        match g with
        | Auto d -> [ of_dml d ]
        | Vac -> []
        | Txn (ds, _) -> List.map of_dml ds)
      w.groups
  in
  let tables = w.scenario.Fuzz_gen.tables in
  if List.length tables > 1 then
    List.iter
      (fun (t : Fuzz_gen.table) ->
        if not (List.mem t.Fuzz_gen.tname touched) then
          add
            { w with
              scenario =
                { Fuzz_gen.tables =
                    List.filter
                      (fun (u : Fuzz_gen.table) ->
                        u.Fuzz_gen.tname <> t.Fuzz_gen.tname)
                      tables } })
      tables;
  List.iter
    (fun (t : Fuzz_gen.table) ->
      let replace_table t' =
        add
          { w with
            scenario =
              { Fuzz_gen.tables =
                  List.map
                    (fun (u : Fuzz_gen.table) ->
                      if u.Fuzz_gen.tname = t.Fuzz_gen.tname then t' else u)
                    tables } }
      in
      let n = List.length t.Fuzz_gen.rows in
      if n > 0 then begin
        replace_table
          { t with Fuzz_gen.rows = List.filteri (fun i _ -> i < n / 2) t.Fuzz_gen.rows };
        replace_table { t with Fuzz_gen.rows = List.tl t.Fuzz_gen.rows }
      end;
      if t.Fuzz_gen.indexes <> [] then replace_table { t with Fuzz_gen.indexes = [] })
    tables;
  List.rev !cands

(* Shrink a diverging workload: a candidate is kept when a full torture pass
   over it still finds a divergence. *)
let shrink ?(crash_every = 1) ~max_steps (w : workload) : workload * int =
  Fuzz_shrink.shrink_generic ~size:w_size ~candidates:w_candidates
    ~still_failing:(fun c -> snd (torture ~crash_every c) <> None)
    ~max_steps w

(* --- multi-session interleaved workloads --------------------------------- *)

(* Several sessions of ONE engine on ONE domain (the failpoint registry is
   single-domain-only), interleaved by an explicit deterministic item list —
   the same cooperative-scheduler shape as fuzz_mvcc. The engine runs under
   [Engine.set_group_hold]: commits enqueue without flushing, and each
   [S_flush] item closes the window with one [Engine.flush_group] — whose
   return value defines which commits were *acknowledged*. *)

type ms_item =
  | S_begin of int              (* session index *)
  | S_dml of int * dml
  | S_commit of int
  | S_rollback of int
  | S_flush                     (* the leader's window closes: one batch *)

type ms_workload = {
  ms_scenario : Fuzz_gen.scenario;
  nsessions : int;
  items : ms_item list;
}

let gen_ms_workload rng =
  let scenario = Fuzz_gen.gen_scenario rng in
  let tables = Array.of_list scenario.Fuzz_gen.tables in
  let pick_table () = tables.(Random.State.int rng (Array.length tables)) in
  let nsessions = 2 + Random.State.int rng 2 in
  let streams =
    Array.init nsessions (fun i ->
        let ngroups = 1 + Random.State.int rng 3 in
        List.concat
          (List.init ngroups (fun _ ->
               let n = 1 + Random.State.int rng 3 in
               let dmls =
                 List.init n (fun _ -> S_dml (i, gen_dml rng (pick_table ())))
               in
               let fin =
                 if Random.State.int rng 4 = 0 then S_rollback i else S_commit i
               in
               (S_begin i :: dmls) @ [ fin ])))
  in
  (* deterministic interleave; flush points close commit windows mid-run so
     batches of >1 commit form (and some commits die unflushed) *)
  let items = ref [] in
  let live () =
    Array.to_list
      (Array.mapi (fun i s -> (i, s)) streams)
    |> List.filter (fun (_, s) -> s <> [])
  in
  let rec weave () =
    match live () with
    | [] -> ()
    | choices ->
      let i, s = List.nth choices (Random.State.int rng (List.length choices)) in
      items := List.hd s :: !items;
      streams.(i) <- List.tl s;
      if Random.State.int rng 5 = 0 then items := S_flush :: !items;
      weave ()
  in
  weave ();
  { ms_scenario = scenario; nsessions; items = List.rev (S_flush :: !items) }

let ms_item_sql = function
  | S_begin i -> Printf.sprintf "-- s%d\nBEGIN;\n" i
  | S_dml (i, d) ->
    let b = Buffer.create 64 in
    dml_sql b d;
    Printf.sprintf "-- s%d\n%s" i (Buffer.contents b)
  | S_commit i -> Printf.sprintf "-- s%d\nCOMMIT;\n" i
  | S_rollback i -> Printf.sprintf "-- s%d\nROLLBACK;\n" i
  | S_flush -> "-- group flush\n"

(* DDL + data + the interleaved history, annotated per session — not
   machine-replayable as one script, but paste-ready for a bug report. *)
let ms_reproducer (w : ms_workload) =
  Fuzz_harness.ddl_script ~indexes:true w.ms_scenario
  ^ String.concat "" (List.map ms_item_sql w.items)

(* Execute the history. Cross-session 2PL conflicts surface as immediate
   errors on an unlatched engine; the loser's transaction is rolled back and
   the rest of its stream skipped — any deterministic outcome is fine, since
   the oracle derives from what the WAL actually saw. Appends every
   acknowledged transaction id to [acked] as its covering flush returns, so
   a crash run keeps the acks released before the crash. *)
let run_ms db (w : ms_workload) ~(acked : int list ref) =
  let eng = Database.engine db in
  Engine.set_group_hold eng true;
  let counters = Rss.Pager.base_counters (Engine.pager eng) in
  let sessions = Array.init w.nsessions (fun _ -> Session.create eng) in
  let in_txn = Array.make w.nsessions false in
  let exec i sql =
    try ignore (Session.exec_script sessions.(i) sql)
    with Session.Error _ ->
      if in_txn.(i) then begin
        (try ignore (Session.exec_script sessions.(i) "ROLLBACK;")
         with Session.Error _ -> ());
        in_txn.(i) <- false
      end
  in
  List.iter
    (function
      | S_begin i ->
        exec i "BEGIN;";
        in_txn.(i) <- true
      | S_dml (i, d) ->
        if in_txn.(i) then begin
          let b = Buffer.create 64 in
          dml_sql b d;
          exec i (Buffer.contents b)
        end
      | S_commit i ->
        if in_txn.(i) then begin
          exec i "COMMIT;";
          in_txn.(i) <- false
        end
      | S_rollback i ->
        if in_txn.(i) then begin
          exec i "ROLLBACK;";
          in_txn.(i) <- false
        end
      | S_flush -> acked := !acked @ Engine.flush_group eng counters)
    w.items;
  (* final drain: commits after the last generated flush point *)
  acked := !acked @ Engine.flush_group eng counters

let crash_run_ms (w : ms_workload) ~site ~at =
  let db = build_db ~data:true w.ms_scenario in
  F.arm ~site ~at;
  let acked = ref [] in
  let fired = (try run_ms db w ~acked; false with F.Crash _ -> true) in
  F.disarm ();
  let bytes = W.to_bytes (Database.wal db) in
  let torn = torn_span ~site db bytes in
  F.reset ();
  (fired, bytes, torn, !acked)

(* The group-commit ack rule, checked against one surviving image: every
   transaction whose commit was acknowledged before the crash must be in
   the image's committed set — a torn batch may lose only unacknowledged
   suffix commits. *)
let check_acked bytes acked ~site ~hit ~torn =
  let committed =
    List.filter_map
      (function W.Commit tx -> Some tx | _ -> None)
      (W.records (W.of_bytes bytes))
  in
  match List.find_opt (fun tx -> not (List.mem tx committed)) acked with
  | Some tx ->
    Some
      { t_site = site; t_hit = hit; t_torn = torn; t_table = "";
        t_detail =
          Printf.sprintf
            "acknowledged commit %d is missing from the surviving log" tx;
        t_expected = List.map string_of_int acked;
        t_actual = List.map string_of_int committed }
  | None -> None

(* Full torture over one interleaved history: counting pass, clean pass
   (live state vs log, recovery, and acked = committed exactly — with no
   crash every commit's flush returned), then a crash at every
   [crash_every]-th hit of every site with the batch torn sweep and the
   per-acknowledged-commit oracle. Also returns how many of the checked
   images came from wal.group_flush crashes. *)
let torture_ms ?(crash_every = 1) (w : ms_workload) :
    int * int * divergence option =
  let points = ref 0 in
  let flush_points = ref 0 in
  let harness_bug detail =
    { t_site = "harness"; t_hit = 0; t_torn = 0; t_table = "";
      t_detail = detail; t_expected = []; t_actual = [] }
  in
  try
    let db = build_db ~data:true w.ms_scenario in
    (* the data load commits its own transactions before the workload runs;
       they are durable and outside the ack accounting below *)
    let setup_committed =
      List.filter_map
        (function W.Commit tx -> Some tx | _ -> None)
        (W.records (Database.wal db))
    in
    F.count_only ();
    let acked = ref [] in
    run_ms db w ~acked;
    F.disarm ();
    let counts = F.counts () in
    F.reset ();
    let bytes = W.to_bytes (Database.wal db) in
    let oracle = oracle_multisets bytes in
    List.iteri
      (fun rel_id (t : Fuzz_gen.table) ->
        let expected = oracle rel_id in
        let actual = db_multiset db t.Fuzz_gen.tname in
        if expected <> actual then
          raise
            (Found
               { t_site = "clean"; t_hit = 0; t_torn = 0;
                 t_table = t.Fuzz_gen.tname;
                 t_detail = "live state differs from its own log";
                 t_expected = expected; t_actual = actual }))
      w.ms_scenario.Fuzz_gen.tables;
    (* clean completion acked exactly the workload's committed set *)
    let committed =
      List.filter_map
        (function W.Commit tx -> Some tx | _ -> None)
        (W.records (W.of_bytes bytes))
      |> List.filter (fun tx -> not (List.mem tx setup_committed))
    in
    if List.sort compare !acked <> List.sort compare committed then
      raise
        (Found
           (harness_bug
              (Printf.sprintf
                 "clean run acked [%s] but the log committed [%s]"
                 (String.concat ";" (List.map string_of_int !acked))
                 (String.concat ";" (List.map string_of_int committed)))));
    (match check_recovery w.ms_scenario bytes ~site:"clean" ~hit:0 ~torn:0 with
     | Some d -> raise (Found d)
     | None -> ());
    List.iter
      (fun (site, total) ->
        let k = ref 1 in
        while !k <= total do
          let fired, bytes, torn_max, acked = crash_run_ms w ~site ~at:!k in
          if not fired then
            raise
              (Found
                 (harness_bug
                    (Printf.sprintf
                       "failpoint %s did not fire at hit %d on re-run (history \
                        not deterministic?)"
                       site !k)));
          for j = 0 to torn_max do
            let surviving = String.sub bytes 0 (String.length bytes - j) in
            incr points;
            if site = "wal.group_flush" then incr flush_points;
            (match check_acked surviving acked ~site ~hit:!k ~torn:j with
             | Some d -> raise (Found d)
             | None -> ());
            match check_recovery w.ms_scenario surviving ~site ~hit:!k ~torn:j with
            | Some d -> raise (Found d)
            | None -> ()
          done;
          k := !k + crash_every
        done)
      counts;
    (!points, !flush_points, None)
  with Found d -> (!points, !flush_points, Some d)

(* --- multi-session shrinking ---------------------------------------------- *)

let ms_size (w : ms_workload) =
  let item_weight = function
    | S_dml (_, Ins (_, rows)) -> 10 + List.length rows
    | S_dml (_, Del _) -> 10
    | S_begin _ | S_commit _ | S_rollback _ -> 2
    | S_flush -> 1
  in
  List.fold_left
    (fun acc (t : Fuzz_gen.table) ->
      acc + 1000 + List.length t.Fuzz_gen.rows
      + (50 * List.length t.Fuzz_gen.indexes))
    0 w.ms_scenario.Fuzz_gen.tables
  + List.fold_left (fun acc it -> acc + item_weight it) 0 w.items

let ms_candidates (w : ms_workload) : ms_workload list =
  let cands = ref [] in
  let add items = cands := { w with items } :: !cands in
  let arr = Array.of_list w.items in
  let n = Array.length arr in
  (* drop a whole transaction: an S_begin, its session's items up to and
     including the matching commit/rollback *)
  for p = 0 to n - 1 do
    match arr.(p) with
    | S_begin i ->
      let dropped = ref [] in
      let finished = ref false in
      Array.iteri
        (fun q it ->
          let mine =
            match it with
            | S_begin j | S_dml (j, _) | S_commit j | S_rollback j -> j = i
            | S_flush -> false
          in
          if q >= p && not !finished && mine then begin
            dropped := q :: !dropped;
            match it with
            | S_commit _ | S_rollback _ when q > p -> finished := true
            | _ -> ()
          end)
        arr;
      add
        (List.filteri (fun q _ -> not (List.mem q !dropped)) (Array.to_list arr))
    | _ -> ()
  done;
  (* drop each flush point (the trailing drain still flushes everything) *)
  Array.iteri
    (fun p it ->
      if it = S_flush then
        add (List.filteri (fun q _ -> q <> p) (Array.to_list arr)))
    arr;
  (* drop each DML statement *)
  Array.iteri
    (fun p it ->
      match it with
      | S_dml _ -> add (List.filteri (fun q _ -> q <> p) (Array.to_list arr))
      | _ -> ())
    arr;
  (* scenario: drop untouched tables, indexes *)
  let touched =
    List.filter_map
      (function
        | S_dml (_, (Ins (t, _) | Del (t, _))) -> Some t
        | _ -> None)
      w.items
  in
  let tables = w.ms_scenario.Fuzz_gen.tables in
  if List.length tables > 1 then
    List.iter
      (fun (t : Fuzz_gen.table) ->
        if not (List.mem t.Fuzz_gen.tname touched) then
          cands :=
            { w with
              ms_scenario =
                { Fuzz_gen.tables =
                    List.filter
                      (fun (u : Fuzz_gen.table) ->
                        u.Fuzz_gen.tname <> t.Fuzz_gen.tname)
                      tables } }
            :: !cands)
      tables;
  List.iter
    (fun (t : Fuzz_gen.table) ->
      if t.Fuzz_gen.indexes <> [] then
        cands :=
          { w with
            ms_scenario =
              { Fuzz_gen.tables =
                  List.map
                    (fun (u : Fuzz_gen.table) ->
                      if u.Fuzz_gen.tname = t.Fuzz_gen.tname then
                        { u with Fuzz_gen.indexes = [] }
                      else u)
                    tables } }
          :: !cands)
    tables;
  List.rev !cands

let shrink_ms ?(crash_every = 1) ~max_steps (w : ms_workload) :
    ms_workload * int =
  Fuzz_shrink.shrink_generic ~size:ms_size ~candidates:ms_candidates
    ~still_failing:(fun c ->
      match torture_ms ~crash_every c with _, _, Some _ -> true | _ -> false)
    ~max_steps w
