(* Render generated statements back to SQL text the parser accepts.

   [Ast.pp_query] is a debugging printer, not a SQL emitter — it prints
   string constants OCaml-quoted ("...") where SQL wants '...', so the fuzz
   harness (whose whole point is feeding the engine through its public text
   interface, and printing reproducers that paste into the CLI) carries its
   own renderer. Operands are parenthesized liberally; the parser accepts
   parentheses in both expression and predicate position. *)

let buf_add = Buffer.add_string

let value b (v : Rel.Value.t) =
  match v with
  | Rel.Value.Null -> buf_add b "NULL"
  | Rel.Value.Int i -> buf_add b (string_of_int i)
  | Rel.Value.Float f -> buf_add b (Printf.sprintf "%.17g" f)
  | Rel.Value.Str s ->
    Buffer.add_char b '\'';
    String.iter
      (fun c ->
        if c = '\'' then buf_add b "''" else Buffer.add_char b c)
      s;
    Buffer.add_char b '\''

let comparison = function
  | Ast.Eq -> "=" | Ast.Ne -> "<>" | Ast.Lt -> "<"
  | Ast.Le -> "<=" | Ast.Gt -> ">" | Ast.Ge -> ">="

let agg_fn = function
  | Ast.Avg -> "AVG" | Ast.Min -> "MIN" | Ast.Max -> "MAX"
  | Ast.Sum -> "SUM" | Ast.Count -> "COUNT"

let arith = function
  | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"

let rec expr b (e : Ast.expr) =
  match e with
  | Ast.Col { table = Some t; column } ->
    buf_add b t; Buffer.add_char b '.'; buf_add b column
  | Ast.Col { table = None; column } -> buf_add b column
  | Ast.Const v -> value b v
  | Ast.Param _ -> Buffer.add_char b '?'
  | Ast.Agg (Ast.Count, Ast.Const (Rel.Value.Int 1)) -> buf_add b "COUNT(*)"
  | Ast.Agg (f, e) ->
    buf_add b (agg_fn f); Buffer.add_char b '(';
    expr b e; Buffer.add_char b ')'
  | Ast.Binop (op, x, y) ->
    let operand o =
      match o with
      | Ast.Binop _ -> Buffer.add_char b '('; expr b o; Buffer.add_char b ')'
      | _ -> expr b o
    in
    operand x;
    Buffer.add_char b ' '; buf_add b (arith op); Buffer.add_char b ' ';
    operand y

let rec predicate b (p : Ast.predicate) =
  let atom q =
    match q with
    | Ast.And _ | Ast.Or _ | Ast.Not _ ->
      Buffer.add_char b '('; predicate b q; Buffer.add_char b ')'
    | _ -> predicate b q
  in
  match p with
  | Ast.Cmp (x, c, y) ->
    expr b x;
    Buffer.add_char b ' '; buf_add b (comparison c); Buffer.add_char b ' ';
    expr b y
  | Ast.Between (e, lo, hi) ->
    expr b e; buf_add b " BETWEEN "; expr b lo; buf_add b " AND "; expr b hi
  | Ast.In_list (e, vs) ->
    expr b e;
    buf_add b " IN (";
    List.iteri
      (fun i v ->
        if i > 0 then buf_add b ", ";
        value b v)
      vs;
    Buffer.add_char b ')'
  | Ast.In_subquery (e, q, negated) ->
    expr b e;
    buf_add b (if negated then " NOT IN (" else " IN (");
    query b q;
    Buffer.add_char b ')'
  | Ast.Cmp_subquery (e, c, q) ->
    expr b e;
    Buffer.add_char b ' '; buf_add b (comparison c);
    buf_add b " (";
    query b q;
    Buffer.add_char b ')'
  | Ast.And (x, y) -> atom x; buf_add b " AND "; atom y
  | Ast.Or (x, y) -> atom x; buf_add b " OR "; atom y
  | Ast.Not x -> buf_add b "NOT "; atom x

and query b (q : Ast.query) =
  buf_add b "SELECT ";
  List.iteri
    (fun i item ->
      if i > 0 then buf_add b ", ";
      match item with
      | Ast.Star -> Buffer.add_char b '*'
      | Ast.Sel_expr (e, None) -> expr b e
      | Ast.Sel_expr (e, Some a) -> expr b e; buf_add b " AS "; buf_add b a)
    q.Ast.select;
  buf_add b " FROM ";
  List.iteri
    (fun i (t, alias) ->
      if i > 0 then buf_add b ", ";
      buf_add b t;
      match alias with
      | Some a -> Buffer.add_char b ' '; buf_add b a
      | None -> ())
    q.Ast.from;
  (match q.Ast.where with
   | None -> ()
   | Some p -> buf_add b " WHERE "; predicate b p);
  (match q.Ast.group_by with
   | [] -> ()
   | cols ->
     buf_add b " GROUP BY ";
     List.iteri
       (fun i e ->
         if i > 0 then buf_add b ", ";
         expr b e)
       cols);
  match q.Ast.order_by with
  | [] -> ()
  | keys ->
    buf_add b " ORDER BY ";
    List.iteri
      (fun i (e, dir) ->
        if i > 0 then buf_add b ", ";
        expr b e;
        match dir with Ast.Asc -> () | Ast.Desc -> buf_add b " DESC")
      keys

let query_to_string q =
  let b = Buffer.create 256 in
  query b q;
  Buffer.contents b

let value_to_string v =
  let b = Buffer.create 16 in
  value b v;
  Buffer.contents b

(* DDL for a generated scenario. STRING columns cycle through the three
   accepted spellings (STRING / CHAR(n) / VARCHAR(n)) so every fuzz run also
   exercises the type-alias parsing. *)
let string_ty_spelling i =
  match i mod 3 with
  | 0 -> "STRING"
  | 1 -> "CHAR(8)"
  | _ -> "VARCHAR(16)"

let create_table b ~name ~cols =
  buf_add b "CREATE TABLE ";
  buf_add b name;
  buf_add b " (";
  List.iteri
    (fun i (cname, (ty : Rel.Value.ty)) ->
      if i > 0 then buf_add b ", ";
      buf_add b cname;
      Buffer.add_char b ' ';
      buf_add b
        (match ty with
         | Rel.Value.Tint -> "INT"
         | Rel.Value.Tfloat -> "FLOAT"
         | Rel.Value.Tstr -> string_ty_spelling i))
    cols;
  buf_add b ");\n"

let insert_rows b ~name rows =
  match rows with
  | [] -> ()
  | _ ->
    buf_add b "INSERT INTO ";
    buf_add b name;
    buf_add b " VALUES ";
    List.iteri
      (fun i row ->
        if i > 0 then buf_add b ", ";
        Buffer.add_char b '(';
        List.iteri
          (fun j v ->
            if j > 0 then buf_add b ", ";
            value b v)
          row;
        Buffer.add_char b ')')
      rows;
    buf_add b ";\n"

let create_index b ~name ~table ~cols ~clustered =
  buf_add b (if clustered then "CREATE CLUSTERED INDEX " else "CREATE INDEX ");
  buf_add b name;
  buf_add b " ON ";
  buf_add b table;
  buf_add b " (";
  buf_add b (String.concat ", " cols);
  buf_add b ");\n"
