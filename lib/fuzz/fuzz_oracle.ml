(* Reference query evaluator: the oracle the differential fuzz harness (and
   the executor tests, via test/naive_eval.ml) checks the engine against.
   Full cross product of the FROM list, predicate filtering with recursive
   subquery evaluation, then aggregation/projection — no optimizer, no
   indexes, no shortcuts. Deliberately independent of the executor's code
   paths: it shares only the SQL front end (Semant blocks) and Rel.Value
   arithmetic/comparison semantics with the engine. *)

module V = Rel.Value
module T = Rel.Tuple
module S = Semant

type frame = {
  block : S.block;
  tuple : T.t;  (* FROM-order composite *)
}

let offsets (block : S.block) =
  let _, offs =
    List.fold_left
      (fun (off, acc) (tr : S.table_ref) ->
        (off + Rel.Schema.arity tr.S.rel.Catalog.schema, (tr.S.tab_idx, off) :: acc))
      (0, []) block.S.tables
  in
  offs

let pos block (c : S.col_ref) = List.assoc c.S.tab (offsets block) + c.S.col

let table_rows _cat (tr : S.table_ref) =
  let rel = tr.S.rel in
  Rss.Scan.to_list
    (Rss.Scan.open_segment_scan rel.Catalog.segment ~rel_id:rel.Catalog.rel_id ())
  |> List.map snd

let cross_product lists =
  List.fold_left
    (fun acc rows ->
      List.concat_map (fun prefix -> List.map (fun r -> T.concat prefix r) rows) acc)
    [ [||] ] lists

let rec eval_expr cat (stack : frame list) (e : S.sexpr) =
  let frame = List.hd stack in
  match e with
  | S.E_const v -> v
  | S.E_param _ -> invalid_arg "naive: parameters not supported"
  | S.E_col c -> T.get frame.tuple (pos frame.block c)
  | S.E_outer { levels_up; tab; col } ->
    let f = List.nth stack levels_up in
    T.get f.tuple (pos f.block { S.tab; col })
  | S.E_binop (op, a, b) ->
    let va = eval_expr cat stack a and vb = eval_expr cat stack b in
    (match op with
     | Ast.Add -> V.add va vb
     | Ast.Sub -> V.sub va vb
     | Ast.Mul -> V.mul va vb
     | Ast.Div -> V.div va vb)
  | S.E_agg _ -> invalid_arg "naive: aggregate in scalar position"

(* SQL three-valued logic, mirroring the engine's documented semantics. *)
and eval_cmp op a b : bool option =
  if V.is_null a || V.is_null b then None
  else
    let d = V.compare a b in
    Some
      (match op with
       | Ast.Eq -> d = 0
       | Ast.Ne -> d <> 0
       | Ast.Lt -> d < 0
       | Ast.Le -> d <= 0
       | Ast.Gt -> d > 0
       | Ast.Ge -> d >= 0)

and and3 a b =
  match a, b with
  | Some false, _ | _, Some false -> Some false
  | Some true, Some true -> Some true
  | _ -> None

and or3 a b =
  match a, b with
  | Some true, _ | _, Some true -> Some true
  | Some false, Some false -> Some false
  | _ -> None

and eval_pred cat stack (p : S.spred) : bool option =
  match p with
  | S.P_cmp (a, c, b) -> eval_cmp c (eval_expr cat stack a) (eval_expr cat stack b)
  | S.P_between (e, lo, hi) ->
    let v = eval_expr cat stack e in
    and3
      (eval_cmp Ast.Ge v (eval_expr cat stack lo))
      (eval_cmp Ast.Le v (eval_expr cat stack hi))
  | S.P_in_list (e, vs) ->
    let v = eval_expr cat stack e in
    if V.is_null v then None
    else if List.exists (V.equal v) vs then Some true
    else if List.exists V.is_null vs then None
    else Some false
  | S.P_in_sub { e; block; negated } ->
    let v = eval_expr cat stack e in
    let base =
      if V.is_null v then None
      else begin
        let rows = run cat stack block in
        if List.exists (fun row -> V.equal v (T.get row 0)) rows then Some true
        else if List.exists (fun row -> V.is_null (T.get row 0)) rows then None
        else Some false
      end
    in
    if negated then Option.map not base else base
  | S.P_cmp_sub (e, c, block) ->
    let v = eval_expr cat stack e in
    (match run cat stack block with
     | [] -> None
     | [ row ] -> eval_cmp c v (T.get row 0)
     | _ -> invalid_arg "naive: scalar subquery with several rows")
  | S.P_and (a, b) -> and3 (eval_pred cat stack a) (eval_pred cat stack b)
  | S.P_or (a, b) -> or3 (eval_pred cat stack a) (eval_pred cat stack b)
  | S.P_not a -> Option.map not (eval_pred cat stack a)

and eval_agg cat stack (f : Ast.agg_fn) inner rows block =
  let values =
    List.filter_map
      (fun tuple ->
        let v = eval_expr cat ({ block; tuple } :: List.tl stack) inner in
        if V.is_null v then None else Some v)
      rows
  in
  match f, values with
  | Ast.Count, vs -> V.Int (List.length vs)
  | (Ast.Avg | Ast.Sum | Ast.Min | Ast.Max), [] -> V.Null
  | Ast.Sum, v :: vs -> List.fold_left V.add v vs
  | Ast.Avg, v :: vs ->
    let s = List.fold_left V.add v vs in
    (match V.to_float s with
     | Some x -> V.Float (x /. float_of_int (List.length values))
     | None -> V.Null)
  | Ast.Min, v :: vs ->
    List.fold_left (fun a b -> if V.compare b a < 0 then b else a) v vs
  | Ast.Max, v :: vs ->
    List.fold_left (fun a b -> if V.compare b a > 0 then b else a) v vs

and eval_select_over cat stack block rows (e : S.sexpr) =
  match e with
  | S.E_agg (f, inner) -> eval_agg cat stack f inner rows block
  | S.E_binop (op, a, b) ->
    let va = eval_select_over cat stack block rows a in
    let vb = eval_select_over cat stack block rows b in
    (match op with
     | Ast.Add -> V.add va vb
     | Ast.Sub -> V.sub va vb
     | Ast.Mul -> V.mul va vb
     | Ast.Div -> V.div va vb)
  | S.E_col _ | S.E_outer _ | S.E_const _ | S.E_param _ ->
    (match rows with
     | [] -> V.Null
     | tuple :: _ -> eval_expr cat ({ block; tuple } :: List.tl stack) e)

(* [stack] are the enclosing frames (innermost first); a fresh frame for this
   block is pushed per candidate composite. *)
and run cat (stack : frame list) (block : S.block) : T.t list =
  let rows = cross_product (List.map (table_rows cat) block.S.tables) in
  let rows =
    match block.S.where with
    | None -> rows
    | Some w ->
      List.filter (fun tuple -> eval_pred cat ({ block; tuple } :: stack) w = Some true) rows
  in
  let project rows_for_output =
    List.map
      (fun (e, _) -> eval_select_over cat ({ block; tuple = [||] } :: stack) block rows_for_output e)
      block.S.select
    |> Array.of_list
  in
  let output =
    if block.S.scalar_agg then [ project rows ]
    else if block.S.group_by <> [] then begin
      let key t = List.map (fun c -> T.get t (pos block c)) block.S.group_by in
      let groups = Hashtbl.create 16 in
      let order = ref [] in
      List.iter
        (fun t ->
          let k = key t in
          if not (Hashtbl.mem groups k) then order := k :: !order;
          Hashtbl.replace groups k (t :: Option.value (Hashtbl.find_opt groups k) ~default:[]))
        rows;
      List.rev_map (fun k -> project (List.rev (Hashtbl.find groups k))) !order
    end
    else
      List.map
        (fun tuple ->
          Array.of_list
            (List.map
               (fun (e, _) -> eval_expr cat ({ block; tuple } :: stack) e)
               block.S.select))
        rows
  in
  output

let query cat block = run cat [] block
