(* Interleaved multi-session MVCC histories checked against a model oracle.

   A history is a scenario (schema + seed rows), one operation stream per
   session, and a schedule — the deterministic interleaving that says which
   session executes its next statement at each step. The engine stays
   UNLATCHED: both Session.t values live on one domain and the scheduler is
   the only source of concurrency, so a blocked 2PL request reports an
   immediate error instead of waiting (there is no second domain to release
   the lock) and every run is exactly reproducible from the seed.

   The oracle is a from-scratch model of snapshot isolation over value
   lists: versions carry (creator txn, creator CSN, deleter txn, deleter
   CSN), snapshots are CSN watermarks, and visibility is the same
   "creator committed at-or-before my snapshot (or is me), deleter did
   not" rule — but implemented with none of the engine's page, lock-table
   or status-table machinery. The model predicts, per statement:
   - SELECT: the exact visible multiset under the session's snapshot
     (the transaction's, or a fresh statement snapshot);
   - INSERT/DELETE: the row-count tag, or a write-write conflict — a
     visible victim whose xmax is already stamped by another transaction
     is either an immediate lock error (stamper still active) or a
     first-committer-wins serialization error (stamper committed after
     our snapshot);
   - VACUUM: the exact number of dead versions reclaimed under the
     horizon rule (CSN offsets between model and engine cancel — only
     relative order matters);
   - transaction-control misuse (BEGIN inside a txn, COMMIT outside):
     some error, no state change.

   A statement that fails inside an explicit transaction leaves partial
   marks and 2PL locks behind (statement-level atomicity is the session's
   caller's job), which the model does not track — so the driver reacts to
   every predicted conflict by immediately rolling the transaction back on
   both sides, re-converging engine and model. After the schedule drains,
   the driver closes both sessions (aborting open transactions), audits
   every table against the model's committed state, runs VACUUM (count
   checked), re-audits, and cross-checks heap/index integrity. *)

module V = Rel.Value

type op =
  | Begin
  | Commit
  | Rollback
  | Insert of string * V.t list list
  | Delete of string * (string * V.t) option
  | Select of string * (string * V.t) option
  | Vacuum

type history = {
  scenario : Fuzz_gen.scenario;
  streams : op list array;
  schedule : int list;
}

(* --- generation --------------------------------------------------------- *)

let gen_rows rng (t : Fuzz_gen.table) =
  let n = 1 + Random.State.int rng 3 in
  List.init n (fun _ ->
      List.map
        (fun (c : Fuzz_gen.column) ->
          Fuzz_gen.gen_value rng
            (fun () -> Random.State.int rng c.Fuzz_gen.distinct)
            c)
        t.Fuzz_gen.cols)

let gen_pred rng (t : Fuzz_gen.table) =
  if Random.State.int rng 4 = 0 then None
  else
    let c =
      List.nth t.Fuzz_gen.cols
        (Random.State.int rng (List.length t.Fuzz_gen.cols))
    in
    Some (c.Fuzz_gen.cname, Fuzz_gen.lit rng c)

let gen_stream rng (s : Fuzz_gen.scenario) =
  let tables = Array.of_list s.Fuzz_gen.tables in
  let pick () = tables.(Random.State.int rng (Array.length tables)) in
  let nops = 8 + Random.State.int rng 11 in
  let in_txn = ref false in
  let ops = ref [] in
  for _ = 1 to nops do
    let op =
      match Random.State.int rng 12 with
      | 0 | 1 when not !in_txn ->
        in_txn := true;
        Begin
      | 0 | 1 ->
        in_txn := false;
        if Random.State.int rng 3 = 0 then Rollback else Commit
      | 2 | 3 | 4 | 5 ->
        let t = pick () in
        Delete (t.Fuzz_gen.tname, gen_pred rng t)
      | 6 | 7 | 8 ->
        let t = pick () in
        Insert (t.Fuzz_gen.tname, gen_rows rng t)
      | 9 when Random.State.int rng 2 = 0 -> Vacuum
      | _ ->
        let t = pick () in
        Select (t.Fuzz_gen.tname, gen_pred rng t)
    in
    ops := op :: !ops
  done;
  List.rev !ops

let gen_history rng =
  let scenario = Fuzz_gen.gen_scenario rng in
  let streams = Array.init 2 (fun _ -> gen_stream rng scenario) in
  let total = Array.fold_left (fun a s -> a + List.length s) 0 streams in
  let schedule = List.init total (fun _ -> Random.State.int rng 2) in
  { scenario; streams; schedule }

(* --- rendering ----------------------------------------------------------- *)

let pred_sql = function
  | None -> ""
  | Some (c, v) -> " WHERE " ^ c ^ " = " ^ Fuzz_sql.value_to_string v

let rows_sql rows =
  String.concat ", "
    (List.map
       (fun row ->
         "(" ^ String.concat ", " (List.map Fuzz_sql.value_to_string row) ^ ")")
       rows)

let op_sql = function
  | Begin -> "BEGIN"
  | Commit -> "COMMIT"
  | Rollback -> "ROLLBACK"
  | Insert (t, rows) -> "INSERT INTO " ^ t ^ " VALUES " ^ rows_sql rows
  | Delete (t, p) -> "DELETE FROM " ^ t ^ pred_sql p
  | Select (t, p) -> "SELECT * FROM " ^ t ^ pred_sql p
  | Vacuum -> "VACUUM"

(* DDL + seed data + the two streams with their interleaving, paste-ready
   modulo the schedule comment. *)
let reproducer (h : history) =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Fuzz_harness.ddl_script ~indexes:true h.scenario);
  Array.iteri
    (fun i ops ->
      Buffer.add_string b (Printf.sprintf "-- session %d:\n" i);
      List.iter (fun op -> Buffer.add_string b (op_sql op ^ ";\n")) ops)
    h.streams;
  Buffer.add_string b
    ("-- schedule: "
    ^ String.concat "" (List.map string_of_int h.schedule)
    ^ "\n");
  Buffer.contents b

(* --- the model ----------------------------------------------------------- *)

type mver = {
  m_vals : V.t list;
  m_xmin : int;  (* model txn id; 0 = seed row *)
  mutable m_xmin_csn : int option;
  mutable m_xmax : int;  (* 0 = not deleted *)
  mutable m_xmax_csn : int option;
}

type mtxn = {
  mt_id : int;
  mt_snap : int;
  mutable mt_ins : mver list;
  mutable mt_del : mver list;
}

type model = {
  mutable m_csn : int;
  mutable m_next_txn : int;
  m_tables : (string, mver list ref) Hashtbl.t;
  m_schemas : (string, Fuzz_gen.column list) Hashtbl.t;
}

let model_of_scenario (s : Fuzz_gen.scenario) =
  let m =
    { m_csn = 0; m_next_txn = 0; m_tables = Hashtbl.create 8;
      m_schemas = Hashtbl.create 8 }
  in
  List.iter
    (fun (t : Fuzz_gen.table) ->
      Hashtbl.replace m.m_schemas t.Fuzz_gen.tname t.Fuzz_gen.cols;
      Hashtbl.replace m.m_tables t.Fuzz_gen.tname
        (ref
           (List.map
              (fun row ->
                { m_vals = row; m_xmin = 0; m_xmin_csn = Some 0; m_xmax = 0;
                  m_xmax_csn = None })
              t.Fuzz_gen.rows)))
    s.Fuzz_gen.tables;
  m

let fresh_mtxn m =
  m.m_next_txn <- m.m_next_txn + 1;
  { mt_id = m.m_next_txn; mt_snap = m.m_csn; mt_ins = []; mt_del = [] }

(* Snapshot visibility, the model's restatement of Mvcc.visible. *)
let m_visible ~self ~snap v =
  let ins_vis =
    (v.m_xmin <> 0 && v.m_xmin = self)
    || (match v.m_xmin_csn with Some c -> c <= snap | None -> false)
  in
  let del_vis =
    v.m_xmax <> 0
    && ((v.m_xmax = self)
        || (match v.m_xmax_csn with Some c -> c <= snap | None -> false))
  in
  ins_vis && not del_vis

let m_pred m tname pred (v : mver) =
  match pred with
  | None -> true
  | Some (cname, lit) ->
    lit <> V.Null
    &&
    let cols = Hashtbl.find m.m_schemas tname in
    let rec idx i = function
      | [] -> -1
      | (c : Fuzz_gen.column) :: _ when c.Fuzz_gen.cname = cname -> i
      | _ :: rest -> idx (i + 1) rest
    in
    let value = List.nth v.m_vals (idx 0 cols) in
    value <> V.Null && V.compare value lit = 0

let m_commit m (txn : mtxn) =
  m.m_csn <- m.m_csn + 1;
  let csn = m.m_csn in
  List.iter (fun v -> v.m_xmin_csn <- Some csn) txn.mt_ins;
  List.iter (fun v -> v.m_xmax_csn <- Some csn) txn.mt_del

let m_rollback m (txn : mtxn) =
  List.iter
    (fun v ->
      v.m_xmax <- 0;
      v.m_xmax_csn <- None)
    txn.mt_del;
  Hashtbl.iter
    (fun _ versions ->
      versions := List.filter (fun v -> v.m_xmin <> txn.mt_id) !versions)
    m.m_tables

(* VACUUM horizon: the oldest CSN an in-flight snapshot can still read.
   Reclaimable = deleter committed at-or-before it. Model and engine CSNs
   differ by a constant seeding offset, which cancels in the comparison. *)
let m_vacuum m ~active =
  let horizon =
    List.fold_left
      (fun acc (t : mtxn) -> min acc t.mt_snap)
      m.m_csn active
  in
  let reclaimed = ref 0 in
  Hashtbl.iter
    (fun _ versions ->
      versions :=
        List.filter
          (fun v ->
            match v.m_xmax_csn with
            | Some c when c <= horizon ->
              incr reclaimed;
              false
            | _ -> true)
          !versions)
    m.m_tables;
  !reclaimed

(* --- expectations -------------------------------------------------------- *)

type expected =
  | Ok_any  (* succeeds; tag not predicted (engine txn ids) *)
  | Ok_tag of string
  | Ok_rows of string list  (* sorted multiset *)
  | Conflict  (* fails with a lock or serialization error *)
  | Misuse  (* fails (txn-control misuse); no state change *)

let count_tag n verb =
  Printf.sprintf "%d row%s %s" n (if n = 1 then "" else "s") verb

(* Apply [op] for session [i] to the model and return what the engine must
   do. State changes for a Conflict are NOT applied — the driver reacts by
   rolling back on both sides. *)
let m_step m (active : mtxn option array) i op : expected =
  let in_txn f =
    (* the statement runs in the session's transaction or an implicit
       auto-committed one *)
    match active.(i) with
    | Some txn -> f txn ~implicit:false
    | None -> f (fresh_mtxn m) ~implicit:true
  in
  match op with
  | Begin ->
    (match active.(i) with
     | Some _ -> Misuse
     | None ->
       active.(i) <- Some (fresh_mtxn m);
       Ok_any)
  | Commit ->
    (match active.(i) with
     | Some txn ->
       m_commit m txn;
       active.(i) <- None;
       Ok_any
     | None -> Misuse)
  | Rollback ->
    (match active.(i) with
     | Some txn ->
       m_rollback m txn;
       active.(i) <- None;
       Ok_any
     | None -> Misuse)
  | Insert (tname, rows) ->
    in_txn (fun txn ~implicit ->
        let versions = Hashtbl.find m.m_tables tname in
        let vs =
          List.map
            (fun row ->
              { m_vals = row; m_xmin = txn.mt_id; m_xmin_csn = None;
                m_xmax = 0; m_xmax_csn = None })
            rows
        in
        versions := !versions @ vs;
        txn.mt_ins <- vs @ txn.mt_ins;
        if implicit then m_commit m txn;
        Ok_tag (count_tag (List.length rows) "inserted"))
  | Delete (tname, pred) ->
    in_txn (fun txn ~implicit ->
        let versions = Hashtbl.find m.m_tables tname in
        let victims =
          List.filter
            (fun v ->
              m_visible ~self:txn.mt_id ~snap:txn.mt_snap v
              && m_pred m tname pred v)
            !versions
        in
        (* a visible victim with a stamped xmax is a write-write conflict:
           stamper active = lock error, stamper committed (necessarily
           after our snapshot, or it would be invisible) = serialization *)
        if List.exists (fun v -> v.m_xmax <> 0) victims then Conflict
        else begin
          List.iter (fun v -> v.m_xmax <- txn.mt_id) victims;
          txn.mt_del <- victims @ txn.mt_del;
          if implicit then m_commit m txn;
          Ok_tag (count_tag (List.length victims) "deleted")
        end)
  | Select (tname, pred) ->
    let self, snap =
      match active.(i) with
      | Some txn -> (txn.mt_id, txn.mt_snap)
      | None -> (0, m.m_csn)
    in
    let versions = Hashtbl.find m.m_tables tname in
    let rows =
      List.filter_map
        (fun v ->
          if m_visible ~self ~snap v && m_pred m tname pred v then
            Some (Fuzz_harness.row_key (Array.of_list v.m_vals))
          else None)
        !versions
    in
    Ok_rows (List.sort String.compare rows)
  | Vacuum ->
    let live = List.filter_map (fun t -> t) (Array.to_list active) in
    let n = m_vacuum m ~active:live in
    Ok_tag
      (Printf.sprintf "%d dead version%s reclaimed" n (if n = 1 then "" else "s"))

(* --- driving the engine --------------------------------------------------- *)

type divergence = {
  v_step : int;  (* -1 for the post-schedule audit *)
  v_session : int;
  v_sql : string;
  v_detail : string;
  v_expected : string;
  v_actual : string;
}

exception Found of divergence

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let committed_multiset m tname =
  let versions = Hashtbl.find m.m_tables tname in
  List.sort String.compare
    (List.filter_map
       (fun v ->
         if m_visible ~self:0 ~snap:m.m_csn v then
           Some (Fuzz_harness.row_key (Array.of_list v.m_vals))
         else None)
       !versions)

let run (h : history) : divergence option =
  let db = Database.create () in
  ignore (Database.exec_script db (Fuzz_harness.ddl_script ~indexes:true h.scenario));
  let eng = Database.engine db in
  let sessions = Array.init 2 (fun _ -> Session.create eng) in
  let model = model_of_scenario h.scenario in
  let active : mtxn option array = [| None; None |] in
  let streams = Array.map (fun s -> ref s) h.streams in
  let diverge step i sql detail expected actual =
    raise
      (Found
         { v_step = step; v_session = i; v_sql = sql; v_detail = detail;
           v_expected = expected; v_actual = actual })
  in
  let exec_step step i op =
    let sql = op_sql op in
    let expected = m_step model active i op in
    let outcome =
      match Session.exec sessions.(i) sql with
      | r -> Ok r
      | exception Session.Error e -> Error e
    in
    match expected, outcome with
    | (Ok_any | Ok_tag _ | Ok_rows _), Error e ->
      diverge step i sql "engine failed where the model succeeds" "success" e
    | (Conflict | Misuse), Ok _ ->
      diverge step i sql "engine succeeded where the model predicts an error"
        "error" "success"
    | Misuse, Error _ -> ()  (* no state change on either side *)
    | Conflict, Error e ->
      if not (contains e "locked" || contains e "serialize" || contains e "deadlock")
      then
        diverge step i sql "conflict error of an unexpected kind"
          "locked/serialize/deadlock" e;
      (* a failed statement in an explicit transaction leaves partial marks
         and locks: roll back on both sides to re-converge *)
      (match active.(i) with
       | Some txn ->
         (match Session.exec sessions.(i) "ROLLBACK" with
          | _ -> ()
          | exception Session.Error e ->
            diverge step i sql "recovery ROLLBACK failed" "success" e);
         m_rollback model txn;
         active.(i) <- None
       | None -> ())
    | Ok_any, Ok _ -> ()
    | Ok_tag t, Ok (Session.Done t') ->
      if t <> t' then diverge step i sql "command tag differs" t t'
    | Ok_tag t, Ok _ ->
      diverge step i sql "expected a command tag" t "rows/text"
    | Ok_rows ms, Ok (Session.Rows out) ->
      let actual = Fuzz_harness.multiset out.Executor.rows in
      if actual <> ms then
        diverge step i sql "snapshot SELECT differs"
          (String.concat "; " ms)
          (String.concat "; " actual)
    | Ok_rows _, Ok _ -> diverge step i sql "expected rows" "rows" "tag/text"
  in
  let audit step phase =
    List.iter
      (fun (t : Fuzz_gen.table) ->
        let tname = t.Fuzz_gen.tname in
        let expected = committed_multiset model tname in
        let out = Database.query db ("SELECT * FROM " ^ tname) in
        let actual = Fuzz_harness.multiset out.Executor.rows in
        if actual <> expected then
          diverge step (-1)
            ("SELECT * FROM " ^ tname)
            (phase ^ ": committed state differs from model")
            (String.concat "; " expected)
            (String.concat "; " actual))
      h.scenario.Fuzz_gen.tables;
    match Database.check_integrity db with
    | Ok () -> ()
    | Error msg ->
      diverge step (-1) "check_integrity" (phase ^ ": heap/index divergence")
        "consistent" msg
  in
  Fun.protect
    ~finally:(fun () -> Array.iter Session.close sessions)
    (fun () ->
      try
        let step = ref 0 in
        let take i =
          match !(streams.(i)) with
          | [] -> false
          | op :: rest ->
            streams.(i) := rest;
            exec_step !step i op;
            incr step;
            true
        in
        List.iter (fun i -> if not (take i) then ignore (take (1 - i))) h.schedule;
        (* drain anything the schedule did not cover *)
        while take 0 || take 1 do
          ()
        done;
        (* end of history: close out open transactions like a disconnect
           would — abort on both sides — then audit *)
        Array.iteri
          (fun i txn ->
            match txn with
            | Some t ->
              (match Session.exec sessions.(i) "ROLLBACK" with
               | _ -> ()
               | exception Session.Error _ -> ());
              m_rollback model t;
              active.(i) <- None
            | None -> ())
          (Array.copy active);
        audit (-1) "final";
        (* VACUUM with no snapshots live must reclaim every dead version —
           and must not change any visible result *)
        let n = m_vacuum model ~active:[] in
        (match Database.exec db "VACUUM" with
         | Database.Done tag ->
           let want =
             Printf.sprintf "%d dead version%s reclaimed" n
               (if n = 1 then "" else "s")
           in
           if tag <> want then
             diverge (-1) (-1) "VACUUM" "reclaim count differs" want tag
         | _ -> diverge (-1) (-1) "VACUUM" "expected Done" "Done" "other");
        audit (-1) "post-vacuum";
        None
      with Found d -> Some d)

(* --- shrinking ------------------------------------------------------------ *)

let h_size (h : history) =
  Array.fold_left (fun acc s -> acc + (10 * List.length s)) 0 h.streams
  + List.fold_left
      (fun acc (t : Fuzz_gen.table) -> acc + 100 + List.length t.Fuzz_gen.rows)
      0 h.scenario.Fuzz_gen.tables

(* Unbalanced streams are fine — the model treats txn-control misuse as an
   expected error — so candidates can drop ANY single op. *)
let h_candidates (h : history) =
  let cands = ref [] in
  Array.iteri
    (fun si ops ->
      List.iteri
        (fun oi _ ->
          let streams = Array.copy h.streams in
          streams.(si) <- List.filteri (fun j _ -> j <> oi) ops;
          cands := { h with streams } :: !cands)
        ops)
    h.streams;
  List.iter
    (fun (t : Fuzz_gen.table) ->
      let n = List.length t.Fuzz_gen.rows in
      if n > 0 then begin
        let replace rows =
          { h with
            scenario =
              { Fuzz_gen.tables =
                  List.map
                    (fun (u : Fuzz_gen.table) ->
                      if u.Fuzz_gen.tname = t.Fuzz_gen.tname then
                        { u with Fuzz_gen.rows }
                      else u)
                    h.scenario.Fuzz_gen.tables } }
        in
        cands := replace (List.tl t.Fuzz_gen.rows) :: !cands;
        cands := replace (List.filteri (fun i _ -> i < n / 2) t.Fuzz_gen.rows)
                 :: !cands
      end)
    h.scenario.Fuzz_gen.tables;
  List.rev !cands

let shrink ~max_steps (h : history) =
  Fuzz_shrink.shrink_generic ~size:h_size ~candidates:h_candidates
    ~still_failing:(fun c -> run c <> None)
    ~max_steps h
