(* Seeded random generation of schemas, data and query blocks for the
   differential fuzz harness.

   Everything stays inside the grammar the oracle (Fuzz_oracle) evaluates
   and the semantic checker accepts by construction:
   - every column reference is alias-qualified (Q0..Q3 outer, S<n> in
     subqueries), so reference analysis in the shrinker is exact;
   - comparisons pair same-type-class operands; arithmetic and SUM/AVG touch
     INT columns only, so aggregate folds are exact integer arithmetic on
     both the engine and the oracle (no float-associativity false alarms —
     AVG divides the exact integer sum once, identically on both sides);
   - grouped SELECT lists hold only grouping columns, aggregates and
     constants; scalar-aggregate blocks hold only aggregates; ORDER BY names
     plain columns present in the SELECT list (the executor requires this
     for grouped blocks, and the harness needs the positions to verify
     sortedness);
   - subqueries select exactly one column; scalar subqueries are
     scalar-aggregate blocks, so they return exactly one row.

   Table row counts are capped so the oracle's cross product stays small
   (the FROM-list row product is bounded at generation time). *)

module V = Rel.Value

type column = {
  cname : string;
  cty : V.ty;        (* Tint or Tstr *)
  distinct : int;    (* 1..6; 1 gives a constant column (degenerate range) *)
  null_pct : int;    (* 0 | 10 | 40 *)
  skew : float;      (* 0. = uniform, 1.2 = zipf-skewed *)
}

type table = {
  tname : string;
  cols : column list;
  rows : V.t list list;
  indexes : (string * string list * bool) list;  (* name, key cols, clustered *)
}

type scenario = { tables : table list }

(* --- scenario ---------------------------------------------------------- *)

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let gen_column rng ~table_idx ~col_idx ~force_int =
  let cty =
    if force_int then V.Tint
    else if Random.State.int rng 3 = 0 then V.Tstr
    else V.Tint
  in
  { cname = Printf.sprintf "c%d" col_idx;
    cty;
    distinct = 1 + Random.State.int rng 6;
    null_pct = pick rng [| 0; 0; 10; 40 |];
    skew = pick rng [| 0.; 0.; 1.2 |] }
  |> fun c -> ignore table_idx; c

let gen_value rng (sample : unit -> int) (c : column) =
  if Random.State.int rng 100 < c.null_pct then V.Null
  else
    let k = sample () in
    match c.cty with
    | V.Tint -> V.Int k
    | V.Tstr -> V.Str (Printf.sprintf "v%d" k)
    | V.Tfloat -> assert false

let gen_table rng ~idx =
  let ncols = 2 + Random.State.int rng 3 in
  let cols =
    List.init ncols (fun j ->
        gen_column rng ~table_idx:idx ~col_idx:j ~force_int:(j = 0))
  in
  let nrows = Random.State.int rng 15 in
  let samplers =
    List.map
      (fun c -> Workload.zipf_sampler rng ~n:c.distinct ~s:c.skew)
      cols
  in
  let rows =
    List.init nrows (fun _ ->
        List.map2 (fun c s -> gen_value rng s c) cols samplers)
  in
  let tname = Printf.sprintf "t%d" idx in
  let indexes =
    if Random.State.int rng 10 < 7 then begin
      let n_idx = 1 + Random.State.int rng 2 in
      List.init (min n_idx ncols) (fun k ->
          let col = List.nth cols ((k + Random.State.int rng ncols) mod ncols) in
          let key =
            if Random.State.int rng 4 = 0 && ncols > 1 then
              let second = List.nth cols ((k + 1) mod ncols) in
              if second.cname = col.cname then [ col.cname ]
              else [ col.cname; second.cname ]
            else [ col.cname ]
          in
          ( Printf.sprintf "i_%s_%d" tname k,
            key,
            k = 0 && Random.State.int rng 10 < 3 ))
    end
    else []
  in
  (* at most one clustered index, and it must come first *)
  let indexes =
    match indexes with
    | (n, k, true) :: rest ->
      (n, k, true) :: List.map (fun (n, k, _) -> (n, k, false)) rest
    | l -> List.map (fun (n, k, _) -> (n, k, false)) l
  in
  { tname; cols; rows; indexes }

let gen_scenario rng =
  let ntables = 1 + Random.State.int rng 4 in
  { tables = List.init ntables (fun i -> gen_table rng ~idx:i) }

(* --- queries ----------------------------------------------------------- *)

(* In-scope column: FROM alias plus its column descriptor. *)
type scol = { alias : string; col : column }

let col_expr (s : scol) =
  Ast.Col { table = Some s.alias; column = s.col.cname }

let lit rng (c : column) =
  (* drawn from a slightly larger window than the column's domain so
     out-of-range and boundary literals occur *)
  let k = Random.State.int rng (c.distinct + 2) - 1 in
  match c.cty with
  | V.Tint -> V.Int k
  | V.Tstr -> V.Str (Printf.sprintf "v%d" k)
  | V.Tfloat -> assert false

let cols_of_ty pool ty = List.filter (fun s -> s.col.cty = ty) pool
let int_cols pool = cols_of_ty pool V.Tint

let any_cmp rng = pick rng [| Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge |]

(* Arithmetic over INT columns and small constants, depth <= 2. Division by a
   constant that may be zero exercises the NULL-on-zero-divide semantics. *)
let rec arith_expr rng depth pool =
  let ints = int_cols pool in
  if depth = 0 || ints = [] || Random.State.int rng 3 = 0 then
    if ints <> [] && Random.State.int rng 4 > 0 then
      col_expr (pick rng (Array.of_list ints))
    else Ast.Const (V.Int (Random.State.int rng 7 - 2))
  else
    let op = pick rng [| Ast.Add; Ast.Sub; Ast.Mul; Ast.Div |] in
    Ast.Binop (op, arith_expr rng (depth - 1) pool, arith_expr rng (depth - 1) pool)

(* --- subqueries -------------------------------------------------------- *)

(* Subqueries are one level deep: a single table aliased S<n>, an optional
   simple WHERE that may correlate with the outer block's columns. *)
let sub_counter = ref 0

let sub_where rng (sub_pool : scol list) (outer_pool : scol list) =
  if Random.State.int rng 5 < 2 then None
  else
    let s = pick rng (Array.of_list sub_pool) in
    let p =
      if Random.State.int rng 5 < 2 then
        (* correlated: compare against an outer column of the same class *)
        match cols_of_ty outer_pool s.col.cty with
        | [] -> Ast.Cmp (col_expr s, any_cmp rng, Ast.Const (lit rng s.col))
        | outs ->
          Ast.Cmp (col_expr s, any_cmp rng, col_expr (pick rng (Array.of_list outs)))
      else Ast.Cmp (col_expr s, any_cmp rng, Ast.Const (lit rng s.col))
    in
    Some p

let gen_subquery rng scenario outer_pool ~want_ty ~scalar =
  let candidates =
    List.filter
      (fun t ->
        List.length t.rows <= 12
        && List.exists (fun c -> c.cty = want_ty) t.cols)
      scenario.tables
  in
  match candidates with
  | [] -> None
  | _ ->
    let t = pick rng (Array.of_list candidates) in
    let alias = Printf.sprintf "S%d" !sub_counter in
    incr sub_counter;
    let sub_pool = List.map (fun c -> { alias; col = c }) t.cols in
    let target =
      pick rng (Array.of_list (List.filter (fun s -> s.col.cty = want_ty) sub_pool))
    in
    let item =
      if scalar then
        (* scalar-aggregate block: exactly one row, one column *)
        let fn =
          if want_ty = V.Tint then
            pick rng [| Ast.Max; Ast.Min; Ast.Sum; Ast.Count; Ast.Avg |]
          else pick rng [| Ast.Max; Ast.Min |]
        in
        Ast.Sel_expr (Ast.Agg (fn, col_expr target), None)
      else Ast.Sel_expr (col_expr target, None)
    in
    Some
      { Ast.select = [ item ];
        from = [ (t.tname, Some alias) ];
        where = sub_where rng sub_pool outer_pool;
        group_by = [];
        order_by = [] }

(* --- boolean factors --------------------------------------------------- *)

let rec gen_factor rng scenario pool ~allow_sub =
  let c = pick rng (Array.of_list pool) in
  match Random.State.int rng 16 with
  | 0 | 1 | 2 | 3 ->
    (* column cmp constant; rarely a NULL literal (always-unknown) *)
    let rhs =
      if Random.State.int rng 12 = 0 then Ast.Const V.Null
      else Ast.Const (lit rng c.col)
    in
    Ast.Cmp (col_expr c, any_cmp rng, rhs)
  | 4 | 5 ->
    (* column cmp column, same type class (joins when aliases differ) *)
    (match cols_of_ty pool c.col.cty with
     | [] | [ _ ] -> Ast.Cmp (col_expr c, any_cmp rng, Ast.Const (lit rng c.col))
     | others ->
       Ast.Cmp (col_expr c, any_cmp rng, col_expr (pick rng (Array.of_list others))))
  | 6 | 7 ->
    (match int_cols pool with
     | [] -> Ast.Cmp (col_expr c, any_cmp rng, Ast.Const (lit rng c.col))
     | ints ->
       let ic = pick rng (Array.of_list ints) in
       let a = Random.State.int rng (ic.col.distinct + 2) - 1 in
       let d = Random.State.int rng 3 in
       let lo, hi = if Random.State.int rng 6 = 0 then (a + d, a) else (a, a + d) in
       Ast.Between (col_expr ic, Ast.Const (V.Int lo), Ast.Const (V.Int hi)))
  | 8 | 9 ->
    let n = 1 + Random.State.int rng 3 in
    let vs = List.init n (fun _ -> lit rng c.col) in
    let vs = if Random.State.int rng 8 = 0 then V.Null :: vs else vs in
    Ast.In_list (col_expr c, vs)
  | 10 ->
    Ast.Or
      ( gen_factor rng scenario pool ~allow_sub:false,
        gen_factor rng scenario pool ~allow_sub:false )
  | 11 -> Ast.Not (gen_factor rng scenario pool ~allow_sub:false)
  | 12 when allow_sub ->
    (match gen_subquery rng scenario pool ~want_ty:c.col.cty ~scalar:false with
     | Some q -> Ast.In_subquery (col_expr c, q, Random.State.int rng 3 = 0)
     | None -> Ast.Cmp (col_expr c, any_cmp rng, Ast.Const (lit rng c.col)))
  | 13 when allow_sub ->
    (match int_cols pool with
     | [] -> Ast.Cmp (col_expr c, any_cmp rng, Ast.Const (lit rng c.col))
     | ints ->
       let ic = pick rng (Array.of_list ints) in
       (match gen_subquery rng scenario pool ~want_ty:V.Tint ~scalar:true with
        | Some q -> Ast.Cmp_subquery (col_expr ic, any_cmp rng, q)
        | None -> Ast.Cmp (col_expr ic, any_cmp rng, Ast.Const (lit rng ic.col))))
  | 14 ->
    (* arithmetic vs constant *)
    Ast.Cmp
      ( arith_expr rng 2 pool,
        any_cmp rng,
        Ast.Const (V.Int (Random.State.int rng 9 - 2)) )
  | _ ->
    (* constant-constant (plan-cache shape sharing) *)
    let a = Random.State.int rng 4 and b = Random.State.int rng 4 in
    Ast.Cmp (Ast.Const (V.Int a), any_cmp rng, Ast.Const (V.Int b))

let gen_where rng scenario pool =
  if Random.State.int rng 5 = 0 then None
  else begin
    let n = 1 + Random.State.int rng 3 in
    let fs = List.init n (fun _ -> gen_factor rng scenario pool ~allow_sub:true) in
    match fs with
    | [] -> None
    | f :: rest -> Some (List.fold_left (fun a b -> Ast.And (a, b)) f rest)
  end

(* --- aggregates -------------------------------------------------------- *)

let gen_agg rng pool =
  let ints = int_cols pool in
  if ints = [] || Random.State.int rng 4 = 0 then
    Ast.Agg (Ast.Count, Ast.Const (V.Int 1))  (* COUNT star *)
  else
    let c = pick rng (Array.of_list ints) in
    let fn = pick rng [| Ast.Count; Ast.Sum; Ast.Min; Ast.Max; Ast.Avg |] in
    Ast.Agg (fn, col_expr c)

(* --- query ------------------------------------------------------------- *)

let gen_order_by rng (col_items : scol list) =
  if col_items = [] || Random.State.int rng 5 < 3 then []
  else begin
    let n = min (1 + Random.State.int rng 2) (List.length col_items) in
    let keys = ref [] in
    let remaining = ref col_items in
    for _ = 1 to n do
      match !remaining with
      | [] -> ()
      | l ->
        let s = pick rng (Array.of_list l) in
        remaining := List.filter (fun x -> x != s) l;
        let dir = if Random.State.int rng 3 = 0 then Ast.Desc else Ast.Asc in
        keys := (col_expr s, dir) :: !keys
    done;
    List.rev !keys
  end

let gen_query rng (scenario : scenario) =
  sub_counter := 0;
  (* pick FROM entries keeping the oracle's cross product bounded *)
  let budget = 2000 in
  let tables = Array.of_list scenario.tables in
  let nfrom = 1 + Random.State.int rng 3 in
  let from = ref [] and product = ref 1 and n = ref 0 in
  for i = 0 to nfrom - 1 do
    let t = tables.(Random.State.int rng (Array.length tables)) in
    let weight = max 1 (List.length t.rows) in
    if !n = 0 || !product * weight <= budget then begin
      from := (t, Printf.sprintf "Q%d" i) :: !from;
      product := !product * weight;
      incr n
    end
  done;
  let from = List.rev !from in
  let pool =
    List.concat_map
      (fun (t, alias) -> List.map (fun c -> { alias; col = c }) t.cols)
      from
  in
  let where = gen_where rng scenario pool in
  let mode = Random.State.int rng 5 in
  let select, group_by, order_by =
    if mode = 0 then begin
      (* scalar aggregate: SELECT list is aggregates only *)
      let n = 1 + Random.State.int rng 3 in
      (List.init n (fun _ -> Ast.Sel_expr (gen_agg rng pool, None)), [], [])
    end
    else if mode = 1 then begin
      (* GROUP BY: grouping columns + aggregates (+ an occasional constant) *)
      let ngroup = min (1 + Random.State.int rng 2) (List.length pool) in
      let gcols = ref [] and remaining = ref pool in
      for _ = 1 to ngroup do
        match !remaining with
        | [] -> ()
        | l ->
          let s = pick rng (Array.of_list l) in
          remaining := List.filter (fun x -> x != s) l;
          gcols := s :: !gcols
      done;
      let gcols = List.rev !gcols in
      let naggs = 1 + Random.State.int rng 2 in
      let items =
        List.map (fun s -> Ast.Sel_expr (col_expr s, None)) gcols
        @ List.init naggs (fun _ -> Ast.Sel_expr (gen_agg rng pool, None))
        @ (if Random.State.int rng 5 = 0 then
             [ Ast.Sel_expr (Ast.Const (V.Int 7), None) ]
           else [])
      in
      (items, List.map col_expr gcols, gen_order_by rng gcols)
    end
    else begin
      (* plain projection *)
      let n = 1 + Random.State.int rng 4 in
      let picked = ref [] in
      let items =
        List.init n (fun _ ->
            match Random.State.int rng 6 with
            | 0 -> Ast.Sel_expr (arith_expr rng 2 pool, None)
            | 1 -> Ast.Sel_expr (Ast.Const (lit rng (pick rng (Array.of_list pool)).col), None)
            | _ ->
              let s = pick rng (Array.of_list pool) in
              picked := s :: !picked;
              Ast.Sel_expr (col_expr s, None))
      in
      (items, [], gen_order_by rng (List.rev !picked))
    end
  in
  { Ast.select;
    from = List.map (fun (t, alias) -> (t.tname, Some alias)) from;
    where;
    group_by;
    order_by }
