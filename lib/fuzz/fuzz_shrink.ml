(* Greedy divergence shrinker: repeatedly tries smaller (scenario, query)
   candidates, keeping any that still diverge, until a fixpoint (or the step
   budget runs out). Candidates may be semantically invalid — the check
   callback answers [Unsupported] for those and the candidate is skipped —
   but most are valid by construction because the generator alias-qualifies
   every column reference, making "which FROM entries does this expression
   use" exact. *)

module V = Rel.Value

(* --- reference analysis ------------------------------------------------ *)

let rec expr_aliases (e : Ast.expr) acc =
  match e with
  | Ast.Col { table = Some t; _ } -> t :: acc
  | Ast.Col { table = None; _ } -> "?" :: acc  (* unqualified: poison *)
  | Ast.Const _ | Ast.Param _ -> acc
  | Ast.Binop (_, a, b) -> expr_aliases a (expr_aliases b acc)
  | Ast.Agg (_, a) -> expr_aliases a acc

(* Free aliases of a predicate: references not bound by a subquery's own
   FROM list escape to the enclosing block. *)
let rec pred_aliases (p : Ast.predicate) acc =
  match p with
  | Ast.Cmp (a, _, b) -> expr_aliases a (expr_aliases b acc)
  | Ast.Between (a, lo, hi) -> expr_aliases a (expr_aliases lo (expr_aliases hi acc))
  | Ast.In_list (e, _) -> expr_aliases e acc
  | Ast.In_subquery (e, q, _) -> expr_aliases e (query_free_aliases q acc)
  | Ast.Cmp_subquery (e, _, q) -> expr_aliases e (query_free_aliases q acc)
  | Ast.And (a, b) | Ast.Or (a, b) -> pred_aliases a (pred_aliases b acc)
  | Ast.Not a -> pred_aliases a acc

and query_free_aliases (q : Ast.query) acc =
  let bound =
    List.filter_map (fun (_, alias) -> alias) q.Ast.from
    @ List.map fst q.Ast.from
  in
  let inner =
    List.concat_map
      (function Ast.Star -> [] | Ast.Sel_expr (e, _) -> expr_aliases e [])
      q.Ast.select
    @ (match q.Ast.where with Some p -> pred_aliases p [] | None -> [])
    @ List.concat_map (fun e -> expr_aliases e []) q.Ast.group_by
    @ List.concat_map (fun (e, _) -> expr_aliases e []) q.Ast.order_by
  in
  List.filter (fun a -> not (List.mem a bound)) inner @ acc

let uses_alias alias (p : Ast.predicate) = List.mem alias (pred_aliases p [])
let expr_uses_alias alias e = List.mem alias (expr_aliases e [])

(* --- AND-chain helpers -------------------------------------------------- *)

let rec factors (p : Ast.predicate) =
  match p with
  | Ast.And (a, b) -> factors a @ factors b
  | p -> [ p ]

let rebuild = function
  | [] -> None
  | f :: rest -> Some (List.fold_left (fun a b -> Ast.And (a, b)) f rest)

let factor_count (q : Ast.query) =
  match q.Ast.where with None -> 0 | Some p -> List.length (factors p)

(* --- candidate generation ----------------------------------------------- *)

(* Tables actually referenced by the query (outer FROM and subquery FROM). *)
let referenced_tables (q : Ast.query) =
  let rec pred_tabs p acc =
    match p with
    | Ast.In_subquery (_, sq, _) | Ast.Cmp_subquery (_, _, sq) ->
      List.map fst sq.Ast.from @ acc
    | Ast.And (a, b) | Ast.Or (a, b) -> pred_tabs a (pred_tabs b acc)
    | Ast.Not a -> pred_tabs a acc
    | _ -> acc
  in
  List.map fst q.Ast.from
  @ (match q.Ast.where with Some p -> pred_tabs p [] | None -> [])

(* Remove the FROM entry at position [i], dropping every select item, factor
   and grouping/order key that references its alias. *)
let drop_from_entry (q : Ast.query) i =
  match List.nth_opt q.Ast.from i with
  | None | Some (_, None) -> None
  | Some (_, Some alias) ->
    if List.length q.Ast.from <= 1 then None
    else begin
      let from = List.filteri (fun j _ -> j <> i) q.Ast.from in
      let select =
        List.filter
          (function
            | Ast.Star -> true
            | Ast.Sel_expr (e, _) -> not (expr_uses_alias alias e))
          q.Ast.select
      in
      let where =
        match q.Ast.where with
        | None -> None
        | Some p -> rebuild (List.filter (fun f -> not (uses_alias alias f)) (factors p))
      in
      let group_by =
        List.filter (fun e -> not (expr_uses_alias alias e)) q.Ast.group_by
      in
      let order_by =
        List.filter (fun (e, _) -> not (expr_uses_alias alias e)) q.Ast.order_by
      in
      let had_agg =
        List.exists
          (function
            | Ast.Sel_expr (Ast.Agg _, _) -> true
            | _ -> false)
          q.Ast.select
      in
      let select =
        if select <> [] then select
        else if had_agg then [ Ast.Sel_expr (Ast.Agg (Ast.Count, Ast.Const (V.Int 1)), None) ]
        else [ Ast.Sel_expr (Ast.Const (V.Int 1), None) ]
      in
      Some { Ast.select; from; where; group_by; order_by }
    end

(* Simplify one factor in place: the [n]-th candidate rewrite of the WHERE
   tree, or None when exhausted. *)
let simplify_factor (f : Ast.predicate) =
  match f with
  | Ast.Or (a, b) -> [ a; b ]
  | Ast.Not a -> [ a ]
  | Ast.In_subquery (e, sq, negated) ->
    (match sq.Ast.where with
     | Some _ -> [ Ast.In_subquery (e, { sq with Ast.where = None }, negated) ]
     | None -> [])
  | Ast.Cmp_subquery (e, c, sq) ->
    (match sq.Ast.where with
     | Some _ -> [ Ast.Cmp_subquery (e, c, { sq with Ast.where = None }) ]
     | None -> [])
  | Ast.Between (e, lo, _) -> [ Ast.Cmp (e, Ast.Ge, lo) ]
  | Ast.In_list (e, (v :: _ :: _ as _vs)) -> [ Ast.In_list (e, [ v ]) ]
  | _ -> []

(* Literal shrinking: rewrite the [target]-th constant of the WHERE tree. *)
let shrink_value (v : V.t) =
  match v with
  | V.Int n when n <> 0 -> Some (V.Int (if abs n <= 1 then 0 else n / 2))
  | V.Str s when s <> "v0" -> Some (V.Str "v0")
  | _ -> None

let shrink_pred_literal (p : Ast.predicate) ~target =
  let counter = ref (-1) in
  let hit () = incr counter; !counter = target in
  let rec expr (e : Ast.expr) =
    match e with
    | Ast.Const v ->
      if hit () then (match shrink_value v with Some v' -> Ast.Const v' | None -> e)
      else e
    | Ast.Binop (op, a, b) -> Ast.Binop (op, expr a, expr b)
    | Ast.Agg (f, a) -> Ast.Agg (f, expr a)
    | Ast.Col _ | Ast.Param _ -> e
  in
  let rec pred (p : Ast.predicate) =
    match p with
    | Ast.Cmp (a, c, b) -> Ast.Cmp (expr a, c, expr b)
    | Ast.Between (a, lo, hi) -> Ast.Between (expr a, expr lo, expr hi)
    | Ast.In_list (e, vs) ->
      Ast.In_list
        ( expr e,
          List.map
            (fun v ->
              if hit () then Option.value (shrink_value v) ~default:v else v)
            vs )
    | Ast.In_subquery (e, sq, neg) -> Ast.In_subquery (expr e, sub sq, neg)
    | Ast.Cmp_subquery (e, c, sq) -> Ast.Cmp_subquery (expr e, c, sub sq)
    | Ast.And (a, b) -> Ast.And (pred a, pred b)
    | Ast.Or (a, b) -> Ast.Or (pred a, pred b)
    | Ast.Not a -> Ast.Not (pred a)
  and sub (sq : Ast.query) =
    { sq with Ast.where = Option.map pred sq.Ast.where }
  in
  let p' = pred p in
  if !counter < target then None else Some p'

(* --- candidates over the pair ------------------------------------------- *)

type pair = Fuzz_gen.scenario * Ast.query

let candidates ((s, q) : pair) : pair list =
  let cands = ref [] in
  let add s' q' = cands := (s', q') :: !cands in
  (* 1. prune scenario tables the query never touches *)
  let refs = referenced_tables q in
  let used = List.filter (fun (t : Fuzz_gen.table) -> List.mem t.Fuzz_gen.tname refs) s.Fuzz_gen.tables in
  if List.length used < List.length s.Fuzz_gen.tables then
    add { Fuzz_gen.tables = used } q;
  (* 2. drop the whole WHERE, then individual factors *)
  (match q.Ast.where with
   | None -> ()
   | Some p ->
     add s { q with Ast.where = None };
     let fs = factors p in
     if List.length fs > 1 then
       List.iteri
         (fun i _ ->
           add s { q with Ast.where = rebuild (List.filteri (fun j _ -> j <> i) fs) })
         fs;
     (* 3. simplify factors structurally *)
     List.iteri
       (fun i f ->
         List.iter
           (fun f' ->
             add s
               { q with
                 Ast.where =
                   rebuild (List.mapi (fun j g -> if j = i then f' else g) fs) })
           (simplify_factor f))
       fs;
     (* 4. shrink literals *)
     let rec try_literals target =
       if target < 24 then
         match shrink_pred_literal p ~target with
         | Some p' ->
           if p' <> p then add s { q with Ast.where = Some p' };
           try_literals (target + 1)
         | None -> ()
     in
     try_literals 0);
  (* 5. drop FROM entries *)
  List.iteri
    (fun i _ ->
      match drop_from_entry q i with Some q' -> add s q' | None -> ())
    q.Ast.from;
  (* 6. ungroup / unorder / narrow the select list *)
  if q.Ast.group_by <> [] then begin
    let plain =
      List.filter
        (function Ast.Sel_expr (Ast.Agg _, _) -> false | _ -> true)
        q.Ast.select
    in
    let plain =
      if plain = [] then [ Ast.Sel_expr (Ast.Const (V.Int 1), None) ] else plain
    in
    add s { q with Ast.group_by = []; select = plain }
  end;
  if q.Ast.order_by <> [] then add s { q with Ast.order_by = [] };
  if List.length q.Ast.select > 1 then
    List.iteri
      (fun i _ ->
        add s { q with Ast.select = List.filteri (fun j _ -> j <> i) q.Ast.select })
      q.Ast.select;
  (* 7. shrink data: halve each table's rows, drop indexes *)
  List.iter
    (fun (t : Fuzz_gen.table) ->
      let n = List.length t.Fuzz_gen.rows in
      if n > 0 then begin
        let halved = List.filteri (fun i _ -> i < n / 2) t.Fuzz_gen.rows in
        add
          { Fuzz_gen.tables =
              List.map
                (fun (u : Fuzz_gen.table) ->
                  if u.Fuzz_gen.tname = t.Fuzz_gen.tname then
                    { u with Fuzz_gen.rows = halved }
                  else u)
                s.Fuzz_gen.tables }
          q;
        add
          { Fuzz_gen.tables =
              List.map
                (fun (u : Fuzz_gen.table) ->
                  if u.Fuzz_gen.tname = t.Fuzz_gen.tname then
                    { u with Fuzz_gen.rows = List.tl u.Fuzz_gen.rows }
                  else u)
                s.Fuzz_gen.tables }
          q
      end;
      if t.Fuzz_gen.indexes <> [] then
        add
          { Fuzz_gen.tables =
              List.map
                (fun (u : Fuzz_gen.table) ->
                  if u.Fuzz_gen.tname = t.Fuzz_gen.tname then
                    { u with Fuzz_gen.indexes = [] }
                  else u)
                s.Fuzz_gen.tables }
          q)
    s.Fuzz_gen.tables;
  List.rev !cands

(* --- the greedy loop ---------------------------------------------------- *)

let size ((s, q) : pair) =
  let rows =
    List.fold_left
      (fun acc (t : Fuzz_gen.table) -> acc + List.length t.Fuzz_gen.rows)
      0 s.Fuzz_gen.tables
  in
  (* lexicographic-ish scalar: structure dominates, data breaks ties *)
  (List.length s.Fuzz_gen.tables * 1000)
  + (List.length q.Ast.from * 500)
  + (factor_count q * 200)
  + (List.length q.Ast.select * 50)
  + (List.length q.Ast.group_by * 50)
  + (List.length q.Ast.order_by * 50)
  + rows

(* Generic greedy loop: repeatedly take the first strictly-smaller candidate
   that still fails, until a fixpoint or the step budget runs out. A step is
   counted for every strictly-smaller candidate checked (not for candidates
   discarded on size alone). Shared by the differential shrinker below and
   the crash-torture workload shrinker (Fuzz_torture). *)
let shrink_generic ~size ~candidates ~still_failing ~max_steps init =
  let steps = ref 0 in
  let rec fix current =
    if !steps >= max_steps then current
    else begin
      let cur_size = size current in
      let rec first = function
        | [] -> None
        | cand :: rest ->
          if !steps >= max_steps then None
          else if size cand >= cur_size then first rest
          else begin
            incr steps;
            if still_failing cand then Some cand else first rest
          end
      in
      match first (candidates current) with
      | Some smaller -> fix smaller
      | None -> current
    end
  in
  let final = fix init in
  (final, !steps)

(* [check] answers the verdict for a candidate; only candidates that still
   diverge are kept. Returns the shrunk pair and the number of steps used. *)
let shrink ~check ~max_steps ((s, q) : pair) : pair * int =
  shrink_generic ~size ~candidates
    ~still_failing:(fun (s', q') ->
      match (check s' q' : Fuzz_harness.verdict) with
      | Fuzz_harness.Diverged _ -> true
      | Fuzz_harness.Agree | Fuzz_harness.Unsupported _ -> false)
    ~max_steps (s, q)
