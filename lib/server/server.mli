(** The wire-protocol server: one shared {!Engine.t}, one {!Session.t} per
    connection, speaking {!Protocol} over a Unix-domain or TCP socket.

    The accept loop runs on its own domain; connection handlers run on the
    shared {!Rss.Domain_pool} and occupy their worker for the connection's
    lifetime (which is why server sessions are [serial_only] — pool tasks
    must never submit exchange subtasks). Keep concurrent connections below
    the pool cap if the same process also runs parallel plans.

    Starting the server flips the engine into latched mode
    ({!Engine.set_latched}) for the listener's lifetime: statements
    serialize on the engine latch, blocked lock requests wait on the engine
    condvar, SELECTs take shared relation locks. A handler exiting for any
    reason — disconnect, protocol violation, server stop — closes its
    session, aborting any in-flight transaction and releasing its locks. *)

type addr =
  | Unix_sock of string
  | Tcp of string * int

val addr_of_string : string -> addr
(** ["/path/to.sock"], ["host:port"] or [":port"] (loopback).
    @raise Invalid_argument on an unparsable port. *)

val addr_to_string : addr -> string

type t

val start : ?workers:int -> engine:Engine.t -> addr -> t
(** Bind, listen and spawn the accept domain. [workers] (default 4) grows
    the domain pool serving connections. [Tcp (_, 0)] binds an ephemeral
    port; read it back with {!addr}. *)

val addr : t -> addr
(** The resolved address (ephemeral TCP port filled in). *)

val engine : t -> Engine.t

val stop : t -> unit
(** Close the listener, disconnect every client (their sessions roll back
    and release locks), join all handlers, unlatch the engine. Idempotent. *)
