(** Wire protocol: length-prefixed binary frames.

    [frame := u32 length (big-endian, covers the rest) | u8 type | payload].
    Scalars are big-endian, strings u32-length-prefixed, values travel in
    the storage layer's serialization ({!Rel.Value.write}).

    The conversation is Postgres-shaped: {!client_msg.Startup} opens, and
    every subsequent request is answered by a frame sequence ending in
    {!server_msg.Ready} — so a client can pipeline N requests and count N
    Ready frames back. Statement failures answer [Err] then [Ready] and the
    connection stays usable; protocol violations raise {!Malformed} on the
    receiving side, which answers [Err] and drops the connection. *)

exception Malformed of string

exception Disconnected
(** The peer vanished while bytes were still owed to it: raised when a
    {!flush} (or the implicit flush inside a recv) hits [EPIPE]/[ECONNRESET].
    The read side normalizes an abortive close to the orderly-EOF [None]
    instead. *)

val version : int
val max_frame : int

type client_msg =
  | Startup of int  (** protocol version *)
  | Simple of string  (** one SQL statement, any kind *)
  | Parse of { name : string; sql : string }
  | Bind of { name : string; params : Rel.Value.t list }
  | Execute of { name : string; params : Rel.Value.t list option; fetch : int }
      (** [fetch = 0]: stream the whole result; [> 0]: open a portal and
          return at most [fetch] rows, the rest via {!Fetch}. [Some vs]
          binds [vs] inline for this call (the one-frame-per-call hot
          path); [None] uses the bindings of the last {!Bind} *)
  | Fetch of int
  | Close_stmt of string
  | Terminate

type server_msg =
  | Ready
  | Parse_ok of int  (** placeholder count *)
  | Bind_ok
  | Row_desc of string list
  | Row_batch of Rel.Tuple.t list
  | Complete of string  (** command tag, e.g. ["SELECT 42"] *)
  | Suspended  (** portal not exhausted; Fetch continues it *)
  | Err of string

val encode_client : client_msg -> char * string
val decode_client : char -> string -> client_msg
val encode_server : server_msg -> char * string
val decode_server : char -> string -> server_msg

(** {2 Buffered frame I/O}

    Both directions are buffered; {!recv_client}/{!recv_server} flush
    pending output only before actually blocking on the descriptor, so
    pipelined request batches cost one [write(2)] per drained input batch. *)

type io

val io_of_fd : Unix.file_descr -> io
val fd : io -> Unix.file_descr

val send : io -> server_msg -> unit
val send_client : io -> client_msg -> unit

val send_raw : io -> string -> unit
(** Append raw bytes to the output buffer — the malformed-stream tests forge
    broken frames with this. *)

val flush : io -> unit

val input_pending : io -> bool
(** A complete request frame is already buffered (or the stream is
    detectably corrupt — the reader will fault on it next). *)

val recv_client : io -> client_msg option
val recv_server : io -> server_msg option
(** Blocking; [None] on orderly EOF. @raise Malformed on a corrupt stream. *)
