(* Wire protocol: length-prefixed binary frames over a byte stream.

     frame := u32 length (big-endian, covers the rest) | u8 type | payload

   Payload scalars are big-endian; strings are u32-length-prefixed; values
   reuse the storage layer's serialization (Rel.Value.write/read), so a row
   travels in exactly the bytes the segment layer would store.

   The conversation is Postgres-shaped: the client opens with Startup and
   every subsequent request is answered by a frame sequence ending in Ready
   — which is what makes pipelining trivial (write N requests, count N
   Ready frames back). Statement errors answer Err then Ready and leave the
   connection usable; protocol errors (bad magic, bad frame type, bad
   lengths) answer Err and drop the connection.

   The Io layer buffers both directions and flushes pending output only
   when it would otherwise block reading the next request: back-to-back
   pipelined requests are answered with one write(2) per drained input
   batch, not one per response. *)

exception Malformed of string
exception Disconnected

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let version = 1
let magic = 0x53595352 (* "SYSR" *)

let max_frame = 1 lsl 26
(* 64 MiB: a frame length beyond this is a corrupt or hostile stream, not a
   big result — results are batched well below it *)

(* --- payload encoding ----------------------------------------------------- *)

let put_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

let put_u16 b n =
  put_u8 b (n lsr 8);
  put_u8 b n

let put_u32 b n =
  put_u16 b (n lsr 16);
  put_u16 b n

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_value = Rel.Value.write

(* --- payload decoding ----------------------------------------------------- *)

(* A cursor decodes a payload in place from a larger backing string (the
   receive buffer): [c_end] bounds this frame, so no per-frame payload copy. *)
type cursor = { c_buf : string; mutable c_pos : int; c_end : int }

let cursor s = { c_buf = s; c_pos = 0; c_end = String.length s }

let need c n = if c.c_pos + n > c.c_end then malformed "truncated payload"

let get_u8 c =
  need c 1;
  let n = Char.code c.c_buf.[c.c_pos] in
  c.c_pos <- c.c_pos + 1;
  n

let get_u16 c =
  let hi = get_u8 c in
  (hi lsl 8) lor get_u8 c

let get_u32 c =
  let hi = get_u16 c in
  (hi lsl 16) lor get_u16 c

let get_str c =
  let n = get_u32 c in
  if n > max_frame then malformed "oversized string";
  need c n;
  let s = String.sub c.c_buf c.c_pos n in
  c.c_pos <- c.c_pos + n;
  s

let get_value c =
  need c 1;
  match Rel.Value.read (Bytes.unsafe_of_string c.c_buf) c.c_pos with
  | v, pos ->
    if pos > c.c_end then malformed "truncated value";
    c.c_pos <- pos;
    v
  | exception Invalid_argument msg -> malformed "bad value encoding: %s" msg

let get_done c =
  if c.c_pos <> c.c_end then malformed "trailing payload bytes"

(* --- messages ------------------------------------------------------------- *)

type client_msg =
  | Startup of int  (** protocol version *)
  | Simple of string  (** one SQL statement, any kind *)
  | Parse of { name : string; sql : string }
  | Bind of { name : string; params : Rel.Value.t list }
  | Execute of { name : string; params : Rel.Value.t list option; fetch : int }
      (** [fetch = 0]: stream the whole result; [> 0]: open a portal and
          return at most [fetch] rows, the rest via {!Fetch}. [params]
          inline bindings for this call — the steady-state hot path is one
          Execute frame per call; [None] falls back to the last {!Bind} *)
  | Fetch of int
  | Close_stmt of string
  | Terminate

type server_msg =
  | Ready
  | Parse_ok of int  (** placeholder count *)
  | Bind_ok
  | Row_desc of string list
  | Row_batch of Rel.Tuple.t list
  | Complete of string  (** command tag, e.g. ["SELECT 42"] *)
  | Suspended  (** portal not exhausted; Fetch continues it *)
  | Err of string

let encode_values b vs =
  put_u16 b (List.length vs);
  List.iter (put_value b) vs

let decode_values c =
  let n = get_u16 c in
  List.init n (fun _ -> get_value c)

let encode_client_into b msg =
  let typ =
    match msg with
    | Startup v ->
      put_u32 b magic;
      put_u16 b v;
      'S'
    | Simple sql ->
      put_str b sql;
      'Q'
    | Parse { name; sql } ->
      put_str b name;
      put_str b sql;
      'P'
    | Bind { name; params } ->
      put_str b name;
      encode_values b params;
      'B'
    | Execute { name; params; fetch } ->
      put_str b name;
      put_u32 b fetch;
      (match params with
       | None -> put_u8 b 0
       | Some vs ->
         put_u8 b 1;
         encode_values b vs);
      'E'
    | Fetch n ->
      put_u32 b n;
      'F'
    | Close_stmt name ->
      put_str b name;
      'C'
    | Terminate -> 'X'
  in
  typ

let encode_client msg =
  let b = Buffer.create 64 in
  let typ = encode_client_into b msg in
  (typ, Buffer.contents b)

let decode_client_at typ c =
  let msg =
    match typ with
    | 'S' ->
      let m = get_u32 c in
      if m <> magic then malformed "bad startup magic";
      Startup (get_u16 c)
    | 'Q' -> Simple (get_str c)
    | 'P' ->
      let name = get_str c in
      Parse { name; sql = get_str c }
    | 'B' ->
      let name = get_str c in
      Bind { name; params = decode_values c }
    | 'E' ->
      let name = get_str c in
      let fetch = get_u32 c in
      let params =
        match get_u8 c with
        | 0 -> None
        | 1 -> Some (decode_values c)
        | f -> malformed "bad params flag %d" f
      in
      Execute { name; params; fetch }
    | 'F' -> Fetch (get_u32 c)
    | 'C' -> Close_stmt (get_str c)
    | 'X' -> Terminate
    | t -> malformed "unknown client frame type %C" t
  in
  get_done c;
  msg

let decode_client typ payload = decode_client_at typ (cursor payload)

let encode_server_into b msg =
  let typ =
    match msg with
    | Ready -> 'Z'
    | Parse_ok n ->
      put_u16 b n;
      'p'
    | Bind_ok -> 'b'
    | Row_desc cols ->
      put_u16 b (List.length cols);
      List.iter (put_str b) cols;
      'D'
    | Row_batch rows ->
      put_u16 b (List.length rows);
      List.iter
        (fun row ->
          put_u16 b (Array.length row);
          Array.iter (put_value b) row)
        rows;
      'W'
    | Complete tag ->
      put_str b tag;
      'T'
    | Suspended -> 's'
    | Err msg ->
      put_str b msg;
      'e'
  in
  typ

let encode_server msg =
  let b = Buffer.create 64 in
  let typ = encode_server_into b msg in
  (typ, Buffer.contents b)

let decode_server_at typ c =
  let msg =
    match typ with
    | 'Z' -> Ready
    | 'p' -> Parse_ok (get_u16 c)
    | 'b' -> Bind_ok
    | 'D' ->
      let n = get_u16 c in
      Row_desc (List.init n (fun _ -> get_str c))
    | 'W' ->
      let n = get_u16 c in
      Row_batch
        (List.init n (fun _ ->
             let arity = get_u16 c in
             Array.init arity (fun _ -> get_value c)))
    | 'T' -> Complete (get_str c)
    | 's' -> Suspended
    | 'e' -> Err (get_str c)
    | t -> malformed "unknown server frame type %C" t
  in
  get_done c;
  msg

let decode_server typ payload = decode_server_at typ (cursor payload)

(* --- buffered frame I/O over a file descriptor ---------------------------- *)

type io = {
  fd : Unix.file_descr;
  mutable rbuf : Bytes.t;
  mutable rstart : int;  (* first unconsumed byte *)
  mutable rlen : int;    (* unconsumed byte count *)
  wbuf : Buffer.t;
  scratch : Buffer.t;
      (* reused payload staging for [send]/[send_client]: the frame length
         must precede bytes we only know after encoding, and a per-frame
         Buffer + contents copy is measurable on the hot path *)
}

let io_of_fd fd =
  { fd; rbuf = Bytes.create 65536; rstart = 0; rlen = 0;
    wbuf = Buffer.create 65536; scratch = Buffer.create 256 }

let fd io = io.fd

(* write(2) is not all-or-nothing: a filled socket buffer accepts a prefix
   and returns short, so every send must loop on the remainder. A peer that
   vanished mid-reply surfaces here as EPIPE (or ECONNRESET once its kernel
   discards the connection) — normalized to [Disconnected] so callers treat
   it exactly like an orderly EOF on the read side, not as an I/O fault. *)
let rec write_all fd s off len =
  if len > 0 then begin
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len
    | exception
        Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.ESHUTDOWN), _, _)
      -> raise Disconnected
  end

let flush io =
  if Buffer.length io.wbuf > 0 then begin
    let s = Buffer.contents io.wbuf in
    Buffer.clear io.wbuf;
    write_all io.fd s 0 (String.length s)
  end

let send io msg =
  Buffer.clear io.scratch;
  let typ = encode_server_into io.scratch msg in
  put_u32 io.wbuf (Buffer.length io.scratch + 1);
  Buffer.add_char io.wbuf typ;
  Buffer.add_buffer io.wbuf io.scratch

let send_client io msg =
  Buffer.clear io.scratch;
  let typ = encode_client_into io.scratch msg in
  put_u32 io.wbuf (Buffer.length io.scratch + 1);
  Buffer.add_char io.wbuf typ;
  Buffer.add_buffer io.wbuf io.scratch

(* Write raw bytes as-is — the malformed-stream tests forge bad frames. *)
let send_raw io s = Buffer.add_string io.wbuf s

let byte io i = Char.code (Bytes.get io.rbuf (io.rstart + i))

let frame_len io =
  (byte io 0 lsl 24) lor (byte io 1 lsl 16) lor (byte io 2 lsl 8) lor byte io 3

(* Decode one complete buffered frame in place, if any: the cursor ranges
   over the receive buffer itself, so the payload is never copied out (the
   decoded message copies only what it retains). The buffered bytes are not
   touched again until the decode has completed. *)
let take_frame io decode =
  if io.rlen < 4 then None
  else begin
    let len = frame_len io in
    if len < 1 || len > max_frame then malformed "bad frame length %d" len;
    if io.rlen < 4 + len then None
    else begin
      let typ = Bytes.get io.rbuf (io.rstart + 4) in
      let c =
        { c_buf = Bytes.unsafe_to_string io.rbuf;
          c_pos = io.rstart + 5;
          c_end = io.rstart + 4 + len }
      in
      io.rstart <- io.rstart + 4 + len;
      io.rlen <- io.rlen - 4 - len;
      Some (decode typ c)
    end
  end

(* Room check before a blocking read: slide pending bytes to the front and
   grow the buffer when the in-flight frame is larger than it. *)
let make_room io =
  if io.rstart > 0 then begin
    Bytes.blit io.rbuf io.rstart io.rbuf 0 io.rlen;
    io.rstart <- 0
  end;
  let wanted =
    if io.rlen >= 4 then min max_frame (frame_len io) + 4 else Bytes.length io.rbuf
  in
  if wanted > Bytes.length io.rbuf then begin
    let nb = Bytes.create wanted in
    Bytes.blit io.rbuf 0 nb 0 io.rlen;
    io.rbuf <- nb
  end

let rec refill io =
  make_room io;
  let off = io.rstart + io.rlen in
  match Unix.read io.fd io.rbuf off (Bytes.length io.rbuf - off) with
  | 0 -> false
  | n ->
    io.rlen <- io.rlen + n;
    true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill io
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
    (* an abortive close reads the same as an orderly one *)
    false

(* True when a request is already buffered (or the stream is detectably
   corrupt): the server keeps answering without flushing while this holds,
   giving pipelined batches one write(2) per drain. Must not consume. *)
let input_pending io =
  io.rlen >= 4
  &&
  let len = frame_len io in
  len < 1 || len > max_frame || io.rlen >= 4 + len

let rec recv_with : 'a. io -> (char -> cursor -> 'a) -> 'a option =
 fun io decode ->
  match take_frame io decode with
  | Some _ as m -> m
  | None ->
    flush io;
    if refill io then recv_with io decode else None

let recv_client io = recv_with io decode_client_at
let recv_server io = recv_with io decode_server_at
