(* Protocol client: used by bin/systemr_cli --connect, the server bench and
   the protocol tests. The primitives are deliberately split into
   send / flush / read_reply so a caller can pipeline: write a batch of
   requests, flush once, then read the batch of replies — the server answers
   every request with a frame sequence ending in Ready, so replies stay in
   lockstep with requests. *)

exception Disconnected

type t = { io : Protocol.io }

type reply = {
  columns : string list;
  rows : Rel.Tuple.t list;
  tag : string;  (* command tag; "" when the reply carries none *)
  param_count : int option;  (* from Parse_ok *)
  suspended : bool;
  error : string option;
}

let empty_reply =
  { columns = []; rows = []; tag = ""; param_count = None; suspended = false;
    error = None }

let connect addr =
  let fd =
    match addr with
    | Server.Unix_sock path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> Unix.close fd; raise e);
      fd
    | Server.Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (ip, port))
       with e -> Unix.close fd; raise e);
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      fd
  in
  let t = { io = Protocol.io_of_fd fd } in
  Protocol.send_client t.io (Protocol.Startup Protocol.version);
  Protocol.flush t.io;
  (match Protocol.recv_server t.io with
   | Some Protocol.Ready -> ()
   | Some (Protocol.Err e) ->
     Unix.close fd;
     failwith ("server refused connection: " ^ e)
   | Some _ | None ->
     Unix.close fd;
     failwith "bad server greeting");
  t

let io t = t.io
let send t msg = Protocol.send_client t.io msg
let flush t = Protocol.flush t.io

(* Accumulate one request's reply: frames up to and including Ready. *)
let read_reply t =
  let rec go acc batches =
    match Protocol.recv_server t.io with
    | None -> raise Disconnected
    | Some Protocol.Ready ->
      (* single Row_batch is the overwhelmingly common shape *)
      (match batches with
       | [] -> acc
       | [ rows ] -> { acc with rows }
       | _ -> { acc with rows = List.concat (List.rev batches) })
    | Some (Protocol.Row_desc columns) -> go { acc with columns } batches
    | Some (Protocol.Row_batch b) -> go acc (b :: batches)
    | Some (Protocol.Complete tag) -> go { acc with tag } batches
    | Some Protocol.Suspended -> go { acc with suspended = true } batches
    | Some (Protocol.Parse_ok n) -> go { acc with param_count = Some n } batches
    | Some Protocol.Bind_ok -> go acc batches
    | Some (Protocol.Err e) -> go { acc with error = Some e } batches
  in
  go empty_reply []

let roundtrip t msg =
  send t msg;
  flush t;
  read_reply t

let simple t sql = roundtrip t (Protocol.Simple sql)
let parse t ~name sql = roundtrip t (Protocol.Parse { name; sql })
let bind t ~name params = roundtrip t (Protocol.Bind { name; params })
let execute t ?(fetch = 0) ?params name =
  roundtrip t (Protocol.Execute { name; params; fetch })
let fetch t n = roundtrip t (Protocol.Fetch n)
let close_stmt t name = roundtrip t (Protocol.Close_stmt name)

(* Raise on statement error: the tests' happy paths read better. *)
let ok r = match r.error with Some e -> failwith e | None -> r

let close t =
  (try
     Protocol.send_client t.io Protocol.Terminate;
     Protocol.flush t.io
   with _ -> ());
  try Unix.close (Protocol.fd t.io) with Unix.Unix_error _ -> ()

(* Drop the socket without Terminate — the mid-transaction-disconnect tests
   simulate a crashed client. *)
let abandon t =
  try Unix.close (Protocol.fd t.io) with Unix.Unix_error _ -> ()
