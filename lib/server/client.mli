(** Protocol client (used by [systemr_cli --connect], the server bench and
    the protocol tests).

    The primitives split into {!send} / {!flush} / {!read_reply} so callers
    can pipeline: write a batch of requests, flush once, read the batch of
    replies. Every request is answered by a frame sequence ending in Ready,
    so replies stay in lockstep with requests. *)

exception Disconnected
(** Server closed the connection mid-reply. *)

type t

type reply = {
  columns : string list;
  rows : Rel.Tuple.t list;
  tag : string;  (** command tag; [""] when the reply carries none *)
  param_count : int option;  (** from Parse_ok *)
  suspended : bool;  (** portal not exhausted; {!fetch} continues it *)
  error : string option;
}

val connect : Server.addr -> t
(** Dial, perform the Startup handshake. @raise Failure when refused. *)

val close : t -> unit
(** Orderly: Terminate, flush, close. *)

val abandon : t -> unit
(** Drop the socket without Terminate — simulates a crashed client; the
    server must roll back and release locks. *)

(** {2 Pipelined primitives} *)

val send : t -> Protocol.client_msg -> unit
val flush : t -> unit
val read_reply : t -> reply
val io : t -> Protocol.io
(** Raw access for tests that forge malformed frames. *)

(** {2 Synchronous conveniences} *)

val simple : t -> string -> reply
val parse : t -> name:string -> string -> reply
val bind : t -> name:string -> Rel.Value.t list -> reply
val execute : t -> ?fetch:int -> ?params:Rel.Value.t list -> string -> reply
(** [?params] binds values inline in the Execute frame — one message per
    call, no separate {!bind} round. Without it, the last {!bind} applies.
    Execute replies carry no row description (it is fixed at Parse time). *)

val fetch : t -> int -> reply
val close_stmt : t -> string -> reply

val ok : reply -> reply
(** @raise Failure when the reply carries a statement error. *)
