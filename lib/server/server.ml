(* The wire-protocol server: an accept loop on its own domain, connection
   handlers on the shared Rss.Domain_pool, one Session per connection over
   one shared Engine.

   Starting the server flips the engine into latched (shared) mode for the
   listener's lifetime: mutating statements hold the engine latch
   exclusively, read-only statements hold it shared and run concurrently
   against their MVCC snapshots (no S locks — readers never block on
   writers), and blocked 2PL lock requests wait on the engine condvar. A
   handler that dies mid-transaction — client disconnect (orderly EOF or
   EPIPE on a pending reply), protocol violation — closes its session,
   which aborts the transaction and releases its locks, so a vanished
   client can never strand a lock.

   Connection handlers occupy their pool worker for the connection's
   lifetime, which is exactly why server sessions are serial_only: a worker
   must never submit-and-join exchange subtasks (Domain_pool's
   deadlock-freedom invariant). Keep the concurrent-connection count below
   the pool cap if the same process also runs parallel plans from an
   embedded session. *)

type addr =
  | Unix_sock of string
  | Tcp of string * int

(* "/path/to.sock", "host:port" or ":port" (loopback). *)
let addr_of_string s =
  match String.rindex_opt s ':' with
  | Some i when not (String.contains s '/') ->
    let host = if i = 0 then "127.0.0.1" else String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
     | Some p when p >= 0 && p < 65536 -> Tcp (host, p)
     | _ -> invalid_arg (Printf.sprintf "bad port in address %S" s))
  | _ -> Unix_sock s

let addr_to_string = function
  | Unix_sock p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

type t = {
  eng : Engine.t;
  listen_fd : Unix.file_descr;
  addr : addr;  (* resolved: TCP port 0 replaced by the bound port *)
  m : Mutex.t;
  mutable running : bool;
  mutable conns : Unix.file_descr list;
  mutable jobs : unit Rss.Domain_pool.job list;
  mutable accept_dom : unit Domain.t option;
}

let batch_rows = 256
(* rows per Row_batch frame: bounds frame size and per-frame overhead *)

(* A dying client must kill the connection, not the server. *)
let ignore_sigpipe =
  lazy (if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

(* --- per-connection state ------------------------------------------------- *)

type conn = {
  io : Protocol.io;
  sess : Session.t;
  stmts : (string, Session.prepared) Hashtbl.t;
  binds : (string, Rel.Value.t list) Hashtbl.t;
      (* Bind overwrites, Execute consumes-or-defaults-to-[]: rebinding
         without re-parsing is the protocol's steady state *)
  mutable portal : Rel.Tuple.t list option;
      (* rows remaining from an Execute with fetch > 0 *)
}

(* [take_drop n l] = (first n elements, rest); tail-recursive. *)
let take_drop n l =
  let rec go acc n l =
    if n = 0 then (List.rev acc, l)
    else match l with [] -> (List.rev acc, []) | x :: tl -> go (x :: acc) (n - 1) tl
  in
  go [] n l

(* Command tags for small row counts are preformatted: the hot point-select
   path sends one per reply, and sprintf there is measurable. *)
let select_tags = Array.init 64 (fun n -> "SELECT " ^ string_of_int n)

let select_tag n =
  if n < Array.length select_tags then select_tags.(n)
  else "SELECT " ^ string_of_int n

(* [describe = false] on the prepared-execute path: the row shape is fixed
   at Parse time, so re-sending it per call is pure overhead (Postgres
   likewise describes statements, not executions). *)
let send_rows conn (out : Executor.output) ~describe ~fetch =
  if describe then Protocol.send conn.io (Protocol.Row_desc out.Executor.columns);
  let total = List.length out.Executor.rows in
  let rec batches rows =
    match rows with
    | [] -> ()
    | _ ->
      let batch, rest = take_drop batch_rows rows in
      Protocol.send conn.io (Protocol.Row_batch batch);
      batches rest
  in
  if fetch <= 0 || total <= fetch then begin
    batches out.Executor.rows;
    conn.portal <- None;
    Protocol.send conn.io (Protocol.Complete (select_tag total))
  end
  else begin
    let first, rest = take_drop fetch out.Executor.rows in
    batches first;
    conn.portal <- Some rest;
    Protocol.send conn.io Protocol.Suspended
  end

let dispatch conn msg =
  match msg with
  | Protocol.Startup _ -> Protocol.send conn.io (Protocol.Err "already started")
  | Protocol.Simple sql ->
    (match Session.exec conn.sess sql with
     | Session.Rows out -> send_rows conn out ~describe:true ~fetch:0
     | Session.Text s | Session.Done s ->
       Protocol.send conn.io (Protocol.Complete s))
  | Protocol.Parse { name; sql } ->
    let p = Session.prepare conn.sess sql in
    Hashtbl.replace conn.stmts name p;
    Protocol.send conn.io (Protocol.Parse_ok (Session.prepared_param_count p))
  | Protocol.Bind { name; params } ->
    if not (Hashtbl.mem conn.stmts name) then
      Protocol.send conn.io
        (Protocol.Err (Printf.sprintf "no prepared statement %S" name))
    else begin
      Hashtbl.replace conn.binds name params;
      Protocol.send conn.io Protocol.Bind_ok
    end
  | Protocol.Execute { name; params; fetch } ->
    (match Hashtbl.find_opt conn.stmts name with
     | None ->
       Protocol.send conn.io
         (Protocol.Err (Printf.sprintf "no prepared statement %S" name))
     | Some p ->
       let params =
         match params with
         | Some vs -> vs
         | None -> Option.value (Hashtbl.find_opt conn.binds name) ~default:[]
       in
       let out = Session.execute_prepared conn.sess p params in
       send_rows conn out ~describe:false ~fetch)
  | Protocol.Fetch n ->
    (match conn.portal with
     | None -> Protocol.send conn.io (Protocol.Err "no open portal")
     | Some rows ->
       let n = max 1 n in
       let take, rest = take_drop n rows in
       Protocol.send conn.io (Protocol.Row_batch take);
       if rest = [] then begin
         conn.portal <- None;
         Protocol.send conn.io
           (Protocol.Complete (Printf.sprintf "FETCH %d" (List.length take)))
       end
       else begin
         conn.portal <- Some rest;
         Protocol.send conn.io Protocol.Suspended
       end)
  | Protocol.Close_stmt name ->
    Hashtbl.remove conn.stmts name;
    Hashtbl.remove conn.binds name;
    Protocol.send conn.io (Protocol.Complete "CLOSE")
  | Protocol.Terminate -> raise Exit

(* One connection, start to finish. Every non-Terminate request is answered
   by a sequence ending in Ready; statement errors keep the connection,
   protocol errors drop it. The session is closed on EVERY exit path — that
   is the mid-transaction-disconnect guarantee. *)
let handle t fd =
  let io = Protocol.io_of_fd fd in
  let sess =
    Session.create ~serial_only:true ~counters:(Rss.Counters.create ()) t.eng
  in
  let conn = { io; sess; stmts = Hashtbl.create 8; binds = Hashtbl.create 8;
               portal = None } in
  (try
     (match Protocol.recv_client io with
      | Some (Protocol.Startup v) when v = Protocol.version ->
        Protocol.send io Protocol.Ready
      | Some (Protocol.Startup v) ->
        Protocol.send io
          (Protocol.Err (Printf.sprintf "unsupported protocol version %d" v));
        raise Exit
      | Some _ ->
        Protocol.send io (Protocol.Err "expected Startup");
        raise Exit
      | None -> raise Exit);
     let rec loop () =
       match Protocol.recv_client io with
       | None -> ()
       | Some msg ->
         (try dispatch conn msg
          with Session.Error e ->
            (* statement failed: the portal (if any) is gone, the session
               and its transaction state are exactly as Session left them *)
            conn.portal <- None;
            Protocol.send io (Protocol.Err e));
         Protocol.send io Protocol.Ready;
         loop ()
     in
     loop ()
   with
   | Exit -> ()
   | Protocol.Disconnected ->
     (* the client vanished while we owed it bytes (EPIPE mid-flush):
        same clean path as an orderly EOF — fall through to close the
        session, aborting its transaction and releasing its locks *)
     ()
   | Protocol.Malformed e ->
     (try Protocol.send io (Protocol.Err ("protocol error: " ^ e)) with _ -> ())
   | _ -> ());
  (try Protocol.flush io with _ -> ());
  Session.close sess;
  Mutex.lock t.m;
  t.conns <- List.filter (fun c -> c != fd) t.conns;
  Mutex.unlock t.m;
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* --- listener ------------------------------------------------------------- *)

let rec accept_loop t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | fd, _ ->
    Mutex.lock t.m;
    if not t.running then begin
      Mutex.unlock t.m;
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
    else begin
      t.conns <- fd :: t.conns;
      let job = Rss.Domain_pool.submit (fun () -> handle t fd) in
      t.jobs <- job :: t.jobs;
      Mutex.unlock t.m;
      accept_loop t
    end
  | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
    accept_loop t
  | exception Unix.Unix_error _ ->
    (* listener closed by stop (or genuinely broken): either way, done *)
    ()

let start ?(workers = 4) ~engine addr =
  Lazy.force ignore_sigpipe;
  Rss.Domain_pool.ensure workers;
  let fd, resolved =
    match addr with
    | Unix_sock path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      (fd, addr)
    | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ ->
          (try (Unix.gethostbyname host).Unix.h_addr_list.(0)
           with Not_found -> invalid_arg ("unknown host " ^ host))
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, Tcp (host, port))
  in
  Unix.listen fd 64;
  Engine.set_latched engine true;
  let t =
    { eng = engine; listen_fd = fd; addr = resolved; m = Mutex.create ();
      running = true; conns = []; jobs = []; accept_dom = None }
  in
  t.accept_dom <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let addr t = t.addr
let engine t = t.eng

(* Closing a listening fd does not wake a thread blocked in accept(2) on
   Linux; dial ourselves instead. The accept loop sees running = false,
   closes the wake connection and exits. *)
let wake_listener t =
  try
    let fd =
      match t.addr with
      | Unix_sock path ->
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      | Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (ip, port));
        fd
    in
    Unix.close fd
  with Unix.Unix_error _ | Not_found -> ()

let stop t =
  Mutex.lock t.m;
  let was_running = t.running in
  t.running <- false;
  let conns = t.conns in
  Mutex.unlock t.m;
  if was_running then begin
    wake_listener t;
    (match t.accept_dom with Some d -> Domain.join d | None -> ());
    (* safe to close only after the accept loop is gone: closing first
       would free the fd number for reuse while accept(2) still holds it *)
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* wake handlers blocked in read(2); they close their own fd *)
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    Mutex.lock t.m;
    let jobs = t.jobs in
    t.jobs <- [];
    Mutex.unlock t.m;
    List.iter (fun j -> try Rss.Domain_pool.join j with _ -> ()) jobs;
    (match t.addr with
     | Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
     | Tcp _ -> ());
    Engine.set_latched t.eng false
  end
