open Semant

(* Factors applicable to a scan of [tab] given [outer] relations already
   joined: every referenced table is available, [tab] is among them, and no
   subquery is involved. *)
let applicable_factors factors ~tab ~outer =
  List.filter
    (fun (f : Normalize.factor) ->
      (not f.has_subquery)
      && List.mem tab f.tables
      && List.for_all (fun t -> t = tab || List.mem t outer) f.tables)
    factors

(* A factor counts as sargable for this scan when it can be evaluated inside
   the RSS at opening time: either a local SARG, or an equi-join predicate
   whose other side is an outer column (its value is a constant for the
   duration of one opening). *)
let dynamic_eq ~tab ~outer (f : Normalize.factor) =
  match f.equi_join with
  | Some (a, b) when a.tab = tab && List.mem b.tab outer -> Some (a.col, b)
  | Some (a, b) when b.tab = tab && List.mem a.tab outer -> Some (b.col, a)
  | Some _ | None -> None

let is_sargable ~tab ~outer (f : Normalize.factor) =
  f.sargable_at_open || dynamic_eq ~tab ~outer f <> None

let rsicard ctx block ~factors ~tab ~outer =
  let rel = Ctx.table_rel block tab in
  let stats = Ctx.rel_stats ctx rel in
  let app = applicable_factors factors ~tab ~outer in
  let sargable = List.filter (is_sargable ~tab ~outer) app in
  stats.ncard *. Selectivity.factors_product ctx block sargable

(* --- index matching --------------------------------------------------- *)

type eq_match = {
  eq_factor : Normalize.factor;
  eq_value : Plan.bound_value;
}

(* Equal-predicate factor on column [col] of [tab]: a local "col = const" or
   a dynamically-bound equi-join. *)
let find_eq ~tab ~outer ~col app =
  List.find_map
    (fun (f : Normalize.factor) ->
      match f.simple, f.pred with
      | Some (c, Rss.Sarg.Eq, v), _ when c.tab = tab && c.col = col ->
        Some { eq_factor = f; eq_value = Plan.Bv_const v }
      | _, Semant.P_cmp (Semant.E_col c, Ast.Eq, Semant.E_param i)
      | _, Semant.P_cmp (Semant.E_param i, Ast.Eq, Semant.E_col c)
        when c.Semant.tab = tab && c.Semant.col = col ->
        Some { eq_factor = f; eq_value = Plan.Bv_param i }
      | _ ->
        (match dynamic_eq ~tab ~outer f with
         | Some (jcol, outer_ref) when jcol = col ->
           Some { eq_factor = f; eq_value = Plan.Bv_outer outer_ref }
         | _ -> None))
    app

type range_match = {
  r_factor : Normalize.factor;
  r_value : Plan.bound_value;
  r_inclusive : bool;
}

let find_range ~tab ~col ~dir app =
  List.find_map
    (fun (f : Normalize.factor) ->
      match f.between, dir with
      | Some (c, lo, _), `Lo when c.tab = tab && c.col = col ->
        Some { r_factor = f; r_value = Plan.Bv_const lo; r_inclusive = true }
      | Some (c, _, hi), `Hi when c.tab = tab && c.col = col ->
        Some { r_factor = f; r_value = Plan.Bv_const hi; r_inclusive = true }
      | _ ->
        (match f.simple, dir with
         | Some (c, Rss.Sarg.Gt, v), `Lo when c.tab = tab && c.col = col ->
           Some { r_factor = f; r_value = Plan.Bv_const v; r_inclusive = false }
         | Some (c, Rss.Sarg.Ge, v), `Lo when c.tab = tab && c.col = col ->
           Some { r_factor = f; r_value = Plan.Bv_const v; r_inclusive = true }
         | Some (c, Rss.Sarg.Lt, v), `Hi when c.tab = tab && c.col = col ->
           Some { r_factor = f; r_value = Plan.Bv_const v; r_inclusive = false }
         | Some (c, Rss.Sarg.Le, v), `Hi when c.tab = tab && c.col = col ->
           Some { r_factor = f; r_value = Plan.Bv_const v; r_inclusive = true }
         | _ ->
           (* ? placeholders as range bounds *)
           (match f.pred, dir with
            | Semant.P_cmp (Semant.E_col c, (Ast.Gt | Ast.Ge as op), Semant.E_param i), `Lo
              when c.Semant.tab = tab && c.Semant.col = col ->
              Some { r_factor = f; r_value = Plan.Bv_param i;
                     r_inclusive = (op = Ast.Ge) }
            | Semant.P_cmp (Semant.E_col c, (Ast.Lt | Ast.Le as op), Semant.E_param i), `Hi
              when c.Semant.tab = tab && c.Semant.col = col ->
              Some { r_factor = f; r_value = Plan.Bv_param i;
                     r_inclusive = (op = Ast.Le) }
            (* BETWEEN with a placeholder bound (the all-const form is the
               [f.between] case above); the const side of a mixed BETWEEN
               still provides its bound *)
            | Semant.P_between (Semant.E_col c, Semant.E_param i, _), `Lo
              when c.Semant.tab = tab && c.Semant.col = col ->
              Some { r_factor = f; r_value = Plan.Bv_param i; r_inclusive = true }
            | Semant.P_between (Semant.E_col c, Semant.E_const v, _), `Lo
              when c.Semant.tab = tab && c.Semant.col = col ->
              Some { r_factor = f; r_value = Plan.Bv_const v; r_inclusive = true }
            | Semant.P_between (Semant.E_col c, _, Semant.E_param i), `Hi
              when c.Semant.tab = tab && c.Semant.col = col ->
              Some { r_factor = f; r_value = Plan.Bv_param i; r_inclusive = true }
            | Semant.P_between (Semant.E_col c, _, Semant.E_const v), `Hi
              when c.Semant.tab = tab && c.Semant.col = col ->
              Some { r_factor = f; r_value = Plan.Bv_const v; r_inclusive = true }
            | _ -> None)))
    app

type index_match = {
  matched : Normalize.factor list;  (** factors satisfied by the key bounds *)
  lo : Plan.key_bound option;
  hi : Plan.key_bound option;
  full_key_eq : bool;               (** equal factors cover every key column *)
}

(* Match the longest prefix of the index key with equal factors, then at
   most one range pair on the next key column ("initial substring" rule). *)
let match_index ~tab ~outer app (idx : Catalog.index) =
  let rec eat_prefix cols acc_vals acc_factors =
    match cols with
    | [] -> (List.rev acc_vals, List.rev acc_factors, None)
    | col :: rest ->
      (match find_eq ~tab ~outer ~col app with
       | Some { eq_factor; eq_value } ->
         eat_prefix rest (eq_value :: acc_vals) (eq_factor :: acc_factors)
       | None -> (List.rev acc_vals, List.rev acc_factors, Some col))
  in
  let eq_vals, eq_factors, next_col = eat_prefix idx.key_cols [] [] in
  let full_key_eq = next_col = None && eq_vals <> [] in
  let lo_r, hi_r =
    match next_col with
    | None -> (None, None)
    | Some col -> (find_range ~tab ~col ~dir:`Lo app, find_range ~tab ~col ~dir:`Hi app)
  in
  let bound r =
    Option.map
      (fun { r_value; r_inclusive; _ } ->
        { Plan.values = eq_vals @ [ r_value ]; inclusive = r_inclusive })
      r
  in
  let eq_bound =
    if eq_vals = [] then None else Some { Plan.values = eq_vals; inclusive = true }
  in
  let lo = match bound lo_r with Some b -> Some b | None -> eq_bound in
  let hi = match bound hi_r with Some b -> Some b | None -> eq_bound in
  let range_factors =
    match lo_r, hi_r with
    | Some a, Some b when a.r_factor == b.r_factor -> [ a.r_factor ]
        (* one BETWEEN factor supplied both bounds: count its F once *)
    | _ -> List.filter_map (Option.map (fun r -> r.r_factor)) [ lo_r; hi_r ]
  in
  let matched = eq_factors @ range_factors in
  { matched; lo; hi; full_key_eq }

(* --- path construction ------------------------------------------------ *)

let paths ctx block ~factors ~tab ~outer =
  let rel = Ctx.table_rel block tab in
  let stats = Ctx.rel_stats ctx rel in
  let app = applicable_factors factors ~tab ~outer in
  let sargable, non_sargable = List.partition (is_sargable ~tab ~outer) app in
  let rsicard_v = stats.ncard *. Selectivity.factors_product ctx block sargable in
  let out_card = stats.ncard *. Selectivity.factors_product ctx block app in
  let sarg_preds = List.map (fun (f : Normalize.factor) -> f.pred) sargable in
  let residual_preds = List.map (fun (f : Normalize.factor) -> f.pred) non_sargable in
  let mk node cost order =
    { Plan.node; tables = [ tab ]; order; cost; out_card }
  in
  let segment =
    let cost =
      Cost_model.single_relation ctx ~rel:stats ~idx:None
        ~situation:Cost_model.Segment_scan_cost ~rsicard:rsicard_v
    in
    mk
      (Plan.Scan { tab; access = Plan.Seg_scan; sargs = sarg_preds; residual = residual_preds })
      cost []
  in
  (* Descending variants are generated only when the block asks for some
     descending order; they cost the same, produce the reversed key order,
     and never serve as merge-join inners (those need ascending order). *)
  let want_desc =
    List.exists (fun (_, d) -> d = Ast.Desc) block.Semant.order_by
  in
  let index_paths =
    List.concat_map
      (fun (idx : Catalog.index) ->
        let istats = Ctx.idx_stats ctx idx in
        let m = match_index ~tab ~outer app idx in
        let matching = m.matched <> [] in
        let situation =
          if m.full_key_eq && istats.unique then Cost_model.Unique_index_eq
          else if matching then begin
            let f =
              List.fold_left
                (fun acc (fct : Normalize.factor) ->
                  acc *. Selectivity.factor ctx block fct.pred)
                1. m.matched
            in
            if istats.clustered then Cost_model.Clustered_matching f
            else Cost_model.Nonclustered_matching f
          end
          else if istats.clustered then Cost_model.Clustered_nonmatching
          else Cost_model.Nonclustered_nonmatching
        in
        let cost =
          Cost_model.single_relation ctx ~rel:stats ~idx:(Some istats)
            ~situation ~rsicard:rsicard_v
        in
        let path dir =
          let order =
            List.map (fun col -> ({ Semant.tab; col }, dir)) idx.key_cols
          in
          mk
            (Plan.Scan
               { tab;
                 access =
                   Plan.Idx_scan { index = idx; lo = m.lo; hi = m.hi; dir; matching };
                 sargs = sarg_preds;
                 residual = residual_preds })
            cost order
        in
        if want_desc then [ path Ast.Asc; path Ast.Desc ] else [ path Ast.Asc ])
      (Ctx.indexes_of ctx rel)
  in
  segment :: index_paths
