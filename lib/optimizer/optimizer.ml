type result = {
  block : Semant.block;
  plan : Plan.t;
  search : Join_enum.stats;
  subresults : (Semant.block * result) list;
}

let rec blocks_of_pred (p : Semant.spred) acc =
  match p with
  | Semant.P_in_sub { block; _ } -> block :: acc
  | Semant.P_cmp_sub (_, _, block) -> block :: acc
  | Semant.P_and (a, b) | Semant.P_or (a, b) ->
    blocks_of_pred a (blocks_of_pred b acc)
  | Semant.P_not a -> blocks_of_pred a acc
  | Semant.P_cmp _ | Semant.P_between _ | Semant.P_in_list _ -> acc

(* Shape eligibility for the parallelization post-pass: a left-deep
   nested-loop chain over scan leaves whose leftmost leaf is a segment scan
   or an ascending index scan with context-free bounds (constants and
   parameters — an outer-reference bound cannot be resolved at partition
   time). Merge joins and sorts below the root synchronize two streams or
   reorder tuples, so slicing their leftmost input does not slice their
   output; they stay serial. *)
let rec parallelizable (p : Plan.t) =
  match p.Plan.node with
  | Plan.Scan { access = Plan.Seg_scan; _ } -> true
  | Plan.Scan { access = Plan.Idx_scan { dir = Ast.Asc; lo; hi; _ }; _ } ->
    let bound_free = function
      | None -> true
      | Some (b : Plan.key_bound) ->
        List.for_all
          (function
            | Plan.Bv_outer _ -> false
            | Plan.Bv_const _ | Plan.Bv_param _ -> true)
          b.Plan.values
    in
    bound_free lo && bound_free hi
  | Plan.Scan _ -> false
  | Plan.Nl_join { outer; inner } ->
    parallelizable outer
    && (match inner.Plan.node with Plan.Scan _ -> true | _ -> false)
  | Plan.Merge_join _ | Plan.Sort _ | Plan.Filter _ | Plan.Exchange _ -> false

let exchange_node ~dop ~cost (input : Plan.t) =
  { Plan.node = Plan.Exchange { input; dop };
    tables = input.Plan.tables;
    order = input.Plan.order;  (* partition-order gather preserves order *)
    cost;
    out_card = input.Plan.out_card }

(* Wrap the plan (or, for a root sort, the sort's input — the executor fans
   out run formation under it) in an exchange when the DOP-adjusted cost
   strictly beats serial. [force_parallel] skips the cost test but not the
   shape test. *)
let maybe_parallelize (ctx : Ctx.t) (plan : Plan.t) =
  if ctx.Ctx.max_dop <= 1 then plan
  else
    let wrap (p : Plan.t) =
      if not (parallelizable p) then None
      else if ctx.Ctx.force_parallel then
        let dop = ctx.Ctx.max_dop in
        Some (exchange_node ~dop ~cost:(Cost_model.parallel ~dop p.Plan.cost) p)
      else
        match
          Cost_model.choose_dop ~w:ctx.Ctx.w ~max_dop:ctx.Ctx.max_dop
            p.Plan.cost
        with
        | None -> None
        | Some (dop, pc) -> Some (exchange_node ~dop ~cost:pc p)
    in
    match plan.Plan.node with
    | Plan.Sort { input; key } ->
      (match wrap input with
       | None -> plan
       | Some ex ->
         (* the sort's own cost fields keep their serial estimate: the sort
            work is unchanged, only its input got cheaper (display-only) *)
         { plan with Plan.node = Plan.Sort { input = ex; key } })
    | _ -> (match wrap plan with None -> plan | Some ex -> ex)

let rec optimize ctx (block : Semant.block) =
  let factors = Normalize.factors_of_block block in
  let sub_factors, plain =
    List.partition (fun (f : Normalize.factor) -> f.has_subquery) factors
  in
  (* Boolean factors referencing no table of this block (constant predicates,
     pure outer-reference comparisons in correlated blocks) are evaluated in
     the top filter as well: no scan can absorb them. *)
  let normal, const_factors =
    List.partition (fun (f : Normalize.factor) -> f.tables <> []) plain
  in
  let subblocks =
    List.concat_map
      (fun (f : Normalize.factor) -> blocks_of_pred f.pred [])
      sub_factors
  in
  let subresults = List.map (fun b -> (b, optimize ctx b)) subblocks in
  let env = Interesting_order.build block normal in
  let plan, search = Join_enum.plan_block ctx block ~factors:normal ~env () in
  let filter_factors = sub_factors @ const_factors in
  (* Parallelize only self-contained blocks: no top filter (its predicates
     would run on the gather side anyway), no subquery plans (workers must
     never touch the subquery cache), not correlated (outer references make
     bounds context-dependent). *)
  let plan =
    if filter_factors = [] && subresults = [] && not block.Semant.correlated
    then maybe_parallelize ctx plan
    else plan
  in
  let plan =
    if filter_factors = [] then plan
    else begin
      (* Each nested block is evaluated once when uncorrelated; a correlated
         one is re-evaluated per candidate tuple (the executor caches by
         referenced value; the estimate here is the uncached worst case). *)
      let sub_eval_cost =
        List.fold_left
          (fun acc (b, (r : result)) ->
            let evals = if b.Semant.correlated then plan.Plan.out_card else 1. in
            Cost_model.add acc (Cost_model.scale evals r.plan.Plan.cost))
          Cost_model.zero subresults
      in
      let sel =
        List.fold_left
          (fun acc (f : Normalize.factor) ->
            acc *. Selectivity.factor ctx block f.pred)
          1. filter_factors
      in
      { Plan.node =
          Plan.Filter
            { input = plan;
              preds = List.map (fun (f : Normalize.factor) -> f.pred) filter_factors };
        tables = plan.Plan.tables;
        order = plan.Plan.order;  (* filtering preserves order *)
        cost = Cost_model.add plan.Plan.cost sub_eval_cost;
        out_card = plan.Plan.out_card *. sel }
    end
  in
  { block; plan; search; subresults }

let find_subresult r block =
  let rec go (r : result) =
    match List.find_opt (fun (b, _) -> b == block) r.subresults with
    | Some (_, sub) -> Some sub
    | None -> List.find_map (fun (_, sub) -> go sub) r.subresults
  in
  match go r with Some sub -> sub | None -> raise Not_found

let total_cost (ctx : Ctx.t) r = Cost_model.total ~w:ctx.Ctx.w r.plan.Plan.cost
