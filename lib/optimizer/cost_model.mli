(** The cost model: COST = PAGE FETCHES + W * (RSI CALLS).

    Costs are kept as their two components so W can be applied at comparison
    time; TABLE 2's single-relation formulas and section 5's join/sort
    formulas are implemented here. *)

type t = {
  pages : float;  (** predicted page fetches (I/O) *)
  rsi : float;    (** predicted RSI calls (CPU proxy) *)
}

val zero : t
val add : t -> t -> t
val scale : float -> t -> t
val total : w:float -> t -> float
val compare_total : w:float -> t -> t -> int

(** The six situations of TABLE 2. [f] is F(preds): the product of the
    selectivity factors of the boolean factors matching the index. *)
type situation =
  | Unique_index_eq
      (** unique index matching an equal predicate: 1 + 1 + W *)
  | Clustered_matching of float
      (** F(preds) * (NINDX + TCARD) + W * RSICARD *)
  | Nonclustered_matching of float
      (** F(preds) * (NINDX + NCARD) + W * RSICARD, or the TCARD form when
          the retrieved pages fit in the buffer *)
  | Clustered_nonmatching
      (** (NINDX + TCARD) + W * RSICARD *)
  | Nonclustered_nonmatching
      (** (NINDX + NCARD) + W * RSICARD, or the TCARD form when it fits *)
  | Segment_scan_cost
      (** TCARD / P + W * RSICARD *)

val distinct_pages : tuples:float -> pages:float -> float
(** Cardenas' approximation of Yao's formula: expected distinct pages
    containing [tuples] uniform draws over [pages] pages. Used by the
    [refined_pages] extension for non-clustered matching scans. *)

val single_relation :
  Ctx.t ->
  rel:Ctx.rel_stats ->
  idx:Ctx.idx_stats option ->
  situation:situation ->
  rsicard:float ->
  t
(** Predicted cost of one access path. [idx] must be provided for the index
    situations. *)

val sort_cost :
  Ctx.t -> tuples:float -> tuples_per_page:float -> t
(** C-sort minus the input retrieval (charged by the feeding path): run
    writes plus a read+write of every page per merge pass, via
    {!Rss.Sort.passes}. *)

val temp_pages : tuples:float -> tuples_per_page:float -> float
(** TEMPPAGES for a materialized list. *)

val nested_loop_join : outer:t -> outer_card:float -> inner_per_open:t -> t
(** C-outer(path1) + N * C-inner(path2). *)

val merge_join_sorted_inner :
  Ctx.t -> outer:t -> inner_build:t -> temppages:float -> matches:float -> t
(** Merge against a sorted temporary list: the outer cost, the cost of
    building the sorted list, one fetch of each temp page during the merge
    (TEMPPAGES/N per opening, N openings), and W per matching tuple. *)

val merge_join_ordered_inner : outer:t -> inner_whole:t -> matches:float -> t
(** Merge where the inner path already produces join-column order: the inner
    is walked once in total; synchronization avoids rescans, and matches
    beyond the first visit of a tuple cost only the RSI call. *)

val parallel : dop:int -> t -> t
(** DOP-adjusted cost of running a plan as a [dop]-way exchange: RSI calls
    (CPU) divide across the workers plus a per-worker startup charge; page
    fetches do not divide — all I/O still flows through the one shared
    buffer pool. *)

val choose_dop : w:float -> max_dop:int -> t -> (int * t) option
(** Cheapest degree of parallelism for a plan of serial cost [c], trying
    powers of two up to [max_dop] (and [max_dop] itself). [None] unless the
    parallel total is {e strictly} below the serial total — ties, small
    inputs, and [w = 0] (pure I/O cost, which parallelism cannot reduce)
    stay serial. Smaller degrees win cost ties. *)

val pp : Format.formatter -> t -> unit
