(** Interesting tuple orders and their equivalence classes.

    A tuple order is interesting if it is one specified by the query block's
    GROUP BY or ORDER BY clauses; every equi-join column also defines an
    interesting order. Columns linked by equi-join predicates (E.DNO = D.DNO
    and D.DNO = F.DNO) belong to one order equivalence class, so only the
    best solution per class need be saved. *)

type order = (Semant.col_ref * Ast.order_dir) list

type env

val build : Semant.block -> Normalize.factor list -> env
(** Union columns over the block's equi-join factors. *)

val canon : env -> Semant.col_ref -> Semant.col_ref
(** Class representative. *)

val canonical_order : env -> order -> order

val equivalent : env -> order -> order -> bool

val satisfies : env -> produced:order -> required:order -> bool
(** Does a [produced] order begin with (a class-equivalent of) every column
    of [required], in sequence and direction? *)

val satisfies_grouping : env -> produced:order -> cols:Semant.col_ref list -> bool
(** Grouping needs equal group keys adjacent, which any permutation of the
    grouping columns (in either direction) provides: does [produced] begin
    with some permutation of [cols]? *)

val required_order : Semant.block -> order
(** The order the plan must deliver: the GROUP BY columns ascending when
    grouping (the executor aggregates group-ordered streams; a further
    ORDER BY is applied to the aggregated rows), else the ORDER BY. *)

val interesting_columns : env -> Semant.block -> Normalize.factor list -> Semant.col_ref list
(** Canonical representatives of every column that defines an interesting
    order: join columns plus ORDER BY / GROUP BY columns. *)

val truncate_interesting : env -> Semant.block -> Normalize.factor list -> order -> order
(** Canonicalize and cut an order at the first column that is not
    interesting; two plans whose truncations agree are interchangeable for
    all later decisions, so solution tables key on this. *)

type interner
(** Hash-consing table mapping distinct (already canonicalized/truncated)
    orders to dense int keys, so solution pruning hashes ints rather than
    column-ref lists. *)

val interner : unit -> interner

val intern : interner -> order -> int
(** Stable id for [order]; equal orders always yield the same id. *)

val pp_order : Format.formatter -> order -> unit
