(** Optimization context: catalog access, the W weighting factor, buffer
    size, and the ablation switches the benches exercise.

    Statistics fall back to the paper's "lack of statistics implies that the
    relation is small" defaults when a relation has never had
    UPDATE STATISTICS run. *)

type t = {
  catalog : Catalog.t;
  w : float;  (** weighting between page fetches and RSI calls (CPU) *)
  buffer_pages : int;
  use_heuristic : bool;
      (** join-order heuristic: defer Cartesian products (ablation A1) *)
  use_interesting_orders : bool;
      (** keep cheapest plan per order equivalence class (ablation A2);
          off = keep only the globally cheapest, sort at the end *)
  use_bnb : bool;
      (** branch-and-bound pruning: seed an upper bound with a greedy
          left-deep plan and never retain a partial plan whose total cost
          already exceeds it. Cost is monotone along plan extensions, so the
          chosen plan is identical with the switch on or off — only
          [plans_considered] shrinks. *)
  refined_pages : bool;
      (** extension (off by default, the paper's formulas apply): estimate
          the data pages a non-clustered matching scan touches with the
          Cardenas/Yao distinct-page formula instead of TABLE 2's
          TCARD-or-NCARD bracketing — the "more work on validation of the
          optimizer cost formulas" the paper's conclusion calls for *)
  max_dop : int;
      (** maximum degree of parallelism the parallelization post-pass may
          choose (SET PARALLELISM / SYSTEMR_DOMAINS); 1 = serial only *)
  force_parallel : bool;
      (** debug/fuzz switch: wrap every shape-eligible plan at [max_dop]
          regardless of cost, so parallel execution is exercised on inputs
          the cost model would correctly run serially *)
  use_histograms : bool;
      (** consult per-column equi-depth histograms (and bound parameter
          values) for selectivity; off = the paper's value-independent
          TABLE 1 constants, byte-identical to the seed behaviour
          (SET HISTOGRAMS OFF) *)
  use_feedback : bool;
      (** consult runtime cardinality-feedback corrections recorded on
          relations when estimating block output cardinality *)
  params : Rel.Value.t array;
      (** bound parameter values for [E_param] slots — the literals the
          plan-cache canonicalization extracted, "peeked" at optimization
          time for value-aware histogram estimates. Empty when optimizing
          a truly parameterized statement. *)
}

type rel_stats = {
  ncard : float;
  tcard : float;
  p : float;
}

type idx_stats = {
  icard : float;
  nindx : float;
  low : Rel.Value.t option;
  high : Rel.Value.t option;
  clustered : bool;
  unique : bool;  (** ICARD = NCARD: an equal predicate on the full key
                      selects at most one tuple *)
}

val default_w : float

val create :
  ?w:float ->
  ?buffer_pages:int ->
  ?use_heuristic:bool ->
  ?use_interesting_orders:bool ->
  ?use_bnb:bool ->
  ?refined_pages:bool ->
  ?max_dop:int ->
  ?force_parallel:bool ->
  ?use_histograms:bool ->
  ?use_feedback:bool ->
  ?params:Rel.Value.t array ->
  Catalog.t ->
  t

val rel_stats : t -> Catalog.relation -> rel_stats
val idx_stats : t -> Catalog.index -> idx_stats
val indexes_of : t -> Catalog.relation -> Catalog.index list

val table_rel : Semant.block -> int -> Catalog.relation
(** Relation at FROM position [tab]. *)

val column_stats : t -> Semant.block -> Semant.col_ref -> Histogram.t option
(** The column's equi-depth histogram, when UPDATE STATISTICS has collected
    one and histograms are enabled. *)

val param_value : t -> int -> Rel.Value.t option
(** The bound value of parameter slot [i], when known and histograms are
    enabled — [None] otherwise, so callers fall back to value-independent
    estimates. *)

val column_icard : t -> Semant.block -> Semant.col_ref -> float option
(** Distinct values in the column: the histogram's measured distinct count
    when available (any column, indexed or not), else the ICARD of some index
    whose leading key column is the referenced column (TABLE 1's "index on
    column"), when one with statistics exists. *)

val column_range : t -> Semant.block -> Semant.col_ref -> (float * float) option
(** (low, high) key values for interpolation, when an index provides them and
    the column is arithmetic. [low = high] (a constant-valued column) is a
    valid, degenerate range — callers decide comparisons against it outright
    rather than interpolating. *)

val tuples_per_page : t -> Catalog.relation -> float
