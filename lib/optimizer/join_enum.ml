type stats = {
  plans_considered : int;
  solutions_stored : int;
  subsets_examined : int;
  dp_table : (int list * Plan.t list) list;
}

type search = {
  ctx : Ctx.t;
  block : Semant.block;
  factors : Normalize.factor list;
  env : Interesting_order.env;
  mutable considered : int;
  solutions : (int, Plan.t list) Hashtbl.t;  (* mask -> retained plans *)
}

let mask_tables mask =
  let rec go i acc =
    if 1 lsl i > mask then List.rev acc
    else go (i + 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc)
  in
  go 0 []

(* Composite rows get wider as relations join; tuples-per-page of the
   composite follows 1/tpp = sum(1/tpp_i). *)
let tuples_per_page_of s tabs =
  let inv =
    List.fold_left
      (fun acc tab ->
        let rel = Ctx.table_rel s.block tab in
        acc +. (1. /. Ctx.tuples_per_page s.ctx rel))
      0. tabs
  in
  if inv <= 0. then 50. else Float.max 1. (1. /. inv)

(* --- solution retention ---------------------------------------------- *)

(* "To minimize the number of different interesting orders (and hence of
   solutions in the tree) equivalence classes are computed and only the best
   solution for each is saved" — plus the cheapest solution overall (the
   'unordered' champion). *)
let prune s plans =
  let w = s.ctx.Ctx.w in
  let key (p : Plan.t) =
    if s.ctx.Ctx.use_interesting_orders then
      Interesting_order.truncate_interesting s.env s.block s.factors p.order
    else []
  in
  let best = Hashtbl.create 8 in
  List.iter
    (fun (p : Plan.t) ->
      let k = key p in
      match Hashtbl.find_opt best k with
      | Some (q : Plan.t) when Cost_model.compare_total ~w q.cost p.cost <= 0 -> ()
      | _ -> Hashtbl.replace best k p)
    plans;
  (* Drop ordered entries that cost no less than the cheapest unordered one
     only if their order adds nothing (same truncated key handles that); an
     ordered plan cheaper than the unordered champion also serves as champion. *)
  Hashtbl.fold (fun _ p acc -> p :: acc) best []

let cheapest s plans =
  let w = s.ctx.Ctx.w in
  match plans with
  | [] -> None
  | p :: rest ->
    Some
      (List.fold_left
         (fun (a : Plan.t) (b : Plan.t) ->
           if Cost_model.compare_total ~w a.cost b.cost <= 0 then a else b)
         p rest)

(* --- factor bookkeeping ----------------------------------------------- *)

let subset tables mask_tabs = List.for_all (fun t -> List.mem t mask_tabs) tables

(* Factors applied when relation [j] joins composite [mask]: they reference j
   plus only available tables, and at least one outer table (purely local
   factors were applied at j's scan). *)
let cross_factors s ~j ~outer_tabs =
  List.filter
    (fun (f : Normalize.factor) ->
      (not f.has_subquery)
      && List.mem j f.tables
      && List.exists (fun t -> t <> j) f.tables
      && subset f.tables (j :: outer_tabs))
    s.factors

let connected s ~j ~mask_tabs =
  List.exists
    (fun (f : Normalize.factor) ->
      List.mem j f.tables && List.exists (fun t -> List.mem t mask_tabs) f.tables)
    s.factors

(* --- join construction ------------------------------------------------ *)

let note s (p : Plan.t) =
  s.considered <- s.considered + 1;
  p

let nl_join s ~outer ~inner =
  let cost =
    Cost_model.nested_loop_join ~outer:outer.Plan.cost ~outer_card:outer.Plan.out_card
      ~inner_per_open:inner.Plan.cost
  in
  note s
    { Plan.node = Plan.Nl_join { outer; inner };
      tables = outer.Plan.tables @ inner.Plan.tables;
      order = outer.Plan.order;  (* the outer major order survives *)
      cost;
      out_card = outer.Plan.out_card *. inner.Plan.out_card }

let sort_plan s (input : Plan.t) key =
  let tpp = tuples_per_page_of s input.tables in
  let sc = Cost_model.sort_cost s.ctx ~tuples:input.out_card ~tuples_per_page:tpp in
  note s
    { Plan.node = Plan.Sort { input; key };
      tables = input.tables;
      order = key;
      cost = Cost_model.add input.cost sc;
      out_card = input.out_card }

let merge_join s ~outer ~inner ~outer_col ~inner_col ~merge_factor ~others =
  let cross_sel =
    List.fold_left
      (fun acc (f : Normalize.factor) -> acc *. Selectivity.factor s.ctx s.block f.pred)
      (Selectivity.factor s.ctx s.block merge_factor.Normalize.pred)
      others
  in
  let out_card = outer.Plan.out_card *. inner.Plan.out_card *. cross_sel in
  let matches =
    (* inner tuples surfaced during the merge, before residual filtering *)
    outer.Plan.out_card *. inner.Plan.out_card
    *. Selectivity.factor s.ctx s.block merge_factor.Normalize.pred
  in
  let cost =
    match inner.Plan.node with
    | Plan.Sort _ ->
      let tpp = tuples_per_page_of s inner.Plan.tables in
      let temppages =
        Cost_model.temp_pages ~tuples:inner.Plan.out_card ~tuples_per_page:tpp
      in
      Cost_model.merge_join_sorted_inner s.ctx ~outer:outer.Plan.cost
        ~inner_build:inner.Plan.cost ~temppages ~matches
    | Plan.Scan _ | Plan.Nl_join _ | Plan.Merge_join _ | Plan.Filter _ ->
      Cost_model.merge_join_ordered_inner ~outer:outer.Plan.cost
        ~inner_whole:inner.Plan.cost ~matches
  in
  note s
    { Plan.node =
        Plan.Merge_join
          { outer;
            inner;
            outer_col;
            inner_col;
            residual = List.map (fun (f : Normalize.factor) -> f.pred) others };
      tables = outer.Plan.tables @ inner.Plan.tables;
      order = outer.Plan.order;
      cost;
      out_card }

(* Extensions of [mask]'s solutions by joining in relation [j]. [mask_tabs]
   is [mask_tables mask], computed once by the driver and shared. *)
let extend s ~mask ~mask_tabs ~j =
  let outer_plans = Option.value (Hashtbl.find_opt s.solutions mask) ~default:[] in
  if outer_plans = [] then []
  else begin
    (* Nested loops: every retained outer × every inner access path that can
       exploit the join predicates dynamically. *)
    let inner_paths =
      Access_path.paths s.ctx s.block ~factors:s.factors ~tab:j ~outer:mask_tabs
    in
    List.iter (fun p -> ignore (note s p)) inner_paths;
    let nl =
      List.concat_map
        (fun outer -> List.map (fun inner -> nl_join s ~outer ~inner) inner_paths)
        outer_plans
    in
    (* Merging scans: one per applicable equi-join factor. *)
    let cross = cross_factors s ~j ~outer_tabs:mask_tabs in
    (* local-only inner paths: the merge scans the inner on its own. The set
       depends only on [j], not on the factor, so enumerate it once and share
       it across every equi-join factor of this extension. *)
    let local_inner =
      lazy
        (let ps =
           Access_path.paths s.ctx s.block ~factors:s.factors ~tab:j ~outer:[]
         in
         List.iter (fun p -> ignore (note s p)) ps;
         ps)
    in
    let merge =
      List.concat_map
        (fun (f : Normalize.factor) ->
          match f.equi_join with
          | Some (a, b)
            when (a.Semant.tab = j && List.mem b.Semant.tab mask_tabs)
                 || (b.Semant.tab = j && List.mem a.Semant.tab mask_tabs) ->
            let inner_col, outer_col = if a.Semant.tab = j then (a, b) else (b, a) in
            let others = List.filter (fun g -> g != f) cross in
            let inner_order = [ (inner_col, Ast.Asc) ] in
            let local_inner = Lazy.force local_inner in
            let ordered_inners =
              List.filter
                (fun (p : Plan.t) ->
                  Interesting_order.satisfies s.env ~produced:p.order
                    ~required:inner_order)
                local_inner
            in
            let sorted_inner =
              Option.map
                (fun best -> sort_plan s best inner_order)
                (cheapest s local_inner)
            in
            let inners = ordered_inners @ Option.to_list sorted_inner in
            let outer_order = [ (outer_col, Ast.Asc) ] in
            let ordered_outers =
              List.filter
                (fun (p : Plan.t) ->
                  Interesting_order.satisfies s.env ~produced:p.order
                    ~required:outer_order)
                outer_plans
            in
            let sorted_outer =
              Option.map
                (fun best -> sort_plan s best outer_order)
                (cheapest s outer_plans)
            in
            let outers = ordered_outers @ Option.to_list sorted_outer in
            List.concat_map
              (fun outer ->
                List.map
                  (fun inner ->
                    merge_join s ~outer ~inner ~outer_col ~inner_col
                      ~merge_factor:f ~others)
                  inners)
              outers
          | Some _ | None -> [])
        cross
    in
    nl @ merge
  end

(* --- driver ------------------------------------------------------------ *)

let plan_block ctx block ?required ~factors ~env () =
  let s = { ctx; block; factors; env; considered = 0; solutions = Hashtbl.create 64 } in
  let n = List.length block.Semant.tables in
  let required =
    Option.value required ~default:(Interesting_order.required_order block)
  in
  let subsets = ref 0 in
  (* size-1 subsets: access paths with local predicates only *)
  for tab = 0 to n - 1 do
    incr subsets;
    let paths = Access_path.paths ctx block ~factors ~tab ~outer:[] in
    List.iter (fun p -> ignore (note s p)) paths;
    Hashtbl.replace s.solutions (1 lsl tab) (prune s paths)
  done;
  (* grow subsets *)
  let masks_of_size = Array.make (n + 1) [] in
  for tab = 0 to n - 1 do
    masks_of_size.(1) <- (1 lsl tab) :: masks_of_size.(1)
  done;
  for size = 2 to n do
    let acc : (int, Plan.t list) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun mask ->
        let mask_tabs = mask_tables mask in
        let candidates = List.filter (fun j -> mask land (1 lsl j) = 0) (List.init n Fun.id) in
        let joinable =
          if not ctx.Ctx.use_heuristic then candidates
          else begin
            let conn = List.filter (fun j -> connected s ~j ~mask_tabs) candidates in
            (* defer Cartesian products as late as possible *)
            if conn <> [] then conn else candidates
          end
        in
        List.iter
          (fun j ->
            let exts = extend s ~mask ~mask_tabs ~j in
            let key = mask lor (1 lsl j) in
            let prev = Option.value (Hashtbl.find_opt acc key) ~default:[] in
            Hashtbl.replace acc key (exts @ prev))
          joinable)
      masks_of_size.(size - 1);
    Hashtbl.iter
      (fun mask plans ->
        incr subsets;
        Hashtbl.replace s.solutions mask (prune s plans);
        masks_of_size.(size) <- mask :: masks_of_size.(size))
      acc
  done;
  let full = (1 lsl n) - 1 in
  let finals = Option.value (Hashtbl.find_opt s.solutions full) ~default:[] in
  (if finals = [] then
     invalid_arg "Join_enum.plan_block: no complete solution (empty FROM?)");
  let w = ctx.Ctx.w in
  let best =
    if required = [] then Option.get (cheapest s finals)
    else begin
      (* grouping accepts any permutation of the grouping columns (equal
         keys end up adjacent either way); ORDER BY is positional *)
      let order_ok (p : Plan.t) =
        match block.Semant.group_by with
        | [] -> Interesting_order.satisfies env ~produced:p.order ~required
        | cols -> Interesting_order.satisfies_grouping env ~produced:p.order ~cols
      in
      let ordered = List.filter order_ok finals in
      let sorted_alt = sort_plan s (Option.get (cheapest s finals)) required in
      Option.get (cheapest s (sorted_alt :: ordered))
    end
  in
  ignore w;
  let stored = Hashtbl.fold (fun _ ps acc -> acc + List.length ps) s.solutions 0 in
  let dp_table =
    Hashtbl.fold (fun mask ps acc -> (mask_tables mask, ps) :: acc) s.solutions []
    |> List.sort (fun (a, _) (b, _) ->
           match Int.compare (List.length a) (List.length b) with
           | 0 -> compare a b
           | d -> d)
  in
  ( best,
    { plans_considered = s.considered;
      solutions_stored = stored;
      subsets_examined = !subsets;
      dp_table } )
