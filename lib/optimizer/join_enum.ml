type stats = {
  plans_considered : int;
  solutions_stored : int;
  subsets_examined : int;
  dp_table : (int list * Plan.t list) list;
}

(* All subset bookkeeping is over int bitmasks: bit [t] set means FROM
   position [t] is part of the composite. Factor applicability, connectivity
   and candidate selection are single [land]s against masks precomputed once
   per search. *)
type search = {
  ctx : Ctx.t;
  block : Semant.block;
  factors : Normalize.factor list;  (* Access_path and truncate_interesting API *)
  farr : Normalize.factor array;    (* same factors, indexed for mask lookup *)
  fmask : int array;                (* fmask.(i) = farr.(i).tables as a bitmask *)
  adj : int array;                  (* adj.(t) = tables some factor joins to t *)
  env : Interesting_order.env;
  orders : Interesting_order.interner;
  mutable bound : float;            (* branch-and-bound total-cost upper bound *)
  mutable considered : int;
  solutions : (int, Plan.t list) Hashtbl.t;  (* mask -> retained plans *)
}

let mask_of_tables tabs = List.fold_left (fun m t -> m lor (1 lsl t)) 0 tabs

let mask_tables mask =
  let rec go i acc =
    if 1 lsl i > mask then List.rev acc
    else go (i + 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc)
  in
  go 0 []

(* Composite rows get wider as relations join; tuples-per-page of the
   composite follows 1/tpp = sum(1/tpp_i). *)
let tuples_per_page_of s tabs =
  let inv =
    List.fold_left
      (fun acc tab ->
        let rel = Ctx.table_rel s.block tab in
        acc +. (1. /. Ctx.tuples_per_page s.ctx rel))
      0. tabs
  in
  if inv <= 0. then 50. else Float.max 1. (1. /. inv)

(* --- solution retention ---------------------------------------------- *)

(* "To minimize the number of different interesting orders (and hence of
   solutions in the tree) equivalence classes are computed and only the best
   solution for each is saved" — plus the cheapest solution overall (the
   'unordered' champion). Champion lookup keys on the interned order id, so
   the hash path compares ints, not column-ref lists. *)
let prune s plans =
  let w = s.ctx.Ctx.w in
  let key (p : Plan.t) =
    if s.ctx.Ctx.use_interesting_orders then
      Interesting_order.intern s.orders
        (Interesting_order.truncate_interesting s.env s.block s.factors p.order)
    else 0
  in
  let best : (int, Plan.t) Hashtbl.t = Hashtbl.create 8 in
  let seen = ref [] in
  List.iter
    (fun (p : Plan.t) ->
      let k = key p in
      match Hashtbl.find_opt best k with
      | Some (q : Plan.t) when Cost_model.compare_total ~w q.cost p.cost <= 0 -> ()
      | Some _ -> Hashtbl.replace best k p
      | None ->
        seen := k :: !seen;
        Hashtbl.add best k p)
    plans;
  (* first-seen class order keeps the output deterministic *)
  List.rev_map (fun k -> Hashtbl.find best k) !seen

let cheapest s plans =
  let w = s.ctx.Ctx.w in
  match plans with
  | [] -> None
  | p :: rest ->
    Some
      (List.fold_left
         (fun (a : Plan.t) (b : Plan.t) ->
           if Cost_model.compare_total ~w a.cost b.cost <= 0 then a else b)
         p rest)

(* --- branch and bound -------------------------------------------------- *)

(* COST is additive and non-negative along plan extensions, so a partial plan
   whose total already exceeds a known complete-plan total can never prefix
   the winner. Candidates over the bound are dropped before they are counted;
   the comparison is non-strict so equal-cost ties survive and the chosen
   plan is byte-identical with pruning on or off. *)
let within s (p : Plan.t) = Cost_model.total ~w:s.ctx.Ctx.w p.cost <= s.bound

(* --- factor bookkeeping ----------------------------------------------- *)

(* Factors applied when relation [j] joins composite [mask]: they reference j
   plus only available tables, and at least one outer table (purely local
   factors were applied at j's scan). All three conditions are mask tests. *)
let cross_factors s ~j ~mask =
  let jbit = 1 lsl j in
  let avail = mask lor jbit in
  let rec go i acc =
    if i < 0 then acc
    else
      let fm = s.fmask.(i) in
      let f = s.farr.(i) in
      let acc =
        if
          (not f.Normalize.has_subquery)
          && fm land jbit <> 0
          && fm land mask <> 0
          && fm land lnot avail = 0
        then f :: acc
        else acc
      in
      go (i - 1) acc
  in
  go (Array.length s.farr - 1) []

(* --- join construction ------------------------------------------------ *)

let note s (p : Plan.t) =
  s.considered <- s.considered + 1;
  p

let nl_join ~outer ~inner =
  let cost =
    Cost_model.nested_loop_join ~outer:outer.Plan.cost ~outer_card:outer.Plan.out_card
      ~inner_per_open:inner.Plan.cost
  in
  { Plan.node = Plan.Nl_join { outer; inner };
    tables = outer.Plan.tables @ inner.Plan.tables;
    order = outer.Plan.order;  (* the outer major order survives *)
    cost;
    out_card = outer.Plan.out_card *. inner.Plan.out_card }

let sort_plan s (input : Plan.t) key =
  let tpp = tuples_per_page_of s input.tables in
  let sc = Cost_model.sort_cost s.ctx ~tuples:input.out_card ~tuples_per_page:tpp in
  { Plan.node = Plan.Sort { input; key };
    tables = input.tables;
    order = key;
    cost = Cost_model.add input.cost sc;
    out_card = input.out_card }

let merge_join s ~outer ~inner ~outer_col ~inner_col ~merge_factor ~others =
  let cross_sel =
    List.fold_left
      (fun acc (f : Normalize.factor) -> acc *. Selectivity.factor s.ctx s.block f.pred)
      (Selectivity.factor s.ctx s.block merge_factor.Normalize.pred)
      others
  in
  let out_card = outer.Plan.out_card *. inner.Plan.out_card *. cross_sel in
  let matches =
    (* inner tuples surfaced during the merge, before residual filtering *)
    outer.Plan.out_card *. inner.Plan.out_card
    *. Selectivity.factor s.ctx s.block merge_factor.Normalize.pred
  in
  let cost =
    match inner.Plan.node with
    | Plan.Sort _ ->
      let tpp = tuples_per_page_of s inner.Plan.tables in
      let temppages =
        Cost_model.temp_pages ~tuples:inner.Plan.out_card ~tuples_per_page:tpp
      in
      Cost_model.merge_join_sorted_inner s.ctx ~outer:outer.Plan.cost
        ~inner_build:inner.Plan.cost ~temppages ~matches
    | Plan.Scan _ | Plan.Nl_join _ | Plan.Merge_join _ | Plan.Filter _
    | Plan.Exchange _ ->
      Cost_model.merge_join_ordered_inner ~outer:outer.Plan.cost
        ~inner_whole:inner.Plan.cost ~matches
  in
  { Plan.node =
      Plan.Merge_join
        { outer;
          inner;
          outer_col;
          inner_col;
          residual = List.map (fun (f : Normalize.factor) -> f.pred) others };
    tables = outer.Plan.tables @ inner.Plan.tables;
    order = outer.Plan.order;
    cost;
    out_card }

(* Extensions of [mask]'s solutions by joining in relation [j]. [mask_tabs]
   is [mask_tables mask], computed once by the driver and shared. Candidates
   whose total cost exceeds the branch-and-bound upper bound are dropped
   un-counted: dominated composites are never retained. *)
let extend s ~mask ~mask_tabs ~j =
  let outer_plans =
    List.filter (within s)
      (Option.value (Hashtbl.find_opt s.solutions mask) ~default:[])
  in
  if outer_plans = [] then []
  else begin
    (* Nested loops: every retained outer × every inner access path that can
       exploit the join predicates dynamically. *)
    let inner_paths =
      Access_path.paths s.ctx s.block ~factors:s.factors ~tab:j ~outer:mask_tabs
    in
    List.iter (fun p -> ignore (note s p)) inner_paths;
    let nl =
      List.concat_map
        (fun outer ->
          List.filter_map
            (fun inner ->
              let p = nl_join ~outer ~inner in
              if within s p then Some (note s p) else None)
            inner_paths)
        outer_plans
    in
    (* Merging scans: one per applicable equi-join factor. *)
    let cross = cross_factors s ~j ~mask in
    (* local-only inner paths: the merge scans the inner on its own. The set
       depends only on [j], not on the factor, so enumerate it once and share
       it across every equi-join factor of this extension. *)
    let local_inner =
      lazy
        (let ps =
           Access_path.paths s.ctx s.block ~factors:s.factors ~tab:j ~outer:[]
         in
         List.iter (fun p -> ignore (note s p)) ps;
         ps)
    in
    let merge =
      List.concat_map
        (fun (f : Normalize.factor) ->
          match f.equi_join with
          | Some (a, b)
            when (a.Semant.tab = j && mask land (1 lsl b.Semant.tab) <> 0)
                 || (b.Semant.tab = j && mask land (1 lsl a.Semant.tab) <> 0) ->
            let inner_col, outer_col = if a.Semant.tab = j then (a, b) else (b, a) in
            let others = List.filter (fun g -> g != f) cross in
            let inner_order = [ (inner_col, Ast.Asc) ] in
            let local_inner = Lazy.force local_inner in
            let ordered_inners =
              List.filter
                (fun (p : Plan.t) ->
                  Interesting_order.satisfies s.env ~produced:p.order
                    ~required:inner_order)
                local_inner
            in
            let sorted_inner =
              Option.map
                (fun best -> note s (sort_plan s best inner_order))
                (cheapest s local_inner)
            in
            let inners = ordered_inners @ Option.to_list sorted_inner in
            let outer_order = [ (outer_col, Ast.Asc) ] in
            let ordered_outers =
              List.filter
                (fun (p : Plan.t) ->
                  Interesting_order.satisfies s.env ~produced:p.order
                    ~required:outer_order)
                outer_plans
            in
            let sorted_outer =
              Option.map
                (fun best -> note s (sort_plan s best outer_order))
                (cheapest s outer_plans)
            in
            let outers = ordered_outers @ Option.to_list sorted_outer in
            List.concat_map
              (fun outer ->
                List.filter_map
                  (fun inner ->
                    let p =
                      merge_join s ~outer ~inner ~outer_col ~inner_col
                        ~merge_factor:f ~others
                    in
                    if within s p then Some (note s p) else None)
                  inners)
              outers
          | Some _ | None -> [])
        cross
    in
    nl @ merge
  end

(* --- driver ------------------------------------------------------------ *)

(* Relations joinable onto [mask]: connected ones first when the
   Cartesian-deferral heuristic is on, falling back to every remaining
   relation when nothing connects. Connectivity is one mask test against the
   precomputed adjacency. *)
let joinable_of s ~n ~mask =
  let rec remaining j acc =
    if j < 0 then acc
    else
      remaining (j - 1)
        (if mask land (1 lsl j) = 0 then j :: acc else acc)
  in
  let candidates = remaining (n - 1) [] in
  if not s.ctx.Ctx.use_heuristic then candidates
  else begin
    let conn = List.filter (fun j -> s.adj.(j) land mask <> 0) candidates in
    (* defer Cartesian products as late as possible *)
    if conn <> [] then conn else candidates
  end

let order_ok s ~required (p : Plan.t) =
  match s.block.Semant.group_by with
  | [] -> Interesting_order.satisfies s.env ~produced:p.order ~required
  | cols -> Interesting_order.satisfies_grouping s.env ~produced:p.order ~cols

(* Seed the branch-and-bound upper bound with a complete greedy left-deep
   plan: start at the cheapest single-relation path, repeatedly take the
   cheapest nested-loop extension over the same candidate set the DP would
   explore (so the bound is always achievable by the DP), and account for the
   final sort when the greedy plan misses the required order. *)
let greedy_seed s ~n ~required =
  let w = s.ctx.Ctx.w in
  let start =
    let rec go tab best =
      if tab >= n then best
      else
        let p = Option.get (cheapest s (Hashtbl.find s.solutions (1 lsl tab))) in
        let best =
          match best with
          | Some (q : Plan.t)
            when Cost_model.compare_total ~w q.cost p.Plan.cost <= 0 ->
            Some q
          | _ -> Some p
        in
        go (tab + 1) best
    in
    Option.get (go 0 None)
  in
  let plan = ref start in
  let mask = ref (mask_of_tables start.Plan.tables) in
  for _size = 2 to n do
    let m = !mask in
    let mask_tabs = mask_tables m in
    let best_ext =
      List.fold_left
        (fun acc j ->
          let inner_paths =
            Access_path.paths s.ctx s.block ~factors:s.factors ~tab:j
              ~outer:mask_tabs
          in
          List.fold_left
            (fun acc inner ->
              let p = note s (nl_join ~outer:!plan ~inner) in
              match acc with
              | Some ((q : Plan.t), _)
                when Cost_model.compare_total ~w q.cost p.Plan.cost <= 0 ->
                acc
              | _ -> Some (p, j))
            acc inner_paths)
        None
        (joinable_of s ~n ~mask:m)
    in
    match best_ext with
    | Some (p, j) ->
      plan := p;
      mask := m lor (1 lsl j)
    | None -> ()
  done;
  let complete = !plan in
  let final =
    if required = [] || order_ok s ~required complete then complete
    else note s (sort_plan s complete required)
  in
  s.bound <- Cost_model.total ~w final.Plan.cost

let plan_block ctx block ?required ~factors ~env () =
  let farr = Array.of_list factors in
  let fmask = Array.map (fun (f : Normalize.factor) -> mask_of_tables f.tables) farr in
  let n = List.length block.Semant.tables in
  let adj = Array.make (max n 1) 0 in
  Array.iteri
    (fun i (f : Normalize.factor) ->
      List.iter
        (fun t -> adj.(t) <- adj.(t) lor (fmask.(i) land lnot (1 lsl t)))
        f.tables)
    farr;
  let s =
    { ctx; block; factors; farr; fmask; adj; env;
      orders = Interesting_order.interner ();
      bound = Float.infinity;
      considered = 0;
      solutions = Hashtbl.create 64 }
  in
  let required =
    Option.value required ~default:(Interesting_order.required_order block)
  in
  let subsets = ref 0 in
  (* size-1 subsets: access paths with local predicates only *)
  for tab = 0 to n - 1 do
    incr subsets;
    let paths = Access_path.paths ctx block ~factors ~tab ~outer:[] in
    List.iter (fun p -> ignore (note s p)) paths;
    Hashtbl.replace s.solutions (1 lsl tab) (prune s paths)
  done;
  if ctx.Ctx.use_bnb && n >= 2 then greedy_seed s ~n ~required;
  (* grow subsets level by level: each level's worklist holds only the masks
     produced at the previous level *)
  let masks_of_size = Array.make (n + 1) [] in
  for tab = 0 to n - 1 do
    masks_of_size.(1) <- (1 lsl tab) :: masks_of_size.(1)
  done;
  for size = 2 to n do
    let acc : (int, Plan.t list) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun mask ->
        let mask_tabs = mask_tables mask in
        List.iter
          (fun j ->
            let exts = extend s ~mask ~mask_tabs ~j in
            let key = mask lor (1 lsl j) in
            let prev = Option.value (Hashtbl.find_opt acc key) ~default:[] in
            Hashtbl.replace acc key (exts @ prev))
          (joinable_of s ~n ~mask))
      masks_of_size.(size - 1);
    Hashtbl.iter
      (fun mask plans ->
        incr subsets;
        Hashtbl.replace s.solutions mask (prune s plans);
        masks_of_size.(size) <- mask :: masks_of_size.(size))
      acc
  done;
  let full = (1 lsl n) - 1 in
  let finals = Option.value (Hashtbl.find_opt s.solutions full) ~default:[] in
  (if finals = [] then
     invalid_arg "Join_enum.plan_block: no complete solution (empty FROM?)");
  let best =
    if required = [] then Option.get (cheapest s finals)
    else begin
      (* grouping accepts any permutation of the grouping columns (equal
         keys end up adjacent either way); ORDER BY is positional *)
      let ordered = List.filter (order_ok s ~required) finals in
      let sorted_alt = note s (sort_plan s (Option.get (cheapest s finals)) required) in
      Option.get (cheapest s (sorted_alt :: ordered))
    end
  in
  let stored = Hashtbl.fold (fun _ ps acc -> acc + List.length ps) s.solutions 0 in
  let dp_table =
    Hashtbl.fold (fun mask ps acc -> (mask_tables mask, ps) :: acc) s.solutions []
    |> List.sort (fun (a, _) (b, _) ->
           match Int.compare (List.length a) (List.length b) with
           | 0 -> compare a b
           | d -> d)
  in
  ( best,
    { plans_considered = s.considered;
      solutions_stored = stored;
      subsets_examined = !subsets;
      dp_table } )
