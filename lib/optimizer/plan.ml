type bound_value =
  | Bv_const of Rel.Value.t
  | Bv_param of int
  | Bv_outer of Semant.col_ref

type key_bound = {
  values : bound_value list;
  inclusive : bool;
}

type access =
  | Seg_scan
  | Idx_scan of {
      index : Catalog.index;
      lo : key_bound option;
      hi : key_bound option;
      dir : Ast.order_dir;
      matching : bool;
    }

type node =
  | Scan of {
      tab : int;
      access : access;
      sargs : Semant.spred list;
      residual : Semant.spred list;
    }
  | Nl_join of { outer : t; inner : t }
  | Merge_join of {
      outer : t;
      inner : t;
      outer_col : Semant.col_ref;
      inner_col : Semant.col_ref;
      residual : Semant.spred list;
    }
  | Sort of { input : t; key : Interesting_order.order }
  | Filter of { input : t; preds : Semant.spred list }
  | Exchange of { input : t; dop : int }

and t = {
  node : node;
  tables : int list;
  order : Interesting_order.order;
  cost : Cost_model.t;
  out_card : float;
}

let rec scan_tab t =
  match t.node with
  | Scan { tab; _ } -> Some tab
  | Filter { input; _ } | Exchange { input; _ } -> scan_tab input
  | Nl_join _ | Merge_join _ | Sort _ -> None

let rec join_methods_used t =
  match t.node with
  | Scan _ -> []
  | Nl_join { outer; inner } ->
    join_methods_used outer @ join_methods_used inner @ [ "NL" ]
  | Merge_join { outer; inner; _ } ->
    join_methods_used outer @ join_methods_used inner @ [ "MERGE" ]
  | Sort { input; _ } | Filter { input; _ } | Exchange { input; _ } ->
    join_methods_used input

let default_name tab = Printf.sprintf "t%d" tab

let bound_value_str ~names = function
  | Bv_const v -> Rel.Value.to_string v
  | Bv_param i -> Printf.sprintf "?%d" i
  | Bv_outer (c : Semant.col_ref) -> Printf.sprintf "%s.c%d" (names c.tab) c.col

let access_str ~names tab = function
  | Seg_scan -> Printf.sprintf "Seg(%s)" (names tab)
  | Idx_scan { index; lo; hi; dir; matching } ->
    let dsuffix = match dir with Ast.Asc -> "" | Ast.Desc -> " DESC" in
    let b = function
      | None -> "-"
      | Some { values; inclusive } ->
        Printf.sprintf "%s%s"
          (String.concat "," (List.map (bound_value_str ~names) values))
          (if inclusive then "" else "!")
    in
    if lo = None && hi = None then
      Printf.sprintf "Idx(%s:%s%s)%s" (names tab) index.Catalog.idx_name dsuffix
        (if matching then "" else "*")
    else
      Printf.sprintf "Idx(%s:%s[%s..%s]%s)" (names tab) index.Catalog.idx_name
        (b lo) (b hi) dsuffix

let rec describe ?(names = default_name) t =
  match t.node with
  | Scan { tab; access; _ } -> access_str ~names tab access
  | Nl_join { outer; inner } ->
    Printf.sprintf "NL(%s, %s)" (describe ~names outer) (describe ~names inner)
  | Merge_join { outer; inner; _ } ->
    Printf.sprintf "MERGE(%s, %s)" (describe ~names outer) (describe ~names inner)
  | Sort { input; _ } -> Printf.sprintf "Sort(%s)" (describe ~names input)
  | Filter { input; _ } -> Printf.sprintf "Filter(%s)" (describe ~names input)
  | Exchange { input; dop } ->
    Printf.sprintf "Exchange[%d](%s)" dop (describe ~names input)

let pp ?(names = default_name) ppf t =
  let rec go indent t =
    let pad = String.make indent ' ' in
    let line fmt =
      Format.kasprintf
        (fun s ->
          Format.fprintf ppf "%s%s  [cost=%a card=%.1f order=%a]@," pad s
            Cost_model.pp t.cost t.out_card Interesting_order.pp_order t.order)
        fmt
    in
    match t.node with
    | Scan { tab; access; sargs; residual } ->
      line "SCAN %s sargs=%d residual=%d" (access_str ~names tab access)
        (List.length sargs) (List.length residual)
    | Nl_join { outer; inner } ->
      line "NESTED-LOOP JOIN";
      go (indent + 2) outer;
      go (indent + 2) inner
    | Merge_join { outer; inner; outer_col; inner_col; _ } ->
      line "MERGE JOIN on t%d.c%d = t%d.c%d" outer_col.Semant.tab
        outer_col.Semant.col inner_col.Semant.tab inner_col.Semant.col;
      go (indent + 2) outer;
      go (indent + 2) inner
    | Sort { input; key } ->
      line "SORT by %s" (Format.asprintf "%a" Interesting_order.pp_order key);
      go (indent + 2) input
    | Filter { input; preds } ->
      line "FILTER (%d predicates)" (List.length preds);
      go (indent + 2) input
    | Exchange { input; dop } ->
      line "EXCHANGE dop=%d (gather)" dop;
      go (indent + 2) input
  in
  Format.fprintf ppf "@[<v>";
  go 0 t;
  Format.fprintf ppf "@]"
