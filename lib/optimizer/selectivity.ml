open Semant

let clamp f = if f < 0. then 0. else if f > 1. then 1. else f

(* A comparison operand whose value is known at access path selection: a
   literal, or a parameter slot whose extracted literal the plan-cache path
   lets us peek at (histograms on only — the paper's estimates are
   value-independent). *)
let const_of ctx = function
  | E_const v -> Some v
  | E_param i -> Ctx.param_value ctx i
  | _ -> None

(* --- TABLE 1, case by case — histogram-aware -------------------------- *)

(* column = value. With a histogram: the containing bucket's per-value depth
   when the value is known, the average depth (1 - null fraction) / distinct
   when not. Without: TABLE 1's 1/ICARD, needing an index on the column,
   else 1/10. *)
let eq_selectivity ctx block c v =
  match Ctx.column_stats ctx block c with
  | Some h when Histogram.rows h > 0 ->
    (match v with
     | Some v when not (Rel.Value.is_null v) -> Histogram.selectivity_eq h v
     | Some _ -> 0. (* column = NULL qualifies nothing *)
     | None ->
       let d = Histogram.distinct h in
       if d = 0 then 0.
       else (1. -. Histogram.null_fraction h) /. float_of_int d)
  | _ ->
    (match Ctx.column_icard ctx block c with
     | Some icard -> 1. /. icard (* even distribution among key values *)
     | None -> 1. /. 10.)

(* column <> value: NULLs satisfy neither the equality nor its negation, so
   with a histogram the complement is taken within the non-NULL fraction. *)
let ne_selectivity ctx block c v =
  match Ctx.column_stats ctx block c with
  | Some h when Histogram.rows h > 0 ->
    clamp (1. -. Histogram.null_fraction h -. eq_selectivity ctx block c v)
  | _ -> 1. -. eq_selectivity ctx block c v

(* column1 = column2: 1 / MAX(ICARD1, ICARD2) — each distinct value of the
   smaller domain is assumed to have a match — discounted by both columns'
   NULL fractions when histograms know them. *)
let col_eq_col ctx block c1 c2 =
  let disc c =
    match Ctx.column_stats ctx block c with
    | Some h when Histogram.rows h > 0 -> 1. -. Histogram.null_fraction h
    | _ -> 1.
  in
  let base =
    match Ctx.column_icard ctx block c1, Ctx.column_icard ctx block c2 with
    | Some i1, Some i2 -> 1. /. Float.max i1 i2
    | Some i, None | None, Some i -> 1. /. i
    | None, None -> 1. /. 10.
  in
  base *. disc c1 *. disc c2

(* column > value (or any other open comparison). With a histogram: bucket
   counts plus within-bucket interpolation. Without: linear interpolation
   between an index's low and high keys when the column is arithmetic and
   the value known, else TABLE 1's 1/3. A degenerate key range (high = low:
   every tuple carries the single key value) is decided outright by that
   value — eq-like, not the 1/3 default the interpolation guard used to
   fall through to. *)
let range_selectivity ctx block c op (v : Rel.Value.t option) =
  match Ctx.column_stats ctx block c with
  | Some h when Histogram.rows h > 0 ->
    (match v with
     | Some v when not (Rel.Value.is_null v) ->
       let dir =
         match op with
         | Ast.Gt -> `Gt | Ast.Ge -> `Ge | Ast.Lt -> `Lt | Ast.Le -> `Le
         | Ast.Eq | Ast.Ne -> assert false
       in
       Histogram.selectivity_cmp h dir v
     | Some _ -> 0. (* comparison with NULL qualifies nothing *)
     | None -> (1. -. Histogram.null_fraction h) /. 3.)
  | _ ->
    (match v with
     | None -> 1. /. 3.
     | Some v ->
       (match Ctx.column_range ctx block c, Rel.Value.to_float v with
        | Some (low, high), Some value when high > low ->
          let f =
            match op with
            | Ast.Gt | Ast.Ge -> (high -. value) /. (high -. low)
            | Ast.Lt | Ast.Le -> (value -. low) /. (high -. low)
            | Ast.Eq | Ast.Ne -> assert false
          in
          clamp f
        | Some (low, high), Some value when high = low ->
          let sat =
            match op with
            | Ast.Gt -> low > value
            | Ast.Ge -> low >= value
            | Ast.Lt -> low < value
            | Ast.Le -> low <= value
            | Ast.Eq | Ast.Ne -> assert false
          in
          if sat then 1. else 0.
        | _ -> 1. /. 3.))

let between_selectivity ctx block c lo hi =
  match Ctx.column_stats ctx block c with
  | Some h when Histogram.rows h > 0 ->
    (match lo, hi with
     | Some lo, Some hi
       when not (Rel.Value.is_null lo) && not (Rel.Value.is_null hi) ->
       Histogram.selectivity_between h lo hi
     | Some _, Some _ -> 0. (* a NULL bound qualifies nothing *)
     | _ -> (1. -. Histogram.null_fraction h) /. 4.)
  | _ ->
    (match lo, hi with
     | Some lo, Some hi ->
       (match
          Ctx.column_range ctx block c,
          Rel.Value.to_float lo,
          Rel.Value.to_float hi
        with
        | Some (low, high), Some v1, Some v2 when high > low ->
          clamp ((v2 -. v1) /. (high -. low))
        | Some (low, high), Some v1, Some v2 when high = low ->
          (* single-key column: the whole relation is in or out of the range *)
          if low >= v1 && low <= v2 then 1. else 0.
        | _ -> 1. /. 4.)
     | _ -> 1. /. 4.)

let rec factor ctx block (p : spred) =
  let f =
    match p with
    | P_cmp (E_col c, Ast.Eq, ((E_const _ | E_param _) as e))
    | P_cmp (((E_const _ | E_param _) as e), Ast.Eq, E_col c) ->
      eq_selectivity ctx block c (const_of ctx e)
    | P_cmp (E_col c, Ast.Ne, ((E_const _ | E_param _) as e))
    | P_cmp (((E_const _ | E_param _) as e), Ast.Ne, E_col c) ->
      ne_selectivity ctx block c (const_of ctx e)
    | P_cmp (E_col c1, Ast.Eq, E_col c2) -> col_eq_col ctx block c1 c2
    | P_cmp (E_col c1, Ast.Ne, E_col c2) -> 1. -. col_eq_col ctx block c1 c2
    | P_cmp
        (E_col c, ((Ast.Gt | Ast.Ge | Ast.Lt | Ast.Le) as op),
         ((E_const _ | E_param _) as e)) ->
      range_selectivity ctx block c op (const_of ctx e)
    | P_cmp
        (((E_const _ | E_param _) as e),
         ((Ast.Gt | Ast.Ge | Ast.Lt | Ast.Le) as op), E_col c) ->
      let flipped =
        match op with
        | Ast.Gt -> Ast.Lt | Ast.Ge -> Ast.Le
        | Ast.Lt -> Ast.Gt | Ast.Le -> Ast.Ge
        | Ast.Eq | Ast.Ne -> assert false
      in
      range_selectivity ctx block c flipped (const_of ctx e)
    | P_cmp (_, Ast.Eq, _) -> 1. /. 10.
    | P_cmp (_, Ast.Ne, _) -> 1. -. (1. /. 10.)
    | P_cmp (_, (Ast.Gt | Ast.Ge | Ast.Lt | Ast.Le), _) -> 1. /. 3.
    | P_between
        (E_col c, ((E_const _ | E_param _) as l), ((E_const _ | E_param _) as h))
      ->
      between_selectivity ctx block c (const_of ctx l) (const_of ctx h)
    | P_between _ -> 1. /. 4.
    | P_in_list (e, vs) ->
      (* duplicate literals must not stack: IN (1, 1, 1) selects the same
         tuples as IN (1) *)
      let vs = List.sort_uniq Rel.Value.compare vs in
      let sel =
        match e with
        | E_col c ->
          List.fold_left
            (fun acc v -> acc +. eq_selectivity ctx block c (Some v))
            0. vs
        | _ -> float_of_int (List.length vs) *. (1. /. 10.)
      in
      (* "allowed to be no more than 1/2" *)
      Float.min 0.5 sel
    | P_in_sub { block = sub; negated; _ } ->
      (* F = (expected cardinality of the subquery result) /
             (product of the cardinalities of all the relations in the
              subquery's FROM-list) *)
      let f = clamp (block_qcard ctx sub /. cardinality_product ctx sub) in
      if negated then 1. -. f else f
    | P_cmp_sub (e, op, _) ->
      (* Scalar subquery compared to an expression: the value is unknown at
         access path selection, so use the value-independent estimates. *)
      (match op, e with
       | Ast.Eq, E_col c -> eq_selectivity ctx block c None
       | Ast.Eq, _ -> 1. /. 10.
       | Ast.Ne, E_col c -> ne_selectivity ctx block c None
       | Ast.Ne, _ -> 1. -. (1. /. 10.)
       | (Ast.Gt | Ast.Ge | Ast.Lt | Ast.Le), _ -> 1. /. 3.)
    | P_or (a, b) ->
      let fa = factor ctx block a and fb = factor ctx block b in
      fa +. fb -. (fa *. fb)
    | P_and (a, b) ->
      (* assumes column values are independent *)
      factor ctx block a *. factor ctx block b
    | P_not a -> 1. -. factor ctx block a
  in
  clamp f

and cardinality_product ctx (block : block) =
  List.fold_left
    (fun acc (tr : table_ref) -> acc *. (Ctx.rel_stats ctx tr.rel).ncard)
    1. block.tables

(* Product of the factors' selectivities, with runtime feedback applied:
   when a table's local factor set has a recorded observed selectivity
   (a previous execution grossly misestimated it), the record replaces the
   estimated product of exactly those factors — the remaining factors are
   still estimated and multiplied in. *)
and factors_product ctx block factors =
  let estimated fs =
    List.fold_left
      (fun acc (f : Normalize.factor) -> acc *. factor ctx block f.pred)
      1. fs
  in
  if not ctx.Ctx.use_feedback then estimated factors
  else begin
    let covered = ref [] in
    let fb = ref 1.0 in
    List.iter
      (fun (tr : table_ref) ->
        let local = Feedback.local_factors factors ~tab:tr.tab_idx in
        match Feedback.key ~params:ctx.Ctx.params local with
        | None -> ()
        | Some key ->
          (match Feedback.lookup ctx tr.rel ~key with
           | Some sel ->
             fb := !fb *. sel;
             covered := local @ !covered
           | None -> ()))
      block.tables;
    let rest =
      List.filter (fun f -> not (List.memq f !covered)) factors
    in
    !fb *. estimated rest
  end

and block_qcard ctx (block : block) =
  let factors = Normalize.factors_of_block block in
  let sel = factors_product ctx block factors in
  let base = cardinality_product ctx block *. sel in
  if block.scalar_agg then 1.
  else
    match block.group_by with
    | [] -> base
    | cols ->
      (* distinct-group estimate: product of grouping-column cardinalities
         when statistics provide them, bounded by the pre-grouping
         cardinality *)
      let groups =
        List.fold_left
          (fun acc c ->
            match Ctx.column_icard ctx block c with
            | Some icard -> acc *. icard
            | None -> acc *. 10.)
          1. cols
      in
      Float.min base groups
