open Semant

let clamp f = if f < 0. then 0. else if f > 1. then 1. else f

(* --- TABLE 1, case by case ------------------------------------------- *)

(* column = value *)
let eq_selectivity ctx block c =
  match Ctx.column_icard ctx block c with
  | Some icard -> 1. /. icard  (* even distribution among key values *)
  | None -> 1. /. 10.

(* column1 = column2 *)
let col_eq_col ctx block c1 c2 =
  match Ctx.column_icard ctx block c1, Ctx.column_icard ctx block c2 with
  | Some i1, Some i2 -> 1. /. Float.max i1 i2
  | Some i, None | None, Some i -> 1. /. i
  | None, None -> 1. /. 10.

(* column > value (or any other open comparison): linear interpolation when
   the column is arithmetic and the value known at access path selection.
   A degenerate key range (high = low: every tuple carries the single key
   value) is decided outright by that value — eq-like, not the 1/3 default
   the interpolation guard used to fall through to. *)
let range_selectivity ctx block c op (v : Rel.Value.t) =
  match Ctx.column_range ctx block c, Rel.Value.to_float v with
  | Some (low, high), Some value when high > low ->
    let f =
      match op with
      | Ast.Gt | Ast.Ge -> (high -. value) /. (high -. low)
      | Ast.Lt | Ast.Le -> (value -. low) /. (high -. low)
      | Ast.Eq | Ast.Ne -> assert false
    in
    clamp f
  | Some (low, high), Some value when high = low ->
    let sat =
      match op with
      | Ast.Gt -> low > value
      | Ast.Ge -> low >= value
      | Ast.Lt -> low < value
      | Ast.Le -> low <= value
      | Ast.Eq | Ast.Ne -> assert false
    in
    if sat then 1. else 0.
  | _ -> 1. /. 3.

let between_selectivity ctx block c lo hi =
  match
    Ctx.column_range ctx block c, Rel.Value.to_float lo, Rel.Value.to_float hi
  with
  | Some (low, high), Some v1, Some v2 when high > low ->
    clamp ((v2 -. v1) /. (high -. low))
  | Some (low, high), Some v1, Some v2 when high = low ->
    (* single-key column: the whole relation is in or out of the range *)
    if low >= v1 && low <= v2 then 1. else 0.
  | _ -> 1. /. 4.

let rec factor ctx block (p : spred) =
  let f =
    match p with
    | P_cmp (E_col c, Ast.Eq, (E_const _ | E_param _))
    | P_cmp ((E_const _ | E_param _), Ast.Eq, E_col c) ->
      (* the 1/ICARD estimate needs only the index, not the value, so it
         also covers ? placeholders *)
      eq_selectivity ctx block c
    | P_cmp (E_col c, Ast.Ne, (E_const _ | E_param _))
    | P_cmp ((E_const _ | E_param _), Ast.Ne, E_col c) ->
      1. -. eq_selectivity ctx block c
    | P_cmp (E_col c1, Ast.Eq, E_col c2) -> col_eq_col ctx block c1 c2
    | P_cmp (E_col c1, Ast.Ne, E_col c2) -> 1. -. col_eq_col ctx block c1 c2
    | P_cmp (E_col c, ((Ast.Gt | Ast.Ge | Ast.Lt | Ast.Le) as op), E_const v) ->
      range_selectivity ctx block c op v
    | P_cmp (E_const v, ((Ast.Gt | Ast.Ge | Ast.Lt | Ast.Le) as op), E_col c) ->
      let flipped =
        match op with
        | Ast.Gt -> Ast.Lt | Ast.Ge -> Ast.Le
        | Ast.Lt -> Ast.Gt | Ast.Le -> Ast.Ge
        | Ast.Eq | Ast.Ne -> assert false
      in
      range_selectivity ctx block c flipped v
    | P_cmp (_, Ast.Eq, _) -> 1. /. 10.
    | P_cmp (_, Ast.Ne, _) -> 1. -. (1. /. 10.)
    | P_cmp (_, (Ast.Gt | Ast.Ge | Ast.Lt | Ast.Le), _) -> 1. /. 3.
    | P_between (E_col c, E_const lo, E_const hi) ->
      between_selectivity ctx block c lo hi
    | P_between _ -> 1. /. 4.
    | P_in_list (e, vs) ->
      let per =
        match e with
        | E_col c -> eq_selectivity ctx block c
        | _ -> 1. /. 10.
      in
      (* "allowed to be no more than 1/2" *)
      Float.min 0.5 (float_of_int (List.length vs) *. per)
    | P_in_sub { block = sub; negated; _ } ->
      (* F = (expected cardinality of the subquery result) /
             (product of the cardinalities of all the relations in the
              subquery's FROM-list) *)
      let f = clamp (block_qcard ctx sub /. cardinality_product ctx sub) in
      if negated then 1. -. f else f
    | P_cmp_sub (e, op, _) ->
      (* Scalar subquery compared to an expression: the value is unknown at
         access path selection, so use the no-index defaults of TABLE 1. *)
      (match op, e with
       | Ast.Eq, E_col c -> eq_selectivity ctx block c
       | Ast.Eq, _ -> 1. /. 10.
       | Ast.Ne, E_col c -> 1. -. eq_selectivity ctx block c
       | Ast.Ne, _ -> 1. -. (1. /. 10.)
       | (Ast.Gt | Ast.Ge | Ast.Lt | Ast.Le), _ -> 1. /. 3.)
    | P_or (a, b) ->
      let fa = factor ctx block a and fb = factor ctx block b in
      fa +. fb -. (fa *. fb)
    | P_and (a, b) ->
      (* assumes column values are independent *)
      factor ctx block a *. factor ctx block b
    | P_not a -> 1. -. factor ctx block a
  in
  clamp f

and cardinality_product ctx (block : block) =
  List.fold_left
    (fun acc (tr : table_ref) -> acc *. (Ctx.rel_stats ctx tr.rel).ncard)
    1. block.tables

and block_qcard ctx (block : block) =
  let factors = Normalize.factors_of_block block in
  let sel =
    List.fold_left (fun acc f -> acc *. factor ctx block f.Normalize.pred) 1. factors
  in
  let base = cardinality_product ctx block *. sel in
  if block.scalar_agg then 1.
  else
    match block.group_by with
    | [] -> base
    | cols ->
      (* distinct-group estimate: product of grouping-column cardinalities
         when indexes provide them, bounded by the pre-grouping cardinality *)
      let groups =
        List.fold_left
          (fun acc c ->
            match Ctx.column_icard ctx block c with
            | Some icard -> acc *. icard
            | None -> acc *. 10.)
          1. cols
      in
      Float.min base groups

let factors_product ctx block factors =
  List.fold_left
    (fun acc (f : Normalize.factor) -> acc *. factor ctx block f.pred)
    1. factors
