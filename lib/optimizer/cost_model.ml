type t = {
  pages : float;
  rsi : float;
}

let zero = { pages = 0.; rsi = 0. }
let add a b = { pages = a.pages +. b.pages; rsi = a.rsi +. b.rsi }
let scale k c = { pages = k *. c.pages; rsi = k *. c.rsi }
let total ~w c = c.pages +. (w *. c.rsi)
let compare_total ~w a b = Float.compare (total ~w a) (total ~w b)

type situation =
  | Unique_index_eq
  | Clustered_matching of float
  | Nonclustered_matching of float
  | Clustered_nonmatching
  | Nonclustered_nonmatching
  | Segment_scan_cost

(* Cardenas' approximation of Yao's formula: expected distinct pages touched
   when [k] tuples are drawn uniformly from [m] pages. *)
let distinct_pages ~tuples:k ~pages:m =
  if m <= 0. || k <= 0. then 0.
  else m *. (1. -. ((1. -. (1. /. m)) ** k))

let single_relation (ctx : Ctx.t) ~(rel : Ctx.rel_stats)
    ~(idx : Ctx.idx_stats option) ~situation ~rsicard =
  let buffer = float_of_int ctx.buffer_pages in
  let need_idx () =
    match idx with
    | Some i -> i
    | None -> invalid_arg "Cost_model.single_relation: index situation without index"
  in
  let pages =
    match situation with
    | Unique_index_eq -> 1. +. 1.
    | Clustered_matching f ->
      let i = need_idx () in
      f *. (i.nindx +. rel.tcard)
    | Nonclustered_matching f ->
      let i = need_idx () in
      if ctx.Ctx.refined_pages then begin
        (* extension: leaf pages plus Cardenas distinct data pages; when the
           working set exceeds the buffer, pages are re-fetched and the
           page-per-tuple bound takes over *)
        let touched = distinct_pages ~tuples:(f *. rel.ncard) ~pages:rel.tcard in
        if touched <= buffer then (f *. i.nindx) +. touched
        else (f *. i.nindx) +. Float.min (f *. rel.ncard) (touched *. (touched /. buffer))
      end
      else if Float.min (f *. rel.ncard) rel.tcard <= buffer then
        (* "or F(preds) * (NINDX + TCARD) if this number fits in the System R
           buffer": the TCARD form applies when the data pages the scattered
           TIDs reference stay resident, so no page is fetched twice *)
        f *. (i.nindx +. rel.tcard)
      else f *. (i.nindx +. rel.ncard)
    | Clustered_nonmatching ->
      let i = need_idx () in
      i.nindx +. rel.tcard
    | Nonclustered_nonmatching ->
      let i = need_idx () in
      if i.nindx +. rel.tcard <= buffer then i.nindx +. rel.tcard
      else i.nindx +. rel.ncard
    | Segment_scan_cost -> rel.tcard /. rel.p
  in
  let rsi = match situation with Unique_index_eq -> 1. | _ -> rsicard in
  { pages; rsi }

let temp_pages ~tuples ~tuples_per_page =
  if tuples <= 0. then 0. else Float.max 1. (ceil (tuples /. tuples_per_page))

let sort_cost (ctx : Ctx.t) ~tuples ~tuples_per_page =
  if tuples <= 0. then zero
  else
    let tp = temp_pages ~tuples ~tuples_per_page in
    let passes =
      Rss.Sort.passes ~buffer_pages:ctx.buffer_pages
        ~tuples:(int_of_float (ceil tuples))
        ~tuples_per_page ()
    in
    (* each pass writes every page; every pass after the first also re-reads *)
    let pages = tp *. float_of_int passes +. (tp *. float_of_int (max 0 (passes - 1))) in
    { pages; rsi = 0. }

let nested_loop_join ~outer ~outer_card ~inner_per_open =
  add outer (scale outer_card inner_per_open)

let merge_join_sorted_inner (_ctx : Ctx.t) ~outer ~inner_build ~temppages ~matches =
  (* C-inner(sorted list) = TEMPPAGES/N + W*RSICARD, applied N times: each
     temp page is fetched once during the whole merge. *)
  add (add outer inner_build) { pages = temppages; rsi = matches }

let merge_join_ordered_inner ~outer ~inner_whole ~matches =
  let extra_rsi = Float.max 0. (matches -. inner_whole.rsi) in
  add (add outer inner_whole) { pages = 0.; rsi = extra_rsi }

(* --- parallel execution --------------------------------------------------- *)

(* Per-worker startup overhead in RSI-call units: queue setup, task
   submission, and the gather synchronization — CPU-side work proportional
   to the degree of parallelism, not to the data. *)
let parallel_startup_rsi = 500.

let parallel ~dop c =
  (* CPU (RSI calls) divides across the workers; I/O does not — every page
     still passes through the single shared buffer pool, so a parallel plan
     only wins where it is CPU-bound (large W, big RSICARD). *)
  let d = float_of_int dop in
  { pages = c.pages; rsi = (parallel_startup_rsi *. d) +. (c.rsi /. d) }

let choose_dop ~w ~max_dop c =
  if max_dop <= 1 then None
  else begin
    (* candidate degrees: powers of two up to the cap, plus the cap itself *)
    let rec doubles acc d =
      if d > max_dop then List.rev acc else doubles (d :: acc) (2 * d)
    in
    let cands = doubles [] 2 in
    let cands = if List.mem max_dop cands then cands else cands @ [ max_dop ] in
    let best =
      List.fold_left
        (fun best dop ->
          let pc = parallel ~dop c in
          match best with
          | Some (_, bc) when total ~w bc <= total ~w pc -> best
          | _ -> Some (dop, pc))
        None cands
    in
    match best with
    | Some (dop, pc) when total ~w pc < total ~w c -> Some (dop, pc)
    | _ -> None  (* strictly-better rule: serial wins ties and small inputs *)
  end

let pp ppf c = Format.fprintf ppf "{pages=%.2f; rsi=%.2f}" c.pages c.rsi
