type order = (Semant.col_ref * Ast.order_dir) list

(* Union-find over column references, keyed by (tab, col). *)
type env = {
  parent : (Semant.col_ref, Semant.col_ref) Hashtbl.t;
}

let rec find env (c : Semant.col_ref) =
  match Hashtbl.find_opt env.parent c with
  | None -> c
  | Some p when p = c -> c
  | Some p ->
    let root = find env p in
    Hashtbl.replace env.parent c root;
    root

let union env a b =
  let ra = find env a and rb = find env b in
  if ra <> rb then Hashtbl.replace env.parent ra rb

let build _block factors =
  let env = { parent = Hashtbl.create 16 } in
  List.iter
    (fun (f : Normalize.factor) ->
      match f.equi_join with
      | Some (a, b) -> union env a b
      | None -> ())
    factors;
  env

let canon env c = find env c

let canonical_order env o = List.map (fun (c, d) -> (canon env c, d)) o

let equivalent env a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ca, da) (cb, db) -> canon env ca = canon env cb && da = db)
       a b

let satisfies env ~produced ~required =
  let produced = canonical_order env produced in
  let required = canonical_order env required in
  let rec go p r =
    match p, r with
    | _, [] -> true
    | [], _ :: _ -> false
    | (pc, pd) :: p', (rc, rd) :: r' -> pc = rc && pd = rd && go p' r'
  in
  go produced required

(* Grouping imposes its order on the plan (the executor aggregates over
   group-ordered streams); an ORDER BY over grouped output is applied to the
   few result rows after aggregation. *)
let satisfies_grouping env ~produced ~cols =
  let want = List.sort_uniq compare (List.map (canon env) cols) in
  let produced = canonical_order env produced in
  let rec eat want produced =
    match want, produced with
    | [], _ -> true
    | _, [] -> false
    | _, (c, _) :: rest ->
      if List.mem c want then eat (List.filter (( <> ) c) want) rest else false
  in
  eat want produced

let required_order (block : Semant.block) =
  match block.group_by with
  | _ :: _ as cols -> List.map (fun c -> (c, Ast.Asc)) cols
  | [] -> block.order_by

let interesting_columns env block factors =
  let join_cols =
    List.concat_map
      (fun (f : Normalize.factor) ->
        match f.equi_join with Some (a, b) -> [ a; b ] | None -> [])
      factors
  in
  let req = List.map fst (required_order block) in
  List.sort_uniq compare (List.map (canon env) (join_cols @ req))

let truncate_interesting env block factors o =
  let interesting = interesting_columns env block factors in
  let rec go = function
    | [] -> []
    | (c, d) :: rest ->
      let c = canon env c in
      if List.mem c interesting then (c, d) :: go rest else []
  in
  go o

(* Hash-consed order keys: solution tables compare many truncated orders per
   pruning pass, so map each distinct order to a small int once and let the
   hot path hash ints instead of column-ref lists. *)
type interner = {
  ids : (order, int) Hashtbl.t;
  mutable next : int;
}

let interner () = { ids = Hashtbl.create 16; next = 0 }

let intern t o =
  match Hashtbl.find_opt t.ids o with
  | Some id -> id
  | None ->
    let id = t.next in
    t.next <- id + 1;
    Hashtbl.add t.ids o id;
    id

let pp_order ppf o =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf ((c : Semant.col_ref), d) ->
      Format.fprintf ppf "t%d.c%d%s" c.tab c.col
        (match d with Ast.Asc -> "" | Ast.Desc -> " DESC"))
    ppf o
