(** Cardinality feedback: runtime corrections to selectivity estimates.

    On a gross misestimate (q-error above the engine's threshold) the
    executor records the observed selectivity of a single-table block's
    restriction on the relation's catalog entry, keyed by a canonical
    rendering of the factor set. The optimizer consults the record in place
    of the estimated factor product; recording bumps the relation's
    [feedback_gen] so the plan cache retires exactly the plans costed under
    the stale estimate. Corrections are cleared by UPDATE STATISTICS. *)

val local_factors :
  Normalize.factor list -> tab:int -> Normalize.factor list
(** Factors referencing exactly FROM position [tab], with no subqueries and
    no outer references — the ones whose observed joint selectivity is
    unambiguous from a block's output count. *)

val key : params:Rel.Value.t array -> Normalize.factor list -> string option
(** Canonical, factor-order-insensitive key for the set, with parameter
    slots rendered as their bound values so the plan-cache path and the
    direct path agree. [None] for an empty set (no restriction to
    correct). *)

val lookup : Ctx.t -> Catalog.relation -> key:string -> float option
(** The recorded observed selectivity, when feedback is enabled. *)

val record : Catalog.relation -> key:string -> float -> bool
(** Store an observed selectivity; [true] (with a [feedback_gen] bump) when
    it is new or differs materially from what was recorded, [false] when the
    existing record already matches — re-observing a settled correction must
    not retire plans forever. *)
