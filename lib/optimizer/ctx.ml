type t = {
  catalog : Catalog.t;
  w : float;
  buffer_pages : int;
  use_heuristic : bool;
  use_interesting_orders : bool;
  use_bnb : bool;
  refined_pages : bool;
  max_dop : int;
  force_parallel : bool;
  use_histograms : bool;
  use_feedback : bool;
  params : Rel.Value.t array;
}

type rel_stats = {
  ncard : float;
  tcard : float;
  p : float;
}

type idx_stats = {
  icard : float;
  nindx : float;
  low : Rel.Value.t option;
  high : Rel.Value.t option;
  clustered : bool;
  unique : bool;
}

let default_w = 0.5

let create ?(w = default_w) ?buffer_pages ?(use_heuristic = true)
    ?(use_interesting_orders = true) ?(use_bnb = true) ?(refined_pages = false)
    ?(max_dop = 1) ?(force_parallel = false) ?(use_histograms = true)
    ?(use_feedback = true) ?(params = [||]) catalog =
  let buffer_pages =
    Option.value buffer_pages
      ~default:(Rss.Pager.buffer_pages (Catalog.pager catalog))
  in
  { catalog; w; buffer_pages; use_heuristic; use_interesting_orders; use_bnb;
    refined_pages; max_dop; force_parallel; use_histograms; use_feedback;
    params }

(* "We assume that a lack of statistics implies that the relation is small,
   so an arbitrary factor is chosen." *)
let default_rel_stats = { ncard = 30.; tcard = 3.; p = 1.0 }

let rel_stats _t (rel : Catalog.relation) =
  match rel.rstats with
  | None -> default_rel_stats
  | Some s ->
    { ncard = float_of_int s.Stats.ncard;
      tcard = float_of_int (max 1 s.Stats.tcard);
      p = (if s.Stats.p <= 0. then 1.0 else s.Stats.p) }

let idx_stats t (idx : Catalog.index) =
  let r = rel_stats t idx.rel in
  match idx.istats with
  | None ->
    { icard = 10.;
      nindx = 1.;
      low = None;
      high = None;
      clustered = idx.clustered;
      unique = false }
  | Some s ->
    let icard = float_of_int (max 1 s.Stats.icard) in
    (* UPDATE STATISTICS measures the fraction of consecutive index entries
       sharing a data page; when that ratio is decisively high the index
       behaves as clustered regardless of how it was declared, so cost it
       that way. The declared flag still wins when no ratio is measured. *)
    let clustered = idx.clustered || s.Stats.cluster_ratio >= 0.8 in
    { icard;
      nindx = float_of_int (max 1 s.Stats.nindx);
      low = s.Stats.low_key;
      high = s.Stats.high_key;
      clustered;
      unique = icard >= r.ncard && r.ncard > 0. }

let indexes_of t rel = Catalog.indexes_on t.catalog rel

let table_rel (block : Semant.block) tab =
  (List.nth block.tables tab).Semant.rel

(* Indexes on the referenced column, leading-column first. Prefer a
   single-column index (its ICARD is exactly the column's cardinality);
   otherwise accept a multi-column index led by the column, whose composite
   ICARD overestimates the column's. *)
let leading_indexes t block (c : Semant.col_ref) =
  let rel = table_rel block c.tab in
  List.filter
    (fun (idx : Catalog.index) ->
      match idx.key_cols with lead :: _ -> lead = c.col | [] -> false)
    (indexes_of t rel)

(* Histogram statistics for the referenced column, when collected and not
   switched off (SET HISTOGRAMS OFF pins the paper's TABLE 1 behaviour). *)
let column_stats t block (c : Semant.col_ref) =
  if not t.use_histograms then None
  else
    let rel = table_rel block c.tab in
    if c.col < Array.length rel.Catalog.cstats then
      Some rel.Catalog.cstats.(c.col).Stats.hist
    else None

(* Bound parameter value, for value-aware estimates on the plan-cache path
   (the extracted literals of the canonicalized statement). Only consulted
   when histograms are on, so SET HISTOGRAMS OFF reproduces the paper's
   value-independent estimates exactly. *)
let param_value t i =
  if t.use_histograms && i >= 0 && i < Array.length t.params then
    Some t.params.(i)
  else None

let column_icard t block c =
  (* Histogram statistics cover every column, so the TABLE 1 requirement of
     "an index on the column" no longer gates the 1/ICARD-style estimate:
     the measured distinct count serves even for never-indexed columns. *)
  let from_hist =
    match column_stats t block c with
    | Some h when Histogram.distinct h > 0 ->
      Some (float_of_int (Histogram.distinct h))
    | _ -> None
  in
  match from_hist with
  | Some _ as r -> r
  | None ->
    let candidates = leading_indexes t block c in
    let with_stats =
      List.filter (fun (i : Catalog.index) -> i.istats <> None) candidates
    in
    let single =
      List.find_opt (fun (i : Catalog.index) -> List.length i.key_cols = 1) with_stats
    in
    (match single, with_stats with
     | Some i, _ | None, i :: _ -> Some (idx_stats t i).icard
     | None, [] -> None)

let column_range t block c =
  let to_float v = Rel.Value.to_float v in
  List.find_map
    (fun (i : Catalog.index) ->
      let s = idx_stats t i in
      match s.low, s.high with
      | Some lo, Some hi ->
        (match to_float lo, to_float hi with
         | Some lo, Some hi when hi >= lo -> Some (lo, hi)
         | _ -> None)
      | _ -> None)
    (leading_indexes t block c)

let tuples_per_page t rel =
  let s = rel_stats t rel in
  if s.tcard <= 0. then s.ncard else max 1. (s.ncard /. s.tcard)
