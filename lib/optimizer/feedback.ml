(* Cardinality feedback: runtime corrections to selectivity estimates.

   When a query's actual output cardinality grossly misses the optimizer's
   estimate (q-error above the engine's threshold), the executor records the
   observed selectivity of the block's restriction against the relation's
   catalog entry. The record is keyed by a canonical rendering of the
   factor set it corrects, so the next optimization of any statement with
   the same restriction — cached or not — sees the measured value instead
   of the misestimated product. Recording bumps the relation's
   [feedback_gen], which cached plans depend on like [stats_version]: the
   plans costed under the stale estimate are retired and nothing else.

   Only single-table blocks whose factors are all *local* — referencing
   exactly that table, with no subqueries and no outer references — are
   recorded: for those the observed output cardinality is unambiguously
   NCARD * (product of factor selectivities), so actual/NCARD is the
   corrected product. Joins and correlated predicates fold several unknowns
   into one count and are left to the estimator. *)

open Semant

let rec expr_has_outer = function
  | E_outer _ -> true
  | E_col _ | E_const _ | E_param _ -> false
  | E_binop (_, a, b) -> expr_has_outer a || expr_has_outer b
  | E_agg (_, e) -> expr_has_outer e

let rec pred_has_outer = function
  | P_cmp (a, _, b) -> expr_has_outer a || expr_has_outer b
  | P_between (a, b, c) ->
    expr_has_outer a || expr_has_outer b || expr_has_outer c
  | P_in_list (e, _) -> expr_has_outer e
  | P_in_sub _ | P_cmp_sub _ -> true (* conservatively non-local *)
  | P_and (a, b) | P_or (a, b) -> pred_has_outer a || pred_has_outer b
  | P_not a -> pred_has_outer a

let local_factors factors ~tab =
  List.filter
    (fun (f : Normalize.factor) ->
      f.tables = [ tab ] && (not f.has_subquery) && not (pred_has_outer f.pred))
    factors

(* --- canonical rendering ---------------------------------------------- *)

(* The same restriction must produce the same key whether it arrives with
   inline literals (direct optimization) or as extracted parameters (the
   plan-cache path), so parameter slots render as their bound value when
   one is known. Table positions are stripped — the key lives on the
   relation, and a single-table block's factors reference only it. *)

let value_str (v : Rel.Value.t) =
  match v with
  | Rel.Value.Str s -> Printf.sprintf "%S" s
  | _ -> Rel.Value.to_string v

let expr_str ~params e =
  let buf = Buffer.create 32 in
  let rec go e =
    match e with
    | E_col c -> Buffer.add_string buf (Printf.sprintf "c%d" c.col)
    | E_outer _ -> Buffer.add_string buf "<outer>" (* excluded by filter *)
    | E_const v -> Buffer.add_string buf (value_str v)
    | E_param i ->
      if i >= 0 && i < Array.length params then
        Buffer.add_string buf (value_str params.(i))
      else Buffer.add_string buf (Printf.sprintf "?%d" i)
    | E_binop (op, a, b) ->
      let s =
        match op with
        | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"
      in
      Buffer.add_char buf '(';
      go a; Buffer.add_string buf s; go b;
      Buffer.add_char buf ')'
    | E_agg (fn, a) ->
      let name =
        match fn with
        | Ast.Avg -> "avg" | Ast.Min -> "min" | Ast.Max -> "max"
        | Ast.Sum -> "sum" | Ast.Count -> "count"
      in
      Buffer.add_string buf name;
      Buffer.add_char buf '(';
      go a;
      Buffer.add_char buf ')'
  in
  go e;
  Buffer.contents buf

let cmp_str (c : Ast.comparison) =
  match c with
  | Ast.Eq -> "=" | Ast.Ne -> "<>"
  | Ast.Lt -> "<" | Ast.Le -> "<=" | Ast.Gt -> ">" | Ast.Ge -> ">="

let rec pred_str ~params p =
  match p with
  | P_cmp (a, op, b) ->
    Printf.sprintf "%s%s%s" (expr_str ~params a) (cmp_str op)
      (expr_str ~params b)
  | P_between (e, lo, hi) ->
    Printf.sprintf "%s between %s and %s" (expr_str ~params e)
      (expr_str ~params lo) (expr_str ~params hi)
  | P_in_list (e, vs) ->
    Printf.sprintf "%s in(%s)" (expr_str ~params e)
      (String.concat "," (List.map value_str (List.sort_uniq Rel.Value.compare vs)))
  | P_in_sub _ | P_cmp_sub _ -> "<sub>" (* excluded by filter *)
  | P_and (a, b) ->
    Printf.sprintf "(%s and %s)" (pred_str ~params a) (pred_str ~params b)
  | P_or (a, b) ->
    Printf.sprintf "(%s or %s)" (pred_str ~params a) (pred_str ~params b)
  | P_not a -> Printf.sprintf "not(%s)" (pred_str ~params a)

let key ~params factors =
  match factors with
  | [] -> None
  | fs ->
    (* order-insensitive: WHERE a=1 AND b=2 keys like WHERE b=2 AND a=1 *)
    Some
      (String.concat "&"
         (List.sort String.compare
            (List.map
               (fun (f : Normalize.factor) -> pred_str ~params f.pred)
               fs)))

(* --- catalog-side record/lookup --------------------------------------- *)

(* Feedback tables are touched from read-only statements running under the
   engine's *shared* latch (lookup during optimization, record at cursor
   close), so concurrent readers may race on a relation's hashtable; one
   engine-wide mutex covers both sides — the critical sections are a find
   or a replace, far below statement cost. *)
let guard = Mutex.create ()

let guarded f =
  Mutex.lock guard;
  Fun.protect ~finally:(fun () -> Mutex.unlock guard) f

let lookup (ctx : Ctx.t) (rel : Catalog.relation) ~key =
  if ctx.Ctx.use_feedback then
    guarded (fun () -> Hashtbl.find_opt rel.Catalog.feedback key)
  else None

(* A correction is only worth a plan-cache retirement when it is new or has
   drifted materially (>10% relative) from what is already recorded —
   otherwise re-recording the same observation would retire plans forever. *)
let materially_different old_sel new_sel =
  let denom = Float.max (Float.abs old_sel) 1e-9 in
  Float.abs (new_sel -. old_sel) /. denom > 0.1

let record (rel : Catalog.relation) ~key sel =
  guarded (fun () ->
      let changed =
        match Hashtbl.find_opt rel.Catalog.feedback key with
        | None -> true
        | Some old_sel -> materially_different old_sel sel
      in
      if changed then begin
        Hashtbl.replace rel.Catalog.feedback key sel;
        rel.Catalog.feedback_gen <- rel.Catalog.feedback_gen + 1
      end;
      changed)
