(** Selectivity factors — TABLE 1 of the paper, now histogram-aware.

    F is the expected fraction of tuples satisfying a predicate; query
    cardinality QCARD is the product of FROM-list cardinalities times the
    product of the boolean factors' selectivities; RSICARD multiplies only
    the sargable factors' selectivities.

    When UPDATE STATISTICS has collected per-column equi-depth histograms
    (and they are not disabled — SET HISTOGRAMS OFF), equality, range,
    BETWEEN, IN-list and column=column factors are estimated from measured
    value distributions, with NULL fractions discounted; parameter slots
    from the plan-cache canonicalization resolve to their extracted
    literals. With histograms off or absent, every case falls back to
    TABLE 1's constants, byte-identical to the paper's behaviour. *)

val factor : Ctx.t -> Semant.block -> Semant.spred -> float
(** Selectivity of one boolean factor. Always in [0, 1]. *)

val factors_product : Ctx.t -> Semant.block -> Normalize.factor list -> float
(** Product of the factors' selectivities, with runtime cardinality-feedback
    corrections applied: a recorded observed selectivity for a table's local
    factor set replaces the estimated product of exactly those factors. *)

val block_qcard : Ctx.t -> Semant.block -> float
(** Estimated result cardinality of a whole block: cardinalities times
    selectivities, then 1 for a scalar aggregate and a distinct-groups
    estimate under GROUP BY. Used both for top blocks and for the
    "expected cardinality of the subquery result" in TABLE 1's
    [columnA IN subquery] rule. *)

val cardinality_product : Ctx.t -> Semant.block -> float
(** Product of the cardinalities of all relations in the block's FROM list. *)
