(** Execution plans — the structural form of an optimizer solution.

    A solution is an ordered list of the relations to be joined, the join
    method for each join, and a plan for how each relation is accessed,
    including any sorts of the inner relation or the composite (the paper's
    Access Specification Language, rendered as an ADT). Plans are left-deep:
    the outer operand of every join is the composite built so far, the inner
    a single relation, exactly as the search in section 5 constructs them. *)

type bound_value =
  | Bv_const of Rel.Value.t
  | Bv_param of int
      (** a [?] placeholder: constant for the whole execution, bound when the
          prepared plan runs *)
  | Bv_outer of Semant.col_ref
      (** value taken from the current tuple of an already-joined (outer)
          relation — how a join predicate becomes an index lookup key inside
          a nested-loop join *)

type key_bound = {
  values : bound_value list;  (** prefix of the index key *)
  inclusive : bool;
}

type access =
  | Seg_scan
  | Idx_scan of {
      index : Catalog.index;
      lo : key_bound option;
      hi : key_bound option;
      dir : Ast.order_dir;
          (** scan direction: [Desc] walks the leaf chain backwards, serving
              descending interesting orders without a sort *)
      matching : bool;  (** the index matched at least one boolean factor *)
    }

type node =
  | Scan of {
      tab : int;                       (** FROM position *)
      access : access;
      sargs : Semant.spred list;       (** factors applied inside the RSS *)
      residual : Semant.spred list;    (** applied on returned tuples; may
                                           reference outer tables when the
                                           scan is a join inner *)
    }
  | Nl_join of { outer : t; inner : t }
  | Merge_join of {
      outer : t;
      inner : t;                       (** produces join-column order *)
      outer_col : Semant.col_ref;
      inner_col : Semant.col_ref;
      residual : Semant.spred list;    (** further join predicates *)
    }
  | Sort of { input : t; key : Interesting_order.order }
      (** materialize into a temporary list sorted on [key] *)
  | Filter of { input : t; preds : Semant.spred list }
      (** residual predicates evaluated above the joins — in particular the
          boolean factors containing subqueries *)
  | Exchange of { input : t; dop : int }
      (** run [dop] copies of [input] over disjoint contiguous partitions of
          its leftmost scan, on worker domains, and gather their outputs in
          partition order — result identical to running [input] serially.
          Inserted by the optimizer's parallelization post-pass when the
          DOP-adjusted cost wins *)

and t = {
  node : node;
  tables : int list;        (** FROM positions, in composite layout order *)
  order : Interesting_order.order;  (** produced tuple order; [] unordered *)
  cost : Cost_model.t;
  out_card : float;
      (** estimated tuples produced; for a join inner this is per opening *)
}

val scan_tab : t -> int option
(** The FROM position when the plan is a bare (possibly filtered) single
    scan. *)

val join_methods_used : t -> string list
(** ["NL"; "MERGE"] etc., outermost last; for tests and explain output. *)

val pp : ?names:(int -> string) -> Format.formatter -> t -> unit
(** Tree rendering; [names] maps FROM positions to display names. *)

val describe : ?names:(int -> string) -> t -> string
(** One-line summary, e.g.
    ["MERGE(NL(Idx(EMP.JOB), Idx(JOB.JOB)), Sort(Seg(DEPT)))"]. *)
