(* Exchange/gather plumbing for parallel query execution.

   A [Plan.Exchange] node runs [dop] copies of its input plan over disjoint
   contiguous partitions of the input's leftmost scan, one per worker domain,
   and gathers their outputs {e in partition order}. Because each partition
   covers a contiguous, in-order slice of what the serial scan would visit —
   a run of segment pages, or a key range of the index — concatenating the
   partition outputs reproduces the serial output byte for byte.

   This module knows nothing about cursors: [gather] takes an
   [open_partition] callback (supplied by [Cursor]) so the dependency points
   Cursor -> Parallel only. *)

type partition =
  | Pages of int list
  | Key_range of Rss.Btree.bound option * Rss.Btree.bound option

(* --- partitioning -------------------------------------------------------- *)

let chunk_pages ~dop pages =
  let n = List.length pages in
  if n < 2 then None
  else begin
    let arr = Array.of_list pages in
    let dop = min dop n in
    let chunks =
      List.init dop (fun i ->
          let lo = i * n / dop and hi = (i + 1) * n / dop in
          Array.to_list (Array.sub arr lo (hi - lo)))
    in
    if List.length chunks < 2 then None
    else Some (List.map (fun c -> Pages c) chunks)
  end

let index_partitions env ~dop (index : Catalog.index) lo hi =
  (* Bound resolution can fail here only on malformed plans (a [Bv_outer]
     with no outer frame — the planner never parallelizes those); decline
     rather than crash. *)
  match
    let lo = Option.map (Eval.bound_key env None) lo in
    let hi = Option.map (Eval.bound_key env None) hi in
    Rss.Btree.split_range ?lo ?hi index.Catalog.btree ~parts:dop
  with
  | [] | [ _ ] -> None
  | ranges -> Some (List.map (fun (l, h) -> Key_range (l, h)) ranges)
  | exception _ -> None

let rec partitions block env (p : Plan.t) ~dop =
  if dop < 2 then None
  else
    match p.Plan.node with
    | Plan.Scan { tab; access; _ } ->
      let tr = List.nth block.Semant.tables tab in
      let rel = tr.Semant.rel in
      (match access with
       | Plan.Seg_scan ->
         chunk_pages ~dop (Rss.Segment.page_ids rel.Catalog.segment)
       | Plan.Idx_scan { dir = Ast.Asc; index; lo; hi; _ } ->
         index_partitions env ~dop index lo hi
       | Plan.Idx_scan _ -> None)
    | Plan.Nl_join { outer; _ } ->
      (* partition the outer; each worker re-opens the full inner per outer
         tuple, exactly as the serial nested loop does *)
      partitions block env outer ~dop
    | Plan.Sort _ | Plan.Filter _ | Plan.Merge_join _ | Plan.Exchange _ ->
      None

(* --- bounded chunk queue -------------------------------------------------- *)

(* One single-producer/single-consumer queue per partition. Tuples travel in
   chunks (arrays) so queue traffic — lock, signal — is paid once per
   [chunk_size] tuples, not per tuple. Capacity bounds a fast producer
   running ahead of the in-order consumer. *)

let chunk_size = 64
let chunk_cap = 16

exception Cancelled

type queue = {
  buf : Rel.Tuple.t array array;  (* ring of chunks *)
  mutable head : int;
  mutable len : int;
  mutable closed : bool;     (* producer done: drain and move on *)
  mutable cancelled : bool;  (* consumer gone: producer aborts *)
  qm : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
}

let q_create () =
  { buf = Array.make chunk_cap [||];
    head = 0;
    len = 0;
    closed = false;
    cancelled = false;
    qm = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create () }

let q_push q chunk =
  Mutex.lock q.qm;
  while q.len = chunk_cap && not q.cancelled do
    Condition.wait q.not_full q.qm
  done;
  if q.cancelled then begin
    Mutex.unlock q.qm;
    raise Cancelled
  end;
  q.buf.((q.head + q.len) mod chunk_cap) <- chunk;
  q.len <- q.len + 1;
  Condition.signal q.not_empty;
  Mutex.unlock q.qm

let q_pop q =
  Mutex.lock q.qm;
  while q.len = 0 && not q.closed do
    Condition.wait q.not_empty q.qm
  done;
  if q.len = 0 then begin
    Mutex.unlock q.qm;
    None  (* closed and drained *)
  end
  else begin
    let c = q.buf.(q.head) in
    q.buf.(q.head) <- [||];
    q.head <- (q.head + 1) mod chunk_cap;
    q.len <- q.len - 1;
    Condition.signal q.not_full;
    Mutex.unlock q.qm;
    Some c
  end

let q_close q =
  Mutex.lock q.qm;
  q.closed <- true;
  Condition.broadcast q.not_empty;
  Mutex.unlock q.qm

let q_cancel q =
  Mutex.lock q.qm;
  q.cancelled <- true;
  Condition.broadcast q.not_full;
  Condition.broadcast q.not_empty;
  Mutex.unlock q.qm

(* --- gather --------------------------------------------------------------- *)

type gather = {
  next : unit -> Rel.Tuple.t option;
  close : unit -> unit;
}

(* The producer body: open the partition's cursor on the worker and stream
   its tuples into the queue in chunks. Whatever happens, the queue ends up
   closed so the consumer can move past it; Cancelled is a normal exit
   (early close), anything else is stored in the job for [join] to
   re-raise. *)
let producer q open_partition part () =
  match
    let cur = open_partition part in
    let buf = Array.make chunk_size ([||] : Rel.Tuple.t) in
    let n = ref 0 in
    let flush () =
      if !n > 0 then begin
        q_push q (Array.sub buf 0 !n);
        n := 0
      end
    in
    let rec loop () =
      match cur () with
      | None -> flush ()
      | Some t ->
        buf.(!n) <- t;
        incr n;
        if !n = chunk_size then flush ();
        loop ()
    in
    loop ()
  with
  | () -> q_close q
  | exception Cancelled -> q_close q
  | exception e ->
    q_close q;
    raise e

let gather pager ~partitions ~open_partition =
  Rss.Pager.enter_parallel pager;
  Rss.Domain_pool.ensure (List.length partitions);
  let slots =
    List.map
      (fun part ->
        let q = q_create () in
        let job =
          Rss.Domain_pool.submit (fun () ->
              Rss.Pager.as_worker pager (producer q open_partition part))
        in
        (q, job))
      partitions
  in
  let remaining = ref slots in
  let finished = ref false in
  let finish () =
    if not !finished then begin
      finished := true;
      Rss.Pager.exit_parallel pager
    end
  in
  let drain_remaining () =
    List.iter (fun (q, _) -> q_cancel q) !remaining;
    List.iter
      (fun (_, j) -> match Rss.Domain_pool.join j with () | (exception _) -> ())
      !remaining;
    remaining := []
  in
  let chunk = ref [||] in
  let ci = ref 0 in
  let rec next () =
    if !ci < Array.length !chunk then begin
      let t = (!chunk).(!ci) in
      incr ci;
      Some t
    end
    else
      match !remaining with
      | [] ->
        finish ();
        None
      | (q, job) :: rest ->
        (match q_pop q with
         | Some c ->
           chunk := c;
           ci := 0;
           next ()
         | None ->
           (* partition drained; surface its producer's outcome before
              touching the next partition *)
           remaining := rest;
           (match Rss.Domain_pool.join job with
            | () -> next ()
            | exception e ->
              drain_remaining ();
              finish ();
              raise e))
  in
  let close () =
    chunk := [||];
    ci := 0;
    drain_remaining ();
    finish ()
  in
  { next; close }

(* --- parallel map (for fan-out with small results) ------------------------ *)

let map_partitions pager thunks =
  match thunks with
  | [] -> []
  | [ f ] -> [ f () ]
  | _ ->
    Rss.Pager.enter_parallel pager;
    Fun.protect
      ~finally:(fun () -> Rss.Pager.exit_parallel pager)
      (fun () ->
        Rss.Domain_pool.ensure (List.length thunks);
        let jobs =
          List.map
            (fun f ->
              Rss.Domain_pool.submit (fun () -> Rss.Pager.as_worker pager f))
            thunks
        in
        (* join every job before raising so no worker outlives the bracket *)
        let results =
          List.map
            (fun j ->
              match Rss.Domain_pool.join j with
              | v -> Ok v
              | exception e -> Error e)
            jobs
        in
        List.map (function Ok v -> v | Error e -> raise e) results)
