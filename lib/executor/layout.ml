(* The offset table is dense: [offsets.(tab)] is the composite offset of FROM
   position [tab], or -1 when the table is not part of this layout. Layouts
   are built once per plan opening while [pos] runs on the per-tuple path, so
   resolution must be O(1). *)
type t = {
  order : int list;    (* FROM positions in layout order *)
  offsets : int array; (* indexed by FROM position; -1 = absent *)
  width : int;
}

let empty = { order = []; offsets = [||]; width = 0 }

let table_width (block : Semant.block) tab =
  let tr = List.nth block.Semant.tables tab in
  Rel.Schema.arity tr.Semant.rel.Catalog.schema

let of_assoc order pairs width =
  let size = List.fold_left (fun acc (tab, _) -> max acc (tab + 1)) 0 pairs in
  let offsets = Array.make size (-1) in
  List.iter (fun (tab, off) -> offsets.(tab) <- off) pairs;
  { order; offsets; width }

let of_tables block tabs =
  let pairs, width =
    List.fold_left
      (fun (acc, off) tab -> ((tab, off) :: acc, off + table_width block tab))
      ([], 0) tabs
  in
  of_assoc tabs (List.rev pairs) width

let mem t tab = tab < Array.length t.offsets && t.offsets.(tab) >= 0

let concat a b =
  List.iter
    (fun tab ->
      if mem a tab then
        invalid_arg (Printf.sprintf "Layout.concat: table %d on both sides" tab))
    b.order;
  let pairs =
    List.map (fun tab -> (tab, a.offsets.(tab))) a.order
    @ List.map (fun tab -> (tab, b.offsets.(tab) + a.width)) b.order
  in
  of_assoc (a.order @ b.order) pairs (a.width + b.width)

let width t = t.width

let pos t (c : Semant.col_ref) =
  if c.tab >= Array.length t.offsets then raise Not_found
  else
    let off = Array.unsafe_get t.offsets c.tab in
    if off < 0 then raise Not_found else off + c.col

let tables t = t.order
