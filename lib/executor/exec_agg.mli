(** Aggregation and select-list projection over a block's composite tuples.

    Handles the three result shapes: plain projection, scalar aggregates
    (single row, as required of subqueries like SELECT AVG(SALARY)), and
    GROUP BY over group-ordered input.

    [compiled] (default true) closes the select list over the layout once and
    applies the resulting closures per tuple/group; [~compiled:false] keeps
    the per-tuple AST interpretation as the measurable baseline. Both modes
    produce identical results. *)

val project :
  ?compiled:bool ->
  Eval.env ->
  Layout.t ->
  Semant.block ->
  Rel.Tuple.t list ->
  Rel.Tuple.t list
(** Evaluate the select list per tuple (no aggregates). *)

val scalar_aggregate :
  ?compiled:bool ->
  Eval.env ->
  Layout.t ->
  Semant.block ->
  Rel.Tuple.t list ->
  Rel.Tuple.t
(** One output row; aggregates over the whole input (COUNT of empty input is
    0, other aggregates NULL). *)

val group_aggregate :
  ?compiled:bool ->
  Eval.env ->
  Layout.t ->
  Semant.block ->
  Rel.Tuple.t list ->
  Rel.Tuple.t list
(** Input must arrive ordered on the GROUP BY columns; one row per group. *)
