(** Streaming aggregation and select-list projection over a block's composite
    tuples.

    Handles the three result shapes: plain projection, scalar aggregates
    (single row, as required of subqueries like SELECT AVG(SALARY)), and
    GROUP BY over group-ordered input. The [*_stream] functions consume a
    plan cursor one tuple at a time: aggregation folds each tuple into
    constant-size accumulators (running count / sum / min / max — no
    per-group tuple or value lists), so a group's state is O(1) regardless
    of cardinality and the input is never materialized.

    [compiled] (default true) closes the select list over the layout once
    and applies position-resolved closures per tuple; [~compiled:false]
    evaluates per-tuple parts by re-walking the AST, the measurable
    baseline. Both modes stream and produce identical results.

    The list-based entry points ([project], [scalar_aggregate],
    [group_aggregate]) are the pre-streaming implementation, kept as the
    measurable "before" for bench `hot`; the executor no longer uses them. *)

val project_stream :
  ?compiled:bool ->
  Eval.env ->
  Layout.t ->
  Semant.block ->
  (unit -> Rel.Tuple.t option) ->
  Rel.Tuple.t list
(** Evaluate the select list per cursor tuple (no aggregates). *)

val scalar_stream :
  ?compiled:bool ->
  Eval.env ->
  Layout.t ->
  Semant.block ->
  (unit -> Rel.Tuple.t option) ->
  Rel.Tuple.t
(** One output row; aggregates folded over the whole cursor in a single pass
    (COUNT of empty input is 0, other aggregates NULL). *)

val group_stream :
  ?compiled:bool ->
  Eval.env ->
  Layout.t ->
  Semant.block ->
  (unit -> Rel.Tuple.t option) ->
  Rel.Tuple.t list
(** Input must arrive ordered on the GROUP BY columns; one row per group,
    emitted as each group's sorted run streams by. *)

(** {2 List-based baseline (bench `hot` "before")} *)

val project :
  ?compiled:bool ->
  Eval.env ->
  Layout.t ->
  Semant.block ->
  Rel.Tuple.t list ->
  Rel.Tuple.t list

val scalar_aggregate :
  ?compiled:bool ->
  Eval.env ->
  Layout.t ->
  Semant.block ->
  Rel.Tuple.t list ->
  Rel.Tuple.t

val group_aggregate :
  ?compiled:bool ->
  Eval.env ->
  Layout.t ->
  Semant.block ->
  Rel.Tuple.t list ->
  Rel.Tuple.t list
