(** Streaming aggregation and select-list projection over a block's composite
    tuples.

    Handles the three result shapes: plain projection, scalar aggregates
    (single row, as required of subqueries like SELECT AVG(SALARY)), and
    GROUP BY over group-ordered input. The [*_stream] functions consume a
    plan cursor one tuple at a time: aggregation folds each tuple into
    constant-size accumulators (running count / sum / min / max — no
    per-group tuple or value lists), so a group's state is O(1) regardless
    of cardinality and the input is never materialized.

    [compiled] (default true) closes the select list over the layout once
    and applies position-resolved closures per tuple; [~compiled:false]
    evaluates per-tuple parts by re-walking the AST, the measurable
    baseline. Both modes stream and produce identical results.

    The list-based entry points ([project], [scalar_aggregate],
    [group_aggregate]) are the pre-streaming implementation, kept as the
    measurable "before" for bench `hot`; the executor no longer uses them. *)

val project_stream :
  ?compiled:bool ->
  Eval.env ->
  Layout.t ->
  Semant.block ->
  (unit -> Rel.Tuple.t option) ->
  Rel.Tuple.t list
(** Evaluate the select list per cursor tuple (no aggregates). *)

val scalar_stream :
  ?compiled:bool ->
  Eval.env ->
  Layout.t ->
  Semant.block ->
  (unit -> Rel.Tuple.t option) ->
  Rel.Tuple.t
(** One output row; aggregates folded over the whole cursor in a single pass
    (COUNT of empty input is 0, other aggregates NULL). *)

val group_stream :
  ?compiled:bool ->
  Eval.env ->
  Layout.t ->
  Semant.block ->
  (unit -> Rel.Tuple.t option) ->
  Rel.Tuple.t list
(** Input must arrive ordered on the GROUP BY columns; one row per group,
    emitted as each group's sorted run streams by. *)

(** {2 Partial aggregation (parallel execution)}

    Each worker folds its partition of the input into a {!partial} —
    per-group constant-size accumulators built in a hash table, no sort —
    and the main domain merges the partials. For a grouped block the merged
    result equals [group_stream] over the sorted serial input: merged groups
    are re-sorted ascending on the grouping columns (the order group plans
    always request), compare-equal keys re-merge keeping the earlier group,
    and representatives come from the earliest partition (= serial first
    occurrence, since partitions are contiguous and in order). Count/Min/Max
    and all-int Sum/Avg merges are exact; float sums may associate
    differently than the serial fold (see DESIGN.md). *)

type partial

val fold_partial :
  ?compiled:bool ->
  Eval.env ->
  Layout.t ->
  Semant.block ->
  (unit -> Rel.Tuple.t option) ->
  partial
(** Fold one partition's cursor (scan order, not group order). *)

val merge_partials :
  Layout.t -> Semant.block -> partial list -> Rel.Tuple.t list
(** Merge in partition order; returns the block's output rows (one for a
    scalar block, one per group in ascending group order otherwise). *)

(** {2 List-based baseline (bench `hot` "before")} *)

val project :
  ?compiled:bool ->
  Eval.env ->
  Layout.t ->
  Semant.block ->
  Rel.Tuple.t list ->
  Rel.Tuple.t list

val scalar_aggregate :
  ?compiled:bool ->
  Eval.env ->
  Layout.t ->
  Semant.block ->
  Rel.Tuple.t list ->
  Rel.Tuple.t

val group_aggregate :
  ?compiled:bool ->
  Eval.env ->
  Layout.t ->
  Semant.block ->
  Rel.Tuple.t list ->
  Rel.Tuple.t list
