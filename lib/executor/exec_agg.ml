(* Evaluate a select expression over a set of tuples, computing aggregate
   subexpressions over the set and everything else on a representative tuple
   (valid because non-aggregate parts are grouping columns or constants,
   enforced by Semant).

   Two evaluation modes: the compiled one (default) closes each select
   expression over the layout once — aggregate arguments, grouping keys and
   representative-tuple parts all become position-resolved closures applied
   per tuple/group — while the interpreted one re-walks the AST each time
   (kept as the measurable baseline). *)

let combine_agg (f : Ast.agg_fn) values =
  match f, values with
  | Ast.Count, vs -> Rel.Value.Int (List.length vs)
  | (Ast.Avg | Ast.Sum | Ast.Min | Ast.Max), [] -> Rel.Value.Null
  | Ast.Sum, v :: vs -> List.fold_left Rel.Value.add v vs
  | Ast.Avg, v :: vs ->
    let sum = List.fold_left Rel.Value.add v vs in
    let n = List.length values in
    (match Rel.Value.to_float sum with
     | Some s -> Rel.Value.Float (s /. float_of_int n)
     | None -> Rel.Value.Null)
  | Ast.Min, v :: vs ->
    List.fold_left (fun a b -> if Rel.Value.compare b a < 0 then b else a) v vs
  | Ast.Max, v :: vs ->
    List.fold_left (fun a b -> if Rel.Value.compare b a > 0 then b else a) v vs

let non_null_values per_tuple tuples =
  List.filter_map
    (fun tuple ->
      let v = per_tuple tuple in
      if Rel.Value.is_null v then None else Some v)
    tuples

let eval_agg env layout (f : Ast.agg_fn) inner tuples =
  combine_agg f
    (non_null_values (fun tuple -> Eval.expr env { Eval.layout; tuple } inner) tuples)

let rec eval_over env layout (e : Semant.sexpr) tuples rep =
  match e with
  | Semant.E_agg (f, inner) -> eval_agg env layout f inner tuples
  | Semant.E_binop (op, a, b) ->
    Eval.arith_fn op (eval_over env layout a tuples rep)
      (eval_over env layout b tuples rep)
  | Semant.E_col _ | Semant.E_outer _ | Semant.E_const _ | Semant.E_param _ ->
    (match rep with
     | Some tuple -> Eval.expr env { Eval.layout; tuple } e
     | None -> Rel.Value.Null)

(* Compiled counterpart of [eval_over]: a closure from (group, representative)
   to the output value, with every per-tuple subexpression pre-compiled. *)
let rec compile_over env layout (e : Semant.sexpr) :
    Rel.Tuple.t list -> Rel.Tuple.t option -> Rel.Value.t =
  match e with
  | Semant.E_agg (f, inner) ->
    let fi = Eval.compile_expr env layout inner in
    fun tuples _rep -> combine_agg f (non_null_values fi tuples)
  | Semant.E_binop (op, a, b) ->
    let fa = compile_over env layout a and fb = compile_over env layout b in
    let f = Eval.arith_fn op in
    fun tuples rep -> f (fa tuples rep) (fb tuples rep)
  | Semant.E_col _ | Semant.E_outer _ | Semant.E_const _ | Semant.E_param _ ->
    let fe = Eval.compile_expr env layout e in
    fun _tuples rep ->
      (match rep with Some tuple -> fe tuple | None -> Rel.Value.Null)

let project ?(compiled = true) env layout (block : Semant.block) tuples =
  if compiled then begin
    let fs = List.map (fun (e, _) -> Eval.compile_expr env layout e) block.Semant.select in
    List.map (fun tuple -> Array.of_list (List.map (fun f -> f tuple) fs)) tuples
  end
  else
    List.map
      (fun tuple ->
        Array.of_list
          (List.map
             (fun (e, _) -> Eval.expr env { Eval.layout; tuple } e)
             block.Semant.select))
      tuples

let row_over env layout (block : Semant.block) tuples =
  let rep = match tuples with [] -> None | t :: _ -> Some t in
  Array.of_list
    (List.map (fun (e, _) -> eval_over env layout e tuples rep) block.Semant.select)

let compiled_rows env layout (block : Semant.block) groups =
  let fs = List.map (fun (e, _) -> compile_over env layout e) block.Semant.select in
  List.map
    (fun tuples ->
      let rep = match tuples with [] -> None | t :: _ -> Some t in
      Array.of_list (List.map (fun f -> f tuples rep) fs))
    groups

let scalar_aggregate ?(compiled = true) env layout block tuples =
  if compiled then List.hd (compiled_rows env layout block [ tuples ])
  else row_over env layout block tuples

let group_aggregate ?(compiled = true) env layout (block : Semant.block) tuples =
  let key_pos = List.map (Layout.pos layout) block.Semant.group_by in
  let same a b = Rel.Tuple.compare_on key_pos a b = 0 in
  let rec groups acc current = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | t :: rest ->
      (match current with
       | [] -> groups acc [ t ] rest
       | c :: _ when same c t -> groups acc (t :: current) rest
       | _ -> groups (List.rev current :: acc) [ t ] rest)
  in
  let gs = groups [] [] tuples in
  if compiled then compiled_rows env layout block gs
  else List.map (row_over env layout block) gs
