(* Streaming aggregation and projection over a block's composite tuples.

   The select list is compiled once per cursor into a [shape]: every
   aggregate subexpression gets a slot in a constant-size accumulator array
   (running count / fold value — no per-group tuple or value lists), and the
   select expressions become closures from (accumulators, representative
   tuple) to output values. Input tuples are then folded one at a time as
   the cursor produces them; a group's state is O(1) regardless of its
   cardinality.

   Two per-tuple evaluation modes, as everywhere in the executor: compiled
   (default) closes aggregate arguments and representative-tuple parts into
   position-resolved closures; interpreted ([~compiled:false]) re-walks the
   AST per tuple through [Eval.expr] and is kept as the measurable baseline.
   Both stream — the baseline measures per-tuple interpretation, not
   materialization.

   The pre-streaming list-based entry points ([project], [scalar_aggregate],
   [group_aggregate]) are kept verbatim below as the measurable "before" for
   bench `hot`; the executor no longer calls them. *)

(* --- O(1) aggregate accumulators ---------------------------------------- *)

(* One accumulator per aggregate occurrence: [seen] counts non-null argument
   values, [v] carries the running left fold (first value, then
   Value.add/min/max with each next one) — the same fold order as the
   list-based [combine_agg], so results are bit-identical.

   While every value folded so far has been an [Int], the running value lives
   unboxed in [ik] ([int_mode = true]) so integer SUM/MIN/MAX allocate
   nothing per tuple; the first non-int argument flushes [ik] into [v] and
   the fold continues through [Rel.Value.add]/[compare] exactly as before. *)
type acc = {
  mutable seen : int;
  mutable v : Rel.Value.t;
  mutable ik : int;
  mutable int_mode : bool;
}

let flush (a : acc) =
  if a.int_mode then begin
    a.v <- Rel.Value.Int a.ik;
    a.int_mode <- false
  end

(* Specialize the per-tuple step for one aggregate occurrence: the [agg_fn]
   dispatch happens once at compile time, and int arguments fold through
   [ik] without boxing. Count never touches the fold value at all. *)
let compile_step (f : Ast.agg_fn) (arg : Rel.Tuple.t -> Rel.Value.t) :
    acc -> Rel.Tuple.t -> unit =
  match f with
  | Ast.Count ->
    fun a t ->
      (match arg t with Rel.Value.Null -> () | _ -> a.seen <- a.seen + 1)
  | Ast.Sum | Ast.Avg ->
    fun a t ->
      (match arg t with
       | Rel.Value.Null -> ()
       | Rel.Value.Int x ->
         if a.seen = 0 then begin
           a.ik <- x;
           a.int_mode <- true
         end
         else if a.int_mode then a.ik <- a.ik + x
         else a.v <- Rel.Value.add a.v (Rel.Value.Int x);
         a.seen <- a.seen + 1
       | x ->
         if a.seen = 0 then a.v <- x
         else begin
           flush a;
           a.v <- Rel.Value.add a.v x
         end;
         a.seen <- a.seen + 1)
  | Ast.Min ->
    fun a t ->
      (match arg t with
       | Rel.Value.Null -> ()
       | Rel.Value.Int x ->
         if a.seen = 0 then begin
           a.ik <- x;
           a.int_mode <- true
         end
         else if a.int_mode then (if x < a.ik then a.ik <- x)
         else if Rel.Value.compare (Rel.Value.Int x) a.v < 0 then
           a.v <- Rel.Value.Int x;
         a.seen <- a.seen + 1
       | x ->
         if a.seen = 0 then a.v <- x
         else begin
           flush a;
           if Rel.Value.compare x a.v < 0 then a.v <- x
         end;
         a.seen <- a.seen + 1)
  | Ast.Max ->
    fun a t ->
      (match arg t with
       | Rel.Value.Null -> ()
       | Rel.Value.Int x ->
         if a.seen = 0 then begin
           a.ik <- x;
           a.int_mode <- true
         end
         else if a.int_mode then (if x > a.ik then a.ik <- x)
         else if Rel.Value.compare (Rel.Value.Int x) a.v > 0 then
           a.v <- Rel.Value.Int x;
         a.seen <- a.seen + 1
       | x ->
         if a.seen = 0 then a.v <- x
         else begin
           flush a;
           if Rel.Value.compare x a.v > 0 then a.v <- x
         end;
         a.seen <- a.seen + 1)

let acc_final (f : Ast.agg_fn) (a : acc) =
  flush a;
  match f with
  | Ast.Count -> Rel.Value.Int a.seen
  | (Ast.Sum | Ast.Avg | Ast.Min | Ast.Max) when a.seen = 0 -> Rel.Value.Null
  | Ast.Sum | Ast.Min | Ast.Max -> a.v
  | Ast.Avg ->
    (match Rel.Value.to_float a.v with
     | Some s -> Rel.Value.Float (s /. float_of_int a.seen)
     | None -> Rel.Value.Null)

(* --- compiled select-list shape ------------------------------------------ *)

type shape = {
  steps : (acc -> Rel.Tuple.t -> unit) array;
      (* per aggregate occurrence: specialized fold step closed over the
         compiled/interpreted argument — no agg_fn dispatch per tuple *)
  fns : Ast.agg_fn array;
      (* the aggregate function of each slot, for merging partial
         accumulators (parallel aggregation) *)
  outputs : (acc array -> Rel.Tuple.t option -> Rel.Value.t) list;
      (* one per select expression, applied to (accumulators, representative) *)
}

(* Close the select list over the layout once. [compiled] decides how the
   per-tuple parts evaluate: position-resolved closures, or [Eval.expr]
   re-walking the AST per tuple (the baseline's per-tuple cost). *)
let compile_shape ~compiled env layout (block : Semant.block) : shape =
  let aggs = ref [] in
  let agg_fns = ref [] in
  let n_aggs = ref 0 in
  let per_tuple (e : Semant.sexpr) : Rel.Tuple.t -> Rel.Value.t =
    if compiled then Eval.compile_expr env layout e
    else fun tuple -> Eval.expr env { Eval.layout; tuple } e
  in
  let rec out (e : Semant.sexpr) : acc array -> Rel.Tuple.t option -> Rel.Value.t =
    match e with
    | Semant.E_agg (f, inner) ->
      let slot = !n_aggs in
      incr n_aggs;
      aggs := compile_step f (per_tuple inner) :: !aggs;
      agg_fns := f :: !agg_fns;
      fun accs _rep -> acc_final f accs.(slot)
    | Semant.E_binop (op, a, b) ->
      let fa = out a and fb = out b in
      let f = Eval.arith_fn op in
      fun accs rep -> f (fa accs rep) (fb accs rep)
    | Semant.E_col _ | Semant.E_outer _ | Semant.E_const _ | Semant.E_param _ ->
      let fe = per_tuple e in
      fun _accs rep ->
        (match rep with Some tuple -> fe tuple | None -> Rel.Value.Null)
  in
  let outputs = List.map (fun (e, _) -> out e) block.Semant.select in
  { steps = Array.of_list (List.rev !aggs);
    fns = Array.of_list (List.rev !agg_fns);
    outputs }

let fresh_accs shape =
  Array.init (Array.length shape.steps) (fun _ ->
      { seen = 0; v = Rel.Value.Null; ik = 0; int_mode = false })

let step_accs shape accs tuple =
  for i = 0 to Array.length shape.steps - 1 do
    (Array.unsafe_get shape.steps i) (Array.unsafe_get accs i) tuple
  done

let finish shape accs rep =
  Array.of_list (List.map (fun f -> f accs rep) shape.outputs)

(* --- streaming entry points ---------------------------------------------- *)

let project_stream ?(compiled = true) env layout (block : Semant.block) next =
  let fs =
    List.map
      (fun (e, _) ->
        if compiled then Eval.compile_expr env layout e
        else fun tuple -> Eval.expr env { Eval.layout; tuple } e)
      block.Semant.select
  in
  let rec go acc =
    match next () with
    | None -> List.rev acc
    | Some tuple -> go (Array.of_list (List.map (fun f -> f tuple) fs) :: acc)
  in
  go []

let scalar_stream ?(compiled = true) env layout (block : Semant.block) next =
  let shape = compile_shape ~compiled env layout block in
  let accs = fresh_accs shape in
  let rep = ref None in
  let rec go () =
    match next () with
    | None -> ()
    | Some tuple ->
      (match !rep with None -> rep := Some tuple | Some _ -> ());
      step_accs shape accs tuple;
      go ()
  in
  go ();
  finish shape accs !rep

let group_stream ?(compiled = true) env layout (block : Semant.block) next =
  let shape = compile_shape ~compiled env layout block in
  let key_pos = List.map (Layout.pos layout) block.Semant.group_by in
  (* boundary test runs once per input tuple; the common single int grouping
     column compares unboxed instead of walking the position list. *)
  let same_group =
    match key_pos with
    | [ p ] ->
      fun a b ->
        (match Rel.Tuple.get a p, Rel.Tuple.get b p with
         | Rel.Value.Int x, Rel.Value.Int y -> x = y
         | va, vb -> Rel.Value.compare va vb = 0)
    | ps -> fun a b -> Rel.Tuple.compare_on ps a b = 0
  in
  (* input arrives ordered on the grouping columns; a key change closes the
     current group. The representative tuple doubles as the group key. *)
  let rows = ref [] in
  let accs = ref (fresh_accs shape) in
  let rep = ref None in
  let close () =
    match !rep with
    | None -> ()
    | Some _ as r ->
      rows := finish shape !accs r :: !rows;
      accs := fresh_accs shape;
      rep := None
  in
  let rec go () =
    match next () with
    | None -> close ()
    | Some tuple ->
      (match !rep with
       | Some r when not (same_group r tuple) -> close ()
       | _ -> ());
      (match !rep with None -> rep := Some tuple | Some _ -> ());
      step_accs shape !accs tuple;
      go ()
  in
  go ();
  List.rev !rows

(* --- partial aggregation (parallel execution) ----------------------------- *)

(* Merge accumulator [b] into [a], where [a] holds the fold over an earlier
   (partition-order) slice of the input and [b] a later one. Count adds;
   Sum/Avg add the running values (exact for the all-int fast path — int
   addition is associative; float sums can differ from the serial fold order
   and that is documented in DESIGN.md); Min/Max keep [a] on ties, matching
   the serial left-fold which also keeps the earlier value. *)
let merge_acc (f : Ast.agg_fn) (a : acc) (b : acc) =
  match f with
  | Ast.Count -> a.seen <- a.seen + b.seen
  | Ast.Sum | Ast.Avg ->
    if b.seen = 0 then ()
    else if a.seen = 0 then begin
      a.v <- b.v;
      a.ik <- b.ik;
      a.int_mode <- b.int_mode;
      a.seen <- b.seen
    end
    else begin
      (if a.int_mode && b.int_mode then a.ik <- a.ik + b.ik
       else begin
         flush a;
         flush b;
         a.v <- Rel.Value.add a.v b.v
       end);
      a.seen <- a.seen + b.seen
    end
  | Ast.Min ->
    if b.seen = 0 then ()
    else if a.seen = 0 then begin
      a.v <- b.v;
      a.ik <- b.ik;
      a.int_mode <- b.int_mode;
      a.seen <- b.seen
    end
    else begin
      (if a.int_mode && b.int_mode then begin
         if b.ik < a.ik then a.ik <- b.ik
       end
       else begin
         flush a;
         flush b;
         if Rel.Value.compare b.v a.v < 0 then a.v <- b.v
       end);
      a.seen <- a.seen + b.seen
    end
  | Ast.Max ->
    if b.seen = 0 then ()
    else if a.seen = 0 then begin
      a.v <- b.v;
      a.ik <- b.ik;
      a.int_mode <- b.int_mode;
      a.seen <- b.seen
    end
    else begin
      (if a.int_mode && b.int_mode then begin
         if b.ik > a.ik then a.ik <- b.ik
       end
       else begin
         flush a;
         flush b;
         if Rel.Value.compare b.v a.v > 0 then a.v <- b.v
       end);
      a.seen <- a.seen + b.seen
    end

let merge_accs fns (a : acc array) (b : acc array) =
  Array.iteri (fun i f -> merge_acc f a.(i) b.(i)) fns

type partial = {
  p_shape : shape;
  p_scalar : (acc array * Rel.Tuple.t option) option;
      (* scalar block: the accumulators and first tuple of this slice *)
  p_groups : (Rel.Tuple.t * acc array) list;
      (* grouped block: (representative = first tuple of the group in this
         slice, accumulators), in first-seen order *)
}

let fold_partial ?(compiled = true) env layout (block : Semant.block) next =
  let shape = compile_shape ~compiled env layout block in
  if block.Semant.group_by = [] then begin
    let accs = fresh_accs shape in
    let rep = ref None in
    let rec go () =
      match next () with
      | None -> ()
      | Some tuple ->
        (match !rep with None -> rep := Some tuple | Some _ -> ());
        step_accs shape accs tuple;
        go ()
    in
    go ();
    { p_shape = shape; p_scalar = Some (accs, !rep); p_groups = [] }
  end
  else begin
    (* The slice arrives in scan order, not group order, so groups build in a
       hash table; first-seen order is recorded because the first occurrence
       in the earliest slice is the serial representative. *)
    let key_pos =
      Array.of_list (List.map (Layout.pos layout) block.Semant.group_by)
    in
    let key_of tuple = Array.map (Rel.Tuple.get tuple) key_pos in
    let tbl : (Rel.Value.t array, Rel.Tuple.t * acc array) Hashtbl.t =
      Hashtbl.create 64
    in
    let order = ref [] in
    let rec go () =
      match next () with
      | None -> ()
      | Some tuple ->
        let k = key_of tuple in
        let accs =
          match Hashtbl.find_opt tbl k with
          | Some (_, accs) -> accs
          | None ->
            let accs = fresh_accs shape in
            Hashtbl.add tbl k (tuple, accs);
            order := k :: !order;
            accs
        in
        step_accs shape accs tuple;
        go ()
    in
    go ();
    let groups = List.rev_map (fun k -> Hashtbl.find tbl k) !order in
    { p_shape = shape; p_scalar = None; p_groups = groups }
  end

let merge_partials layout (block : Semant.block) (partials : partial list) =
  match partials with
  | [] -> []
  | first :: _ ->
    let shape = first.p_shape in
    let fns = shape.fns in
    if block.Semant.group_by = [] then begin
      let accs = fresh_accs shape in
      let rep = ref None in
      List.iter
        (fun p ->
          match p.p_scalar with
          | None -> invalid_arg "Exec_agg.merge_partials: scalar/group mix"
          | Some (pa, prep) ->
            merge_accs fns accs pa;
            (match !rep, prep with
             | None, (Some _ as r) -> rep := r
             | _ -> ()))
        partials;
      [ finish shape accs !rep ]
    end
    else begin
      let key_pos =
        Array.of_list (List.map (Layout.pos layout) block.Semant.group_by)
      in
      let tbl : (Rel.Value.t array, Rel.Tuple.t * acc array) Hashtbl.t =
        Hashtbl.create 64
      in
      let order = ref [] in
      List.iter
        (fun p ->
          List.iter
            (fun (rep, accs) ->
              let k = Array.map (Rel.Tuple.get rep) key_pos in
              match Hashtbl.find_opt tbl k with
              | Some (_, a) -> merge_accs fns a accs
              | None ->
                Hashtbl.add tbl k (rep, accs);
                order := k :: !order)
            p.p_groups)
        partials;
      let merged = List.rev_map (fun k -> Hashtbl.find tbl k) !order in
      (* Serial output order is ascending on the grouping columns (group
         plans always sort Asc); among compare-equal keys, first-seen order =
         partition order = serial input order, so a stable sort restores the
         serial sequence and picks the serial representative. *)
      let cmp_rep (r1, _) (r2, _) =
        let rec go i =
          if i >= Array.length key_pos then 0
          else
            let p = key_pos.(i) in
            let d = Rel.Value.compare (Rel.Tuple.get r1 p) (Rel.Tuple.get r2 p) in
            if d <> 0 then d else go (i + 1)
        in
        go 0
      in
      let sorted = List.stable_sort cmp_rep merged in
      (* Hash-key equality can be finer than [Value.compare] equality
         (e.g. NaN never equals itself structurally): re-merge
         compare-equal neighbours, keeping the left (earlier) group. *)
      let rec squash = function
        | (r1, a1) :: ((r2, a2) :: rest) when cmp_rep (r1, a1) (r2, a2) = 0 ->
          merge_accs fns a1 a2;
          squash ((r1, a1) :: rest)
        | g :: rest -> g :: squash rest
        | [] -> []
      in
      List.map (fun (rep, accs) -> finish shape accs (Some rep)) (squash sorted)
    end

(* --- list-based baseline (bench `hot` "before") -------------------------- *)

let combine_agg (f : Ast.agg_fn) values =
  match f, values with
  | Ast.Count, vs -> Rel.Value.Int (List.length vs)
  | (Ast.Avg | Ast.Sum | Ast.Min | Ast.Max), [] -> Rel.Value.Null
  | Ast.Sum, v :: vs -> List.fold_left Rel.Value.add v vs
  | Ast.Avg, v :: vs ->
    let sum = List.fold_left Rel.Value.add v vs in
    let n = List.length values in
    (match Rel.Value.to_float sum with
     | Some s -> Rel.Value.Float (s /. float_of_int n)
     | None -> Rel.Value.Null)
  | Ast.Min, v :: vs ->
    List.fold_left (fun a b -> if Rel.Value.compare b a < 0 then b else a) v vs
  | Ast.Max, v :: vs ->
    List.fold_left (fun a b -> if Rel.Value.compare b a > 0 then b else a) v vs

let non_null_values per_tuple tuples =
  List.filter_map
    (fun tuple ->
      let v = per_tuple tuple in
      if Rel.Value.is_null v then None else Some v)
    tuples

let eval_agg env layout (f : Ast.agg_fn) inner tuples =
  combine_agg f
    (non_null_values (fun tuple -> Eval.expr env { Eval.layout; tuple } inner) tuples)

let rec eval_over env layout (e : Semant.sexpr) tuples rep =
  match e with
  | Semant.E_agg (f, inner) -> eval_agg env layout f inner tuples
  | Semant.E_binop (op, a, b) ->
    Eval.arith_fn op (eval_over env layout a tuples rep)
      (eval_over env layout b tuples rep)
  | Semant.E_col _ | Semant.E_outer _ | Semant.E_const _ | Semant.E_param _ ->
    (match rep with
     | Some tuple -> Eval.expr env { Eval.layout; tuple } e
     | None -> Rel.Value.Null)

let rec compile_over env layout (e : Semant.sexpr) :
    Rel.Tuple.t list -> Rel.Tuple.t option -> Rel.Value.t =
  match e with
  | Semant.E_agg (f, inner) ->
    let fi = Eval.compile_expr env layout inner in
    fun tuples _rep -> combine_agg f (non_null_values fi tuples)
  | Semant.E_binop (op, a, b) ->
    let fa = compile_over env layout a and fb = compile_over env layout b in
    let f = Eval.arith_fn op in
    fun tuples rep -> f (fa tuples rep) (fb tuples rep)
  | Semant.E_col _ | Semant.E_outer _ | Semant.E_const _ | Semant.E_param _ ->
    let fe = Eval.compile_expr env layout e in
    fun _tuples rep ->
      (match rep with Some tuple -> fe tuple | None -> Rel.Value.Null)

let project ?(compiled = true) env layout (block : Semant.block) tuples =
  if compiled then begin
    let fs = List.map (fun (e, _) -> Eval.compile_expr env layout e) block.Semant.select in
    List.map (fun tuple -> Array.of_list (List.map (fun f -> f tuple) fs)) tuples
  end
  else
    List.map
      (fun tuple ->
        Array.of_list
          (List.map
             (fun (e, _) -> Eval.expr env { Eval.layout; tuple } e)
             block.Semant.select))
      tuples

let row_over env layout (block : Semant.block) tuples =
  let rep = match tuples with [] -> None | t :: _ -> Some t in
  Array.of_list
    (List.map (fun (e, _) -> eval_over env layout e tuples rep) block.Semant.select)

let compiled_rows env layout (block : Semant.block) groups =
  let fs = List.map (fun (e, _) -> compile_over env layout e) block.Semant.select in
  List.map
    (fun tuples ->
      let rep = match tuples with [] -> None | t :: _ -> Some t in
      Array.of_list (List.map (fun f -> f tuples rep) fs))
    groups

let scalar_aggregate ?(compiled = true) env layout block tuples =
  if compiled then List.hd (compiled_rows env layout block [ tuples ])
  else row_over env layout block tuples

let group_aggregate ?(compiled = true) env layout (block : Semant.block) tuples =
  let key_pos = List.map (Layout.pos layout) block.Semant.group_by in
  let same a b = Rel.Tuple.compare_on key_pos a b = 0 in
  let rec groups acc current = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | t :: rest ->
      (match current with
       | [] -> groups acc [ t ] rest
       | c :: _ when same c t -> groups acc (t :: current) rest
       | _ -> groups (List.rev current :: acc) [ t ] rest)
  in
  let gs = groups [] [] tuples in
  if compiled then compiled_rows env layout block gs
  else List.map (row_over env layout block) gs
