(** Composite-tuple layouts.

    A join composite concatenates the tuples of the joined relations in plan
    order; a layout maps a block's FROM position to its offset within the
    composite so resolved column references (tab, col) become positions.
    Internally the mapping is a dense int array indexed by FROM position, so
    {!pos} is O(1) — it sits on the executor's per-tuple path. *)

type t

val empty : t
val of_tables : Semant.block -> int list -> t
(** Layout of a composite holding the given FROM positions in order. *)

val concat : t -> t -> t
(** Right operand's tables follow the left's (join output layout).
    @raise Invalid_argument when a table appears in both. *)

val width : t -> int
val mem : t -> int -> bool
val pos : t -> Semant.col_ref -> int
(** @raise Not_found when the table is not part of this layout. *)

val tables : t -> int list
