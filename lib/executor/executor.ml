type output = {
  columns : string list;
  rows : Rel.Tuple.t list;
}

type stats = {
  mutable subquery_calls : int;
  mutable subquery_evals : int;
}

type state = {
  catalog : Catalog.t;
  use_cache : bool;
  compiled : bool;
      (* compile predicates/expressions/comparators into position-resolved
         closures at plan-open time (default); false keeps the per-tuple AST
         interpreter as a measurable baseline *)
  snap : Rss.Mvcc.view option;
      (* MVCC read view threaded to every leaf scan, subquery blocks
         included; None = see the not-delete-marked heap *)
  params : Rel.Value.t array;
  stats : stats;
  caches : (Semant.block * (Rel.Value.t list, Rel.Value.t list) Hashtbl.t) list ref;
      (* per nested block, keyed by physical identity *)
}

(* References inside [b] (or blocks nested in it) that escape [b]: evaluated
   in the caller's environment they are the "referenced values" that
   determine the subquery's result — the memo key. Each is (frames up from
   the call environment, tab, col). *)
let escaped_refs (b : Semant.block) =
  let acc = ref [] in
  let rec expr depth (e : Semant.sexpr) =
    match e with
    | Semant.E_outer { levels_up; tab; col } ->
      if levels_up > depth then acc := (levels_up - depth - 1, tab, col) :: !acc
    | Semant.E_binop (_, a, b) ->
      expr depth a;
      expr depth b
    | Semant.E_agg (_, a) -> expr depth a
    | Semant.E_col _ | Semant.E_const _ | Semant.E_param _ -> ()
  and pred depth (p : Semant.spred) =
    match p with
    | Semant.P_cmp (a, _, b) ->
      expr depth a;
      expr depth b
    | Semant.P_between (e, lo, hi) ->
      expr depth e;
      expr depth lo;
      expr depth hi
    | Semant.P_in_list (e, _) -> expr depth e
    | Semant.P_in_sub { e; block; _ } ->
      expr depth e;
      block_refs (depth + 1) block
    | Semant.P_cmp_sub (e, _, block) ->
      expr depth e;
      block_refs (depth + 1) block
    | Semant.P_and (a, b) | Semant.P_or (a, b) ->
      pred depth a;
      pred depth b
    | Semant.P_not a -> pred depth a
  and block_refs depth (b : Semant.block) =
    List.iter (fun (e, _) -> expr depth e) b.Semant.select;
    Option.iter (pred depth) b.Semant.where
  in
  block_refs 0 b;
  let cmp_ref (u1, t1, c1) (u2, t2, c2) =
    let d = Int.compare u1 u2 in
    if d <> 0 then d
    else
      let d = Int.compare t1 t2 in
      if d <> 0 then d else Int.compare c1 c2
  in
  List.sort_uniq cmp_ref !acc

let ref_values (env : Eval.env) refs =
  List.map
    (fun (up, tab, col) ->
      match List.nth_opt env.Eval.blocks up with
      | Some (f : Eval.frame) ->
        Rel.Tuple.get f.tuple (Layout.pos f.layout { Semant.tab; col })
      | None -> invalid_arg "Executor: escaped reference beyond block stack")
    refs

let cache_for st block =
  match List.find_opt (fun (b, _) -> b == block) !(st.caches) with
  | Some (_, tbl) -> tbl
  | None ->
    let tbl = Hashtbl.create 64 in
    st.caches := (block, tbl) :: !(st.caches);
    tbl

let rec run_block st (r : Optimizer.result) (blocks_stack : Eval.frame list) =
  let block = r.Optimizer.block in
  let env =
    { Eval.blocks = blocks_stack;
      params = st.params;
      subquery = (fun env b -> eval_subquery st r env b) }
  in
  let compiled = st.compiled in
  let open_cur () =
    Cursor.open_plan st.catalog block env ~compiled ?snap:st.snap ~join:None
      r.Optimizer.plan
  in
  let layout = Cursor.layout_of block r.Optimizer.plan in
  (* Parallel aggregation: instead of gathering the exchange's tuple stream
     and folding it serially, fold each partition into partial accumulators
     on its worker and merge the partials here — the gather queues never
     carry the input tuples at all. Only blocks without subqueries are
     parallelized (the optimizer guarantees this), so workers never touch
     the subquery cache. [None] = shape/size not eligible, run serially. *)
  let fold_parallel inner dop =
    if Rss.Failpoint.enabled () then None
    else
      match Parallel.partitions block env inner ~dop with
      | None | Some ([] | [ _ ]) -> None
      | Some parts ->
        let partials =
          Parallel.map_partitions (Catalog.pager st.catalog)
            (List.map
               (fun part () ->
                 Exec_agg.fold_partial ~compiled env layout block
                   (Cursor.open_plan st.catalog block env ~compiled
                      ~partition:part ?snap:st.snap ~join:None inner))
               parts)
        in
        Some (Exec_agg.merge_partials layout block partials)
  in
  (* the sort the optimizer put under a grouped block orders exactly on the
     grouping columns, ascending — checked structurally before the partial
     path replaces it *)
  let key_is_group_by (key : Interesting_order.order) =
    List.length key = List.length block.Semant.group_by
    && List.for_all2
         (fun ((c : Semant.col_ref), d) (g : Semant.col_ref) ->
           d = Ast.Asc && c.Semant.tab = g.Semant.tab && c.Semant.col = g.Semant.col)
         key block.Semant.group_by
  in
  (* The cursor is consumed incrementally in every mode: aggregation folds
     tuples into O(1) accumulator state as they stream by, so the plan's
     output is never materialized ahead of the result rows. *)
  if block.Semant.scalar_agg then begin
    let parallel =
      match r.Optimizer.plan.Plan.node with
      | Plan.Exchange { input; dop } -> fold_parallel input dop
      | _ -> None
    in
    match parallel with
    | Some rows -> rows
    | None -> [ Exec_agg.scalar_stream ~compiled env layout block (open_cur ()) ]
  end
  else if block.Semant.group_by <> [] then begin
    let parallel =
      match r.Optimizer.plan.Plan.node with
      | Plan.Sort { input = { Plan.node = Plan.Exchange { input; dop }; _ }; key }
        when key_is_group_by key ->
        fold_parallel input dop
      | _ -> None
    in
    let rows =
      match parallel with
      | Some rows -> rows
      | None -> Exec_agg.group_stream ~compiled env layout block (open_cur ())
    in
    match block.Semant.order_by with
    | [] -> rows
    | obs ->
      (* order the aggregated rows by the select positions of the ORDER BY
         columns *)
      let pos_of (c : Semant.col_ref) =
        let rec find i = function
          | [] ->
            invalid_arg
              "Executor: ORDER BY column of a grouped query must appear in its \
               select list"
          | (Semant.E_col c', _) :: _
            when c'.Semant.tab = c.Semant.tab && c'.Semant.col = c.Semant.col ->
            i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 block.Semant.select
      in
      let keys = List.map (fun (c, d) -> (pos_of c, d)) obs in
      let compare_rows =
        if compiled then Eval.compile_cmp_pos keys
        else fun a b ->
          let rec go = function
            | [] -> 0
            | (p, d) :: rest ->
              let cmp = Rel.Value.compare (Rel.Tuple.get a p) (Rel.Tuple.get b p) in
              let cmp = match d with Ast.Asc -> cmp | Ast.Desc -> -cmp in
              if cmp <> 0 then cmp else go rest
          in
          go keys
      in
      List.stable_sort compare_rows rows
  end
  else Exec_agg.project_stream ~compiled env layout block (open_cur ())

and eval_subquery st (parent : Optimizer.result) (env : Eval.env) block =
  st.stats.subquery_calls <- st.stats.subquery_calls + 1;
  let sub =
    match
      List.find_opt (fun (b, _) -> b == block) parent.Optimizer.subresults
    with
    | Some (_, sub) -> sub
    | None -> invalid_arg "Executor: subquery block has no plan"
  in
  let refs = escaped_refs block in
  let key = ref_values env refs in
  let tbl = cache_for st block in
  match if st.use_cache then Hashtbl.find_opt tbl key else None with
  | Some vs -> vs
  | None ->
    st.stats.subquery_evals <- st.stats.subquery_evals + 1;
    let rows = run_block st sub env.Eval.blocks in
    let vs = List.map (fun row -> Rel.Tuple.get row 0) rows in
    if st.use_cache then Hashtbl.replace tbl key vs;
    vs

let run_with_stats ?(use_subquery_cache = true) ?(compiled = true) ?snap
    ?(params = [||]) ?observe catalog (r : Optimizer.result) =
  let st =
    { catalog;
      use_cache = use_subquery_cache;
      compiled;
      snap;
      params;
      stats = { subquery_calls = 0; subquery_evals = 0 };
      caches = ref [] }
  in
  let rows = run_block st r [] in
  (* The root cursor is exhausted: the actual output cardinality is now
     known, and the engine's feedback loop compares it against the
     optimizer's QCARD estimate. Fires only for the top block — subquery
     evaluations observe nothing (their counts fold several bindings
     together). *)
  (match observe with Some f -> f (List.length rows) | None -> ());
  let columns = List.map snd r.Optimizer.block.Semant.select in
  ({ columns; rows }, st.stats)

let run ?use_subquery_cache ?compiled ?snap ?params ?observe catalog r =
  fst
    (run_with_stats ?use_subquery_cache ?compiled ?snap ?params ?observe catalog
       r)

let run_measured ?use_subquery_cache ?compiled ?snap ?params catalog r =
  let counters = Rss.Pager.counters (Catalog.pager catalog) in
  let before = Rss.Counters.snapshot counters in
  let out = run ?use_subquery_cache ?compiled ?snap ?params catalog r in
  let after = Rss.Counters.snapshot counters in
  (out, Rss.Counters.diff ~after ~before)
