type t = unit -> Rel.Tuple.t option

let layout_of block (p : Plan.t) = Layout.of_tables block p.Plan.tables

let drain c =
  let rec go acc = match c () with None -> List.rev acc | Some t -> go (t :: acc) in
  go []

(* A residual filter over the composite tuples of a node: compiled to a
   position-resolved closure at open time, or left to the per-tuple AST
   interpreter when [compiled] is off (the baseline the hot-path bench and
   the differential test compare against). *)
let residual_filter ~compiled env layout preds : Rel.Tuple.t -> bool =
  match preds with
  | [] -> fun _ -> true
  | preds ->
    if compiled then Eval.compile_preds env layout preds
    else fun tuple ->
      List.for_all (Eval.pred env { Eval.layout; tuple }) preds

(* [partition], when given, restricts the leftmost scan of the plan to one
   slice of a [Plan.Exchange] fan-out; it threads through nested-loop outers
   down to the leaf scan. *)
let rec open_plan catalog block (env : Eval.env) ?(compiled = true)
    ?partition ?snap ~join (p : Plan.t) : t =
  match p.Plan.node with
  | Plan.Scan { tab; access; sargs; residual } ->
    open_scan catalog block env ~compiled ~partition ~snap ~join ~tab ~access
      ~sargs ~residual
  | Plan.Nl_join { outer; inner } ->
    (match join with
     | Some _ -> invalid_arg "Cursor: join node cannot itself be a join inner"
     | None -> open_nl catalog block env ~compiled ~partition ~snap ~outer ~inner)
  | Plan.Merge_join { outer; inner; outer_col; inner_col; residual } ->
    (match join with
     | Some _ -> invalid_arg "Cursor: join node cannot itself be a join inner"
     | None ->
       open_merge catalog block env ~compiled ~snap ~outer ~inner ~outer_col
         ~inner_col ~residual)
  | Plan.Sort { input; key } ->
    open_sort catalog block env ~compiled ~snap ~join ~input ~key
  | Plan.Exchange { input; dop } ->
    (match join with
     | Some _ -> invalid_arg "Cursor: exchange cannot be a join inner"
     | None -> open_exchange catalog block env ~compiled ~snap ~input ~dop)
  | Plan.Filter { input; preds } ->
    let inner = open_plan catalog block env ~compiled ?snap ~join input in
    let layout = layout_of block input in
    let keep = residual_filter ~compiled env layout preds in
    let rec pull () =
      match inner () with
      | None -> None
      | Some tuple -> if keep tuple then Some tuple else pull ()
    in
    pull

and open_scan _catalog block env ~compiled ~partition ~snap ~join ~tab ~access
    ~sargs ~residual =
  let tr = List.nth block.Semant.tables tab in
  let rel = tr.Semant.rel in
  let rel_id = rel.Catalog.rel_id in
  (* Factors compiled into RSS search arguments; any that fail to compile
     (a dynamic value unavailable in this context) fall back to residuals. *)
  let compiled_sargs, fallback =
    List.fold_left
      (fun (sarg_acc, resid) p ->
        match Eval.compile_sarg env join ~tab p with
        | Some s -> (Rss.Sarg.conjoin sarg_acc s, resid)
        | None -> (sarg_acc, p :: resid))
      (Rss.Sarg.always_true, []) sargs
  in
  let residual = residual @ List.rev fallback in
  let scan =
    match access, partition with
    | Plan.Seg_scan, None ->
      Rss.Scan.open_segment_scan rel.Catalog.segment ~rel_id ?snap
        ~sargs:compiled_sargs ()
    | Plan.Seg_scan, Some (Parallel.Pages pages) ->
      Rss.Scan.open_segment_scan rel.Catalog.segment ~rel_id ~pages ?snap
        ~sargs:compiled_sargs ()
    | Plan.Idx_scan { index; lo; hi; dir; _ }, None ->
      let lo = Option.map (Eval.bound_key env join) lo in
      let hi = Option.map (Eval.bound_key env join) hi in
      let dir = match dir with Ast.Asc -> `Asc | Ast.Desc -> `Desc in
      Rss.Scan.open_index_scan rel.Catalog.segment ~rel_id ~index:index.Catalog.btree
        ?lo ?hi ~dir ?snap ~sargs:compiled_sargs ()
    | Plan.Idx_scan { index; _ }, Some (Parallel.Key_range (lo, hi)) ->
      (* the split ranges already absorbed the plan's lo/hi bounds *)
      Rss.Scan.open_index_scan rel.Catalog.segment ~rel_id ~index:index.Catalog.btree
        ?lo ?hi ~dir:`Asc ?snap ~sargs:compiled_sargs ()
    | Plan.Seg_scan, Some (Parallel.Key_range _)
    | Plan.Idx_scan _, Some (Parallel.Pages _) ->
      invalid_arg "Cursor: partition kind does not match the access path"
  in
  let self_layout = Layout.of_tables block [ tab ] in
  match join with
  | Some f when compiled ->
    (* Pair-compiled residuals read the outer composite and the scanned tuple
       directly — the combined tuple is never built (the scan's output is the
       bare inner tuple). Subquery residuals still need a composite frame for
       correlation, so they are materialized only when the plain conjuncts
       already accepted the pair. *)
    let plain, subq = List.partition (fun p -> not (Semant.pred_has_subquery p)) residual in
    let keep_pair = Eval.compile_preds_pair env f.Eval.layout self_layout plain in
    let keep_sub =
      match subq with
      | [] -> None
      | _ ->
        Some (Eval.compile_preds env (Layout.concat f.Eval.layout self_layout) subq)
    in
    let outer_tuple = f.Eval.tuple in
    let rec pull () =
      match Rss.Scan.next scan with
      | None -> None
      | Some (_tid, tuple) ->
        if
          keep_pair outer_tuple tuple
          && (match keep_sub with
              | None -> true
              | Some k -> k (Rel.Tuple.concat outer_tuple tuple))
        then Some tuple
        else pull ()
    in
    pull
  | _ ->
    let combined_layout =
      match join with
      | Some f -> Layout.concat f.Eval.layout self_layout
      | None -> self_layout
    in
    let keep = residual_filter ~compiled env combined_layout residual in
    let rec pull () =
      match Rss.Scan.next scan with
      | None -> None
      | Some (_tid, tuple) ->
        let combined =
          match join with
          | Some f -> Rel.Tuple.concat f.Eval.tuple tuple
          | None -> tuple
        in
        if keep combined then Some tuple else pull ()
    in
    pull

and open_nl catalog block env ~compiled ~partition ~snap ~outer ~inner =
  let outer_cur =
    open_plan catalog block env ~compiled ?partition ?snap ~join:None outer
  in
  let outer_layout = layout_of block outer in
  let state = ref None in
  let rec pull () =
    match !state with
    | Some (outer_tuple, inner_cur) ->
      (match inner_cur () with
       | Some inner_tuple -> Some (Rel.Tuple.concat outer_tuple inner_tuple)
       | None ->
         state := None;
         pull ())
    | None ->
      (match outer_cur () with
       | None -> None
       | Some outer_tuple ->
         let jframe = { Eval.layout = outer_layout; tuple = outer_tuple } in
         let inner_cur =
           open_plan catalog block env ~compiled ?snap ~join:(Some jframe) inner
         in
         state := Some (outer_tuple, inner_cur);
         pull ())
  in
  pull

and open_merge catalog block env ~compiled ~snap ~outer ~inner ~outer_col
    ~inner_col ~residual =
  let outer_cur = open_plan catalog block env ~compiled ?snap ~join:None outer in
  let inner_cur = open_plan catalog block env ~compiled ?snap ~join:None inner in
  let outer_layout = layout_of block outer in
  let inner_layout = layout_of block inner in
  let combined_layout = Layout.concat outer_layout inner_layout in
  let opos = Layout.pos outer_layout outer_col in
  let ipos = Layout.pos inner_layout inner_col in
  (* Compiled mode checks residuals against the (outer, inner) pair before
     building the output composite, so rejected pairs cost no concatenation;
     subquery residuals (needing a composite frame) run after, on survivors.
     Interpreted mode concatenates first, as the baseline always did. *)
  let plain, subq =
    if compiled then
      List.partition (fun p -> not (Semant.pred_has_subquery p)) residual
    else ([], residual)
  in
  let keep_pair = Eval.compile_preds_pair env outer_layout inner_layout plain in
  let keep = residual_filter ~compiled env combined_layout subq in
  (* The inner scan is synchronized with the outer: the current group of
     equal-keyed inner tuples is remembered so equal consecutive outer keys
     rejoin it without rescanning ("remembering where matching join groups
     are located"). *)
  let inner_ahead = ref None in
  let next_inner () =
    match !inner_ahead with
    | Some t ->
      inner_ahead := None;
      Some t
    | None -> inner_cur ()
  in
  let group = ref [||] in
  let group_key = ref None in
  let load_group key =
    (* advance the inner scan to [key]'s group, buffering it *)
    let rec skip () =
      match next_inner () with
      | None -> None
      | Some t ->
        let k = Rel.Tuple.get t ipos in
        if Rel.Value.is_null k then skip ()
        else if Rel.Value.compare k key < 0 then skip ()
        else Some (t, k)
    in
    match skip () with
    | None ->
      group := [||];
      group_key := Some key
    | Some (t, k) ->
      if Rel.Value.compare k key > 0 then begin
        inner_ahead := Some t;
        group := [||];
        group_key := Some key
      end
      else begin
        let acc = ref [ t ] in
        let rec collect () =
          match next_inner () with
          | None -> ()
          | Some t' ->
            if Rel.Value.equal (Rel.Tuple.get t' ipos) key then begin
              acc := t' :: !acc;
              collect ()
            end
            else inner_ahead := Some t'
        in
        collect ();
        group := Array.of_list (List.rev !acc);
        group_key := Some key
      end
  in
  let cur_outer = ref None in
  let group_idx = ref 0 in
  let rec pull () =
    match !cur_outer with
    | Some outer_tuple when !group_idx < Array.length !group ->
      let inner_tuple = !group.(!group_idx) in
      incr group_idx;
      if keep_pair outer_tuple inner_tuple then begin
        let combined = Rel.Tuple.concat outer_tuple inner_tuple in
        if keep combined then Some combined else pull ()
      end
      else pull ()
    | _ ->
      (match outer_cur () with
       | None -> None
       | Some outer_tuple ->
         let key = Rel.Tuple.get outer_tuple opos in
         if Rel.Value.is_null key then begin
           cur_outer := None;
           pull ()
         end
         else begin
           (match !group_key with
            | Some k when Rel.Value.equal k key -> ()  (* rejoin same group *)
            | _ -> load_group key);
           cur_outer := Some outer_tuple;
           group_idx := 0;
           pull ()
         end)
  in
  pull

and open_sort catalog block env ~compiled ~snap ~join ~input ~key =
  let layout = layout_of block input in
  let sort_key =
    List.map
      (fun (c, d) ->
        ( Layout.pos layout c,
          match d with Ast.Asc -> Rss.Sort.Asc | Ast.Desc -> Rss.Sort.Desc ))
      key
  in
  let cmp = if compiled then Some (Eval.compile_cmp layout key) else None in
  let pager = Catalog.pager catalog in
  let serial () =
    let input_cur = open_plan catalog block env ~compiled ?snap ~join input in
    (* the plan cursor feeds run formation directly and the final merge
       streams straight to the consumer — the sorted result is never
       rematerialized *)
    Rss.Sort.sort_stream ?cmp pager ~key:sort_key input_cur
  in
  match input.Plan.node, join with
  | Plan.Exchange { input = inner; dop }, None
    when not (Rss.Failpoint.enabled ()) ->
    (* Sort over an exchange: fan out run formation instead of gathering an
       unsorted stream — each worker forms the sorted runs for one contiguous
       partition, and the main domain merges the concatenated run lists.
       Byte-identical to the serial sort (see {!Rss.Sort.runs_of_dispenser}). *)
    (match Parallel.partitions block env inner ~dop with
     | None | Some ([] | [ _ ]) -> serial ()
     | Some parts ->
       let runs =
         Parallel.map_partitions pager
           (List.map
              (fun part () ->
                Rss.Sort.runs_of_dispenser ?cmp pager ~key:sort_key
                  (open_plan catalog block env ~compiled ~partition:part ?snap
                     ~join:None inner))
              parts)
         |> List.concat
       in
       Rss.Sort.merge_stream ?cmp pager ~key:sort_key runs)
  | _ -> serial ()

and open_exchange catalog block env ~compiled ~snap ~input ~dop =
  (* Torture testing is single-domain-only: with the failpoint registry
     armed, an exchange degrades to serial execution of its input (results
     are identical by construction). *)
  let serial () = open_plan catalog block env ~compiled ?snap ~join:None input in
  if Rss.Failpoint.enabled () then serial ()
  else
    match Parallel.partitions block env input ~dop with
    | None | Some ([] | [ _ ]) -> serial ()
    | Some parts ->
      let g =
        Parallel.gather (Catalog.pager catalog) ~partitions:parts
          ~open_partition:(fun part ->
            open_plan catalog block env ~compiled ~partition:part ?snap
              ~join:None input)
      in
      g.Parallel.next
