(** Plan execution as tuple-at-a-time cursors (the generated code's scan
    loops, as a Volcano-style interpreter — see DESIGN.md for the
    substitution note).

    A cursor yields the composite tuples of a plan node. Nested-loop inners
    are re-opened per outer tuple with the outer composite as join context,
    turning dynamic index bounds and dynamically-bound SARGs into constants
    for that opening. All page fetches and RSI calls incurred flow through
    the catalog's pager counters.

    By default, opening a node compiles its residual predicates and sort
    comparator into position-resolved closures ({!Eval.compile_preds},
    {!Eval.compile_cmp}) so the per-tuple path does no AST interpretation;
    [~compiled:false] keeps the interpretive path — same semantics, used as
    the baseline by the hot-path bench and the differential test. *)

type t = unit -> Rel.Tuple.t option

val open_plan :
  Catalog.t ->
  Semant.block ->
  Eval.env ->
  ?compiled:bool ->
  ?partition:Parallel.partition ->
  ?snap:Rss.Mvcc.view ->
  join:Eval.frame option ->
  Plan.t ->
  t
(** [snap] is the MVCC read view every leaf scan of the plan filters
    through (threaded to {!Rss.Scan.open_segment_scan} /
    {!Rss.Scan.open_index_scan}); omitted, scans see exactly the
    not-delete-marked heap — the single-session behavior.

    [partition] restricts the plan's leftmost scan to one slice of an
    exchange fan-out (threaded through nested-loop outers to the leaf);
    workers opening their plan copy pass it, everything else omits it.
    An [Exchange] node opens as a {!Parallel.gather} over its partitions —
    or serially when the input is too small to partition or the failpoint
    registry is armed (torture testing is single-domain-only). A [Sort] over
    an [Exchange] fans out run formation and merges the per-partition runs
    on the calling domain. *)

val layout_of : Semant.block -> Plan.t -> Layout.t
(** Layout of the composite tuples the plan produces. *)

val drain : t -> Rel.Tuple.t list
