(** Top-level plan execution.

    Runs an optimized query block: opens the plan's cursor tree, aggregates
    and projects, and evaluates nested blocks on demand. Uncorrelated
    subqueries are evaluated once and their value reused; correlated
    subqueries are re-evaluated per candidate tuple, with results cached by
    the referenced outer values — the generalization of the paper's
    "if the referenced value is the same as in the previous candidate tuple,
    the previous result can be used again" optimization (and it also covers
    the ordered-relation and intermediate-block cases of section 6). *)

type output = {
  columns : string list;
  rows : Rel.Tuple.t list;
}

type stats = {
  mutable subquery_calls : int;  (** predicate-level subquery invocations *)
  mutable subquery_evals : int;  (** nested blocks actually executed *)
}

val run :
  ?use_subquery_cache:bool ->
  ?compiled:bool ->
  ?snap:Rss.Mvcc.view ->
  ?params:Rel.Value.t array ->
  ?observe:(int -> unit) ->
  Catalog.t ->
  Optimizer.result ->
  output
(** [snap] is the MVCC read view threaded to every leaf scan, subquery
    blocks included (see {!Cursor.open_plan}).

    [compiled] (default true) selects closure-compiled evaluation: residual
    predicates, select expressions, grouping keys and ORDER BY comparators
    are closed into position-resolved closures at plan-open time (see
    DESIGN.md, "Compiled evaluation"). [~compiled:false] runs the per-tuple
    AST interpreter — identical semantics, used as the baseline by the
    hot-path bench and differential test.

    [observe] fires once, when the top block's cursor tree is exhausted,
    with the actual output cardinality — the engine's cardinality-feedback
    hook. Subquery evaluations never observe.
    @raise Invalid_argument when a scalar subquery returns several rows or an
    ORDER BY column of a grouped query is absent from its select list. *)

val run_with_stats :
  ?use_subquery_cache:bool ->
  ?compiled:bool ->
  ?snap:Rss.Mvcc.view ->
  ?params:Rel.Value.t array ->
  ?observe:(int -> unit) ->
  Catalog.t ->
  Optimizer.result ->
  output * stats

val run_measured :
  ?use_subquery_cache:bool ->
  ?compiled:bool ->
  ?snap:Rss.Mvcc.view ->
  ?params:Rel.Value.t array ->
  Catalog.t ->
  Optimizer.result ->
  output * Rss.Counters.t
(** Execute with the pager counters snapshotted around the run (the buffer
    pool is NOT cleared; callers wanting cold-cache numbers should call
    {!Rss.Pager.evict_all} first). *)
