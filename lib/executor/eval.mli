(** Scalar expression and predicate evaluation.

    Evaluation happens against: the current composite tuple of the block (via
    its layout), the stack of enclosing blocks' current tuples (for
    correlation references), and a subquery evaluator supplied by the
    executor (nested blocks are "subroutines which return values to the
    predicates in which they occur"). Predicates follow SQL three-valued
    (Kleene) logic — comparisons involving NULL are Unknown, and only rows
    evaluating to true qualify — which keeps the normalizer's NOT-elimination
    rewrites sound in the presence of NULLs. *)

type frame = {
  layout : Layout.t;
  tuple : Rel.Tuple.t;
}

type env = {
  blocks : frame list;
      (** enclosing blocks' current candidate tuples, innermost first *)
  params : Rel.Value.t array;
      (** bindings for [?] placeholders, by position (prepared statements) *)
  subquery : env -> Semant.block -> Rel.Value.t list;
      (** first-column values of the nested block's result, evaluated in the
          environment current at the call *)
}

val arith_fn : Ast.arith -> Rel.Value.t -> Rel.Value.t -> Rel.Value.t

val expr : env -> frame -> Semant.sexpr -> Rel.Value.t
(** @raise Invalid_argument on an aggregate (those are computed by
    {!Exec_agg}, never inline). *)

val pred : env -> frame -> Semant.spred -> bool

(** {2 Compiled evaluation}

    The interpretive functions above re-walk the AST and re-resolve every
    column reference per tuple. The [compile_*] family instead closes an
    expression/predicate over its environment once, at plan-open time: column
    references become captured integer offsets, parameters and outer-block
    references captured values, operators direct functions. The returned
    closures perform zero AST traversal and zero name resolution per tuple
    while preserving three-valued NULL semantics exactly (see DESIGN.md,
    "Compiled evaluation"). Binding environment-dependent values at compile
    time is sound because a cursor opening fixes them: nested-loop inners are
    re-opened (hence re-compiled) per outer tuple, subquery plans per
    evaluation. *)

val compile_expr : env -> Layout.t -> Semant.sexpr -> Rel.Tuple.t -> Rel.Value.t
(** @raise Not_found at compile time when a column is not in the layout. *)

val compile_pred : env -> Layout.t -> Semant.spred -> Rel.Tuple.t -> bool option
(** Three-valued result, exactly as the interpreter's internal [pred3]. *)

val compile_preds : env -> Layout.t -> Semant.spred list -> Rel.Tuple.t -> bool
(** Conjunction of compiled predicates; [true] iff every one evaluates to
    true. Non-subquery conjuncts are compiled in boolean context — the
    closure decides "does this evaluate to true" directly, with NULL tests
    inlined and no three-valued result materialized — and may short-circuit
    an operand once the answer is decided (expression evaluation is pure, so
    results are unaffected). Subquery conjuncts keep the exact three-valued
    path of {!compile_pred}. *)

val compile_expr_pair :
  env ->
  Layout.t ->
  Layout.t ->
  Semant.sexpr ->
  Rel.Tuple.t ->
  Rel.Tuple.t ->
  Rel.Value.t
(** Like {!compile_expr} but over an uncombined (left, right) tuple pair —
    each column reference resolves to (side, offset) at compile time, so join
    residuals evaluate without first concatenating the composite. *)

val compile_preds_pair :
  env ->
  Layout.t ->
  Layout.t ->
  Semant.spred list ->
  Rel.Tuple.t ->
  Rel.Tuple.t ->
  bool
(** Boolean-context conjunction over the pair, as {!compile_preds}.
    @raise Invalid_argument (at compile time) on subquery predicates — those
    need a composite frame for correlation; partition on
    {!Semant.pred_has_subquery} and route them through {!compile_pred}. *)

val compile_cmp_pos :
  (int * Ast.order_dir) list -> Rel.Tuple.t -> Rel.Tuple.t -> int
(** Lexicographic comparator over resolved positions (sort keys, ORDER BY). *)

val compile_cmp :
  Layout.t ->
  (Semant.col_ref * Ast.order_dir) list ->
  Rel.Tuple.t ->
  Rel.Tuple.t ->
  int

val compile_sarg :
  env -> frame option -> tab:int -> Semant.spred -> Rss.Sarg.t option
(** Render a sargable predicate on relation [tab] as an RSS search argument,
    resolving any outer-relation or outer-block column to its current value
    ([frame option] is the join context: the outer composite of a nested-loop
    inner). [None] when the predicate is not expressible as a SARG. *)

val bound_key :
  env -> frame option -> Plan.key_bound -> Rss.Btree.bound
(** Resolve an index key bound's values against the current context. *)
