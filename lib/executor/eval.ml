type frame = {
  layout : Layout.t;
  tuple : Rel.Tuple.t;
}

type env = {
  blocks : frame list;
  params : Rel.Value.t array;  (* ? placeholder bindings, by position *)
  subquery : env -> Semant.block -> Rel.Value.t list;
}

let arith_fn (op : Ast.arith) =
  match op with
  | Ast.Add -> Rel.Value.add
  | Ast.Sub -> Rel.Value.sub
  | Ast.Mul -> Rel.Value.mul
  | Ast.Div -> Rel.Value.div

let rec expr env frame (e : Semant.sexpr) =
  match e with
  | Semant.E_const v -> v
  | Semant.E_param i ->
    if i < Array.length env.params then env.params.(i)
    else invalid_arg (Printf.sprintf "Eval.expr: unbound parameter ?%d" i)
  | Semant.E_col c -> Rel.Tuple.get frame.tuple (Layout.pos frame.layout c)
  | Semant.E_outer { levels_up; tab; col } ->
    (match List.nth_opt env.blocks (levels_up - 1) with
     | Some outer ->
       Rel.Tuple.get outer.tuple (Layout.pos outer.layout { Semant.tab; col })
     | None -> invalid_arg "Eval.expr: outer reference beyond block stack")
  | Semant.E_binop (op, a, b) -> arith_fn op (expr env frame a) (expr env frame b)
  | Semant.E_agg _ -> invalid_arg "Eval.expr: aggregate outside Exec_agg"

let cmp_op (c : Ast.comparison) =
  match c with
  | Ast.Eq -> Rss.Sarg.Eq
  | Ast.Ne -> Rss.Sarg.Ne
  | Ast.Lt -> Rss.Sarg.Lt
  | Ast.Le -> Rss.Sarg.Le
  | Ast.Gt -> Rss.Sarg.Gt
  | Ast.Ge -> Rss.Sarg.Ge

(* SQL three-valued (Kleene) logic: comparisons involving NULL are Unknown
   ([None]); a WHERE keeps only rows evaluating to true. Three-valued
   semantics make the normalizer's NOT-elimination rewrites sound in the
   presence of NULLs, which classical negation would not be. *)
let cmp3 op a b : bool option =
  if Rel.Value.is_null a || Rel.Value.is_null b then None
  else Some (Rss.Sarg.eval_op op a b)

let and3 a b =
  match a, b with
  | Some false, _ | _, Some false -> Some false
  | Some true, Some true -> Some true
  | _ -> None

let or3 a b =
  match a, b with
  | Some true, _ | _, Some true -> Some true
  | Some false, Some false -> Some false
  | _ -> None

let not3 = Option.map not

let rec pred3 env frame (p : Semant.spred) : bool option =
  match p with
  | Semant.P_cmp (a, c, b) -> cmp3 (cmp_op c) (expr env frame a) (expr env frame b)
  | Semant.P_between (e, lo, hi) ->
    let v = expr env frame e in
    and3
      (cmp3 Rss.Sarg.Ge v (expr env frame lo))
      (cmp3 Rss.Sarg.Le v (expr env frame hi))
  | Semant.P_in_list (e, vs) ->
    let v = expr env frame e in
    if Rel.Value.is_null v then None
    else if List.exists (Rel.Value.equal v) vs then Some true
    else if List.exists Rel.Value.is_null vs then None
    else Some false
  | Semant.P_in_sub { e; block; negated } ->
    let v = expr env frame e in
    let base =
      if Rel.Value.is_null v then None
      else begin
        let vs = env.subquery { env with blocks = frame :: env.blocks } block in
        if List.exists (Rel.Value.equal v) vs then Some true
        else if List.exists Rel.Value.is_null vs then None
        else Some false
      end
    in
    if negated then not3 base else base
  | Semant.P_cmp_sub (e, c, block) ->
    let v = expr env frame e in
    (match env.subquery { env with blocks = frame :: env.blocks } block with
     | [] -> None  (* an empty scalar subquery yields NULL *)
     | [ sv ] -> cmp3 (cmp_op c) v sv
     | _ :: _ :: _ -> invalid_arg "scalar subquery returned more than one value")
  | Semant.P_and (a, b) -> and3 (pred3 env frame a) (pred3 env frame b)
  | Semant.P_or (a, b) -> or3 (pred3 env frame a) (pred3 env frame b)
  | Semant.P_not a -> not3 (pred3 env frame a)

let pred env frame p = pred3 env frame p = Some true

(* --- compiled evaluation ------------------------------------------------ *)

(* Close an expression/predicate over its environment once, at plan-open
   time: every Layout.pos lookup becomes a captured integer offset, every
   parameter and outer-block reference a captured value, every operator a
   direct function — the per-tuple path then runs zero AST traversal and
   zero name resolution. Environment-dependent constants (params, outer
   refs) are sound to bind at compile time because a cursor opening fixes
   them: nested-loop inners are re-opened (hence re-compiled) per outer
   tuple, and subquery plans per evaluation. Failures the interpreter would
   raise per tuple (unbound parameter, outer ref beyond the stack) compile
   to closures that raise when called, preserving behaviour on empty tuple
   streams. *)

let rec compile_expr env layout (e : Semant.sexpr) : Rel.Tuple.t -> Rel.Value.t =
  match e with
  | Semant.E_const v -> fun _ -> v
  | Semant.E_param i ->
    if i < Array.length env.params then
      let v = env.params.(i) in
      fun _ -> v
    else fun _ -> invalid_arg (Printf.sprintf "Eval.expr: unbound parameter ?%d" i)
  | Semant.E_col c ->
    let p = Layout.pos layout c in
    fun tuple -> Rel.Tuple.get tuple p
  | Semant.E_outer { levels_up; tab; col } ->
    (match List.nth_opt env.blocks (levels_up - 1) with
     | Some outer ->
       let v =
         Rel.Tuple.get outer.tuple (Layout.pos outer.layout { Semant.tab; col })
       in
       fun _ -> v
     | None -> fun _ -> invalid_arg "Eval.expr: outer reference beyond block stack")
  | Semant.E_binop (op, a, b) ->
    let fa = compile_expr env layout a and fb = compile_expr env layout b in
    let f = arith_fn op in
    fun tuple -> f (fa tuple) (fb tuple)
  | Semant.E_agg _ -> fun _ -> invalid_arg "Eval.expr: aggregate outside Exec_agg"

let rec compile_pred env layout (p : Semant.spred) : Rel.Tuple.t -> bool option =
  match p with
  | Semant.P_cmp (a, c, b) ->
    let fa = compile_expr env layout a and fb = compile_expr env layout b in
    let op = cmp_op c in
    fun tuple -> cmp3 op (fa tuple) (fb tuple)
  | Semant.P_between (e, lo, hi) ->
    let fe = compile_expr env layout e in
    let flo = compile_expr env layout lo and fhi = compile_expr env layout hi in
    fun tuple ->
      let v = fe tuple in
      and3 (cmp3 Rss.Sarg.Ge v (flo tuple)) (cmp3 Rss.Sarg.Le v (fhi tuple))
  | Semant.P_in_list (e, vs) ->
    let fe = compile_expr env layout e in
    let has_null = List.exists Rel.Value.is_null vs in
    fun tuple ->
      let v = fe tuple in
      if Rel.Value.is_null v then None
      else if List.exists (Rel.Value.equal v) vs then Some true
      else if has_null then None
      else Some false
  | Semant.P_in_sub { e; block; negated } ->
    let fe = compile_expr env layout e in
    fun tuple ->
      let v = fe tuple in
      let base =
        if Rel.Value.is_null v then None
        else begin
          let frame = { layout; tuple } in
          let vs = env.subquery { env with blocks = frame :: env.blocks } block in
          if List.exists (Rel.Value.equal v) vs then Some true
          else if List.exists Rel.Value.is_null vs then None
          else Some false
        end
      in
      if negated then not3 base else base
  | Semant.P_cmp_sub (e, c, block) ->
    let fe = compile_expr env layout e in
    let op = cmp_op c in
    fun tuple ->
      let v = fe tuple in
      let frame = { layout; tuple } in
      (match env.subquery { env with blocks = frame :: env.blocks } block with
       | [] -> None
       | [ sv ] -> cmp3 op v sv
       | _ :: _ :: _ -> invalid_arg "scalar subquery returned more than one value")
  | Semant.P_and (a, b) ->
    let fa = compile_pred env layout a and fb = compile_pred env layout b in
    fun tuple -> and3 (fa tuple) (fb tuple)
  | Semant.P_or (a, b) ->
    let fa = compile_pred env layout a and fb = compile_pred env layout b in
    fun tuple -> or3 (fa tuple) (fb tuple)
  | Semant.P_not a ->
    let fa = compile_pred env layout a in
    fun tuple -> not3 (fa tuple)

let is_true = function Some true -> true | Some false | None -> false

(* --- pair-compiled evaluation ------------------------------------------- *)

(* Join residuals are conjuncts over an (outer composite, inner tuple) pair.
   Interpreted evaluation must concatenate the pair into one composite before
   each check — an allocation per candidate pair, mostly thrown away when the
   residual rejects. The pair-compiled forms resolve each column reference to
   (side, offset) at compile time and read the two tuples directly, so the
   concatenation happens only for surviving pairs (or never, when the join
   output is the bare inner tuple). Subquery predicates need a real composite
   frame for correlation and are not pair-compilable — callers partition on
   [Semant.pred_has_subquery] and route them through {!compile_pred}. *)

let rec compile_expr_pair env left right (e : Semant.sexpr) :
    Rel.Tuple.t -> Rel.Tuple.t -> Rel.Value.t =
  match e with
  | Semant.E_const v -> fun _ _ -> v
  | Semant.E_param i ->
    if i < Array.length env.params then
      let v = env.params.(i) in
      fun _ _ -> v
    else
      fun _ _ -> invalid_arg (Printf.sprintf "Eval.expr: unbound parameter ?%d" i)
  | Semant.E_col c ->
    if Layout.mem left c.Semant.tab then
      let p = Layout.pos left c in
      fun a _ -> Rel.Tuple.get a p
    else
      let p = Layout.pos right c in
      fun _ b -> Rel.Tuple.get b p
  | Semant.E_outer { levels_up; tab; col } ->
    (match List.nth_opt env.blocks (levels_up - 1) with
     | Some outer ->
       let v =
         Rel.Tuple.get outer.tuple (Layout.pos outer.layout { Semant.tab; col })
       in
       fun _ _ -> v
     | None ->
       fun _ _ -> invalid_arg "Eval.expr: outer reference beyond block stack")
  | Semant.E_binop (op, a, b) ->
    let fa = compile_expr_pair env left right a in
    let fb = compile_expr_pair env left right b in
    let f = arith_fn op in
    fun a b -> f (fa a b) (fb a b)
  | Semant.E_agg _ -> fun _ _ -> invalid_arg "Eval.expr: aggregate outside Exec_agg"

(* Boolean-context compilation. A WHERE keeps a row iff the predicate
   evaluates to [Some true], so conjuncts never need the three-valued result
   materialized at every node: [compile_true_pair p] answers "does p evaluate
   to true" and its dual [compile_false_pair p] "does p evaluate to false".
   NOT swaps the two questions; AND/OR distribute over them by Kleene's
   tables (and3 is true iff both operands are true, false iff either is;
   dually for or3). NULL tests inline, so the per-tuple path allocates
   nothing — no option cells, no frames. Unlike the three-valued forms, the
   boolean forms may skip an operand once the answer is decided; expression
   evaluation is pure, so this is unobservable in results (the RSS's sargs
   already skip residual evaluation wholesale for non-qualifying tuples). *)

let rec compile_true_pair env left right (p : Semant.spred) :
    Rel.Tuple.t -> Rel.Tuple.t -> bool =
  match p with
  | Semant.P_cmp (a, c, b) ->
    let fa = compile_expr_pair env left right a in
    let fb = compile_expr_pair env left right b in
    let op = cmp_op c in
    fun a b ->
      let va = fa a b in
      (not (Rel.Value.is_null va))
      &&
      let vb = fb a b in
      (not (Rel.Value.is_null vb)) && Rss.Sarg.eval_op op va vb
  | Semant.P_between (e, lo, hi) ->
    let fe = compile_expr_pair env left right e in
    let flo = compile_expr_pair env left right lo in
    let fhi = compile_expr_pair env left right hi in
    fun a b ->
      let v = fe a b in
      (not (Rel.Value.is_null v))
      && (let l = flo a b in
          (not (Rel.Value.is_null l)) && Rel.Value.compare v l >= 0)
      && (let h = fhi a b in
          (not (Rel.Value.is_null h)) && Rel.Value.compare v h <= 0)
  | Semant.P_in_list (e, vs) ->
    let fe = compile_expr_pair env left right e in
    fun a b ->
      let v = fe a b in
      (not (Rel.Value.is_null v)) && List.exists (Rel.Value.equal v) vs
  | Semant.P_in_sub _ | Semant.P_cmp_sub _ ->
    invalid_arg "Eval.compile_true_pair: subquery predicate (needs a composite)"
  | Semant.P_and (a, b) ->
    let fa = compile_true_pair env left right a in
    let fb = compile_true_pair env left right b in
    fun a b -> fa a b && fb a b
  | Semant.P_or (a, b) ->
    let fa = compile_true_pair env left right a in
    let fb = compile_true_pair env left right b in
    fun a b -> fa a b || fb a b
  | Semant.P_not a -> compile_false_pair env left right a

and compile_false_pair env left right (p : Semant.spred) :
    Rel.Tuple.t -> Rel.Tuple.t -> bool =
  match p with
  | Semant.P_cmp (a, c, b) ->
    let fa = compile_expr_pair env left right a in
    let fb = compile_expr_pair env left right b in
    let op = cmp_op c in
    fun a b ->
      let va = fa a b in
      (not (Rel.Value.is_null va))
      &&
      let vb = fb a b in
      (not (Rel.Value.is_null vb)) && not (Rss.Sarg.eval_op op va vb)
  | Semant.P_between (e, lo, hi) ->
    (* false iff either bound comparison is false — a NULL on the other
       bound cannot rescue it (and3 with None is still Some false) *)
    let fe = compile_expr_pair env left right e in
    let flo = compile_expr_pair env left right lo in
    let fhi = compile_expr_pair env left right hi in
    fun a b ->
      let v = fe a b in
      (not (Rel.Value.is_null v))
      && ((let l = flo a b in
           (not (Rel.Value.is_null l)) && Rel.Value.compare v l < 0)
          || (let h = fhi a b in
              (not (Rel.Value.is_null h)) && Rel.Value.compare v h > 0))
  | Semant.P_in_list (e, vs) ->
    let fe = compile_expr_pair env left right e in
    let has_null = List.exists Rel.Value.is_null vs in
    fun a b ->
      let v = fe a b in
      (not (Rel.Value.is_null v))
      && (not has_null)
      && not (List.exists (Rel.Value.equal v) vs)
  | Semant.P_in_sub _ | Semant.P_cmp_sub _ ->
    invalid_arg "Eval.compile_false_pair: subquery predicate (needs a composite)"
  | Semant.P_and (a, b) ->
    let fa = compile_false_pair env left right a in
    let fb = compile_false_pair env left right b in
    fun a b -> fa a b || fb a b
  | Semant.P_or (a, b) ->
    let fa = compile_false_pair env left right a in
    let fb = compile_false_pair env left right b in
    fun a b -> fa a b && fb a b
  | Semant.P_not a -> compile_true_pair env left right a

let compile_preds_pair env left right preds : Rel.Tuple.t -> Rel.Tuple.t -> bool =
  match List.map (compile_true_pair env left right) preds with
  | [] -> fun _ _ -> true
  | f :: fs -> List.fold_left (fun acc f a b -> acc a b && f a b) f fs

(* Single-tuple conjunction: subquery predicates take the exact three-valued
   path (they need a frame for correlation anyway); everything else reuses
   the boolean-context pair compiler with an empty left side. *)
let compile_preds env layout preds : Rel.Tuple.t -> bool =
  let no_tuple = Rel.Tuple.make [] in
  let fs =
    List.map
      (fun p ->
        if Semant.pred_has_subquery p then
          let f = compile_pred env layout p in
          fun tuple -> is_true (f tuple)
        else
          let f = compile_true_pair env Layout.empty layout p in
          fun tuple -> f no_tuple tuple)
      preds
  in
  match fs with
  | [] -> fun _ -> true
  | f :: fs -> List.fold_left (fun acc f tuple -> acc tuple && f tuple) f fs

(* The Int/Int arm is matched inside each closure: without it every key
   comparison pays a call into [Value.compare] just to rediscover that both
   sides are integers — on a spilling sort that dispatch is the single
   hottest path in the executor. *)
let compile_cmp_pos (key : (int * Ast.order_dir) list) :
    Rel.Tuple.t -> Rel.Tuple.t -> int =
  match key with
  | [ (p, Ast.Asc) ] ->
    fun a b ->
      (match Rel.Tuple.get a p, Rel.Tuple.get b p with
       | Rel.Value.Int x, Rel.Value.Int y -> compare (x : int) y
       | va, vb -> Rel.Value.compare va vb)
  | [ (p, Ast.Desc) ] ->
    fun a b ->
      (match Rel.Tuple.get b p, Rel.Tuple.get a p with
       | Rel.Value.Int x, Rel.Value.Int y -> compare (x : int) y
       | va, vb -> Rel.Value.compare va vb)
  | key ->
    fun a b ->
      let rec go = function
        | [] -> 0
        | (p, d) :: rest ->
          let c =
            match Rel.Tuple.get a p, Rel.Tuple.get b p with
            | Rel.Value.Int x, Rel.Value.Int y -> compare (x : int) y
            | va, vb -> Rel.Value.compare va vb
          in
          let c = match d with Ast.Asc -> c | Ast.Desc -> -c in
          if c <> 0 then c else go rest
      in
      go key

let compile_cmp layout (key : (Semant.col_ref * Ast.order_dir) list) =
  compile_cmp_pos (List.map (fun (c, d) -> (Layout.pos layout c, d)) key)

(* --- SARG compilation -------------------------------------------------- *)

(* Resolve an expression to a constant using the join context and outer
   blocks only; a reference to relation [tab] itself is not constant. *)
let resolve_const env join ~tab (e : Semant.sexpr) =
  match e with
  | Semant.E_col c when c.Semant.tab <> tab ->
    Option.bind join (fun f ->
        match Layout.pos f.layout c with
        | p -> Some (Rel.Tuple.get f.tuple p)
        | exception Not_found -> None)
  | Semant.E_const v -> Some v
  | Semant.E_param i ->
    if i < Array.length env.params then Some env.params.(i) else None
  | Semant.E_outer { levels_up; tab = t; col } ->
    Option.map
      (fun (outer : frame) ->
        Rel.Tuple.get outer.tuple (Layout.pos outer.layout { Semant.tab = t; col }))
      (List.nth_opt env.blocks (levels_up - 1))
  | Semant.E_col _ | Semant.E_binop _ | Semant.E_agg _ -> None

let flip_op = function
  | Rss.Sarg.Eq -> Rss.Sarg.Eq
  | Rss.Sarg.Ne -> Rss.Sarg.Ne
  | Rss.Sarg.Lt -> Rss.Sarg.Gt
  | Rss.Sarg.Le -> Rss.Sarg.Ge
  | Rss.Sarg.Gt -> Rss.Sarg.Lt
  | Rss.Sarg.Ge -> Rss.Sarg.Le

let rec compile_sarg env join ~tab (p : Semant.spred) : Rss.Sarg.t option =
  match p with
  | Semant.P_cmp (Semant.E_col c, op, rhs) when c.Semant.tab = tab ->
    Option.map
      (fun v -> [ [ { Rss.Sarg.col = c.Semant.col; op = cmp_op op; value = v } ] ])
      (resolve_const env join ~tab rhs)
  | Semant.P_cmp (lhs, op, Semant.E_col c) when c.Semant.tab = tab ->
    Option.map
      (fun v ->
        [ [ { Rss.Sarg.col = c.Semant.col; op = flip_op (cmp_op op); value = v } ] ])
      (resolve_const env join ~tab lhs)
  | Semant.P_between (Semant.E_col c, lo, hi) when c.Semant.tab = tab ->
    (match resolve_const env join ~tab lo, resolve_const env join ~tab hi with
     | Some vlo, Some vhi ->
       Some
         [ [ { Rss.Sarg.col = c.Semant.col; op = Rss.Sarg.Ge; value = vlo };
             { Rss.Sarg.col = c.Semant.col; op = Rss.Sarg.Le; value = vhi } ] ]
     | _ -> None)
  | Semant.P_in_list (Semant.E_col c, vs) when c.Semant.tab = tab ->
    Some
      (List.map
         (fun v -> [ { Rss.Sarg.col = c.Semant.col; op = Rss.Sarg.Eq; value = v } ])
         vs)
  | Semant.P_or (a, b) ->
    (match compile_sarg env join ~tab a, compile_sarg env join ~tab b with
     | Some sa, Some sb -> Some (sa @ sb)
     | _ -> None)
  | Semant.P_and (a, b) ->
    (match compile_sarg env join ~tab a, compile_sarg env join ~tab b with
     | Some sa, Some sb -> Some (Rss.Sarg.conjoin sa sb)
     | _ -> None)
  | Semant.P_cmp _ | Semant.P_between _ | Semant.P_in_list _ | Semant.P_in_sub _
  | Semant.P_cmp_sub _ | Semant.P_not _ -> None

let bound_key env join (b : Plan.key_bound) : Rss.Btree.bound =
  let values =
    List.map
      (fun (bv : Plan.bound_value) ->
        match bv with
        | Plan.Bv_const v -> v
        | Plan.Bv_param i ->
          if i < Array.length env.params then env.params.(i)
          else invalid_arg (Printf.sprintf "Eval.bound_key: unbound parameter ?%d" i)
        | Plan.Bv_outer c ->
          (match join with
           | Some f -> Rel.Tuple.get f.tuple (Layout.pos f.layout c)
           | None ->
             invalid_arg "Eval.bound_key: dynamic bound without join context"))
      b.Plan.values
  in
  (Array.of_list values, if b.Plan.inclusive then `Inclusive else `Exclusive)
