(** Exchange/gather plumbing for parallel query execution.

    Partitions the leftmost scan of an eligible plan into contiguous in-order
    slices, runs one plan copy per slice on worker domains, and merges their
    outputs in partition order — so the gathered stream is byte-identical to
    serial execution of the same plan. See DESIGN.md, "Parallel execution". *)

type partition =
  | Pages of int list
      (** a contiguous run of the segment's page ids, in segment order *)
  | Key_range of Rss.Btree.bound option * Rss.Btree.bound option
      (** one sub-range from {!Rss.Btree.split_range} *)

val partitions :
  Semant.block -> Eval.env -> Plan.t -> dop:int -> partition list option
(** Partition the plan's leftmost scan into at most [dop] slices whose
    in-order concatenation is the serial scan. [None] when the plan shape is
    not parallelizable (leftmost leaf is not a segment scan or ascending
    index scan, or sits under a sort/merge-join), or the input is too small
    to yield at least two slices. Descends nested-loop outers only — inners
    are re-opened per outer tuple by each worker. *)

type gather = {
  next : unit -> Rel.Tuple.t option;
  close : unit -> unit;
      (** stop early: cancels and joins the remaining producers (their
          queued output is discarded) and releases the parallel bracket.
          Idempotent; [next] after [close] returns [None]. Draining [next]
          to [None] performs the same cleanup, so callers that consume the
          whole stream need not call this. *)
}

val gather :
  Rss.Pager.t ->
  partitions:partition list ->
  open_partition:(partition -> unit -> Rel.Tuple.t option) ->
  gather
(** Run [open_partition] on a worker domain per partition (bounded
    per-producer queues, one producer per partition) and return a cursor
    over the concatenation of their outputs in partition order. Producer
    exceptions re-raise from [next], after cancelling and joining the other
    producers. Wraps the whole run in {!Rss.Pager.enter_parallel} /
    [exit_parallel] and every producer in {!Rss.Pager.as_worker}. *)

val map_partitions : Rss.Pager.t -> (unit -> 'a) list -> 'a list
(** Run the thunks on worker domains and return their results in input
    order; a single thunk runs inline. All jobs are joined before the first
    exception (if any) re-raises. Same pager bracketing as {!gather}. *)
