(** WHERE-tree normalization.

    The optimizer considers the WHERE tree in conjunctive normal form; every
    conjunct is a {e boolean factor} — every returned tuple must satisfy
    every factor. A factor may be a whole OR-tree. This module converts
    resolved predicates to CNF — sound under the engine's SQL three-valued
    logic, where the standard rewrites (De Morgan, comparison negation,
    NOT BETWEEN / NOT IN expansions) preserve semantics even for NULL
    operands — and classifies factors:
    which tables they reference, whether they are sargable for a table (and
    the SARG in RSS form), and whether they are equi-join predicates. *)

type factor = {
  pred : Semant.spred;
  tables : int list;  (** FROM positions referenced, sorted *)
  sarg : (int * Rss.Sarg.t) option;
      (** when statically sargable: the single table it restricts and the
          DNF search argument over that relation's column positions *)
  sargable_at_open : bool;
      (** sargable once [?] placeholders are bound (a superset of
          [sarg <> None]); such factors filter inside the RSS at execution *)
  equi_join : (Semant.col_ref * Semant.col_ref) option;
      (** when the factor is T1.c1 = T2.c2 with distinct tables *)
  simple : (Semant.col_ref * Rss.Sarg.op * Rel.Value.t) option;
      (** when the factor is a single column-op-constant predicate (the form
          index matching works from) *)
  between : (Semant.col_ref * Rel.Value.t * Rel.Value.t) option;
      (** when the factor is column BETWEEN const AND const: one factor
          supplying both index bounds, with TABLE 1's own selectivity *)
  has_subquery : bool;
}

val boolean_factors : Semant.spred -> Semant.spred list
(** CNF conjuncts. A positive BETWEEN stays one factor (a negated one opens
    into its two strict comparisons). Distribution of OR over AND is capped;
    pathological inputs stay as single un-distributed factors. *)

val classify : Semant.block -> Semant.spred -> factor

val factors_of_block : Semant.block -> factor list
(** [boolean_factors] of the block's WHERE, classified. *)

val sarg_op_of_comparison : Ast.comparison -> Rss.Sarg.op

val canonicalize : Ast.query -> Ast.query * Rel.Value.t list
(** Rewrite WHERE-clause literal operands (of comparisons and BETWEEN, at
    every nesting depth) into positional [Param]s, returning the rewritten
    query and the extracted values in parameter order. IN-list values and
    SELECT / GROUP BY / ORDER BY literals are left in place. *)

val fingerprint : Ast.query -> (string * Ast.query * Rel.Value.t list) option
(** Plan-cache key for a statement: the canonicalized query rendered with a
    type tag per extracted literal, plus the canonical query and the literal
    bindings. [None] when the statement already contains user [?] parameters
    (those are served by the prepared-statement path, which carries its own
    bindings). *)
