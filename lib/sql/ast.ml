type comparison = Eq | Ne | Lt | Le | Gt | Ge

type arith = Add | Sub | Mul | Div

type agg_fn = Avg | Min | Max | Sum | Count

type order_dir = Asc | Desc

type expr =
  | Col of { table : string option; column : string }
  | Const of Rel.Value.t
  | Param of int
  | Binop of arith * expr * expr
  | Agg of agg_fn * expr

type predicate =
  | Cmp of expr * comparison * expr
  | Between of expr * expr * expr
  | In_list of expr * Rel.Value.t list
  | In_subquery of expr * query * bool
  | Cmp_subquery of expr * comparison * query
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate

and select_item =
  | Star
  | Sel_expr of expr * string option

and query = {
  select : select_item list;
  from : (string * string option) list;
  where : predicate option;
  group_by : expr list;
  order_by : (expr * order_dir) list;
}

type column_def = {
  col_name : string;
  col_ty : Rel.Value.ty;
}

type statement =
  | Select of query
  | Explain of { search : bool; q : query }
  | Create_table of { table : string; columns : column_def list }
  | Create_index of {
      index : string;
      table : string;
      columns : string list;
      clustered : bool;
    }
  | Insert of { table : string; values : Rel.Value.t list list }
  | Delete of { table : string; where : predicate option }
  | Update of {
      table : string;
      sets : (string * expr) list;
      where : predicate option;
    }
  | Drop_table of string
  | Drop_index of string
  | Update_statistics
  | Vacuum
  | Set_parallelism of int
  | Set_histograms of bool
  | Set_plan_cache_size of int
  | Set_commit_delay of int
  | Set_group_commit of bool
  | Begin_transaction
  | Commit
  | Rollback

let comparison_str = function
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let pp_comparison ppf c = Format.pp_print_string ppf (comparison_str c)

let arith_str = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let agg_str = function
  | Avg -> "AVG" | Min -> "MIN" | Max -> "MAX" | Sum -> "SUM" | Count -> "COUNT"

let rec pp_expr ppf = function
  | Col { table = None; column } -> Format.pp_print_string ppf column
  | Col { table = Some t; column } -> Format.fprintf ppf "%s.%s" t column
  | Const v -> Rel.Value.pp ppf v
  | Param _ -> Format.pp_print_string ppf "?"
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (arith_str op) pp_expr b
  | Agg (f, e) -> Format.fprintf ppf "%s(%a)" (agg_str f) pp_expr e

let pp_sep s ppf () = Format.pp_print_string ppf s

let rec pp_predicate ppf = function
  | Cmp (a, c, b) ->
    Format.fprintf ppf "%a %s %a" pp_expr a (comparison_str c) pp_expr b
  | Between (e, lo, hi) ->
    Format.fprintf ppf "%a BETWEEN %a AND %a" pp_expr e pp_expr lo pp_expr hi
  | In_list (e, vs) ->
    Format.fprintf ppf "%a IN (%a)" pp_expr e
      (Format.pp_print_list ~pp_sep:(pp_sep ", ") Rel.Value.pp)
      vs
  | In_subquery (e, q, negated) ->
    Format.fprintf ppf "%a %sIN (%a)" pp_expr e
      (if negated then "NOT " else "")
      pp_query q
  | Cmp_subquery (e, c, q) ->
    Format.fprintf ppf "%a %s (%a)" pp_expr e (comparison_str c) pp_query q
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp_predicate a pp_predicate b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp_predicate a pp_predicate b
  | Not p -> Format.fprintf ppf "NOT (%a)" pp_predicate p

and pp_select_item ppf = function
  | Star -> Format.pp_print_string ppf "*"
  | Sel_expr (e, None) -> pp_expr ppf e
  | Sel_expr (e, Some a) -> Format.fprintf ppf "%a AS %s" pp_expr e a

and pp_query ppf q =
  Format.fprintf ppf "SELECT %a FROM %a"
    (Format.pp_print_list ~pp_sep:(pp_sep ", ") pp_select_item)
    q.select
    (Format.pp_print_list ~pp_sep:(pp_sep ", ") (fun ppf (t, a) ->
         match a with
         | None -> Format.pp_print_string ppf t
         | Some a -> Format.fprintf ppf "%s %s" t a))
    q.from;
  Option.iter (fun w -> Format.fprintf ppf " WHERE %a" pp_predicate w) q.where;
  (match q.group_by with
   | [] -> ()
   | gs ->
     Format.fprintf ppf " GROUP BY %a"
       (Format.pp_print_list ~pp_sep:(pp_sep ", ") pp_expr)
       gs);
  match q.order_by with
  | [] -> ()
  | os ->
    Format.fprintf ppf " ORDER BY %a"
      (Format.pp_print_list ~pp_sep:(pp_sep ", ") (fun ppf (e, d) ->
           Format.fprintf ppf "%a %s" pp_expr e
             (match d with Asc -> "ASC" | Desc -> "DESC")))
      os

let pp_statement ppf = function
  | Select q -> pp_query ppf q
  | Explain { search; q } ->
    Format.fprintf ppf "EXPLAIN %s%a" (if search then "SEARCH " else "") pp_query q
  | Create_table { table; columns } ->
    Format.fprintf ppf "CREATE TABLE %s (%a)" table
      (Format.pp_print_list ~pp_sep:(pp_sep ", ") (fun ppf c ->
           Format.fprintf ppf "%s %s" c.col_name (Rel.Value.ty_to_string c.col_ty)))
      columns
  | Create_index { index; table; columns; clustered } ->
    Format.fprintf ppf "CREATE %sINDEX %s ON %s (%a)"
      (if clustered then "CLUSTERED " else "")
      index table
      (Format.pp_print_list ~pp_sep:(pp_sep ", ") Format.pp_print_string)
      columns
  | Insert { table; values } ->
    Format.fprintf ppf "INSERT INTO %s VALUES %a" table
      (Format.pp_print_list ~pp_sep:(pp_sep ", ") (fun ppf row ->
           Format.fprintf ppf "(%a)"
             (Format.pp_print_list ~pp_sep:(pp_sep ", ") Rel.Value.pp)
             row))
      values
  | Delete { table; where } ->
    Format.fprintf ppf "DELETE FROM %s" table;
    Option.iter (fun w -> Format.fprintf ppf " WHERE %a" pp_predicate w) where
  | Update { table; sets; where } ->
    Format.fprintf ppf "UPDATE %s SET %a" table
      (Format.pp_print_list ~pp_sep:(pp_sep ", ") (fun ppf (c, e) ->
           Format.fprintf ppf "%s = %a" c pp_expr e))
      sets;
    Option.iter (fun w -> Format.fprintf ppf " WHERE %a" pp_predicate w) where
  | Drop_table t -> Format.fprintf ppf "DROP TABLE %s" t
  | Drop_index i -> Format.fprintf ppf "DROP INDEX %s" i
  | Update_statistics -> Format.pp_print_string ppf "UPDATE STATISTICS"
  | Vacuum -> Format.pp_print_string ppf "VACUUM"
  | Set_parallelism n -> Format.fprintf ppf "SET PARALLELISM %d" n
  | Set_histograms b ->
    Format.fprintf ppf "SET HISTOGRAMS %s" (if b then "ON" else "OFF")
  | Set_plan_cache_size n -> Format.fprintf ppf "SET PLAN_CACHE_SIZE %d" n
  | Set_commit_delay us -> Format.fprintf ppf "SET COMMIT_DELAY %d" us
  | Set_group_commit b ->
    Format.fprintf ppf "SET GROUP_COMMIT %s" (if b then "ON" else "OFF")
  | Begin_transaction -> Format.pp_print_string ppf "BEGIN"
  | Commit -> Format.pp_print_string ppf "COMMIT"
  | Rollback -> Format.pp_print_string ppf "ROLLBACK"
