open Semant

type factor = {
  pred : spred;
  tables : int list;
  sarg : (int * Rss.Sarg.t) option;
  sargable_at_open : bool;
  equi_join : (col_ref * col_ref) option;
  simple : (col_ref * Rss.Sarg.op * Rel.Value.t) option;
  between : (col_ref * Rel.Value.t * Rel.Value.t) option;
  has_subquery : bool;
}

let sarg_op_of_comparison = function
  | Ast.Eq -> Rss.Sarg.Eq
  | Ast.Ne -> Rss.Sarg.Ne
  | Ast.Lt -> Rss.Sarg.Lt
  | Ast.Le -> Rss.Sarg.Le
  | Ast.Gt -> Rss.Sarg.Gt
  | Ast.Ge -> Rss.Sarg.Ge

let negate_comparison = function
  | Ast.Eq -> Ast.Ne
  | Ast.Ne -> Ast.Eq
  | Ast.Lt -> Ast.Ge
  | Ast.Le -> Ast.Gt
  | Ast.Gt -> Ast.Le
  | Ast.Ge -> Ast.Lt

(* Push NOT down to the leaves. Two-valued semantics (see .mli). *)
let rec push_not ~neg p =
  match p with
  | P_and (a, b) ->
    if neg then P_or (push_not ~neg a, push_not ~neg b)
    else P_and (push_not ~neg a, push_not ~neg b)
  | P_or (a, b) ->
    if neg then P_and (push_not ~neg a, push_not ~neg b)
    else P_or (push_not ~neg a, push_not ~neg b)
  | P_not a -> push_not ~neg:(not neg) a
  | P_cmp (a, c, b) -> if neg then P_cmp (a, negate_comparison c, b) else p
  | P_between (e, lo, hi) ->
    (* kept whole when positive: TABLE 1 has a dedicated BETWEEN selectivity
       and both bounds can match one index *)
    if neg then P_or (P_cmp (e, Ast.Lt, lo), P_cmp (e, Ast.Gt, hi)) else p
  | P_in_list (e, vs) ->
    if neg then
      List.fold_left
        (fun acc v -> P_and (acc, P_cmp (e, Ast.Ne, E_const v)))
        (P_cmp (e, Ast.Ne, E_const (List.hd vs)))
        (List.tl vs)
    else p
  | P_in_sub s -> if neg then P_in_sub { s with negated = not s.negated } else p
  | P_cmp_sub (e, c, b) -> if neg then P_cmp_sub (e, negate_comparison c, b) else p

(* Distribute OR over AND, bounded: past [max_conjuncts] the OR is left as a
   single (perfectly valid, just less decomposed) boolean factor. *)
let max_conjuncts = 64

let rec to_cnf p =
  match p with
  | P_and (a, b) -> to_cnf a @ to_cnf b
  | P_or (a, b) ->
    let ca = to_cnf a and cb = to_cnf b in
    if List.length ca * List.length cb > max_conjuncts then [ p ]
    else
      List.concat_map (fun fa -> List.map (fun fb -> P_or (fa, fb)) cb) ca
  | P_not _ -> assert false (* removed by push_not *)
  | P_cmp _ | P_between _ | P_in_list _ | P_in_sub _ | P_cmp_sub _ -> [ p ]

let boolean_factors p = to_cnf (push_not ~neg:false p)

(* --- sargability ---------------------------------------------------- *)

(* A sargable predicate is "column comparison-operator value" (or convertible
   to it); SARGs are DNF boolean expressions of such predicates over ONE
   table with constant values. *)
let rec sarg_of ~tab p : Rss.Sarg.t option =
  match p with
  | P_cmp (E_col { tab = t; col }, c, E_const v) when t = tab && c <> Ast.Ne ->
    Some [ [ { Rss.Sarg.col; op = sarg_op_of_comparison c; value = v } ] ]
  | P_cmp (E_col { tab = t; col }, Ast.Ne, E_const v) when t = tab ->
    Some [ [ { Rss.Sarg.col; op = Rss.Sarg.Ne; value = v } ] ]
  | P_cmp (E_const v, c, E_col { tab = t; col }) when t = tab ->
    (* value op column: flip *)
    let flip = function
      | Ast.Eq -> Ast.Eq | Ast.Ne -> Ast.Ne
      | Ast.Lt -> Ast.Gt | Ast.Le -> Ast.Ge
      | Ast.Gt -> Ast.Lt | Ast.Ge -> Ast.Le
    in
    Some [ [ { Rss.Sarg.col; op = sarg_op_of_comparison (flip c); value = v } ] ]
  | P_between (E_col { tab = t; col }, E_const lo, E_const hi) when t = tab ->
    Some
      [ [ { Rss.Sarg.col; op = Rss.Sarg.Ge; value = lo };
          { Rss.Sarg.col; op = Rss.Sarg.Le; value = hi } ] ]
  | P_in_list (E_col { tab = t; col }, vs) when t = tab ->
    Some (List.map (fun v -> [ { Rss.Sarg.col; op = Rss.Sarg.Eq; value = v } ]) vs)
  | P_or (a, b) ->
    (match sarg_of ~tab a, sarg_of ~tab b with
     | Some sa, Some sb -> Some (sa @ sb)
     | _ -> None)
  | P_and (a, b) ->
    (match sarg_of ~tab a, sarg_of ~tab b with
     | Some sa, Some sb -> Some (Rss.Sarg.conjoin sa sb)
     | _ -> None)
  | P_cmp _ | P_between _ | P_in_list _ | P_in_sub _ | P_cmp_sub _ | P_not _ ->
    None

(* Sargability with ? placeholders: the value is constant for the duration
   of an execution (bound at OPEN), so the predicate still becomes a search
   argument; only the static Sarg.t cannot be prebuilt. *)
let rec param_sargable ~tab (p : spred) =
  let const_or_param = function E_const _ | E_param _ -> true | _ -> false in
  match p with
  | P_cmp (E_col c, _, v) when c.tab = tab -> const_or_param v
  | P_cmp (v, _, E_col c) when c.tab = tab -> const_or_param v
  | P_between (E_col c, lo, hi) when c.tab = tab ->
    const_or_param lo && const_or_param hi
  | P_in_list (E_col c, _) when c.tab = tab -> true
  | P_or (a, b) | P_and (a, b) -> param_sargable ~tab a && param_sargable ~tab b
  | P_cmp _ | P_between _ | P_in_list _ | P_in_sub _ | P_cmp_sub _ | P_not _ ->
    false

let classify _block p =
  let tables = pred_tables p in
  let sarg =
    match tables with
    | [ tab ] when not (pred_has_subquery p) ->
      Option.map (fun s -> (tab, s)) (sarg_of ~tab p)
    | _ -> None
  in
  let sargable_at_open =
    sarg <> None
    || (match tables with
        | [ tab ] when not (pred_has_subquery p) -> param_sargable ~tab p
        | _ -> false)
  in
  let equi_join =
    match p with
    | P_cmp (E_col a, Ast.Eq, E_col b) when a.tab <> b.tab -> Some (a, b)
    | _ -> None
  in
  let simple =
    match p with
    | P_cmp (E_col c, op, E_const v) ->
      Some (c, sarg_op_of_comparison op, v)
    | P_cmp (E_const v, op, E_col c) ->
      let flip = function
        | Ast.Eq -> Rss.Sarg.Eq | Ast.Ne -> Rss.Sarg.Ne
        | Ast.Lt -> Rss.Sarg.Gt | Ast.Le -> Rss.Sarg.Ge
        | Ast.Gt -> Rss.Sarg.Lt | Ast.Ge -> Rss.Sarg.Le
      in
      Some (c, flip op, v)
    | _ -> None
  in
  let between =
    match p with
    | P_between (E_col c, E_const lo, E_const hi) -> Some (c, lo, hi)
    | _ -> None
  in
  { pred = p;
    tables;
    sarg;
    sargable_at_open;
    equi_join;
    simple;
    between;
    has_subquery = pred_has_subquery p }

let factors_of_block block =
  match block.where with
  | None -> []
  | Some w -> List.map (classify block) (boolean_factors w)

(* --- statement fingerprints (plan cache) ------------------------------- *)

(* Two statements share a compiled plan when they differ only in the literal
   constants of their WHERE clauses. Canonicalization rewrites each such
   Const into a positional Param (numbered in traversal order) and extracts
   the values for rebinding at execution. Only comparison and BETWEEN
   operands are rewritten: IN-list values are raw values in the AST (not
   expressions), and SELECT/GROUP BY/ORDER BY items feed projection and
   ordering, where a literal swap can change the output shape. *)

let rec query_has_param (q : Ast.query) =
  let rec expr = function
    | Ast.Param _ -> true
    | Ast.Col _ | Ast.Const _ -> false
    | Ast.Binop (_, a, b) -> expr a || expr b
    | Ast.Agg (_, e) -> expr e
  in
  let rec pred = function
    | Ast.Cmp (a, _, b) -> expr a || expr b
    | Ast.Between (e, lo, hi) -> expr e || expr lo || expr hi
    | Ast.In_list (e, _) -> expr e
    | Ast.In_subquery (e, q, _) -> expr e || query_has_param q
    | Ast.Cmp_subquery (e, _, q) -> expr e || query_has_param q
    | Ast.And (a, b) | Ast.Or (a, b) -> pred a || pred b
    | Ast.Not a -> pred a
  in
  List.exists
    (function Ast.Star -> false | Ast.Sel_expr (e, _) -> expr e)
    q.select
  || Option.fold ~none:false ~some:pred q.where
  || List.exists expr q.group_by
  || List.exists (fun (e, _) -> expr e) q.order_by

let canonicalize (q : Ast.query) =
  let values = ref [] in
  let n = ref 0 in
  let param v =
    let k = !n in
    incr n;
    values := v :: !values;
    Ast.Param k
  in
  let rec expr (e : Ast.expr) =
    match e with
    | Ast.Const v -> param v
    | Ast.Col _ | Ast.Param _ -> e
    | Ast.Binop (op, a, b) -> Ast.Binop (op, expr a, expr b)
    | Ast.Agg (f, e) -> Ast.Agg (f, expr e)
  in
  let rec pred (p : Ast.predicate) =
    match p with
    | Ast.Cmp (a, c, b) -> Ast.Cmp (expr a, c, expr b)
    | Ast.Between (e, lo, hi) -> Ast.Between (expr e, expr lo, expr hi)
    | Ast.In_list (e, vs) -> Ast.In_list (expr e, vs)
    | Ast.In_subquery (e, sub, neg) -> Ast.In_subquery (expr e, query sub, neg)
    | Ast.Cmp_subquery (e, c, sub) -> Ast.Cmp_subquery (expr e, c, query sub)
    | Ast.And (a, b) -> Ast.And (pred a, pred b)
    | Ast.Or (a, b) -> Ast.Or (pred a, pred b)
    | Ast.Not a -> Ast.Not (pred a)
  and query (q : Ast.query) = { q with where = Option.map pred q.where } in
  let q' = query q in
  (q', List.rev !values)

let value_ty_tag v =
  match Rel.Value.type_of v with
  | Some ty -> Rel.Value.ty_to_string ty
  | None -> "null"

(* Compact unambiguous serialization of a canonicalized query, written
   straight into a Buffer. The key is computed on every cache probe, so
   rendering through Format (boxes, %a dispatch) would cost more than the
   probe saves; this writer is the fingerprint hot path. Strings are length-
   prefixed so no identifier or literal can run into the next token. *)
let render_query buf (q : Ast.query) =
  let add = Buffer.add_string buf and ch = Buffer.add_char buf in
  let str s =
    add (string_of_int (String.length s));
    ch ':';
    add s
  in
  let value = function
    | Rel.Value.Int i -> ch 'i'; add (string_of_int i)
    | Rel.Value.Float f -> ch 'f'; add (string_of_float f)
    | Rel.Value.Str s -> ch 's'; str s
    | Rel.Value.Null -> ch 'n'
  in
  let rec expr = function
    | Ast.Col { table; column } ->
      ch 'c';
      (match table with Some t -> str t | None -> ch '-');
      str column
    | Ast.Const v -> ch 'k'; value v; ch ';'
    | Ast.Param i -> ch 'p'; add (string_of_int i); ch ';'
    | Ast.Binop (op, a, b) ->
      ch (match op with Ast.Add -> '+' | Ast.Sub -> '-' | Ast.Mul -> '*' | Ast.Div -> '/');
      expr a;
      expr b
    | Ast.Agg (f, e) ->
      add
        (match f with
         | Ast.Avg -> "Av" | Ast.Min -> "Mn" | Ast.Max -> "Mx"
         | Ast.Sum -> "Sm" | Ast.Count -> "Ct");
      expr e
  in
  let cmp op =
    add
      (match op with
       | Ast.Eq -> "=" | Ast.Ne -> "!=" | Ast.Lt -> "<" | Ast.Le -> "<="
       | Ast.Gt -> ">" | Ast.Ge -> ">=")
  in
  let rec pred = function
    | Ast.Cmp (a, c, b) -> ch 'C'; expr a; cmp c; expr b
    | Ast.Between (e, lo, hi) -> ch 'B'; expr e; expr lo; expr hi
    | Ast.In_list (e, vs) ->
      ch 'I';
      expr e;
      List.iter value vs;
      ch ';'
    | Ast.In_subquery (e, sub, neg) ->
      ch (if neg then 'J' else 'j');
      expr e;
      query sub
    | Ast.Cmp_subquery (e, c, sub) -> ch 'S'; expr e; cmp c; query sub
    | Ast.And (a, b) -> ch '&'; pred a; pred b
    | Ast.Or (a, b) -> ch '|'; pred a; pred b
    | Ast.Not a -> ch '!'; pred a
  and query (q : Ast.query) =
    ch 'Q';
    List.iter
      (function
        | Ast.Star -> ch '*'
        | Ast.Sel_expr (e, alias) ->
          expr e;
          (match alias with Some a -> ch '@'; str a | None -> ()))
      q.select;
    ch 'F';
    List.iter
      (fun (t, alias) ->
        str t;
        match alias with Some a -> ch '@'; str a | None -> ())
      q.from;
    (match q.where with None -> () | Some p -> ch 'W'; pred p);
    (match q.group_by with
     | [] -> ()
     | es -> ch 'G'; List.iter expr es);
    match q.order_by with
    | [] -> ()
    | es ->
      ch 'O';
      List.iter
        (fun (e, d) ->
          expr e;
          ch (match d with Ast.Asc -> '^' | Ast.Desc -> 'v'))
        es
  in
  query q

let fingerprint (q : Ast.query) =
  if query_has_param q then None
  else begin
    let q', values = canonicalize q in
    (* Params render positionally, so appending the extracted values' type
       vector makes the key unambiguous (same shape, int vs string literal
       must not collide — an execution-time type error would otherwise turn
       into a silently different result). *)
    let buf = Buffer.create 128 in
    render_query buf q';
    Buffer.add_char buf '#';
    List.iter
      (fun v ->
        Buffer.add_string buf (value_ty_tag v);
        Buffer.add_char buf ',')
      values;
    Some (Buffer.contents buf, q', values)
  end
