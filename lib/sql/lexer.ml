type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Kw of string
  | Sym of string
  | Eof

exception Error of string * int

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "IN"; "BETWEEN"; "GROUP";
    "ORDER"; "BY"; "ASC"; "DESC"; "AS"; "CREATE"; "TABLE"; "INDEX"; "CLUSTERED";
    "ON"; "INSERT"; "INTO"; "VALUES"; "DELETE"; "UPDATE"; "SET"; "STATISTICS"; "SEARCH";
    "PARALLELISM"; "HISTOGRAMS"; "OFF"; "PLAN_CACHE_SIZE"; "COMMIT_DELAY"; "GROUP_COMMIT";
    "BEGIN"; "TRANSACTION"; "COMMIT"; "ROLLBACK"; "EXPLAIN"; "DROP"; "INT"; "FLOAT";
    "STRING"; "NULL"; "VACUUM"; "AVG"; "MIN"; "MAX"; "SUM"; "COUNT" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit tok off = toks := (tok, off) :: !toks in
  let rec go i =
    if i >= n then emit Eof i
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
        (* SQL line comment *)
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '\'' ->
        (* string literal; '' escapes a quote *)
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then raise (Error ("unterminated string literal", i))
          else if src.[j] = '\'' then
            if j + 1 < n && src.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              scan (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf src.[j];
            scan (j + 1)
          end
        in
        let next = scan (i + 1) in
        emit (Str_lit (Buffer.contents buf)) i;
        go next
      | c when is_digit c ->
        let rec scan j = if j < n && is_digit src.[j] then scan (j + 1) else j in
        let int_end = scan i in
        if int_end < n && src.[int_end] = '.' && int_end + 1 < n && is_digit src.[int_end + 1]
        then begin
          let frac_end = scan (int_end + 1) in
          emit (Float_lit (float_of_string (String.sub src i (frac_end - i)))) i;
          go frac_end
        end
        else begin
          emit (Int_lit (int_of_string (String.sub src i (int_end - i)))) i;
          go int_end
        end
      | c when is_ident_start c ->
        let rec scan j = if j < n && is_ident_char src.[j] then scan (j + 1) else j in
        let e = scan i in
        let word = String.sub src i (e - i) in
        let up = String.uppercase_ascii word in
        if List.mem up keywords then emit (Kw up) i else emit (Ident word) i;
        go e
      | '<' when i + 1 < n && (src.[i + 1] = '=' || src.[i + 1] = '>') ->
        emit (Sym (String.sub src i 2)) i;
        go (i + 2)
      | '>' when i + 1 < n && src.[i + 1] = '=' ->
        emit (Sym ">=") i;
        go (i + 2)
      | '!' when i + 1 < n && src.[i + 1] = '=' ->
        emit (Sym "<>") i;
        go (i + 2)
      | ('=' | '<' | '>' | '(' | ')' | ',' | '.' | '*' | '+' | '-' | '/' | ';' | '?') as c ->
        emit (Sym (String.make 1 c)) i;
        go (i + 1)
      | c -> raise (Error (Printf.sprintf "illegal character %C" c, i))
  in
  go 0;
  List.rev !toks

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %S" s
  | Int_lit i -> Format.fprintf ppf "integer %d" i
  | Float_lit f -> Format.fprintf ppf "float %g" f
  | Str_lit s -> Format.fprintf ppf "string %S" s
  | Kw k -> Format.fprintf ppf "keyword %s" k
  | Sym s -> Format.fprintf ppf "%S" s
  | Eof -> Format.pp_print_string ppf "end of input"
