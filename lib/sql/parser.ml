exception Error of string * int

type state = {
  toks : (Lexer.token * int) array;
  mutable pos : int;
  mutable params : int;  (* number of ? placeholders seen so far *)
}

let peek st = fst st.toks.(st.pos)
let offset st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st msg = raise (Error (msg, offset st))

let expect_kw st kw =
  match peek st with
  | Lexer.Kw k when k = kw -> advance st
  | t -> fail st (Format.asprintf "expected %s, found %a" kw Lexer.pp_token t)

let expect_sym st s =
  match peek st with
  | Lexer.Sym x when x = s -> advance st
  | t -> fail st (Format.asprintf "expected %S, found %a" s Lexer.pp_token t)

let accept_kw st kw =
  match peek st with
  | Lexer.Kw k when k = kw ->
    advance st;
    true
  | _ -> false

let accept_sym st s =
  match peek st with
  | Lexer.Sym x when x = s ->
    advance st;
    true
  | _ -> false

let ident st =
  match peek st with
  | Lexer.Ident s ->
    advance st;
    s
  | t -> fail st (Format.asprintf "expected identifier, found %a" Lexer.pp_token t)

let comparison st =
  match peek st with
  | Lexer.Sym "=" -> advance st; Some Ast.Eq
  | Lexer.Sym "<>" -> advance st; Some Ast.Ne
  | Lexer.Sym "<" -> advance st; Some Ast.Lt
  | Lexer.Sym "<=" -> advance st; Some Ast.Le
  | Lexer.Sym ">" -> advance st; Some Ast.Gt
  | Lexer.Sym ">=" -> advance st; Some Ast.Ge
  | _ -> None

let constant st =
  match peek st with
  | Lexer.Int_lit i -> advance st; Some (Rel.Value.Int i)
  | Lexer.Float_lit f -> advance st; Some (Rel.Value.Float f)
  | Lexer.Str_lit s -> advance st; Some (Rel.Value.Str s)
  | Lexer.Kw "NULL" -> advance st; Some Rel.Value.Null
  | Lexer.Sym "-" ->
    (match fst st.toks.(st.pos + 1) with
     | Lexer.Int_lit i -> advance st; advance st; Some (Rel.Value.Int (-i))
     | Lexer.Float_lit f -> advance st; advance st; Some (Rel.Value.Float (-.f))
     | _ -> None)
  | _ -> None

let agg_fn = function
  | "AVG" -> Some Ast.Avg
  | "MIN" -> Some Ast.Min
  | "MAX" -> Some Ast.Max
  | "SUM" -> Some Ast.Sum
  | "COUNT" -> Some Ast.Count
  | _ -> None

let rec expr st =
  let lhs = term st in
  let rec tail lhs =
    if accept_sym st "+" then tail (Ast.Binop (Ast.Add, lhs, term st))
    else if accept_sym st "-" then tail (Ast.Binop (Ast.Sub, lhs, term st))
    else lhs
  in
  tail lhs

and term st =
  let lhs = factor st in
  let rec tail lhs =
    if accept_sym st "*" then tail (Ast.Binop (Ast.Mul, lhs, factor st))
    else if accept_sym st "/" then tail (Ast.Binop (Ast.Div, lhs, factor st))
    else lhs
  in
  tail lhs

and factor st =
  match peek st with
  | Lexer.Kw k when agg_fn k <> None ->
    let f = Option.get (agg_fn k) in
    advance st;
    expect_sym st "(";
    let e = if accept_sym st "*" then Ast.Const (Rel.Value.Int 1) else expr st in
    expect_sym st ")";
    Ast.Agg (f, e)
  | Lexer.Ident _ ->
    let first = ident st in
    if accept_sym st "." then
      let column = ident st in
      Ast.Col { table = Some first; column }
    else Ast.Col { table = None; column = first }
  | Lexer.Sym "(" ->
    advance st;
    let e = expr st in
    expect_sym st ")";
    e
  | Lexer.Sym "?" ->
    advance st;
    let i = st.params in
    st.params <- i + 1;
    Ast.Param i
  | _ ->
    (match constant st with
     | Some v -> Ast.Const v
     | None -> fail st "expected expression")

let rec predicate st = or_pred st

and or_pred st =
  let lhs = and_pred st in
  if accept_kw st "OR" then Ast.Or (lhs, or_pred st) else lhs

and and_pred st =
  let lhs = not_pred st in
  if accept_kw st "AND" then Ast.And (lhs, and_pred st) else lhs

and not_pred st =
  if accept_kw st "NOT" then Ast.Not (not_pred st) else primary_pred st

and primary_pred st =
  (* A '(' may open a parenthesized predicate or a parenthesized scalar
     expression on the left of a comparison; backtrack on failure. *)
  match peek st with
  | Lexer.Sym "(" ->
    let save = st.pos and save_params = st.params in
    (try
       advance st;
       let p = predicate st in
       expect_sym st ")";
       p
     with Error _ ->
       st.pos <- save;
       st.params <- save_params;
       comparison_pred st)
  | _ -> comparison_pred st

and comparison_pred st =
  let lhs = expr st in
  if accept_kw st "BETWEEN" then begin
    let lo = expr st in
    expect_kw st "AND";
    let hi = expr st in
    Ast.Between (lhs, lo, hi)
  end
  else if accept_kw st "NOT" then begin
    expect_kw st "IN";
    in_tail st lhs ~negated:true
  end
  else if accept_kw st "IN" then in_tail st lhs ~negated:false
  else
    match comparison st with
    | None -> fail st "expected comparison operator, BETWEEN or IN"
    | Some cmp ->
      (match peek st, fst st.toks.(st.pos + 1) with
       | Lexer.Sym "(", Lexer.Kw "SELECT" ->
         advance st;
         let q = query st in
         expect_sym st ")";
         Ast.Cmp_subquery (lhs, cmp, q)
       | _ -> Ast.Cmp (lhs, cmp, expr st))

and in_tail st lhs ~negated =
  expect_sym st "(";
  match peek st with
  | Lexer.Kw "SELECT" ->
    let q = query st in
    expect_sym st ")";
    Ast.In_subquery (lhs, q, negated)
  | _ ->
    let rec values acc =
      match constant st with
      | Some v -> if accept_sym st "," then values (v :: acc) else List.rev (v :: acc)
      | None -> fail st "expected constant in IN list"
    in
    let vs = values [] in
    expect_sym st ")";
    let inlist = Ast.In_list (lhs, vs) in
    if negated then Ast.Not inlist else inlist

and select_item st =
  if accept_sym st "*" then Ast.Star
  else
    let e = expr st in
    if accept_kw st "AS" then Ast.Sel_expr (e, Some (ident st))
    else
      match peek st with
      | Lexer.Ident a ->
        advance st;
        Ast.Sel_expr (e, Some a)
      | _ -> Ast.Sel_expr (e, None)

and query st =
  expect_kw st "SELECT";
  let rec items acc =
    let it = select_item st in
    if accept_sym st "," then items (it :: acc) else List.rev (it :: acc)
  in
  let select = items [] in
  expect_kw st "FROM";
  let rec tables acc =
    let t = ident st in
    let alias = match peek st with
      | Lexer.Ident a -> advance st; Some a
      | _ -> None
    in
    if accept_sym st "," then tables ((t, alias) :: acc)
    else List.rev ((t, alias) :: acc)
  in
  let from = tables [] in
  let where = if accept_kw st "WHERE" then Some (predicate st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let rec go acc =
        let e = expr st in
        if accept_sym st "," then go (e :: acc) else List.rev (e :: acc)
      in
      go []
    end
    else []
  in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let rec go acc =
        let e = expr st in
        let dir =
          if accept_kw st "DESC" then Ast.Desc
          else begin
            ignore (accept_kw st "ASC");
            Ast.Asc
          end
        in
        if accept_sym st "," then go ((e, dir) :: acc) else List.rev ((e, dir) :: acc)
      in
      go []
    end
    else []
  in
  { Ast.select; from; where; group_by; order_by }

let column_type st =
  match peek st with
  | Lexer.Kw "INT" -> advance st; Rel.Value.Tint
  | Lexer.Kw "FLOAT" -> advance st; Rel.Value.Tfloat
  | Lexer.Kw "STRING" -> advance st; Rel.Value.Tstr
  | Lexer.Ident id
    when (let u = String.uppercase_ascii id in u = "CHAR" || u = "VARCHAR") ->
    (* CHAR(n) / VARCHAR(n) are aliases for STRING; strings are stored
       variable-length, so the declared length is accepted and ignored *)
    advance st;
    if accept_sym st "(" then begin
      (match peek st with
       | Lexer.Int_lit n when n > 0 -> advance st
       | t ->
         fail st
           (Format.asprintf "expected positive character length, found %a"
              Lexer.pp_token t));
      expect_sym st ")"
    end;
    Rel.Value.Tstr
  | t -> fail st (Format.asprintf "expected column type, found %a" Lexer.pp_token t)

let statement st =
  match peek st with
  | Lexer.Kw "SELECT" -> Ast.Select (query st)
  | Lexer.Kw "EXPLAIN" ->
    advance st;
    let search = accept_kw st "SEARCH" in
    Ast.Explain { search; q = query st }
  | Lexer.Kw "CREATE" ->
    advance st;
    let clustered = accept_kw st "CLUSTERED" in
    if accept_kw st "TABLE" then begin
      if clustered then fail st "CLUSTERED applies to indexes, not tables";
      let table = ident st in
      expect_sym st "(";
      let rec cols acc =
        let col_name = ident st in
        let col_ty = column_type st in
        let def = { Ast.col_name; col_ty } in
        if accept_sym st "," then cols (def :: acc) else List.rev (def :: acc)
      in
      let columns = cols [] in
      expect_sym st ")";
      Ast.Create_table { table; columns }
    end
    else begin
      expect_kw st "INDEX";
      let index = ident st in
      expect_kw st "ON";
      let table = ident st in
      expect_sym st "(";
      let rec cols acc =
        let c = ident st in
        if accept_sym st "," then cols (c :: acc) else List.rev (c :: acc)
      in
      let columns = cols [] in
      expect_sym st ")";
      Ast.Create_index { index; table; columns; clustered }
    end
  | Lexer.Kw "INSERT" ->
    advance st;
    expect_kw st "INTO";
    let table = ident st in
    expect_kw st "VALUES";
    let row () =
      expect_sym st "(";
      let rec vals acc =
        match constant st with
        | Some v -> if accept_sym st "," then vals (v :: acc) else List.rev (v :: acc)
        | None -> fail st "expected constant in VALUES"
      in
      let vs = vals [] in
      expect_sym st ")";
      vs
    in
    let rec rows acc =
      let r = row () in
      if accept_sym st "," then rows (r :: acc) else List.rev (r :: acc)
    in
    Ast.Insert { table; values = rows [] }
  | Lexer.Kw "DELETE" ->
    advance st;
    expect_kw st "FROM";
    let table = ident st in
    let where = if accept_kw st "WHERE" then Some (predicate st) else None in
    Ast.Delete { table; where }
  | Lexer.Kw "UPDATE" ->
    advance st;
    if accept_kw st "STATISTICS" then Ast.Update_statistics
    else begin
      let table = ident st in
      expect_kw st "SET";
      let rec sets acc =
        let col = ident st in
        expect_sym st "=";
        let e = expr st in
        if accept_sym st "," then sets ((col, e) :: acc)
        else List.rev ((col, e) :: acc)
      in
      let sets = sets [] in
      let where = if accept_kw st "WHERE" then Some (predicate st) else None in
      Ast.Update { table; sets; where }
    end
  | Lexer.Kw "DROP" ->
    advance st;
    if accept_kw st "TABLE" then Ast.Drop_table (ident st)
    else begin
      expect_kw st "INDEX";
      Ast.Drop_index (ident st)
    end
  | Lexer.Kw "SET" ->
    advance st;
    if accept_kw st "HISTOGRAMS" then begin
      if accept_kw st "ON" then Ast.Set_histograms true
      else begin
        expect_kw st "OFF";
        Ast.Set_histograms false
      end
    end
    else if accept_kw st "PLAN_CACHE_SIZE" then begin
      match peek st with
      | Lexer.Int_lit n when n >= 1 ->
        advance st;
        Ast.Set_plan_cache_size n
      | t ->
        fail st
          (Format.asprintf "expected positive plan cache size, found %a"
             Lexer.pp_token t)
    end
    else if accept_kw st "COMMIT_DELAY" then begin
      match peek st with
      | Lexer.Int_lit n when n >= 0 ->
        advance st;
        Ast.Set_commit_delay n
      | t ->
        fail st
          (Format.asprintf "expected commit delay in microseconds, found %a"
             Lexer.pp_token t)
    end
    else if accept_kw st "GROUP_COMMIT" then begin
      if accept_kw st "ON" then Ast.Set_group_commit true
      else begin
        expect_kw st "OFF";
        Ast.Set_group_commit false
      end
    end
    else begin
      expect_kw st "PARALLELISM";
      match peek st with
      | Lexer.Int_lit n when n >= 1 ->
        advance st;
        Ast.Set_parallelism n
      | t ->
        fail st
          (Format.asprintf "expected positive degree of parallelism, found %a"
             Lexer.pp_token t)
    end
  | Lexer.Kw "BEGIN" ->
    advance st;
    ignore (accept_kw st "TRANSACTION");
    Ast.Begin_transaction
  | Lexer.Kw "COMMIT" ->
    advance st;
    Ast.Commit
  | Lexer.Kw "ROLLBACK" ->
    advance st;
    Ast.Rollback
  | Lexer.Kw "VACUUM" ->
    advance st;
    Ast.Vacuum
  | t -> fail st (Format.asprintf "expected statement, found %a" Lexer.pp_token t)

let make_state src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error (msg, off) -> raise (Error (msg, off))
  in
  (* A second EOF sentinel lets two-token lookahead run safely at the end. *)
  let toks = toks @ [ (Lexer.Eof, String.length src) ] in
  { toks = Array.of_list toks; pos = 0; params = 0 }

let check_eof st =
  ignore (accept_sym st ";");
  match peek st with
  | Lexer.Eof -> ()
  | t -> fail st (Format.asprintf "trailing input: %a" Lexer.pp_token t)

let parse_statement src =
  let st = make_state src in
  let s = statement st in
  check_eof st;
  s

let parse_query src =
  let st = make_state src in
  let q = query st in
  check_eof st;
  q

let parse_script src =
  let st = make_state src in
  let rec go acc =
    match peek st with
    | Lexer.Eof -> List.rev acc
    | _ ->
      let s = statement st in
      if accept_sym st ";" then go (s :: acc)
      else begin
        (match peek st with
         | Lexer.Eof -> ()
         | t -> fail st (Format.asprintf "expected ';', found %a" Lexer.pp_token t));
        List.rev (s :: acc)
      end
  in
  go []
