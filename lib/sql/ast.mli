(** Abstract syntax for the SQL subset the paper exercises.

    A query block is a SELECT list, a FROM list and a WHERE tree; a statement
    may contain many blocks because a predicate operand may itself be a query
    (nested and correlated subqueries, section 6). DDL/DML statements cover
    what the examples need: CREATE TABLE / INDEX, INSERT, DELETE,
    UPDATE STATISTICS, EXPLAIN. *)

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type arith = Add | Sub | Mul | Div

type agg_fn = Avg | Min | Max | Sum | Count

type order_dir = Asc | Desc

type expr =
  | Col of { table : string option; column : string }
  | Const of Rel.Value.t
  | Param of int
      (** [?] placeholder, numbered left to right from 0; bound at
          execution (prepared statements: compile once, run many times) *)
  | Binop of arith * expr * expr
  | Agg of agg_fn * expr

type predicate =
  | Cmp of expr * comparison * expr
  | Between of expr * expr * expr      (** e BETWEEN lo AND hi *)
  | In_list of expr * Rel.Value.t list
  | In_subquery of expr * query * bool (** [true] = NOT IN *)
  | Cmp_subquery of expr * comparison * query
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate

and select_item =
  | Star
  | Sel_expr of expr * string option  (** expression with optional alias *)

and query = {
  select : select_item list;
  from : (string * string option) list;  (** table name, optional alias *)
  where : predicate option;
  group_by : expr list;
  order_by : (expr * order_dir) list;
}

type column_def = {
  col_name : string;
  col_ty : Rel.Value.ty;
}

type statement =
  | Select of query
  | Explain of { search : bool; q : query }
      (** EXPLAIN [SEARCH]: plan only, or the whole solution tree *)
  | Create_table of { table : string; columns : column_def list }
  | Create_index of {
      index : string;
      table : string;
      columns : string list;
      clustered : bool;
    }
  | Insert of { table : string; values : Rel.Value.t list list }
  | Delete of { table : string; where : predicate option }
  | Update of {
      table : string;
      sets : (string * expr) list;  (** column := expression *)
      where : predicate option;
    }
  | Drop_table of string
  | Drop_index of string
  | Update_statistics
  | Vacuum
  | Set_parallelism of int
      (** SET PARALLELISM n: cap the degree of parallelism the optimizer may
          choose for subsequent queries; 1 disables parallel execution *)
  | Set_histograms of bool
      (** SET HISTOGRAMS ON/OFF: whether selectivity estimation consults the
          per-column histograms UPDATE STATISTICS collects; OFF pins the
          paper's value-independent TABLE 1 constants (and disables
          cardinality feedback), for reproducing the seed benchmarks *)
  | Set_plan_cache_size of int
      (** SET PLAN_CACHE_SIZE n: LRU bound on the shared compiled-plan cache
          and its statement-text memo, so long-lived server sessions replace
          entries instead of growing without bound *)
  | Set_commit_delay of int
      (** SET COMMIT_DELAY us: engine-wide group-commit batching window in
          microseconds — how long a commit leader waits for other sessions'
          commits to join its WAL flush; 0 flushes immediately *)
  | Set_group_commit of bool
      (** SET GROUP_COMMIT ON/OFF: OFF makes every commit pay a private WAL
          flush (the baseline group commit is benchmarked against) *)
  | Begin_transaction
  | Commit
  | Rollback

val pp_comparison : Format.formatter -> comparison -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_predicate : Format.formatter -> predicate -> unit
val pp_query : Format.formatter -> query -> unit
val pp_statement : Format.formatter -> statement -> unit
