(* The shared half of the former Database: one engine (catalog, buffer pool,
   WAL, lock table, plan cache, transaction-id fountain, MVCC status table)
   serving N sessions. Session-local state — the active transaction, SET
   overrides, prepared statements, per-session counters — lives in
   Session.t.

   Concurrency follows the buffer pool's latched-only-when-concurrent
   treatment from PR 6: embedded single-session use pays no synchronization
   at all (with_latch / with_read_latch are plain calls), and the
   wire-protocol server flips [set_latched true] for the lifetime of its
   listener. In latched mode the engine latch is a reader/writer latch:

   - statements that mutate engine state (DML, DDL, transaction control,
     SET, VACUUM) hold it exclusively, one at a time;
   - read-only statements (SELECT, EXPLAIN, prepared execution) hold it
     shared and run concurrently across sessions — their isolation comes
     from MVCC snapshots, not locks, so a reader is never Blocked by an
     uncommitted writer.

   Writer preference (readers admit only while no writer waits) keeps a
   stream of point reads from starving DML. 2PL still mediates write/write
   conflicts: a writer whose lock request is blocked waits on
   [locks_changed], releasing the write latch for the duration so the
   conflicting holder can commit, and every lock release broadcasts.

   The mutex only guards the latch state (readers/writer counts) and the
   condition variables; statement bodies run outside it. *)

type t = {
  cat : Catalog.t;
  wal : Rss.Wal.t;
  mutable locks : Rss.Lock_table.t;
  plan_cache : Plan_cache.t;
  mvcc : Rss.Mvcc.t;
  mutable next_txn : int;
  mutable next_session : int;
  latch : Mutex.t;
  latch_changed : Condition.t;  (* reader/writer latch state transitions *)
  locks_changed : Condition.t;  (* some transaction released 2PL locks *)
  mutable readers : int;        (* sessions holding the latch shared *)
  mutable writer : bool;        (* a session holds the latch exclusively *)
  mutable writers_waiting : int;
  mutable latched : bool;
  mutable live_sessions : int;
  (* -- group commit: one WAL flush amortized across a commit window -- *)
  gc_m : Mutex.t;               (* guards gc_* below; taken after the latch *)
  gc_cond : Condition.t;        (* durability watermark / leadership changes *)
  mutable gc_next_ticket : int;
  mutable gc_queue : (int * int) list;    (* (ticket, txn), newest first *)
  mutable gc_inflight : (int * int) list; (* appended, not durable; oldest first *)
  mutable gc_durable : int;     (* highest ticket whose commit record is durable *)
  mutable gc_leader : bool;     (* a session is running the flush protocol *)
  mutable gc_enabled : bool;    (* off: every commit pays a private flush *)
  mutable gc_delay : float;     (* leader batching window, seconds *)
  mutable gc_hold : bool;       (* harness: defer all flushing to flush_group *)
  mutable gc_enqueued : int;
  mutable gc_flushes : int;
  mutable gc_grouped : int;     (* commits made durable by group flushes *)
  mutable gc_max_batch : int;
  (* -- blocked-transaction events: tests wait on these, never poll -- *)
  blocked_changed : Condition.t;
  mutable block_events : int;
}

let create ?buffer_pages () =
  let cat = Catalog.create ?buffer_pages () in
  let plan_cache = Plan_cache.create () in
  let pager = Catalog.pager cat in
  (* LRU evictions land in whatever counters record is active, so a server
     session's EXPLAIN attributes them to the session that caused them *)
  Plan_cache.set_evict_hook plan_cache (fun n ->
      let c = Rss.Pager.counters pager in
      c.Rss.Counters.plan_cache_evictions <-
        c.Rss.Counters.plan_cache_evictions + n);
  { cat;
    wal = Rss.Wal.create ();
    locks = Rss.Lock_table.create ();
    plan_cache;
    mvcc = Rss.Mvcc.create ();
    next_txn = 1;
    next_session = 1;
    latch = Mutex.create ();
    latch_changed = Condition.create ();
    locks_changed = Condition.create ();
    readers = 0;
    writer = false;
    writers_waiting = 0;
    latched = false;
    live_sessions = 0;
    gc_m = Mutex.create ();
    gc_cond = Condition.create ();
    gc_next_ticket = 1;
    gc_queue = [];
    gc_inflight = [];
    gc_durable = 0;
    gc_leader = false;
    gc_enabled = true;
    gc_delay = 0.;
    gc_hold = false;
    gc_enqueued = 0;
    gc_flushes = 0;
    gc_grouped = 0;
    gc_max_batch = 0;
    blocked_changed = Condition.create ();
    block_events = 0 }

let catalog t = t.cat
let pager t = Catalog.pager t.cat
let wal t = t.wal
let lock_table t = t.locks
let plan_cache t = t.plan_cache
let mvcc t = t.mvcc

let set_latched t on =
  t.latched <- on;
  (* concurrent readers touch the buffer pool from several domains *)
  Rss.Pager.set_shared (pager t) on

let latched t = t.latched

(* Must be called with t.latch held. *)
let acquire_write_locked t =
  t.writers_waiting <- t.writers_waiting + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.latch_changed t.latch
  done;
  t.writers_waiting <- t.writers_waiting - 1;
  t.writer <- true

let release_write t =
  Mutex.lock t.latch;
  t.writer <- false;
  Condition.broadcast t.latch_changed;
  Mutex.unlock t.latch

let with_latch t f =
  if not t.latched then f ()
  else begin
    Mutex.lock t.latch;
    acquire_write_locked t;
    Mutex.unlock t.latch;
    Fun.protect ~finally:(fun () -> release_write t) f
  end

let with_read_latch t f =
  if not t.latched then f ()
  else begin
    Mutex.lock t.latch;
    (* writer preference: a waiting writer bars new readers *)
    while t.writer || t.writers_waiting > 0 do
      Condition.wait t.latch_changed t.latch
    done;
    t.readers <- t.readers + 1;
    Mutex.unlock t.latch;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock t.latch;
        t.readers <- t.readers - 1;
        if t.readers = 0 then Condition.broadcast t.latch_changed;
        Mutex.unlock t.latch)
      f
  end

(* Called from inside a [with_latch] (write) body whose 2PL lock request was
   Blocked: atomically surrender the write latch and sleep until some
   transaction releases locks, then re-acquire exclusivity. Holding the
   mutex across surrender-and-wait closes the lost-wakeup window — the lock
   holder needs the write latch to commit, which it cannot take until our
   broadcast, and its release broadcast needs this mutex. *)
let wait_locks t =
  if t.latched then begin
    Mutex.lock t.latch;
    t.writer <- false;
    Condition.broadcast t.latch_changed;
    Condition.wait t.locks_changed t.latch;
    acquire_write_locked t;
    Mutex.unlock t.latch
  end

let signal_locks t =
  if t.latched then begin
    Mutex.lock t.latch;
    Condition.broadcast t.locks_changed;
    Mutex.unlock t.latch
  end

let fresh_txn_id t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  id

let fresh_session_id t =
  let id = t.next_session in
  t.next_session <- id + 1;
  id

(* --- group commit ---------------------------------------------------------

   Committing sessions enqueue their transaction under the engine write
   latch — so ticket order equals MVCC visibility order equals the order the
   leader appends commit records, which keeps prefix-durability sound: if a
   commit's ack was released, every commit it could depend on is in the same
   or an earlier durable batch. They then block in [await_durable] until a
   leader's flush covers their ticket. The first waiter with no leader in
   place becomes leader: it sleeps out the batching window (latch free, so
   later commits join), drains the queue, appends all commit records in
   enqueue order under the latch, and flushes outside it. If the leader's
   flush fails, leadership is released and a waiting follower takes over,
   retrying the still-buffered batch — a leader failure never strands
   followers. *)

let enqueue_commit t txn =
  Mutex.lock t.gc_m;
  let ticket = t.gc_next_ticket in
  t.gc_next_ticket <- ticket + 1;
  t.gc_queue <- (ticket, txn) :: t.gc_queue;
  t.gc_enqueued <- t.gc_enqueued + 1;
  Mutex.unlock t.gc_m;
  ticket

(* One leader pass: drain + append under the write latch (commit records
   interleave with DML appends in latch order), flush outside it so the next
   window's statements keep executing during the device sync. Returns the
   txns whose acks this flush released. The caller must hold leadership (or
   be the only live session). *)
let leader_step t (counters : Rss.Counters.t) =
  let batch =
    with_latch t (fun () ->
        Mutex.lock t.gc_m;
        let fresh = List.rev t.gc_queue in
        t.gc_queue <- [];
        Mutex.unlock t.gc_m;
        List.iter (fun (_, txn) -> Rss.Wal.append t.wal (Rss.Wal.Commit txn)) fresh;
        (* a previous leader's failed flush leaves its batch in inflight;
           this pass covers it too *)
        t.gc_inflight <- t.gc_inflight @ fresh;
        t.gc_inflight)
  in
  if batch = [] then []
  else begin
    Rss.Wal.flush t.wal;  (* may raise: the batch stays buffered, not durable *)
    counters.Rss.Counters.wal_flushes <- counters.Rss.Counters.wal_flushes + 1;
    Mutex.lock t.gc_m;
    t.gc_inflight <- [];
    t.gc_durable <- List.fold_left (fun a (k, _) -> max a k) t.gc_durable batch;
    t.gc_flushes <- t.gc_flushes + 1;
    let n = List.length batch in
    t.gc_grouped <- t.gc_grouped + n;
    if n > t.gc_max_batch then t.gc_max_batch <- n;
    Condition.broadcast t.gc_cond;
    Mutex.unlock t.gc_m;
    List.map snd batch
  end

let await_durable t counters ticket =
  (* After a simulated crash nothing more reaches the device; the unwind
     path must not flush on the dead machine's behalf. *)
  if not (Rss.Failpoint.halted ()) then begin
    if t.gc_hold then ()
    else if not t.latched then begin
      (* embedded single-session use: nobody else will flush; run the leader
         inline, no window *)
      if t.gc_durable < ticket then ignore (leader_step t counters)
    end
    else begin
      Mutex.lock t.gc_m;
      (* [loop] returns holding gc_m; every raising path (a failed leader
         pass) re-raises with gc_m already released, so no unlock guard. *)
      let rec loop () =
        if t.gc_durable >= ticket then ()
        else if t.gc_leader then begin
          Condition.wait t.gc_cond t.gc_m;
          loop ()
        end
        else begin
          t.gc_leader <- true;
          Mutex.unlock t.gc_m;
          let release_leadership () =
            Mutex.lock t.gc_m;
            t.gc_leader <- false;
            Condition.broadcast t.gc_cond;
            Mutex.unlock t.gc_m
          in
          (match
             (if t.gc_delay > 0. then Unix.sleepf t.gc_delay);
             leader_step t counters
           with
           | _ -> release_leadership ()
           | exception e ->
             release_leadership ();
             raise e);
          Mutex.lock t.gc_m;
          loop ()
        end
      in
      loop ();
      Mutex.unlock t.gc_m
    end
  end

let flush_group t counters = leader_step t counters

let set_group_hold t on =
  if t.latched then invalid_arg "Engine.set_group_hold: latched engine";
  t.gc_hold <- on

let set_group_commit t on = t.gc_enabled <- on
let group_commit_enabled t = t.gc_enabled
let set_commit_delay t s = t.gc_delay <- Float.max 0. s
let commit_delay t = t.gc_delay

type gc_stats = {
  enqueued : int;
  durable_ticket : int;
  flushes : int;
  grouped_commits : int;
  max_batch : int;
}

(* Readable while a leader is blocked inside the device sync: only gc_m is
   taken, never the engine latch. *)
let group_commit_stats t =
  Mutex.lock t.gc_m;
  let s =
    { enqueued = t.gc_enqueued;
      durable_ticket = t.gc_durable;
      flushes = t.gc_flushes;
      grouped_commits = t.gc_grouped;
      max_batch = t.gc_max_batch }
  in
  Mutex.unlock t.gc_m;
  s

(* Recovery replaced the lock table and WAL wholesale; whatever commit queue
   state the crash stranded is moot. *)
let reset_group t =
  Mutex.lock t.gc_m;
  t.gc_queue <- [];
  t.gc_inflight <- [];
  t.gc_durable <- t.gc_next_ticket - 1;
  t.gc_leader <- false;
  Condition.broadcast t.gc_cond;
  Mutex.unlock t.gc_m

(* --- blocked-transaction events ------------------------------------------

   A session whose 2PL request came back Blocked notes it here before
   sleeping on [locks_changed]. Tests that need "some transaction is now
   queued waiting" wait for the event counter to move instead of polling the
   lock table on a timer. *)

let note_blocked t =
  Mutex.lock t.latch;
  t.block_events <- t.block_events + 1;
  Condition.broadcast t.blocked_changed;
  Mutex.unlock t.latch

let block_epoch t =
  Mutex.lock t.latch;
  let v = t.block_events in
  Mutex.unlock t.latch;
  v

let await_block_epoch t epoch =
  Mutex.lock t.latch;
  while t.block_events <= epoch do
    Condition.wait t.blocked_changed t.latch
  done;
  Mutex.unlock t.latch
