(* The shared half of the former Database: one engine (catalog, buffer pool,
   WAL, lock table, plan cache, transaction-id fountain, MVCC status table)
   serving N sessions. Session-local state — the active transaction, SET
   overrides, prepared statements, per-session counters — lives in
   Session.t.

   Concurrency follows the buffer pool's latched-only-when-concurrent
   treatment from PR 6: embedded single-session use pays no synchronization
   at all (with_latch / with_read_latch are plain calls), and the
   wire-protocol server flips [set_latched true] for the lifetime of its
   listener. In latched mode the engine latch is a reader/writer latch:

   - statements that mutate engine state (DML, DDL, transaction control,
     SET, VACUUM) hold it exclusively, one at a time;
   - read-only statements (SELECT, EXPLAIN, prepared execution) hold it
     shared and run concurrently across sessions — their isolation comes
     from MVCC snapshots, not locks, so a reader is never Blocked by an
     uncommitted writer.

   Writer preference (readers admit only while no writer waits) keeps a
   stream of point reads from starving DML. 2PL still mediates write/write
   conflicts: a writer whose lock request is blocked waits on
   [locks_changed], releasing the write latch for the duration so the
   conflicting holder can commit, and every lock release broadcasts.

   The mutex only guards the latch state (readers/writer counts) and the
   condition variables; statement bodies run outside it. *)

type t = {
  cat : Catalog.t;
  wal : Rss.Wal.t;
  mutable locks : Rss.Lock_table.t;
  plan_cache : Plan_cache.t;
  mvcc : Rss.Mvcc.t;
  mutable next_txn : int;
  mutable next_session : int;
  latch : Mutex.t;
  latch_changed : Condition.t;  (* reader/writer latch state transitions *)
  locks_changed : Condition.t;  (* some transaction released 2PL locks *)
  mutable readers : int;        (* sessions holding the latch shared *)
  mutable writer : bool;        (* a session holds the latch exclusively *)
  mutable writers_waiting : int;
  mutable latched : bool;
  mutable live_sessions : int;
}

let create ?buffer_pages () =
  let cat = Catalog.create ?buffer_pages () in
  let plan_cache = Plan_cache.create () in
  let pager = Catalog.pager cat in
  (* LRU evictions land in whatever counters record is active, so a server
     session's EXPLAIN attributes them to the session that caused them *)
  Plan_cache.set_evict_hook plan_cache (fun n ->
      let c = Rss.Pager.counters pager in
      c.Rss.Counters.plan_cache_evictions <-
        c.Rss.Counters.plan_cache_evictions + n);
  { cat;
    wal = Rss.Wal.create ();
    locks = Rss.Lock_table.create ();
    plan_cache;
    mvcc = Rss.Mvcc.create ();
    next_txn = 1;
    next_session = 1;
    latch = Mutex.create ();
    latch_changed = Condition.create ();
    locks_changed = Condition.create ();
    readers = 0;
    writer = false;
    writers_waiting = 0;
    latched = false;
    live_sessions = 0 }

let catalog t = t.cat
let pager t = Catalog.pager t.cat
let wal t = t.wal
let lock_table t = t.locks
let plan_cache t = t.plan_cache
let mvcc t = t.mvcc

let set_latched t on =
  t.latched <- on;
  (* concurrent readers touch the buffer pool from several domains *)
  Rss.Pager.set_shared (pager t) on

let latched t = t.latched

(* Must be called with t.latch held. *)
let acquire_write_locked t =
  t.writers_waiting <- t.writers_waiting + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.latch_changed t.latch
  done;
  t.writers_waiting <- t.writers_waiting - 1;
  t.writer <- true

let release_write t =
  Mutex.lock t.latch;
  t.writer <- false;
  Condition.broadcast t.latch_changed;
  Mutex.unlock t.latch

let with_latch t f =
  if not t.latched then f ()
  else begin
    Mutex.lock t.latch;
    acquire_write_locked t;
    Mutex.unlock t.latch;
    Fun.protect ~finally:(fun () -> release_write t) f
  end

let with_read_latch t f =
  if not t.latched then f ()
  else begin
    Mutex.lock t.latch;
    (* writer preference: a waiting writer bars new readers *)
    while t.writer || t.writers_waiting > 0 do
      Condition.wait t.latch_changed t.latch
    done;
    t.readers <- t.readers + 1;
    Mutex.unlock t.latch;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock t.latch;
        t.readers <- t.readers - 1;
        if t.readers = 0 then Condition.broadcast t.latch_changed;
        Mutex.unlock t.latch)
      f
  end

(* Called from inside a [with_latch] (write) body whose 2PL lock request was
   Blocked: atomically surrender the write latch and sleep until some
   transaction releases locks, then re-acquire exclusivity. Holding the
   mutex across surrender-and-wait closes the lost-wakeup window — the lock
   holder needs the write latch to commit, which it cannot take until our
   broadcast, and its release broadcast needs this mutex. *)
let wait_locks t =
  if t.latched then begin
    Mutex.lock t.latch;
    t.writer <- false;
    Condition.broadcast t.latch_changed;
    Condition.wait t.locks_changed t.latch;
    acquire_write_locked t;
    Mutex.unlock t.latch
  end

let signal_locks t =
  if t.latched then begin
    Mutex.lock t.latch;
    Condition.broadcast t.locks_changed;
    Mutex.unlock t.latch
  end

let fresh_txn_id t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  id

let fresh_session_id t =
  let id = t.next_session in
  t.next_session <- id + 1;
  id
