(* The shared half of the former Database: one engine (catalog, buffer pool,
   WAL, lock table, plan cache, transaction-id fountain) serving N sessions.
   Session-local state — the active transaction, SET overrides, prepared
   statements, per-session counters — lives in Session.t.

   Concurrency follows the buffer pool's latched-only-when-concurrent
   treatment from PR 6: embedded single-session use pays no synchronization
   at all (with_latch is a plain call), and the wire-protocol server flips
   [set_latched true] for the lifetime of its listener, after which every
   statement executes under the engine latch. Execution is therefore
   serialized across sessions — the latch is the concurrency unit, sessions
   overlap in their network/framing halves — while 2PL still mediates
   *logical* conflicts: a session whose lock request is blocked waits on
   [locks_changed] (releasing the latch), and every lock release broadcasts. *)

type t = {
  cat : Catalog.t;
  wal : Rss.Wal.t;
  mutable locks : Rss.Lock_table.t;
  plan_cache : Plan_cache.t;
  mutable next_txn : int;
  mutable next_session : int;
  latch : Mutex.t;
  locks_changed : Condition.t;
  mutable latched : bool;
  mutable live_sessions : int;
}

let create ?buffer_pages () =
  let cat = Catalog.create ?buffer_pages () in
  let plan_cache = Plan_cache.create () in
  let pager = Catalog.pager cat in
  (* LRU evictions land in whatever counters record is active, so a server
     session's EXPLAIN attributes them to the session that caused them *)
  Plan_cache.set_evict_hook plan_cache (fun n ->
      let c = Rss.Pager.counters pager in
      c.Rss.Counters.plan_cache_evictions <-
        c.Rss.Counters.plan_cache_evictions + n);
  { cat;
    wal = Rss.Wal.create ();
    locks = Rss.Lock_table.create ();
    plan_cache;
    next_txn = 1;
    next_session = 1;
    latch = Mutex.create ();
    locks_changed = Condition.create ();
    latched = false;
    live_sessions = 0 }

let catalog t = t.cat
let pager t = Catalog.pager t.cat
let wal t = t.wal
let lock_table t = t.locks
let plan_cache t = t.plan_cache

let set_latched t on = t.latched <- on
let latched t = t.latched

let with_latch t f =
  if not t.latched then f ()
  else begin
    Mutex.lock t.latch;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.latch) f
  end

(* Both must be called while holding the latch (i.e. from inside a
   [with_latch] body in latched mode). *)
let wait_locks t = Condition.wait t.locks_changed t.latch
let signal_locks t = if t.latched then Condition.broadcast t.locks_changed

let fresh_txn_id t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  id

let fresh_session_id t =
  let id = t.next_session in
  t.next_session <- id + 1;
  id
