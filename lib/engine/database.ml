(* Undo restores deleted tuples at their exact TID (Catalog.insert_tuple_at):
   a fresh insert would move the tuple, leaving later WAL records (and the
   txn's own Undo_insert entries) pointing at the old TID. The torture
   harness's shrunk reproducer for that bug — INSERT x; DELETE x; ROLLBACK
   leaving a phantom x — is pinned in test_engine. *)
type undo_op =
  | Undo_insert of Catalog.relation * Rss.Tid.t * Rel.Tuple.t
  | Undo_delete of Catalog.relation * Rss.Tid.t * Rel.Tuple.t

type txn = {
  txn_id : int;
  explicit_txn : bool;
  mutable undo : undo_op list;  (* newest first *)
}

type t = {
  cat : Catalog.t;
  mutable w : float;
  mutable max_dop : int;
  mutable force_parallel : bool;
  mutable use_histograms : bool;
      (* SET HISTOGRAMS ON/OFF: estimate selectivities from the per-column
         equi-depth histograms UPDATE STATISTICS collects; OFF pins the
         paper's value-independent TABLE 1 constants (and suspends the
         cardinality-feedback loop, which would also perturb them) *)
  mutable use_feedback : bool;
  mutable feedback_threshold : float;
      (* q-error above which an execution counts as a gross misestimate *)
  mutable last_feedback : (float * int * float * bool) option;
      (* (estimated QCARD, actual rows, q-error, retired a plan) of the most
         recent feedback-observed execution, surfaced by EXPLAIN *)
  wal : Rss.Wal.t;
  mutable locks : Rss.Lock_table.t;
  mutable next_txn : int;
  mutable active : txn option;
  plan_cache : Plan_cache.t;
}

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* SYSTEMR_DOMAINS seeds the parallelism cap for every new database, so CI
   can run the whole suite with parallel plans enabled without touching the
   tests; SET PARALLELISM overrides it per session. *)
let default_max_dop () =
  match Sys.getenv_opt "SYSTEMR_DOMAINS" with
  | Some s -> (match int_of_string_opt (String.trim s) with
               | Some n when n >= 1 -> n
               | _ -> 1)
  | None -> 1

let default_feedback_threshold = 4.0

let create ?buffer_pages ?(w = Ctx.default_w) () =
  { cat = Catalog.create ?buffer_pages ();
    w;
    max_dop = default_max_dop ();
    force_parallel = false;
    use_histograms = true;
    use_feedback = true;
    feedback_threshold = default_feedback_threshold;
    last_feedback = None;
    wal = Rss.Wal.create ();
    locks = Rss.Lock_table.create ();
    next_txn = 1;
    active = None;
    plan_cache = Plan_cache.create () }

let catalog t = t.cat
let pager t = Catalog.pager t.cat

(* feedback corrections are only consulted (and recorded) under histogram
   estimation: SET HISTOGRAMS OFF pins the paper's constants exactly *)
let feedback_active t = t.use_feedback && t.use_histograms

let ctx ?(params = [||]) t =
  Ctx.create ~w:t.w ~max_dop:t.max_dop ~force_parallel:t.force_parallel
    ~use_histograms:t.use_histograms ~use_feedback:(feedback_active t) ~params
    t.cat

let set_w t w =
  t.w <- w;
  (* cached plans embed cost decisions made under the old weighting *)
  Plan_cache.clear t.plan_cache

let set_parallelism t n =
  let n = max 1 n in
  if n <> t.max_dop then begin
    t.max_dop <- n;
    (* cached plans embed exchange decisions made under the old cap *)
    Plan_cache.clear t.plan_cache
  end

let parallelism t = t.max_dop

let set_force_parallel t on =
  if on <> t.force_parallel then begin
    t.force_parallel <- on;
    Plan_cache.clear t.plan_cache
  end

let set_histograms t on =
  if on <> t.use_histograms then begin
    t.use_histograms <- on;
    (* cached plans embed cardinality estimates made under the other mode *)
    Plan_cache.clear t.plan_cache
  end

let histograms_enabled t = t.use_histograms

let set_feedback t on =
  if on <> t.use_feedback then begin
    t.use_feedback <- on;
    Plan_cache.clear t.plan_cache
  end

let feedback_enabled t = t.use_feedback
let set_feedback_threshold t q = t.feedback_threshold <- Float.max 1. q
let last_feedback t = t.last_feedback

let set_plan_cache t on = Plan_cache.set_enabled t.plan_cache on
let set_plan_cache_validation t on = Plan_cache.set_validation t.plan_cache on
let plan_cache_enabled t = Plan_cache.enabled t.plan_cache
let plan_cache_size t = Plan_cache.size t.plan_cache
let clear_plan_cache t = Plan_cache.clear t.plan_cache

let cached_plan t sql =
  let probe key =
    match Plan_cache.find t.plan_cache t.cat key with
    | Plan_cache.Hit r -> Some r
    | Plan_cache.Miss | Plan_cache.Invalidated -> None
  in
  match Plan_cache.text_entry t.plan_cache sql with
  | Some (key, _) -> probe key
  | None ->
    let q =
      try Parser.parse_query sql
      with Parser.Error (msg, off) -> err "syntax error at offset %d: %s" off msg
    in
    (match Normalize.fingerprint q with
     | None -> None
     | Some (key, _, _) -> probe key)
let wal t = t.wal
let lock_table t = t.locks
let in_transaction t =
  match t.active with Some { explicit_txn; _ } -> explicit_txn | None -> false

type result =
  | Rows of Executor.output
  | Text of string
  | Done of string

let wrap f =
  try f () with
  | Parser.Error (msg, off) -> err "syntax error at offset %d: %s" off msg
  | Semant.Error msg -> err "semantic error: %s" msg
  | Invalid_argument msg -> err "%s" msg

(* --- transactions ------------------------------------------------------- *)

(* The engine is single-user, so lock requests are always granted; the lock
   protocol is still followed (X on written relations, held to commit). *)
let acquire_x t (rel : Catalog.relation) txn_id =
  match
    Rss.Lock_table.acquire t.locks txn_id (Rss.Lock_table.Relation rel.Catalog.rel_id)
      Rss.Lock_table.Exclusive
  with
  | Rss.Lock_table.Granted -> ()
  | Rss.Lock_table.Blocked _ | Rss.Lock_table.Deadlock _ ->
    err "relation %s is locked by another transaction" rel.Catalog.rel_name

(* Run [f txn] inside the active transaction, or an implicit auto-committed
   one. Errors inside an implicit transaction roll its effects back. *)
let with_txn t f =
  match t.active with
  | Some txn -> f txn
  | None ->
    let txn = { txn_id = t.next_txn; explicit_txn = false; undo = [] } in
    t.next_txn <- t.next_txn + 1;
    t.active <- Some txn;
    Rss.Wal.append t.wal (Rss.Wal.Begin txn.txn_id);
    (match f txn with
     | v ->
       Rss.Wal.append t.wal (Rss.Wal.Commit txn.txn_id);
       Rss.Lock_table.release_all t.locks txn.txn_id;
       t.active <- None;
       v
     | exception e ->
       (* undo the partial effects of the failed statement *)
       List.iter
         (fun op ->
           match op with
           | Undo_insert (rel, tid, tuple) ->
             ignore (Catalog.delete_tid t.cat rel tid tuple)
           | Undo_delete (rel, tid, tuple) ->
             Catalog.insert_tuple_at t.cat rel tid tuple)
         txn.undo;
       Rss.Wal.append t.wal (Rss.Wal.Abort txn.txn_id);
       Rss.Lock_table.release_all t.locks txn.txn_id;
       t.active <- None;
       raise e)

let begin_transaction t =
  match t.active with
  | Some _ -> err "a transaction is already active"
  | None ->
    let txn = { txn_id = t.next_txn; explicit_txn = true; undo = [] } in
    t.next_txn <- t.next_txn + 1;
    t.active <- Some txn;
    Rss.Wal.append t.wal (Rss.Wal.Begin txn.txn_id);
    txn.txn_id

let commit t =
  match t.active with
  | Some txn when txn.explicit_txn ->
    Rss.Wal.append t.wal (Rss.Wal.Commit txn.txn_id);
    Rss.Lock_table.release_all t.locks txn.txn_id;
    t.active <- None;
    txn.txn_id
  | Some _ | None -> err "no transaction is active"

let rollback t =
  match t.active with
  | Some txn when txn.explicit_txn ->
    List.iter
      (fun op ->
        match op with
        | Undo_insert (rel, tid, tuple) ->
          ignore (Catalog.delete_tid t.cat rel tid tuple)
        | Undo_delete (rel, tid, tuple) ->
          Catalog.insert_tuple_at t.cat rel tid tuple)
      txn.undo;
    Rss.Wal.append t.wal (Rss.Wal.Abort txn.txn_id);
    Rss.Lock_table.release_all t.locks txn.txn_id;
    t.active <- None;
    txn.txn_id
  | Some _ | None -> err "no transaction is active"

(* logged, undoable DML primitives *)
let dml_insert t txn (rel : Catalog.relation) tuple =
  acquire_x t rel txn.txn_id;
  let tid = Catalog.insert_tuple t.cat rel tuple in
  Rss.Wal.append t.wal
    (Rss.Wal.Insert { txn = txn.txn_id; rel_id = rel.Catalog.rel_id; tid; tuple });
  txn.undo <- Undo_insert (rel, tid, tuple) :: txn.undo

let dml_delete_where t txn (rel : Catalog.relation) pred =
  acquire_x t rel txn.txn_id;
  let victims = Catalog.delete_tuples_returning t.cat rel pred in
  List.iter
    (fun (tid, tuple) ->
      Rss.Wal.append t.wal
        (Rss.Wal.Delete { txn = txn.txn_id; rel_id = rel.Catalog.rel_id; tid; tuple });
      txn.undo <- Undo_delete (rel, tid, tuple) :: txn.undo)
    victims;
  victims

(* --- statements ---------------------------------------------------------- *)

let resolve_query t q = wrap (fun () -> Semant.resolve t.cat q)

let resolve t sql =
  let q = wrap (fun () -> Parser.parse_query sql) in
  resolve_query t q

let optimize_block ?ctx:c t block =
  let c = Option.value c ~default:(ctx t) in
  wrap (fun () -> Optimizer.optimize c block)

let optimize ?ctx t sql = optimize_block ?ctx t (resolve t sql)

let run_plan t r = wrap (fun () -> Executor.run t.cat r)

let query_block t block = run_plan t (optimize_block t block)

let select_star_block t (rel : Catalog.relation) where =
  let q =
    { Ast.select = [ Ast.Star ];
      from = [ (rel.Catalog.rel_name, None) ];
      where;
      group_by = [];
      order_by = [] }
  in
  resolve_query t q

(* DELETE: run SELECT * with the same predicate, then delete every stored
   tuple value-equal to a result row. The predicate is a deterministic
   function of the tuple's values, so value equality identifies exactly the
   qualifying tuples (duplicates qualify together). *)
let delete_where t txn (rel : Catalog.relation) where =
  match where with
  | None -> List.length (dml_delete_where t txn rel (fun _ -> true))
  | Some _ ->
    let out = query_block t (select_star_block t rel where) in
    List.length
      (dml_delete_where t txn rel (fun tuple ->
           List.exists (Rel.Tuple.equal tuple) out.Executor.rows))

(* UPDATE: resolve the SET expressions against the table, identify the
   qualifying tuples exactly as DELETE does, then delete each victim and
   insert its updated image (indexes follow automatically). Victims are
   collected before any re-insertion, so updated rows cannot requalify
   (no Halloween problem). *)
let update_where t txn (rel : Catalog.relation) sets where =
  let schema = rel.Catalog.schema in
  let set_query =
    { Ast.select = List.map (fun (_, e) -> Ast.Sel_expr (e, None)) sets;
      from = [ (rel.Catalog.rel_name, None) ];
      where = None;
      group_by = [];
      order_by = [] }
  in
  let set_block = resolve_query t set_query in
  let targets =
    List.map
      (fun (col, _) ->
        match Rel.Schema.index_of schema col with
        | Some i -> i
        | None -> err "no column %s in %s" col rel.Catalog.rel_name)
      sets
  in
  (* type compatibility of each assignment *)
  List.iteri
    (fun i (e, _) ->
      let target_ty = (Rel.Schema.column schema (List.nth targets i)).Rel.Schema.ty in
      match Semant.type_of_expr set_block e, target_ty with
      | None, _ -> ()
      | Some Rel.Value.Tstr, Rel.Value.Tstr -> ()
      | Some (Rel.Value.Tint | Rel.Value.Tfloat), (Rel.Value.Tint | Rel.Value.Tfloat)
        -> ()
      | Some _, _ ->
        err "type mismatch assigning to %s" (fst (List.nth sets i)))
    set_block.Semant.select;
  let layout = Layout.of_tables set_block [ 0 ] in
  let env =
    { Eval.blocks = []; params = [||];
      subquery = (fun _ _ -> err "subquery in SET") }
  in
  let updated_image tuple =
    let news =
      List.map
        (fun (e, _) -> Eval.expr env { Eval.layout; tuple } e)
        set_block.Semant.select
    in
    let out = Array.copy tuple in
    List.iteri (fun i pos -> out.(pos) <- List.nth news i) targets;
    out
  in
  let victims =
    match where with
    | None -> dml_delete_where t txn rel (fun _ -> true)
    | Some _ ->
      let out = query_block t (select_star_block t rel where) in
      dml_delete_where t txn rel (fun tuple ->
          List.exists (Rel.Tuple.equal tuple) out.Executor.rows)
  in
  List.iter
    (fun (_, tuple) -> dml_insert t txn rel (updated_image tuple))
    victims;
  List.length victims

(* --- cardinality feedback ------------------------------------------------ *)

let q_error est act =
  let est = Float.max est 0. and act = float_of_int act in
  Float.max ((est +. 1.) /. (act +. 1.)) ((act +. 1.) /. (est +. 1.))

(* Compare the optimizer's QCARD estimate against the actual output
   cardinality the executor observed at root-cursor close. On a gross
   misestimate (q-error above the threshold), record the observed
   selectivity on the relation when the block's shape makes it unambiguous:
   a single table, no grouping, and every boolean factor local to that
   table — then actual rows / NCARD is exactly the restriction's joint
   selectivity. Recording bumps the relation's feedback_gen, so the plan
   cache retires the plans costed under the stale estimate and the next
   optimization of the same restriction sees the corrected value. *)
let feedback_note t (r : Optimizer.result) ~params act =
  if feedback_active t && act >= 0 then begin
    let block = r.Optimizer.block in
    if (not block.Semant.scalar_agg) && block.Semant.group_by = [] then begin
      let c = ctx ~params t in
      let est = Selectivity.block_qcard c block in
      let qerr = q_error est act in
      t.last_feedback <- Some (est, act, qerr, false);
      if qerr > t.feedback_threshold then begin
        let cnt = Rss.Pager.counters (Catalog.pager t.cat) in
        cnt.Rss.Counters.feedback_misestimates <-
          cnt.Rss.Counters.feedback_misestimates + 1;
        match block.Semant.tables with
        | [ tr ] ->
          let factors = Normalize.factors_of_block block in
          let local =
            Feedback.local_factors factors ~tab:tr.Semant.tab_idx
          in
          (* only when the local factors are ALL the factors: a subquery or
             constant factor would fold its filtering into the recording *)
          if List.length local = List.length factors then begin
            match Feedback.key ~params local with
            | Some key ->
              let ncard = (Ctx.rel_stats c tr.Semant.rel).Ctx.ncard in
              if ncard > 0. then begin
                let sel = float_of_int act /. ncard in
                if Feedback.record tr.Semant.rel ~key sel then begin
                  cnt.Rss.Counters.feedback_retirements <-
                    cnt.Rss.Counters.feedback_retirements + 1;
                  t.last_feedback <- Some (est, act, qerr, true)
                end
              end
            | None -> ()
          end
        | _ -> ()
      end
    end
  end

(* Execute a (possibly cached) plan with the feedback observer attached. *)
let run_observed t r ~params =
  let act = ref (-1) in
  let out =
    wrap (fun () ->
        Executor.run ~params ~observe:(fun n -> act := n) t.cat r)
  in
  feedback_note t r ~params !act;
  out

(* SELECT through the compiled-plan cache: fingerprint the statement, serve
   a valid cached plan by rebinding the extracted literals as parameters, or
   optimize the canonicalized (parameterized) statement once and cache it.
   The optimization "peeks" at the extracted literals (Ctx.params), so
   histogram estimates stay value-aware on the parameterized plan; like any
   bind-peeking scheme, the cached plan is the one chosen for the literals
   first seen. Statements that already carry user [?] parameters bypass the
   cache — the prepared-statement path owns their bindings. *)
let query_cached ?text t q =
  let fp =
    if Plan_cache.enabled t.plan_cache then Normalize.fingerprint q else None
  in
  match fp with
  | None -> query_block t (resolve_query t q)
  | Some (key, canon_q, values) ->
    let c = Rss.Pager.counters (Catalog.pager t.cat) in
    let params = Array.of_list values in
    let memo () =
      match text with
      | Some sql -> Plan_cache.memo_text t.plan_cache ~sql ~key ~values
      | None -> ()
    in
    (match Plan_cache.find t.plan_cache t.cat key with
     | Plan_cache.Hit r ->
       c.Rss.Counters.plan_cache_hits <- c.Rss.Counters.plan_cache_hits + 1;
       memo ();
       run_observed t r ~params
     | (Plan_cache.Miss | Plan_cache.Invalidated) as probe ->
       (match probe with
        | Plan_cache.Invalidated ->
          c.Rss.Counters.plan_cache_invalidations <-
            c.Rss.Counters.plan_cache_invalidations + 1
        | _ -> ());
       c.Rss.Counters.plan_cache_misses <- c.Rss.Counters.plan_cache_misses + 1;
       (* resolve the literal statement first: parameter positions always
          type-check, so a type error in the original must still surface *)
       ignore (resolve_query t q);
       let r =
         optimize_block ~ctx:(ctx ~params t) t (resolve_query t canon_q)
       in
       Plan_cache.store t.plan_cache key r;
       memo ();
       run_observed t r ~params)

let exec_stmt t (stmt : Ast.statement) =
  match stmt with
  | Ast.Select q -> Rows (query_cached t q)
  | Ast.Explain { search; q } ->
    let r = optimize_block t (resolve_query t q) in
    let c = Rss.Pager.counters (Catalog.pager t.cat) in
    let cache_line =
      Printf.sprintf "plan cache: hits=%d misses=%d invalidations=%d entries=%d\n"
        c.Rss.Counters.plan_cache_hits c.Rss.Counters.plan_cache_misses
        c.Rss.Counters.plan_cache_invalidations
        (Plan_cache.size t.plan_cache)
      ^ Printf.sprintf "parallelism: max_dop=%d\n" t.max_dop
      ^ Printf.sprintf "histograms: %s\n"
          (if t.use_histograms then "on" else "off")
      ^ Printf.sprintf "feedback: misestimates=%d retirements=%d%s\n"
          c.Rss.Counters.feedback_misestimates
          c.Rss.Counters.feedback_retirements
          (match t.last_feedback with
           | Some (est, act, qerr, retired) ->
             Printf.sprintf " last=[est=%.1f act=%d qerr=%.2f%s]" est act qerr
               (if retired then " retired" else "")
           | None -> "")
    in
    if search then
      Text
        (Explain.search_tree r.Optimizer.block r.Optimizer.search
         ^ "chosen plan:\n" ^ Explain.plan r ^ cache_line)
    else Text (Explain.plan r ^ cache_line)
  | Ast.Create_table { table; columns } ->
    let schema =
      wrap (fun () ->
          Rel.Schema.make
            (List.map
               (fun (c : Ast.column_def) ->
                 { Rel.Schema.name = c.col_name; ty = c.col_ty })
               columns))
    in
    ignore (wrap (fun () -> Catalog.create_relation t.cat ~name:table ~schema));
    Done (Printf.sprintf "table %s created" table)
  | Ast.Create_index { index; table; columns; clustered } ->
    (match Catalog.find_relation t.cat table with
     | None -> err "unknown table %s" table
     | Some rel ->
       ignore
         (wrap (fun () ->
              Catalog.create_index t.cat ~name:index ~rel ~columns ~clustered));
       Done (Printf.sprintf "index %s created on %s" index table))
  | Ast.Insert { table; values } ->
    (match Catalog.find_relation t.cat table with
     | None -> err "unknown table %s" table
     | Some rel ->
       let n =
         with_txn t (fun txn ->
             wrap (fun () ->
                 List.iter
                   (fun row -> dml_insert t txn rel (Rel.Tuple.make row))
                   values;
                 List.length values))
       in
       Done (Printf.sprintf "%d row%s inserted" n (if n = 1 then "" else "s")))
  | Ast.Delete { table; where } ->
    (match Catalog.find_relation t.cat table with
     | None -> err "unknown table %s" table
     | Some rel ->
       let n = with_txn t (fun txn -> delete_where t txn rel where) in
       Done (Printf.sprintf "%d row%s deleted" n (if n = 1 then "" else "s")))
  | Ast.Update { table; sets; where } ->
    (match Catalog.find_relation t.cat table with
     | None -> err "unknown table %s" table
     | Some rel ->
       let n = with_txn t (fun txn -> update_where t txn rel sets where) in
       Done (Printf.sprintf "%d row%s updated" n (if n = 1 then "" else "s")))
  | Ast.Drop_table table ->
    if t.active <> None then err "DROP TABLE inside a transaction is not supported";
    if Catalog.drop_relation t.cat table then
      Done (Printf.sprintf "table %s dropped" table)
    else err "unknown table %s" table
  | Ast.Drop_index index ->
    (match Catalog.find_index t.cat index with
     | None -> err "unknown index %s" index
     | Some _ ->
       Catalog.drop_index t.cat index;
       Done (Printf.sprintf "index %s dropped" index))
  | Ast.Update_statistics ->
    Catalog.update_statistics t.cat;
    Done "statistics updated"
  | Ast.Set_parallelism n ->
    set_parallelism t n;
    Done (Printf.sprintf "parallelism set to %d" (parallelism t))
  | Ast.Set_histograms on ->
    set_histograms t on;
    Done (Printf.sprintf "histograms %s" (if on then "on" else "off"))
  | Ast.Begin_transaction ->
    let id = begin_transaction t in
    Done (Printf.sprintf "transaction %d started" id)
  | Ast.Commit ->
    let id = commit t in
    Done (Printf.sprintf "transaction %d committed" id)
  | Ast.Rollback ->
    let id = rollback t in
    Done (Printf.sprintf "transaction %d rolled back" id)

let parse_stmt sql =
  try Parser.parse_statement sql
  with Parser.Error (msg, off) -> err "syntax error at offset %d: %s" off msg

let exec t sql = exec_stmt t (parse_stmt sql)

let exec_script t src =
  let stmts =
    try Parser.parse_script src
    with Parser.Error (msg, off) -> err "syntax error at offset %d: %s" off msg
  in
  List.map (exec_stmt t) stmts

let query t sql =
  (* text-level fast path: a repeat of the exact same statement skips the
     parser and fingerprinting; a stale entry falls through to the normal
     path (which re-optimizes and counts the miss) after recording the
     invalidation here, matching the one-call accounting of the slow path *)
  let fast =
    match Plan_cache.text_entry t.plan_cache sql with
    | None -> None
    | Some (key, values) ->
      (match Plan_cache.find t.plan_cache t.cat key with
       | Plan_cache.Hit r ->
         let c = Rss.Pager.counters (Catalog.pager t.cat) in
         c.Rss.Counters.plan_cache_hits <- c.Rss.Counters.plan_cache_hits + 1;
         Some (run_observed t r ~params:(Array.of_list values))
       | Plan_cache.Invalidated ->
         let c = Rss.Pager.counters (Catalog.pager t.cat) in
         c.Rss.Counters.plan_cache_invalidations <-
           c.Rss.Counters.plan_cache_invalidations + 1;
         None
       | Plan_cache.Miss -> None)
  in
  match fast with
  | Some out -> out
  | None ->
    (match parse_stmt sql with
     | Ast.Select q -> query_cached ~text:sql t q
     | stmt ->
       (match exec_stmt t stmt with
        | Rows out -> out
        | Text _ | Done _ -> err "not a SELECT: %s" sql))

let explain t sql = Explain.plan (optimize t sql)

let update_statistics t = Catalog.update_statistics t.cat

(* --- integrity & recovery ------------------------------------------------ *)

(* Heap/index consistency: every index entry resolves to a live tuple whose
   key matches, and every live tuple appears in every index on its relation
   exactly once. Counter-neutral (integrity checking is not a measured
   query). *)
let check_integrity t =
  let c = Rss.Pager.counters (Catalog.pager t.cat) in
  let snap = Rss.Counters.snapshot c in
  let check_index (rel : Catalog.relation) heap (idx : Catalog.index) =
    let entries =
      List.of_seq (Rss.Btree.range_scan_unaccounted idx.Catalog.btree)
    in
    let resolve_err =
      List.find_map
        (fun (key, tid) ->
          match Rss.Segment.fetch_unaccounted rel.Catalog.segment tid with
          | None ->
            Some
              (Printf.sprintf "index %s: entry for dead TID %d.%d"
                 idx.Catalog.idx_name tid.Rss.Tid.page tid.Rss.Tid.slot)
          | Some (rid, tuple) ->
            if rid <> rel.Catalog.rel_id then
              Some
                (Printf.sprintf "index %s: TID %d.%d holds relation %d, not %d"
                   idx.Catalog.idx_name tid.Rss.Tid.page tid.Rss.Tid.slot rid
                   rel.Catalog.rel_id)
            else if
              Rss.Btree.compare_key (Catalog.key_of idx tuple) key <> 0
            then
              Some
                (Printf.sprintf "index %s: key mismatch at TID %d.%d"
                   idx.Catalog.idx_name tid.Rss.Tid.page tid.Rss.Tid.slot)
            else None)
        entries
    in
    match resolve_err with
    | Some _ as e -> e
    | None ->
      let cmp (k1, t1) (k2, t2) =
        let d = Rss.Btree.compare_key k1 k2 in
        if d <> 0 then d else Rss.Tid.compare t1 t2
      in
      let expected =
        List.sort cmp
          (List.map (fun (tid, tup) -> (Catalog.key_of idx tup, tid)) heap)
      in
      let actual = List.sort cmp entries in
      if List.length expected <> List.length actual then
        Some
          (Printf.sprintf "index %s: %d entries for %d live tuples of %s"
             idx.Catalog.idx_name (List.length actual) (List.length expected)
             rel.Catalog.rel_name)
      else if not (List.for_all2 (fun a b -> cmp a b = 0) expected actual) then
        Some
          (Printf.sprintf "index %s: entry set differs from heap of %s"
             idx.Catalog.idx_name rel.Catalog.rel_name)
      else None
  in
  let check_rel (rel : Catalog.relation) =
    let heap =
      Rss.Scan.to_list
        (Rss.Scan.open_segment_scan rel.Catalog.segment
           ~rel_id:rel.Catalog.rel_id ())
    in
    List.find_map (check_index rel heap) (Catalog.indexes_on t.cat rel)
  in
  let verdict = List.find_map check_rel (Catalog.relations t.cat) in
  Rss.Counters.restore c ~from:snap;
  match verdict with
  | None -> Stdlib.Ok ()
  | Some msg -> Stdlib.Error msg

(* Crash recovery: replay the serialized WAL (Recovery.replay) into a scratch
   segment, then reload every surviving tuple through the catalog so all
   indexes are rebuilt over the new TIDs (Recovery does not preserve TIDs).
   The reloaded state is re-logged as one committed checkpoint transaction so
   a later crash recovers through this one. Run with failpoints reset — a
   recovery is not itself a crash candidate. *)
let recover t bytes =
  let c = Rss.Pager.counters (Catalog.pager t.cat) in
  let snap = Rss.Counters.snapshot c in
  let wal = Rss.Wal.of_bytes bytes in
  let result = Rss.Recovery.replay (Catalog.pager t.cat) wal in
  t.active <- None;
  t.locks <- Rss.Lock_table.create ();
  Plan_cache.clear t.plan_cache;
  (* transaction ids stay unique across the crash *)
  let max_txn =
    List.fold_left
      (fun acc r ->
        match r with
        | Rss.Wal.Begin tx | Rss.Wal.Commit tx | Rss.Wal.Abort tx -> max acc tx
        | Rss.Wal.Insert { txn; _ } | Rss.Wal.Delete { txn; _ } -> max acc txn)
      0 (Rss.Wal.records wal)
  in
  t.next_txn <- max t.next_txn (max_txn + 1);
  (* wipe current contents: the log alone defines the recovered state *)
  List.iter
    (fun rel -> ignore (Catalog.delete_tuples t.cat rel (fun _ -> true)))
    (Catalog.relations t.cat);
  let rels = Catalog.relations t.cat in
  let checkpoint = t.next_txn in
  t.next_txn <- checkpoint + 1;
  Rss.Wal.clear t.wal;
  Rss.Wal.append t.wal (Rss.Wal.Begin checkpoint);
  let restored = ref 0 in
  List.iter
    (fun pid ->
      let p = Rss.Pager.data_page (Catalog.pager t.cat) pid in
      List.iter
        (fun (_slot, rel_id, tuple) ->
          match List.find_opt (fun r -> r.Catalog.rel_id = rel_id) rels with
          | None -> () (* logged relation no longer in the catalog *)
          | Some rel ->
            let tid = Catalog.insert_tuple t.cat rel tuple in
            Rss.Wal.append t.wal
              (Rss.Wal.Insert { txn = checkpoint; rel_id; tid; tuple });
            incr restored)
        (Rss.Page.live_tuples p))
    (Rss.Segment.page_ids result.Rss.Recovery.segment);
  Rss.Wal.append t.wal (Rss.Wal.Commit checkpoint);
  Rss.Counters.restore c ~from:snap;
  !restored

(* --- prepared statements ------------------------------------------------- *)

type prepared = {
  p_result : Optimizer.result;
  p_params : int;
}

let prepare t sql =
  let block = resolve t sql in
  let r = optimize_block t block in
  { p_result = r; p_params = Semant.param_count block }

let prepared_param_count p = p.p_params
let prepared_plan p = p.p_result

let execute_prepared t p bindings =
  if List.length bindings <> p.p_params then
    err "prepared statement takes %d parameter%s, %d given" p.p_params
      (if p.p_params = 1 then "" else "s")
      (List.length bindings);
  wrap (fun () ->
      Executor.run ~params:(Array.of_list bindings) t.cat p.p_result)
