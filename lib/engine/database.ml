(* Facade for embedded use: one Engine plus one implicit Session, presenting
   the single-user API every example, bench and test programs against. The
   actual machinery lives in Engine (shared state) and Session (statement
   execution); the wire-protocol server bypasses this facade and creates one
   Session per connection over the same Engine. *)

type t = {
  eng : Engine.t;
  sess : Session.t;
}

exception Error = Session.Error

let create ?buffer_pages ?(w = Ctx.default_w) () =
  let eng = Engine.create ?buffer_pages () in
  (* the default session accounts straight into the engine-global counters *)
  { eng; sess = Session.create ~w eng }

let engine t = t.eng
let session t = t.sess

let catalog t = Engine.catalog t.eng
let pager t = Engine.pager t.eng
let ctx ?params t = Session.ctx ?params t.sess

let set_w t w = Session.set_w t.sess w
let set_parallelism t n = Session.set_parallelism t.sess n
let parallelism t = Session.parallelism t.sess
let set_force_parallel t on = Session.set_force_parallel t.sess on
let set_histograms t on = Session.set_histograms t.sess on
let histograms_enabled t = Session.histograms_enabled t.sess
let set_feedback t on = Session.set_feedback t.sess on
let feedback_enabled t = Session.feedback_enabled t.sess
let set_feedback_threshold t q = Session.set_feedback_threshold t.sess q
let last_feedback t = Session.last_feedback t.sess

let set_plan_cache t on = Session.set_plan_cache t.sess on
let set_plan_cache_validation t on = Session.set_plan_cache_validation t.sess on
let plan_cache_enabled t = Session.plan_cache_enabled t.sess
let plan_cache_size t = Session.plan_cache_size t.sess
let clear_plan_cache t = Session.clear_plan_cache t.sess
let cached_plan t sql = Session.cached_plan t.sess sql

let wal t = Engine.wal t.eng
let lock_table t = Engine.lock_table t.eng
let in_transaction t = Session.in_transaction t.sess

type result = Session.result =
  | Rows of Executor.output
  | Text of string
  | Done of string

let exec t sql = Session.exec t.sess sql
let exec_script t src = Session.exec_script t.sess src
let query t sql = Session.query t.sess sql
let explain t sql = Session.explain t.sess sql
let resolve t sql = Session.resolve t.sess sql
let optimize ?ctx t sql = Session.optimize ?ctx t.sess sql
let run_plan t r = Session.run_plan t.sess r
let update_statistics t = Session.update_statistics t.sess

let check_integrity t = Session.check_integrity t.sess
let recover t bytes = Session.recover t.sess bytes

type prepared = Session.prepared

let prepare t sql = Session.prepare t.sess sql
let prepared_param_count = Session.prepared_param_count
let prepared_plan = Session.prepared_plan
let execute_prepared t p bindings = Session.execute_prepared t.sess p bindings
