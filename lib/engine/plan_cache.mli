(** Compiled-plan cache with precise statistics-version invalidation.

    Statements are keyed by {!Normalize.fingerprint} — same shape, different
    WHERE literals share one parameterized plan. Each entry remembers the
    [stats_version] and [feedback_gen] of every relation its blocks scan; a
    probe revalidates against the live catalog, so UPDATE STATISTICS, index
    DDL, or a runtime cardinality-feedback correction retires exactly the
    plans depending on the changed relation, and a dropped or recreated
    table (rel_id change) can never serve a stale plan. *)

type t

type probe =
  | Hit of Optimizer.result  (** valid cached plan, execute with rebinding *)
  | Miss                     (** nothing cached (or cache disabled) *)
  | Invalidated              (** cached plan found stale and evicted *)

val create : unit -> t

(** {2 LRU bound}

    Both the plan table and the statement-text memo are bounded (default
    {!default_cap} entries each): inserting past the cap evicts the
    least-recently-used entry, so long-lived server sessions replace rather
    than grow. SET PLAN_CACHE_SIZE adjusts the bound at runtime. *)

val default_cap : int

val set_cap : t -> int -> unit
(** Clamp to [>= 1]; shrinks immediately when below the current size. *)

val cap : t -> int
val text_size : t -> int

val set_evict_hook : t -> (int -> unit) -> unit
(** Called with the eviction count whenever the LRU bound discards entries;
    the engine wires this to the active {!Rss.Counters} record. *)

val clear : t -> unit
(** Drop every entry (e.g. when the optimizer's W changes: cached plans
    embed cost decisions made under the old weighting). *)

val set_enabled : t -> bool -> unit
(** Disabling also clears: re-enabling starts cold. *)

val enabled : t -> bool
val size : t -> int

val set_validation : t -> bool -> unit
(** Debug hook: with validation off, probes skip the dependency check and
    serve whatever is cached, stale or not. Exists so the differential fuzz
    harness can demonstrate that it detects stale-plan corruption; never
    disable in normal operation. *)

val find : t -> Catalog.t -> string -> probe

val store : t -> string -> Optimizer.result -> unit
(** No-op when disabled. Dependencies are captured from the result's blocks
    at store time. *)

(** {2 Statement-text layer}

    Identical statement text always canonicalizes to the same fingerprint
    and literal vector, so remembering [text -> (key, values)] lets a repeat
    of the exact same string skip parsing and fingerprinting — the hit path
    becomes a hash lookup plus the stats_version check. *)

val memo_text : t -> sql:string -> key:string -> values:Rel.Value.t list -> unit
val text_entry : t -> string -> (string * Rel.Value.t list) option

(** {2 Dependency capture}

    The prepared-statement path keeps its optimized plan outside the keyed
    cache but validates it the same way: capture the dependency versions at
    optimize time, check them before each execution, re-optimize when a
    dependency moved (UPDATE STATISTICS or DDL from any session). *)

type deps

val capture_deps : Optimizer.result -> deps
val deps_valid : Catalog.t -> deps -> bool
