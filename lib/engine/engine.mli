(** The shared half of the former [Database]: one engine — catalog, buffer
    pool, WAL, lock table, compiled-plan cache, transaction-id fountain,
    MVCC status table — serving N {!Session}s. Embedded use keeps one
    implicit session behind the [Database] facade; the wire-protocol server
    creates one session per connection over the same engine.

    Synchronization is latched-only-when-concurrent, mirroring the buffer
    pool's PR-6 treatment: the latch operations are plain calls until
    {!set_latched} flips the engine into shared mode (the server does, for
    the lifetime of its listener). In shared mode the engine latch is a
    reader/writer latch: mutating statements hold it exclusively, read-only
    statements hold it shared and run concurrently — their isolation comes
    from MVCC snapshots ({!mvcc}), not S locks, so readers never block on
    writers. Blocked 2PL lock requests wait on the engine's condition
    variable (released locks broadcast), surrendering the write latch for
    the duration. *)

type t = {
  cat : Catalog.t;
  wal : Rss.Wal.t;
  mutable locks : Rss.Lock_table.t;
  plan_cache : Plan_cache.t;
  mvcc : Rss.Mvcc.t;
  mutable next_txn : int;
  mutable next_session : int;
  latch : Mutex.t;
  latch_changed : Condition.t;
  locks_changed : Condition.t;
  mutable readers : int;
  mutable writer : bool;
  mutable writers_waiting : int;
  mutable latched : bool;
  mutable live_sessions : int;
  gc_m : Mutex.t;
  gc_cond : Condition.t;
  mutable gc_next_ticket : int;
  mutable gc_queue : (int * int) list;
  mutable gc_inflight : (int * int) list;
  mutable gc_durable : int;
  mutable gc_leader : bool;
  mutable gc_enabled : bool;
  mutable gc_delay : float;
  mutable gc_hold : bool;
  mutable gc_enqueued : int;
  mutable gc_flushes : int;
  mutable gc_grouped : int;
  mutable gc_max_batch : int;
  blocked_changed : Condition.t;
  mutable block_events : int;
}

val create : ?buffer_pages:int -> unit -> t

val catalog : t -> Catalog.t
val pager : t -> Rss.Pager.t
val wal : t -> Rss.Wal.t
val lock_table : t -> Rss.Lock_table.t
val plan_cache : t -> Plan_cache.t
val mvcc : t -> Rss.Mvcc.t

val set_latched : t -> bool -> unit
(** Enter/leave shared mode (also keeps the buffer pool latched while on).
    Flip on before any second session executes concurrently; flip off only
    when at most one session remains. *)

val latched : t -> bool

val with_latch : t -> (unit -> 'a) -> 'a
(** Run holding the engine latch exclusively in shared mode; a plain call
    otherwise. Every engine-state mutation — DML, DDL, transaction control,
    session open/close, VACUUM — goes through this. Does not nest. *)

val with_read_latch : t -> (unit -> 'a) -> 'a
(** Run holding the engine latch shared: concurrent with other readers,
    excluded from writers (with writer preference). Read-only statement
    execution goes through this. Does not nest with {!with_latch}. *)

val wait_locks : t -> unit
(** Block until some transaction releases locks; caller must hold the write
    latch (it is surrendered for the duration of the wait and re-acquired
    before returning). Only meaningful in shared mode. *)

val signal_locks : t -> unit
(** Broadcast to lock waiters (no-op when unlatched). Call after every
    {!Rss.Lock_table.release_all}. *)

val fresh_txn_id : t -> int
(** Allocate a transaction id; call under the write latch. *)

val fresh_session_id : t -> int
(** Call under the write latch. *)

(** {1 Group commit}

    Committing sessions enqueue under the engine write latch (so ticket
    order = MVCC visibility order = WAL commit-record order) and block in
    {!await_durable}; the first waiter with no leader in place becomes
    leader, sleeps out the {!set_commit_delay} window with the latch free so
    later commits join, appends every queued commit record in enqueue order,
    and performs the one {!Rss.Wal.flush}. Acks release only after the batch
    is durable; a leader whose flush fails hands leadership to a waiting
    follower, which retries the still-buffered batch. *)

val enqueue_commit : t -> int -> int
(** [enqueue_commit t txn] (under the write latch, at commit time) joins the
    current commit window; returns the durability ticket to pass to
    {!await_durable}. *)

val await_durable : t -> Rss.Counters.t -> int -> unit
(** Block (outside the latch) until the ticket's commit record is durable,
    becoming leader if no one is flushing. Counters receive the
    [wal_flushes] this session leads. No-op under {!set_group_hold} or after
    a simulated crash ({!Rss.Failpoint.halted}). *)

val flush_group : t -> Rss.Counters.t -> int list
(** Run one leader pass explicitly: drain the queue, append, flush once.
    Returns the transactions whose commit acks that flush released — the
    torture harness's definition of "acknowledged". *)

val set_group_hold : t -> bool -> unit
(** Harness hook (unlatched engines only): while on, {!await_durable}
    returns immediately and commits accumulate in the queue until a
    {!flush_group} — how the torture harness builds multi-commit batches
    deterministically. *)

val set_group_commit : t -> bool -> unit
(** Off: every commit appends and flushes privately under the latch (the
    per-commit baseline group commit is measured against). Default on. *)

val group_commit_enabled : t -> bool

val set_commit_delay : t -> float -> unit
(** Leader batching window in seconds (clamped at 0). *)

val commit_delay : t -> float

type gc_stats = {
  enqueued : int;         (** commits that entered the group-commit queue *)
  durable_ticket : int;   (** highest ticket whose commit record is durable *)
  flushes : int;          (** group flushes performed *)
  grouped_commits : int;  (** commits made durable by those flushes *)
  max_batch : int;        (** largest single batch *)
}

val group_commit_stats : t -> gc_stats
(** Safe to read while a leader is mid-flush (takes only the gc mutex). *)

val reset_group : t -> unit
(** Discard queued/in-flight commit state after recovery replaced the WAL. *)

(** {1 Blocked-transaction events}

    Deflaked test synchronization: a session whose 2PL request is Blocked
    bumps an event counter before sleeping, so tests wait for "some
    transaction is queued" on a condition variable instead of polling. *)

val note_blocked : t -> unit
val block_epoch : t -> int
val await_block_epoch : t -> int -> unit
(** [await_block_epoch t e] blocks until the event counter exceeds [e]
    (capture [e] with {!block_epoch} {e before} issuing the statement that
    should block). *)
