(** The shared half of the former [Database]: one engine — catalog, buffer
    pool, WAL, lock table, compiled-plan cache, transaction-id fountain —
    serving N {!Session}s. Embedded use keeps one implicit session behind
    the [Database] facade; the wire-protocol server creates one session per
    connection over the same engine.

    Synchronization is latched-only-when-concurrent, mirroring the buffer
    pool's PR-6 treatment: {!with_latch} is a plain call until
    {!set_latched} flips the engine into shared mode (the server does, for
    the lifetime of its listener), after which sessions execute statements
    under one engine latch and blocked 2PL lock requests wait on the
    engine's condition variable (released locks broadcast). *)

type t = {
  cat : Catalog.t;
  wal : Rss.Wal.t;
  mutable locks : Rss.Lock_table.t;
  plan_cache : Plan_cache.t;
  mutable next_txn : int;
  mutable next_session : int;
  latch : Mutex.t;
  locks_changed : Condition.t;
  mutable latched : bool;
  mutable live_sessions : int;
}

val create : ?buffer_pages:int -> unit -> t

val catalog : t -> Catalog.t
val pager : t -> Rss.Pager.t
val wal : t -> Rss.Wal.t
val lock_table : t -> Rss.Lock_table.t
val plan_cache : t -> Plan_cache.t

val set_latched : t -> bool -> unit
(** Enter/leave shared mode. Flip on before any second session executes
    concurrently; flip off only when at most one session remains. *)

val latched : t -> bool

val with_latch : t -> (unit -> 'a) -> 'a
(** Run under the engine latch in shared mode; a plain call otherwise.
    Statement execution, session close and any engine-state mutation go
    through this. Does not nest. *)

val wait_locks : t -> unit
(** Block until some transaction releases locks; caller must hold the latch
    (it is released for the duration of the wait and re-acquired before
    returning). Only meaningful in shared mode. *)

val signal_locks : t -> unit
(** Broadcast to lock waiters (no-op when unlatched). Call after every
    {!Rss.Lock_table.release_all}. *)

val fresh_txn_id : t -> int
(** Allocate a transaction id; call under the latch. *)

val fresh_session_id : t -> int
