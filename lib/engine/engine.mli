(** The shared half of the former [Database]: one engine — catalog, buffer
    pool, WAL, lock table, compiled-plan cache, transaction-id fountain,
    MVCC status table — serving N {!Session}s. Embedded use keeps one
    implicit session behind the [Database] facade; the wire-protocol server
    creates one session per connection over the same engine.

    Synchronization is latched-only-when-concurrent, mirroring the buffer
    pool's PR-6 treatment: the latch operations are plain calls until
    {!set_latched} flips the engine into shared mode (the server does, for
    the lifetime of its listener). In shared mode the engine latch is a
    reader/writer latch: mutating statements hold it exclusively, read-only
    statements hold it shared and run concurrently — their isolation comes
    from MVCC snapshots ({!mvcc}), not S locks, so readers never block on
    writers. Blocked 2PL lock requests wait on the engine's condition
    variable (released locks broadcast), surrendering the write latch for
    the duration. *)

type t = {
  cat : Catalog.t;
  wal : Rss.Wal.t;
  mutable locks : Rss.Lock_table.t;
  plan_cache : Plan_cache.t;
  mvcc : Rss.Mvcc.t;
  mutable next_txn : int;
  mutable next_session : int;
  latch : Mutex.t;
  latch_changed : Condition.t;
  locks_changed : Condition.t;
  mutable readers : int;
  mutable writer : bool;
  mutable writers_waiting : int;
  mutable latched : bool;
  mutable live_sessions : int;
}

val create : ?buffer_pages:int -> unit -> t

val catalog : t -> Catalog.t
val pager : t -> Rss.Pager.t
val wal : t -> Rss.Wal.t
val lock_table : t -> Rss.Lock_table.t
val plan_cache : t -> Plan_cache.t
val mvcc : t -> Rss.Mvcc.t

val set_latched : t -> bool -> unit
(** Enter/leave shared mode (also keeps the buffer pool latched while on).
    Flip on before any second session executes concurrently; flip off only
    when at most one session remains. *)

val latched : t -> bool

val with_latch : t -> (unit -> 'a) -> 'a
(** Run holding the engine latch exclusively in shared mode; a plain call
    otherwise. Every engine-state mutation — DML, DDL, transaction control,
    session open/close, VACUUM — goes through this. Does not nest. *)

val with_read_latch : t -> (unit -> 'a) -> 'a
(** Run holding the engine latch shared: concurrent with other readers,
    excluded from writers (with writer preference). Read-only statement
    execution goes through this. Does not nest with {!with_latch}. *)

val wait_locks : t -> unit
(** Block until some transaction releases locks; caller must hold the write
    latch (it is surrendered for the duration of the wait and re-acquired
    before returning). Only meaningful in shared mode. *)

val signal_locks : t -> unit
(** Broadcast to lock waiters (no-op when unlatched). Call after every
    {!Rss.Lock_table.release_all}. *)

val fresh_txn_id : t -> int
(** Allocate a transaction id; call under the write latch. *)

val fresh_session_id : t -> int
(** Call under the write latch. *)
