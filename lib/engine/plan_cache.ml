(* Compiled-plan cache: optimized results keyed by statement fingerprint
   (Normalize.fingerprint), invalidated precisely through per-relation
   stats_version and feedback_gen counters. An entry records, for every
   relation any of its blocks scans, the (name, rel_id, stats_version,
   feedback_gen) tuple observed at compile time; a probe revalidates against
   the live catalog, so UPDATE STATISTICS or index DDL on a dependency
   (which bump the version), a runtime cardinality-feedback correction
   (which bumps feedback_gen) and DROP/CREATE TABLE (which change or remove
   the rel_id) each retire exactly the plans that depended on the changed
   relation.

   Both tables are LRU-bounded (SET PLAN_CACHE_SIZE): a long-lived server
   session issuing millions of distinct statements replaces entries instead
   of growing the cache without bound. Recency is a monotonic tick stamped
   on every hit; eviction scans for the stalest entry — an O(size) walk that
   only runs on an insert past the cap, where the preceding optimization
   (or parse, for the text memo) dwarfs it. *)

type dep = {
  rel_name : string;
  rel_id : int;
  version : int;
  feedback : int;
      (* the relation's feedback_gen at compile time: a recorded cardinality
         correction retires the plans costed under the stale estimate *)
}

type deps = dep list

type entry = {
  result : Optimizer.result;
  deps : deps;
  mutable used : int;  (* recency tick for LRU eviction *)
}

type text_entry = {
  t_key : string;
  t_values : Rel.Value.t list;
  mutable t_used : int;
}

type t = {
  lock : Mutex.t;
      (* the cache is shared by all sessions and probed under the engine's
         *shared* latch (read-only statements run concurrently), so its two
         tables guard themselves; the critical sections are hash lookups and
         version checks, far below statement cost *)
  tbl : (string, entry) Hashtbl.t;
  texts : (string, text_entry) Hashtbl.t;
      (* statement text -> (fingerprint key, extracted literals): identical
         text repeats skip parsing and fingerprinting entirely — the hit
         path of [Database.query] costs a hash lookup and a version check *)
  mutable cap : int;
  mutable tick : int;
  mutable enabled : bool;
  mutable validate : bool;
      (* debug hook: when false, probes skip the dep check and serve whatever
         is cached — used by the fuzz harness to prove the differential
         tester catches stale-plan corruption (fuzz_main --break-invalidation) *)
  mutable on_evict : int -> unit;
      (* eviction notification (count), wired by the engine to the active
         Rss.Counters record *)
}

type probe =
  | Hit of Optimizer.result
  | Miss
  | Invalidated

let default_cap = 512

let create () =
  { lock = Mutex.create ();
    tbl = Hashtbl.create 64; texts = Hashtbl.create 64; cap = default_cap;
    tick = 0; enabled = true; validate = true; on_evict = ignore }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      Hashtbl.reset t.texts)

let set_enabled t on =
  t.enabled <- on;
  if not on then clear t

let enabled t = t.enabled

let set_validation t on = t.validate <- on

let set_evict_hook t f = t.on_evict <- f

let size t = Hashtbl.length t.tbl
let text_size t = Hashtbl.length t.texts
let cap t = t.cap

let tick t =
  t.tick <- t.tick + 1;
  t.tick

(* Evict least-recently-used entries until [table] holds at most [cap]. *)
let shrink_to t cap table used =
  let evicted = ref 0 in
  while Hashtbl.length table > cap do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, best) when best <= used e -> acc
          | _ -> Some (k, used e))
        table None
    in
    match victim with
    | Some (k, _) ->
      Hashtbl.remove table k;
      incr evicted
    | None -> ()
  done;
  if !evicted > 0 then t.on_evict !evicted

let set_cap t n =
  let n = max 1 n in
  locked t (fun () ->
      t.cap <- n;
      shrink_to t n t.tbl (fun e -> e.used);
      shrink_to t n t.texts (fun e -> e.t_used))

let rec blocks_of (r : Optimizer.result) acc =
  List.fold_left
    (fun acc (_, sub) -> blocks_of sub acc)
    (r.Optimizer.block :: acc) r.Optimizer.subresults

let deps_of (r : Optimizer.result) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (b : Semant.block) ->
      List.iter
        (fun (tr : Semant.table_ref) ->
          let rel = tr.Semant.rel in
          Hashtbl.replace seen rel.Catalog.rel_id
            { rel_name = rel.Catalog.rel_name;
              rel_id = rel.Catalog.rel_id;
              version = rel.Catalog.stats_version;
              feedback = rel.Catalog.feedback_gen })
        b.Semant.tables)
    (blocks_of r []);
  Hashtbl.fold (fun _ d acc -> d :: acc) seen []

let deps_valid cat deps =
  List.for_all
    (fun d ->
      match Catalog.find_relation cat d.rel_name with
      | Some rel ->
        rel.Catalog.rel_id = d.rel_id
        && rel.Catalog.stats_version = d.version
        && rel.Catalog.feedback_gen = d.feedback
      | None -> false)
    deps

let capture_deps = deps_of

let find t cat key =
  if not t.enabled then Miss
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | None -> Miss
        | Some e when (not t.validate) || deps_valid cat e.deps ->
          e.used <- tick t;
          Hit e.result
        | Some _ ->
          Hashtbl.remove t.tbl key;
          Invalidated)

let store t key r =
  if t.enabled then
    locked t (fun () ->
        Hashtbl.replace t.tbl key
          { result = r; deps = deps_of r; used = tick t };
        shrink_to t t.cap t.tbl (fun e -> e.used))

let memo_text t ~sql ~key ~values =
  if t.enabled then
    locked t (fun () ->
        Hashtbl.replace t.texts sql
          { t_key = key; t_values = values; t_used = tick t };
        shrink_to t t.cap t.texts (fun e -> e.t_used))

let text_entry t sql =
  if not t.enabled then None
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.texts sql with
        | None -> None
        | Some e ->
          e.t_used <- tick t;
          Some (e.t_key, e.t_values))
