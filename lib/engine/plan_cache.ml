(* Compiled-plan cache: optimized results keyed by statement fingerprint
   (Normalize.fingerprint), invalidated precisely through per-relation
   stats_version and feedback_gen counters. An entry records, for every
   relation any of its blocks scans, the (name, rel_id, stats_version,
   feedback_gen) tuple observed at compile time; a probe revalidates against
   the live catalog, so UPDATE STATISTICS or index DDL on a dependency
   (which bump the version), a runtime cardinality-feedback correction
   (which bumps feedback_gen) and DROP/CREATE TABLE (which change or remove
   the rel_id) each retire exactly the plans that depended on the changed
   relation. *)

type dep = {
  rel_name : string;
  rel_id : int;
  version : int;
  feedback : int;
      (* the relation's feedback_gen at compile time: a recorded cardinality
         correction retires the plans costed under the stale estimate *)
}

type entry = {
  result : Optimizer.result;
  deps : dep list;
}

type t = {
  tbl : (string, entry) Hashtbl.t;
  texts : (string, string * Rel.Value.t list) Hashtbl.t;
      (* statement text -> (fingerprint key, extracted literals): identical
         text repeats skip parsing and fingerprinting entirely — the hit
         path of [Database.query] costs a hash lookup and a version check *)
  mutable enabled : bool;
  mutable validate : bool;
      (* debug hook: when false, probes skip the dep check and serve whatever
         is cached — used by the fuzz harness to prove the differential
         tester catches stale-plan corruption (fuzz_main --break-invalidation) *)
}

type probe =
  | Hit of Optimizer.result
  | Miss
  | Invalidated

let create () =
  { tbl = Hashtbl.create 64; texts = Hashtbl.create 64; enabled = true;
    validate = true }

let clear t =
  Hashtbl.reset t.tbl;
  Hashtbl.reset t.texts

let set_enabled t on =
  t.enabled <- on;
  if not on then clear t

let enabled t = t.enabled

let set_validation t on = t.validate <- on

let size t = Hashtbl.length t.tbl

let rec blocks_of (r : Optimizer.result) acc =
  List.fold_left
    (fun acc (_, sub) -> blocks_of sub acc)
    (r.Optimizer.block :: acc) r.Optimizer.subresults

let deps_of (r : Optimizer.result) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (b : Semant.block) ->
      List.iter
        (fun (tr : Semant.table_ref) ->
          let rel = tr.Semant.rel in
          Hashtbl.replace seen rel.Catalog.rel_id
            { rel_name = rel.Catalog.rel_name;
              rel_id = rel.Catalog.rel_id;
              version = rel.Catalog.stats_version;
              feedback = rel.Catalog.feedback_gen })
        b.Semant.tables)
    (blocks_of r []);
  Hashtbl.fold (fun _ d acc -> d :: acc) seen []

let valid cat e =
  List.for_all
    (fun d ->
      match Catalog.find_relation cat d.rel_name with
      | Some rel ->
        rel.Catalog.rel_id = d.rel_id
        && rel.Catalog.stats_version = d.version
        && rel.Catalog.feedback_gen = d.feedback
      | None -> false)
    e.deps

let find t cat key =
  if not t.enabled then Miss
  else
    match Hashtbl.find_opt t.tbl key with
    | None -> Miss
    | Some e when (not t.validate) || valid cat e -> Hit e.result
    | Some _ ->
      Hashtbl.remove t.tbl key;
      Invalidated

let store t key r =
  if t.enabled then Hashtbl.replace t.tbl key { result = r; deps = deps_of r }

let memo_text t ~sql ~key ~values =
  if t.enabled then Hashtbl.replace t.texts sql (key, values)

let text_entry t sql = if t.enabled then Hashtbl.find_opt t.texts sql else None
