(** A session: the per-connection half of the former [Database]. N sessions
    share one {!Engine.t} (catalog, buffer pool, WAL, lock table, compiled-
    plan cache); each session owns its active transaction, SET overrides,
    prepared statements and a counters record. Embedded programs use the
    [Database] facade's implicit session; the wire-protocol server creates
    one session per connection.

    Every public entry point executes as one engine step: under the engine
    latch when the engine is in shared mode (see {!Engine.set_latched}), with
    the session's counters record receiving the statement's I/O accounting.
    Blocked 2PL lock requests wait on the engine's condition variable in
    shared mode (and fail immediately otherwise); in shared mode SELECTs
    additionally take relation-level shared locks for the duration of the
    statement — or to commit, inside an explicit transaction — so readers
    never see another session's uncommitted writes. *)

type t

exception Error of string
(** Any parse / semantic / execution failure, with a message. *)

val create : ?w:float -> ?counters:Rss.Counters.t -> ?serial_only:bool ->
  Engine.t -> t
(** [counters] defaults to the engine-global record (embedded default
    session); the server passes a fresh record per connection, folded back
    into the global one by {!close}. [serial_only] pins plans to DOP 1
    regardless of SET PARALLELISM — required for sessions executing on
    {!Rss.Domain_pool} workers, which must never submit exchange subtasks. *)

val engine : t -> Engine.t
val id : t -> int
val session_counters : t -> Rss.Counters.t
val catalog : t -> Catalog.t
val pager : t -> Rss.Pager.t

val close : t -> unit
(** Abort any in-flight transaction, release its locks (waking waiters), and
    fold the session's counters into the engine-global record. Idempotent.
    A disconnected connection must never keep its locks. *)

val closed : t -> bool

val ctx : ?params:Rel.Value.t array -> t -> Ctx.t

(** {2 Session settings} — each change flushes the shared plan cache; the
    settings signature baked into every cache key additionally keeps
    sessions with different settings from serving each other's plans. *)

val set_w : t -> float -> unit
val set_parallelism : t -> int -> unit
val parallelism : t -> int
val set_force_parallel : t -> bool -> unit
val set_histograms : t -> bool -> unit
val histograms_enabled : t -> bool
val set_feedback : t -> bool -> unit
val feedback_enabled : t -> bool
val set_feedback_threshold : t -> float -> unit
val last_feedback : t -> (float * int * float * bool) option
val set_plan_cache : t -> bool -> unit
val set_plan_cache_validation : t -> bool -> unit
val plan_cache_enabled : t -> bool
val plan_cache_size : t -> int
val clear_plan_cache : t -> unit
val cached_plan : t -> string -> Optimizer.result option
val in_transaction : t -> bool

type result =
  | Rows of Executor.output
  | Text of string      (** EXPLAIN output *)
  | Done of string      (** DDL/DML/transaction acknowledgement *)

val exec : t -> string -> result
val exec_script : t -> string -> result list
val query : t -> string -> Executor.output
val explain : t -> string -> string
val resolve : t -> string -> Semant.block
val optimize : ?ctx:Ctx.t -> t -> string -> Optimizer.result
val run_plan : t -> Optimizer.result -> Executor.output
val update_statistics : t -> unit

val begin_transaction : t -> int
val commit : t -> int
val rollback : t -> int

val check_integrity : t -> (unit, string) Stdlib.result
val recover : t -> string -> int
(** Embedded-only (see [Database.recover]): never call with other live
    sessions — the lock table is replaced, orphaning any waiter. *)

(** {2 Prepared statements}

    A prepared statement keeps its optimized plan outside the keyed plan
    cache but validates it the same way: the dependency versions captured at
    optimize time are checked before every execution, and the plan silently
    re-optimizes (from the retained statement text) when UPDATE STATISTICS,
    index DDL or another session's feedback correction moved a dependency.
    The server's Bind/Execute path therefore re-parses only on that rare
    invalidation, never in the steady state. *)

type prepared

val prepare : t -> string -> prepared
val prepared_param_count : prepared -> int
val prepared_plan : prepared -> Optimizer.result
val prepared_generation : prepared -> int
(** Number of revalidation re-optimizations since prepare. *)

val execute_prepared : t -> prepared -> Rel.Value.t list -> Executor.output
