(** The engine facade: a database instance tying together storage, catalog,
    SQL front end, optimizer and executor. This is the public API examples
    and the CLI program against.

    DML is transactional: every INSERT/DELETE/UPDATE is logged to the
    write-ahead log and covered by a relation-level exclusive lock. Without
    an explicit BEGIN each statement auto-commits; BEGIN ... COMMIT/ROLLBACK
    groups statements, and ROLLBACK undoes their effects (storage and
    indexes) in reverse order. The log can be replayed with
    {!Rss.Recovery.replay} after a crash (committed work only). *)

type t

val create : ?buffer_pages:int -> ?w:float -> unit -> t

val engine : t -> Engine.t
(** The shared engine under this facade. The wire-protocol server creates
    additional {!Session}s over it (one per connection); embedded callers
    rarely need it. *)

val session : t -> Session.t
(** The facade's implicit default session (accounts into the engine-global
    counters). *)

val catalog : t -> Catalog.t
val pager : t -> Rss.Pager.t
val ctx : ?params:Rel.Value.t array -> t -> Ctx.t
(** Optimization context with this database's defaults. [params] supplies
    bound parameter values for value-aware histogram estimates (the
    plan-cache path "peeks" at its extracted literals this way). *)

val set_w : t -> float -> unit
(** Change the optimizer's W weighting. Flushes the plan cache: cached plans
    embed cost decisions made under the old weighting. *)

val set_parallelism : t -> int -> unit
(** Cap the degree of parallelism the optimizer may choose (SET PARALLELISM;
    initial value from [SYSTEMR_DOMAINS], default 1). Clamped to [>= 1];
    flushes the plan cache on change — cached plans embed exchange decisions
    made under the old cap. *)

val parallelism : t -> int

val set_force_parallel : t -> bool -> unit
(** Debug/fuzz switch: wrap every shape-eligible plan at the full parallelism
    cap regardless of cost, so parallel execution is exercised on inputs the
    cost model would correctly run serially. Flushes the plan cache on
    change. *)

(** {2 Histograms & cardinality feedback} *)

val set_histograms : t -> bool -> unit
(** SET HISTOGRAMS ON/OFF (default on): estimate selectivities from the
    per-column equi-depth histograms UPDATE STATISTICS collects. OFF pins
    the paper's value-independent TABLE 1 constants — and suspends the
    cardinality-feedback loop, which would also perturb them — so the seed
    benchmarks reproduce exactly. Flushes the plan cache on change. *)

val histograms_enabled : t -> bool

val set_feedback : t -> bool -> unit
(** Enable/disable the cardinality-feedback loop independently of histogram
    estimation (default on; only active while histograms are on). Flushes
    the plan cache on change. *)

val feedback_enabled : t -> bool

val set_feedback_threshold : t -> float -> unit
(** q-error — [max((est+1)/(act+1), (act+1)/(est+1))] — above which an
    execution counts as a gross misestimate and may record a corrected
    selectivity (default 4.0; clamped to [>= 1]). *)

val last_feedback : t -> (float * int * float * bool) option
(** (estimated QCARD, actual rows, q-error, retired a cached plan) of the
    most recent feedback-observed execution; also surfaced by EXPLAIN. *)

(** {2 Compiled-plan cache}

    SELECT statements executed through {!exec} / {!query} are fingerprinted
    after canonicalization ({!Normalize.fingerprint}): statements differing
    only in WHERE literals share one parameterized plan, re-optimized only
    when a dependency's statistics version or feedback generation moves
    (UPDATE STATISTICS, index DDL, DROP/CREATE TABLE, or a recorded
    cardinality-feedback correction). Optimization peeks at the extracted
    literals for histogram estimates, so the cached plan is the one chosen
    for the literals first seen. {!query} additionally remembers statement text,
    so an exact repeat skips parsing and fingerprinting altogether.
    Hit/miss/invalidation counts surface through {!Rss.Counters} and the
    EXPLAIN output. On by default. *)

val set_plan_cache : t -> bool -> unit
(** Disabling also clears the cache. *)

val set_plan_cache_validation : t -> bool -> unit
(** Debug hook for the fuzz harness: with validation off the cache serves
    entries without checking their dependencies' stats versions, so stale
    plans survive DDL. Never disable in normal operation. *)

val plan_cache_enabled : t -> bool
val plan_cache_size : t -> int
val clear_plan_cache : t -> unit

val cached_plan : t -> string -> Optimizer.result option
(** Probe the cache for the plan this SELECT would be served (no counter
    updates; a stale entry found by the probe is evicted). [None] on miss or
    when the statement is uncacheable. *)

val wal : t -> Rss.Wal.t
(** The write-ahead log (append-only; serialize with {!Rss.Wal.to_bytes}). *)

val lock_table : t -> Rss.Lock_table.t

val in_transaction : t -> bool

type result =
  | Rows of Executor.output
  | Text of string      (** EXPLAIN output *)
  | Done of string      (** DDL/DML/transaction acknowledgement *)

exception Error of string
(** Any parse / semantic / execution failure, with a message. *)

val exec : t -> string -> result
(** Execute one SQL statement (including BEGIN / COMMIT / ROLLBACK). *)

val exec_script : t -> string -> result list
(** Semicolon-separated statements. *)

val query : t -> string -> Executor.output
(** Run a SELECT. @raise Error when the statement is not a SELECT. *)

val explain : t -> string -> string

val resolve : t -> string -> Semant.block
(** Parse and resolve a SELECT without running it. *)

val optimize : ?ctx:Ctx.t -> t -> string -> Optimizer.result
(** Parse, resolve and optimize a SELECT. *)

val run_plan : t -> Optimizer.result -> Executor.output

val update_statistics : t -> unit

(** {2 Integrity & crash recovery} *)

val check_integrity : t -> (unit, string) Stdlib.result
(** Heap/index cross-check over every relation: each index entry must resolve
    through the segment to a live tuple of the right relation whose key
    matches, and the entry multiset must equal the keys computed from a full
    heap scan. [Error msg] pinpoints the first inconsistency. Leaves the I/O
    counters untouched. *)

val recover : t -> string -> int
(** [recover t bytes] rebuilds [t]'s data from a serialized WAL
    ({!Rss.Wal.to_bytes}): committed transactions are replayed
    ({!Rss.Recovery.replay}), every relation's heap is replaced by the
    replayed tuples, and all indexes are rebuilt over the new TIDs. Any
    in-flight transaction state, locks and cached plans are discarded, and
    the WAL is reset to a single committed checkpoint transaction describing
    the recovered state. Returns the number of tuples restored. The catalog
    (schemas, indexes) is not recovered from the log — callers re-run DDL
    first; relations are matched by creation order (rel_id). *)

(** {2 Prepared statements}

    The paper's closing argument: "application programs are compiled once and
    run many times — the cost of optimization is amortized over many runs."
    A SELECT containing [?] placeholders is parsed, resolved and optimized
    once; each execution binds the placeholders. Placeholder predicates are
    sargable (the value is constant per run) and can match indexes — their
    selectivity cannot use a specific value (none is known at prepare time),
    so equal predicates estimate as the average per-value frequency
    ((1 - NULL fraction) / distinct from the histogram, else TABLE 1's
    1/ICARD) and ranges fall back to the value-independent defaults. *)

type prepared

val prepare : t -> string -> prepared
(** @raise Error on parse/resolution/optimization failure. *)

val prepared_param_count : prepared -> int
val prepared_plan : prepared -> Optimizer.result

val execute_prepared : t -> prepared -> Rel.Value.t list -> Executor.output
(** @raise Error when the binding count differs from the placeholder count. *)
