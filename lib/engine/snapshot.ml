let magic = "SYSR1\n"

let add_int buf i = Buffer.add_int64_le buf (Int64.of_int i)

let add_str buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let get_int b off = (Int64.to_int (Bytes.get_int64_le b off), off + 8)

let get_str b off =
  let len, off = get_int b off in
  (Bytes.sub_string b off len, off + len)

let ty_code = function
  | Rel.Value.Tint -> 0
  | Rel.Value.Tfloat -> 1
  | Rel.Value.Tstr -> 2

let ty_of_code = function
  | 0 -> Rel.Value.Tint
  | 1 -> Rel.Value.Tfloat
  | 2 -> Rel.Value.Tstr
  | c -> invalid_arg (Printf.sprintf "Snapshot: bad type code %d" c)

(* Serialization runs under the engine's exclusive latch: on a shared engine
   (wire-protocol server attached) a concurrent writer could otherwise
   interleave with the heap scans and the snapshot would capture a mix of
   before- and after-images. Holding the latch is not enough by itself —
   an open transaction elsewhere has released the latch between its
   statements while its uncommitted versions sit in the heap — so any
   in-flight transaction (this session's or another's) refuses the save. *)
let save db =
  let eng = Database.engine db in
  Engine.with_latch eng @@ fun () ->
  if Database.in_transaction db then
    invalid_arg "Snapshot.save: a transaction is open";
  if Rss.Mvcc.active_count (Engine.mvcc eng) > 0 then
    invalid_arg
      "Snapshot.save: active transactions in other sessions (quiesce first)";
  let cat = Database.catalog db in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf magic;
  let rels = Catalog.relations cat in
  add_int buf (List.length rels);
  List.iter
    (fun (r : Catalog.relation) ->
      add_str buf r.Catalog.rel_name;
      let cols = Rel.Schema.columns r.Catalog.schema in
      add_int buf (List.length cols);
      List.iter
        (fun (c : Rel.Schema.column) ->
          add_str buf c.Rel.Schema.name;
          add_int buf (ty_code c.Rel.Schema.ty))
        cols;
      let tuples =
        Rss.Scan.to_list
          (Rss.Scan.open_segment_scan r.Catalog.segment
             ~rel_id:r.Catalog.rel_id ())
      in
      add_int buf (List.length tuples);
      List.iter (fun (_, t) -> Rel.Tuple.write buf t) tuples;
      let idxs = Catalog.indexes_on cat r in
      add_int buf (List.length idxs);
      List.iter
        (fun (i : Catalog.index) ->
          add_str buf i.Catalog.idx_name;
          add_int buf (if i.Catalog.clustered then 1 else 0);
          add_int buf (List.length i.Catalog.key_cols);
          List.iter
            (fun c ->
              add_str buf (Rel.Schema.column r.Catalog.schema c).Rel.Schema.name)
            i.Catalog.key_cols)
        idxs)
    rels;
  Buffer.contents buf

let load ?buffer_pages ?w s =
  if String.length s < String.length magic
     || String.sub s 0 (String.length magic) <> magic then
    invalid_arg "Snapshot.load: not a systemr snapshot";
  let b = Bytes.unsafe_of_string s in
  let db = Database.create ?buffer_pages ?w () in
  let cat = Database.catalog db in
  let off = ref (String.length magic) in
  let read_int () =
    let v, o = get_int b !off in
    off := o;
    v
  in
  let read_str () =
    let v, o = get_str b !off in
    off := o;
    v
  in
  let nrels = read_int () in
  for _ = 1 to nrels do
    let name = read_str () in
    let ncols = read_int () in
    let cols =
      List.init ncols (fun _ ->
          let cname = read_str () in
          let ty = ty_of_code (read_int ()) in
          { Rel.Schema.name = cname; ty })
    in
    let rel = Catalog.create_relation cat ~name ~schema:(Rel.Schema.make cols) in
    let ntuples = read_int () in
    for _ = 1 to ntuples do
      let t, o = Rel.Tuple.read b !off in
      off := o;
      ignore (Catalog.insert_tuple cat rel t)
    done;
    let nidx = read_int () in
    for _ = 1 to nidx do
      let iname = read_str () in
      let clustered = read_int () = 1 in
      let nkeys = read_int () in
      let columns = List.init nkeys (fun _ -> read_str ()) in
      ignore (Catalog.create_index cat ~name:iname ~rel ~columns ~clustered)
    done
  done;
  if !off <> String.length s then
    invalid_arg "Snapshot.load: trailing bytes (corrupt snapshot)";
  Database.update_statistics db;
  db

let save_to_file db path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save db))

let load_from_file ?buffer_pages ?w path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      load ?buffer_pages ?w (really_input_string ic n))
